// The Monitor component of Fig. 9: a functional module attached to the
// node's message plane that collects arriving Bitcoin messages and outbound
// reconnection events into per-minute buckets (the Dataset component), from
// which observation windows are extracted for the Analysis Engine.
//
// The monitor is identifier-oblivious by construction: it records message
// *types and counts*, never peer identifiers — the property §VII-A argues is
// required under Sybil/spoofing adversaries.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "core/node.hpp"
#include "detect/features.hpp"

namespace bsdetect {

class Monitor {
 public:
  /// Attaches to `node`'s observation hooks. Pre-existing hooks are chained,
  /// not replaced.
  explicit Monitor(bsnet::Node& node);

  /// Extract the feature window covering the last `window_minutes` complete
  /// minutes before `now`.
  FeatureWindow Window(bsim::SimTime now, int window_minutes) const;

  /// Extract consecutive non-overlapping windows over the whole recording
  /// (for training).
  std::vector<FeatureWindow> AllWindows(int window_minutes) const;

  std::uint64_t TotalMessages() const { return total_messages_; }
  std::uint64_t TotalReconnects() const { return total_reconnects_; }

  /// Export the per-minute dataset as CSV (minute, total, bytes, reconnects,
  /// then one column per command seen anywhere in the recording) — the
  /// storable "Dataset" component of Fig. 9. Returns false on I/O failure.
  bool ExportCsv(const std::string& path) const;

 private:
  struct MinuteBucket {
    std::map<std::string, std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t frame_bytes = 0;  // all frames, dropped ones included
    std::uint32_t reconnects = 0;
  };

  MinuteBucket& BucketFor(bsim::SimTime now);
  FeatureWindow Aggregate(std::size_t first_bucket, std::size_t count) const;

  bsnet::Node& node_;
  std::int64_t first_minute_ = -1;
  std::deque<MinuteBucket> buckets_;  // index 0 == first_minute_
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_reconnects_ = 0;

  // Observability handles, registered into the node's registry at attach.
  bsobs::Counter* m_observed_messages_ = nullptr;
  bsobs::Counter* m_window_extractions_ = nullptr;
};

}  // namespace bsdetect
