// Detection features (§VII-A-1):
//   c — outbound peer reconnection rate (reconnections per minute), the
//       novel Defamation-specific feature;
//   n — overall message rate (messages per minute), the BM-DoS feature;
//   Λ — relative message-count distribution over command names, compared
//       against the trained reference profile by Pearson correlation.
#pragma once

#include <map>
#include <string>

namespace bsdetect {

/// Features extracted from one observation window.
struct FeatureWindow {
  double window_minutes = 0.0;
  double n = 0.0;  // messages per minute
  double c = 0.0;  // outbound reconnections per minute
  /// Extension beyond the paper's three features: wire bytes per minute over
  /// ALL frames, including ones the codec drops before they ever count as
  /// messages. The paper's n is blind to the bogus-BLOCK BM-DoS (its frames
  /// fail the checksum and are never "messages"); b sees the flood.
  double b = 0.0;
  /// Raw counts per wire command over the window (normalized on demand).
  std::map<std::string, double> counts;
};

}  // namespace bsdetect
