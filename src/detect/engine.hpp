// The Analysis Engine of Fig. 9: statistical (not ML) anomaly detection.
//
// Training over normally-collected windows fixes three thresholds:
//   τ_c — the observed range of the outbound reconnection rate;
//   τ_n — the observed range of the overall message rate;
//   τ_Λ — the minimum Pearson correlation any training window's message
//         distribution achieved against the mean reference profile.
// (The paper's 35-hour Mainnet training run produced τ_c=[0,2.1],
// τ_n=[252,390], τ_Λ=0.993; ours are retrained on the synthetic Mainnet.)
//
// Detection flags a window when any feature leaves its threshold, and
// attributes the anomaly: rate/distribution violations indicate BM-DoS,
// reconnection-rate violations indicate Defamation.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "detect/features.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/stats.hpp"

namespace bsdetect {

struct Profile {
  double tau_c_low = 0.0, tau_c_high = 0.0;
  double tau_n_low = 0.0, tau_n_high = 0.0;
  /// Byte-rate envelope (extension feature b; see features.hpp).
  double tau_b_low = 0.0, tau_b_high = 0.0;
  double tau_lambda = 0.0;
  /// Mean normalized message-count distribution of the training windows.
  std::map<std::string, double> reference;
  /// Slack multipliers applied at training time so the thresholds tolerate
  /// sampling noise beyond the observed envelope.
  double range_margin = 0.05;
};

struct DetectionResult {
  bool anomalous = false;
  bool bmdos_suspected = false;       // n, b or Λ violated
  bool defamation_suspected = false;  // c violated
  double n = 0.0;
  double c = 0.0;
  double b = 0.0;
  double rho = 0.0;  // correlation against the reference profile
};

class StatEngine {
 public:
  /// Train the reference profile. Returns false (and stays untrained) when
  /// fewer than two windows are supplied.
  bool Train(const std::vector<FeatureWindow>& windows);

  bool Trained() const { return trained_; }
  const Profile& GetProfile() const { return profile_; }

  // ---- Persistence (the durable-store baseline payload) ----
  /// Serialize the trained profile (empty vector when untrained). A 35-hour
  /// Mainnet training run is state worth surviving a crash.
  bsutil::ByteVec SerializeProfile() const;
  /// Restore a previously serialized profile; the engine becomes trained.
  /// Returns false on malformed input (state is then unchanged).
  bool LoadProfile(bsutil::ByteSpan data);

  /// Test one window against the profile.
  DetectionResult Detect(const FeatureWindow& window) const;

  /// Correlation of `window`'s normalized distribution with the reference.
  double Correlation(const FeatureWindow& window) const;

  /// Alert sink invoked by Detect (via DetectAndAlert) on anomalies — wire
  /// this to the node's response (e.g. drop-and-rebuild connections).
  std::function<void(const DetectionResult&)> on_alert;
  DetectionResult DetectAndAlert(const FeatureWindow& window);

  /// Publish engine metrics into `registry` (bs_detect_* series), including
  /// the per-call detection-latency histogram.
  void AttachMetrics(bsobs::MetricsRegistry& registry);
  /// Record kDetectionVerdict events into `trace`; `clock` supplies the sim
  /// time stamped on each event (the engine itself is clock-agnostic).
  void AttachTrace(bsobs::EventTrace& trace, std::function<bsim::SimTime()> clock);
  /// Hot-path profiler: each Detect() is timed under HotStage::kDetectTick.
  /// Null (the default) disables. Not owned.
  void SetProfiler(bsobs::HotpathProfiler* profiler) { profiler_ = profiler; }

 private:
  bool trained_ = false;
  Profile profile_;
  bsobs::HotpathProfiler* profiler_ = nullptr;

  // Observability (null / empty until attached).
  bsobs::Counter* m_detections_total_ = nullptr;
  bsobs::Counter* m_anomalies_total_ = nullptr;
  bsobs::Counter* m_trainings_total_ = nullptr;
  bsobs::Histogram* m_detect_seconds_ = nullptr;
  bsobs::Histogram* m_train_seconds_ = nullptr;
  bsobs::EventTrace* trace_ = nullptr;
  std::function<bsim::SimTime()> trace_clock_;
};

}  // namespace bsdetect
