#include "detect/engine.hpp"

#include <algorithm>

#include "util/serialize.hpp"

namespace bsdetect {

namespace {
// Format tag so stale/foreign baseline payloads are rejected cleanly.
constexpr std::uint32_t kProfileMagic = 0x50524631;  // "PRF1"
}  // namespace

void StatEngine::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_detections_total_ =
      registry.GetCounter("bs_detect_detections_total", "Windows tested");
  m_anomalies_total_ =
      registry.GetCounter("bs_detect_anomalies_total", "Windows flagged anomalous");
  m_trainings_total_ =
      registry.GetCounter("bs_detect_trainings_total", "Profile (re)trainings");
  m_detect_seconds_ =
      registry.GetHistogram("bs_detect_detect_seconds", bsobs::LatencyBucketsSeconds(),
                            "Per-window detection latency");
  m_train_seconds_ =
      registry.GetHistogram("bs_detect_train_seconds", bsobs::LatencyBucketsSeconds(),
                            "Profile training latency");
}

void StatEngine::AttachTrace(bsobs::EventTrace& trace,
                             std::function<bsim::SimTime()> clock) {
  trace_ = &trace;
  trace_clock_ = std::move(clock);
}

bool StatEngine::Train(const std::vector<FeatureWindow>& windows) {
  bsobs::ScopedTimer timer(m_train_seconds_);
  if (windows.size() < 2) return false;

  Profile p;
  p.tau_c_low = windows[0].c;
  p.tau_c_high = windows[0].c;
  p.tau_n_low = windows[0].n;
  p.tau_n_high = windows[0].n;
  p.tau_b_low = windows[0].b;
  p.tau_b_high = windows[0].b;

  // Reference profile: mean of normalized distributions. Window maps are
  // sorted, so the accumulation is a merge-join over a sorted key vector —
  // one linear pass per window, no per-key map lookups (this training pass
  // is exactly what Fig. 11's latency comparison measures).
  std::vector<std::string> keys;
  std::vector<double> sums;
  for (const FeatureWindow& w : windows) {
    p.tau_c_low = std::min(p.tau_c_low, w.c);
    p.tau_c_high = std::max(p.tau_c_high, w.c);
    p.tau_n_low = std::min(p.tau_n_low, w.n);
    p.tau_n_high = std::max(p.tau_n_high, w.n);
    p.tau_b_low = std::min(p.tau_b_low, w.b);
    p.tau_b_high = std::max(p.tau_b_high, w.b);
    double total = 0.0;
    for (const auto& [cmd, n] : w.counts) total += n;
    if (total <= 0.0) continue;
    std::size_t k = 0;
    for (const auto& [cmd, n] : w.counts) {
      while (k < keys.size() && keys[k] < cmd) ++k;
      if (k == keys.size() || keys[k] != cmd) {
        keys.insert(keys.begin() + static_cast<std::ptrdiff_t>(k), cmd);
        sums.insert(sums.begin() + static_cast<std::ptrdiff_t>(k), 0.0);
      }
      sums[k] += n / total;
      ++k;
    }
  }
  for (std::size_t k = 0; k < keys.size(); ++k) {
    p.reference.emplace(keys[k], sums[k] / static_cast<double>(windows.size()));
  }

  // Apply the range margin so the envelope tolerates unseen-but-normal noise.
  const double n_margin = p.range_margin * std::max(1.0, p.tau_n_high);
  p.tau_n_low = std::max(0.0, p.tau_n_low - n_margin);
  p.tau_n_high += n_margin;
  const double b_margin = p.range_margin * std::max(1.0, p.tau_b_high);
  p.tau_b_low = std::max(0.0, p.tau_b_low - b_margin);
  p.tau_b_high += b_margin;
  p.tau_c_high += std::max(0.5, p.range_margin * p.tau_c_high);
  p.tau_c_low = 0.0;

  profile_ = p;
  trained_ = true;  // needed before Correlation() below

  // τ_Λ: the weakest correlation any normal window shows to the reference,
  // via the same merge-join (keys and window maps are both sorted).
  const std::vector<double> ref_vec = bsutil::NormalizeDistribution(sums);

  double tau_lambda = 1.0;
  std::vector<double> obs(keys.size());
  for (const FeatureWindow& w : windows) {
    std::fill(obs.begin(), obs.end(), 0.0);
    std::size_t k = 0;
    for (const auto& [cmd, n] : w.counts) {
      while (k < keys.size() && keys[k] < cmd) ++k;
      if (k == keys.size()) break;
      if (keys[k] == cmd) obs[k] = n;
    }
    // Pearson correlation is invariant under positive scaling, so the raw
    // counts correlate identically to the normalized distribution.
    tau_lambda = std::min(tau_lambda, bsutil::PearsonCorrelation(ref_vec, obs));
  }
  // Small slack below the observed minimum. Correlation lives in [-1, 1];
  // when the normal profile itself is weakly self-correlated (flat
  // distributions), the threshold legitimately goes negative.
  profile_.tau_lambda = std::max(-1.0, tau_lambda - 0.5 * (1.0 - tau_lambda));
  if (m_trainings_total_ != nullptr) m_trainings_total_->Inc();
  return true;
}

bsutil::ByteVec StatEngine::SerializeProfile() const {
  if (!trained_) return {};
  bsutil::Writer w;
  w.WriteU32(kProfileMagic);
  w.WriteDouble(profile_.tau_c_low);
  w.WriteDouble(profile_.tau_c_high);
  w.WriteDouble(profile_.tau_n_low);
  w.WriteDouble(profile_.tau_n_high);
  w.WriteDouble(profile_.tau_b_low);
  w.WriteDouble(profile_.tau_b_high);
  w.WriteDouble(profile_.tau_lambda);
  w.WriteDouble(profile_.range_margin);
  w.WriteCompactSize(profile_.reference.size());
  for (const auto& [cmd, share] : profile_.reference) {
    w.WriteVarString(cmd);
    w.WriteDouble(share);
  }
  return w.TakeData();
}

bool StatEngine::LoadProfile(bsutil::ByteSpan data) {
  try {
    bsutil::Reader r(data);
    if (r.ReadU32() != kProfileMagic) return false;
    Profile p;
    p.tau_c_low = r.ReadDouble();
    p.tau_c_high = r.ReadDouble();
    p.tau_n_low = r.ReadDouble();
    p.tau_n_high = r.ReadDouble();
    p.tau_b_low = r.ReadDouble();
    p.tau_b_high = r.ReadDouble();
    p.tau_lambda = r.ReadDouble();
    p.range_margin = r.ReadDouble();
    const std::uint64_t count = r.ReadCompactSize();
    if (count > 1'000'000) return false;  // allocation guard
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string cmd = r.ReadVarString();
      const double share = r.ReadDouble();
      p.reference.emplace(std::move(cmd), share);
    }
    if (!r.AtEnd()) return false;
    profile_ = std::move(p);
    trained_ = true;
    return true;
  } catch (const bsutil::DeserializeError&) {
    return false;
  }
}

double StatEngine::Correlation(const FeatureWindow& window) const {
  if (!trained_) return 0.0;
  const auto [ref, obs] = bsutil::AlignedDistributions(profile_.reference, window.counts);
  return bsutil::PearsonCorrelation(ref, obs);
}

DetectionResult StatEngine::Detect(const FeatureWindow& window) const {
  bsobs::ScopedProbe probe(profiler_, bsobs::HotStage::kDetectTick);
  bsobs::ScopedTimer timer(m_detect_seconds_);
  if (m_detections_total_ != nullptr) m_detections_total_->Inc();
  DetectionResult result;
  result.n = window.n;
  result.c = window.c;
  result.b = window.b;
  result.rho = Correlation(window);
  if (!trained_) return result;

  const bool n_violation = window.n < profile_.tau_n_low || window.n > profile_.tau_n_high;
  // b only alarms upward: byte floods. (A byte-rate *drop* shadows the
  // message-rate drop that n already covers.)
  const bool b_violation = window.b > profile_.tau_b_high;
  const bool lambda_violation = result.rho < profile_.tau_lambda;
  const bool c_violation = window.c > profile_.tau_c_high;

  result.bmdos_suspected = n_violation || b_violation || lambda_violation;
  result.defamation_suspected = c_violation;
  result.anomalous = result.bmdos_suspected || result.defamation_suspected;
  if (result.anomalous && m_anomalies_total_ != nullptr) m_anomalies_total_->Inc();
  return result;
}

DetectionResult StatEngine::DetectAndAlert(const FeatureWindow& window) {
  const DetectionResult result = Detect(window);
  if (trace_ != nullptr) {
    // a: verdict bitmask (1 = BM-DoS suspected, 2 = Defamation suspected);
    // b: message rate of the tested window (rounded).
    const std::int64_t verdict = (result.bmdos_suspected ? 1 : 0) |
                                 (result.defamation_suspected ? 2 : 0);
    trace_->Record(trace_clock_ ? trace_clock_() : 0,
                   bsobs::EventType::kDetectionVerdict, 0, verdict,
                   static_cast<std::int64_t>(result.n));
  }
  if (result.anomalous && on_alert) on_alert(result);
  return result;
}

}  // namespace bsdetect
