#include "detect/monitor.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include "util/log.hpp"

namespace bsdetect {

Monitor::Monitor(bsnet::Node& node) : node_(node) {
  m_observed_messages_ = node.Metrics().GetCounter(
      "bs_detect_observed_messages_total", "Messages the monitor recorded");
  m_window_extractions_ = node.Metrics().GetCounter(
      "bs_detect_window_extractions_total", "Feature windows extracted");

  auto prev_on_message = node.on_message;
  node.on_message = [this, prev_on_message](const bsnet::Peer& peer, bsproto::MsgType type,
                                            std::size_t bytes) {
    MinuteBucket& bucket = BucketFor(node_.Sched().Now());
    ++bucket.counts[bsproto::CommandName(type)];
    ++bucket.total;
    ++total_messages_;
    m_observed_messages_->Inc();
    if (prev_on_message) prev_on_message(peer, type, bytes);
  };

  auto prev_on_frame = node.on_frame;
  node.on_frame = [this, prev_on_frame](std::size_t frame_bytes,
                                        bsproto::DecodeStatus status) {
    BucketFor(node_.Sched().Now()).frame_bytes += frame_bytes;
    if (prev_on_frame) prev_on_frame(frame_bytes, status);
  };

  auto prev_on_reconnect = node.on_outbound_reconnect;
  node.on_outbound_reconnect = [this, prev_on_reconnect](const bsnet::Endpoint& ep) {
    MinuteBucket& bucket = BucketFor(node_.Sched().Now());
    ++bucket.reconnects;
    ++total_reconnects_;
    if (prev_on_reconnect) prev_on_reconnect(ep);
  };
}

Monitor::MinuteBucket& Monitor::BucketFor(bsim::SimTime now) {
  const std::int64_t minute = now / bsim::kMinute;
  if (first_minute_ < 0) first_minute_ = minute;
  const std::int64_t index = minute - first_minute_;
  while (static_cast<std::int64_t>(buckets_.size()) <= index) buckets_.emplace_back();
  return buckets_[static_cast<std::size_t>(index)];
}

FeatureWindow Monitor::Aggregate(std::size_t first_bucket, std::size_t count) const {
  FeatureWindow window;
  window.window_minutes = static_cast<double>(count);
  if (count == 0) return window;
  std::uint64_t total = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t frame_bytes = 0;
  for (std::size_t i = first_bucket; i < first_bucket + count && i < buckets_.size(); ++i) {
    const MinuteBucket& bucket = buckets_[i];
    total += bucket.total;
    reconnects += bucket.reconnects;
    frame_bytes += bucket.frame_bytes;
    for (const auto& [cmd, n] : bucket.counts) window.counts[cmd] += static_cast<double>(n);
  }
  window.n = static_cast<double>(total) / static_cast<double>(count);
  window.c = static_cast<double>(reconnects) / static_cast<double>(count);
  window.b = static_cast<double>(frame_bytes) / static_cast<double>(count);
  return window;
}

FeatureWindow Monitor::Window(bsim::SimTime now, int window_minutes) const {
  const std::int64_t minute = now / bsim::kMinute;
  if (first_minute_ < 0 || window_minutes <= 0) return FeatureWindow{};
  const std::int64_t end_index = minute - first_minute_;  // current (partial) minute
  const std::int64_t begin = std::max<std::int64_t>(0, end_index - window_minutes);
  const std::int64_t count = std::min<std::int64_t>(window_minutes, end_index - begin);
  if (count <= 0) return FeatureWindow{};
  m_window_extractions_->Inc();
  return Aggregate(static_cast<std::size_t>(begin), static_cast<std::size_t>(count));
}

bool Monitor::ExportCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    const int err = errno;
    bsutil::Log(bsutil::LogLevel::kError, "detect",
                "ExportCsv: cannot open '", path, "': ", std::strerror(err),
                " (errno ", err, ")");
    return false;
  }

  std::set<std::string> commands;
  for (const MinuteBucket& bucket : buckets_) {
    for (const auto& [cmd, n] : bucket.counts) commands.insert(cmd);
  }

  std::fprintf(f, "minute,total,frame_bytes,reconnects");
  for (const auto& cmd : commands) std::fprintf(f, ",%s", cmd.c_str());
  std::fprintf(f, "\n");

  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const MinuteBucket& bucket = buckets_[i];
    std::fprintf(f, "%lld,%llu,%llu,%u",
                 static_cast<long long>(first_minute_ + static_cast<std::int64_t>(i)),
                 static_cast<unsigned long long>(bucket.total),
                 static_cast<unsigned long long>(bucket.frame_bytes), bucket.reconnects);
    for (const auto& cmd : commands) {
      const auto it = bucket.counts.find(cmd);
      std::fprintf(f, ",%llu",
                   static_cast<unsigned long long>(it == bucket.counts.end() ? 0
                                                                             : it->second));
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

std::vector<FeatureWindow> Monitor::AllWindows(int window_minutes) const {
  std::vector<FeatureWindow> out;
  if (window_minutes <= 0) return out;
  const std::size_t w = static_cast<std::size_t>(window_minutes);
  for (std::size_t start = 0; start + w <= buckets_.size(); start += w) {
    m_window_extractions_->Inc();
    out.push_back(Aggregate(start, w));
  }
  return out;
}

}  // namespace bsdetect
