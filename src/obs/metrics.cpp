#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/log.hpp"

namespace bsobs {

namespace {

/// Numbers in exposition output: integers print without a decimal point so
/// golden strings stay readable; everything else gets shortest-round-trip-ish
/// %.10g (enough for counts and second-scale latencies alike).
std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string FormatCount(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound is >= value (le is inclusive).
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::AtomicAdd(sum_, value);
}

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double> kBuckets = {
      1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
      1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
      0.1,  0.25,   0.5,  1.0};
  return kBuckets;
}

const std::vector<double>& SizeBucketsBytes() {
  static const std::vector<double> kBuckets = {
      64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304};
  return kBuckets;
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (const auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name)) return e->kind == Kind::kCounter ? e->counter.get() : nullptr;
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCounter;
  entry->name = name;
  entry->help = help;
  entry->counter = std::make_unique<Counter>();
  Counter* handle = entry->counter.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name)) return e->kind == Kind::kGauge ? e->gauge.get() : nullptr;
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kGauge;
  entry->name = name;
  entry->help = help;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* handle = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name)) {
    return e->kind == Kind::kHistogram ? e->histogram.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kHistogram;
  entry->name = name;
  entry->help = help;
  entry->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* handle = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return handle;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = Find(name);
  return (e != nullptr && e->kind == Kind::kCounter) ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = Find(name);
  return (e != nullptr && e->kind == Kind::kGauge) ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = Find(name);
  return (e != nullptr && e->kind == Kind::kHistogram) ? e->histogram.get() : nullptr;
}

std::size_t MetricsRegistry::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

// ---------------------------------------------------------------------------
// Exposition

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& e : entries_) {
    if (!e->help.empty()) out += "# HELP " + e->name + " " + e->help + "\n";
    switch (e->kind) {
      case Kind::kCounter:
        out += "# TYPE " + e->name + " counter\n";
        out += e->name + " " + FormatCount(e->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + e->name + " gauge\n";
        out += e->name + " " + FormatNumber(e->gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + e->name + " histogram\n";
        const Histogram& h = *e->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.UpperBounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out += e->name + "_bucket{le=\"" + FormatNumber(h.UpperBounds()[i]) +
                 "\"} " + FormatCount(cumulative) + "\n";
        }
        cumulative += h.BucketCount(h.UpperBounds().size());
        out += e->name + "_bucket{le=\"+Inf\"} " + FormatCount(cumulative) + "\n";
        out += e->name + "_sum " + FormatNumber(h.Sum()) + "\n";
        out += e->name + "_count " + FormatCount(h.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += "\"" + bsutil::JsonEscape(e->name) +
                    "\":" + FormatCount(e->counter->Value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges +=
            "\"" + bsutil::JsonEscape(e->name) + "\":" + FormatNumber(e->gauge->Value());
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const Histogram& h = *e->histogram;
        std::string buckets;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.UpperBounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          if (!buckets.empty()) buckets += ",";
          buckets += "{\"le\":" + FormatNumber(h.UpperBounds()[i]) +
                     ",\"count\":" + FormatCount(cumulative) + "}";
        }
        cumulative += h.BucketCount(h.UpperBounds().size());
        if (!buckets.empty()) buckets += ",";
        buckets += "{\"le\":\"+Inf\",\"count\":" + FormatCount(cumulative) + "}";
        histograms += "\"" + bsutil::JsonEscape(e->name) + "\":{\"buckets\":[" +
                      buckets + "],\"sum\":" + FormatNumber(h.Sum()) +
                      ",\"count\":" + FormatCount(h.Count()) + "}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

}  // namespace bsobs
