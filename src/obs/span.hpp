// bsobs — causal message tracing: a lightweight trace context (trace_id +
// span_id) stamped onto every simulated frame at send time and matched back
// to the frame when the receiving node decodes it, so the full cross-node
// lineage of an incident — attacker INV → victim misbehavior point → ban —
// is reconstructible from one bounded SpanLog after the run.
//
// Design rules:
//   * Zero wire impact. The trace context never touches the byte stream; the
//     wire stays bit-identical whether tracing is on or off. Frames are
//     matched out-of-band by their position in the TCP application stream
//     (the sender registers [offset, offset+len) per frame, the receiver
//     claims the entry covering the offset its decoder reached). Reliable
//     TCP delivers an exact in-order byte stream even under loss/dup/reorder
//     fault plans, so the match survives network weather.
//   * Spoofed injection is visible, not fatal. A frame injected into a
//     stream by a third party (the Defamation vector) has no registered
//     sender entry at that offset: the attacker registers it as a *foreign*
//     frame, the receiver matches it by length (kFlagResync), and honest
//     traffic that mismatches everything surfaces as an orphan span
//     (kFlagOrphan) — exactly the forensic signal a defamation
//     investigation needs.
//   * Bounded memory. The SpanLog is a wraparound ring; pending per-stream
//     frame registrations are capped per connection with drop-oldest.
//   * Off by default. A node with no SpanTracer attached takes one null
//     pointer branch per send/receive and allocates nothing.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace bsobs {

/// The causal identity a frame carries (out of band). trace_id groups one
/// causal chain; span_id names one hop. trace_id 0 = "no context".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool Valid() const { return trace_id != 0; }
};

enum class SpanKind : std::uint8_t {
  kSend = 0,     // a node put a frame on its own stream     a = frame bytes
  kInject,       // an attacker spoofed a frame into a
                 // stream that is not its own               a = frame bytes
  kReceive,      // a decoded (kOk) frame reached a handler  a = msg type, b = bytes
  kDrop,         // a frame was dropped before its handler   a = decode status, b = bytes
  kShed,         // rate-limit/governor shed an intact frame a = frame bytes
  kMisbehavior,  // a misbehavior point landed               a = score delta, b = total
  kBan,          // the threshold banned/discouraged a peer  a = peer ip, b = total score
  kDetect,       // a detection verdict fired                a = anomalous, b = flags
};

const char* ToString(SpanKind kind);

/// Span record flags.
constexpr std::uint8_t kFlagOrphan = 1;       // no matching send entry found
constexpr std::uint8_t kFlagResync = 2;       // matched by length, not offset
constexpr std::uint8_t kFlagDiscouraged = 4;  // kBan used discouragement

/// One fixed-size span record. `parent_span` is 0 at a trace root. `node_ip`
/// is the node that recorded the span (spans from every node in the sim land
/// in one log, which is what makes cross-node chains walkable).
struct SpanRecord {
  bsim::SimTime time = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  SpanKind kind = SpanKind::kSend;
  std::uint8_t flags = 0;
  std::int16_t msg_type = -1;  // bsproto::MsgType when known, -1 otherwise
  std::uint32_t node_ip = 0;
  std::uint64_t peer_id = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Bounded wraparound ring of SpanRecords (same memory discipline as
/// EventTrace: a flooded sim keeps the newest window at fixed cost).
/// Thread-safe.
class SpanLog {
 public:
  explicit SpanLog(std::size_t capacity = 16384);

  void Record(const SpanRecord& rec);

  std::size_t Capacity() const { return capacity_; }
  std::size_t Size() const;
  std::uint64_t Recorded() const;
  std::uint64_t Dropped() const;

  /// Retained records, oldest first.
  std::vector<SpanRecord> Snapshot() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

/// One TCP application stream, as named by its *sender*: (src, dst) with
/// each endpoint packed as (ip << 16) | port. bsobs deliberately does not
/// depend on bsproto; callers pack their endpoints.
struct SpanStreamKey {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;

  bool operator==(const SpanStreamKey&) const = default;
};

inline std::uint64_t PackEndpoint(std::uint32_t ip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(ip) << 16) | port;
}

struct SpanStreamKeyHasher {
  std::size_t operator()(const SpanStreamKey& k) const {
    return std::hash<std::uint64_t>{}(k.src * 1000003 ^ k.dst);
  }
};

/// What ClaimFrame matched.
struct SpanClaim {
  TraceContext ctx;        // invalid when no entry matched (orphan frame)
  bool resync = false;     // matched by length after an offset skew
  std::uint64_t lost = 0;  // entries wholly before the claim, dropped as lost
};

/// The sim-wide tracer: allocates trace/span ids, owns the SpanLog, and
/// keeps the per-stream registry of in-flight frame→context mappings.
/// One tracer serves every node in a simulation. Thread-safe.
class SpanTracer {
 public:
  explicit SpanTracer(std::size_t log_capacity = 16384);

  /// Start a new causal chain (fresh trace_id, root span_id).
  TraceContext Begin();
  /// A new span in the same trace (the caller records `parent.span_id` as
  /// the new record's parent_span).
  TraceContext Child(const TraceContext& parent);

  /// Sender side: the frame occupying [offset, offset+len) of `stream`
  /// carries `ctx`.
  void NoteFrameSent(const SpanStreamKey& stream, std::uint64_t offset,
                     std::uint32_t len, const TraceContext& ctx);
  /// Injector side: a spoofed frame of `len` bytes was pushed into `stream`
  /// at an app-stream offset the injector cannot know. Matched by length.
  void NoteForeignFrame(const SpanStreamKey& stream, std::uint32_t len,
                        const TraceContext& ctx);
  /// Receiver side: the decoder produced a frame of `len` bytes starting at
  /// app-stream `offset`. Consumes the matched entry.
  SpanClaim ClaimFrame(const SpanStreamKey& stream, std::uint64_t offset,
                       std::uint32_t len);

  SpanLog& Log() { return log_; }
  const SpanLog& Log() const { return log_; }

  /// Pending (sent, unclaimed) frame registrations across all streams.
  std::size_t PendingFrames() const;
  /// Registrations evicted by the per-stream cap or dropped as lost.
  std::uint64_t PendingDropped() const;

 private:
  struct PendingFrame {
    std::uint64_t start = 0;  // kForeignOffset for injected frames
    std::uint32_t len = 0;
    TraceContext ctx;
  };
  static constexpr std::uint64_t kForeignOffset = ~0ull;
  static constexpr std::size_t kMaxPendingPerStream = 4096;

  mutable std::mutex mu_;
  SpanLog log_;
  std::uint64_t next_trace_ = 1;
  std::uint64_t next_span_ = 1;
  std::unordered_map<SpanStreamKey, std::deque<PendingFrame>, SpanStreamKeyHasher>
      pending_;
  std::size_t pending_count_ = 0;
  std::uint64_t pending_dropped_ = 0;
};

}  // namespace bsobs
