// bsobs — the observability plane: a metrics registry cheap enough for the
// node's per-frame hot path.
//
// Design rules:
//   * Handles are pre-resolved: callers ask the registry ONCE for a
//     Counter*/Gauge*/Histogram* and then touch only that cell — no map
//     lookup, no string hashing, no lock on the increment path.
//   * All cells are plain atomics with relaxed ordering: an increment is a
//     single fetch_add (~1-5 ns), safe to call from any thread.
//   * Metric names follow the scheme `bs_<layer>_<name>` (layer ∈ node, ban,
//     detect, sim, ...) with the Prometheus `_total` suffix on counters.
//   * Exporters render the whole registry as Prometheus text exposition or
//     as a JSON snapshot (the `--json` bench trajectories in BENCH_*.json).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bsobs {

namespace detail {
/// Portable atomic double accumulation (CAS loop; contention here is rare —
/// histogram sums and gauges, not counters).
inline void AtomicAdd(std::atomic<double>& cell, double delta) {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic event count. The hot-path increment is one relaxed fetch_add.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value (peer count, sim time, queue depth).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { detail::AtomicAdd(value_, d); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (latency / size distributions). Buckets are upper
/// bounds in ascending order with an implicit +Inf bucket at the end;
/// Observe() is a binary search over a handful of doubles plus three relaxed
/// atomic adds. `le` is inclusive, as in Prometheus.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& UpperBounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  std::uint64_t BucketCount(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  std::size_t NumBuckets() const { return bounds_.size() + 1; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket ladders: sub-microsecond to one second for latencies,
/// 64 B to 4 MiB for wire frame sizes.
const std::vector<double>& LatencyBucketsSeconds();
const std::vector<double>& SizeBucketsBytes();

/// Named-metric registry. Registration takes a lock and is expected at
/// setup time; re-registering a name returns the existing handle (so several
/// components can share one series), or nullptr when the existing metric is
/// of a different kind.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// `upper_bounds` is only consulted on first registration.
  Histogram* GetHistogram(const std::string& name, std::vector<double> upper_bounds,
                          const std::string& help = "");

  /// Look up an existing metric without creating it (nullptr when absent or
  /// of a different kind).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  std::size_t Size() const;

  /// Prometheus text exposition (HELP/TYPE comments + samples), metrics in
  /// registration order.
  std::string RenderPrometheus() const;
  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string RenderJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name);
  const Entry* Find(const std::string& name) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

/// RAII wall-clock timer feeding a histogram in seconds. A null histogram
/// makes the timer a no-op, so call sites need no branching.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist),
        start_(hist ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{}) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { Stop(); }

  /// Observe now instead of at destruction; returns elapsed seconds.
  double Stop() {
    if (hist_ == nullptr) return 0.0;
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    hist_->Observe(sec);
    hist_ = nullptr;
    return sec;
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bsobs
