// bsobs — hot-path profiler: fixed-stage RAII probes over the paths that
// dominate a simulation's wall clock (codec decode, misbehavior tracking,
// detect ticks, AddrMan select, event-loop dispatch).
//
// The profiler answers one question per stage: *how many nanoseconds does
// one operation cost, and how is that cost distributed?* It is the
// measurement substrate for the BENCH_*.json perf trajectory — ns/message
// per stage is exactly what bench-diff gates between commits.
//
// Design rules:
//   * Zero overhead when disabled: a ScopedProbe holding a null profiler
//     compiles to two pointer tests and no clock reads. Call sites are
//     branch-free.
//   * Fixed stages, fixed storage: one cache-line-ish block of relaxed
//     atomics per stage (count, total ns, min, max, and log2-ns buckets) —
//     no allocation after construction, safe from any thread, so the TSan
//     sweep can hammer it.
//   * log2-ns buckets span 1 ns .. ~1 s in 40 power-of-two steps; quantiles
//     are interpolated within the winning bucket, which is plenty for a
//     regression gate.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace bsobs {

/// The instrumented stages. Keep in sync with StageName().
enum class HotStage : std::uint8_t {
  kCodecDecode = 0,   // bsproto::DecodeMessage per framing attempt
  kTrackerUpdate,     // MisbehaviorTracker::Misbehaving
  kDetectTick,        // detect engine verdict computation
  kAddrmanSelect,     // AddrMan::Select / SelectNew
  kDispatch,          // scheduler event-loop callback dispatch
  kStageCount,
};

constexpr std::size_t kHotStageCount =
    static_cast<std::size_t>(HotStage::kStageCount);

const char* StageName(HotStage stage);

/// Per-stage latency summary, all in nanoseconds.
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double ns_per_op = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
};

class HotpathProfiler {
 public:
  static constexpr std::size_t kNumBuckets = 40;  // log2 ns: 1ns .. ~1.1s

  HotpathProfiler() = default;
  HotpathProfiler(const HotpathProfiler&) = delete;
  HotpathProfiler& operator=(const HotpathProfiler&) = delete;

  /// Record one operation of `ns` nanoseconds in `stage`. Relaxed atomics;
  /// callable from any thread.
  void Record(HotStage stage, std::uint64_t ns);

  StageStats Stats(HotStage stage) const;
  void Reset();

  /// {"codec_decode":{"count":..,"ns_per_op":..,"p50_ns":..,...},...}
  /// Stages with zero samples are omitted.
  std::string RenderJson() const;
  /// Human-readable per-stage table for CLI output.
  std::string RenderTable() const;

 private:
  struct StageCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> min_ns{~0ull};
    std::atomic<std::uint64_t> max_ns{0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  };

  static std::size_t BucketFor(std::uint64_t ns);
  static double Quantile(const std::array<std::uint64_t, kNumBuckets>& buckets,
                         std::uint64_t count, double q);

  std::array<StageCell, kHotStageCount> cells_{};
};

/// RAII probe. With a null profiler the constructor and destructor are both
/// a single pointer test — the "disabled" cost the hot paths pay by default.
class ScopedProbe {
 public:
  ScopedProbe(HotpathProfiler* profiler, HotStage stage)
      : profiler_(profiler),
        stage_(stage),
        start_(profiler ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{}) {}
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;
  ~ScopedProbe() { Stop(); }

  /// Record now instead of at destruction; returns elapsed ns.
  std::uint64_t Stop() {
    if (profiler_ == nullptr) return 0;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    profiler_->Record(stage_, ns);
    profiler_ = nullptr;
    return ns;
  }

 private:
  HotpathProfiler* profiler_;
  HotStage stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bsobs
