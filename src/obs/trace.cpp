#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace bsobs {

const char* ToString(EventType type) {
  switch (type) {
    case EventType::kFrameDecoded: return "frame-decoded";
    case EventType::kFrameDropped: return "frame-dropped";
    case EventType::kMisbehavior: return "misbehavior";
    case EventType::kPeerConnected: return "peer-connected";
    case EventType::kPeerDisconnected: return "peer-disconnected";
    case EventType::kPeerBanned: return "peer-banned";
    case EventType::kPeerDiscouraged: return "peer-discouraged";
    case EventType::kOutboundReconnect: return "outbound-reconnect";
    case EventType::kDetectionVerdict: return "detection-verdict";
    case EventType::kRxShed: return "rx-shed";
    case EventType::kPeerEvicted: return "peer-evicted";
    case EventType::kRateLimited: return "rate-limited";
    case EventType::kFeelerProbe: return "feeler-probe";
    case EventType::kAnchorRedial: return "anchor-redial";
    case EventType::kStaleTip: return "stale-tip";
    case EventType::kPartitionProbe: return "partition-probe";
    case EventType::kPartitionSuspected: return "partition-suspected";
    case EventType::kPartitionRecovered: return "partition-recovered";
    case EventType::kPenaltyDeferred: return "penalty-deferred";
  }
  return "?";
}

EventTrace::EventTrace(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void EventTrace::Record(bsim::SimTime now, EventType type, std::uint64_t peer_id,
                        std::int64_t a, std::int64_t b) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const TraceEvent ev{now, type, peer_id, a, b};
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[next_] = ev;  // overwrite the oldest
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::size_t EventTrace::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t EventTrace::Recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t EventTrace::Dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::vector<TraceEvent> EventTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void EventTrace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string EventTrace::Render(std::size_t max_events) const {
  const std::vector<TraceEvent> events = Snapshot();
  const std::size_t first =
      events.size() > max_events ? events.size() - max_events : 0;
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "event trace: %zu/%zu retained, %" PRIu64 " recorded, %" PRIu64
                " dropped\n",
                events.size(), capacity_, Recorded(), Dropped());
  out += line;
  for (std::size_t i = first; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    std::snprintf(line, sizeof(line),
                  "  t=%.6fs %-18s peer=%" PRIu64 " a=%" PRId64 " b=%" PRId64 "\n",
                  bsim::ToSeconds(ev.time), ToString(ev.type), ev.peer_id, ev.a,
                  ev.b);
    out += line;
  }
  return out;
}

}  // namespace bsobs
