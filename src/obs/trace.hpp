// bsobs — sim-time-aware event tracing: a bounded ring of typed events
// (frames, misbehavior points, bans, reconnects, detection verdicts) with
// wraparound drop counting, so a flooded node keeps a recent-history window
// at fixed memory cost instead of an unbounded log.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bsobs {

enum class EventType : std::uint8_t {
  kFrameDecoded = 0,   // a = frame bytes
  kFrameDropped,       // a = frame bytes, b = decode status
  kMisbehavior,        // a = score delta, b = total score
  kPeerConnected,      // a = 1 when inbound
  kPeerDisconnected,   // a = 1 when it was outbound
  kPeerBanned,         // a = total score at ban time
  kPeerDiscouraged,    // a = discouraged IP
  kOutboundReconnect,  // a = target IP
  kDetectionVerdict,   // a = anomalous, b = bmdos<<1 | defamation
  kRxShed,             // a = bytes shed from a peer's receive buffer
  kPeerEvicted,        // a = evicted peer's IP, b = its /16 netgroup
  kRateLimited,        // a = frame bytes shed, b = 1 when the governor shed it
  kFeelerProbe,        // a = probed IP, b = 1 when the probe promoted to tried
  kAnchorRedial,       // a = anchor IP
  kStaleTip,           // a = stalled tip height
  kPartitionProbe,     // a = remote tip height, b = our tip height
  kPartitionSuspected, // a = suspicion ×1000, b = ladder stage
  kPartitionRecovered, // a = high-window duration (ns), b = last stage reached
  kPenaltyDeferred,    // a = misbehavior id, b = peer good score
};

const char* ToString(EventType type);

/// One fixed-size trace record. `peer_id` is 0 for node-global events; the
/// meaning of `a`/`b` is per-type (see EventType comments).
struct TraceEvent {
  bsim::SimTime time = 0;
  EventType type = EventType::kFrameDecoded;
  std::uint64_t peer_id = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Bounded ring buffer of TraceEvents. When full, the oldest event is
/// overwritten and counted as dropped — memory stays at capacity() records
/// no matter how hard the node is flooded. Thread-safe (mutex; tracing is
/// not the per-increment hot path the metrics counters are).
class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 1024);

  void Record(bsim::SimTime now, EventType type, std::uint64_t peer_id = 0,
              std::int64_t a = 0, std::int64_t b = 0);

  std::size_t Capacity() const { return capacity_; }
  /// Events currently held (≤ capacity).
  std::size_t Size() const;
  /// Events ever recorded.
  std::uint64_t Recorded() const;
  /// Events overwritten by wraparound.
  std::uint64_t Dropped() const;

  /// Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  void Clear();

  /// Human-readable dump of the retained events (one line each), newest
  /// `max_events` when the ring holds more.
  std::string Render(std::size_t max_events = 32) const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;        // write cursor once the ring is full
  std::uint64_t recorded_ = 0;  // total ever
};

}  // namespace bsobs
