#include "obs/span.hpp"

#include <algorithm>

namespace bsobs {

const char* ToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSend:
      return "send";
    case SpanKind::kInject:
      return "inject";
    case SpanKind::kReceive:
      return "recv";
    case SpanKind::kDrop:
      return "drop";
    case SpanKind::kShed:
      return "shed";
    case SpanKind::kMisbehavior:
      return "misbehavior";
    case SpanKind::kBan:
      return "ban";
    case SpanKind::kDetect:
      return "detect";
  }
  return "?";
}

SpanLog::SpanLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void SpanLog::Record(const SpanRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[next_ % capacity_] = rec;
  }
  ++next_;
  ++recorded_;
}

std::size_t SpanLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t SpanLog::Recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t SpanLog::Dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

std::vector<SpanRecord> SpanLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t head = next_ % capacity_;  // oldest element
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

void SpanLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

SpanTracer::SpanTracer(std::size_t log_capacity) : log_(log_capacity) {}

TraceContext SpanTracer::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  return TraceContext{next_trace_++, next_span_++};
}

TraceContext SpanTracer::Child(const TraceContext& parent) {
  std::lock_guard<std::mutex> lock(mu_);
  return TraceContext{parent.trace_id, next_span_++};
}

void SpanTracer::NoteFrameSent(const SpanStreamKey& stream, std::uint64_t offset,
                               std::uint32_t len, const TraceContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& q = pending_[stream];
  if (q.size() >= kMaxPendingPerStream) {
    q.pop_front();
    --pending_count_;
    ++pending_dropped_;
  }
  q.push_back(PendingFrame{offset, len, ctx});
  ++pending_count_;
}

void SpanTracer::NoteForeignFrame(const SpanStreamKey& stream, std::uint32_t len,
                                  const TraceContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& q = pending_[stream];
  if (q.size() >= kMaxPendingPerStream) {
    q.pop_front();
    --pending_count_;
    ++pending_dropped_;
  }
  q.push_back(PendingFrame{kForeignOffset, len, ctx});
  ++pending_count_;
}

SpanClaim SpanTracer::ClaimFrame(const SpanStreamKey& stream, std::uint64_t offset,
                                 std::uint32_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanClaim claim;
  auto it = pending_.find(stream);
  if (it == pending_.end()) return claim;
  auto& q = it->second;

  // Entries wholly before the claimed offset can never match again (the
  // receiver decodes the app stream strictly in order): count them lost.
  // Foreign (offset-unknown) entries are exempt — they wait for a length
  // match.
  while (!q.empty() && q.front().start != kForeignOffset &&
         q.front().start + q.front().len <= offset) {
    q.pop_front();
    --pending_count_;
    ++pending_dropped_;
    ++claim.lost;
  }
  if (q.empty()) {
    pending_.erase(it);
    return claim;
  }

  const PendingFrame& front = q.front();
  if (front.start == offset && front.len == len) {
    // Exact stream-position match: the normal honest-traffic path.
    claim.ctx = front.ctx;
    q.pop_front();
    --pending_count_;
  } else if (front.len == len) {
    // Offsets disagree but the next in-flight frame has exactly this length.
    // This is the injected-frame path: a spoofed frame shifted the receive
    // stream relative to what the (foreign) sender could register. Match by
    // length and flag the resync so forensics can see the splice point.
    claim.ctx = front.ctx;
    claim.resync = true;
    q.pop_front();
    --pending_count_;
  }
  // else: orphan — leave the queue alone (the registered frame is still in
  // flight and will match a later, larger offset).
  if (q.empty()) pending_.erase(it);
  return claim;
}

std::size_t SpanTracer::PendingFrames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_count_;
}

std::uint64_t SpanTracer::PendingDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_dropped_;
}

}  // namespace bsobs
