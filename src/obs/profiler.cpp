#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace bsobs {

const char* StageName(HotStage stage) {
  switch (stage) {
    case HotStage::kCodecDecode:
      return "codec_decode";
    case HotStage::kTrackerUpdate:
      return "tracker_update";
    case HotStage::kDetectTick:
      return "detect_tick";
    case HotStage::kAddrmanSelect:
      return "addrman_select";
    case HotStage::kDispatch:
      return "dispatch";
    case HotStage::kStageCount:
      break;
  }
  return "?";
}

std::size_t HotpathProfiler::BucketFor(std::uint64_t ns) {
  // Bucket i holds samples in [2^i, 2^(i+1)) ns; bucket 0 additionally holds
  // 0-ns samples, the last bucket holds everything beyond the ladder.
  std::size_t i = 0;
  while (ns > 1 && i + 1 < kNumBuckets) {
    ns >>= 1;
    ++i;
  }
  return i;
}

void HotpathProfiler::Record(HotStage stage, std::uint64_t ns) {
  StageCell& cell = cells_[static_cast<std::size_t>(stage)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
  // Relaxed CAS min/max: rare contention, monotone convergence.
  std::uint64_t cur = cell.min_ns.load(std::memory_order_relaxed);
  while (ns < cur &&
         !cell.min_ns.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = cell.max_ns.load(std::memory_order_relaxed);
  while (ns > cur &&
         !cell.max_ns.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cell.buckets[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
}

double HotpathProfiler::Quantile(
    const std::array<std::uint64_t, kNumBuckets>& buckets, std::uint64_t count,
    double q) {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      // Interpolate linearly inside [2^i, 2^(i+1)).
      const double lo = (i == 0) ? 0.0 : static_cast<double>(1ull << i);
      const double hi = static_cast<double>(1ull << (i + 1));
      const double frac = (target - seen) / in_bucket;
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(1ull << kNumBuckets);
}

StageStats HotpathProfiler::Stats(HotStage stage) const {
  const StageCell& cell = cells_[static_cast<std::size_t>(stage)];
  StageStats s;
  s.count = cell.count.load(std::memory_order_relaxed);
  s.total_ns = cell.total_ns.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.min_ns = cell.min_ns.load(std::memory_order_relaxed);
  s.max_ns = cell.max_ns.load(std::memory_order_relaxed);
  s.ns_per_op = static_cast<double>(s.total_ns) / static_cast<double>(s.count);
  std::array<std::uint64_t, kNumBuckets> snap{};
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap[i] = cell.buckets[i].load(std::memory_order_relaxed);
  }
  s.p50_ns = Quantile(snap, s.count, 0.50);
  s.p90_ns = Quantile(snap, s.count, 0.90);
  s.p99_ns = Quantile(snap, s.count, 0.99);
  return s;
}

void HotpathProfiler::Reset() {
  for (StageCell& cell : cells_) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.total_ns.store(0, std::memory_order_relaxed);
    cell.min_ns.store(~0ull, std::memory_order_relaxed);
    cell.max_ns.store(0, std::memory_order_relaxed);
    for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
  }
}

std::string HotpathProfiler::RenderJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (std::size_t i = 0; i < kHotStageCount; ++i) {
    const auto stage = static_cast<HotStage>(i);
    const StageStats s = Stats(stage);
    if (s.count == 0) continue;
    if (!first) out << ",";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%llu,\"total_ns\":%llu,\"ns_per_op\":%.1f,"
                  "\"min_ns\":%llu,\"max_ns\":%llu,\"p50_ns\":%.1f,"
                  "\"p90_ns\":%.1f,\"p99_ns\":%.1f}",
                  StageName(stage), static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.total_ns), s.ns_per_op,
                  static_cast<unsigned long long>(s.min_ns),
                  static_cast<unsigned long long>(s.max_ns), s.p50_ns, s.p90_ns,
                  s.p99_ns);
    out << buf;
  }
  out << "}";
  return out.str();
}

std::string HotpathProfiler::RenderTable() const {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-16s %10s %12s %10s %10s %10s\n", "stage",
                "count", "ns/op", "p50_ns", "p90_ns", "p99_ns");
  out << buf;
  for (std::size_t i = 0; i < kHotStageCount; ++i) {
    const auto stage = static_cast<HotStage>(i);
    const StageStats s = Stats(stage);
    if (s.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-16s %10llu %12.1f %10.1f %10.1f %10.1f\n",
                  StageName(stage), static_cast<unsigned long long>(s.count),
                  s.ns_per_op, s.p50_ns, s.p90_ns, s.p99_ns);
    out << buf;
  }
  return out.str();
}

}  // namespace bsobs
