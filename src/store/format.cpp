#include "store/format.hpp"

#include <array>

#include "util/serialize.hpp"

namespace bsstore {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

std::uint32_t Crc32Init() { return 0xFFFFFFFFu; }

std::uint32_t Crc32Update(std::uint32_t state, bsutil::ByteSpan data) {
  const auto& table = CrcTable();
  for (const std::uint8_t byte : data) {
    state = table[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t Crc32Final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t Crc32(bsutil::ByteSpan data) {
  return Crc32Final(Crc32Update(Crc32Init(), data));
}

void AppendHeader(bsutil::ByteVec& out, const FileHeader& header) {
  bsutil::Writer w;
  w.WriteU32(kStoreMagic);
  w.WriteU16(kFormatVersion);
  w.WriteU8(static_cast<std::uint8_t>(header.kind));
  w.WriteU8(0);  // reserved
  w.WriteU64(header.seq);
  const bsutil::ByteVec& bytes = w.Data();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

bool ParseHeader(bsutil::ByteSpan data, FileHeader& out) {
  if (data.size() < kHeaderSize) return false;
  try {
    bsutil::Reader r(data.first(kHeaderSize));
    if (r.ReadU32() != kStoreMagic) return false;
    if (r.ReadU16() != kFormatVersion) return false;
    const std::uint8_t kind = r.ReadU8();
    if (kind != static_cast<std::uint8_t>(FileKind::kSnapshot) &&
        kind != static_cast<std::uint8_t>(FileKind::kJournal)) {
      return false;
    }
    r.ReadU8();  // reserved
    out.kind = static_cast<FileKind>(kind);
    out.seq = r.ReadU64();
    return true;
  } catch (const bsutil::DeserializeError&) {
    return false;
  }
}

void AppendFrame(bsutil::ByteVec& out, std::uint8_t type, bsutil::ByteSpan payload) {
  bsutil::Writer w;
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteU8(type);
  std::uint32_t crc = Crc32Update(Crc32Init(), bsutil::ByteSpan(&type, 1));
  crc = Crc32Final(Crc32Update(crc, payload));
  w.WriteU32(crc);
  const bsutil::ByteVec& head = w.Data();
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), payload.begin(), payload.end());
}

namespace {

constexpr std::size_t kFrameHead = 4 + 1 + 4;  // len + type + crc

/// Parse one frame at `pos`; returns the frame's total size (head + payload)
/// when structurally valid (length bound, complete, CRC intact), 0 otherwise.
/// `crc_budget` caps CRC work so a resync sweep over a corrupt region cannot
/// degenerate into quadratic checksumming; it is decremented by payload size.
std::size_t FrameSizeAt(bsutil::ByteSpan data, std::size_t pos,
                        std::uint8_t& type_out, std::size_t& crc_budget) {
  if (data.size() - pos < kFrameHead) return 0;
  bsutil::Reader r(data.subspan(pos, kFrameHead));
  const std::uint32_t len = r.ReadU32();
  const std::uint8_t type = r.ReadU8();
  const std::uint32_t crc = r.ReadU32();
  if (len > kMaxRecordPayload) return 0;
  if (data.size() - pos - kFrameHead < len) return 0;
  if (len > crc_budget) return 0;
  crc_budget -= len;
  const bsutil::ByteSpan payload = data.subspan(pos + kFrameHead, len);
  std::uint32_t want = Crc32Update(Crc32Init(), bsutil::ByteSpan(&type, 1));
  want = Crc32Final(Crc32Update(want, payload));
  if (want != crc) return 0;
  type_out = type;
  return kFrameHead + len;
}

}  // namespace

ScanResult ScanFrames(bsutil::ByteSpan data) {
  ScanResult result;
  std::size_t pos = 0;
  while (true) {
    if (data.size() - pos < kFrameHead) break;
    bsutil::Reader r(data.subspan(pos, kFrameHead));
    const std::uint32_t len = r.ReadU32();
    const std::uint8_t type = r.ReadU8();
    const std::uint32_t crc = r.ReadU32();
    if (len > kMaxRecordPayload) break;
    if (data.size() - pos - kFrameHead < len) break;
    const bsutil::ByteSpan payload = data.subspan(pos + kFrameHead, len);
    std::uint32_t want = Crc32Update(Crc32Init(), bsutil::ByteSpan(&type, 1));
    want = Crc32Final(Crc32Update(want, payload));
    if (want != crc) break;
    Record rec;
    rec.type = type;
    rec.payload.assign(payload.begin(), payload.end());
    result.records.push_back(std::move(rec));
    pos += kFrameHead + len;
    if (type == kCommitRecord) {
      result.committed_frame_count = result.records.size();
      result.committed_bytes = pos;
    }
  }
  result.valid_bytes = pos;
  result.clean = pos == data.size();
  result.trailing_bytes = data.size() - result.committed_bytes;
  // Records under the last commit marker, markers excluded.
  for (std::size_t i = 0; i < result.committed_frame_count; ++i) {
    if (result.records[i].type != kCommitRecord) ++result.committed_records;
  }

  // Tail forensics: a torn append ends the region at the first bad frame, so
  // nothing past it should ever parse. Slide byte-by-byte from the damage
  // looking for a later valid frame chain; hits mean mid-stream corruption
  // destroyed data the log had already absorbed. Work is bounded (slide
  // window + CRC budget) because this only informs reporting — truncation to
  // the committed prefix happens regardless.
  if (!result.clean) {
    constexpr std::size_t kResyncSlideWindow = 256 * 1024;
    std::size_t crc_budget = 4 * 1024 * 1024;
    const std::size_t slide_end =
        std::min(data.size(), pos + 1 + kResyncSlideWindow);
    for (std::size_t probe = pos + 1; probe < slide_end; ++probe) {
      std::uint8_t type = 0;
      const std::size_t first = FrameSizeAt(data, probe, type, crc_budget);
      if (first == 0) {
        if (crc_budget == 0) break;
        continue;
      }
      result.resync_offset = probe;
      std::size_t chain = probe;
      std::size_t size = first;
      while (size != 0) {
        ++result.resynced_frames;
        if (type == kCommitRecord) ++result.resynced_commits;
        chain += size;
        size = FrameSizeAt(data, chain, type, crc_budget);
      }
      break;
    }
  }
  return result;
}

const char* ToString(FileKind kind) {
  switch (kind) {
    case FileKind::kSnapshot: return "snapshot";
    case FileKind::kJournal: return "journal";
  }
  return "?";
}

}  // namespace bsstore
