// Store fsck — offline validation and repair of a StateStore directory.
//
// Walks every file in the directory, validates headers and CRC frames,
// determines the active generation (highest seq with a fully intact
// snapshot), and classifies everything else: torn journal tails, complete
// but uncommitted transactions, corrupt snapshots, orphan temp files, stale
// generations. With `repair` set it makes the directory clean again without
// ever touching durable data: the journal is truncated to its last commit
// boundary (temp + rename), and orphan/stale files are deleted.
//
// `banscore-lab fsck` is the CLI face; the recovery-smoke stage of
// scripts/check.sh gates on its exit code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/format.hpp"
#include "store/fs.hpp"

namespace bsstore {

struct FsckFileReport {
  std::string name;
  FileKind kind = FileKind::kJournal;
  std::uint64_t seq = 0;
  bool header_ok = false;
  bool clean = false;            // every byte parsed, all CRCs intact
  std::size_t records = 0;       // structurally valid records (markers excluded)
  std::size_t committed = 0;     // records under a commit marker
  std::size_t dropped_frames = 0;  // uncommitted frames + torn tail
  std::size_t garbage_bytes = 0;   // bytes past the last committed boundary
  std::size_t resynced_frames = 0;  // intact frames found past the damage
  std::size_t resynced_commits = 0;  // commit markers among them (lost txns)
  bool stale = false;            // belongs to a superseded generation
  bool orphan_tmp = false;       // leftover *.tmp from an interrupted rename
  bool repaired = false;         // action taken (truncated or deleted)
};

struct FsckReport {
  bool store_found = false;     // directory exists and holds store files
  bool healthy = false;         // active snapshot intact + journal clean
  bool repaired = false;        // repair ran and left the store healthy
  std::uint64_t active_seq = 0;
  std::size_t active_records = 0;  // replayable records (snapshot + journal)
  std::size_t truncated_frames = 0;
  std::size_t truncated_bytes = 0;  // journal bytes past the durable boundary
  std::size_t resynced_frames = 0;  // active-journal frames stranded past damage
  std::size_t lost_commits = 0;     // stranded commit markers (real data loss)
  std::size_t corrupt_snapshots = 0;
  std::size_t orphan_tmp_files = 0;
  std::size_t stale_files = 0;
  std::vector<FsckFileReport> files;

  std::string ToJson() const;
};

/// Validate (and with `repair`, fix) the store at `dir`. When `registry` is
/// non-null the truncation/corruption tallies are mirrored into the
/// bs_store_fsck_* counters.
FsckReport RunFsck(StoreFs& fs, const std::string& dir, bool repair,
                   bsobs::MetricsRegistry* registry = nullptr);

}  // namespace bsstore
