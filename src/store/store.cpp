#include "store/store.hpp"

#include <algorithm>
#include <cstdio>

#include "util/log.hpp"

namespace bsstore {

namespace {

bsutil::ByteVec FramesOf(const std::vector<Record>& records, bool with_marker) {
  bsutil::ByteVec buf;
  for (const Record& rec : records) {
    AppendFrame(buf, rec.type, rec.payload);
  }
  if (with_marker) AppendFrame(buf, kCommitRecord, {});
  return buf;
}

}  // namespace

StateStore::StateStore(StoreFs& fs, std::string dir) : fs_(fs), dir_(std::move(dir)) {}

StateStore::~StateStore() { fs_.Close(wal_fd_); }

std::string StateStore::SnapshotName(std::uint64_t seq) {
  return "snap-" + std::to_string(seq) + ".dat";
}

std::string StateStore::JournalName(std::uint64_t seq) {
  return "wal-" + std::to_string(seq) + ".log";
}

bool StateStore::ParseStoreName(const std::string& name, FileKind& kind,
                                std::uint64_t& seq) {
  std::string stem;
  if (name.size() > 9 && name.rfind("snap-", 0) == 0 &&
      name.compare(name.size() - 4, 4, ".dat") == 0) {
    kind = FileKind::kSnapshot;
    stem = name.substr(5, name.size() - 9);
  } else if (name.size() > 8 && name.rfind("wal-", 0) == 0 &&
             name.compare(name.size() - 4, 4, ".log") == 0) {
    kind = FileKind::kJournal;
    stem = name.substr(4, name.size() - 8);
  } else {
    return false;
  }
  if (stem.empty()) return false;
  seq = 0;
  for (const char c : stem) {
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

void StateStore::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_replayed_records_ = registry.GetCounter("bs_store_replayed_records_total",
                                            "Records replayed on store open");
  m_truncated_frames_ = registry.GetCounter(
      "bs_store_truncated_frames_total",
      "Journal frames dropped on open (uncommitted or torn)");
  m_truncated_bytes_ = registry.GetCounter("bs_store_truncated_bytes_total",
                                           "Journal bytes cut off on open");
  m_commits_ =
      registry.GetCounter("bs_store_commits_total", "Journal transactions committed");
  m_snapshots_ =
      registry.GetCounter("bs_store_snapshots_total", "Snapshots written (compactions)");
  m_journal_failures_ = registry.GetCounter("bs_store_journal_failures_total",
                                            "Journal writes that failed");
  m_corrupt_snapshots_ = registry.GetCounter(
      "bs_store_corrupt_snapshots_total", "Snapshot generations skipped as corrupt");
}

bool StateStore::WriteFileDurably(const std::string& path, bsutil::ByteSpan contents) {
  const int fd = fs_.OpenWrite(path, /*truncate=*/true);
  if (fd < 0) return false;
  const bool ok = fs_.Write(fd, contents) && fs_.Fsync(fd);
  fs_.Close(fd);
  if (!ok) fs_.Remove(path);
  return ok;
}

bool StateStore::OpenJournalHandle(std::uint64_t seq, bool truncate) {
  fs_.Close(wal_fd_);
  wal_fd_ = fs_.OpenWrite(JoinPath(dir_, JournalName(seq)), truncate);
  if (wal_fd_ < 0) return false;
  if (truncate) {
    bsutil::ByteVec header;
    AppendHeader(header, {FileKind::kJournal, seq});
    if (!fs_.Write(wal_fd_, header) || !fs_.Fsync(wal_fd_)) return false;
  }
  return true;
}

bool StateStore::WriteFresh(std::uint64_t seq) {
  // Same temp + rename discipline as a compaction so a crash mid-initialize
  // can never leave a half-written snapshot that parses.
  bsutil::ByteVec snap;
  AppendHeader(snap, {FileKind::kSnapshot, seq});
  AppendFrame(snap, kCommitRecord, {});
  const std::string tmp = JoinPath(dir_, SnapshotName(seq) + ".tmp");
  if (!WriteFileDurably(tmp, snap)) return false;
  if (!fs_.Rename(tmp, JoinPath(dir_, SnapshotName(seq)))) {
    fs_.Remove(tmp);
    return false;
  }
  return OpenJournalHandle(seq, /*truncate=*/true);
}

bool StateStore::TruncateJournal(bsutil::ByteSpan good_frames) {
  bsutil::ByteVec contents;
  AppendHeader(contents, {FileKind::kJournal, seq_});
  contents.insert(contents.end(), good_frames.begin(), good_frames.end());
  const std::string path = JoinPath(dir_, JournalName(seq_));
  const std::string tmp = path + ".tmp";
  if (!WriteFileDurably(tmp, contents)) return false;
  if (!fs_.Rename(tmp, path)) {
    fs_.Remove(tmp);
    return false;
  }
  return OpenJournalHandle(seq_, /*truncate=*/false);
}

void StateStore::DeleteStaleGenerations() {
  for (const std::string& name : fs_.ListDir(dir_)) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs_.Remove(JoinPath(dir_, name));
      continue;
    }
    FileKind kind;
    std::uint64_t seq = 0;
    if (ParseStoreName(name, kind, seq) && seq < seq_) {
      fs_.Remove(JoinPath(dir_, name));
    }
  }
}

bool StateStore::Open(const ReplayFn& replay) {
  if (open_) return false;
  if (!fs_.MkDir(dir_)) {
    bsutil::Log(bsutil::LogLevel::kError, "store",
                "cannot create store directory: ", dir_);
    return false;
  }

  // Candidate generations, newest first.
  std::vector<std::uint64_t> snap_seqs;
  for (const std::string& name : fs_.ListDir(dir_)) {
    FileKind kind;
    std::uint64_t seq = 0;
    if (ParseStoreName(name, kind, seq) && kind == FileKind::kSnapshot) {
      snap_seqs.push_back(seq);
    }
  }
  std::sort(snap_seqs.rbegin(), snap_seqs.rend());

  std::vector<Record> snapshot_records;
  bool found = false;
  std::uint64_t max_seen = 0;
  for (const std::uint64_t seq : snap_seqs) {
    max_seen = std::max(max_seen, seq);
    bsutil::ByteVec data;
    FileHeader header;
    if (fs_.ReadFile(JoinPath(dir_, SnapshotName(seq)), data) &&
        ParseHeader(data, header) && header.kind == FileKind::kSnapshot &&
        header.seq == seq) {
      const bsutil::ByteSpan region =
          bsutil::ByteSpan(data).subspan(kHeaderSize);
      ScanResult scan = ScanFrames(region);
      // A snapshot was written and renamed atomically, so anything short of
      // a fully clean file terminated by its commit marker is corruption.
      if (scan.clean && !scan.records.empty() &&
          scan.committed_frame_count == scan.records.size()) {
        snapshot_records = std::move(scan.records);
        seq_ = seq;
        found = true;
        break;
      }
    }
    ++open_stats_.corrupt_snapshots;
    if (m_corrupt_snapshots_ != nullptr) m_corrupt_snapshots_->Inc();
    bsutil::Log(bsutil::LogLevel::kError, "store",
                "corrupt snapshot generation skipped: ", SnapshotName(seq));
  }

  if (!found) {
    open_stats_.fresh_store = true;
    seq_ = max_seen + 1;
    if (!WriteFresh(seq_)) return false;
    open_ = true;
    DeleteStaleGenerations();
    return true;
  }

  // Replay the snapshot.
  for (const Record& rec : snapshot_records) {
    if (rec.type == kCommitRecord) continue;
    ++open_stats_.snapshot_records;
    ++open_stats_.replayed_records;
    if (m_replayed_records_ != nullptr) m_replayed_records_->Inc();
    replay(rec.type, rec.payload);
  }

  // Replay the journal's committed prefix.
  const std::string wal_path = JoinPath(dir_, JournalName(seq_));
  bsutil::ByteVec wal_data;
  bool wal_ok = false;
  if (fs_.ReadFile(wal_path, wal_data)) {
    FileHeader header;
    if (ParseHeader(wal_data, header) && header.kind == FileKind::kJournal &&
        header.seq == seq_) {
      const bsutil::ByteSpan region =
          bsutil::ByteSpan(wal_data).subspan(kHeaderSize);
      const ScanResult scan = ScanFrames(region);
      for (std::size_t i = 0; i < scan.committed_frame_count; ++i) {
        const Record& rec = scan.records[i];
        if (rec.type == kCommitRecord) {
          ++journal_txns_;
          continue;
        }
        ++open_stats_.replayed_records;
        if (m_replayed_records_ != nullptr) m_replayed_records_->Inc();
        replay(rec.type, rec.payload);
      }
      const std::size_t dropped_frames =
          scan.records.size() - scan.committed_frame_count + (scan.clean ? 0 : 1);
      if (dropped_frames > 0) {
        open_stats_.journal_was_dirty = true;
        open_stats_.truncated_frames += dropped_frames;
        open_stats_.truncated_bytes += region.size() - scan.committed_bytes;
        open_stats_.resynced_frames += scan.resynced_frames;
        open_stats_.lost_commits += scan.resynced_commits;
        if (scan.resynced_commits > 0) {
          // Intact committed transactions exist past the damage. Truncation
          // is still the only sound recovery (replay may not skip a hole),
          // but this is data loss, not a routine torn append — say so.
          bsutil::Log(bsutil::LogLevel::kError, "store",
                      "mid-journal corruption: ", scan.resynced_commits,
                      " committed transaction(s) stranded past the damage in ",
                      JournalName(seq_), " were dropped");
        }
        if (m_truncated_frames_ != nullptr) m_truncated_frames_->Inc(dropped_frames);
        if (m_truncated_bytes_ != nullptr) {
          m_truncated_bytes_->Inc(region.size() - scan.committed_bytes);
        }
        wal_ok = TruncateJournal(region.first(scan.committed_bytes));
      } else {
        wal_ok = OpenJournalHandle(seq_, /*truncate=*/false);
      }
    } else {
      // Unparseable journal header: the whole file is untrustworthy, but the
      // snapshot is intact — restart the journal empty.
      open_stats_.journal_was_dirty = true;
      open_stats_.truncated_bytes += wal_data.size();
      if (m_truncated_frames_ != nullptr) m_truncated_frames_->Inc();
      if (m_truncated_bytes_ != nullptr) m_truncated_bytes_->Inc(wal_data.size());
      ++open_stats_.truncated_frames;
      wal_ok = OpenJournalHandle(seq_, /*truncate=*/true);
    }
  } else {
    // No journal (crash between snapshot rename and journal creation): the
    // snapshot alone is the state.
    wal_ok = OpenJournalHandle(seq_, /*truncate=*/true);
  }

  open_ = true;
  if (!wal_ok) {
    // Appending is currently impossible; fall back to compaction, which
    // starts a fresh generation (and thus a fresh journal).
    wal_failed_ = true;
    if (snapshot_source_ && CompactNow()) wal_failed_ = false;
  }
  DeleteStaleGenerations();
  return true;
}

void StateStore::Append(std::uint8_t type, bsutil::ByteSpan payload) {
  Record rec;
  rec.type = type;
  rec.payload.assign(payload.begin(), payload.end());
  staged_.push_back(std::move(rec));
}

bool StateStore::Commit() {
  if (!open_) return false;
  if (staged_.empty()) return true;
  if (!wal_failed_) {
    const bsutil::ByteVec buf = FramesOf(staged_, /*with_marker=*/true);
    if (fs_.Write(wal_fd_, buf) && fs_.Fsync(wal_fd_)) {
      staged_.clear();
      ++journal_txns_;
      if (m_commits_ != nullptr) m_commits_->Inc();
      if (journal_txns_ >= compact_threshold_ && snapshot_source_) {
        CompactNow();  // best-effort; the journal stays authoritative
      }
      return true;
    }
    wal_failed_ = true;
    if (m_journal_failures_ != nullptr) m_journal_failures_->Inc();
    bsutil::Log(bsutil::LogLevel::kError, "store",
                "journal write failed, attempting snapshot fallback: ", dir_);
  }
  // Journal is unusable (ENOSPC, torn handle, ...): a full snapshot captures
  // the staged mutations too, since the caller mutates its state before
  // committing.
  if (snapshot_source_ && CompactNow()) {
    staged_.clear();
    return true;
  }
  return false;
}

bool StateStore::AppendCommit(std::uint8_t type, bsutil::ByteSpan payload) {
  Append(type, payload);
  return Commit();
}

bool StateStore::CompactNow() {
  if (!open_ || !snapshot_source_) return false;
  const std::uint64_t next_seq = seq_ + 1;

  bsutil::ByteVec snap;
  AppendHeader(snap, {FileKind::kSnapshot, next_seq});
  snapshot_source_([&snap](std::uint8_t type, bsutil::ByteSpan payload) {
    AppendFrame(snap, type, payload);
  });
  AppendFrame(snap, kCommitRecord, {});

  const std::string final_path = JoinPath(dir_, SnapshotName(next_seq));
  const std::string tmp = final_path + ".tmp";
  if (!WriteFileDurably(tmp, snap)) return false;
  if (!fs_.Rename(tmp, final_path)) {
    fs_.Remove(tmp);
    return false;
  }

  // The new generation is durable from here on; everything further is
  // housekeeping that a crash may skip.
  const std::uint64_t old_seq = seq_;
  seq_ = next_seq;
  journal_txns_ = 0;
  staged_.clear();
  wal_failed_ = !OpenJournalHandle(next_seq, /*truncate=*/true);
  fs_.Remove(JoinPath(dir_, JournalName(old_seq)));
  fs_.Remove(JoinPath(dir_, SnapshotName(old_seq)));
  if (m_snapshots_ != nullptr) m_snapshots_->Inc();
  return true;
}

}  // namespace bsstore
