#include "store/fs.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace bsstore {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

bool RealFs::Exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

bool RealFs::ReadFile(const std::string& path, bsutil::ByteVec& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  std::uint8_t buf[16384];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::vector<std::string> RealFs::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st {};
    if (::stat(JoinPath(dir, name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool RealFs::MkDir(const std::string& dir) {
  if (dir.empty()) return false;
  // Create each missing component (mkdir -p).
  std::string path;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t next = dir.find('/', pos);
    path = next == std::string::npos ? dir : dir.substr(0, next);
    if (!path.empty() && ::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  struct stat st {};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

int RealFs::OpenWrite(const std::string& path, bool truncate) {
  const int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  return ::open(path.c_str(), flags, 0644);
}

bool RealFs::Write(int fd, bsutil::ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n <= 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool RealFs::Fsync(int fd) { return ::fsync(fd) == 0; }

void RealFs::Close(int fd) {
  if (fd >= 0) ::close(fd);
}

bool RealFs::Rename(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str()) == 0;
}

bool RealFs::Remove(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

RealFs& RealFs::Instance() {
  static RealFs fs;
  return fs;
}

}  // namespace bsstore
