// bsstore on-disk format: CRC32-framed, length-prefixed records behind a
// versioned file header. Both store file kinds (snapshot and journal) share
// the same frame grammar so one scanner serves replay, fsck, and tests:
//
//   file   := header frame*
//   header := magic:u32 "BST1" | format_version:u16 | kind:u8 | reserved:u8
//             | seq:u64                                   (16 bytes)
//   frame  := len:u32 | type:u8 | crc:u32 | payload:u8[len]
//
// The CRC (IEEE 802.3, reflected) covers the type byte plus the payload, so
// any single-bit flip anywhere in a frame is detected: a flip in the payload
// or type fails the CRC directly, and a flip in `len` or `crc` misaligns or
// mismatches the check. Scanning stops at the first frame that fails any
// check — a torn tail can only ever *truncate* the record sequence, never
// mis-decode it into different records (the property test sweeps every
// single-bit flip to hold this).
//
// Frame type 0 (`kCommitRecord`) is the journal's transaction boundary: the
// writer appends staged records plus one commit marker in a single write and
// fsyncs; replay delivers records only up to the last intact marker, so a
// crash mid-append atomically drops the whole uncommitted batch.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace bsstore {

constexpr std::uint32_t kStoreMagic = 0x42535431;  // "BST1"
constexpr std::uint16_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 16;
/// Allocation guard: no legal record payload approaches this.
constexpr std::size_t kMaxRecordPayload = 16 * 1024 * 1024;

/// Frame type reserved for the transaction-boundary marker (empty payload).
constexpr std::uint8_t kCommitRecord = 0;

enum class FileKind : std::uint8_t { kSnapshot = 1, kJournal = 2 };

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), the banlist/ckpt
/// framing checksum. Detects all single-bit and burst-< 32-bit errors.
std::uint32_t Crc32(bsutil::ByteSpan data);
/// Incremental form: feed `Crc32Update(Crc32Init(), ...)` chunks, finish
/// with Crc32Final.
std::uint32_t Crc32Init();
std::uint32_t Crc32Update(std::uint32_t state, bsutil::ByteSpan data);
std::uint32_t Crc32Final(std::uint32_t state);

struct FileHeader {
  FileKind kind = FileKind::kJournal;
  std::uint64_t seq = 0;
};

/// One decoded record.
struct Record {
  std::uint8_t type = 0;
  bsutil::ByteVec payload;

  bool operator==(const Record& other) const = default;
};

/// Serialize the 16-byte header into `out`.
void AppendHeader(bsutil::ByteVec& out, const FileHeader& header);
/// Parse a header; false on short input, bad magic, or unknown version.
bool ParseHeader(bsutil::ByteSpan data, FileHeader& out);

/// Append one CRC-framed record to `out`.
void AppendFrame(bsutil::ByteVec& out, std::uint8_t type, bsutil::ByteSpan payload);

/// Result of scanning the frame region (everything after the header).
struct ScanResult {
  /// Structurally valid frames in order, commit markers included.
  std::vector<Record> records;
  /// Byte offset (within the scanned region) of the first bad frame; equals
  /// the region size when every byte parsed cleanly.
  std::size_t valid_bytes = 0;
  /// True when the region ends exactly on a frame boundary with every CRC
  /// intact (no torn/corrupt tail).
  bool clean = false;
  /// Number of records in `records` covered by a commit marker (i.e. the
  /// durable prefix a journal replay may deliver). Commit markers themselves
  /// are not counted.
  std::size_t committed_records = 0;
  /// Index into `records` one past the last commit marker (replay boundary).
  std::size_t committed_frame_count = 0;
  /// Byte offset (within the scanned region) one past the last commit
  /// marker — the physical durable prefix a repair may truncate to.
  std::size_t committed_bytes = 0;
  /// Bytes past the last commit boundary (uncommitted frames, torn tail,
  /// and raw trailing garbage together) — exactly what a repair truncates.
  std::size_t trailing_bytes = 0;
  /// Tail forensics, filled only when the region is not clean: the scanner
  /// resynchronizes past the first bad frame by sliding forward until a
  /// structurally valid frame chain parses again. Any frame found there
  /// means the region holds mid-stream corruption rather than a plain torn
  /// append — and a commit marker among them means *committed* data sits
  /// beyond the damage. Recovery still truncates (replaying across a hole
  /// is unsound), but it must report the loss instead of passing it off as
  /// an ordinary dirty tail.
  std::size_t resynced_frames = 0;
  /// Commit markers among the resynchronized frames (lost transactions).
  std::size_t resynced_commits = 0;
  /// Region-relative offset where the scanner resynchronized (0 if never).
  std::size_t resync_offset = 0;
};

/// Scan `data` (the post-header region of a store file) for frames,
/// truncating at the first length/CRC violation.
ScanResult ScanFrames(bsutil::ByteSpan data);

const char* ToString(FileKind kind);

}  // namespace bsstore
