#include "store/fsck.hpp"

#include <algorithm>

#include "store/store.hpp"

namespace bsstore {

namespace {

struct ScannedFile {
  FsckFileReport report;
  ScanResult scan;
  bsutil::ByteVec data;
};

ScannedFile ScanStoreFile(StoreFs& fs, const std::string& dir,
                          const std::string& name, FileKind kind,
                          std::uint64_t seq) {
  ScannedFile out;
  out.report.name = name;
  out.report.kind = kind;
  out.report.seq = seq;
  FileHeader header;
  if (!fs.ReadFile(JoinPath(dir, name), out.data) ||
      !ParseHeader(out.data, header) || header.kind != kind || header.seq != seq) {
    out.report.garbage_bytes = out.data.size();
    return out;
  }
  out.report.header_ok = true;
  out.scan = ScanFrames(bsutil::ByteSpan(out.data).subspan(kHeaderSize));
  out.report.clean = out.scan.clean;
  for (const Record& rec : out.scan.records) {
    if (rec.type != kCommitRecord) ++out.report.records;
  }
  out.report.committed = out.scan.committed_records;
  out.report.dropped_frames = out.scan.records.size() - out.scan.committed_frame_count +
                              (out.scan.clean ? 0 : 1);
  out.report.garbage_bytes =
      out.data.size() - kHeaderSize - out.scan.committed_bytes;
  out.report.resynced_frames = out.scan.resynced_frames;
  out.report.resynced_commits = out.scan.resynced_commits;
  return out;
}

}  // namespace

FsckReport RunFsck(StoreFs& fs, const std::string& dir, bool repair,
                   bsobs::MetricsRegistry* registry) {
  FsckReport report;
  std::vector<std::string> tmp_files;
  struct GenFile {
    std::string name;
    FileKind kind;
    std::uint64_t seq;
  };
  std::vector<GenFile> gen_files;

  for (const std::string& name : fs.ListDir(dir)) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      tmp_files.push_back(name);
      continue;
    }
    FileKind kind;
    std::uint64_t seq = 0;
    if (StateStore::ParseStoreName(name, kind, seq)) {
      gen_files.push_back({name, kind, seq});
    }
  }
  report.store_found = !gen_files.empty() || !tmp_files.empty();

  // Active generation: highest seq whose snapshot is fully intact.
  std::vector<std::uint64_t> snap_seqs;
  for (const GenFile& f : gen_files) {
    if (f.kind == FileKind::kSnapshot) snap_seqs.push_back(f.seq);
  }
  std::sort(snap_seqs.rbegin(), snap_seqs.rend());

  std::uint64_t active_seq = 0;
  bool active_found = false;
  for (const std::uint64_t seq : snap_seqs) {
    const ScannedFile snap =
        ScanStoreFile(fs, dir, StateStore::SnapshotName(seq), FileKind::kSnapshot, seq);
    if (snap.report.header_ok && snap.report.clean && !snap.scan.records.empty() &&
        snap.scan.committed_frame_count == snap.scan.records.size()) {
      active_seq = seq;
      active_found = true;
      break;
    }
    ++report.corrupt_snapshots;
  }
  report.active_seq = active_seq;

  bool journal_clean = true;
  for (const GenFile& f : gen_files) {
    ScannedFile scanned = ScanStoreFile(fs, dir, f.name, f.kind, f.seq);
    FsckFileReport& fr = scanned.report;
    if (!active_found || f.seq != active_seq) {
      fr.stale = true;
      ++report.stale_files;
      if (repair && active_found && f.seq < active_seq) {
        fr.repaired = fs.Remove(JoinPath(dir, f.name));
      }
      report.files.push_back(fr);
      continue;
    }
    if (f.kind == FileKind::kSnapshot) {
      report.active_records += fr.committed;
    } else {
      // The active journal: only its committed prefix is durable state.
      report.active_records += fr.committed;
      report.truncated_frames += fr.dropped_frames;
      report.truncated_bytes += fr.garbage_bytes;
      report.resynced_frames += fr.resynced_frames;
      report.lost_commits += fr.resynced_commits;
      if (!fr.header_ok || fr.dropped_frames > 0) {
        journal_clean = false;
        if (repair) {
          // Truncate to the last commit boundary via temp + rename; an
          // unparseable journal restarts empty (the snapshot is intact).
          bsutil::ByteVec contents;
          AppendHeader(contents, {FileKind::kJournal, f.seq});
          if (fr.header_ok) {
            const bsutil::ByteSpan region =
                bsutil::ByteSpan(scanned.data).subspan(kHeaderSize);
            const bsutil::ByteSpan good = region.first(scanned.scan.committed_bytes);
            contents.insert(contents.end(), good.begin(), good.end());
          }
          const std::string path = JoinPath(dir, f.name);
          const std::string tmp = path + ".tmp";
          const int fd = fs.OpenWrite(tmp, /*truncate=*/true);
          bool ok = fd >= 0 && fs.Write(fd, contents) && fs.Fsync(fd);
          fs.Close(fd);
          ok = ok && fs.Rename(tmp, path);
          if (!ok) fs.Remove(tmp);
          fr.repaired = ok;
        }
      }
    }
    report.files.push_back(fr);
  }

  // The active generation legitimately lacks a journal right after a
  // compaction crash; that is healthy (snapshot-only state), not damage.

  for (const std::string& name : tmp_files) {
    FsckFileReport fr;
    fr.name = name;
    fr.orphan_tmp = true;
    ++report.orphan_tmp_files;
    if (repair) fr.repaired = fs.Remove(JoinPath(dir, name));
    report.files.push_back(fr);
  }

  report.healthy = active_found && journal_clean && report.orphan_tmp_files == 0 &&
                   report.stale_files == 0;
  if (repair && active_found) {
    bool all_fixed = true;
    for (const FsckFileReport& fr : report.files) {
      const bool needed_fix = fr.orphan_tmp || (fr.stale && fr.seq < active_seq) ||
                              (!fr.stale && fr.kind == FileKind::kJournal &&
                               (!fr.header_ok || fr.dropped_frames > 0));
      if (needed_fix && !fr.repaired) all_fixed = false;
    }
    report.repaired = all_fixed;
  }

  if (registry != nullptr) {
    registry
        ->GetCounter("bs_store_fsck_truncated_frames_total",
                     "Frames fsck found past the durable boundary")
        ->Inc(report.truncated_frames);
    registry
        ->GetCounter("bs_store_fsck_truncated_bytes_total",
                     "Journal bytes fsck found past the durable boundary")
        ->Inc(report.truncated_bytes);
    registry
        ->GetCounter("bs_store_fsck_lost_commits_total",
                     "Committed transactions stranded past mid-journal damage")
        ->Inc(report.lost_commits);
    registry
        ->GetCounter("bs_store_fsck_corrupt_snapshots_total",
                     "Corrupt snapshot generations fsck skipped")
        ->Inc(report.corrupt_snapshots);
    registry
        ->GetCounter("bs_store_fsck_runs_total", "fsck invocations")
        ->Inc();
  }
  return report;
}

std::string FsckReport::ToJson() const {
  std::string out = "{";
  auto add = [&out](const std::string& key, const std::string& value, bool quote) {
    if (out.size() > 1) out += ",";
    out += "\"" + key + "\":";
    out += quote ? "\"" + value + "\"" : value;
  };
  add("store_found", store_found ? "true" : "false", false);
  add("healthy", healthy ? "true" : "false", false);
  add("repaired", repaired ? "true" : "false", false);
  add("active_seq", std::to_string(active_seq), false);
  add("active_records", std::to_string(active_records), false);
  add("truncated_frames", std::to_string(truncated_frames), false);
  add("truncated_bytes", std::to_string(truncated_bytes), false);
  add("resynced_frames", std::to_string(resynced_frames), false);
  add("lost_commits", std::to_string(lost_commits), false);
  add("corrupt_snapshots", std::to_string(corrupt_snapshots), false);
  add("orphan_tmp_files", std::to_string(orphan_tmp_files), false);
  add("stale_files", std::to_string(stale_files), false);
  std::string files_json = "[";
  for (const FsckFileReport& fr : files) {
    if (files_json.size() > 1) files_json += ",";
    files_json += "{\"name\":\"" + fr.name + "\",\"kind\":\"" +
                  (fr.orphan_tmp ? "tmp" : ToString(fr.kind)) +
                  "\",\"seq\":" + std::to_string(fr.seq) +
                  ",\"header_ok\":" + (fr.header_ok ? "true" : "false") +
                  ",\"clean\":" + (fr.clean ? "true" : "false") +
                  ",\"records\":" + std::to_string(fr.records) +
                  ",\"committed\":" + std::to_string(fr.committed) +
                  ",\"dropped_frames\":" + std::to_string(fr.dropped_frames) +
                  ",\"garbage_bytes\":" + std::to_string(fr.garbage_bytes) +
                  ",\"resynced_frames\":" + std::to_string(fr.resynced_frames) +
                  ",\"resynced_commits\":" + std::to_string(fr.resynced_commits) +
                  ",\"stale\":" + (fr.stale ? "true" : "false") +
                  ",\"orphan_tmp\":" + (fr.orphan_tmp ? "true" : "false") +
                  ",\"repaired\":" + (fr.repaired ? "true" : "false") + "}";
  }
  files_json += "]";
  add("files", files_json, false);
  out += "}";
  return out;
}

}  // namespace bsstore
