// StateStore — crash-consistent durable state: a write-ahead journal plus
// periodic atomic snapshots over a StoreFs.
//
// On disk a store directory holds one active *generation* `<seq>`:
//
//   snap-<seq>.dat   full state at the moment the generation began
//                    (written to snap-<seq>.tmp, fsynced, renamed — atomic)
//   wal-<seq>.log    every committed mutation since that snapshot
//                    (append frames + commit marker, then fsync)
//
// Protocol:
//   * Append() stages records; Commit() writes the staged frames plus a
//     commit marker in one append and fsyncs. A transaction is durable iff
//     its marker is intact on disk — a crash mid-append atomically drops
//     the whole batch on replay.
//   * When the journal exceeds the compaction threshold (or a journal write
//     fails, e.g. ENOSPC), the store writes a fresh snapshot from the
//     caller-provided snapshot source and starts generation seq+1; stale
//     generations are deleted only after the new one is fully durable.
//   * Open() picks the highest-seq valid snapshot (falling back past a
//     corrupt one), replays it, then replays the journal's committed prefix,
//     truncating at the first bad frame. A dirty journal tail is physically
//     truncated (rewrite + rename) so the next append lands on a clean
//     boundary.
//
// Recovery invariant (held by the crash-point sweep in tests/store_test.cpp):
// after a crash at ANY syscall index, reopening recovers a state that (a) is
// a prefix of the committed transaction sequence, and (b) contains at least
// every transaction whose Commit() had been acknowledged before the crash.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/format.hpp"
#include "store/fs.hpp"

namespace bsstore {

/// What Open() found and did (also mirrored into bs_store_* counters when
/// metrics are attached).
struct StoreStats {
  std::uint64_t replayed_records = 0;    // snapshot + journal records delivered
  std::uint64_t snapshot_records = 0;    // of which came from the snapshot
  std::uint64_t truncated_frames = 0;    // complete-but-uncommitted frames dropped
  std::uint64_t truncated_bytes = 0;     // journal bytes cut off (torn tail)
  std::uint64_t corrupt_snapshots = 0;   // generations skipped for a bad snapshot
  std::uint64_t resynced_frames = 0;     // intact frames found past the damage
  std::uint64_t lost_commits = 0;        // commit markers among them (lost txns)
  bool journal_was_dirty = false;        // tail truncation happened on open
  bool fresh_store = false;              // directory had no prior generation
};

class StateStore {
 public:
  /// `fs` must outlive the store. `dir` is created on Open when absent.
  StateStore(StoreFs& fs, std::string dir);
  ~StateStore();
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  using ReplayFn = std::function<void(std::uint8_t type, bsutil::ByteSpan payload)>;
  using SnapshotSink = std::function<void(std::uint8_t type, bsutil::ByteSpan payload)>;
  /// Streams the caller's full current state into the sink; used for every
  /// compaction. Must be set before Open() so recovery can compact.
  void SetSnapshotSource(std::function<void(const SnapshotSink&)> source) {
    snapshot_source_ = std::move(source);
  }
  /// Journal transactions (not records) after which Commit() compacts.
  void SetCompactThreshold(std::size_t txns) { compact_threshold_ = txns; }

  /// Load the newest durable generation, delivering every record (snapshot
  /// first, then the journal's committed prefix) to `replay`. Returns false
  /// when the directory cannot be created or a fresh generation cannot be
  /// written; the store is unusable then.
  bool Open(const ReplayFn& replay);
  bool IsOpen() const { return open_; }

  /// Stage one record for the next Commit().
  void Append(std::uint8_t type, bsutil::ByteSpan payload);
  /// Durably commit the staged records as one atomic transaction. True once
  /// the fsync (or a fallback compaction after a journal failure) succeeded.
  bool Commit();
  /// Append + Commit in one call.
  bool AppendCommit(std::uint8_t type, bsutil::ByteSpan payload);
  /// Write a fresh snapshot now and start a new generation.
  bool CompactNow();

  const StoreStats& OpenStats() const { return open_stats_; }
  std::uint64_t ActiveSeq() const { return seq_; }
  /// Committed journal transactions in the active generation.
  std::size_t JournalTxns() const { return journal_txns_; }
  const std::string& Dir() const { return dir_; }

  /// Publish bs_store_* counters into `registry`. Attach before Open() to
  /// capture replay/truncation counts.
  void AttachMetrics(bsobs::MetricsRegistry& registry);

  // ---- Path helpers (shared with fsck) ----
  static std::string SnapshotName(std::uint64_t seq);
  static std::string JournalName(std::uint64_t seq);
  /// Parse "snap-<seq>.dat" / "wal-<seq>.log"; false for other names.
  static bool ParseStoreName(const std::string& name, FileKind& kind,
                             std::uint64_t& seq);

 private:
  bool WriteFresh(std::uint64_t seq);
  bool OpenJournalHandle(std::uint64_t seq, bool truncate);
  /// Rewrite the active journal to exactly `keep` bytes of frame data (tail
  /// truncation made physical) via tmp + rename.
  bool TruncateJournal(bsutil::ByteSpan good_frames);
  void DeleteStaleGenerations();
  bool WriteFileDurably(const std::string& path, bsutil::ByteSpan contents);

  StoreFs& fs_;
  std::string dir_;
  std::uint64_t seq_ = 0;
  int wal_fd_ = -1;
  bool open_ = false;
  bool wal_failed_ = false;
  std::size_t journal_txns_ = 0;
  std::size_t compact_threshold_ = 256;
  std::vector<Record> staged_;
  std::function<void(const SnapshotSink&)> snapshot_source_;
  StoreStats open_stats_;

  // Observability handles (null until AttachMetrics).
  bsobs::Counter* m_replayed_records_ = nullptr;
  bsobs::Counter* m_truncated_frames_ = nullptr;
  bsobs::Counter* m_truncated_bytes_ = nullptr;
  bsobs::Counter* m_commits_ = nullptr;
  bsobs::Counter* m_snapshots_ = nullptr;
  bsobs::Counter* m_journal_failures_ = nullptr;
  bsobs::Counter* m_corrupt_snapshots_ = nullptr;
};

}  // namespace bsstore
