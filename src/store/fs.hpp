// StoreFs — the syscall surface the durable store is written against.
//
// Every mutating operation the store performs (create/truncate, append,
// fsync, rename, remove) goes through this interface, so a fault-injecting
// implementation (sim/simfs.hpp) can count syscalls and kill the "machine"
// at any chosen index: the crash-point recovery sweep in tests/store_test.cpp
// is a loop over exactly these operations. RealFs maps them 1:1 onto POSIX
// (open/write/fsync/rename/unlink) for the CLI fsck and on-disk stores.
//
// Semantics the store relies on (both implementations honour them):
//   * Write is an append to the open handle; a failure may leave a partial
//     prefix applied (short write).
//   * Fsync makes everything written to the handle so far durable.
//   * Rename atomically replaces the destination (never torn).
//   * ReadFile sees all written data, synced or not (the page cache view).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace bsstore {

class StoreFs {
 public:
  virtual ~StoreFs() = default;

  // ---- Read side ----
  virtual bool Exists(const std::string& path) = 0;
  /// Read an entire file; false when absent/unreadable.
  virtual bool ReadFile(const std::string& path, bsutil::ByteVec& out) = 0;
  /// Names (not paths) of regular files directly inside `dir`, sorted.
  virtual std::vector<std::string> ListDir(const std::string& dir) = 0;

  // ---- Mutating side (fault-countable syscalls) ----
  /// Create `dir` (and parents) if absent; true when it exists afterwards.
  virtual bool MkDir(const std::string& dir) = 0;
  /// Open `path` for appending; `truncate` recreates it empty. Returns a
  /// handle >= 0, or -1 on failure.
  virtual int OpenWrite(const std::string& path, bool truncate) = 0;
  /// Append `data` to the handle. False on failure (a prefix may have been
  /// applied — the short-write case).
  virtual bool Write(int fd, bsutil::ByteSpan data) = 0;
  /// Flush the handle's written data to durable storage.
  virtual bool Fsync(int fd) = 0;
  virtual void Close(int fd) = 0;
  /// Atomic replace.
  virtual bool Rename(const std::string& from, const std::string& to) = 0;
  virtual bool Remove(const std::string& path) = 0;
};

/// POSIX-backed StoreFs for real directories (CLI fsck, on-disk stores).
class RealFs : public StoreFs {
 public:
  bool Exists(const std::string& path) override;
  bool ReadFile(const std::string& path, bsutil::ByteVec& out) override;
  std::vector<std::string> ListDir(const std::string& dir) override;
  bool MkDir(const std::string& dir) override;
  int OpenWrite(const std::string& path, bool truncate) override;
  bool Write(int fd, bsutil::ByteSpan data) override;
  bool Fsync(int fd) override;
  void Close(int fd) override;
  bool Rename(const std::string& from, const std::string& to) override;
  bool Remove(const std::string& path) override;

  /// Process-wide shared instance (the default when NodeConfig supplies no
  /// StoreFs).
  static RealFs& Instance();
};

/// `dir` + "/" + `name` without doubling separators.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace bsstore
