#include "chain/transaction.hpp"

#include "crypto/sha256.hpp"

namespace bschain {

void OutPoint::Serialize(bsutil::Writer& w) const {
  txid.Serialize(w);
  w.WriteU32(index);
}

OutPoint OutPoint::Deserialize(bsutil::Reader& r) {
  OutPoint o;
  o.txid = bscrypto::Hash256::Deserialize(r);
  o.index = r.ReadU32();
  return o;
}

void TxIn::Serialize(bsutil::Writer& w) const {
  prevout.Serialize(w);
  w.WriteVarBytes(script_sig);
  w.WriteU32(sequence);
}

TxIn TxIn::Deserialize(bsutil::Reader& r) {
  TxIn in;
  in.prevout = OutPoint::Deserialize(r);
  in.script_sig = r.ReadVarBytes(10'000);
  in.sequence = r.ReadU32();
  return in;
}

void TxOut::Serialize(bsutil::Writer& w) const {
  w.WriteI64(value);
  w.WriteVarBytes(script_pubkey);
}

TxOut TxOut::Deserialize(bsutil::Reader& r) {
  TxOut out;
  out.value = r.ReadI64();
  out.script_pubkey = r.ReadVarBytes(10'000);
  return out;
}

bool Transaction::HasWitness() const {
  for (const auto& wit : witness) {
    if (!wit.empty()) return true;
  }
  return false;
}

void Transaction::Serialize(bsutil::Writer& w, bool with_witness) const {
  const bool use_witness = with_witness && HasWitness();
  w.WriteI32(version);
  if (use_witness) {
    // BIP-144 marker (0x00) + flag (0x01).
    w.WriteU8(0x00);
    w.WriteU8(0x01);
  }
  w.WriteCompactSize(inputs.size());
  for (const auto& in : inputs) in.Serialize(w);
  w.WriteCompactSize(outputs.size());
  for (const auto& out : outputs) out.Serialize(w);
  if (use_witness) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      w.WriteVarBytes(i < witness.size() ? bsutil::ByteSpan(witness[i])
                                         : bsutil::ByteSpan{});
    }
  }
  w.WriteU32(lock_time);
}

Transaction Transaction::Deserialize(bsutil::Reader& r) {
  Transaction tx;
  tx.version = r.ReadI32();
  std::uint64_t n_inputs = r.ReadCompactSize();
  bool has_witness = false;
  if (n_inputs == 0) {
    // Either an empty-input transaction or the BIP-144 marker byte. Peek at
    // the flag: 0x01 means witness framing follows.
    const std::uint8_t flag = r.ReadU8();
    if (flag != 0x01) throw bsutil::DeserializeError("bad witness flag");
    has_witness = true;
    n_inputs = r.ReadCompactSize();
  }
  if (n_inputs > 100'000) throw bsutil::DeserializeError("too many tx inputs");
  tx.inputs.reserve(n_inputs);
  for (std::uint64_t i = 0; i < n_inputs; ++i) tx.inputs.push_back(TxIn::Deserialize(r));
  const std::uint64_t n_outputs = r.ReadCompactSize();
  if (n_outputs > 100'000) throw bsutil::DeserializeError("too many tx outputs");
  tx.outputs.reserve(n_outputs);
  for (std::uint64_t i = 0; i < n_outputs; ++i) tx.outputs.push_back(TxOut::Deserialize(r));
  if (has_witness) {
    tx.witness.reserve(tx.inputs.size());
    for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
      tx.witness.push_back(r.ReadVarBytes(1'000'000));
    }
  }
  tx.lock_time = r.ReadU32();
  return tx;
}

bsutil::ByteVec Transaction::ToBytes(bool with_witness) const {
  bsutil::Writer w;
  Serialize(w, with_witness);
  return w.TakeData();
}

std::size_t Transaction::SerializedSize(bool with_witness) const {
  return ToBytes(with_witness).size();
}

bscrypto::Hash256 Transaction::Txid() const {
  return bscrypto::Hash256{bscrypto::Sha256::HashD(ToBytes(/*with_witness=*/false))};
}

bscrypto::Hash256 Transaction::Wtxid() const {
  return bscrypto::Hash256{bscrypto::Sha256::HashD(ToBytes(/*with_witness=*/true))};
}

}  // namespace bschain
