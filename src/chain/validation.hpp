// Context-free block and transaction validation with result codes that map
// one-to-one onto the Table I ban-score rules (mutated / prev-invalid /
// prev-missing / cached-invalid / SegWit-consensus-invalid / oversize).
#pragma once

#include <cstdint>
#include <string>

#include "chain/block.hpp"
#include "chain/pow.hpp"
#include "chain/transaction.hpp"

namespace bschain {

/// Transaction validation outcomes.
enum class TxResult {
  kOk,
  kNoInputs,
  kNoOutputs,
  kOversize,
  kValueOutOfRange,
  kDuplicateInputs,
  kNullPrevout,        // non-coinbase input referencing the null outpoint
  kBadCoinbaseScript,  // coinbase scriptSig length out of [2, 100]
  kSegwitInvalid,      // violates our modelled SegWit consensus rules
};

/// Block validation outcomes.
enum class BlockResult {
  kOk,
  kDuplicate,       // already have this block, and it is valid
  kOversize,
  kInvalidPow,
  kMutated,         // merkle mismatch or CVE-2012-2459 duplicate pattern
  kBadCoinbase,     // missing/misplaced coinbase
  kConsensusInvalid,  // some transaction fails consensus checks
  kPrevMissing,     // previous block unknown (ban score 10 in Table I)
  kPrevInvalid,     // previous block known-invalid (ban score 100)
  kCachedInvalid,   // this exact block was already rejected (100, outbound)
};

const char* ToString(TxResult r);
const char* ToString(BlockResult r);

/// Consensus checks on a lone transaction.
///
/// The SegWit rule is modelled (see DESIGN.md): the witness vector, when
/// present, must have exactly one entry per input, each entry must be
/// non-empty, at most `kMaxWitnessItemSize` bytes, and must not be the
/// single byte 0x00 (our stand-in for a failing witness program). Coinbase
/// transactions must not carry witness data here.
TxResult CheckTransaction(const Transaction& tx, bool allow_coinbase = false);

constexpr std::size_t kMaxWitnessItemSize = 11'000;
constexpr std::size_t kMaxTxSize = 400'000;

/// Context-free block checks: size, PoW, coinbase placement, merkle/mutation,
/// per-transaction consensus. Contextual checks (prev-missing/invalid,
/// cached-invalid) live in ChainState::AcceptBlock.
BlockResult CheckBlock(const Block& block, const ChainParams& params);

}  // namespace bschain
