#include "chain/miner.hpp"

#include <chrono>

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace bschain {

Block BuildBlockTemplate(const bscrypto::Hash256& prev, std::uint32_t time,
                         const std::vector<Transaction>& txs, const ChainParams& params,
                         std::uint64_t extra_nonce) {
  Block block;
  Transaction coinbase;
  coinbase.version = 1;
  TxIn in;
  in.prevout = OutPoint{};
  bsutil::Writer script;
  script.WriteU64(extra_nonce);
  script.WriteU32(time);
  in.script_sig = script.TakeData();
  coinbase.inputs.push_back(in);
  TxOut out;
  out.value = 50LL * 100'000'000LL;
  out.script_pubkey = bsutil::ToBytes("miner-output");
  coinbase.outputs.push_back(out);
  block.txs.push_back(coinbase);
  block.txs.insert(block.txs.end(), txs.begin(), txs.end());

  block.header.version = 1;
  block.header.prev = prev;
  block.header.merkle_root = block.ComputeMerkleRoot();
  block.header.time = time;
  block.header.bits = params.target_bits;
  block.header.nonce = 0;
  return block;
}

std::optional<Block> MineBlock(Block block_template, const ChainParams& params,
                               std::uint64_t max_iterations) {
  for (std::uint64_t i = 0; i < max_iterations; ++i) {
    if (CheckProofOfWork(block_template.Hash(), block_template.header.bits, params)) {
      return block_template;
    }
    ++block_template.header.nonce;
  }
  return std::nullopt;
}

double HashRateMeter::Measure(std::uint64_t num_hashes,
                              const std::function<void()>& interference,
                              std::uint64_t interference_stride) {
  // Hash a realistic 80-byte header, bumping the nonce each round just as a
  // miner does.
  BlockHeader header;
  header.time = 1'600'000'000;
  header.bits = 0x207fffff;

  bsutil::Writer w;
  header.Serialize(w);
  bsutil::ByteVec buf = w.TakeData();

  const auto start = std::chrono::steady_clock::now();
  volatile std::uint8_t sink = 0;
  for (std::uint64_t i = 0; i < num_hashes; ++i) {
    // Nonce lives in the last 4 bytes of the header serialization.
    buf[76] = static_cast<std::uint8_t>(i);
    buf[77] = static_cast<std::uint8_t>(i >> 8);
    buf[78] = static_cast<std::uint8_t>(i >> 16);
    buf[79] = static_cast<std::uint8_t>(i >> 24);
    const auto digest = bscrypto::Sha256::HashD(buf);
    sink = sink ^ digest[0];
    if (interference && interference_stride != 0 && (i + 1) % interference_stride == 0) {
      interference();
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  (void)sink;
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(num_hashes) / seconds;
}

}  // namespace bschain
