// Transaction memory pool with consensus admission checks.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"
#include "chain/validation.hpp"

namespace bschain {

class Mempool {
 public:
  /// Validate and admit a transaction. Duplicates are accepted idempotently
  /// (returns kOk without re-adding).
  TxResult AcceptTransaction(const Transaction& tx);

  bool Contains(const bscrypto::Hash256& txid) const;
  std::optional<Transaction> Get(const bscrypto::Hash256& txid) const;
  std::size_t Size() const { return txs_.size(); }

  /// Drain up to `max_count` transactions for block assembly (insertion order
  /// is not preserved; ordering does not matter for our experiments).
  std::vector<Transaction> CollectForBlock(std::size_t max_count) const;

  void Remove(const bscrypto::Hash256& txid);
  void Clear() { txs_.clear(); }

 private:
  std::unordered_map<bscrypto::Hash256, Transaction, bscrypto::Hash256Hasher> txs_;
};

}  // namespace bschain
