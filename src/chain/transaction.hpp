// Bitcoin transaction primitives: outpoints, inputs, outputs, and the
// transaction itself with txid computation (double-SHA256 of the serialized
// form) and an optional witness section for the SegWit consensus rule used
// by the TX ban-score rule ("invalid by consensus rules of SegWit").
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash256.hpp"
#include "util/bytes.hpp"
#include "util/serialize.hpp"

namespace bschain {

/// Maximum money supply in satoshis (21M BTC), the consensus value-range bound.
constexpr std::int64_t kMaxMoney = 21'000'000LL * 100'000'000LL;

/// Reference to a previous transaction output.
struct OutPoint {
  bscrypto::Hash256 txid;
  std::uint32_t index = 0xffffffff;

  bool IsNull() const { return txid.IsZero() && index == 0xffffffff; }
  bool operator==(const OutPoint&) const = default;

  void Serialize(bsutil::Writer& w) const;
  static OutPoint Deserialize(bsutil::Reader& r);
};

struct TxIn {
  OutPoint prevout;
  bsutil::ByteVec script_sig;
  std::uint32_t sequence = 0xffffffff;

  bool operator==(const TxIn&) const = default;

  void Serialize(bsutil::Writer& w) const;
  static TxIn Deserialize(bsutil::Reader& r);
};

struct TxOut {
  std::int64_t value = 0;  // satoshis
  bsutil::ByteVec script_pubkey;

  bool operator==(const TxOut&) const = default;

  void Serialize(bsutil::Writer& w) const;
  static TxOut Deserialize(bsutil::Reader& r);
};

/// A transaction. The witness is modelled as one byte vector per input
/// (simplified from Bitcoin's script-witness stacks); a transaction with any
/// non-empty witness serializes with the BIP-144 marker+flag framing.
struct Transaction {
  std::int32_t version = 2;
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;
  std::vector<bsutil::ByteVec> witness;  // parallel to inputs; may be empty
  std::uint32_t lock_time = 0;

  bool operator==(const Transaction&) const = default;

  bool HasWitness() const;
  bool IsCoinbase() const {
    return inputs.size() == 1 && inputs[0].prevout.IsNull();
  }

  /// Txid: double-SHA256 of the serialization *without* witness data
  /// (matching Bitcoin's txid/wtxid split).
  bscrypto::Hash256 Txid() const;
  /// Wtxid: double-SHA256 including witness framing.
  bscrypto::Hash256 Wtxid() const;

  /// Serialize; witness framing included only when `with_witness` and the
  /// transaction has any witness data.
  void Serialize(bsutil::Writer& w, bool with_witness = true) const;
  static Transaction Deserialize(bsutil::Reader& r);

  bsutil::ByteVec ToBytes(bool with_witness = true) const;
  std::size_t SerializedSize(bool with_witness = true) const;
};

}  // namespace bschain
