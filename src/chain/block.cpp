#include "chain/block.hpp"

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace bschain {

void BlockHeader::Serialize(bsutil::Writer& w) const {
  w.WriteI32(version);
  prev.Serialize(w);
  merkle_root.Serialize(w);
  w.WriteU32(time);
  w.WriteU32(bits);
  w.WriteU32(nonce);
}

BlockHeader BlockHeader::Deserialize(bsutil::Reader& r) {
  BlockHeader h;
  h.version = r.ReadI32();
  h.prev = bscrypto::Hash256::Deserialize(r);
  h.merkle_root = bscrypto::Hash256::Deserialize(r);
  h.time = r.ReadU32();
  h.bits = r.ReadU32();
  h.nonce = r.ReadU32();
  return h;
}

bscrypto::Hash256 BlockHeader::Hash() const {
  bsutil::Writer w;
  Serialize(w);
  return bscrypto::Hash256{bscrypto::Sha256::HashD(w.Data())};
}

bscrypto::Hash256 Block::ComputeMerkleRoot(bool* mutated) const {
  std::vector<bscrypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.Txid());
  return bscrypto::MerkleRoot(leaves, mutated);
}

void Block::Serialize(bsutil::Writer& w) const {
  header.Serialize(w);
  w.WriteCompactSize(txs.size());
  for (const auto& tx : txs) tx.Serialize(w);
}

Block Block::Deserialize(bsutil::Reader& r) {
  Block b;
  b.header = BlockHeader::Deserialize(r);
  const std::uint64_t n = r.ReadCompactSize();
  if (n > 1'000'000) throw bsutil::DeserializeError("too many block txs");
  b.txs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) b.txs.push_back(Transaction::Deserialize(r));
  return b;
}

bsutil::ByteVec Block::ToBytes() const {
  bsutil::Writer w;
  Serialize(w);
  return w.TakeData();
}

}  // namespace bschain
