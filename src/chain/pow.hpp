// Proof-of-work checking and consensus parameters for the simulated chain.
#pragma once

#include <cstdint>

#include "chain/block.hpp"
#include "crypto/hash256.hpp"

namespace bschain {

/// Consensus parameters. The default is a "regtest-like" easy difficulty so
/// blocks can be mined in-process during simulations and tests.
struct ChainParams {
  /// Highest (easiest) permissible target, compact-encoded.
  std::uint32_t pow_limit_bits = 0x207fffff;  // regtest pow limit
  /// Compact target every block must satisfy (no retargeting in our chain).
  std::uint32_t target_bits = 0x207fffff;
  /// Maximum serialized block size in bytes (the pre-SegWit 1 MB rule; a
  /// sufficient model for the oversize checks our experiments exercise).
  std::size_t max_block_size = 1'000'000;
  /// Network magic for the wire protocol.
  std::uint32_t magic = 0xfabfb5da;  // regtest magic

  /// Deterministic genesis block for this parameter set.
  Block GenesisBlock() const;
};

/// True iff `hash` (as a 256-bit LE integer) meets the compact target `bits`
/// and `bits` is within `params.pow_limit_bits`. Mirrors Bitcoin Core's
/// CheckProofOfWork, including the negative/overflow compact rejections.
bool CheckProofOfWork(const bscrypto::Hash256& hash, std::uint32_t bits,
                      const ChainParams& params);

}  // namespace bschain
