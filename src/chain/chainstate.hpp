// Header tree + block index with the contextual acceptance logic that feeds
// the ban-score rules: prev-missing, prev-invalid, and cached-invalid.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/validation.hpp"
#include "crypto/hash256.hpp"

namespace bschain {

/// Per-block bookkeeping in the index.
struct BlockIndexEntry {
  BlockHeader header;
  int height = 0;
  bool valid = true;   // false once the block or an ancestor was rejected
  bool have_data = false;  // full block vs header-only
};

/// Simplified chainstate: a block index keyed by hash, a best tip chosen by
/// height, and header acceptance for HEADERS processing. There is no UTXO
/// set — the experiments exercise the networking/validation plane, not
/// script evaluation.
class ChainState {
 public:
  explicit ChainState(const ChainParams& params);

  const ChainParams& Params() const { return params_; }

  /// Full contextual block acceptance. On success the block joins the index
  /// (and possibly becomes the tip). Invalid blocks are cached as invalid so
  /// a repeat offer returns kCachedInvalid, matching Bitcoin Core.
  BlockResult AcceptBlock(const Block& block);

  /// Header-only acceptance (for HEADERS messages): checks PoW and that the
  /// header connects to a known header. Returns kPrevMissing when it does
  /// not connect.
  BlockResult AcceptHeader(const BlockHeader& header);

  bool HaveBlock(const bscrypto::Hash256& hash) const;
  bool HaveHeader(const bscrypto::Hash256& hash) const;
  /// True if `hash` is in the index and marked invalid.
  bool IsKnownInvalid(const bscrypto::Hash256& hash) const;

  std::optional<Block> GetBlock(const bscrypto::Hash256& hash) const;
  std::optional<BlockIndexEntry> GetEntry(const bscrypto::Hash256& hash) const;

  const bscrypto::Hash256& TipHash() const { return tip_; }
  int TipHeight() const { return tip_height_; }
  const bscrypto::Hash256& GenesisHash() const { return genesis_; }

  /// Headers from the active chain starting after `after` (used to answer
  /// GETHEADERS); at most `max_count` entries.
  std::vector<BlockHeader> HeadersAfter(const bscrypto::Hash256& after,
                                        std::size_t max_count) const;

  /// Headers after the first locator entry found on our active chain (the
  /// full GETHEADERS semantics: locators list hashes newest-first with
  /// exponential spacing; an unknown fork falls through to the next entry,
  /// and an empty/no-match locator serves from genesis).
  std::vector<BlockHeader> HeadersAfterLocator(
      const std::vector<bscrypto::Hash256>& locator, std::size_t max_count) const;

  /// Block locator for our tip: the last 10 chain hashes, then exponentially
  /// spaced ancestors, ending at genesis (Bitcoin's CBlockLocator shape).
  std::vector<bscrypto::Hash256> GetLocator() const;

  /// True if `hash` lies on the current active chain.
  bool IsOnActiveChain(const bscrypto::Hash256& hash) const;

  std::size_t IndexSize() const { return index_.size(); }

 private:
  ChainParams params_;
  std::unordered_map<bscrypto::Hash256, BlockIndexEntry, bscrypto::Hash256Hasher> index_;
  std::unordered_map<bscrypto::Hash256, Block, bscrypto::Hash256Hasher> blocks_;
  bscrypto::Hash256 tip_;
  bscrypto::Hash256 genesis_;
  int tip_height_ = 0;
};

}  // namespace bschain
