// Real proof-of-work miner: grinds block-header nonces with double-SHA256.
// Also provides the hash-rate measurement used by the Fig. 6 / Table III
// mining-rate experiments (the paper measures h/s over 1e7-hash samples).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "chain/block.hpp"
#include "chain/pow.hpp"

namespace bschain {

/// Assemble a block on top of `prev` containing a fresh coinbase plus `txs`.
/// `extra_nonce` differentiates coinbases so repeated calls mine distinct
/// blocks.
Block BuildBlockTemplate(const bscrypto::Hash256& prev, std::uint32_t time,
                         const std::vector<Transaction>& txs, const ChainParams& params,
                         std::uint64_t extra_nonce);

/// Grind the nonce until PoW passes or `max_iterations` hashes were spent.
/// Returns the solved block, or nullopt on exhaustion.
std::optional<Block> MineBlock(Block block_template, const ChainParams& params,
                               std::uint64_t max_iterations = 1'000'000);

/// Measures raw double-SHA256 header hashing throughput, mirroring the
/// paper's mining-rate metric ("hash computations per second").
class HashRateMeter {
 public:
  /// Perform `num_hashes` real header hashes; returns hashes per second.
  /// `interference`, when provided, is invoked every `interference_stride`
  /// hashes so callers can model competing CPU work (the BM-DoS victim).
  double Measure(std::uint64_t num_hashes,
                 const std::function<void()>& interference = nullptr,
                 std::uint64_t interference_stride = 1024);
};

}  // namespace bschain
