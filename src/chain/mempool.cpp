#include "chain/mempool.hpp"

namespace bschain {

TxResult Mempool::AcceptTransaction(const Transaction& tx) {
  const TxResult result = CheckTransaction(tx, /*allow_coinbase=*/false);
  if (result != TxResult::kOk) return result;
  txs_.emplace(tx.Txid(), tx);
  return TxResult::kOk;
}

bool Mempool::Contains(const bscrypto::Hash256& txid) const {
  return txs_.contains(txid);
}

std::optional<Transaction> Mempool::Get(const bscrypto::Hash256& txid) const {
  const auto it = txs_.find(txid);
  if (it == txs_.end()) return std::nullopt;
  return it->second;
}

std::vector<Transaction> Mempool::CollectForBlock(std::size_t max_count) const {
  std::vector<Transaction> out;
  out.reserve(std::min(max_count, txs_.size()));
  for (const auto& [txid, tx] : txs_) {
    if (out.size() >= max_count) break;
    out.push_back(tx);
  }
  return out;
}

void Mempool::Remove(const bscrypto::Hash256& txid) { txs_.erase(txid); }

}  // namespace bschain
