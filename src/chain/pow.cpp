#include "chain/pow.hpp"

namespace bschain {

bool CheckProofOfWork(const bscrypto::Hash256& hash, std::uint32_t bits,
                      const ChainParams& params) {
  bool negative = false;
  bool overflow = false;
  const bscrypto::Hash256 target = bscrypto::Hash256::FromCompact(bits, &negative, &overflow);
  if (negative || overflow || target.IsZero()) return false;
  const bscrypto::Hash256 limit = bscrypto::Hash256::FromCompact(params.pow_limit_bits);
  if (target > limit) return false;
  return hash <= target;
}

Block ChainParams::GenesisBlock() const {
  Block genesis;
  Transaction coinbase;
  coinbase.version = 1;
  TxIn in;
  in.prevout = OutPoint{};  // null outpoint marks a coinbase
  in.script_sig = bsutil::ToBytes("banscore-repro genesis 2026");
  coinbase.inputs.push_back(in);
  TxOut out;
  out.value = 50LL * 100'000'000LL;
  out.script_pubkey = bsutil::ToBytes("genesis-output");
  coinbase.outputs.push_back(out);
  genesis.txs.push_back(coinbase);

  genesis.header.version = 1;
  genesis.header.prev = bscrypto::Hash256{};
  genesis.header.merkle_root = genesis.ComputeMerkleRoot();
  genesis.header.time = 1'600'000'000;
  genesis.header.bits = target_bits;
  genesis.header.nonce = 0;
  // Grind the nonce so even the genesis block carries valid PoW. At regtest
  // difficulty this terminates almost immediately.
  while (!CheckProofOfWork(genesis.header.Hash(), genesis.header.bits, *this)) {
    ++genesis.header.nonce;
  }
  return genesis;
}

}  // namespace bschain
