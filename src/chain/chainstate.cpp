#include "chain/chainstate.hpp"

namespace bschain {

ChainState::ChainState(const ChainParams& params) : params_(params) {
  const Block genesis = params_.GenesisBlock();
  const bscrypto::Hash256 hash = genesis.Hash();
  BlockIndexEntry entry;
  entry.header = genesis.header;
  entry.height = 0;
  entry.valid = true;
  entry.have_data = true;
  index_.emplace(hash, entry);
  blocks_.emplace(hash, genesis);
  tip_ = hash;
  genesis_ = hash;
  tip_height_ = 0;
}

BlockResult ChainState::AcceptBlock(const Block& block) {
  const bscrypto::Hash256 hash = block.Hash();

  if (auto it = index_.find(hash); it != index_.end()) {
    if (!it->second.valid) return BlockResult::kCachedInvalid;
    if (it->second.have_data) return BlockResult::kDuplicate;
  }

  const BlockResult check = CheckBlock(block, params_);
  if (check != BlockResult::kOk) {
    // Cache the rejection keyed by block hash; note a PoW-invalid block
    // cannot be usefully cached (its hash is trivially regenerated), which
    // is precisely the bogus-BLOCK BM-DoS observation in the paper.
    BlockIndexEntry entry;
    entry.header = block.header;
    entry.valid = false;
    index_[hash] = entry;
    return check;
  }

  const auto prev_it = index_.find(block.header.prev);
  if (prev_it == index_.end()) return BlockResult::kPrevMissing;
  if (!prev_it->second.valid) {
    BlockIndexEntry entry;
    entry.header = block.header;
    entry.valid = false;
    index_[hash] = entry;
    return BlockResult::kPrevInvalid;
  }

  BlockIndexEntry entry;
  entry.header = block.header;
  entry.height = prev_it->second.height + 1;
  entry.valid = true;
  entry.have_data = true;
  index_[hash] = entry;
  blocks_[hash] = block;

  if (entry.height > tip_height_) {
    tip_ = hash;
    tip_height_ = entry.height;
  }
  return BlockResult::kOk;
}

BlockResult ChainState::AcceptHeader(const BlockHeader& header) {
  const bscrypto::Hash256 hash = header.Hash();
  if (auto it = index_.find(hash); it != index_.end()) {
    return it->second.valid ? BlockResult::kDuplicate : BlockResult::kCachedInvalid;
  }
  if (!CheckProofOfWork(hash, header.bits, params_)) return BlockResult::kInvalidPow;

  const auto prev_it = index_.find(header.prev);
  if (prev_it == index_.end()) return BlockResult::kPrevMissing;
  if (!prev_it->second.valid) return BlockResult::kPrevInvalid;

  BlockIndexEntry entry;
  entry.header = header;
  entry.height = prev_it->second.height + 1;
  entry.valid = true;
  entry.have_data = false;
  index_[hash] = entry;
  return BlockResult::kOk;
}

bool ChainState::HaveBlock(const bscrypto::Hash256& hash) const {
  const auto it = index_.find(hash);
  return it != index_.end() && it->second.have_data && it->second.valid;
}

bool ChainState::HaveHeader(const bscrypto::Hash256& hash) const {
  const auto it = index_.find(hash);
  return it != index_.end() && it->second.valid;
}

bool ChainState::IsKnownInvalid(const bscrypto::Hash256& hash) const {
  const auto it = index_.find(hash);
  return it != index_.end() && !it->second.valid;
}

std::optional<Block> ChainState::GetBlock(const bscrypto::Hash256& hash) const {
  const auto it = blocks_.find(hash);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;
}

std::optional<BlockIndexEntry> ChainState::GetEntry(const bscrypto::Hash256& hash) const {
  const auto it = index_.find(hash);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool ChainState::IsOnActiveChain(const bscrypto::Hash256& hash) const {
  const auto target = index_.find(hash);
  if (target == index_.end() || !target->second.valid) return false;
  // Walk back from the tip to the target's height.
  bscrypto::Hash256 cursor = tip_;
  while (true) {
    const auto it = index_.find(cursor);
    if (it == index_.end()) return false;
    if (it->second.height < target->second.height) return false;
    if (cursor == hash) return true;
    if (it->second.height == 0) return false;
    cursor = it->second.header.prev;
  }
}

std::vector<bscrypto::Hash256> ChainState::GetLocator() const {
  // Active chain, tip first.
  std::vector<bscrypto::Hash256> chain;
  bscrypto::Hash256 cursor = tip_;
  while (true) {
    const auto it = index_.find(cursor);
    if (it == index_.end()) break;
    chain.push_back(cursor);
    if (it->second.height == 0) break;
    cursor = it->second.header.prev;
  }
  // Dense for the first 10, exponential afterwards, genesis always last.
  std::vector<bscrypto::Hash256> locator;
  std::size_t index = 0;
  std::size_t step = 1;
  while (index < chain.size()) {
    locator.push_back(chain[index]);
    if (locator.size() >= 10) step *= 2;
    index += step;
  }
  if (locator.empty() || locator.back() != chain.back()) locator.push_back(chain.back());
  return locator;
}

std::vector<BlockHeader> ChainState::HeadersAfterLocator(
    const std::vector<bscrypto::Hash256>& locator, std::size_t max_count) const {
  for (const bscrypto::Hash256& hash : locator) {
    if (IsOnActiveChain(hash)) return HeadersAfter(hash, max_count);
  }
  // No common point known: serve everything above genesis (every peer is
  // assumed to share it).
  return HeadersAfter(genesis_, max_count);
}

std::vector<BlockHeader> ChainState::HeadersAfter(const bscrypto::Hash256& after,
                                                  std::size_t max_count) const {
  // Walk back from the tip collecting the active chain, then emit everything
  // above `after` (or the whole chain when `after` is unknown/zero).
  std::vector<BlockHeader> chain;
  bscrypto::Hash256 cursor = tip_;
  while (true) {
    const auto it = index_.find(cursor);
    if (it == index_.end()) break;
    if (cursor == after) break;
    chain.push_back(it->second.header);
    if (it->second.height == 0) break;
    cursor = it->second.header.prev;
  }
  // chain is tip..bottom; reverse and truncate.
  std::vector<BlockHeader> out(chain.rbegin(), chain.rend());
  if (out.size() > max_count) out.resize(max_count);
  return out;
}

}  // namespace bschain
