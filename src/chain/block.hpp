// Block header and block primitives with double-SHA256 block hashing and
// merkle-root computation over txids.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "crypto/hash256.hpp"
#include "util/serialize.hpp"

namespace bschain {

/// The 80-byte block header. Its double-SHA256 is the block hash / PoW value.
struct BlockHeader {
  std::int32_t version = 1;
  bscrypto::Hash256 prev;
  bscrypto::Hash256 merkle_root;
  std::uint32_t time = 0;
  std::uint32_t bits = 0;
  std::uint32_t nonce = 0;

  bool operator==(const BlockHeader&) const = default;

  bscrypto::Hash256 Hash() const;

  void Serialize(bsutil::Writer& w) const;
  static BlockHeader Deserialize(bsutil::Reader& r);
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  bool operator==(const Block&) const = default;

  bscrypto::Hash256 Hash() const { return header.Hash(); }

  /// Merkle root over txids; `mutated` reports the CVE-2012-2459 duplicate
  /// pattern (see crypto/merkle.hpp).
  bscrypto::Hash256 ComputeMerkleRoot(bool* mutated = nullptr) const;

  void Serialize(bsutil::Writer& w) const;
  static Block Deserialize(bsutil::Reader& r);

  bsutil::ByteVec ToBytes() const;
  std::size_t SerializedSize() const { return ToBytes().size(); }
};

}  // namespace bschain
