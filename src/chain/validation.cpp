#include "chain/validation.hpp"

#include <set>

namespace bschain {

const char* ToString(TxResult r) {
  switch (r) {
    case TxResult::kOk: return "ok";
    case TxResult::kNoInputs: return "no-inputs";
    case TxResult::kNoOutputs: return "no-outputs";
    case TxResult::kOversize: return "oversize";
    case TxResult::kValueOutOfRange: return "value-out-of-range";
    case TxResult::kDuplicateInputs: return "duplicate-inputs";
    case TxResult::kNullPrevout: return "null-prevout";
    case TxResult::kBadCoinbaseScript: return "bad-coinbase-script";
    case TxResult::kSegwitInvalid: return "segwit-invalid";
  }
  return "?";
}

const char* ToString(BlockResult r) {
  switch (r) {
    case BlockResult::kOk: return "ok";
    case BlockResult::kDuplicate: return "duplicate";
    case BlockResult::kOversize: return "oversize";
    case BlockResult::kInvalidPow: return "invalid-pow";
    case BlockResult::kMutated: return "mutated";
    case BlockResult::kBadCoinbase: return "bad-coinbase";
    case BlockResult::kConsensusInvalid: return "consensus-invalid";
    case BlockResult::kPrevMissing: return "prev-missing";
    case BlockResult::kPrevInvalid: return "prev-invalid";
    case BlockResult::kCachedInvalid: return "cached-invalid";
  }
  return "?";
}

TxResult CheckTransaction(const Transaction& tx, bool allow_coinbase) {
  if (tx.inputs.empty()) return TxResult::kNoInputs;
  if (tx.outputs.empty()) return TxResult::kNoOutputs;
  if (tx.SerializedSize() > kMaxTxSize) return TxResult::kOversize;

  std::int64_t total = 0;
  for (const auto& out : tx.outputs) {
    if (out.value < 0 || out.value > kMaxMoney) return TxResult::kValueOutOfRange;
    total += out.value;
    if (total > kMaxMoney) return TxResult::kValueOutOfRange;
  }

  std::set<std::pair<std::string, std::uint32_t>> seen;
  for (const auto& in : tx.inputs) {
    if (!seen.insert({in.prevout.txid.ToHex(), in.prevout.index}).second) {
      return TxResult::kDuplicateInputs;
    }
  }

  if (tx.IsCoinbase()) {
    if (!allow_coinbase) return TxResult::kNullPrevout;
    const std::size_t len = tx.inputs[0].script_sig.size();
    if (len < 2 || len > 100) return TxResult::kBadCoinbaseScript;
    if (tx.HasWitness()) return TxResult::kSegwitInvalid;
  } else {
    for (const auto& in : tx.inputs) {
      if (in.prevout.IsNull()) return TxResult::kNullPrevout;
    }
  }

  if (tx.HasWitness()) {
    if (tx.witness.size() != tx.inputs.size()) return TxResult::kSegwitInvalid;
    for (const auto& item : tx.witness) {
      if (item.empty()) return TxResult::kSegwitInvalid;
      if (item.size() > kMaxWitnessItemSize) return TxResult::kSegwitInvalid;
      if (item.size() == 1 && item[0] == 0x00) return TxResult::kSegwitInvalid;
    }
  }

  return TxResult::kOk;
}

BlockResult CheckBlock(const Block& block, const ChainParams& params) {
  if (block.txs.empty()) return BlockResult::kBadCoinbase;
  if (block.SerializedSize() > params.max_block_size) return BlockResult::kOversize;
  if (!CheckProofOfWork(block.Hash(), block.header.bits, params)) {
    return BlockResult::kInvalidPow;
  }

  bool mutated = false;
  const bscrypto::Hash256 root = block.ComputeMerkleRoot(&mutated);
  if (mutated || root != block.header.merkle_root) return BlockResult::kMutated;

  if (!block.txs[0].IsCoinbase()) return BlockResult::kBadCoinbase;
  for (std::size_t i = 1; i < block.txs.size(); ++i) {
    if (block.txs[i].IsCoinbase()) return BlockResult::kBadCoinbase;
  }

  for (std::size_t i = 0; i < block.txs.size(); ++i) {
    if (CheckTransaction(block.txs[i], /*allow_coinbase=*/i == 0) != TxResult::kOk) {
      return BlockResult::kConsensusInvalid;
    }
  }

  return BlockResult::kOk;
}

}  // namespace bschain
