#include "crypto/merkle.hpp"

#include "crypto/sha256.hpp"

namespace bscrypto {

Hash256 MerkleRoot(const std::vector<Hash256>& leaves, bool* mutated) {
  if (mutated) *mutated = false;
  if (leaves.empty()) return Hash256{};

  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    // Detect identical consecutive pairs before odd-padding: a duplicate the
    // block itself contains signals mutation (CVE-2012-2459), whereas the
    // duplicate introduced below by padding the odd tail is legitimate.
    if (mutated) {
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        if (level[i] == level[i + 1]) *mutated = true;
      }
    }
    if (level.size() % 2 != 0) level.push_back(level.back());
    std::vector<Hash256> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      std::uint8_t concat[64];
      std::copy(level[i].Bytes().begin(), level[i].Bytes().end(), concat);
      std::copy(level[i + 1].Bytes().begin(), level[i + 1].Bytes().end(), concat + 32);
      const auto digest = Sha256::HashD(bsutil::ByteSpan(concat, 64));
      next.push_back(Hash256{digest});
    }
    level = std::move(next);
  }
  return level.front();
}

}  // namespace bscrypto
