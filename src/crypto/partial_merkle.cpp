#include "crypto/partial_merkle.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace bscrypto {

namespace {
Hash256 CombinePair(const Hash256& left, const Hash256& right) {
  std::uint8_t concat[64];
  std::copy(left.Bytes().begin(), left.Bytes().end(), concat);
  std::copy(right.Bytes().begin(), right.Bytes().end(), concat + 32);
  return Hash256{Sha256::HashD(bsutil::ByteSpan(concat, 64))};
}
}  // namespace

int PartialMerkleTree::TreeHeight() const {
  int height = 0;
  while (WidthAt(height) > 1) ++height;
  return height;
}

Hash256 PartialMerkleTree::SubtreeHash(int height, std::uint32_t pos,
                                       const std::vector<Hash256>& txids) const {
  if (height == 0) return txids[pos];
  const Hash256 left = SubtreeHash(height - 1, pos * 2, txids);
  // Odd tails duplicate the last child, exactly like the full merkle tree.
  const Hash256 right = (pos * 2 + 1 < WidthAt(height - 1))
                            ? SubtreeHash(height - 1, pos * 2 + 1, txids)
                            : left;
  return CombinePair(left, right);
}

void PartialMerkleTree::Build(int height, std::uint32_t pos,
                              const std::vector<Hash256>& txids,
                              const std::vector<bool>& matches) {
  // Does this subtree contain any matched transaction?
  bool parent_of_match = false;
  for (std::uint32_t i = pos << height;
       i < ((pos + 1u) << height) && i < total_txs_; ++i) {
    parent_of_match |= matches[i];
  }
  bits_.push_back(parent_of_match);
  if (height == 0 || !parent_of_match) {
    hashes_.push_back(SubtreeHash(height, pos, txids));
    return;
  }
  Build(height - 1, pos * 2, txids, matches);
  if (pos * 2 + 1 < WidthAt(height - 1)) Build(height - 1, pos * 2 + 1, txids, matches);
}

PartialMerkleTree::PartialMerkleTree(const std::vector<Hash256>& txids,
                                     const std::vector<bool>& matches)
    : total_txs_(static_cast<std::uint32_t>(txids.size())) {
  if (txids.empty()) return;
  Build(TreeHeight(), 0, txids, matches);
}

PartialMerkleTree::PartialMerkleTree(std::uint32_t total_txs, std::vector<Hash256> hashes,
                                     const bsutil::ByteVec& flag_bytes)
    : total_txs_(total_txs), hashes_(std::move(hashes)) {
  bits_.reserve(flag_bytes.size() * 8);
  for (std::uint8_t byte : flag_bytes) {
    for (int bit = 0; bit < 8; ++bit) bits_.push_back((byte >> bit) & 1);
  }
}

bsutil::ByteVec PartialMerkleTree::FlagBytes() const {
  bsutil::ByteVec out((bits_.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) out[i / 8] |= static_cast<std::uint8_t>(1 << (i % 8));
  }
  return out;
}

Hash256 PartialMerkleTree::Extract(int height, std::uint32_t pos,
                                   std::size_t& bit_cursor, std::size_t& hash_cursor,
                                   std::vector<Hash256>* matched,
                                   std::vector<std::uint32_t>* positions,
                                   bool& bad) const {
  if (bit_cursor >= bits_.size()) {
    bad = true;
    return Hash256{};
  }
  const bool parent_of_match = bits_[bit_cursor++];
  if (height == 0 || !parent_of_match) {
    if (hash_cursor >= hashes_.size()) {
      bad = true;
      return Hash256{};
    }
    const Hash256 hash = hashes_[hash_cursor++];
    if (height == 0 && parent_of_match) {
      if (matched) matched->push_back(hash);
      if (positions) positions->push_back(pos);
    }
    return hash;
  }
  const Hash256 left = Extract(height - 1, pos * 2, bit_cursor, hash_cursor, matched,
                               positions, bad);
  Hash256 right = left;
  if (pos * 2 + 1 < WidthAt(height - 1)) {
    right = Extract(height - 1, pos * 2 + 1, bit_cursor, hash_cursor, matched,
                    positions, bad);
    if (right == left) bad = true;  // the CVE-2012-2459 duplication check
  }
  return CombinePair(left, right);
}

std::optional<Hash256> PartialMerkleTree::ExtractMatches(
    std::vector<Hash256>* matched_txids, std::vector<std::uint32_t>* positions) const {
  if (matched_txids) matched_txids->clear();
  if (positions) positions->clear();
  if (total_txs_ == 0 || bits_.empty() || hashes_.empty()) return std::nullopt;
  if (hashes_.size() > total_txs_) return std::nullopt;

  bool bad = false;
  std::size_t bit_cursor = 0, hash_cursor = 0;
  const Hash256 root = Extract(TreeHeight(), 0, bit_cursor, hash_cursor, matched_txids,
                               positions, bad);
  if (bad) return std::nullopt;
  // All hashes must be consumed; unused flag bits may only be byte padding.
  if (hash_cursor != hashes_.size()) return std::nullopt;
  if ((bit_cursor + 7) / 8 != (bits_.size() + 7) / 8) return std::nullopt;
  for (std::size_t i = bit_cursor; i < bits_.size(); ++i) {
    if (bits_[i]) return std::nullopt;  // set bit in the padding
  }
  return root;
}

}  // namespace bscrypto
