// From-scratch SHA-256 (FIPS 180-4). Used for message checksums, block/tx
// ids (double-SHA256), proof-of-work, and merkle trees.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace bscrypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256() { Reset(); }

  void Reset();
  Sha256& Update(bsutil::ByteSpan data);
  /// Finalize into `out`; the hasher must be Reset() before reuse.
  void Finalize(std::array<std::uint8_t, kDigestSize>& out);

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> Hash(bsutil::ByteSpan data);
  /// Bitcoin double-SHA256: SHA256(SHA256(data)).
  static std::array<std::uint8_t, kDigestSize> HashD(bsutil::ByteSpan data);

 private:
  void Transform(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace bscrypto
