// BIP-37 partial merkle tree: the compact inclusion proof carried by
// MERKLEBLOCK messages. A sender builds it from the block's txids and a
// per-transaction match bitmap; a receiver extracts the matched txids and
// the implied merkle root (which must equal the header's).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hash256.hpp"
#include "util/bytes.hpp"

namespace bscrypto {

class PartialMerkleTree {
 public:
  /// Build the proof for `txids` with `matches[i]` marking relevant txs.
  PartialMerkleTree(const std::vector<Hash256>& txids, const std::vector<bool>& matches);

  /// Reassemble from wire fields (MERKLEBLOCK's total/hashes/flags).
  PartialMerkleTree(std::uint32_t total_txs, std::vector<Hash256> hashes,
                    const bsutil::ByteVec& flag_bytes);

  /// Verify the proof and collect matched txids (with their positions).
  /// Returns the computed merkle root, or nullopt when the encoding is
  /// inconsistent (bad flag/hash counts, overflow, unreached data).
  std::optional<Hash256> ExtractMatches(std::vector<Hash256>* matched_txids,
                                        std::vector<std::uint32_t>* positions = nullptr) const;

  std::uint32_t TotalTxs() const { return total_txs_; }
  const std::vector<Hash256>& Hashes() const { return hashes_; }
  /// Flag bits packed LSB-first into bytes, as serialized on the wire.
  bsutil::ByteVec FlagBytes() const;

 private:
  int TreeHeight() const;
  std::uint32_t WidthAt(int height) const {
    return (total_txs_ + (1u << height) - 1) >> height;
  }
  Hash256 SubtreeHash(int height, std::uint32_t pos,
                      const std::vector<Hash256>& txids) const;
  void Build(int height, std::uint32_t pos, const std::vector<Hash256>& txids,
             const std::vector<bool>& matches);
  Hash256 Extract(int height, std::uint32_t pos, std::size_t& bit_cursor,
                  std::size_t& hash_cursor, std::vector<Hash256>* matched,
                  std::vector<std::uint32_t>* positions, bool& bad) const;

  std::uint32_t total_txs_ = 0;
  std::vector<bool> bits_;
  std::vector<Hash256> hashes_;
};

}  // namespace bscrypto
