#include "crypto/murmur3.hpp"

namespace bscrypto {

namespace {
inline std::uint32_t Rotl32(std::uint32_t x, int r) {
  return (x << r) | (x >> (32 - r));
}
}  // namespace

std::uint32_t MurmurHash3(std::uint32_t seed, bsutil::ByteSpan data) {
  constexpr std::uint32_t c1 = 0xcc9e2d51;
  constexpr std::uint32_t c2 = 0x1b873593;

  std::uint32_t h1 = seed;
  const std::size_t nblocks = data.size() / 4;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint32_t k1 = static_cast<std::uint32_t>(data[4 * i]) |
                       static_cast<std::uint32_t>(data[4 * i + 1]) << 8 |
                       static_cast<std::uint32_t>(data[4 * i + 2]) << 16 |
                       static_cast<std::uint32_t>(data[4 * i + 3]) << 24;
    k1 *= c1;
    k1 = Rotl32(k1, 15);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl32(h1, 13);
    h1 = h1 * 5 + 0xe6546b64;
  }

  // Tail.
  std::uint32_t k1 = 0;
  const std::size_t tail = nblocks * 4;
  switch (data.size() & 3) {
    case 3:
      k1 ^= static_cast<std::uint32_t>(data[tail + 2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<std::uint32_t>(data[tail + 1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= static_cast<std::uint32_t>(data[tail]);
      k1 *= c1;
      k1 = Rotl32(k1, 15);
      k1 *= c2;
      h1 ^= k1;
  }

  // Finalization mix.
  h1 ^= static_cast<std::uint32_t>(data.size());
  h1 ^= h1 >> 16;
  h1 *= 0x85ebca6b;
  h1 ^= h1 >> 13;
  h1 *= 0xc2b2ae35;
  h1 ^= h1 >> 16;
  return h1;
}

}  // namespace bscrypto
