// 256-bit hash value with the arithmetic needed for proof-of-work:
// little-endian 256-bit integer comparison against a target expanded from
// Bitcoin's "compact bits" encoding.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/serialize.hpp"

namespace bscrypto {

/// A 256-bit value stored little-endian (byte 0 is least significant), the
/// Bitcoin-internal representation of txids, block hashes, and PoW targets.
class Hash256 {
 public:
  static constexpr std::size_t kSize = 32;

  Hash256() { bytes_.fill(0); }
  explicit Hash256(const std::array<std::uint8_t, kSize>& bytes) : bytes_(bytes) {}

  /// Parse from the conventional big-endian display hex (as in block
  /// explorers); returns a zero hash on malformed input.
  static Hash256 FromHex(const std::string& hex_be);

  const std::array<std::uint8_t, kSize>& Bytes() const { return bytes_; }
  std::uint8_t* Data() { return bytes_.data(); }
  const std::uint8_t* Data() const { return bytes_.data(); }

  bool IsZero() const;

  /// Numeric comparison as little-endian 256-bit unsigned integers.
  std::strong_ordering operator<=>(const Hash256& other) const;
  bool operator==(const Hash256& other) const = default;

  /// Big-endian display hex (the "explorer" orientation).
  std::string ToHex() const;

  void Serialize(bsutil::Writer& w) const { w.WriteBytes(bytes_); }
  static Hash256 Deserialize(bsutil::Reader& r);

  /// Expand Bitcoin compact-bits ("nBits") into a 256-bit target.
  /// `negative`/`overflow`, when non-null, report the corresponding compact
  /// flags exactly as Bitcoin Core's arith_uint256::SetCompact does.
  static Hash256 FromCompact(std::uint32_t bits, bool* negative = nullptr,
                             bool* overflow = nullptr);

  /// Compress this value back into compact-bits form (lossy, like GetCompact).
  std::uint32_t ToCompact() const;

 private:
  std::array<std::uint8_t, kSize> bytes_;
};

/// Hasher functor so Hash256 can key unordered containers.
struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const {
    // The value is itself a cryptographic hash; take the first 8 bytes.
    std::size_t out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<std::size_t>(h.Bytes()[i]) << (8 * i);
    return out;
  }
};

}  // namespace bscrypto
