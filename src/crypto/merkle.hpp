// Bitcoin merkle tree: double-SHA256 pairwise combining, duplicating the last
// element of odd levels. Also exposes the classic CVE-2012-2459 mutation
// check (duplicate-pair levels make distinct blocks hash identically), which
// is what "block data was mutated" in the ban-score rules refers to.
#pragma once

#include <vector>

#include "crypto/hash256.hpp"

namespace bscrypto {

/// Compute the merkle root over leaf hashes (txids). Empty input yields the
/// zero hash. `mutated`, when non-null, is set if any level contains two
/// identical consecutive hashes (the malleability pattern Bitcoin Core
/// rejects as "mutated" block data).
Hash256 MerkleRoot(const std::vector<Hash256>& leaves, bool* mutated = nullptr);

}  // namespace bscrypto
