// MurmurHash3 (x86, 32-bit variant) — the hash family BIP-37 bloom filters
// are specified over.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace bscrypto {

/// MurmurHash3_x86_32 of `data` with the given seed.
std::uint32_t MurmurHash3(std::uint32_t seed, bsutil::ByteSpan data);

}  // namespace bscrypto
