#include "crypto/hash256.hpp"

#include <algorithm>

#include "util/hex.hpp"

namespace bscrypto {

Hash256 Hash256::FromHex(const std::string& hex_be) {
  Hash256 out;
  const auto decoded = bsutil::HexDecode(hex_be);
  if (!decoded || decoded->size() != kSize) return out;
  // Display hex is big-endian; storage is little-endian.
  for (std::size_t i = 0; i < kSize; ++i) out.bytes_[i] = (*decoded)[kSize - 1 - i];
  return out;
}

bool Hash256::IsZero() const {
  return std::all_of(bytes_.begin(), bytes_.end(), [](std::uint8_t b) { return b == 0; });
}

std::strong_ordering Hash256::operator<=>(const Hash256& other) const {
  // Most-significant byte is at index 31.
  for (int i = kSize - 1; i >= 0; --i) {
    if (bytes_[i] != other.bytes_[i]) return bytes_[i] <=> other.bytes_[i];
  }
  return std::strong_ordering::equal;
}

std::string Hash256::ToHex() const {
  std::array<std::uint8_t, kSize> be;
  for (std::size_t i = 0; i < kSize; ++i) be[i] = bytes_[kSize - 1 - i];
  return bsutil::HexEncode(be);
}

Hash256 Hash256::Deserialize(bsutil::Reader& r) {
  Hash256 out;
  const auto bytes = r.ReadBytes(kSize);
  std::copy(bytes.begin(), bytes.end(), out.bytes_.begin());
  return out;
}

Hash256 Hash256::FromCompact(std::uint32_t bits, bool* negative, bool* overflow) {
  Hash256 out;
  const int exponent = static_cast<int>(bits >> 24);
  std::uint32_t mantissa = bits & 0x007fffff;
  if (negative) *negative = (bits & 0x00800000) != 0 && mantissa != 0;
  if (overflow) {
    *overflow = mantissa != 0 && (exponent > 34 || (mantissa > 0xff && exponent > 33) ||
                                  (mantissa > 0xffff && exponent > 32));
  }
  if (exponent <= 3) {
    mantissa >>= 8 * (3 - exponent);
    out.bytes_[0] = static_cast<std::uint8_t>(mantissa);
    out.bytes_[1] = static_cast<std::uint8_t>(mantissa >> 8);
    out.bytes_[2] = static_cast<std::uint8_t>(mantissa >> 16);
  } else {
    const int shift = exponent - 3;
    if (shift + 2 < static_cast<int>(kSize)) {
      out.bytes_[shift] = static_cast<std::uint8_t>(mantissa);
      out.bytes_[shift + 1] = static_cast<std::uint8_t>(mantissa >> 8);
      out.bytes_[shift + 2] = static_cast<std::uint8_t>(mantissa >> 16);
    }
  }
  return out;
}

std::uint32_t Hash256::ToCompact() const {
  // Find the most significant non-zero byte.
  int size = kSize;
  while (size > 0 && bytes_[size - 1] == 0) --size;
  if (size == 0) return 0;
  std::uint32_t mantissa = 0;
  if (size >= 3) {
    mantissa = static_cast<std::uint32_t>(bytes_[size - 1]) << 16 |
               static_cast<std::uint32_t>(bytes_[size - 2]) << 8 |
               static_cast<std::uint32_t>(bytes_[size - 3]);
  } else if (size == 2) {
    mantissa = static_cast<std::uint32_t>(bytes_[1]) << 16 |
               static_cast<std::uint32_t>(bytes_[0]) << 8;
  } else {
    mantissa = static_cast<std::uint32_t>(bytes_[0]) << 16;
  }
  // If the high bit of the mantissa is set, shift right and bump the exponent
  // to keep the sign bit clear (compact encodes sign in bit 23).
  if (mantissa & 0x00800000) {
    mantissa >>= 8;
    ++size;
  }
  return (static_cast<std::uint32_t>(size) << 24) | mantissa;
}

}  // namespace bscrypto
