// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed so
// simulations and tests are reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace bsutil {

/// xoshiro256** by Blackman & Vigna; seeded via splitmix64 so that any
/// 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (for Poisson
  /// inter-arrival times in the traffic generator).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = NextDouble();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace bsutil
