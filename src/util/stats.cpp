#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace bsutil {

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  double sum = 0.0;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  if (xs.size() > 1) {
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
    // 95% CI half-width via normal approximation: 1.96 * sem.
    s.ci95_half_width = 1.96 * s.stddev / std::sqrt(static_cast<double>(xs.size()));
  }
  return s;
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double num = 0, dx = 0, dy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double a = xs[i] - mx, b = ys[i] - my;
    num += a * b;
    dx += a * a;
    dy += b * b;
  }
  if (dx == 0.0 || dy == 0.0) return 0.0;
  return num / std::sqrt(dx * dy);
}

std::vector<double> NormalizeDistribution(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) out[i] = counts[i] / total;
  return out;
}

void Accumulator::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::StdDev() const { return std::sqrt(Variance()); }

std::pair<std::vector<double>, std::vector<double>> AlignedDistributions(
    const std::map<std::string, double>& a, const std::map<std::string, double>& b) {
  std::set<std::string> keys;
  for (const auto& [k, v] : a) keys.insert(k);
  for (const auto& [k, v] : b) keys.insert(k);
  std::vector<double> va, vb;
  va.reserve(keys.size());
  vb.reserve(keys.size());
  for (const auto& k : keys) {
    auto ia = a.find(k);
    auto ib = b.find(k);
    va.push_back(ia == a.end() ? 0.0 : ia->second);
    vb.push_back(ib == b.end() ? 0.0 : ib->second);
  }
  return {NormalizeDistribution(va), NormalizeDistribution(vb)};
}

}  // namespace bsutil
