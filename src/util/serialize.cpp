#include "util/serialize.hpp"

namespace bsutil {

void Writer::WriteU16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::WriteU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::WriteU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::WriteBytes(ByteSpan data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::WriteCompactSize(std::uint64_t v) {
  if (v < 0xfd) {
    WriteU8(static_cast<std::uint8_t>(v));
  } else if (v <= 0xffff) {
    WriteU8(0xfd);
    WriteU16(static_cast<std::uint16_t>(v));
  } else if (v <= 0xffffffff) {
    WriteU8(0xfe);
    WriteU32(static_cast<std::uint32_t>(v));
  } else {
    WriteU8(0xff);
    WriteU64(v);
  }
}

void Writer::WriteVarBytes(ByteSpan data) {
  WriteCompactSize(data.size());
  WriteBytes(data);
}

void Writer::WriteVarString(const std::string& s) {
  WriteCompactSize(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t Reader::ReadU8() {
  Need(1);
  return data_[pos_++];
}

std::uint16_t Reader::ReadU16() {
  Need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::ReadU32() {
  Need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::ReadU64() {
  Need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

ByteVec Reader::ReadBytes(std::size_t n) {
  Need(n);
  ByteVec out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::uint64_t Reader::ReadCompactSize() {
  const std::uint8_t tag = ReadU8();
  std::uint64_t v;
  if (tag < 0xfd) {
    return tag;
  } else if (tag == 0xfd) {
    v = ReadU16();
    if (v < 0xfd) throw DeserializeError("non-canonical CompactSize");
  } else if (tag == 0xfe) {
    v = ReadU32();
    if (v <= 0xffff) throw DeserializeError("non-canonical CompactSize");
  } else {
    v = ReadU64();
    if (v <= 0xffffffff) throw DeserializeError("non-canonical CompactSize");
  }
  return v;
}

ByteVec Reader::ReadVarBytes(std::size_t max_len) {
  const std::uint64_t n = ReadCompactSize();
  if (n > max_len) throw DeserializeError("var bytes length exceeds limit");
  return ReadBytes(static_cast<std::size_t>(n));
}

std::string Reader::ReadVarString(std::size_t max_len) {
  const std::uint64_t n = ReadCompactSize();
  if (n > max_len) throw DeserializeError("var string length exceeds limit");
  Need(static_cast<std::size_t>(n));
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

}  // namespace bsutil
