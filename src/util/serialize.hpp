// Little-endian wire (de)serialization used by the Bitcoin protocol layer.
//
// Bitcoin serializes all integers little-endian and uses the CompactSize
// ("varint") encoding for collection lengths. `Writer` appends to an owned
// buffer; `Reader` consumes a non-owning view and throws DeserializeError on
// truncated or malformed input, which the protocol codec maps to a decode
// failure (and, at the node layer, to a misbehavior event where applicable).
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace bsutil {

/// Thrown by Reader on truncated input, oversized lengths, or non-canonical
/// CompactSize encodings.
class DeserializeError : public std::runtime_error {
 public:
  explicit DeserializeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian serializer.
class Writer {
 public:
  Writer() = default;

  void WriteU8(std::uint8_t v) { buf_.push_back(v); }
  void WriteU16(std::uint16_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI32(std::int32_t v) { WriteU32(static_cast<std::uint32_t>(v)); }
  void WriteI64(std::int64_t v) { WriteU64(static_cast<std::uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  /// IEEE-754 bit pattern, little-endian (exact round-trip, NaN included).
  void WriteDouble(double v) { WriteU64(std::bit_cast<std::uint64_t>(v)); }
  void WriteBytes(ByteSpan data);
  /// Bitcoin CompactSize: 1, 3, 5, or 9 bytes depending on magnitude.
  void WriteCompactSize(std::uint64_t v);
  /// CompactSize length prefix followed by the raw bytes.
  void WriteVarBytes(ByteSpan data);
  /// CompactSize length prefix followed by the string bytes (Bitcoin "var_str").
  void WriteVarString(const std::string& s);

  const ByteVec& Data() const { return buf_; }
  ByteVec TakeData() { return std::move(buf_); }
  std::size_t Size() const { return buf_.size(); }

 private:
  ByteVec buf_;
};

/// Consuming little-endian deserializer over a borrowed byte view.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  std::uint8_t ReadU8();
  std::uint16_t ReadU16();
  std::uint32_t ReadU32();
  std::uint64_t ReadU64();
  std::int32_t ReadI32() { return static_cast<std::int32_t>(ReadU32()); }
  std::int64_t ReadI64() { return static_cast<std::int64_t>(ReadU64()); }
  bool ReadBool() { return ReadU8() != 0; }
  double ReadDouble() { return std::bit_cast<double>(ReadU64()); }
  ByteVec ReadBytes(std::size_t n);
  /// Reads a CompactSize and enforces canonical (minimal) encoding, as
  /// Bitcoin Core does for lengths.
  std::uint64_t ReadCompactSize();
  /// CompactSize-prefixed byte vector, bounded by `max_len`.
  ByteVec ReadVarBytes(std::size_t max_len = 32 * 1024 * 1024);
  std::string ReadVarString(std::size_t max_len = 256);

  std::size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t Position() const { return pos_; }

 private:
  void Need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw DeserializeError("truncated input: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace bsutil
