#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace bsutil {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(v, 0)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return Literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return Literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      JsonValue child;
      if (!ParseValue(child, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(child));
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool ParseArray(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      JsonValue child;
      if (!ParseValue(child, depth + 1)) return false;
      out.array.push_back(std::move(child));
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  bool ParseString(std::string& out) {
    if (!Eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our emitters; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

void FlattenJsonNumbers(const JsonValue& value, const std::string& prefix,
                        std::vector<std::pair<std::string, double>>& out) {
  switch (value.kind) {
    case JsonValue::Kind::kNumber:
      out.emplace_back(prefix, value.number);
      break;
    case JsonValue::Kind::kBool:
      out.emplace_back(prefix, value.boolean ? 1.0 : 0.0);
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [k, v] : value.object) {
        FlattenJsonNumbers(v, prefix.empty() ? k : prefix + "." + k, out);
      }
      break;
    case JsonValue::Kind::kArray:
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        FlattenJsonNumbers(value.array[i],
                           prefix.empty() ? std::to_string(i)
                                          : prefix + "." + std::to_string(i),
                           out);
      }
      break;
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString:
      break;
  }
}

}  // namespace bsutil
