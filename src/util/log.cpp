#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace bsutil {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogLine(LogLevel level, const std::string& category, const std::string& msg) {
  if (level < GetLogLevel()) return;
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), category.c_str(), msg.c_str());
}

}  // namespace bsutil
