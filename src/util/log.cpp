#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bsutil {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogFormat> g_format{LogFormat::kText};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string Lowered(const char* s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// Environment settings apply to every binary (benches, examples, tools)
// without recompiling: force InitLogFromEnv before main().
[[maybe_unused]] const bool g_env_applied = []() {
  InitLogFromEnv();
  return true;
}();

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogFormat(LogFormat format) {
  g_format.store(format, std::memory_order_relaxed);
}

LogFormat GetLogFormat() { return g_format.load(std::memory_order_relaxed); }

void InitLogFromEnv() {
  if (const char* level = std::getenv("BSNET_LOG_LEVEL")) {
    const std::string v = Lowered(level);
    if (v == "trace" || v == "0") SetLogLevel(LogLevel::kTrace);
    else if (v == "debug" || v == "1") SetLogLevel(LogLevel::kDebug);
    else if (v == "info" || v == "2") SetLogLevel(LogLevel::kInfo);
    else if (v == "warn" || v == "3") SetLogLevel(LogLevel::kWarn);
    else if (v == "error" || v == "4") SetLogLevel(LogLevel::kError);
    else if (v == "off" || v == "5") SetLogLevel(LogLevel::kOff);
  }
  if (const char* format = std::getenv("BSNET_LOG_FORMAT")) {
    const std::string v = Lowered(format);
    if (v == "json") SetLogFormat(LogFormat::kJson);
    else if (v == "text") SetLogFormat(LogFormat::kText);
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void LogLine(LogLevel level, const std::string& category, const std::string& msg) {
  if (level < GetLogLevel()) return;
  if (GetLogFormat() == LogFormat::kJson) {
    std::fprintf(stderr, "{\"level\":\"%s\",\"category\":\"%s\",\"msg\":\"%s\"}\n",
                 LevelName(level), JsonEscape(category).c_str(),
                 JsonEscape(msg).c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), category.c_str(),
                 msg.c_str());
  }
}

}  // namespace bsutil
