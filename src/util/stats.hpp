// Descriptive statistics used by the measurement harnesses and by the
// statistical anomaly-detection engine (mean/stddev/CI, Pearson correlation,
// normalized count distributions).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace bsutil {

/// Summary of a sample: count, mean, standard deviation, min/max, and a 95%
/// confidence half-width (normal approximation, as used for the paper's
/// "95% confidence level" error bars in Fig. 6).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci95_half_width = 0.0;
};

/// Compute a Summary over the sample; returns a zero Summary for empty input.
Summary Summarize(const std::vector<double>& xs);

/// Pearson correlation coefficient of two equal-length vectors.
/// Returns 0 when either vector has zero variance or lengths differ.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Normalize counts so they sum to 1. Returns all-zero for an all-zero input.
std::vector<double> NormalizeDistribution(const std::vector<double>& counts);

/// Incremental accumulator for streaming means/variances (Welford).
class Accumulator {
 public:
  void Add(double x);
  std::size_t Count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const;
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Aligns two keyed count maps onto a shared key order and returns the two
/// normalized count vectors (used for the message-count-distribution feature
/// lambda, where keys are message command names).
std::pair<std::vector<double>, std::vector<double>> AlignedDistributions(
    const std::map<std::string, double>& a, const std::map<std::string, double>& b);

}  // namespace bsutil
