// Minimal leveled logger. Quiet by default so benchmarks and tests are not
// swamped; scenario examples raise the level to narrate what the node does.
#pragma once

#include <sstream>
#include <string>

namespace bsutil {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Set/get the global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit one log line (category and message) if `level` passes the threshold.
void LogLine(LogLevel level, const std::string& category, const std::string& msg);

namespace detail {
template <typename... Args>
std::string Concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void Log(LogLevel level, const std::string& category, Args&&... args) {
  if (level < GetLogLevel()) return;
  LogLine(level, category, detail::Concat(std::forward<Args>(args)...));
}

}  // namespace bsutil
