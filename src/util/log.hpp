// Minimal leveled logger. Quiet by default so benchmarks and tests are not
// swamped; scenario examples raise the level to narrate what the node does.
//
// Two sinks: human text (default) and structured JSON lines for machine
// consumption. Both the threshold and the format can be set without
// recompiling via environment variables read at startup:
//   BSNET_LOG_LEVEL  = trace|debug|info|warn|error|off  (or 0-5)
//   BSNET_LOG_FORMAT = text|json
#pragma once

#include <sstream>
#include <string>

namespace bsutil {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

enum class LogFormat { kText = 0, kJson = 1 };

/// Set/get the global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Set/get the line format: kText ("[WARN] cat: msg") or kJson
/// ({"level":"WARN","category":"cat","msg":"msg"}).
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Apply BSNET_LOG_LEVEL / BSNET_LOG_FORMAT from the environment. Runs
/// automatically before main() (static initializer in log.cpp); safe to call
/// again after a manual override. Unknown values keep the current setting.
void InitLogFromEnv();

/// Emit one log line (category and message) if `level` passes the threshold.
void LogLine(LogLevel level, const std::string& category, const std::string& msg);

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by the JSON log sink and the
/// bsobs JSON exporters.
std::string JsonEscape(const std::string& s);

namespace detail {
template <typename... Args>
std::string Concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void Log(LogLevel level, const std::string& category, Args&&... args) {
  if (level < GetLogLevel()) return;
  LogLine(level, category, detail::Concat(std::forward<Args>(args)...));
}

}  // namespace bsutil
