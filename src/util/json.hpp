// Minimal JSON reader for tooling (bench-diff, forensic CLI). Parses the
// subset the repo's own emitters produce — objects, arrays, strings with
// escapes, numbers (including exponents), booleans, null — into a small
// value tree. Not a streaming parser and not meant for hostile input sizes;
// depth is bounded to keep malformed input from recursing away the stack.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bsutil {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  // Insertion order preserved; duplicate keys keep both (Find returns the
  // first), matching what a text diff of the source file would show.
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parse `text` as one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). nullopt on any syntax error.
std::optional<JsonValue> ParseJson(const std::string& text);

/// Depth-first flatten of every numeric leaf under `value`, keyed by
/// dotted path ("results.events_per_sec", "stages.codec_decode.p50_ns",
/// "metrics.counters.bs_..."). Array elements use the index as the path
/// component. Booleans flatten as 0/1; strings and nulls are skipped.
void FlattenJsonNumbers(const JsonValue& value, const std::string& prefix,
                        std::vector<std::pair<std::string, double>>& out);

}  // namespace bsutil
