// Basic byte-container aliases and span helpers shared across all libraries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bsutil {

/// Owning byte buffer used for wire payloads and hashes.
using ByteVec = std::vector<std::uint8_t>;

/// Non-owning read-only view of bytes.
using ByteSpan = std::span<const std::uint8_t>;

/// Convert an ASCII string to its byte representation (no encoding change).
inline ByteVec ToBytes(const std::string& s) {
  return ByteVec(s.begin(), s.end());
}

}  // namespace bsutil
