// Hex encoding/decoding helpers.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace bsutil {

/// Encode bytes as lowercase hex.
std::string HexEncode(ByteSpan data);

/// Decode a hex string; returns std::nullopt on any malformed input
/// (odd length or non-hex character).
std::optional<ByteVec> HexDecode(const std::string& hex);

}  // namespace bsutil
