// Gradient boosting with shallow regression trees on logistic loss.
#pragma once

#include <vector>

#include "mlbase/tree.hpp"

namespace bsml {

class GradientBoosting : public Detector {
 public:
  struct Config {
    int rounds = 60;
    int max_depth = 3;
    double learning_rate = 0.2;
    std::uint64_t seed = 23;
  };

  GradientBoosting() : GradientBoosting(Config{}) {}
  explicit GradientBoosting(Config config) : config_(config) {}

  const char* Name() const override { return "GB"; }
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  double Score(const Vec& x) const;  // raw additive score (log-odds)

 private:
  Config config_;
  double base_score_ = 0.0;
  std::vector<RegressionTree> trees_;
};

}  // namespace bsml
