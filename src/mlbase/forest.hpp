// Random forest: bagged regression trees with feature subsampling, majority
// (mean-score) vote.
#pragma once

#include <vector>

#include "mlbase/tree.hpp"

namespace bsml {

class RandomForest : public Detector {
 public:
  struct Config {
    int num_trees = 50;
    int max_depth = 6;
    std::uint64_t seed = 17;
  };

  RandomForest() : RandomForest(Config{}) {}
  explicit RandomForest(Config config) : config_(config) {}

  const char* Name() const override { return "RF"; }
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  double Score(const Vec& x) const;

 private:
  Config config_;
  std::vector<RegressionTree> trees_;
};

}  // namespace bsml
