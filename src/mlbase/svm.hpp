// Linear SVM trained with the Pegasos stochastic sub-gradient solver.
#pragma once

#include "mlbase/dataset.hpp"

namespace bsml {

class LinearSvm : public Detector {
 public:
  struct Config {
    int iterations = 20'000;
    double lambda = 1e-4;
    std::uint64_t seed = 31;
  };

  LinearSvm() : LinearSvm(Config{}) {}
  explicit LinearSvm(Config config) : config_(config) {}

  const char* Name() const override { return "SVM"; }
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  double Margin(const Vec& x) const;

 private:
  Config config_;
  Standardizer scaler_;
  Vec weights_;
  double bias_ = 0.0;
};

}  // namespace bsml
