#include "mlbase/autoencoder.hpp"

#include <algorithm>
#include <cmath>

namespace bsml {

namespace {
void InitLayer(AutoEncoder::Config, Mat& weights, Vec& bias, std::size_t out,
               std::size_t in, bsutil::Rng& rng) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  weights.assign(out, Vec(in));
  bias.assign(out, 0.0);
  for (auto& row : weights) {
    for (double& w : row) w = rng.Normal(0.0, scale);
  }
}
}  // namespace

Vec AutoEncoder::Forward(const Layer& layer, const Vec& input, bool relu) const {
  Vec out(layer.bias);
  for (std::size_t o = 0; o < layer.weights.size(); ++o) {
    double sum = out[o];
    const Vec& row = layer.weights[o];
    for (std::size_t i = 0; i < row.size() && i < input.size(); ++i) sum += row[i] * input[i];
    out[o] = relu ? std::max(0.0, sum) : sum;
  }
  return out;
}

Vec AutoEncoder::Reconstruct(const Vec& z) const {
  const Vec h1 = Forward(enc1_, z, true);
  const Vec code = Forward(enc2_, h1, true);
  const Vec h2 = Forward(dec1_, code, true);
  return Forward(dec2_, h2, false);
}

void AutoEncoder::Fit(const Mat& X, const std::vector<int>& y) {
  Mat normals;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (y[i] == 0) normals.push_back(X[i]);
  }
  if (normals.empty()) return;
  scaler_.Fit(normals);
  const Mat Z = scaler_.Transform(normals);
  const std::size_t dims = Z[0].size();
  bsutil::Rng rng(config_.seed);
  InitLayer(config_, enc1_.weights, enc1_.bias, config_.hidden, dims, rng);
  InitLayer(config_, enc2_.weights, enc2_.bias, config_.bottleneck, config_.hidden, rng);
  InitLayer(config_, dec1_.weights, dec1_.bias, config_.hidden, config_.bottleneck, rng);
  InitLayer(config_, dec2_.weights, dec2_.bias, dims, config_.hidden, rng);

  const double lr = config_.learning_rate;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const Vec& x : Z) {
      // Forward with cached activations.
      const Vec h1 = Forward(enc1_, x, true);
      const Vec code = Forward(enc2_, h1, true);
      const Vec h2 = Forward(dec1_, code, true);
      const Vec out = Forward(dec2_, h2, false);

      // Backprop of squared error.
      Vec delta_out(dims);
      for (std::size_t d = 0; d < dims; ++d) delta_out[d] = out[d] - x[d];

      Vec delta_h2(config_.hidden, 0.0);
      for (std::size_t j = 0; j < config_.hidden; ++j) {
        double sum = 0.0;
        for (std::size_t d = 0; d < dims; ++d) sum += delta_out[d] * dec2_.weights[d][j];
        delta_h2[j] = sum * (h2[j] > 0.0 ? 1.0 : 0.0);
      }
      Vec delta_code(config_.bottleneck, 0.0);
      for (std::size_t j = 0; j < config_.bottleneck; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k < config_.hidden; ++k) {
          sum += delta_h2[k] * dec1_.weights[k][j];
        }
        delta_code[j] = sum * (code[j] > 0.0 ? 1.0 : 0.0);
      }
      Vec delta_h1(config_.hidden, 0.0);
      for (std::size_t j = 0; j < config_.hidden; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k < config_.bottleneck; ++k) {
          sum += delta_code[k] * enc2_.weights[k][j];
        }
        delta_h1[j] = sum * (h1[j] > 0.0 ? 1.0 : 0.0);
      }

      for (std::size_t d = 0; d < dims; ++d) {
        for (std::size_t j = 0; j < config_.hidden; ++j) {
          dec2_.weights[d][j] -= lr * delta_out[d] * h2[j];
        }
        dec2_.bias[d] -= lr * delta_out[d];
      }
      for (std::size_t k = 0; k < config_.hidden; ++k) {
        for (std::size_t j = 0; j < config_.bottleneck; ++j) {
          dec1_.weights[k][j] -= lr * delta_h2[k] * code[j];
        }
        dec1_.bias[k] -= lr * delta_h2[k];
      }
      for (std::size_t k = 0; k < config_.bottleneck; ++k) {
        for (std::size_t j = 0; j < config_.hidden; ++j) {
          enc2_.weights[k][j] -= lr * delta_code[k] * h1[j];
        }
        enc2_.bias[k] -= lr * delta_code[k];
      }
      for (std::size_t k = 0; k < config_.hidden; ++k) {
        for (std::size_t d = 0; d < dims; ++d) {
          enc1_.weights[k][d] -= lr * delta_h1[k] * x[d];
        }
        enc1_.bias[k] -= lr * delta_h1[k];
      }
    }
  }

  // Threshold: high quantile of training reconstruction errors.
  Vec errors;
  errors.reserve(Z.size());
  for (const Vec& x : Z) {
    const Vec out = Reconstruct(x);
    double err = 0.0;
    for (std::size_t d = 0; d < dims; ++d) err += (out[d] - x[d]) * (out[d] - x[d]);
    errors.push_back(err);
  }
  std::sort(errors.begin(), errors.end());
  const std::size_t idx = std::min(
      errors.size() - 1,
      static_cast<std::size_t>(config_.threshold_quantile *
                               static_cast<double>(errors.size())));
  threshold_ = errors[idx] * 1.5;  // slack above the observed quantile
}

double AutoEncoder::ReconstructionError(const Vec& x) const {
  if (enc1_.weights.empty()) return 0.0;
  const Vec z = scaler_.Transform(x);
  const Vec out = Reconstruct(z);
  double err = 0.0;
  for (std::size_t d = 0; d < z.size(); ++d) err += (out[d] - z[d]) * (out[d] - z[d]);
  return err;
}

int AutoEncoder::Predict(const Vec& x) const {
  return ReconstructionError(x) > threshold_ ? 1 : 0;
}

}  // namespace bsml
