#include "mlbase/logistic.hpp"

#include <cmath>

namespace bsml {

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticRegression::Fit(const Mat& X, const std::vector<int>& y) {
  if (X.empty()) return;
  scaler_.Fit(X);
  const Mat Z = scaler_.Transform(X);
  const std::size_t dims = Z[0].size();
  const double n = static_cast<double>(Z.size());
  weights_.assign(dims, 0.0);
  bias_ = 0.0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Vec grad(dims, 0.0);
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < Z.size(); ++i) {
      double z = bias_;
      for (std::size_t d = 0; d < dims; ++d) z += weights_[d] * Z[i][d];
      const double err = Sigmoid(z) - static_cast<double>(y[i]);
      for (std::size_t d = 0; d < dims; ++d) grad[d] += err * Z[i][d];
      grad_bias += err;
    }
    for (std::size_t d = 0; d < dims; ++d) {
      weights_[d] -= config_.learning_rate * (grad[d] / n + config_.l2 * weights_[d]);
    }
    bias_ -= config_.learning_rate * grad_bias / n;
  }
}

double LogisticRegression::PredictProba(const Vec& x) const {
  if (weights_.empty()) return 0.0;  // untrained: everything is normal
  const Vec z = scaler_.Transform(x);
  double s = bias_;
  for (std::size_t d = 0; d < z.size() && d < weights_.size(); ++d) s += weights_[d] * z[d];
  return Sigmoid(s);
}

int LogisticRegression::Predict(const Vec& x) const {
  return PredictProba(x) >= 0.5 ? 1 : 0;
}

}  // namespace bsml
