// Logistic regression trained by full-batch gradient descent.
#pragma once

#include "mlbase/dataset.hpp"

namespace bsml {

class LogisticRegression : public Detector {
 public:
  struct Config {
    int epochs = 300;
    double learning_rate = 0.1;
    double l2 = 1e-4;
  };

  LogisticRegression() : LogisticRegression(Config{}) {}
  explicit LogisticRegression(Config config) : config_(config) {}

  const char* Name() const override { return "LR"; }
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  /// P(anomalous | x).
  double PredictProba(const Vec& x) const;

 private:
  Config config_;
  Standardizer scaler_;
  Vec weights_;
  double bias_ = 0.0;
};

}  // namespace bsml
