#include "mlbase/forest.hpp"

#include <algorithm>
#include <cmath>

namespace bsml {

// ---------------------------------------------------------------------------
// RegressionTree

void RegressionTree::Fit(const Mat& X, const Vec& targets,
                         const std::vector<std::size_t>& indices, bsutil::Rng& rng) {
  std::vector<std::size_t> working = indices;
  root_ = Build(X, targets, working, 0, rng);
}

std::unique_ptr<RegressionTree::Node> RegressionTree::Build(
    const Mat& X, const Vec& targets, std::vector<std::size_t>& indices, int depth,
    bsutil::Rng& rng) {
  auto node = std::make_unique<Node>();
  double mean = 0.0;
  for (std::size_t i : indices) mean += targets[i];
  mean /= indices.empty() ? 1.0 : static_cast<double>(indices.size());
  node->value = mean;

  if (depth >= config_.max_depth || indices.size() < config_.min_samples_split) {
    return node;
  }

  const std::size_t dims = X.empty() ? 0 : X[0].size();
  std::size_t features_to_try = config_.feature_subsample == 0
                                    ? dims
                                    : std::min(config_.feature_subsample, dims);

  double best_gain = 1e-12;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  // Baseline SSE.
  double sse = 0.0;
  for (std::size_t i : indices) sse += (targets[i] - mean) * (targets[i] - mean);

  for (std::size_t t = 0; t < features_to_try; ++t) {
    const std::size_t f =
        config_.feature_subsample == 0 ? t : static_cast<std::size_t>(rng.Below(dims));
    // Candidate thresholds: a handful of sampled split points.
    for (int c = 0; c < 8; ++c) {
      const std::size_t pivot = indices[rng.Below(indices.size())];
      const double threshold = X[pivot][f];
      double left_sum = 0, right_sum = 0;
      std::size_t left_n = 0, right_n = 0;
      for (std::size_t i : indices) {
        if (X[i][f] <= threshold) {
          left_sum += targets[i];
          ++left_n;
        } else {
          right_sum += targets[i];
          ++right_n;
        }
      }
      if (left_n == 0 || right_n == 0) continue;
      const double lm = left_sum / static_cast<double>(left_n);
      const double rm = right_sum / static_cast<double>(right_n);
      double split_sse = 0.0;
      for (std::size_t i : indices) {
        const double m = X[i][f] <= threshold ? lm : rm;
        split_sse += (targets[i] - m) * (targets[i] - m);
      }
      const double gain = sse - split_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = threshold;
      }
    }
  }

  if (best_gain <= 1e-12) return node;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    (X[i][best_feature] <= best_threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node;

  node->leaf = false;
  node->feature = best_feature;
  node->threshold = best_threshold;
  node->left = Build(X, targets, left_idx, depth + 1, rng);
  node->right = Build(X, targets, right_idx, depth + 1, rng);
  return node;
}

double RegressionTree::Predict(const Vec& x) const {
  const Node* node = root_.get();
  if (node == nullptr) return 0.0;
  while (!node->leaf) {
    node = (x[node->feature] <= node->threshold) ? node->left.get() : node->right.get();
  }
  return node->value;
}

// ---------------------------------------------------------------------------
// RandomForest

void RandomForest::Fit(const Mat& X, const std::vector<int>& y) {
  trees_.clear();
  if (X.empty()) return;
  bsutil::Rng rng(config_.seed);
  Vec targets(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) targets[i] = static_cast<double>(y[i]);
  const std::size_t dims = X[0].size();

  for (int t = 0; t < config_.num_trees; ++t) {
    RegressionTree::Config tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.feature_subsample =
        std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(dims)));
    RegressionTree tree(tree_config);
    // Bootstrap sample.
    std::vector<std::size_t> indices(X.size());
    for (auto& idx : indices) idx = static_cast<std::size_t>(rng.Below(X.size()));
    tree.Fit(X, targets, indices, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::Score(const Vec& x) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(x);
  return sum / static_cast<double>(trees_.size());
}

int RandomForest::Predict(const Vec& x) const { return Score(x) >= 0.5 ? 1 : 0; }

}  // namespace bsml
