#include "mlbase/dnn.hpp"

#include <cmath>

namespace bsml {

namespace {

void InitLayer(Mat& weights, Vec& bias, std::size_t out, std::size_t in,
               bsutil::Rng& rng) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  weights.assign(out, Vec(in));
  bias.assign(out, 0.0);
  for (auto& row : weights) {
    for (double& w : row) w = rng.Normal(0.0, scale);
  }
}

}  // namespace

Vec Dnn::Forward(const Layer& layer, const Vec& input, bool relu) const {
  Vec out(layer.bias);
  for (std::size_t o = 0; o < layer.weights.size(); ++o) {
    const Vec& row = layer.weights[o];
    double sum = out[o];
    for (std::size_t i = 0; i < row.size() && i < input.size(); ++i) sum += row[i] * input[i];
    out[o] = relu ? std::max(0.0, sum) : sum;
  }
  return out;
}

void Dnn::Fit(const Mat& X, const std::vector<int>& y) {
  if (X.empty()) return;
  scaler_.Fit(X);
  const Mat Z = scaler_.Transform(X);
  const std::size_t dims = Z[0].size();
  bsutil::Rng rng(config_.seed);
  InitLayer(l1_.weights, l1_.bias, config_.hidden1, dims, rng);
  InitLayer(l2_.weights, l2_.bias, config_.hidden2, config_.hidden1, rng);
  InitLayer(l3_.weights, l3_.bias, 1, config_.hidden2, rng);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t start = 0; start < Z.size(); start += config_.batch_size) {
      const std::size_t end = std::min(Z.size(), start + config_.batch_size);
      for (std::size_t i = start; i < end; ++i) {
        // Forward pass, keeping activations.
        const Vec h1 = Forward(l1_, Z[i], /*relu=*/true);
        const Vec h2 = Forward(l2_, h1, /*relu=*/true);
        const double logit = Forward(l3_, h2, /*relu=*/false)[0];
        const double prob = 1.0 / (1.0 + std::exp(-logit));
        const double delta_out = prob - static_cast<double>(y[i]);  // dL/dlogit

        // Backward pass.
        Vec delta_h2(config_.hidden2, 0.0);
        for (std::size_t j = 0; j < config_.hidden2; ++j) {
          delta_h2[j] = delta_out * l3_.weights[0][j] * (h2[j] > 0.0 ? 1.0 : 0.0);
        }
        Vec delta_h1(config_.hidden1, 0.0);
        for (std::size_t j = 0; j < config_.hidden1; ++j) {
          double sum = 0.0;
          for (std::size_t k = 0; k < config_.hidden2; ++k) {
            sum += delta_h2[k] * l2_.weights[k][j];
          }
          delta_h1[j] = sum * (h1[j] > 0.0 ? 1.0 : 0.0);
        }

        const double lr = config_.learning_rate;
        for (std::size_t j = 0; j < config_.hidden2; ++j) {
          l3_.weights[0][j] -= lr * delta_out * h2[j];
        }
        l3_.bias[0] -= lr * delta_out;
        for (std::size_t k = 0; k < config_.hidden2; ++k) {
          for (std::size_t j = 0; j < config_.hidden1; ++j) {
            l2_.weights[k][j] -= lr * delta_h2[k] * h1[j];
          }
          l2_.bias[k] -= lr * delta_h2[k];
        }
        for (std::size_t j = 0; j < config_.hidden1; ++j) {
          for (std::size_t d = 0; d < dims; ++d) {
            l1_.weights[j][d] -= lr * delta_h1[j] * Z[i][d];
          }
          l1_.bias[j] -= lr * delta_h1[j];
        }
      }
    }
  }
}

double Dnn::PredictProba(const Vec& x) const {
  if (l1_.weights.empty()) return 0.0;
  const Vec z = scaler_.Transform(x);
  const Vec h1 = Forward(l1_, z, true);
  const Vec h2 = Forward(l2_, h1, true);
  const double logit = Forward(l3_, h2, false)[0];
  return 1.0 / (1.0 + std::exp(-logit));
}

int Dnn::Predict(const Vec& x) const { return PredictProba(x) >= 0.5 ? 1 : 0; }

}  // namespace bsml
