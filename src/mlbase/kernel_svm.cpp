#include "mlbase/kernel_svm.hpp"

#include <algorithm>
#include <cmath>

namespace bsml {

// ---------------------------------------------------------------------------
// KernelSvm

double KernelSvm::Kernel(const Vec& a, const Vec& b) const {
  double dist2 = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t d = 0; d < n; ++d) {
    const double diff = a[d] - b[d];
    dist2 += diff * diff;
  }
  return std::exp(-config_.gamma * dist2);
}

void KernelSvm::Fit(const Mat& X, const std::vector<int>& y) {
  if (X.empty()) return;
  scaler_.Fit(X);
  support_ = scaler_.Transform(X);
  alpha_.assign(X.size(), 0.0);

  bsutil::Rng rng(config_.seed);
  // Kernelized Pegasos (Shalev-Shwartz et al.): on a margin violation the
  // sampled point's coefficient is incremented; the decision function is
  // (1/(lambda*t)) * sum_j alpha_j y_j K(x_j, x).
  for (int t = 1; t <= config_.iterations; ++t) {
    const std::size_t i = static_cast<std::size_t>(rng.Below(support_.size()));
    const double label = y[i] == 1 ? 1.0 : -1.0;
    double sum = 0.0;
    for (std::size_t j = 0; j < support_.size(); ++j) {
      if (alpha_[j] != 0.0) sum += alpha_[j] * Kernel(support_[j], support_[i]);
    }
    const double margin = label * sum / (config_.lambda * static_cast<double>(t));
    if (margin < 1.0) alpha_[i] += label;
  }
  scale_ = 1.0 / (config_.lambda * static_cast<double>(config_.iterations));
}

double KernelSvm::Margin(const Vec& x) const {
  if (support_.empty()) return 0.0;
  const Vec z = scaler_.Transform(x);
  double sum = 0.0;
  for (std::size_t j = 0; j < support_.size(); ++j) {
    if (alpha_[j] != 0.0) sum += alpha_[j] * Kernel(support_[j], z);
  }
  return sum * scale_;
}

int KernelSvm::Predict(const Vec& x) const { return Margin(x) >= 0.0 ? 1 : 0; }

// ---------------------------------------------------------------------------
// KernelOneClass

double KernelOneClass::Kernel(const Vec& a, const Vec& b) const {
  double dist2 = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t d = 0; d < n; ++d) {
    const double diff = a[d] - b[d];
    dist2 += diff * diff;
  }
  return std::exp(-config_.gamma * dist2);
}

void KernelOneClass::Fit(const Mat& X, const std::vector<int>& y) {
  Mat normals;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (y[i] == 0) normals.push_back(X[i]);
  }
  if (normals.empty()) return;
  scaler_.Fit(normals);
  support_ = scaler_.Transform(normals);

  // Self-scores: mean kernel similarity of each training point to the rest.
  Vec self_scores;
  self_scores.reserve(support_.size());
  for (const Vec& z : support_) {
    double sum = 0.0;
    for (const Vec& other : support_) sum += Kernel(z, other);
    self_scores.push_back(sum / static_cast<double>(support_.size()));
  }
  std::sort(self_scores.begin(), self_scores.end());
  const std::size_t idx = std::min(
      self_scores.size() - 1,
      static_cast<std::size_t>(config_.nu * static_cast<double>(self_scores.size())));
  threshold_ = self_scores[idx] * 0.8;  // slack below the nu quantile
}

double KernelOneClass::Score(const Vec& x) const {
  if (support_.empty()) return 0.0;
  const Vec z = scaler_.Transform(x);
  double sum = 0.0;
  for (const Vec& other : support_) sum += Kernel(z, other);
  return sum / static_cast<double>(support_.size());
}

int KernelOneClass::Predict(const Vec& x) const {
  return Score(x) < threshold_ ? 1 : 0;
}

}  // namespace bsml
