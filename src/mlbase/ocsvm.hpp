// One-class SVM baseline, in the SVDD (support vector data description)
// formulation — the sphere-boundary model equivalent to an RBF one-class SVM
// for our feature space. Fits a center on the normal class and a soft radius
// at the (1-ν) quantile of training distances; points outside the sphere are
// anomalous.
#pragma once

#include "mlbase/dataset.hpp"

namespace bsml {

class OneClassSvm : public Detector {
 public:
  struct Config {
    double nu = 0.02;  // tolerated training outlier fraction
    double radius_slack = 1.25;
    std::uint64_t seed = 47;
  };

  OneClassSvm() : OneClassSvm(Config{}) {}
  explicit OneClassSvm(Config config) : config_(config) {}

  const char* Name() const override { return "OC-SVM"; }
  /// Fits on rows with y == 0 (normal); anomalous rows are ignored.
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  /// Decision value: negative means anomalous (outside the sphere).
  double Decision(const Vec& x) const;

 private:
  double DistanceToCenter(const Vec& z) const;

  Config config_;
  Standardizer scaler_;
  Vec center_;
  double radius_ = 0.0;
};

}  // namespace bsml
