// RBF-kernel SVM trained with kernelized Pegasos — the baseline matching the
// literature's sklearn SVC usage (kernel methods, not linear models). Each
// update evaluates the kernel against every support coefficient, so training
// is O(iterations * n * d), the cost profile Fig. 11 compares against.
#pragma once

#include "mlbase/dataset.hpp"

namespace bsml {

class KernelSvm : public Detector {
 public:
  struct Config {
    int iterations = 20'000;
    double lambda = 1e-4;
    double gamma = 0.05;  // RBF width
    std::uint64_t seed = 37;
  };

  KernelSvm() : KernelSvm(Config{}) {}
  explicit KernelSvm(Config config) : config_(config) {}

  const char* Name() const override { return "SVM(RBF)"; }
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  double Margin(const Vec& x) const;

 private:
  double Kernel(const Vec& a, const Vec& b) const;

  Config config_;
  Standardizer scaler_;
  Mat support_;             // standardized training points
  Vec alpha_;               // per-point coefficients (signed by label)
  double scale_ = 1.0;      // Pegasos 1/(lambda*T) factor
};

/// Kernel-density one-class detector (the RBF OC-SVM stand-in): scores a
/// point by its mean RBF similarity to the training set; the alert threshold
/// is the ν quantile of the training self-scores. Training computes the full
/// pairwise kernel matrix diagonal pass — O(n^2 d), like a kernel OC-SVM.
class KernelOneClass : public Detector {
 public:
  struct Config {
    double nu = 0.02;
    double gamma = 0.05;
    std::uint64_t seed = 59;
  };

  KernelOneClass() : KernelOneClass(Config{}) {}
  explicit KernelOneClass(Config config) : config_(config) {}

  const char* Name() const override { return "OC-SVM(RBF)"; }
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  double Score(const Vec& x) const;

 private:
  double Kernel(const Vec& a, const Vec& b) const;

  Config config_;
  Standardizer scaler_;
  Mat support_;
  double threshold_ = 0.0;
};

}  // namespace bsml
