// Shared CART-style decision tree used by random forest and (as stumps)
// gradient boosting. Regression trees on squared error; classification via
// thresholding the regressed score.
#pragma once

#include <cstdint>
#include <memory>

#include "mlbase/dataset.hpp"

namespace bsml {

class RegressionTree {
 public:
  struct Config {
    int max_depth = 4;
    std::size_t min_samples_split = 4;
    /// Number of candidate features per split (0 = all), for forests.
    std::size_t feature_subsample = 0;
  };

  RegressionTree() : RegressionTree(Config{}) {}
  explicit RegressionTree(Config config) : config_(config) {}

  /// Fit to (X, targets). `indices` selects the rows used (bootstrap).
  void Fit(const Mat& X, const Vec& targets, const std::vector<std::size_t>& indices,
           bsutil::Rng& rng);

  double Predict(const Vec& x) const;

 private:
  struct Node {
    bool leaf = true;
    double value = 0.0;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  std::unique_ptr<Node> Build(const Mat& X, const Vec& targets,
                              std::vector<std::size_t>& indices, int depth,
                              bsutil::Rng& rng);

  Config config_;
  std::unique_ptr<Node> root_;
};

}  // namespace bsml
