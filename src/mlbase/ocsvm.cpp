#include "mlbase/ocsvm.hpp"

#include <algorithm>
#include <cmath>

namespace bsml {

void OneClassSvm::Fit(const Mat& X, const std::vector<int>& y) {
  Mat normals;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (y[i] == 0) normals.push_back(X[i]);
  }
  if (normals.empty()) return;
  scaler_.Fit(normals);
  const Mat Z = scaler_.Transform(normals);
  const std::size_t dims = Z[0].size();

  center_.assign(dims, 0.0);
  for (const Vec& z : Z) {
    for (std::size_t d = 0; d < dims; ++d) center_[d] += z[d];
  }
  for (double& c : center_) c /= static_cast<double>(Z.size());

  // Soft radius: the (1-ν) quantile of training distances, with slack, so a
  // ν fraction of training normals may sit outside the sphere.
  Vec distances;
  distances.reserve(Z.size());
  for (const Vec& z : Z) distances.push_back(DistanceToCenter(z));
  std::sort(distances.begin(), distances.end());
  const std::size_t idx = std::min(
      distances.size() - 1,
      static_cast<std::size_t>((1.0 - config_.nu) *
                               static_cast<double>(distances.size())));
  radius_ = distances[idx] * config_.radius_slack;
}

double OneClassSvm::DistanceToCenter(const Vec& z) const {
  double sum = 0.0;
  for (std::size_t d = 0; d < z.size() && d < center_.size(); ++d) {
    const double diff = z[d] - center_[d];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double OneClassSvm::Decision(const Vec& x) const {
  if (center_.empty()) return 0.0;
  return radius_ - DistanceToCenter(scaler_.Transform(x));
}

int OneClassSvm::Predict(const Vec& x) const { return Decision(x) < 0.0 ? 1 : 0; }

}  // namespace bsml
