// Autoencoder anomaly detector: a bottleneck MLP trained to reconstruct
// normal feature vectors; anomalies reconstruct badly. The alert threshold
// is a high quantile of the training reconstruction errors (the approach of
// the paper's [22] baseline).
#pragma once

#include "mlbase/dataset.hpp"

namespace bsml {

class AutoEncoder : public Detector {
 public:
  struct Config {
    std::size_t hidden = 16;
    std::size_t bottleneck = 4;
    int epochs = 80;
    double learning_rate = 0.01;
    double threshold_quantile = 0.99;
    std::uint64_t seed = 53;
  };

  AutoEncoder() : AutoEncoder(Config{}) {}
  explicit AutoEncoder(Config config) : config_(config) {}

  const char* Name() const override { return "AE"; }
  /// Fits on rows with y == 0 only.
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  double ReconstructionError(const Vec& x) const;
  double Threshold() const { return threshold_; }

 private:
  struct Layer {
    Mat weights;
    Vec bias;
  };
  Vec Forward(const Layer& layer, const Vec& input, bool relu) const;
  Vec Reconstruct(const Vec& z) const;

  Config config_;
  Standardizer scaler_;
  Layer enc1_, enc2_, dec1_, dec2_;
  double threshold_ = 0.0;
};

}  // namespace bsml
