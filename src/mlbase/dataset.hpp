// Common interfaces for the Fig. 11 ML baselines.
//
// The paper compares its statistical engine's training/testing latency
// against seven literature approaches: Logistic Regression, Gradient
// Boosting, Random Forest, SVM, DNN, One-Class SVM, and AutoEncoder. These
// are from-scratch implementations sized like the cited works use them —
// the experiment measures latency orders of magnitude, not leaderboard
// accuracy (though every baseline must actually learn; the tests check it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace bsml {

using Vec = std::vector<double>;
using Mat = std::vector<Vec>;

/// Binary anomaly detector: label 0 = normal, 1 = anomalous.
class Detector {
 public:
  virtual ~Detector() = default;
  virtual const char* Name() const = 0;
  /// Train. Unsupervised detectors (OC-SVM, AutoEncoder) fit on the normal
  /// rows only and ignore the anomalous ones.
  virtual void Fit(const Mat& X, const std::vector<int>& y) = 0;
  virtual int Predict(const Vec& x) const = 0;
};

/// Fraction of correct predictions.
double Accuracy(const Detector& model, const Mat& X, const std::vector<int>& y);

/// Per-feature z-score standardization fitted on training data.
class Standardizer {
 public:
  void Fit(const Mat& X);
  Vec Transform(const Vec& x) const;
  Mat Transform(const Mat& X) const;

 private:
  Vec mean_;
  Vec stddev_;
};

/// Deterministic synthetic dataset resembling the detection feature space:
/// normal rows cluster around a traffic profile, anomalous rows shift the
/// rate/distribution coordinates. Used by tests and the Fig. 11 bench when a
/// simulated capture is not supplied.
struct LabeledData {
  Mat X;
  std::vector<int> y;
};
LabeledData MakeSyntheticTrafficData(std::size_t normals, std::size_t anomalies,
                                     std::size_t dims, std::uint64_t seed);

}  // namespace bsml
