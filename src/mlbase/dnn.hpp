// Small multi-layer perceptron (two ReLU hidden layers, sigmoid output)
// trained with mini-batch SGD and backpropagation.
#pragma once

#include "mlbase/dataset.hpp"

namespace bsml {

class Dnn : public Detector {
 public:
  struct Config {
    std::size_t hidden1 = 32;
    std::size_t hidden2 = 16;
    int epochs = 60;
    std::size_t batch_size = 32;
    double learning_rate = 0.01;
    std::uint64_t seed = 41;
  };

  Dnn() : Dnn(Config{}) {}
  explicit Dnn(Config config) : config_(config) {}

  const char* Name() const override { return "DNN"; }
  void Fit(const Mat& X, const std::vector<int>& y) override;
  int Predict(const Vec& x) const override;
  double PredictProba(const Vec& x) const;

 private:
  struct Layer {
    Mat weights;  // [out][in]
    Vec bias;
  };

  Vec Forward(const Layer& layer, const Vec& input, bool relu) const;

  Config config_;
  Standardizer scaler_;
  Layer l1_, l2_, l3_;
};

}  // namespace bsml
