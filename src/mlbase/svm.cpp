#include "mlbase/svm.hpp"

#include <cmath>

namespace bsml {

void LinearSvm::Fit(const Mat& X, const std::vector<int>& y) {
  if (X.empty()) return;
  scaler_.Fit(X);
  const Mat Z = scaler_.Transform(X);
  const std::size_t dims = Z[0].size();
  weights_.assign(dims, 0.0);
  bias_ = 0.0;
  bsutil::Rng rng(config_.seed);

  for (int t = 1; t <= config_.iterations; ++t) {
    const std::size_t i = static_cast<std::size_t>(rng.Below(Z.size()));
    const double label = y[i] == 1 ? 1.0 : -1.0;
    const double eta = 1.0 / (config_.lambda * static_cast<double>(t));

    double margin = bias_;
    for (std::size_t d = 0; d < dims; ++d) margin += weights_[d] * Z[i][d];
    margin *= label;

    for (std::size_t d = 0; d < dims; ++d) {
      weights_[d] *= (1.0 - eta * config_.lambda);
      if (margin < 1.0) weights_[d] += eta * label * Z[i][d];
    }
    if (margin < 1.0) bias_ += eta * label;
  }
}

double LinearSvm::Margin(const Vec& x) const {
  const Vec z = scaler_.Transform(x);
  double s = bias_;
  for (std::size_t d = 0; d < z.size() && d < weights_.size(); ++d) s += weights_[d] * z[d];
  return s;
}

int LinearSvm::Predict(const Vec& x) const { return Margin(x) >= 0.0 ? 1 : 0; }

}  // namespace bsml
