#include "mlbase/boosting.hpp"

#include <algorithm>
#include <cmath>

namespace bsml {

void GradientBoosting::Fit(const Mat& X, const std::vector<int>& y) {
  trees_.clear();
  if (X.empty()) return;
  bsutil::Rng rng(config_.seed);

  // Base score: log-odds of the positive class.
  double pos = 0.0;
  for (int label : y) pos += label;
  const double p = std::clamp(pos / static_cast<double>(y.size()), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(p / (1.0 - p));

  Vec scores(X.size(), base_score_);
  std::vector<std::size_t> all(X.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  for (int round = 0; round < config_.rounds; ++round) {
    // Negative gradient of logistic loss: residual y - sigmoid(score).
    Vec residuals(X.size());
    for (std::size_t i = 0; i < X.size(); ++i) {
      const double prob = 1.0 / (1.0 + std::exp(-scores[i]));
      residuals[i] = static_cast<double>(y[i]) - prob;
    }
    RegressionTree::Config tree_config;
    tree_config.max_depth = config_.max_depth;
    RegressionTree tree(tree_config);
    tree.Fit(X, residuals, all, rng);
    for (std::size_t i = 0; i < X.size(); ++i) {
      scores[i] += config_.learning_rate * tree.Predict(X[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoosting::Score(const Vec& x) const {
  double score = base_score_;
  for (const auto& tree : trees_) score += config_.learning_rate * tree.Predict(x);
  return score;
}

int GradientBoosting::Predict(const Vec& x) const { return Score(x) >= 0.0 ? 1 : 0; }

}  // namespace bsml
