#include "mlbase/dataset.hpp"

#include <cmath>

namespace bsml {

double Accuracy(const Detector& model, const Mat& X, const std::vector<int>& y) {
  if (X.empty() || X.size() != y.size()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (model.Predict(X[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(X.size());
}

void Standardizer::Fit(const Mat& X) {
  if (X.empty()) return;
  const std::size_t dims = X[0].size();
  mean_.assign(dims, 0.0);
  stddev_.assign(dims, 0.0);
  for (const Vec& row : X) {
    for (std::size_t d = 0; d < dims; ++d) mean_[d] += row[d];
  }
  for (double& m : mean_) m /= static_cast<double>(X.size());
  for (const Vec& row : X) {
    for (std::size_t d = 0; d < dims; ++d) {
      const double diff = row[d] - mean_[d];
      stddev_[d] += diff * diff;
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(X.size()));
    if (s < 1e-12) s = 1.0;  // constant feature: leave it centered
  }
}

Vec Standardizer::Transform(const Vec& x) const {
  Vec out(x.size());
  for (std::size_t d = 0; d < x.size() && d < mean_.size(); ++d) {
    out[d] = (x[d] - mean_[d]) / stddev_[d];
  }
  return out;
}

Mat Standardizer::Transform(const Mat& X) const {
  Mat out;
  out.reserve(X.size());
  for (const Vec& row : X) out.push_back(Transform(row));
  return out;
}

LabeledData MakeSyntheticTrafficData(std::size_t normals, std::size_t anomalies,
                                     std::size_t dims, std::uint64_t seed) {
  bsutil::Rng rng(seed);
  LabeledData data;
  data.X.reserve(normals + anomalies);
  data.y.reserve(normals + anomalies);
  // Normal rows: rate features near 320/min and 1/min, distribution shares
  // around a fixed profile with sampling noise.
  for (std::size_t i = 0; i < normals; ++i) {
    Vec row(dims);
    row[0] = rng.Normal(320.0, 25.0);  // message rate
    if (dims > 1) row[1] = std::max(0.0, rng.Normal(0.8, 0.5));  // reconnect rate
    for (std::size_t d = 2; d < dims; ++d) {
      row[d] = std::max(0.0, rng.Normal(1.0 / static_cast<double>(dims), 0.01));
    }
    data.X.push_back(std::move(row));
    data.y.push_back(0);
  }
  // Anomalous rows: flooded rate or elevated churn, skewed distribution.
  for (std::size_t i = 0; i < anomalies; ++i) {
    Vec row(dims);
    const bool flood = rng.Chance(0.5);
    row[0] = flood ? rng.Normal(15000.0, 2000.0) : rng.Normal(330.0, 25.0);
    if (dims > 1) row[1] = flood ? rng.Normal(0.8, 0.5) : rng.Normal(5.3, 1.0);
    for (std::size_t d = 2; d < dims; ++d) {
      const double base = (d == 2 && flood) ? 0.9 : 0.1 / static_cast<double>(dims);
      row[d] = std::max(0.0, rng.Normal(base, 0.01));
    }
    data.X.push_back(std::move(row));
    data.y.push_back(1);
  }
  return data;
}

}  // namespace bsml
