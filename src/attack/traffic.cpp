#include "attack/traffic.hpp"

namespace bsattack {

std::vector<TrafficMixEntry> DefaultTrafficMix() {
  using Kind = TrafficMixEntry::Kind;
  // Per-minute rates; the sum of direct sends ≈306, plus block-relay and
  // churn side traffic, lands the target's arrival rate around 320/min.
  return {
      {Kind::kTx, 145.0},      {Kind::kInv, 78.0},        {Kind::kGetData, 25.0},
      {Kind::kAddr, 15.0},     {Kind::kHeaders, 12.0},    {Kind::kGetHeaders, 10.0},
      {Kind::kPing, 8.0},      {Kind::kPong, 8.0},        {Kind::kFeeFilter, 1.0},
      {Kind::kSendHeaders, 1.0}, {Kind::kSendCmpct, 1.0}, {Kind::kNotFound, 1.0},
      {Kind::kGetAddr, 1.0},   {Kind::kMineBlock, 1.2},   {Kind::kChurn, 0.5},
  };
}

MainnetTrafficGenerator::MainnetTrafficGenerator(bsim::Scheduler& sched,
                                                 std::vector<bsnet::Node*> peers,
                                                 bsnet::Node& target, TrafficConfig config)
    : sched_(sched),
      peers_(std::move(peers)),
      target_(target),
      config_(std::move(config)),
      rng_(config_.seed),
      crafter_(target.Config().chain, config_.seed ^ 0xabcd) {}

void MainnetTrafficGenerator::Start() {
  running_ = true;
  for (std::size_t i = 0; i < config_.mix.size(); ++i) ScheduleEntry(i);
}

void MainnetTrafficGenerator::ScheduleEntry(std::size_t index) {
  if (!running_) return;
  const TrafficMixEntry& entry = config_.mix[index];
  const double rate = entry.per_minute * config_.scale;
  if (rate <= 0.0) return;
  const double mean_gap_sec = 60.0 / rate;
  sched_.After(bsim::FromSeconds(rng_.Exponential(mean_gap_sec)), [this, index]() {
    if (!running_) return;
    FireEntry(config_.mix[index]);
    ++events_;
    ScheduleEntry(index);
  });
}

bsnet::Node* MainnetTrafficGenerator::RandomPeer() {
  if (peers_.empty()) return nullptr;
  return peers_[rng_.Below(peers_.size())];
}

bsnet::Node* MainnetTrafficGenerator::RandomConnectedPeer() {
  const std::uint32_t target_ip = target_.Ip();
  for (std::size_t attempt = 0; attempt < 4 * peers_.size() + 1; ++attempt) {
    bsnet::Node* peer = RandomPeer();
    if (peer == nullptr) return nullptr;
    for (const bsnet::Peer* p : peer->Peers()) {
      if (p->remote.ip == target_ip && p->HandshakeComplete()) return peer;
    }
  }
  return nullptr;
}

void MainnetTrafficGenerator::FireEntry(const TrafficMixEntry& entry) {
  using Kind = TrafficMixEntry::Kind;
  bsnet::Node* peer = RandomConnectedPeer();
  if (peer == nullptr) return;
  const std::uint32_t target_ip = target_.Ip();

  switch (entry.kind) {
    case Kind::kTx: {
      const bsproto::TxMsg tx = crafter_.ValidTx();
      // The rest of the simulated Mainnet already knows this transaction:
      // seed every peer's mempool so the target's own INV relay does not
      // trigger a fetch cascade back at itself (on the real network peers
      // hear transactions from many sources).
      for (bsnet::Node* other : peers_) other->Pool().AcceptTransaction(tx.tx);
      recent_txids_.push_back(tx.tx.Txid());
      if (recent_txids_.size() > 1000) {
        recent_txids_.erase(recent_txids_.begin(), recent_txids_.begin() + 500);
      }
      peer->SendToRemoteIp(target_ip, tx);
      break;
    }
    case Kind::kInv: {
      // Duplicate announcement of a transaction the target already has —
      // the dominant INV pattern a well-connected node sees.
      if (recent_txids_.empty()) break;
      bsproto::InvMsg inv;
      inv.inventory.push_back(
          {bsproto::InvType::kTx, recent_txids_[rng_.Below(recent_txids_.size())]});
      peer->SendToRemoteIp(target_ip, inv);
      break;
    }
    case Kind::kGetData: {
      bsproto::GetDataMsg gd;
      gd.inventory.push_back({bsproto::InvType::kBlock, peer->Chain().TipHash()});
      peer->SendToRemoteIp(target_ip, gd);
      break;
    }
    case Kind::kAddr: {
      bsproto::AddrMsg addr;
      // Gossip real pool members so the target's address table stays usable.
      const std::size_t count = 1 + rng_.Below(3);
      for (std::size_t i = 0; i < count; ++i) {
        bsnet::Node* other = RandomPeer();
        bsproto::TimedNetAddr rec;
        rec.time = static_cast<std::uint32_t>(sched_.Now() / bsim::kSecond);
        rec.addr.services = bsproto::kNodeNetwork;
        rec.addr.endpoint =
            bsproto::Endpoint{other->Ip(), other->Config().listen_port};
        addr.addresses.push_back(rec);
      }
      peer->SendToRemoteIp(target_ip, addr);
      break;
    }
    case Kind::kHeaders: {
      bsproto::HeadersMsg headers;
      headers.headers = peer->Chain().HeadersAfter(bscrypto::Hash256{}, 8);
      if (!headers.headers.empty()) peer->SendToRemoteIp(target_ip, headers);
      break;
    }
    case Kind::kGetHeaders: {
      bsproto::GetHeadersMsg gh;
      gh.locator.push_back(peer->Chain().TipHash());
      peer->SendToRemoteIp(target_ip, gh);
      break;
    }
    case Kind::kPing:
      peer->SendToRemoteIp(target_ip, bsproto::PingMsg{nonce_++});
      break;
    case Kind::kPong:
      peer->SendToRemoteIp(target_ip, bsproto::PongMsg{nonce_++});
      break;
    case Kind::kFeeFilter:
      peer->SendToRemoteIp(target_ip, bsproto::FeeFilterMsg{1000});
      break;
    case Kind::kSendHeaders:
      peer->SendToRemoteIp(target_ip, bsproto::SendHeadersMsg{});
      break;
    case Kind::kSendCmpct:
      peer->SendToRemoteIp(target_ip, bsproto::SendCmpctMsg{false, 1});
      break;
    case Kind::kNotFound: {
      bsproto::NotFoundMsg nf;
      bscrypto::Hash256 h;
      for (int i = 0; i < 32; ++i) h.Data()[i] = static_cast<std::uint8_t>(rng_.Next());
      nf.inventory.push_back({bsproto::InvType::kTx, h});
      peer->SendToRemoteIp(target_ip, nf);
      break;
    }
    case Kind::kGetAddr:
      peer->SendToRemoteIp(target_ip, bsproto::GetAddrMsg{});
      break;
    case Kind::kMineBlock: {
      const auto block = peer->MineAndRelay();
      // The wider Mainnet learns the block out-of-band; pre-seeding the
      // other peers prevents fetch cascades through the target.
      if (block) {
        for (bsnet::Node* other : peers_) {
          if (other != peer) other->Chain().AcceptBlock(*block);
        }
      }
      break;
    }
    case Kind::kChurn: {
      // A remote peer drops its session with the target; if it was one of
      // the target's outbound slots, the target reconnects (feature-c
      // baseline churn).
      for (const bsnet::Peer* p : peer->Peers()) {
        if (p->remote.ip == target_ip) {
          peer->DisconnectPeer(p->id);
          break;
        }
      }
      break;
    }
  }
}

}  // namespace bsattack
