#include "attack/attacker.hpp"

namespace bsattack {

AttackerNode::AttackerNode(bsim::Scheduler& sched, bsim::Network& net, std::uint32_t ip,
                           std::uint32_t magic)
    : bsim::Host(sched, net, ip), magic_(magic) {}

AttackSession* AttackerNode::OpenSession(const Endpoint& target, bool auto_handshake,
                                         std::uint16_t local_port) {
  auto session = std::make_unique<AttackSession>();
  AttackSession* raw = session.get();
  raw->id = next_session_id_++;
  raw->target = target;
  raw->auto_handshake = auto_handshake;
  raw->opened_at = Sched().Now();
  sessions_.push_back(std::move(session));
  ++sessions_opened_;

  if (local_port == 0) local_port = AllocEphemeralPort();
  raw->local = Endpoint{Ip(), local_port};

  bsim::TcpConnection* conn = ConnectFrom(local_port, target, nullptr);
  if (conn == nullptr) {
    raw->closed = true;
    return raw;
  }
  raw->conn = conn;

  conn->on_connected = [this, raw, auto_handshake](bool ok) {
    if (!ok) {
      raw->closed = true;
      raw->closed_at = Sched().Now();
      if (raw->on_closed) raw->on_closed(*raw);
      return;
    }
    raw->tcp_established = true;
    if (raw->on_tcp_established) raw->on_tcp_established(*raw);
    if (auto_handshake) Send(*raw, bsproto::VersionMsg{});
  };
  conn->SetDataSink([this, raw](bsutil::ByteSpan data) { HandleSessionData(*raw, data); });
  conn->on_closed = [this, raw]() {
    if (raw->closed) return;
    raw->closed = true;
    raw->conn = nullptr;
    raw->closed_at = Sched().Now();
    ++sessions_closed_;
    if (raw->on_closed) raw->on_closed(*raw);
  };
  return raw;
}

void AttackerNode::HandleSessionData(AttackSession& session, bsutil::ByteSpan data) {
  session.rx_buffer.insert(session.rx_buffer.end(), data.begin(), data.end());
  std::size_t offset = 0;
  while (true) {
    const bsutil::ByteSpan rest(session.rx_buffer.data() + offset,
                                session.rx_buffer.size() - offset);
    const bsproto::DecodeResult frame = bsproto::DecodeMessage(magic_, rest);
    if (frame.consumed == 0) break;
    offset += frame.consumed;
    if (frame.status != bsproto::DecodeStatus::kOk) continue;

    if (session.on_message) session.on_message(session, frame.message);
    const bool was_ready = session.SessionReady();
    switch (bsproto::MsgTypeOf(frame.message)) {
      case bsproto::MsgType::kVersion:
        session.got_version = true;
        // Complete the version handshake from our side — but only in auto
        // mode; raw sessions control every byte themselves.
        if (session.auto_handshake) Send(session, bsproto::VerackMsg{});
        break;
      case bsproto::MsgType::kVerack:
        session.got_verack = true;
        break;
      case bsproto::MsgType::kPing:
        // Stay alive: answer keepalives so long-running floods are not
        // timed out by the target.
        Send(session, bsproto::PongMsg{std::get<bsproto::PingMsg>(frame.message).nonce});
        break;
      default:
        break;  // the attacker ignores everything else
    }
    if (!was_ready && session.SessionReady() && session.on_ready) {
      session.on_ready(session);
    }
    if (session.closed) break;
  }
  session.rx_buffer.erase(session.rx_buffer.begin(),
                          session.rx_buffer.begin() + static_cast<std::ptrdiff_t>(offset));
}

void AttackerNode::Send(AttackSession& session, const bsproto::Message& msg) {
  SendRawFrame(session, bsproto::EncodeMessage(magic_, msg));
}

void AttackerNode::SendRawFrame(AttackSession& session, bsutil::ByteSpan frame) {
  if (session.closed || session.conn == nullptr || !session.conn->IsEstablished()) return;
  if (tracer_ != nullptr) {
    // bytes_sent is exactly the app-stream offset of this frame: every byte
    // on the session goes through here. Raw frames may be deliberately
    // bogus, so label with a header-only peek (no checksum).
    const bsobs::TraceContext ctx = tracer_->Begin();
    tracer_->NoteFrameSent(
        bsobs::SpanStreamKey{
            bsobs::PackEndpoint(session.local.ip, session.local.port),
            bsobs::PackEndpoint(session.target.ip, session.target.port)},
        session.bytes_sent, static_cast<std::uint32_t>(frame.size()), ctx);
    bsproto::FramePeek peek;
    const bool peeked = bsproto::PeekFrame(magic_, frame, peek);
    bsobs::SpanRecord rec;
    rec.time = Sched().Now();
    rec.trace_id = ctx.trace_id;
    rec.span_id = ctx.span_id;
    rec.kind = bsobs::SpanKind::kSend;
    rec.msg_type = peeked ? static_cast<std::int16_t>(peek.msg_type) : -1;
    rec.node_ip = Ip();
    rec.peer_id = session.id;
    rec.a = static_cast<std::int64_t>(frame.size());
    tracer_->Log().Record(rec);
  }
  session.conn->Send(frame);
  ++session.messages_sent;
  session.bytes_sent += frame.size();
  ++total_sent_;
}

void AttackerNode::CloseSession(AttackSession& session) {
  if (session.closed || session.conn == nullptr) return;
  session.closed = true;
  session.closed_at = Sched().Now();
  bsim::TcpConnection* conn = session.conn;
  session.conn = nullptr;
  conn->on_closed = nullptr;
  conn->Reset();
}

std::vector<AttackSession*> AttackerNode::LiveSessions() {
  std::vector<AttackSession*> out;
  for (const auto& s : sessions_) {
    if (!s->closed) out.push_back(s.get());
  }
  return out;
}

}  // namespace bsattack
