// Bitcoin-Message-based DoS (BM-DoS) flooder — §III of the paper.
//
// Supported payloads map to the three ineffectiveness vectors:
//   kPing          — a message type with no ban-score rule (vector 1);
//   kUnknownCommand— a command outside the 26-type catalogue (vector 1);
//   kBogusBlock    — a "block" frame with garbage payload and a wrong
//                    checksum: maximum victim cost, zero ban risk (vector 2);
//   kInvalidPowBlock — a parseable block failing PoW: punished with 100, so
//                    it only works together with Sybil reconnection (vector 3).
//
// The flood rate is clamped to the attacker process's pipeline ceiling
// (kBmDosPipelineCapMsgsPerSec): the paper found one python process cannot
// exceed ~1e3 msg/s no matter how many Sybil sockets it runs, so Sybil
// threads share the budget round-robin.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "core/costmodel.hpp"

namespace bsattack {

struct BmDosConfig {
  enum class Payload { kPing, kBogusBlock, kUnknownCommand, kInvalidPowBlock };
  Payload payload = Payload::kPing;
  double rate_msgs_per_sec = bsnet::kBmDosPipelineCapMsgsPerSec;  // "no delay"
  int sybil_connections = 1;
  std::size_t bogus_payload_bytes = 60'000;
};

class BmDosAttack {
 public:
  BmDosAttack(AttackerNode& attacker, Endpoint target, Crafter& crafter,
              BmDosConfig config);

  /// Open the Sybil sessions and start flooding as each becomes usable.
  void Start();
  void Stop();

  /// Rate after the pipeline clamp.
  double EffectiveRate() const { return effective_rate_; }
  std::uint64_t MessagesSent() const { return messages_sent_; }
  std::uint64_t BytesSent() const { return bytes_sent_; }
  int ReadySessions() const;

 private:
  void OpenSessions();
  void FloodTick();
  void SendOne(AttackSession& session);

  AttackerNode& attacker_;
  Endpoint target_;
  Crafter& crafter_;
  BmDosConfig config_;
  double effective_rate_;
  bsim::SimTime send_interval_;
  bool running_ = false;
  std::vector<AttackSession*> sessions_;
  std::size_t next_session_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  bsutil::ByteVec cached_bogus_frame_;
  bsutil::ByteVec cached_unknown_frame_;
  std::uint64_t ping_nonce_ = 1;
};

}  // namespace bsattack
