// Serial Sybil attack (§III-B vector 3, measured in Fig. 8): the attacker
// loops over fresh [IP:Port] identifiers; each identifier floods misbehaving
// messages until the target bans it, then the next identifier connects.
//
// The default misbehaving message is a duplicate VERSION (+1 per message,
// banned after `threshold` duplicates), matching the paper's Fig. 8 setup.
// The per-message spacing is the attacker pipeline interval plus an optional
// extra delay (the paper compares no-delay vs 1 ms delay), and each new
// socket costs the observed ~0.2 s setup latency.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/attacker.hpp"
#include "core/costmodel.hpp"

namespace bsattack {

struct SerialSybilConfig {
  bsim::SimTime extra_message_delay = 0;  // 0 == "as fast as possible"
  bsim::SimTime socket_setup_latency = 200 * bsim::kMillisecond;  // §VI-D
  int max_identifiers = 100;  // stop after this many identifiers got banned
  /// The misbehaving payload sent each tick; defaults to VERSION.
  bsproto::Message payload = bsproto::VersionMsg{};
};

struct SybilIdentifierRecord {
  Endpoint identifier;
  bsim::SimTime flood_started;
  bsim::SimTime banned_at;     // 0 while still alive
  std::uint64_t messages_sent = 0;

  double TimeToBanSeconds() const {
    return banned_at == 0 ? 0.0 : bsim::ToSeconds(banned_at - flood_started);
  }
};

class SerialSybilAttack {
 public:
  SerialSybilAttack(AttackerNode& attacker, Endpoint target, SerialSybilConfig config);

  void Start();
  void Stop();
  bool Finished() const { return finished_; }

  const std::vector<SybilIdentifierRecord>& Records() const { return records_; }
  /// Mean time-to-ban across banned identifiers (seconds).
  double MeanTimeToBan() const;
  int IdentifiersBanned() const;

 private:
  void NextIdentifier();
  void SendTick(AttackSession* session, std::size_t record_index);

  AttackerNode& attacker_;
  Endpoint target_;
  SerialSybilConfig config_;
  bsim::SimTime message_interval_;
  bool running_ = false;
  bool finished_ = false;
  std::vector<SybilIdentifierRecord> records_;
};

}  // namespace bsattack
