// Network-layer ICMP ping flood (the hping analogue of §VI-C / Table III).
// Packets are delivered in per-tick batches; the victim's kernel-layer cost
// model is rate-based, so batching is semantically equivalent and keeps
// 1e6 pkt/s simulations cheap.
#pragma once

#include <cstdint>

#include "sim/tcp.hpp"

namespace bsattack {

struct IcmpFloodConfig {
  double rate_pkts_per_sec = 1'000.0;
  std::size_t packet_size = 64;  // hping default payload
  bsim::SimTime tick = 10 * bsim::kMillisecond;
};

class IcmpFlooder {
 public:
  IcmpFlooder(bsim::Host& attacker, std::uint32_t target_ip, IcmpFloodConfig config)
      : attacker_(attacker), target_ip_(target_ip), config_(config) {}

  void Start();
  void Stop() { running_ = false; }

  std::uint64_t PacketsSent() const { return packets_sent_; }

 private:
  void Tick();

  bsim::Host& attacker_;
  std::uint32_t target_ip_;
  IcmpFloodConfig config_;
  bool running_ = false;
  double carry_ = 0.0;  // fractional packets carried across ticks
  std::uint64_t packets_sent_ = 0;
};

}  // namespace bsattack
