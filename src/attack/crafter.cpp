#include "attack/crafter.hpp"

namespace bsattack {

using bsproto::Endpoint;

bschain::Block Crafter::MineOn(const bscrypto::Hash256& prev) {
  bschain::Block tmpl = bschain::BuildBlockTemplate(
      prev, 1'600'000'100, {}, params_, extra_nonce_++);
  auto mined = bschain::MineBlock(std::move(tmpl), params_, 10'000'000);
  // Regtest difficulty: success is all but guaranteed within the budget.
  return *mined;
}

bsproto::BlockMsg Crafter::ValidBlock(const bscrypto::Hash256& prev) {
  return bsproto::BlockMsg{MineOn(prev)};
}

bsproto::BlockMsg Crafter::MutatedBlock(const bscrypto::Hash256& prev) {
  bschain::Block block = MineOn(prev);
  // Swap in a transaction the merkle root does not commit to, then re-grind
  // the PoW so only the mutation check can reject it.
  bschain::Transaction extra;
  extra.inputs.push_back({});
  extra.inputs[0].prevout.txid = bscrypto::Hash256::FromHex(
      "00000000000000000000000000000000000000000000000000000000000000aa");
  extra.inputs[0].prevout.index = 0;
  extra.inputs[0].script_sig = bsutil::ToBytes("mutation");
  extra.outputs.push_back({1000, bsutil::ToBytes("out")});
  block.txs.push_back(extra);
  // Keep header.merkle_root stale (mismatch == mutated) but fix the PoW.
  block.header.nonce = 0;
  while (!bschain::CheckProofOfWork(block.Hash(), block.header.bits, params_)) {
    ++block.header.nonce;
  }
  return bsproto::BlockMsg{block};
}

bsproto::BlockMsg Crafter::PrevMissingBlock() {
  bscrypto::Hash256 unknown_parent;
  // A parent hash nobody has: random bytes with the top byte zeroed so it
  // could plausibly be a PoW hash.
  for (int i = 0; i < 31; ++i) unknown_parent.Data()[i] = static_cast<std::uint8_t>(rng_.Next());
  unknown_parent.Data()[31] = 0;
  return bsproto::BlockMsg{MineOn(unknown_parent)};
}

bsproto::BlockMsg Crafter::ChildOf(const bscrypto::Hash256& prev) {
  return bsproto::BlockMsg{MineOn(prev)};
}

bsproto::BlockMsg Crafter::InvalidPowBlock(const bscrypto::Hash256& prev) {
  bschain::Block tmpl = bschain::BuildBlockTemplate(
      prev, 1'600'000'100, {}, params_, extra_nonce_++);
  // Demand an absurdly small target: no nonce can satisfy it, and any hash
  // fails CheckProofOfWork immediately.
  tmpl.header.bits = 0x03000001;
  return bsproto::BlockMsg{tmpl};
}

bsproto::TxMsg Crafter::SegwitInvalidTx() {
  bschain::Transaction tx;
  tx.inputs.push_back({});
  tx.inputs[0].prevout.txid = bscrypto::Hash256::FromHex(
      "00000000000000000000000000000000000000000000000000000000000000bb");
  tx.inputs[0].prevout.index = static_cast<std::uint32_t>(rng_.Below(1000));
  tx.inputs[0].script_sig = bsutil::ToBytes("sig");
  tx.outputs.push_back({5000, bsutil::ToBytes("out")});
  tx.witness.push_back({0x00});  // the failing witness-program marker
  return bsproto::TxMsg{tx};
}

bsproto::TxMsg Crafter::ValidTx() {
  bschain::Transaction tx;
  tx.inputs.push_back({});
  bscrypto::Hash256 prev;
  for (int i = 0; i < 32; ++i) prev.Data()[i] = static_cast<std::uint8_t>(rng_.Next());
  tx.inputs[0].prevout.txid = prev;
  tx.inputs[0].prevout.index = 0;
  tx.inputs[0].script_sig = bsutil::ToBytes("sig");
  tx.outputs.push_back({static_cast<std::int64_t>(rng_.Range(1000, 100000)),
                        bsutil::ToBytes("out")});
  return bsproto::TxMsg{tx};
}

bsproto::AddrMsg Crafter::OversizeAddr() {
  bsproto::AddrMsg msg;
  msg.addresses.resize(bsproto::kMaxAddrToSend + 1);
  for (std::size_t i = 0; i < msg.addresses.size(); ++i) {
    msg.addresses[i].time = 1'600'000'000;
    msg.addresses[i].addr.endpoint =
        Endpoint{static_cast<std::uint32_t>(0x0a000000 + i), 8333};
  }
  return msg;
}

bsproto::InvMsg Crafter::OversizeInv() {
  bsproto::InvMsg msg;
  msg.inventory.resize(bsproto::kMaxInvEntries + 1);
  for (auto& item : msg.inventory) item.type = bsproto::InvType::kTx;
  return msg;
}

bsproto::GetDataMsg Crafter::OversizeGetData() {
  bsproto::GetDataMsg msg;
  msg.inventory.resize(bsproto::kMaxInvEntries + 1);
  for (auto& item : msg.inventory) item.type = bsproto::InvType::kTx;
  return msg;
}

bsproto::HeadersMsg Crafter::OversizeHeaders() {
  bsproto::HeadersMsg msg;
  msg.headers.resize(bsproto::kMaxHeadersResults + 1);
  return msg;
}

bsproto::FilterLoadMsg Crafter::OversizeFilterLoad() {
  bsproto::FilterLoadMsg msg;
  msg.filter.assign(bsproto::kMaxBloomFilterSize + 1, 0xff);
  msg.n_hash_funcs = 10;
  return msg;
}

bsproto::FilterAddMsg Crafter::OversizeFilterAdd() {
  bsproto::FilterAddMsg msg;
  msg.data.assign(bsproto::kMaxScriptElementSize + 1, 0xab);
  return msg;
}

bsproto::HeadersMsg Crafter::NonContinuousHeaders() {
  bsproto::HeadersMsg msg;
  bschain::BlockHeader a;
  a.prev = params_.GenesisBlock().Hash();
  a.bits = params_.target_bits;
  a.time = 1'600'000'200;
  bschain::BlockHeader b;
  // b deliberately does NOT chain onto a.
  b.prev = bscrypto::Hash256::FromHex(
      "00000000000000000000000000000000000000000000000000000000000000cc");
  b.bits = params_.target_bits;
  b.time = 1'600'000'201;
  msg.headers = {a, b};
  return msg;
}

bsproto::HeadersMsg Crafter::NonConnectingHeaders() {
  bsproto::HeadersMsg msg;
  bschain::BlockHeader h;
  bscrypto::Hash256 unknown;
  for (int i = 0; i < 31; ++i) unknown.Data()[i] = static_cast<std::uint8_t>(rng_.Next());
  h.prev = unknown;
  h.bits = params_.target_bits;
  h.time = 1'600'000'300;
  // Keep the header's own PoW valid so only the connectivity check fires.
  while (!bschain::CheckProofOfWork(h.Hash(), h.bits, params_)) ++h.nonce;
  msg.headers = {h};
  return msg;
}

bsproto::CmpctBlockMsg Crafter::InvalidCompactBlock(const bscrypto::Hash256& prev) {
  bschain::Block block = MineOn(prev);
  bsproto::CmpctBlockMsg msg = bsproto::BuildCompactBlock(block, rng_.Next());
  // Duplicate short ids make the block unfillable: "invalid compact block
  // data". Add two identical ids so the structural check trips.
  msg.short_ids.push_back(0x123456);
  msg.short_ids.push_back(0x123456);
  return msg;
}

bsproto::GetBlockTxnMsg Crafter::OutOfBoundsGetBlockTxn(
    const bscrypto::Hash256& block_hash, std::size_t tx_count) {
  bsproto::GetBlockTxnMsg msg;
  msg.block_hash = block_hash;
  msg.indexes.push_back(tx_count + 100);  // beyond the block's transactions
  return msg;
}

bsutil::ByteVec Crafter::BogusBlockFrame(std::uint32_t magic, std::size_t payload_size) {
  bsutil::ByteVec payload(payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.Next());
  // Force a checksum that cannot match the payload.
  std::array<std::uint8_t, 4> wrong = bsproto::PayloadChecksum(payload);
  wrong[0] ^= 0xff;
  return bsproto::EncodeRaw(magic, "block", payload, &wrong);
}

bsutil::ByteVec Crafter::UnknownCommandFrame(std::uint32_t magic, std::size_t payload_size) {
  bsutil::ByteVec payload(payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.Next());
  return bsproto::EncodeRaw(magic, "bogus", payload);
}

}  // namespace bsattack
