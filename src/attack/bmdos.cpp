#include "attack/bmdos.hpp"

#include <algorithm>

namespace bsattack {

BmDosAttack::BmDosAttack(AttackerNode& attacker, Endpoint target, Crafter& crafter,
                         BmDosConfig config)
    : attacker_(attacker), target_(target), crafter_(crafter), config_(config) {
  effective_rate_ =
      std::min(config_.rate_msgs_per_sec, bsnet::kBmDosPipelineCapMsgsPerSec);
  send_interval_ = bsim::FromSeconds(1.0 / effective_rate_);
  // Bogus frames are crafted once and replayed — that is why Table II's
  // attacker cost for BLOCK is tiny (23 clocks: a buffer copy).
  cached_bogus_frame_ =
      crafter_.BogusBlockFrame(attacker_.Magic(), config_.bogus_payload_bytes);
  cached_unknown_frame_ = crafter_.UnknownCommandFrame(attacker_.Magic(), 32);
}

void BmDosAttack::Start() {
  running_ = true;
  OpenSessions();
  attacker_.Sched().After(send_interval_, [this]() { FloodTick(); });
}

void BmDosAttack::Stop() { running_ = false; }

void BmDosAttack::OpenSessions() {
  for (int i = 0; i < config_.sybil_connections; ++i) {
    AttackSession* session = attacker_.OpenSession(target_, /*auto_handshake=*/true);
    sessions_.push_back(session);
  }
}

int BmDosAttack::ReadySessions() const {
  int n = 0;
  for (const AttackSession* s : sessions_) {
    if (!s->closed && s->SessionReady()) ++n;
  }
  return n;
}

void BmDosAttack::FloodTick() {
  if (!running_) return;
  // Round-robin one message per tick across usable sessions: the shared
  // pipeline budget of a single attacker process.
  for (std::size_t probe = 0; probe < sessions_.size(); ++probe) {
    AttackSession& session = *sessions_[next_session_];
    next_session_ = (next_session_ + 1) % sessions_.size();
    const bool usable =
        !session.closed &&
        (session.SessionReady() ||
         config_.payload == BmDosConfig::Payload::kBogusBlock ||
         config_.payload == BmDosConfig::Payload::kUnknownCommand);
    if (usable) {
      SendOne(session);
      break;
    }
  }
  attacker_.Sched().After(send_interval_, [this]() { FloodTick(); });
}

void BmDosAttack::SendOne(AttackSession& session) {
  switch (config_.payload) {
    case BmDosConfig::Payload::kPing:
      attacker_.Send(session, bsproto::PingMsg{ping_nonce_++});
      bytes_sent_ += 8 + bsproto::kHeaderSize;
      break;
    case BmDosConfig::Payload::kBogusBlock:
      attacker_.SendRawFrame(session, cached_bogus_frame_);
      bytes_sent_ += cached_bogus_frame_.size();
      break;
    case BmDosConfig::Payload::kUnknownCommand:
      attacker_.SendRawFrame(session, cached_unknown_frame_);
      bytes_sent_ += cached_unknown_frame_.size();
      break;
    case BmDosConfig::Payload::kInvalidPowBlock: {
      const auto msg = crafter_.InvalidPowBlock(crafter_.Params().GenesisBlock().Hash());
      attacker_.Send(session, msg);
      break;
    }
  }
  ++messages_sent_;
}

}  // namespace bsattack
