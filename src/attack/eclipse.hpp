// Eclipse attack (§II motivation): monopolize the victim's view of the
// network. The paper notes the ban-score framework "was informed for
// responding to other potential attacks, e.g., Eclipse" — this module shows
// the composition that defeats it anyway:
//
//   1. occupy the victim's inbound slots with Sybil sessions (no rule
//      limits connections per IP);
//   2. poison the victim's address table by gossiping attacker-controlled
//      addresses — ADDR messages of <=1000 entries carry no ban score;
//   3. evict the victim's honest outbound peers via post-connection
//      Defamation, so the refill draws from the poisoned table into
//      attacker infrastructure.
//
// The "attacker infrastructure" is a set of real nodes on attacker IPs
// (full protocol speakers), so the victim's replacement connections look
// perfectly healthy.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "attack/defamation.hpp"
#include "core/node.hpp"

namespace bsattack {

struct EclipseConfig {
  int inbound_sessions = 16;    // Sybil sessions occupying inbound slots
  int addr_gossip_rounds = 10;  // poisoning ADDR messages to send
  std::size_t addrs_per_message = 500;  // stays under the 1000-entry rule
  bool defame_outbound = true;  // evict honest outbound peers
  bsim::SimTime defame_interval = 5 * bsim::kSecond;
  /// Re-send the poisoning gossip every interval (0 = the legacy one-shot
  /// burst). A sustained attacker keeps the table saturated against
  /// terrible-address expiry and honest gossip.
  bsim::SimTime repoison_interval = 0;
  /// Re-open dropped Sybil inbound sessions each defame tick (off = the
  /// legacy fire-and-forget occupation), so eviction-based defenses are
  /// fought instead of conceded.
  bool reoccupy_inbound = false;
};

class EclipseAttack {
 public:
  /// `infrastructure` are attacker-controlled nodes (their listen endpoints
  /// are what the poisoning advertises). The victim pointer is used only to
  /// observe outbound peers the way a sniffing attacker would (4-tuples).
  EclipseAttack(AttackerNode& attacker, bsnet::Node& victim,
                std::vector<bsnet::Node*> infrastructure, EclipseConfig config);

  void Start();
  void Stop() { running_ = false; }

  /// Fraction of the victim's current connections (both directions) that
  /// terminate at attacker-controlled IPs.
  double ControlFraction() const;
  /// True when every connection of the victim is attacker-controlled.
  bool FullyEclipsed() const;

  int InboundSessionsHeld() const;
  std::uint64_t AddrEntriesGossiped() const { return addr_entries_sent_; }
  int OutboundPeersDefamed() const { return defamed_; }

 private:
  void OccupyInboundSlots();
  void PoisonAddrTable();
  void DefamationTick();
  bool IsAttackerIp(std::uint32_t ip) const;

  AttackerNode& attacker_;
  bsnet::Node& victim_;
  std::vector<bsnet::Node*> infrastructure_;
  EclipseConfig config_;
  Crafter crafter_;
  bool running_ = false;
  std::vector<AttackSession*> inbound_sessions_;
  std::vector<std::unique_ptr<PostConnectionDefamation>> defamations_;
  std::unordered_set<std::uint32_t> attacker_ips_;
  std::uint64_t addr_entries_sent_ = 0;
  int defamed_ = 0;
};

}  // namespace bsattack
