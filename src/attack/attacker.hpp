// The attacker node: not a full Bitcoin node — the analogue of the paper's
// python-bitcoinlib attacker. It can open Bitcoin sessions (TCP + version
// handshake) to a target, hold many Sybil sessions at once, and transmit
// well-formed or raw/bogus frames.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/span.hpp"
#include "proto/codec.hpp"
#include "proto/messages.hpp"
#include "sim/tcp.hpp"

namespace bsattack {

using bsproto::Endpoint;

/// One Sybil session from the attacker to a target.
struct AttackSession {
  std::uint64_t id = 0;
  bsim::TcpConnection* conn = nullptr;
  Endpoint local;  // the Sybil identifier [IP:Port] this session uses
  Endpoint target;

  bool tcp_established = false;
  bool auto_handshake = true;  // reply VERACK to the target's VERSION
  bool got_version = false;   // target's VERSION reply seen
  bool got_verack = false;    // target's VERACK seen
  bool closed = false;        // reset by the target (e.g. banned)

  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  bsim::SimTime opened_at = 0;
  bsim::SimTime closed_at = 0;
  bsutil::ByteVec rx_buffer;

  /// Fired when the TCP connection is up (before the Bitcoin handshake).
  std::function<void(AttackSession&)> on_tcp_established;
  /// Fired for every well-formed message the target sends us.
  std::function<void(AttackSession&, const bsproto::Message&)> on_message;
  /// Fired when the Bitcoin version handshake completes (auto mode only).
  std::function<void(AttackSession&)> on_ready;
  /// Fired when the target drops the connection.
  std::function<void(AttackSession&)> on_closed;

  bool SessionReady() const { return got_version && got_verack; }
};

class AttackerNode : public bsim::Host {
 public:
  AttackerNode(bsim::Scheduler& sched, bsim::Network& net, std::uint32_t ip,
               std::uint32_t magic);

  /// Open a session to `target`. `auto_handshake` sends VERSION on connect
  /// and VERACK on the target's VERSION, so `on_ready` fires when the
  /// Bitcoin session is usable. `local_port` 0 picks the next ephemeral
  /// (Sybil) port.
  AttackSession* OpenSession(const Endpoint& target, bool auto_handshake = true,
                             std::uint16_t local_port = 0);

  /// Send a well-formed protocol message on a session.
  void Send(AttackSession& session, const bsproto::Message& msg);
  /// Send arbitrary raw bytes (bogus frames, wrong checksums, unknown
  /// commands) — the "forgoing ban score" primitive.
  void SendRawFrame(AttackSession& session, bsutil::ByteSpan frame);

  void CloseSession(AttackSession& session);

  /// Causal tracing: every frame this attacker sends roots a new trace whose
  /// send span is registered against the session stream, so a victim sharing
  /// the tracer can attribute the misbehavior/ban the frame causes back to
  /// this attacker. Null (default) disables. Not owned.
  void SetSpanTracer(bsobs::SpanTracer* tracer) { tracer_ = tracer; }

  std::uint32_t Magic() const { return magic_; }
  std::uint64_t TotalMessagesSent() const { return total_sent_; }
  std::uint64_t SessionsOpened() const { return sessions_opened_; }
  std::uint64_t SessionsClosedByTarget() const { return sessions_closed_; }

  /// Sessions currently alive (not closed).
  std::vector<AttackSession*> LiveSessions();

 private:
  void HandleSessionData(AttackSession& session, bsutil::ByteSpan data);

  std::uint32_t magic_;
  bsobs::SpanTracer* tracer_ = nullptr;
  std::uint64_t next_session_id_ = 1;
  std::vector<std::unique_ptr<AttackSession>> sessions_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_closed_ = 0;
};

}  // namespace bsattack
