#include "attack/eclipse.hpp"

namespace bsattack {

EclipseAttack::EclipseAttack(AttackerNode& attacker, bsnet::Node& victim,
                             std::vector<bsnet::Node*> infrastructure,
                             EclipseConfig config)
    : attacker_(attacker),
      victim_(victim),
      infrastructure_(std::move(infrastructure)),
      config_(config),
      crafter_(victim.Config().chain, 0xec11) {
  attacker_ips_.insert(attacker_.Ip());
  for (const bsnet::Node* node : infrastructure_) attacker_ips_.insert(node->Ip());
}

bool EclipseAttack::IsAttackerIp(std::uint32_t ip) const {
  return attacker_ips_.contains(ip);
}

void EclipseAttack::Start() {
  running_ = true;
  OccupyInboundSlots();
  // Poisoning rides on the first inbound session once it is usable.
  attacker_.Sched().After(bsim::kSecond, [this]() { PoisonAddrTable(); });
  if (config_.defame_outbound) {
    attacker_.Sched().After(2 * bsim::kSecond, [this]() { DefamationTick(); });
  }
}

void EclipseAttack::OccupyInboundSlots() {
  const bsproto::Endpoint target{victim_.Ip(), victim_.Config().listen_port};
  for (int i = 0; i < config_.inbound_sessions; ++i) {
    inbound_sessions_.push_back(attacker_.OpenSession(target));
  }
}

void EclipseAttack::PoisonAddrTable() {
  if (!running_) return;
  AttackSession* usable = nullptr;
  for (AttackSession* session : inbound_sessions_) {
    if (!session->closed && session->SessionReady()) {
      usable = session;
      break;
    }
  }
  if (usable == nullptr) {
    attacker_.Sched().After(bsim::kSecond, [this]() { PoisonAddrTable(); });
    return;
  }

  // Each round gossips the infrastructure's listen endpoints (repeated to
  // fill the message) — all under the 1000-entry rule, so no ban score.
  for (int round = 0; round < config_.addr_gossip_rounds; ++round) {
    bsproto::AddrMsg msg;
    msg.addresses.reserve(config_.addrs_per_message);
    for (std::size_t i = 0; i < config_.addrs_per_message; ++i) {
      const bsnet::Node* node = infrastructure_[i % infrastructure_.size()];
      bsproto::TimedNetAddr rec;
      rec.time = static_cast<std::uint32_t>(attacker_.Sched().Now() / bsim::kSecond);
      rec.addr.services = bsproto::kNodeNetwork;
      rec.addr.endpoint = {node->Ip(), node->Config().listen_port};
      msg.addresses.push_back(rec);
    }
    attacker_.Send(*usable, msg);
    addr_entries_sent_ += msg.addresses.size();
  }
  if (config_.repoison_interval > 0) {
    attacker_.Sched().After(config_.repoison_interval, [this]() { PoisonAddrTable(); });
  }
}

void EclipseAttack::DefamationTick() {
  if (!running_) return;
  if (config_.reoccupy_inbound) {
    // Replace Sybil sessions the victim dropped (eviction, bans): the
    // sustained attacker keeps pressure on the inbound side instead of
    // conceding slots to honest dial-ins.
    const bsproto::Endpoint target{victim_.Ip(), victim_.Config().listen_port};
    int live = 0;
    for (const AttackSession* session : inbound_sessions_) {
      live += session->closed ? 0 : 1;
    }
    for (; live < config_.inbound_sessions; ++live) {
      inbound_sessions_.push_back(attacker_.OpenSession(target));
    }
  }
  // Pick one honest outbound peer of the victim and defame it (Algorithm 1:
  // the attacker learns the 4-tuple by sniffing; we read it off the victim's
  // connection state the same way).
  for (const bsnet::Peer* peer : victim_.Peers()) {
    if (peer->inbound || !peer->HandshakeComplete()) continue;
    if (IsAttackerIp(peer->remote.ip)) continue;  // already ours
    if (victim_.Bans().IsBanned(peer->remote, attacker_.Sched().Now())) continue;

    auto defamation = std::make_unique<PostConnectionDefamation>(
        attacker_, peer->conn->Local(), peer->remote);
    defamation->Arm({bsproto::EncodeMessage(attacker_.Magic(),
                                            crafter_.SegwitInvalidTx())});
    defamations_.push_back(std::move(defamation));
    ++defamed_;
    break;  // one eviction per tick keeps the reconnect churn plausible
  }
  attacker_.Sched().After(config_.defame_interval, [this]() { DefamationTick(); });
}

double EclipseAttack::ControlFraction() const {
  std::size_t total = 0;
  std::size_t controlled = 0;
  for (const bsnet::Peer* peer : victim_.Peers()) {
    if (!peer->HandshakeComplete()) continue;
    ++total;
    controlled += IsAttackerIp(peer->remote.ip) ? 1 : 0;
  }
  return total == 0 ? 0.0 : static_cast<double>(controlled) / static_cast<double>(total);
}

bool EclipseAttack::FullyEclipsed() const {
  bool any = false;
  for (const bsnet::Peer* peer : victim_.Peers()) {
    if (!peer->HandshakeComplete()) continue;
    any = true;
    if (!IsAttackerIp(peer->remote.ip)) return false;
  }
  return any;
}

int EclipseAttack::InboundSessionsHeld() const {
  int held = 0;
  for (const AttackSession* session : inbound_sessions_) {
    held += (!session->closed && session->SessionReady()) ? 1 : 0;
  }
  return held;
}

}  // namespace bsattack
