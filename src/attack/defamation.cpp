#include "attack/defamation.hpp"

#include "attack/crafter.hpp"

namespace bsattack {

// ---------------------------------------------------------------------------
// SpoofedTcpClient

SpoofedTcpClient::SpoofedTcpClient(AttackerNode& attacker, Endpoint spoofed_src,
                                   Endpoint target)
    : attacker_(attacker), spoofed_src_(spoofed_src), target_(target) {
  snd_next_ = (spoofed_src.ip ^ (spoofed_src.port * 40503u)) | 1u;
}

void SpoofedTcpClient::EmitRaw(std::uint8_t flags, bsutil::ByteSpan payload) {
  bsim::TcpSegment seg;
  seg.src = spoofed_src_;  // the spoofed identifier
  seg.dst = target_;
  seg.seq = snd_next_;
  seg.ack = rcv_next_;
  seg.flags = flags;
  seg.payload.assign(payload.begin(), payload.end());
  snd_next_ += static_cast<std::uint32_t>(payload.size());
  if (flags & bsim::kFlagSyn) ++snd_next_;
  ++segments_injected_;
  attacker_.Transmit(std::move(seg));
}

void SpoofedTcpClient::Start(std::function<void()> on_established) {
  on_established_ = std::move(on_established);

  // Sniff the shared segment for the target's SYN-ACK toward the spoofed
  // identifier; it carries the ISN we must acknowledge.
  std::weak_ptr<bool> alive = alive_;
  attacker_.Net().AddSniffer([this, alive](const bsim::TcpSegment& seg, bsim::SimTime) {
    if (alive.expired() || established_) return;
    if (seg.src != target_ || seg.dst != spoofed_src_) return;
    if (!seg.Has(bsim::kFlagSyn) || !seg.Has(bsim::kFlagAck)) return;
    if (seg.ack != snd_next_) return;
    rcv_next_ = seg.seq + 1;
    established_ = true;
    EmitRaw(bsim::kFlagAck, {});  // complete the spoofed three-way handshake
    if (on_established_) on_established_();
  });

  syn_sent_ = true;
  EmitRaw(bsim::kFlagSyn, {});
}

void SpoofedTcpClient::SendData(bsutil::ByteSpan data) {
  if (!established_) return;
  if (tracer_ != nullptr) {
    // The whole spoofed app stream originates here, so exact offsets are
    // known: register this frame where the victim's decoder will find it.
    const bsobs::TraceContext ctx = tracer_->Begin();
    tracer_->NoteFrameSent(
        bsobs::SpanStreamKey{
            bsobs::PackEndpoint(spoofed_src_.ip, spoofed_src_.port),
            bsobs::PackEndpoint(target_.ip, target_.port)},
        app_offset_, static_cast<std::uint32_t>(data.size()), ctx);
    bsobs::SpanRecord rec;
    rec.time = attacker_.Sched().Now();
    rec.trace_id = ctx.trace_id;
    rec.span_id = ctx.span_id;
    rec.kind = bsobs::SpanKind::kInject;
    rec.node_ip = attacker_.Ip();  // the *real* attacker, not the spoofed id
    rec.a = static_cast<std::int64_t>(data.size());
    rec.b = static_cast<std::int64_t>(spoofed_src_.ip);
    bsproto::FramePeek peek;
    if (bsproto::PeekFrame(attacker_.Magic(), data, peek)) {
      rec.msg_type = static_cast<std::int16_t>(peek.msg_type);
    }
    tracer_->Log().Record(rec);
  }
  app_offset_ += data.size();
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk = std::min(bsim::kMss, data.size() - offset);
    EmitRaw(bsim::kFlagPsh | bsim::kFlagAck, data.subspan(offset, chunk));
    offset += chunk;
  }
}

// ---------------------------------------------------------------------------
// PreConnectionDefamation

PreConnectionDefamation::PreConnectionDefamation(AttackerNode& attacker, Endpoint target,
                                                 Endpoint innocent_id,
                                                 std::vector<bsutil::ByteVec> frames)
    : attacker_(attacker),
      target_(target),
      innocent_(innocent_id),
      frames_(std::move(frames)) {}

void PreConnectionDefamation::Run(std::function<void()> on_done) {
  client_ = std::make_unique<SpoofedTcpClient>(attacker_, innocent_, target_);
  client_->SetSpanTracer(tracer_);
  client_->Start([this, on_done = std::move(on_done)]() {
    // Pace the frames one pipeline interval apart so the target's handshake
    // replies (sent to the spoofed host and dropped there) cannot interleave
    // with our stream mid-frame.
    bsim::SimTime delay = 0;
    for (const auto& frame : frames_) {
      attacker_.Sched().After(delay, [this, frame]() { client_->SendData(frame); });
      delay += bsim::kMillisecond;
    }
    if (on_done) attacker_.Sched().After(delay + bsim::kMillisecond, std::move(on_done));
  });
}

std::vector<bsutil::ByteVec> PreConnectionDefamation::InstantBanFrames(
    std::uint32_t magic) {
  bschain::ChainParams params;
  Crafter crafter(params);
  std::vector<bsutil::ByteVec> frames;
  frames.push_back(bsproto::EncodeMessage(magic, bsproto::VersionMsg{}));
  frames.push_back(bsproto::EncodeMessage(magic, bsproto::VerackMsg{}));
  frames.push_back(bsproto::EncodeMessage(magic, crafter.SegwitInvalidTx()));
  return frames;
}

// ---------------------------------------------------------------------------
// PostConnectionDefamation

PostConnectionDefamation::PostConnectionDefamation(AttackerNode& attacker, Endpoint target,
                                                   Endpoint innocent_id)
    : attacker_(attacker), target_(target), innocent_(innocent_id) {}

void PostConnectionDefamation::Arm(std::vector<bsutil::ByteVec> frames) {
  frames_ = std::move(frames);
  armed_ = true;

  // Algorithm 1 line 2-3: real-time eavesdropping on the j↔i connection to
  // learn the current seqnum/acknum.
  std::weak_ptr<bool> alive = alive_;
  attacker_.Net().AddSniffer([this, alive](const bsim::TcpSegment& seg, bsim::SimTime) {
    if (alive.expired() || injected_) return;
    ++segments_observed_;
    if (seg.src == innocent_ && seg.dst == target_) {
      // j → i: the next in-window sequence number follows this segment.
      std::uint32_t next = seg.seq + static_cast<std::uint32_t>(seg.payload.size());
      if (seg.Has(bsim::kFlagSyn) || seg.Has(bsim::kFlagFin)) ++next;
      next_seq_from_innocent_ = next;
      last_ack_from_innocent_ = seg.ack;
      seq_known_ = true;
    } else if (seg.src == target_ && seg.dst == innocent_) {
      // i → j: i's acknowledgement field reveals what i expects from j.
      if (seg.Has(bsim::kFlagAck) && seg.ack != 0) {
        next_seq_from_innocent_ = seg.ack;
        seq_known_ = true;
      }
    } else {
      return;
    }
    TryInject();
  });
}

void PostConnectionDefamation::TryInject() {
  if (!armed_ || injected_ || !seq_known_) return;
  injected_ = true;

  // Algorithm 1 lines 4-5: craft the misbehaving message with the 4-tuple
  // and expected seqnum/acknum, and inject it toward i.
  std::uint32_t seq = next_seq_from_innocent_;
  for (const auto& frame : frames_) {
    if (tracer_ != nullptr) {
      // The attacker cannot know where in j's app stream this splices in —
      // register it as a foreign frame (matched by length at the victim).
      const bsobs::TraceContext ctx = tracer_->Begin();
      tracer_->NoteForeignFrame(
          bsobs::SpanStreamKey{
              bsobs::PackEndpoint(innocent_.ip, innocent_.port),
              bsobs::PackEndpoint(target_.ip, target_.port)},
          static_cast<std::uint32_t>(frame.size()), ctx);
      bsobs::SpanRecord rec;
      rec.time = attacker_.Sched().Now();
      rec.trace_id = ctx.trace_id;
      rec.span_id = ctx.span_id;
      rec.kind = bsobs::SpanKind::kInject;
      rec.node_ip = attacker_.Ip();
      rec.a = static_cast<std::int64_t>(frame.size());
      rec.b = static_cast<std::int64_t>(innocent_.ip);
      bsproto::FramePeek peek;
      if (bsproto::PeekFrame(attacker_.Magic(), frame, peek)) {
        rec.msg_type = static_cast<std::int16_t>(peek.msg_type);
      }
      tracer_->Log().Record(rec);
    }
    std::size_t offset = 0;
    while (offset < frame.size()) {
      const std::size_t chunk = std::min(bsim::kMss, frame.size() - offset);
      bsim::TcpSegment seg;
      seg.src = innocent_;  // spoofed: the innocent peer's identifier
      seg.dst = target_;
      seg.seq = seq;
      seg.ack = last_ack_from_innocent_;
      seg.flags = bsim::kFlagPsh | bsim::kFlagAck;
      seg.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(offset),
                         frame.begin() + static_cast<std::ptrdiff_t>(offset + chunk));
      seq += static_cast<std::uint32_t>(chunk);
      attacker_.Transmit(std::move(seg));
      offset += chunk;
    }
  }
}

}  // namespace bsattack
