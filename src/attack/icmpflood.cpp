#include "attack/icmpflood.hpp"

#include <cmath>

namespace bsattack {

void IcmpFlooder::Start() {
  running_ = true;
  Tick();
}

void IcmpFlooder::Tick() {
  if (!running_) return;
  const double exact = config_.rate_pkts_per_sec * bsim::ToSeconds(config_.tick) + carry_;
  const std::uint64_t count = static_cast<std::uint64_t>(exact);
  carry_ = exact - static_cast<double>(count);

  if (count > 0) {
    bsim::IcmpPacket pkt;
    pkt.src_ip = attacker_.Ip();
    pkt.dst_ip = target_ip_;
    pkt.size = config_.packet_size;
    attacker_.Net().SendIcmpBatch(attacker_, pkt, count);
    packets_sent_ += count;
  }
  attacker_.Sched().After(config_.tick, [this]() { Tick(); });
}

}  // namespace bsattack
