// Synthetic Mainnet background traffic.
//
// The paper trains its detector on ~35 hours of real Mainnet traffic
// arriving at the target node (τ_n = [252, 390] messages/minute, a
// TX-dominated mixture). We have no Mainnet, so this generator drives a
// population of real peer nodes to send a calibrated message mixture to the
// target over their live connections, with Poisson arrivals per message
// type. It also produces a small amount of natural connection churn so the
// baseline outbound-reconnection rate (feature c) is non-zero, as in the
// paper's τ_c = [0, 2.1].
//
// It lives in the attack library only because it reuses the same
// light-client machinery and is an "external actor" like the attackers; it
// generates honest traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/crafter.hpp"
#include "core/node.hpp"
#include "util/rng.hpp"

namespace bsattack {

/// One Poisson-driven component of the mixture.
struct TrafficMixEntry {
  enum class Kind {
    kTx,
    kInv,
    kAddr,
    kHeaders,
    kGetHeaders,
    kGetData,
    kPing,
    kPong,
    kFeeFilter,
    kSendHeaders,
    kSendCmpct,
    kNotFound,
    kGetAddr,
    kMineBlock,  // a peer mines and announces a real block
    kChurn,      // a peer drops its session with the target (reconnect churn)
  };
  Kind kind;
  double per_minute;
};

/// Mixture calibrated so the target sees ≈320 messages/minute, matching the
/// paper's observed normal envelope.
std::vector<TrafficMixEntry> DefaultTrafficMix();

struct TrafficConfig {
  double scale = 1.0;  // multiplies every rate
  std::uint64_t seed = 99;
  std::vector<TrafficMixEntry> mix = DefaultTrafficMix();
};

class MainnetTrafficGenerator {
 public:
  /// `peers` are the Mainnet-stand-in nodes; each should have (or be about
  /// to have) a live session with `target`.
  MainnetTrafficGenerator(bsim::Scheduler& sched, std::vector<bsnet::Node*> peers,
                          bsnet::Node& target, TrafficConfig config);

  void Start();
  void Stop() { running_ = false; }

  std::uint64_t EventsFired() const { return events_; }

 private:
  void ScheduleEntry(std::size_t index);
  void FireEntry(const TrafficMixEntry& entry);
  bsnet::Node* RandomPeer();
  /// A random peer holding a handshake-complete session with the target
  /// (retries a few candidates; nullptr when none qualifies).
  bsnet::Node* RandomConnectedPeer();

  bsim::Scheduler& sched_;
  std::vector<bsnet::Node*> peers_;
  bsnet::Node& target_;
  TrafficConfig config_;
  bsutil::Rng rng_;
  Crafter crafter_;
  bool running_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t nonce_ = 1;
  /// Txids recently gossiped to the target; INV events re-announce these
  /// (duplicate announcements from other peers, as on the real network).
  std::vector<bscrypto::Hash256> recent_txids_;
};

}  // namespace bsattack
