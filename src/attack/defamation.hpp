// The Defamation attack (§IV): make the target node ban an innocent peer's
// connection identifier by spoofing/injecting misbehaving messages.
//
//  * Pre-connection (§IV-B-1): no connection exists between innocent j and
//    target i. The attacker performs a fully spoofed TCP handshake as j
//    (sniffing i's SYN-ACK off the shared segment) and then speaks enough
//    Bitcoin protocol to deliver misbehaving messages, so i bans [j.ip:port]
//    before j ever uses it.
//
//  * Post-connection (§IV-B-2, Algorithm 1): j and i are connected. The
//    attacker eavesdrops the live TCP state (seq/ack) and injects a
//    misbehaving message into the stream with j's source endpoint; i
//    attributes it to j and bans it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/attacker.hpp"

namespace bsattack {

/// A TCP client whose segments carry a spoofed source endpoint. The real
/// handshake responses go to the spoofed host (which, behind a perimeter
/// firewall, silently drops them), so the client learns the target's ISN by
/// sniffing the shared network segment.
class SpoofedTcpClient {
 public:
  SpoofedTcpClient(AttackerNode& attacker, Endpoint spoofed_src, Endpoint target);

  /// Send the SYN and sniff for the SYN-ACK. `on_established` fires when the
  /// spoofed three-way handshake completes.
  void Start(std::function<void()> on_established);

  /// Send application bytes as the spoofed source (MSS-sized segments with
  /// correct sequence numbers).
  void SendData(bsutil::ByteSpan data);

  /// Causal tracing: record each SendData as an inject span registered at
  /// its exact app-stream offset (the spoofed session's stream starts at 0,
  /// and every byte of it comes from this client), so a tracer-sharing
  /// victim attributes the resulting ban to the real attacker.
  void SetSpanTracer(bsobs::SpanTracer* tracer) { tracer_ = tracer; }

  bool Established() const { return established_; }
  std::uint64_t SegmentsInjected() const { return segments_injected_; }

 private:
  void EmitRaw(std::uint8_t flags, bsutil::ByteSpan payload);

  AttackerNode& attacker_;
  Endpoint spoofed_src_;
  Endpoint target_;
  bsobs::SpanTracer* tracer_ = nullptr;
  std::uint64_t app_offset_ = 0;  // app-stream bytes sent so far
  std::uint32_t snd_next_;
  std::uint32_t rcv_next_ = 0;
  bool syn_sent_ = false;
  bool established_ = false;
  std::uint64_t segments_injected_ = 0;
  std::function<void()> on_established_;
  // Keeps the sniffer callback alive/valid after *this* might move.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Pre-connection Defamation: ban identifier j at target i before j uses it.
class PreConnectionDefamation {
 public:
  /// `frames`: the Bitcoin frames to deliver once the spoofed session is up
  /// (e.g. VERSION, VERACK, then a 100-point misbehaving message).
  PreConnectionDefamation(AttackerNode& attacker, Endpoint target, Endpoint innocent_id,
                          std::vector<bsutil::ByteVec> frames);

  void Run(std::function<void()> on_done = nullptr);
  bool HandshakeSucceeded() const { return client_ && client_->Established(); }

  /// Propagated to the SpoofedTcpClient created by Run().
  void SetSpanTracer(bsobs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Convenience: the default frame sequence that earns an instant ban —
  /// VERSION, VERACK, then a SegWit-consensus-invalid TX (score 100).
  static std::vector<bsutil::ByteVec> InstantBanFrames(std::uint32_t magic);

 private:
  AttackerNode& attacker_;
  Endpoint target_;
  Endpoint innocent_;
  bsobs::SpanTracer* tracer_ = nullptr;
  std::vector<bsutil::ByteVec> frames_;
  std::unique_ptr<SpoofedTcpClient> client_;
};

/// Post-connection Defamation per Algorithm 1.
class PostConnectionDefamation {
 public:
  PostConnectionDefamation(AttackerNode& attacker, Endpoint target, Endpoint innocent_id);

  /// Begin real-time eavesdropping; once the live seq state of j→i is known,
  /// inject `frames` into the connection as j.
  void Arm(std::vector<bsutil::ByteVec> frames);

  /// Causal tracing: injected frames register as *foreign* frames on the
  /// j→i stream (their app-stream offset is unknowable to the attacker);
  /// the victim matches them by length. Must be set before Arm().
  void SetSpanTracer(bsobs::SpanTracer* tracer) { tracer_ = tracer; }

  bool SequenceKnown() const { return seq_known_; }
  bool Injected() const { return injected_; }
  std::uint64_t SegmentsObserved() const { return segments_observed_; }

 private:
  void TryInject();

  AttackerNode& attacker_;
  Endpoint target_;
  Endpoint innocent_;
  bsobs::SpanTracer* tracer_ = nullptr;
  std::vector<bsutil::ByteVec> frames_;
  bool armed_ = false;
  bool seq_known_ = false;
  bool injected_ = false;
  std::uint32_t next_seq_from_innocent_ = 0;
  std::uint32_t last_ack_from_innocent_ = 0;
  std::uint64_t segments_observed_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace bsattack
