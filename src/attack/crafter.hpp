// Misbehaving-message factory: one constructor per Table I rule, plus the
// bogus-frame primitives of §III-B (bad checksum, unknown command). Used by
// the attack scenarios, the rule-matrix tests, and bench_table1_rules (which
// triggers every rule against a live node).
#pragma once

#include <cstdint>

#include "chain/miner.hpp"
#include "chain/pow.hpp"
#include "proto/codec.hpp"
#include "proto/compact.hpp"
#include "proto/messages.hpp"
#include "util/rng.hpp"

namespace bsattack {

/// Crafts messages that trigger specific misbehavior rules on a node running
/// with the given chain parameters.
class Crafter {
 public:
  explicit Crafter(const bschain::ChainParams& params, std::uint64_t seed = 7)
      : params_(params), rng_(seed) {}

  // ---- BLOCK rules ----
  /// "Block data was mutated": valid PoW but merkle root != header root.
  bsproto::BlockMsg MutatedBlock(const bscrypto::Hash256& prev);
  /// "Previous block is missing": valid block on an unknown parent.
  bsproto::BlockMsg PrevMissingBlock();
  /// "Previous block is invalid": valid block whose parent is `invalid_prev`
  /// (caller must have made the target cache that parent as invalid).
  bsproto::BlockMsg ChildOf(const bscrypto::Hash256& prev);
  /// A fully valid block on `prev` (for good-score feeding and relay tests).
  bsproto::BlockMsg ValidBlock(const bscrypto::Hash256& prev);
  /// A block that parses but fails PoW (bits demand an impossible target).
  bsproto::BlockMsg InvalidPowBlock(const bscrypto::Hash256& prev);

  // ---- TX rule ----
  /// "Invalid by consensus rules of SegWit": witness item is the failing
  /// 0x00 marker.
  bsproto::TxMsg SegwitInvalidTx();
  /// A valid transaction (mempool filler).
  bsproto::TxMsg ValidTx();

  // ---- Oversize rules ----
  bsproto::AddrMsg OversizeAddr();           // > 1000 addresses
  bsproto::InvMsg OversizeInv();             // > 50000 entries
  bsproto::GetDataMsg OversizeGetData();     // > 50000 entries
  bsproto::HeadersMsg OversizeHeaders();     // > 2000 headers
  bsproto::FilterLoadMsg OversizeFilterLoad();  // > 36000 bytes
  bsproto::FilterAddMsg OversizeFilterAdd();    // > 520 bytes

  // ---- HEADERS disorder rules ----
  /// "Non-continuous headers sequence": two headers that do not chain.
  bsproto::HeadersMsg NonContinuousHeaders();
  /// One non-connecting header (send kMaxUnconnectingHeaders times to fire
  /// the "10 non-connecting headers" rule).
  bsproto::HeadersMsg NonConnectingHeaders();

  // ---- Compact-block rules ----
  /// "Invalid compact block data": duplicate short ids under a valid header.
  bsproto::CmpctBlockMsg InvalidCompactBlock(const bscrypto::Hash256& prev);
  /// "Out-of-bounds transaction indices" for a block with `tx_count` txs.
  bsproto::GetBlockTxnMsg OutOfBoundsGetBlockTxn(const bscrypto::Hash256& block_hash,
                                                 std::size_t tx_count);

  // ---- Bogus frames (§III-B vector 2: forgoing ban score) ----
  /// A frame under the "block" command whose payload is `payload_size` bytes
  /// of garbage and whose checksum is WRONG: the victim burns cycles hashing
  /// it, then drops it before misbehavior tracking.
  bsutil::ByteVec BogusBlockFrame(std::uint32_t magic, std::size_t payload_size);
  /// A frame with an unknown command ("bogus"): parsed header, ignored body,
  /// no rule can fire (§III-B vector 1 for non-catalogued commands).
  bsutil::ByteVec UnknownCommandFrame(std::uint32_t magic, std::size_t payload_size);

  const bschain::ChainParams& Params() const { return params_; }

 private:
  bschain::Block MineOn(const bscrypto::Hash256& prev);

  bschain::ChainParams params_;
  bsutil::Rng rng_;
  std::uint64_t extra_nonce_ = 1000;
};

}  // namespace bsattack
