#include "attack/sybil.hpp"

namespace bsattack {

SerialSybilAttack::SerialSybilAttack(AttackerNode& attacker, Endpoint target,
                                     SerialSybilConfig config)
    : attacker_(attacker), target_(target), config_(config) {
  const bsim::SimTime pipeline =
      bsim::FromSeconds(1.0 / bsnet::kBmDosPipelineCapMsgsPerSec);
  message_interval_ = pipeline + config_.extra_message_delay;
}

void SerialSybilAttack::Start() {
  running_ = true;
  NextIdentifier();
}

void SerialSybilAttack::Stop() { running_ = false; }

void SerialSybilAttack::NextIdentifier() {
  if (!running_) return;
  if (static_cast<int>(records_.size()) >= config_.max_identifiers) {
    finished_ = true;
    running_ = false;
    return;
  }

  AttackSession* session = attacker_.OpenSession(target_, /*auto_handshake=*/false);
  const std::size_t record_index = records_.size();
  records_.push_back(SybilIdentifierRecord{session->local, 0, 0, 0});

  session->on_tcp_established = [this, session, record_index](AttackSession&) {
    records_[record_index].flood_started = attacker_.Sched().Now();
    SendTick(session, record_index);
  };
  session->on_closed = [this, record_index](AttackSession& s) {
    // The target reset us: the identifier is banned. Set up the next socket
    // after the observed per-socket setup latency.
    records_[record_index].banned_at = attacker_.Sched().Now();
    records_[record_index].messages_sent = s.messages_sent;
    attacker_.Sched().After(config_.socket_setup_latency, [this]() { NextIdentifier(); });
  };
}

void SerialSybilAttack::SendTick(AttackSession* session, std::size_t record_index) {
  if (!running_ || session->closed) return;
  attacker_.Send(*session, config_.payload);
  records_[record_index].messages_sent = session->messages_sent;
  attacker_.Sched().After(message_interval_,
                          [this, session, record_index]() { SendTick(session, record_index); });
}

double SerialSybilAttack::MeanTimeToBan() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& rec : records_) {
    if (rec.banned_at != 0) {
      sum += rec.TimeToBanSeconds();
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

int SerialSybilAttack::IdentifiersBanned() const {
  int n = 0;
  for (const auto& rec : records_) n += rec.banned_at != 0 ? 1 : 0;
  return n;
}

}  // namespace bsattack
