#include "proto/messages.hpp"

#include <limits>

namespace bsproto {

namespace {

using bsutil::ByteSpan;
using bsutil::ByteVec;
using bsutil::DeserializeError;
using bsutil::Reader;
using bsutil::Writer;

// Structural allocation guard: a CompactSize count can never describe more
// elements than physically fit in the remaining payload. This keeps parsing
// permissive enough that over-limit (punishable) collections still decode,
// while rejecting allocation bombs.
std::uint64_t ReadCount(Reader& r, std::size_t min_element_size) {
  const std::uint64_t n = r.ReadCompactSize();
  if (min_element_size > 0 && n > r.Remaining() / min_element_size) {
    throw DeserializeError("collection count exceeds payload capacity");
  }
  return n;
}

void SerializeInv(Writer& w, const std::vector<InvVect>& inv) {
  w.WriteCompactSize(inv.size());
  for (const auto& item : inv) {
    w.WriteU32(static_cast<std::uint32_t>(item.type));
    item.hash.Serialize(w);
  }
}

std::vector<InvVect> DeserializeInv(Reader& r) {
  const std::uint64_t n = ReadCount(r, 36);
  std::vector<InvVect> inv;
  inv.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    InvVect item;
    item.type = static_cast<InvType>(r.ReadU32());
    item.hash = bscrypto::Hash256::Deserialize(r);
    inv.push_back(item);
  }
  return inv;
}

void SerializeLocator(Writer& w, std::uint32_t version,
                      const std::vector<bscrypto::Hash256>& locator,
                      const bscrypto::Hash256& stop) {
  w.WriteU32(version);
  w.WriteCompactSize(locator.size());
  for (const auto& h : locator) h.Serialize(w);
  stop.Serialize(w);
}

void DeserializeLocator(Reader& r, std::uint32_t& version,
                        std::vector<bscrypto::Hash256>& locator, bscrypto::Hash256& stop) {
  version = r.ReadU32();
  const std::uint64_t n = ReadCount(r, 32);
  locator.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) locator.push_back(bscrypto::Hash256::Deserialize(r));
  stop = bscrypto::Hash256::Deserialize(r);
}

struct PayloadSerializer {
  Writer& w;

  void operator()(const VersionMsg& m) {
    w.WriteI32(m.version);
    w.WriteU64(m.services);
    w.WriteI64(m.timestamp);
    m.addr_recv.Serialize(w);
    m.addr_from.Serialize(w);
    w.WriteU64(m.nonce);
    w.WriteVarString(m.user_agent);
    w.WriteI32(m.start_height);
    w.WriteBool(m.relay);
  }
  void operator()(const VerackMsg&) {}
  void operator()(const AddrMsg& m) {
    w.WriteCompactSize(m.addresses.size());
    for (const auto& a : m.addresses) a.Serialize(w);
  }
  void operator()(const InvMsg& m) { SerializeInv(w, m.inventory); }
  void operator()(const GetDataMsg& m) { SerializeInv(w, m.inventory); }
  void operator()(const NotFoundMsg& m) { SerializeInv(w, m.inventory); }
  void operator()(const GetBlocksMsg& m) { SerializeLocator(w, m.version, m.locator, m.stop); }
  void operator()(const GetHeadersMsg& m) { SerializeLocator(w, m.version, m.locator, m.stop); }
  void operator()(const HeadersMsg& m) {
    w.WriteCompactSize(m.headers.size());
    for (const auto& h : m.headers) {
      h.Serialize(w);
      w.WriteCompactSize(0);  // tx count, always 0 in headers messages
    }
  }
  void operator()(const TxMsg& m) { m.tx.Serialize(w); }
  void operator()(const BlockMsg& m) { m.block.Serialize(w); }
  void operator()(const PingMsg& m) { w.WriteU64(m.nonce); }
  void operator()(const PongMsg& m) { w.WriteU64(m.nonce); }
  void operator()(const GetAddrMsg&) {}
  void operator()(const MempoolMsg&) {}
  void operator()(const SendHeadersMsg&) {}
  void operator()(const FeeFilterMsg& m) { w.WriteI64(m.feerate); }
  void operator()(const SendCmpctMsg& m) {
    w.WriteBool(m.announce);
    w.WriteU64(m.version);
  }
  void operator()(const CmpctBlockMsg& m) {
    m.header.Serialize(w);
    w.WriteU64(m.nonce);
    w.WriteCompactSize(m.short_ids.size());
    for (std::uint64_t id : m.short_ids) {
      for (int i = 0; i < 6; ++i) w.WriteU8(static_cast<std::uint8_t>(id >> (8 * i)));
    }
    w.WriteCompactSize(m.prefilled.size());
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto& p : m.prefilled) {
      // BIP-152 differential index encoding.
      const std::uint64_t diff = first ? p.index : p.index - prev - 1;
      w.WriteCompactSize(diff);
      p.tx.Serialize(w);
      prev = p.index;
      first = false;
    }
  }
  void operator()(const GetBlockTxnMsg& m) {
    m.block_hash.Serialize(w);
    w.WriteCompactSize(m.indexes.size());
    std::uint64_t prev = 0;
    bool first = true;
    for (std::uint64_t idx : m.indexes) {
      const std::uint64_t diff = first ? idx : idx - prev - 1;
      w.WriteCompactSize(diff);
      prev = idx;
      first = false;
    }
  }
  void operator()(const BlockTxnMsg& m) {
    m.block_hash.Serialize(w);
    w.WriteCompactSize(m.txs.size());
    for (const auto& tx : m.txs) tx.Serialize(w);
  }
  void operator()(const FilterLoadMsg& m) {
    w.WriteVarBytes(m.filter);
    w.WriteU32(m.n_hash_funcs);
    w.WriteU32(m.n_tweak);
    w.WriteU8(m.n_flags);
  }
  void operator()(const FilterAddMsg& m) { w.WriteVarBytes(m.data); }
  void operator()(const FilterClearMsg&) {}
  void operator()(const MerkleBlockMsg& m) {
    m.header.Serialize(w);
    w.WriteU32(m.total_txs);
    w.WriteCompactSize(m.hashes.size());
    for (const auto& h : m.hashes) h.Serialize(w);
    w.WriteVarBytes(m.flags);
  }
  void operator()(const RejectMsg& m) {
    w.WriteVarString(m.message);
    w.WriteU8(m.code);
    w.WriteVarString(m.reason);
    w.WriteBytes(m.data);
  }
  void operator()(const TipProbeMsg& m) {
    w.WriteU64(m.nonce);
    w.WriteCompactSize(m.tips.size());
    for (const auto& tip : m.tips) {
      w.WriteI32(tip.height);
      tip.hash.Serialize(w);
    }
  }
};

}  // namespace

MsgType MsgTypeOf(const Message& msg) {
  // Variant alternative order matches the MsgType enum order by construction.
  return static_cast<MsgType>(msg.index());
}

ByteVec SerializePayload(const Message& msg) {
  Writer w;
  std::visit(PayloadSerializer{w}, msg);
  return w.TakeData();
}

Message DeserializePayload(MsgType type, ByteSpan payload) {
  Reader r(payload);
  Message out;
  switch (type) {
    case MsgType::kVersion: {
      VersionMsg m;
      m.version = r.ReadI32();
      m.services = r.ReadU64();
      m.timestamp = r.ReadI64();
      m.addr_recv = NetAddr::Deserialize(r);
      m.addr_from = NetAddr::Deserialize(r);
      m.nonce = r.ReadU64();
      m.user_agent = r.ReadVarString();
      m.start_height = r.ReadI32();
      // The relay flag is optional on the wire (BIP-37).
      m.relay = r.AtEnd() ? true : r.ReadBool();
      out = m;
      break;
    }
    case MsgType::kVerack:
      out = VerackMsg{};
      break;
    case MsgType::kAddr: {
      AddrMsg m;
      const std::uint64_t n = ReadCount(r, 30);
      m.addresses.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) m.addresses.push_back(TimedNetAddr::Deserialize(r));
      out = m;
      break;
    }
    case MsgType::kInv: {
      InvMsg m;
      m.inventory = DeserializeInv(r);
      out = m;
      break;
    }
    case MsgType::kGetData: {
      GetDataMsg m;
      m.inventory = DeserializeInv(r);
      out = m;
      break;
    }
    case MsgType::kNotFound: {
      NotFoundMsg m;
      m.inventory = DeserializeInv(r);
      out = m;
      break;
    }
    case MsgType::kGetBlocks: {
      GetBlocksMsg m;
      DeserializeLocator(r, m.version, m.locator, m.stop);
      out = m;
      break;
    }
    case MsgType::kGetHeaders: {
      GetHeadersMsg m;
      DeserializeLocator(r, m.version, m.locator, m.stop);
      out = m;
      break;
    }
    case MsgType::kHeaders: {
      HeadersMsg m;
      const std::uint64_t n = ReadCount(r, 81);
      m.headers.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        m.headers.push_back(bschain::BlockHeader::Deserialize(r));
        if (r.ReadCompactSize() != 0) {
          throw DeserializeError("headers entry carries a nonzero tx count");
        }
      }
      out = m;
      break;
    }
    case MsgType::kTx: {
      TxMsg m;
      m.tx = bschain::Transaction::Deserialize(r);
      out = m;
      break;
    }
    case MsgType::kBlock: {
      BlockMsg m;
      m.block = bschain::Block::Deserialize(r);
      out = m;
      break;
    }
    case MsgType::kPing: {
      PingMsg m;
      m.nonce = r.ReadU64();
      out = m;
      break;
    }
    case MsgType::kPong: {
      PongMsg m;
      m.nonce = r.ReadU64();
      out = m;
      break;
    }
    case MsgType::kGetAddr:
      out = GetAddrMsg{};
      break;
    case MsgType::kMempool:
      out = MempoolMsg{};
      break;
    case MsgType::kSendHeaders:
      out = SendHeadersMsg{};
      break;
    case MsgType::kFeeFilter: {
      FeeFilterMsg m;
      m.feerate = r.ReadI64();
      out = m;
      break;
    }
    case MsgType::kSendCmpct: {
      SendCmpctMsg m;
      m.announce = r.ReadBool();
      m.version = r.ReadU64();
      out = m;
      break;
    }
    case MsgType::kCmpctBlock: {
      CmpctBlockMsg m;
      m.header = bschain::BlockHeader::Deserialize(r);
      m.nonce = r.ReadU64();
      const std::uint64_t n_ids = ReadCount(r, 6);
      m.short_ids.reserve(n_ids);
      for (std::uint64_t i = 0; i < n_ids; ++i) {
        std::uint64_t id = 0;
        for (int b = 0; b < 6; ++b) id |= static_cast<std::uint64_t>(r.ReadU8()) << (8 * b);
        m.short_ids.push_back(id);
      }
      const std::uint64_t n_prefilled = ReadCount(r, 1);
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < n_prefilled; ++i) {
        PrefilledTx p;
        const std::uint64_t diff = r.ReadCompactSize();
        p.index = (i == 0) ? diff : prev + 1 + diff;
        if (p.index > 1'000'000) throw DeserializeError("prefilled index overflow");
        p.tx = bschain::Transaction::Deserialize(r);
        prev = p.index;
        m.prefilled.push_back(std::move(p));
      }
      out = m;
      break;
    }
    case MsgType::kGetBlockTxn: {
      GetBlockTxnMsg m;
      m.block_hash = bscrypto::Hash256::Deserialize(r);
      const std::uint64_t n = ReadCount(r, 1);
      std::uint64_t prev = 0;
      m.indexes.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t diff = r.ReadCompactSize();
        const std::uint64_t idx = (i == 0) ? diff : prev + 1 + diff;
        if (idx < prev) throw DeserializeError("getblocktxn index overflow");
        m.indexes.push_back(idx);
        prev = idx;
      }
      out = m;
      break;
    }
    case MsgType::kBlockTxn: {
      BlockTxnMsg m;
      m.block_hash = bscrypto::Hash256::Deserialize(r);
      const std::uint64_t n = ReadCount(r, 10);
      m.txs.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) m.txs.push_back(bschain::Transaction::Deserialize(r));
      out = m;
      break;
    }
    case MsgType::kFilterLoad: {
      FilterLoadMsg m;
      // Permissive bound: the punishable limit is 36000, but the payload must
      // parse for the node to punish it.
      m.filter = r.ReadVarBytes(kMaxFramePayload);
      m.n_hash_funcs = r.ReadU32();
      m.n_tweak = r.ReadU32();
      m.n_flags = r.ReadU8();
      out = m;
      break;
    }
    case MsgType::kFilterAdd: {
      FilterAddMsg m;
      m.data = r.ReadVarBytes(kMaxFramePayload);
      out = m;
      break;
    }
    case MsgType::kFilterClear:
      out = FilterClearMsg{};
      break;
    case MsgType::kMerkleBlock: {
      MerkleBlockMsg m;
      m.header = bschain::BlockHeader::Deserialize(r);
      m.total_txs = r.ReadU32();
      const std::uint64_t n = ReadCount(r, 32);
      m.hashes.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) m.hashes.push_back(bscrypto::Hash256::Deserialize(r));
      m.flags = r.ReadVarBytes(kMaxFramePayload);
      out = m;
      break;
    }
    case MsgType::kReject: {
      RejectMsg m;
      m.message = r.ReadVarString();
      m.code = r.ReadU8();
      m.reason = r.ReadVarString();
      m.data = r.ReadBytes(r.Remaining());
      out = m;
      break;
    }
    case MsgType::kTipProbe: {
      TipProbeMsg m;
      m.nonce = r.ReadU64();
      const std::uint64_t n = ReadCount(r, 36);
      m.tips.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        TipEntry tip;
        tip.height = r.ReadI32();
        tip.hash = bscrypto::Hash256::Deserialize(r);
        m.tips.push_back(tip);
      }
      out = m;
      break;
    }
  }
  if (!r.AtEnd()) throw DeserializeError("trailing bytes after message payload");
  return out;
}

}  // namespace bsproto
