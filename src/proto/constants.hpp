// Protocol constants and the catalogue of the 26 Bitcoin P2P message types
// (per the developer reference the paper cites). The oversize limits here are
// exactly the bounds the Table I ban-score rules fire on.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace bsproto {

/// Protocol version spoken by our nodes (the paper's testbed: Satoshi 0.20.0,
/// protocol 70015).
constexpr std::int32_t kProtocolVersion = 70015;

/// The BIP-37 version gate for FILTERADD/FILTERLOAD deprecation (Table I:
/// "protocol version number >= 70011").
constexpr std::int32_t kNoBloomVersion = 70011;

constexpr const char* kUserAgent = "/banscore-repro:1.0.0/";

/// Service flags.
constexpr std::uint64_t kNodeNetwork = 1;
constexpr std::uint64_t kNodeWitness = 1 << 3;

/// Hard cap on any message payload (Bitcoin's MAX_PROTOCOL_MESSAGE_LENGTH).
constexpr std::size_t kMaxProtocolMessageLength = 4'000'000;

/// Decode-side allocation bound. Every pre-allocation on the receive path
/// (frame assembly, var-bytes fields) is clamped by this constant rather than
/// by a length field an attacker controls; a declared length above it is
/// rejected as DecodeStatus::kOversize before any buffer is sized from it.
/// Kept as a separate name from kMaxProtocolMessageLength so the framing
/// bound can diverge from the consensus constant if the transport ever grows
/// its own envelope.
constexpr std::size_t kMaxFramePayload = kMaxProtocolMessageLength;

/// Oversize bounds with ban-score rules attached (Table I).
constexpr std::size_t kMaxAddrToSend = 1'000;        // ADDR
constexpr std::size_t kMaxInvEntries = 50'000;       // INV / GETDATA
constexpr std::size_t kMaxHeadersResults = 2'000;    // HEADERS
constexpr std::size_t kMaxBloomFilterSize = 36'000;  // FILTERLOAD, bytes
constexpr std::size_t kMaxScriptElementSize = 520;   // FILTERADD, bytes

/// Non-connecting HEADERS tolerated before the +20 misbehavior fires
/// (Bitcoin Core's MAX_UNCONNECTING_HEADERS).
constexpr int kMaxUnconnectingHeaders = 10;

/// The full set of 26 P2P message types from the developer reference.
enum class MsgType : std::uint8_t {
  kVersion = 0,
  kVerack,
  kAddr,
  kInv,
  kGetData,
  kNotFound,
  kGetBlocks,
  kGetHeaders,
  kHeaders,
  kTx,
  kBlock,
  kPing,
  kPong,
  kGetAddr,
  kMempool,
  kSendHeaders,
  kFeeFilter,
  kSendCmpct,
  kCmpctBlock,
  kGetBlockTxn,
  kBlockTxn,
  kFilterLoad,
  kFilterAdd,
  kFilterClear,
  kMerkleBlock,
  kReject,
  // Post-0.20 extension: the partition-resilience gossip tip-probe (a
  // compact tip-height/hash vector, per arXiv:2007.02287). Appended after
  // the paper's 26 types so every historical enum value, variant index, and
  // serialized command stays untouched; nodes that predate it simply ignore
  // the unknown "tipprobe" command, unpunished.
  kTipProbe,
};

constexpr std::size_t kNumMsgTypes = 27;
/// The size of the paper's original catalogue ("only 12 out of 26 message
/// types possess corresponding ban-score rules") — excludes kTipProbe.
constexpr std::size_t kNumPaperMsgTypes = 26;

/// All message types, in enum order (for parameterized sweeps).
const std::array<MsgType, kNumMsgTypes>& AllMsgTypes();

/// Wire command string ("version", "verack", ...).
const char* CommandName(MsgType type);

/// Reverse lookup; nullopt for unknown commands.
std::optional<MsgType> MsgTypeFromCommand(const std::string& command);

}  // namespace bsproto
