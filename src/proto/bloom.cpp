#include "proto/bloom.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/murmur3.hpp"
#include "proto/constants.hpp"
#include "util/serialize.hpp"

namespace bsproto {

namespace {
constexpr std::uint32_t kMaxHashFuncs = 50;
constexpr double kLn2Squared = 0.4804530139182014;  // ln(2)^2
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

BloomFilter::BloomFilter(std::size_t elements, double fp_rate, std::uint32_t tweak,
                         std::uint8_t flags)
    : tweak_(tweak), flags_(flags) {
  // Optimal sizing per BIP-37, clamped to the protocol maxima.
  const double n = static_cast<double>(std::max<std::size_t>(1, elements));
  const std::size_t size_bytes = static_cast<std::size_t>(
      std::min(-1.0 / kLn2Squared * n * std::log(fp_rate) / 8.0,
               static_cast<double>(kMaxBloomFilterSize)));
  bits_.assign(std::max<std::size_t>(1, size_bytes), 0);
  n_hash_funcs_ = static_cast<std::uint32_t>(
      std::min(static_cast<double>(bits_.size()) * 8.0 / n * kLn2,
               static_cast<double>(kMaxHashFuncs)));
  n_hash_funcs_ = std::max<std::uint32_t>(1, n_hash_funcs_);
}

std::optional<BloomFilter> BloomFilter::FromMessage(const FilterLoadMsg& msg) {
  if (msg.filter.empty() || msg.filter.size() > kMaxBloomFilterSize) return std::nullopt;
  if (msg.n_hash_funcs == 0 || msg.n_hash_funcs > kMaxHashFuncs) return std::nullopt;
  BloomFilter filter(1, 0.01, msg.n_tweak, msg.n_flags);
  filter.bits_ = msg.filter;
  filter.n_hash_funcs_ = msg.n_hash_funcs;
  return filter;
}

FilterLoadMsg BloomFilter::ToMessage() const {
  FilterLoadMsg msg;
  msg.filter = bits_;
  msg.n_hash_funcs = n_hash_funcs_;
  msg.n_tweak = tweak_;
  msg.n_flags = flags_;
  return msg;
}

std::uint32_t BloomFilter::HashTo(std::uint32_t n, bsutil::ByteSpan data) const {
  // BIP-37: seed_i = i * 0xFBA4C795 + nTweak.
  const std::uint32_t seed = n * 0xFBA4C795u + tweak_;
  return bscrypto::MurmurHash3(seed, data) % (static_cast<std::uint32_t>(bits_.size()) * 8);
}

void BloomFilter::Insert(bsutil::ByteSpan data) {
  for (std::uint32_t i = 0; i < n_hash_funcs_; ++i) {
    const std::uint32_t bit = HashTo(i, data);
    bits_[bit >> 3] |= static_cast<std::uint8_t>(1 << (bit & 7));
  }
}

bool BloomFilter::Contains(bsutil::ByteSpan data) const {
  for (std::uint32_t i = 0; i < n_hash_funcs_; ++i) {
    const std::uint32_t bit = HashTo(i, data);
    if ((bits_[bit >> 3] & (1 << (bit & 7))) == 0) return false;
  }
  return true;
}

bool BloomFilter::IsEmpty() const {
  return std::all_of(bits_.begin(), bits_.end(), [](std::uint8_t b) { return b == 0; });
}

bool BloomFilter::MatchesTx(const bschain::Transaction& tx) const {
  if (Contains(tx.Txid())) return true;
  // Output script data elements (our scripts are opaque blobs: match whole).
  for (const auto& out : tx.outputs) {
    if (!out.script_pubkey.empty() && Contains(out.script_pubkey)) return true;
  }
  // Spent outpoints, serialized txid||index as on the wire.
  for (const auto& in : tx.inputs) {
    bsutil::Writer w;
    in.prevout.Serialize(w);
    if (Contains(w.Data())) return true;
    if (!in.script_sig.empty() && Contains(in.script_sig)) return true;
  }
  return false;
}

}  // namespace bsproto
