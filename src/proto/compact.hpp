// BIP-152 compact-block helpers: short-id computation, building a compact
// block from a full block, and reconstruction/validation on the receiver
// side. Validation failures map to the CMPCTBLOCK "invalid compact block
// data" ban-score rule; GETBLOCKTXN index validation maps to its
// "out-of-bounds transaction indices" rule.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/block.hpp"
#include "proto/messages.hpp"

namespace bsproto {

/// 48-bit short transaction id. Bitcoin Core derives it with SipHash keyed by
/// (header, nonce); we substitute the low 48 bits of SHA256(txid || nonce),
/// which preserves the property that ids are unforgeable without the nonce
/// and collide with negligible probability at our block sizes.
std::uint64_t ShortTxId(const bscrypto::Hash256& txid, std::uint64_t nonce);

/// Build a compact block: the coinbase is prefilled (index 0), everything
/// else is sent as short ids, as Core does by default.
CmpctBlockMsg BuildCompactBlock(const bschain::Block& block, std::uint64_t nonce);

/// Why a compact block failed structural validation.
enum class CompactBlockError {
  kOk,
  kDuplicateShortIds,       // two identical short ids (unfillable)
  kPrefilledOutOfBounds,    // prefilled index beyond the implied tx count
  kEmpty,                   // neither short ids nor prefilled txs
};

/// Structural validation, independent of the mempool. This is the check whose
/// failure Bitcoin Core punishes with ban score 100 ("invalid compact block").
CompactBlockError CheckCompactBlock(const CmpctBlockMsg& msg);

/// Attempt reconstruction from a mempool-lookup function mapping short id to
/// a transaction (nullopt when unknown). Returns the full block when every
/// slot fills, otherwise nullopt with `missing_indexes` populated so the
/// caller can issue GETBLOCKTXN.
std::optional<bschain::Block> ReconstructBlock(
    const CmpctBlockMsg& msg,
    const std::vector<bschain::Transaction>& mempool_txs,
    std::vector<std::uint64_t>* missing_indexes);

}  // namespace bsproto
