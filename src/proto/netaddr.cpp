#include "proto/netaddr.hpp"

#include <array>
#include <cstdio>

namespace bsproto {

std::string Endpoint::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff, port);
  return buf;
}

std::uint32_t Endpoint::ParseIp(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4) return 0;
  if (a > 255 || b > 255 || c > 255 || d > 255) return 0;
  return (a << 24) | (b << 16) | (c << 8) | d;
}

void NetAddr::Serialize(bsutil::Writer& w) const {
  w.WriteU64(services);
  // 16-byte IPv4-mapped IPv6 address: 10 zero bytes, 0xff 0xff, then the
  // IPv4 address big-endian.
  std::array<std::uint8_t, 16> ip16 = {};
  ip16[10] = 0xff;
  ip16[11] = 0xff;
  ip16[12] = static_cast<std::uint8_t>(endpoint.ip >> 24);
  ip16[13] = static_cast<std::uint8_t>(endpoint.ip >> 16);
  ip16[14] = static_cast<std::uint8_t>(endpoint.ip >> 8);
  ip16[15] = static_cast<std::uint8_t>(endpoint.ip);
  w.WriteBytes(ip16);
  // Port is the protocol's lone big-endian field.
  w.WriteU8(static_cast<std::uint8_t>(endpoint.port >> 8));
  w.WriteU8(static_cast<std::uint8_t>(endpoint.port));
}

NetAddr NetAddr::Deserialize(bsutil::Reader& r) {
  NetAddr a;
  a.services = r.ReadU64();
  const auto ip16 = r.ReadBytes(16);
  a.endpoint.ip = static_cast<std::uint32_t>(ip16[12]) << 24 |
                  static_cast<std::uint32_t>(ip16[13]) << 16 |
                  static_cast<std::uint32_t>(ip16[14]) << 8 |
                  static_cast<std::uint32_t>(ip16[15]);
  const std::uint8_t hi = r.ReadU8();
  const std::uint8_t lo = r.ReadU8();
  a.endpoint.port = static_cast<std::uint16_t>(hi << 8 | lo);
  return a;
}

void TimedNetAddr::Serialize(bsutil::Writer& w) const {
  w.WriteU32(time);
  addr.Serialize(w);
}

TimedNetAddr TimedNetAddr::Deserialize(bsutil::Reader& r) {
  TimedNetAddr t;
  t.time = r.ReadU32();
  t.addr = NetAddr::Deserialize(r);
  return t;
}

}  // namespace bsproto
