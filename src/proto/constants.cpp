#include "proto/constants.hpp"

#include <unordered_map>

namespace bsproto {

const std::array<MsgType, kNumMsgTypes>& AllMsgTypes() {
  static const std::array<MsgType, kNumMsgTypes> kAll = {
      MsgType::kVersion,    MsgType::kVerack,     MsgType::kAddr,
      MsgType::kInv,        MsgType::kGetData,    MsgType::kNotFound,
      MsgType::kGetBlocks,  MsgType::kGetHeaders, MsgType::kHeaders,
      MsgType::kTx,         MsgType::kBlock,      MsgType::kPing,
      MsgType::kPong,       MsgType::kGetAddr,    MsgType::kMempool,
      MsgType::kSendHeaders, MsgType::kFeeFilter, MsgType::kSendCmpct,
      MsgType::kCmpctBlock, MsgType::kGetBlockTxn, MsgType::kBlockTxn,
      MsgType::kFilterLoad, MsgType::kFilterAdd,  MsgType::kFilterClear,
      MsgType::kMerkleBlock, MsgType::kReject,  MsgType::kTipProbe,
  };
  return kAll;
}

const char* CommandName(MsgType type) {
  switch (type) {
    case MsgType::kVersion: return "version";
    case MsgType::kVerack: return "verack";
    case MsgType::kAddr: return "addr";
    case MsgType::kInv: return "inv";
    case MsgType::kGetData: return "getdata";
    case MsgType::kNotFound: return "notfound";
    case MsgType::kGetBlocks: return "getblocks";
    case MsgType::kGetHeaders: return "getheaders";
    case MsgType::kHeaders: return "headers";
    case MsgType::kTx: return "tx";
    case MsgType::kBlock: return "block";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kGetAddr: return "getaddr";
    case MsgType::kMempool: return "mempool";
    case MsgType::kSendHeaders: return "sendheaders";
    case MsgType::kFeeFilter: return "feefilter";
    case MsgType::kSendCmpct: return "sendcmpct";
    case MsgType::kCmpctBlock: return "cmpctblock";
    case MsgType::kGetBlockTxn: return "getblocktxn";
    case MsgType::kBlockTxn: return "blocktxn";
    case MsgType::kFilterLoad: return "filterload";
    case MsgType::kFilterAdd: return "filteradd";
    case MsgType::kFilterClear: return "filterclear";
    case MsgType::kMerkleBlock: return "merkleblock";
    case MsgType::kReject: return "reject";
    case MsgType::kTipProbe: return "tipprobe";
  }
  return "?";
}

std::optional<MsgType> MsgTypeFromCommand(const std::string& command) {
  static const std::unordered_map<std::string, MsgType> kMap = [] {
    std::unordered_map<std::string, MsgType> m;
    for (MsgType t : AllMsgTypes()) m.emplace(CommandName(t), t);
    return m;
  }();
  const auto it = kMap.find(command);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

}  // namespace bsproto
