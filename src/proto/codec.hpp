// Wire framing: the 24-byte message header (magic / command / length /
// checksum) and encode/decode with checksum verification.
//
// The checksum check runs BEFORE any payload parsing or misbehavior
// tracking — exactly the ordering the paper's "forgoing ban score by
// constructing bogus messages" vector exploits: a message whose checksum does
// not match its payload is dropped with no ban-score consequence.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "proto/messages.hpp"
#include "util/bytes.hpp"

namespace bsproto {

constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kCommandSize = 12;

/// First 4 bytes of double-SHA256 over the payload.
std::array<std::uint8_t, 4> PayloadChecksum(bsutil::ByteSpan payload);

struct MessageHeader {
  std::uint32_t magic = 0;
  std::string command;  // up to 12 bytes, NUL padded on the wire
  std::uint32_t length = 0;
  std::array<std::uint8_t, 4> checksum = {};

  bsutil::ByteVec Serialize() const;
  /// Parses exactly kHeaderSize bytes; throws DeserializeError when shorter
  /// or when the command field contains bytes after a NUL terminator.
  static MessageHeader Deserialize(bsutil::ByteSpan data);
};

/// Encode a well-formed message: header with correct length and checksum,
/// then payload.
bsutil::ByteVec EncodeMessage(std::uint32_t magic, const Message& msg);

/// Encode raw bytes under an arbitrary command with an arbitrary checksum —
/// the attacker-side primitive for crafting bogus messages (wrong checksum,
/// unknown command, malformed payload).
bsutil::ByteVec EncodeRaw(std::uint32_t magic, const std::string& command,
                          bsutil::ByteSpan payload,
                          const std::array<std::uint8_t, 4>* forced_checksum = nullptr);

/// Decode outcome. The enum order reflects the processing pipeline: each
/// failure short-circuits everything after it.
enum class DecodeStatus {
  kOk,
  kNeedMoreData,     // incomplete header or payload
  kBadMagic,         // wrong network
  kOversize,         // declared length exceeds kMaxFramePayload
  kBadChecksum,      // dropped before any payload processing
  kUnknownCommand,   // parsed but not one of the 26 types (ignored, no ban)
  kMalformed,        // payload failed deserialization
};

/// Process-wide count of frames rejected for a declared length above
/// kMaxFramePayload. The node mirrors this into the
/// bs_codec_oversize_reject_total metric; tests and fuzz harnesses assert on
/// it directly.
std::uint64_t CodecOversizeRejects();

const char* ToString(DecodeStatus s);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMoreData;
  MessageHeader header;
  Message message;          // valid only when status == kOk
  std::size_t consumed = 0;  // bytes to drop from the stream
};

/// Decode one message from the front of `stream`. Consumes the full frame on
/// any header-complete outcome so the stream can resynchronize.
DecodeResult DecodeMessage(std::uint32_t magic, bsutil::ByteSpan stream);

/// Header-only view of the frame at the front of `stream` — command string,
/// the resolved MsgType when the command is known, and the full frame size
/// (header + declared payload). No checksum verification and no payload
/// parsing, so it is cheap enough for tracing instrumentation to label raw
/// frames (including deliberately bogus ones) at send time. Returns false
/// when the stream is shorter than a header or the magic mismatches.
struct FramePeek {
  std::string command;
  int msg_type = -1;  // static_cast<int>(MsgType) when known, -1 otherwise
  std::size_t frame_size = 0;
};
bool PeekFrame(std::uint32_t magic, bsutil::ByteSpan stream, FramePeek& out);

/// Incremental frame decoder over arbitrarily split input. Feed() accepts any
/// chunking of a byte stream — single bytes, whole frames, frame-and-a-half —
/// and Next() yields exactly the sequence of DecodeResults that DecodeMessage
/// would produce over the concatenated stream. Decoding itself is delegated to
/// DecodeMessage, so every status, consumed count, and side effect (including
/// the process-wide oversize counter) fires once per frame regardless of how
/// the bytes arrived.
class StreamDecoder {
 public:
  /// `max_buffer` bounds the bytes held across Feed() calls; 0 = unbounded.
  /// Since DecodeMessage never waits for more than a header plus
  /// kMaxFramePayload, any cap >= kHeaderSize + kMaxFramePayload never
  /// truncates; smaller caps drop the oldest buffered bytes (overflow_bytes_
  /// counts them) and are only for adversarial back-pressure tests.
  explicit StreamDecoder(std::uint32_t magic, std::size_t max_buffer = 0);

  /// Appends bytes to the reassembly buffer.
  void Feed(bsutil::ByteSpan data);

  /// Decodes the next frame if the buffer holds a header-complete outcome.
  /// Returns false (and leaves `out` untouched) when more bytes are needed.
  bool Next(DecodeResult& out);

  /// Additional bytes that must arrive before the front frame can complete:
  /// bytes-to-a-full-header when the header is partial, else
  /// bytes-to-the-declared-frame-end. 0 when Next() would succeed right now
  /// (including bad-magic / oversize frames, which decode without payload).
  std::size_t BytesNeeded() const;

  std::size_t BufferedBytes() const { return buffer_.size() - offset_; }
  std::uint64_t FramesDecoded() const { return frames_decoded_; }
  std::uint64_t OverflowBytes() const { return overflow_bytes_; }

 private:
  void Compact();

  std::uint32_t magic_;
  std::size_t max_buffer_;
  bsutil::ByteVec buffer_;
  std::size_t offset_ = 0;  // consumed prefix awaiting compaction
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t overflow_bytes_ = 0;
};

}  // namespace bsproto
