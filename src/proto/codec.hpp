// Wire framing: the 24-byte message header (magic / command / length /
// checksum) and encode/decode with checksum verification.
//
// The checksum check runs BEFORE any payload parsing or misbehavior
// tracking — exactly the ordering the paper's "forgoing ban score by
// constructing bogus messages" vector exploits: a message whose checksum does
// not match its payload is dropped with no ban-score consequence.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "proto/messages.hpp"
#include "util/bytes.hpp"

namespace bsproto {

constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kCommandSize = 12;

/// First 4 bytes of double-SHA256 over the payload.
std::array<std::uint8_t, 4> PayloadChecksum(bsutil::ByteSpan payload);

struct MessageHeader {
  std::uint32_t magic = 0;
  std::string command;  // up to 12 bytes, NUL padded on the wire
  std::uint32_t length = 0;
  std::array<std::uint8_t, 4> checksum = {};

  bsutil::ByteVec Serialize() const;
  /// Parses exactly kHeaderSize bytes; throws DeserializeError when shorter
  /// or when the command field contains bytes after a NUL terminator.
  static MessageHeader Deserialize(bsutil::ByteSpan data);
};

/// Encode a well-formed message: header with correct length and checksum,
/// then payload.
bsutil::ByteVec EncodeMessage(std::uint32_t magic, const Message& msg);

/// Encode raw bytes under an arbitrary command with an arbitrary checksum —
/// the attacker-side primitive for crafting bogus messages (wrong checksum,
/// unknown command, malformed payload).
bsutil::ByteVec EncodeRaw(std::uint32_t magic, const std::string& command,
                          bsutil::ByteSpan payload,
                          const std::array<std::uint8_t, 4>* forced_checksum = nullptr);

/// Decode outcome. The enum order reflects the processing pipeline: each
/// failure short-circuits everything after it.
enum class DecodeStatus {
  kOk,
  kNeedMoreData,     // incomplete header or payload
  kBadMagic,         // wrong network
  kOversize,         // declared length exceeds kMaxFramePayload
  kBadChecksum,      // dropped before any payload processing
  kUnknownCommand,   // parsed but not one of the 26 types (ignored, no ban)
  kMalformed,        // payload failed deserialization
};

/// Process-wide count of frames rejected for a declared length above
/// kMaxFramePayload. The node mirrors this into the
/// bs_codec_oversize_reject_total metric; tests and fuzz harnesses assert on
/// it directly.
std::uint64_t CodecOversizeRejects();

const char* ToString(DecodeStatus s);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMoreData;
  MessageHeader header;
  Message message;          // valid only when status == kOk
  std::size_t consumed = 0;  // bytes to drop from the stream
};

/// Decode one message from the front of `stream`. Consumes the full frame on
/// any header-complete outcome so the stream can resynchronize.
DecodeResult DecodeMessage(std::uint32_t magic, bsutil::ByteSpan stream);

/// Header-only view of the frame at the front of `stream` — command string,
/// the resolved MsgType when the command is known, and the full frame size
/// (header + declared payload). No checksum verification and no payload
/// parsing, so it is cheap enough for tracing instrumentation to label raw
/// frames (including deliberately bogus ones) at send time. Returns false
/// when the stream is shorter than a header or the magic mismatches.
struct FramePeek {
  std::string command;
  int msg_type = -1;  // static_cast<int>(MsgType) when known, -1 otherwise
  std::size_t frame_size = 0;
};
bool PeekFrame(std::uint32_t magic, bsutil::ByteSpan stream, FramePeek& out);

}  // namespace bsproto
