#include "proto/compact.hpp"

#include <unordered_map>
#include <unordered_set>

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace bsproto {

std::uint64_t ShortTxId(const bscrypto::Hash256& txid, std::uint64_t nonce) {
  bsutil::Writer w;
  txid.Serialize(w);
  w.WriteU64(nonce);
  const auto digest = bscrypto::Sha256::Hash(w.Data());
  std::uint64_t id = 0;
  for (int i = 0; i < 6; ++i) id |= static_cast<std::uint64_t>(digest[i]) << (8 * i);
  return id;
}

CmpctBlockMsg BuildCompactBlock(const bschain::Block& block, std::uint64_t nonce) {
  CmpctBlockMsg msg;
  msg.header = block.header;
  msg.nonce = nonce;
  if (!block.txs.empty()) {
    PrefilledTx coinbase;
    coinbase.index = 0;
    coinbase.tx = block.txs[0];
    msg.prefilled.push_back(std::move(coinbase));
    for (std::size_t i = 1; i < block.txs.size(); ++i) {
      msg.short_ids.push_back(ShortTxId(block.txs[i].Txid(), nonce));
    }
  }
  return msg;
}

CompactBlockError CheckCompactBlock(const CmpctBlockMsg& msg) {
  const std::size_t total = msg.short_ids.size() + msg.prefilled.size();
  if (total == 0) return CompactBlockError::kEmpty;

  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t id : msg.short_ids) {
    if (!seen.insert(id).second) return CompactBlockError::kDuplicateShortIds;
  }
  for (const auto& p : msg.prefilled) {
    if (p.index >= total) return CompactBlockError::kPrefilledOutOfBounds;
  }
  return CompactBlockError::kOk;
}

std::optional<bschain::Block> ReconstructBlock(
    const CmpctBlockMsg& msg, const std::vector<bschain::Transaction>& mempool_txs,
    std::vector<std::uint64_t>* missing_indexes) {
  if (missing_indexes) missing_indexes->clear();
  const std::size_t total = msg.short_ids.size() + msg.prefilled.size();

  std::vector<std::optional<bschain::Transaction>> slots(total);
  std::unordered_set<std::size_t> prefilled_slots;
  for (const auto& p : msg.prefilled) {
    if (p.index >= total) return std::nullopt;
    slots[p.index] = p.tx;
    prefilled_slots.insert(static_cast<std::size_t>(p.index));
  }

  std::unordered_map<std::uint64_t, bschain::Transaction> by_short_id;
  for (const auto& tx : mempool_txs) {
    by_short_id.emplace(ShortTxId(tx.Txid(), msg.nonce), tx);
  }

  std::size_t next_short = 0;
  bool complete = true;
  for (std::size_t i = 0; i < total; ++i) {
    if (prefilled_slots.contains(i)) continue;
    const std::uint64_t id = msg.short_ids[next_short++];
    const auto it = by_short_id.find(id);
    if (it != by_short_id.end()) {
      slots[i] = it->second;
    } else {
      complete = false;
      if (missing_indexes) missing_indexes->push_back(i);
    }
  }
  if (!complete) return std::nullopt;

  bschain::Block block;
  block.header = msg.header;
  block.txs.reserve(total);
  for (auto& slot : slots) block.txs.push_back(std::move(*slot));
  return block;
}

}  // namespace bsproto
