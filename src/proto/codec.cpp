#include "proto/codec.hpp"

#include <atomic>

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace bsproto {

namespace {
// Decode is a free function with no instance to hang a metrics handle on, so
// oversize rejections land in a process-wide relaxed counter; the node
// mirrors it into bs_codec_oversize_reject_total (and tests/fuzz harnesses
// read it directly).
std::atomic<std::uint64_t> g_oversize_rejects{0};
}  // namespace

std::uint64_t CodecOversizeRejects() {
  return g_oversize_rejects.load(std::memory_order_relaxed);
}

std::array<std::uint8_t, 4> PayloadChecksum(bsutil::ByteSpan payload) {
  const auto digest = bscrypto::Sha256::HashD(payload);
  return {digest[0], digest[1], digest[2], digest[3]};
}

bsutil::ByteVec MessageHeader::Serialize() const {
  bsutil::Writer w;
  w.WriteU32(magic);
  char cmd[kCommandSize] = {};
  for (std::size_t i = 0; i < command.size() && i < kCommandSize; ++i) cmd[i] = command[i];
  w.WriteBytes(bsutil::ByteSpan(reinterpret_cast<const std::uint8_t*>(cmd), kCommandSize));
  w.WriteU32(length);
  w.WriteBytes(checksum);
  return w.TakeData();
}

MessageHeader MessageHeader::Deserialize(bsutil::ByteSpan data) {
  bsutil::Reader r(data);
  MessageHeader h;
  h.magic = r.ReadU32();
  const auto cmd = r.ReadBytes(kCommandSize);
  std::size_t len = 0;
  while (len < kCommandSize && cmd[len] != 0) ++len;
  for (std::size_t i = len; i < kCommandSize; ++i) {
    if (cmd[i] != 0) throw bsutil::DeserializeError("command has bytes after NUL padding");
  }
  h.command.assign(cmd.begin(), cmd.begin() + static_cast<std::ptrdiff_t>(len));
  h.length = r.ReadU32();
  const auto ck = r.ReadBytes(4);
  std::copy(ck.begin(), ck.end(), h.checksum.begin());
  return h;
}

bsutil::ByteVec EncodeMessage(std::uint32_t magic, const Message& msg) {
  const bsutil::ByteVec payload = SerializePayload(msg);
  MessageHeader header;
  header.magic = magic;
  header.command = CommandName(MsgTypeOf(msg));
  header.length = static_cast<std::uint32_t>(payload.size());
  header.checksum = PayloadChecksum(payload);
  bsutil::ByteVec out = header.Serialize();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bsutil::ByteVec EncodeRaw(std::uint32_t magic, const std::string& command,
                          bsutil::ByteSpan payload,
                          const std::array<std::uint8_t, 4>* forced_checksum) {
  MessageHeader header;
  header.magic = magic;
  header.command = command;
  header.length = static_cast<std::uint32_t>(payload.size());
  header.checksum = forced_checksum ? *forced_checksum : PayloadChecksum(payload);
  bsutil::ByteVec out = header.Serialize();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

const char* ToString(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMoreData: return "need-more-data";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kOversize: return "oversize";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
    case DecodeStatus::kUnknownCommand: return "unknown-command";
    case DecodeStatus::kMalformed: return "malformed";
  }
  return "?";
}

DecodeResult DecodeMessage(std::uint32_t magic, bsutil::ByteSpan stream) {
  DecodeResult result;
  if (stream.size() < kHeaderSize) return result;  // kNeedMoreData, consumed 0

  try {
    result.header = MessageHeader::Deserialize(stream.subspan(0, kHeaderSize));
  } catch (const bsutil::DeserializeError&) {
    result.status = DecodeStatus::kMalformed;
    result.consumed = kHeaderSize;
    return result;
  }

  if (result.header.magic != magic) {
    result.status = DecodeStatus::kBadMagic;
    result.consumed = kHeaderSize;  // cannot trust length from a foreign frame
    return result;
  }
  if (result.header.length > kMaxFramePayload) {
    // Length-field lie: never size a buffer (or wait for payload bytes) off a
    // declared length beyond the frame bound.
    g_oversize_rejects.fetch_add(1, std::memory_order_relaxed);
    result.status = DecodeStatus::kOversize;
    result.consumed = kHeaderSize;
    return result;
  }
  if (stream.size() < kHeaderSize + result.header.length) return result;

  const bsutil::ByteSpan payload = stream.subspan(kHeaderSize, result.header.length);
  result.consumed = kHeaderSize + result.header.length;

  // Checksum gate: runs before anything looks at the payload, so a failed
  // checksum never reaches the misbehavior tracker (the bogus-message vector).
  if (PayloadChecksum(payload) != result.header.checksum) {
    result.status = DecodeStatus::kBadChecksum;
    return result;
  }

  const auto type = MsgTypeFromCommand(result.header.command);
  if (!type) {
    result.status = DecodeStatus::kUnknownCommand;
    return result;
  }

  try {
    result.message = DeserializePayload(*type, payload);
  } catch (const bsutil::DeserializeError&) {
    result.status = DecodeStatus::kMalformed;
    return result;
  }
  result.status = DecodeStatus::kOk;
  return result;
}

bool PeekFrame(std::uint32_t magic, bsutil::ByteSpan stream, FramePeek& out) {
  if (stream.size() < kHeaderSize) return false;
  MessageHeader header;
  try {
    header = MessageHeader::Deserialize(stream.subspan(0, kHeaderSize));
  } catch (const bsutil::DeserializeError&) {
    return false;
  }
  if (header.magic != magic) return false;
  out.command = header.command;
  const auto type = MsgTypeFromCommand(header.command);
  out.msg_type = type ? static_cast<int>(*type) : -1;
  out.frame_size = kHeaderSize + header.length;
  return true;
}

// ---------------------------------------------------------------------------
// StreamDecoder

StreamDecoder::StreamDecoder(std::uint32_t magic, std::size_t max_buffer)
    : magic_(magic), max_buffer_(max_buffer) {}

void StreamDecoder::Feed(bsutil::ByteSpan data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (max_buffer_ > 0 && BufferedBytes() > max_buffer_) {
    // Drop-oldest: the bytes that have waited longest are the ones a stalled
    // frame is sitting on; shedding them lets the decoder resynchronize on
    // whatever arrives next instead of wedging on a forever-partial frame.
    const std::size_t excess = BufferedBytes() - max_buffer_;
    offset_ += excess;
    overflow_bytes_ += excess;
  }
  Compact();
}

bool StreamDecoder::Next(DecodeResult& out) {
  const bsutil::ByteSpan remaining(buffer_.data() + offset_, BufferedBytes());
  if (remaining.size() < kHeaderSize) return false;
  DecodeResult result = DecodeMessage(magic_, remaining);
  if (result.status == DecodeStatus::kNeedMoreData) return false;
  offset_ += result.consumed;
  ++frames_decoded_;
  Compact();
  out = std::move(result);
  return true;
}

std::size_t StreamDecoder::BytesNeeded() const {
  const std::size_t remaining = BufferedBytes();
  if (remaining < kHeaderSize) return kHeaderSize - remaining;
  MessageHeader header;
  try {
    header = MessageHeader::Deserialize(
        bsutil::ByteSpan(buffer_.data() + offset_, kHeaderSize));
  } catch (const bsutil::DeserializeError&) {
    return 0;  // kMalformed decodes right now
  }
  // Bad magic and oversize frames resolve on the header alone — DecodeMessage
  // never waits for a payload it refuses to trust.
  if (header.magic != magic_) return 0;
  if (header.length > kMaxFramePayload) return 0;
  const std::size_t need = kHeaderSize + header.length;
  return remaining >= need ? 0 : need - remaining;
}

void StreamDecoder::Compact() {
  // Amortized O(1): only memmove once the dead prefix dominates the buffer.
  if (offset_ == 0) return;
  if (offset_ >= buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
    return;
  }
  if (offset_ < 4096 || offset_ < buffer_.size() / 2) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
  offset_ = 0;
}

}  // namespace bsproto
