// Network endpoints and the protocol's network-address records.
//
// An Endpoint is the connection identifier the ban-score mechanism bans: the
// paper's `[IP:Port]` pair. We model IPv4 addresses as 32-bit integers; on
// the wire they serialize in the protocol's 16-byte IPv4-mapped form.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/serialize.hpp"

namespace bsproto {

/// An [IP:Port] pair — the peer connection identifier.
struct Endpoint {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  bool operator==(const Endpoint&) const = default;
  auto operator<=>(const Endpoint&) const = default;

  std::string ToString() const;
  /// Parse dotted-quad "a.b.c.d" into the ip field (port unchanged);
  /// returns 0.0.0.0 on malformed input.
  static std::uint32_t ParseIp(const std::string& dotted);
};

struct EndpointHasher {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(e.ip) << 16) | e.port);
  }
};

/// Protocol network address: services + IP + port (no timestamp).
struct NetAddr {
  std::uint64_t services = 0;
  Endpoint endpoint;

  bool operator==(const NetAddr&) const = default;

  void Serialize(bsutil::Writer& w) const;
  static NetAddr Deserialize(bsutil::Reader& r);
};

/// Address record with the last-seen timestamp, as carried in ADDR messages.
struct TimedNetAddr {
  std::uint32_t time = 0;
  NetAddr addr;

  bool operator==(const TimedNetAddr&) const = default;

  void Serialize(bsutil::Writer& w) const;
  static TimedNetAddr Deserialize(bsutil::Reader& r);
};

}  // namespace bsproto
