// BIP-37 bloom filter — the object FILTERLOAD/FILTERADD configure, and the
// reason their ban-score rules bound the filter to 36000 bytes and data
// items to 520 bytes. Bit layout and hash derivation follow Bitcoin Core's
// CBloomFilter: hash i uses MurmurHash3 seeded with i*0xFBA4C795 + nTweak.
#pragma once

#include <cstdint>
#include <optional>

#include "chain/transaction.hpp"
#include "proto/messages.hpp"
#include "util/bytes.hpp"

namespace bsproto {

class BloomFilter {
 public:
  /// Dimension a filter for `elements` insertions at the given
  /// false-positive rate (clamped to the protocol's 36000-byte /
  /// 50-hash-function maxima, as Core does).
  BloomFilter(std::size_t elements, double fp_rate, std::uint32_t tweak,
              std::uint8_t flags = 0);

  /// Adopt a wire filter. Returns nullopt when it violates the protocol
  /// bounds (the caller punishes per Table I before ever calling this).
  static std::optional<BloomFilter> FromMessage(const FilterLoadMsg& msg);
  FilterLoadMsg ToMessage() const;

  void Insert(bsutil::ByteSpan data);
  void Insert(const bscrypto::Hash256& hash) { Insert(bsutil::ByteSpan(hash.Bytes())); }
  bool Contains(bsutil::ByteSpan data) const;
  bool Contains(const bscrypto::Hash256& hash) const {
    return Contains(bsutil::ByteSpan(hash.Bytes()));
  }

  /// SPV relevance test: matches the txid, any output script data element,
  /// or any spent outpoint (serialized as in Core's IsRelevantAndUpdate,
  /// without the update-on-match side effects).
  bool MatchesTx(const bschain::Transaction& tx) const;

  std::size_t SizeBytes() const { return bits_.size(); }
  std::uint32_t HashFunctions() const { return n_hash_funcs_; }
  bool IsEmpty() const;

 private:
  std::uint32_t HashTo(std::uint32_t n, bsutil::ByteSpan data) const;

  bsutil::ByteVec bits_;
  std::uint32_t n_hash_funcs_ = 0;
  std::uint32_t tweak_ = 0;
  std::uint8_t flags_ = 0;
};

}  // namespace bsproto
