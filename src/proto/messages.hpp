// Structs for all 26 P2P message types plus a variant holding any of them,
// and the payload (de)serialization entry points.
//
// Deserialization throws bsutil::DeserializeError on malformed payloads; the
// codec maps that to a decode failure. Collection-size limits with ban-score
// consequences (ADDR > 1000, INV/GETDATA > 50000, HEADERS > 2000, ...) are
// deliberately NOT enforced here: Bitcoin Core parses them successfully and
// then punishes via the misbehavior tracker, and our node layer does the
// same. Only hard structural bounds (payload length, CompactSize canonicity)
// abort the parse.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "crypto/hash256.hpp"
#include "proto/constants.hpp"
#include "proto/netaddr.hpp"

namespace bsproto {

/// Inventory item types (the subset our experiments exercise).
enum class InvType : std::uint32_t {
  kError = 0,
  kTx = 1,
  kBlock = 2,
  kFilteredBlock = 3,
  kCmpctBlock = 4,
  kWitnessTx = 0x40000001,
  kWitnessBlock = 0x40000002,
};

struct InvVect {
  InvType type = InvType::kError;
  bscrypto::Hash256 hash;

  bool operator==(const InvVect&) const = default;
};

// ---- Handshake ------------------------------------------------------------

struct VersionMsg {
  std::int32_t version = kProtocolVersion;
  std::uint64_t services = kNodeNetwork | kNodeWitness;
  std::int64_t timestamp = 0;
  NetAddr addr_recv;
  NetAddr addr_from;
  std::uint64_t nonce = 0;
  std::string user_agent = kUserAgent;
  std::int32_t start_height = 0;
  bool relay = true;

  bool operator==(const VersionMsg&) const = default;
};

struct VerackMsg {
  bool operator==(const VerackMsg&) const = default;
};

// ---- Address gossip --------------------------------------------------------

struct AddrMsg {
  std::vector<TimedNetAddr> addresses;
  bool operator==(const AddrMsg&) const = default;
};

struct GetAddrMsg {
  bool operator==(const GetAddrMsg&) const = default;
};

// ---- Inventory -------------------------------------------------------------

struct InvMsg {
  std::vector<InvVect> inventory;
  bool operator==(const InvMsg&) const = default;
};

struct GetDataMsg {
  std::vector<InvVect> inventory;
  bool operator==(const GetDataMsg&) const = default;
};

struct NotFoundMsg {
  std::vector<InvVect> inventory;
  bool operator==(const NotFoundMsg&) const = default;
};

// ---- Block/header sync -----------------------------------------------------

struct GetBlocksMsg {
  std::uint32_t version = kProtocolVersion;
  std::vector<bscrypto::Hash256> locator;
  bscrypto::Hash256 stop;
  bool operator==(const GetBlocksMsg&) const = default;
};

struct GetHeadersMsg {
  std::uint32_t version = kProtocolVersion;
  std::vector<bscrypto::Hash256> locator;
  bscrypto::Hash256 stop;
  bool operator==(const GetHeadersMsg&) const = default;
};

struct HeadersMsg {
  std::vector<bschain::BlockHeader> headers;
  bool operator==(const HeadersMsg&) const = default;
};

// ---- Data ------------------------------------------------------------------

struct TxMsg {
  bschain::Transaction tx;
  bool operator==(const TxMsg&) const = default;
};

struct BlockMsg {
  bschain::Block block;
  bool operator==(const BlockMsg&) const = default;
};

// ---- Keepalive & feature negotiation ----------------------------------------

struct PingMsg {
  std::uint64_t nonce = 0;
  bool operator==(const PingMsg&) const = default;
};

struct PongMsg {
  std::uint64_t nonce = 0;
  bool operator==(const PongMsg&) const = default;
};

struct MempoolMsg {
  bool operator==(const MempoolMsg&) const = default;
};

struct SendHeadersMsg {
  bool operator==(const SendHeadersMsg&) const = default;
};

struct FeeFilterMsg {
  std::int64_t feerate = 0;  // sat/kB
  bool operator==(const FeeFilterMsg&) const = default;
};

struct SendCmpctMsg {
  bool announce = false;
  std::uint64_t version = 1;
  bool operator==(const SendCmpctMsg&) const = default;
};

// ---- Compact blocks (BIP-152) -----------------------------------------------

struct PrefilledTx {
  std::uint64_t index = 0;  // differentially encoded on the wire
  bschain::Transaction tx;
  bool operator==(const PrefilledTx&) const = default;
};

struct CmpctBlockMsg {
  bschain::BlockHeader header;
  std::uint64_t nonce = 0;
  std::vector<std::uint64_t> short_ids;  // 6-byte ids, stored in low 48 bits
  std::vector<PrefilledTx> prefilled;
  bool operator==(const CmpctBlockMsg&) const = default;
};

struct GetBlockTxnMsg {
  bscrypto::Hash256 block_hash;
  std::vector<std::uint64_t> indexes;  // absolute indexes (differential on wire)
  bool operator==(const GetBlockTxnMsg&) const = default;
};

struct BlockTxnMsg {
  bscrypto::Hash256 block_hash;
  std::vector<bschain::Transaction> txs;
  bool operator==(const BlockTxnMsg&) const = default;
};

// ---- BIP-37 bloom filtering --------------------------------------------------

struct FilterLoadMsg {
  bsutil::ByteVec filter;
  std::uint32_t n_hash_funcs = 0;
  std::uint32_t n_tweak = 0;
  std::uint8_t n_flags = 0;
  bool operator==(const FilterLoadMsg&) const = default;
};

struct FilterAddMsg {
  bsutil::ByteVec data;
  bool operator==(const FilterAddMsg&) const = default;
};

struct FilterClearMsg {
  bool operator==(const FilterClearMsg&) const = default;
};

struct MerkleBlockMsg {
  bschain::BlockHeader header;
  std::uint32_t total_txs = 0;
  std::vector<bscrypto::Hash256> hashes;
  bsutil::ByteVec flags;
  bool operator==(const MerkleBlockMsg&) const = default;
};

// ---- Reject (deprecated in Core but in the 26-type catalogue) -----------------

struct RejectMsg {
  std::string message;  // command being rejected
  std::uint8_t code = 0x01;
  std::string reason;
  bsutil::ByteVec data;  // optional hash of the rejected object
  bool operator==(const RejectMsg&) const = default;
};

// ---- Partition-resilience gossip (post-0.20 extension) ------------------------

/// One sampled peer's claimed chain tip, as relayed in a TIPPROBE exchange.
struct TipEntry {
  std::int32_t height = 0;
  bscrypto::Hash256 hash;
  bool operator==(const TipEntry&) const = default;
};

/// Lightweight gossip tip-probe (arXiv:2007.02287): the sender's own tip
/// first, then a bounded vector of tips it recently heard from other sampled
/// peers. Cross-peer disagreement in the collected vectors is the partition
/// detector's third signal. Nonce pairs a probe with its response.
struct TipProbeMsg {
  std::uint64_t nonce = 0;
  std::vector<TipEntry> tips;
  bool operator==(const TipProbeMsg&) const = default;
};

/// Any protocol message. The variant order matches MsgType's enum order so
/// `Message::index() == static_cast<size_t>(MsgTypeOf(msg))`.
using Message =
    std::variant<VersionMsg, VerackMsg, AddrMsg, InvMsg, GetDataMsg, NotFoundMsg,
                 GetBlocksMsg, GetHeadersMsg, HeadersMsg, TxMsg, BlockMsg, PingMsg,
                 PongMsg, GetAddrMsg, MempoolMsg, SendHeadersMsg, FeeFilterMsg,
                 SendCmpctMsg, CmpctBlockMsg, GetBlockTxnMsg, BlockTxnMsg,
                 FilterLoadMsg, FilterAddMsg, FilterClearMsg, MerkleBlockMsg,
                 RejectMsg, TipProbeMsg>;

/// Message type tag of a variant value.
MsgType MsgTypeOf(const Message& msg);

/// Serialize the payload body (no header) of any message.
bsutil::ByteVec SerializePayload(const Message& msg);

/// Parse a payload body for the given type. Throws DeserializeError on
/// malformed input; also throws if trailing bytes remain after the message.
Message DeserializePayload(MsgType type, bsutil::ByteSpan payload);

}  // namespace bsproto
