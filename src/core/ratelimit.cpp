#include "core/ratelimit.hpp"

#include <algorithm>

namespace bsnet {

const char* ToString(PeerPriority p) {
  switch (p) {
    case PeerPriority::kLow: return "low";
    case PeerPriority::kNormal: return "normal";
    case PeerPriority::kHigh: return "high";
  }
  return "?";
}

void TokenBucket::Refill(bsim::SimTime now) {
  if (now <= last_refill_) return;
  tokens_ = std::min(capacity_,
                     tokens_ + fill_per_sec_ * bsim::ToSeconds(now - last_refill_));
  last_refill_ = now;
}

double TokenBucket::Available(bsim::SimTime now) {
  Refill(now);
  return tokens_;
}

bool TokenBucket::TryConsume(double cost, bsim::SimTime now, double floor) {
  Refill(now);
  if (tokens_ - cost < floor) return false;
  tokens_ -= cost;
  return true;
}

}  // namespace bsnet
