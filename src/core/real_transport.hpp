#pragma once

// RealTransport: the Transport seam on real non-blocking sockets.
//
// Every syscall goes through bsim::SocketApi, so the whole backend runs
// identically over the kernel (RealSocketApi) or under seeded fault
// injection (FaultSocketApi) — EAGAIN storms, connection resets, short
// writes, accept failures and half-open blackholes are all reachable from a
// unit test. Robustness posture, matching the routing-attack literature's
// assumptions about a messy substrate:
//
//   - incremental reads: partial frames accumulate in Node's reassembly
//     buffer; the read loop drains until EAGAIN with a per-wakeup budget so
//     one firehose peer cannot starve the rest;
//   - bounded write queues: each connection queues at most
//     max_write_queue_bytes; overflow sheds the *oldest* whole frames
//     (never a partially written one, so the receiver's decoder stays in
//     sync) rather than growing without bound or blocking the loop;
//   - supervised connects: non-blocking connect with a hard timeout timer;
//     refusal, timeout and reset all surface as on_connected(false), which
//     feeds Node's capped exponential backoff;
//   - dead peers: a blackholed (half-open) connection produces no error —
//     only Node's ping watchdog can see it, which is exactly the layering
//     the paper's misbehavior machinery expects.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/event_loop.hpp"
#include "core/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/faultsock.hpp"

namespace bsnet {

struct RealTransportConfig {
  /// The node's own listen identity; IsSelf() compares against the full
  /// (ip, port) pair because loopback cluster members share one IP.
  std::uint32_t bind_ip = 0x7f000001;  // 127.0.0.1
  std::uint16_t bind_port = 8333;
  /// Outbound connects that have not established by then fail.
  bsim::SimTime connect_timeout = 5 * bsim::kSecond;
  /// Per-connection write-queue cap; overflow sheds oldest whole frames.
  std::size_t max_write_queue_bytes = 8 * 1024 * 1024;
  /// Per-connection no-sink receive buffering cap (drop-oldest).
  std::size_t recv_buffer_cap = 4 * 1024 * 1024;
  /// Max bytes drained from one connection per epoll wakeup (fairness).
  std::size_t read_budget_per_wakeup = 256 * 1024;
  /// Optional registry for bs_rt_* counters. Not owned.
  bsobs::MetricsRegistry* metrics = nullptr;
};

class RealTransport;

class RealConn final : public TransportConn {
 public:
  enum class State { kConnecting, kEstablished, kClosed };

  bsproto::Endpoint Local() const override { return local_; }
  bsproto::Endpoint Remote() const override { return remote_; }
  bool IsInbound() const override { return inbound_; }
  bool IsEstablished() const override { return state_ == State::kEstablished; }
  void SetDataSink(std::function<void(bsutil::ByteSpan)> sink) override;
  void Send(bsutil::ByteSpan data) override;
  void Close() override;
  void Reset() override;
  void SetReceiveBufferCap(std::size_t cap) override { recv_buffer_cap_ = cap; }

  State GetState() const { return state_; }
  std::size_t QueuedBytes() const { return queued_bytes_; }
  std::uint64_t FramesShed() const { return frames_shed_; }
  std::uint64_t BytesShed() const { return bytes_shed_; }
  std::uint64_t PartialWrites() const { return partial_writes_; }

 private:
  friend class RealTransport;

  RealConn(RealTransport& transport, std::uint64_t id, int fd, bool inbound,
           bsproto::Endpoint local, bsproto::Endpoint remote, State state);

  /// One queued Send() unit — Node emits exactly one wire frame per call,
  /// so shedding whole units keeps the peer's decoder on a frame boundary.
  struct Frame {
    bsutil::ByteVec data;
  };

  RealTransport& transport_;
  std::uint64_t id_;
  int fd_;
  bool inbound_;
  bsproto::Endpoint local_;
  bsproto::Endpoint remote_;
  State state_;

  std::function<void(bsutil::ByteSpan)> on_data_;
  bsutil::ByteVec rx_pending_;  // bytes arrived before a sink was wired
  std::size_t recv_buffer_cap_;

  std::deque<Frame> write_queue_;
  /// Set when a fatal send error was seen inside a synchronous Send() call
  /// stack; the actual Teardown runs one loop turn later (see DeferTeardown).
  bool teardown_deferred_ = false;
  std::size_t front_offset_ = 0;  // bytes of the front frame already sent
  std::size_t queued_bytes_ = 0;
  std::uint64_t frames_shed_ = 0;
  std::uint64_t bytes_shed_ = 0;
  std::uint64_t partial_writes_ = 0;
};

class RealTransport : public Transport {
 public:
  RealTransport(EventLoop& loop, bsim::SocketApi& api, RealTransportConfig config);
  ~RealTransport() override;

  std::uint32_t Ip() const override { return config_.bind_ip; }
  void Listen(std::uint16_t port, AcceptCallback on_accept) override;
  void StopListening(std::uint16_t port) override;
  TransportConn* Connect(const bsproto::Endpoint& remote) override;
  bool IsSelf(const bsproto::Endpoint& ep) const override {
    return ep.ip == config_.bind_ip && ep.port == config_.bind_port;
  }
  void Abandon() override;

  /// 0 when the last Listen() succeeded, else the -errno it died on (the
  /// daemon checks this; Node::Start has no failure channel).
  int LastListenError() const { return last_listen_error_; }
  /// The port the kernel actually assigned (differs from the request only
  /// for Listen(0), which tests use to dodge port collisions).
  std::uint16_t BoundPort(std::uint16_t requested) const;

  std::size_t ConnCount() const { return conns_.size(); }
  /// Connections still mid-connect — the chaos sweep asserts this drains to
  /// zero once the connect timeout has elapsed (nothing wedges half-dialed).
  std::size_t PendingConnects() const {
    std::size_t pending = 0;
    for (const auto& [id, conn] : conns_) {
      if (conn->GetState() == RealConn::State::kConnecting) ++pending;
    }
    return pending;
  }
  std::uint64_t Accepts() const { return accepts_; }
  std::uint64_t ConnectFailures() const { return connect_failures_; }
  std::uint64_t ConnectTimeouts() const { return connect_timeouts_; }
  std::uint64_t Teardowns() const { return teardowns_; }
  std::uint64_t BytesIn() const { return bytes_in_; }
  std::uint64_t BytesOut() const { return bytes_out_; }
  std::uint64_t FramesShed() const { return frames_shed_; }
  std::uint64_t SendEagain() const { return send_eagain_; }

  EventLoop& Loop() { return loop_; }

 private:
  friend class RealConn;

  struct Listener {
    int fd = -1;
    std::uint16_t bound_port = 0;
    AcceptCallback on_accept;
  };

  void HandleAccept(std::uint16_t port);
  void HandleConnEvents(std::uint64_t id, std::uint32_t events);
  void FinishConnect(RealConn& conn);
  void ReadReady(RealConn& conn);
  void FlushQueue(RealConn& conn);
  /// Schedules Teardown for the next loop turn — the only safe reaction to a
  /// fatal error discovered inside a synchronous Send() call stack.
  void DeferTeardown(RealConn& conn);
  void UpdateWriteInterest(RealConn& conn);
  /// Fails a connecting conn: on_connected(false), then retire.
  void FailConnect(RealConn& conn);
  /// Tears down an established conn: on_closed, then retire.
  void Teardown(RealConn& conn);
  /// Closes the fd, detaches from epoll, and defers deletion one loop turn
  /// so the object survives the callback stack that triggered the retire.
  void Retire(RealConn& conn);
  void DrainGraveyard();

  EventLoop& loop_;
  bsim::SocketApi& api_;
  RealTransportConfig config_;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<RealConn>> conns_;
  std::vector<std::unique_ptr<RealConn>> graveyard_;
  bool graveyard_drain_scheduled_ = false;
  std::unordered_map<std::uint16_t, Listener> listeners_;
  int last_listen_error_ = 0;

  std::uint64_t accepts_ = 0;
  std::uint64_t connect_failures_ = 0;
  std::uint64_t connect_timeouts_ = 0;
  std::uint64_t teardowns_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::uint64_t frames_shed_ = 0;
  std::uint64_t send_eagain_ = 0;

  bsobs::Counter* m_accepts_ = nullptr;
  bsobs::Counter* m_connect_failures_ = nullptr;
  bsobs::Counter* m_teardowns_ = nullptr;
  bsobs::Counter* m_bytes_in_ = nullptr;
  bsobs::Counter* m_bytes_out_ = nullptr;
  bsobs::Counter* m_frames_shed_ = nullptr;
};

}  // namespace bsnet
