#pragma once

// Line-oriented JSON RPC control plane for the bsnetd daemon. One request
// object per line in, one response object per line out, over a loopback TCP
// socket:
//
//   {"method":"getinfo"}
//   {"method":"getpeerinfo"}
//   {"method":"banlist"}
//   {"method":"metrics"}
//   {"method":"setban","ip":"127.0.0.1","port":9001,"seconds":3600}
//   {"method":"setban","ip":"127.0.0.1","port":9001,"remove":true}
//   {"method":"stop"}
//
// The server shares the daemon's single-threaded EventLoop and goes through
// the same SocketApi seam as RealTransport, so fault-injection tests cover
// the control plane too. RpcClient is the matching blocking helper used by
// the testbed supervisor and tests (its own private socket, no EventLoop).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/event_loop.hpp"
#include "core/node.hpp"
#include "sim/faultsock.hpp"

namespace bsnet {

class RpcServer {
 public:
  /// Binds 127.0.0.1:`port` immediately. Check ListenError() after
  /// construction; all other failures are per-client and non-fatal.
  RpcServer(EventLoop& loop, bsim::SocketApi& api, Node& node,
            std::uint16_t port);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  int ListenError() const { return listen_error_; }
  /// The bound port (meaningful for port 0 requests).
  std::uint16_t Port() const { return port_; }

  /// True once a "stop" request has been received. The daemon polls this
  /// from its run loop; on_stop (if set) fires as well.
  bool StopRequested() const { return stop_requested_; }
  std::function<void()> on_stop;

  std::uint64_t RequestsServed() const { return requests_served_; }

 private:
  struct Client {
    int fd = -1;
    std::string in;
    std::string out;
  };

  void HandleAccept();
  void HandleClient(int fd, std::uint32_t events);
  void FlushClient(Client& client);
  void CloseClient(int fd);
  std::string Dispatch(const std::string& line);

  EventLoop& loop_;
  bsim::SocketApi& api_;
  Node& node_;
  int listen_fd_ = -1;
  int listen_error_ = 0;
  std::uint16_t port_ = 0;
  bool stop_requested_ = false;
  std::uint64_t requests_served_ = 0;
  std::unordered_map<int, Client> clients_;
};

/// Blocking one-shot RPC call: connect to 127.0.0.1:`port`, send `request`
/// plus newline, read one response line. nullopt on connect failure or
/// timeout. Runs on plain blocking sockets — safe from any process that is
/// not the daemon's event loop thread.
std::optional<std::string> RpcCall(std::uint16_t port, const std::string& request,
                                   int timeout_ms = 2000);

/// Dotted-quad formatting for "addr" fields ("10.0.0.1:8333").
std::string FormatEndpoint(const bsproto::Endpoint& ep);
/// Parses "a.b.c.d" into a host-order IPv4 address; nullopt on syntax error.
std::optional<std::uint32_t> ParseIp(const std::string& text);

}  // namespace bsnet
