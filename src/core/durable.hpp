// DurableNodeState — the bridge between the node's volatile security state
// (BanMan, MisbehaviorTracker, AddrMan, the detect engine's learned baseline)
// and the crash-consistent StateStore.
//
// Lifecycle: construct over the live components, Open(now) once. Open replays
// the newest durable generation into the components (snapshot records restore
// whole tables; WAL records re-apply individual mutations via the components'
// silent Restore* paths), then wires the components' on_* hooks so every
// subsequent mutation journals itself as one committed transaction. Replay
// never fires hooks, so recovery cannot re-journal what it reads.
//
// The detect baseline crosses this layer as an opaque byte payload
// (StatEngine::SerializeProfile / LoadProfile) — bsnet cannot depend on
// bsdetect without a cycle, and the store does not need to understand the
// profile to keep it durable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/addrman.hpp"
#include "core/banman.hpp"
#include "core/misbehavior.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "store/store.hpp"
#include "util/bytes.hpp"

namespace bsnet {

class DurableNodeState {
 public:
  // Record types in the store. Snapshot records carry a whole serialized
  // table; WAL records carry one mutation.
  static constexpr std::uint8_t kBanSnapshot = 1;    // BanMan::Serialize
  static constexpr std::uint8_t kScoreSnapshot = 2;  // MisbehaviorTracker::Serialize
  static constexpr std::uint8_t kAddrSnapshot = 3;   // AddrMan::Serialize
  static constexpr std::uint8_t kDetectBaseline = 4; // opaque StatEngine profile
  static constexpr std::uint8_t kBanUpsert = 5;      // ip u32 | port u16 | until i64
  static constexpr std::uint8_t kBanRemove = 6;      // ip u32 | port u16
  static constexpr std::uint8_t kScoreUpsert = 7;    // id u64 | mis i64 | good i64
  static constexpr std::uint8_t kScoreForget = 8;    // id u64
  static constexpr std::uint8_t kAddrAdd = 9;        // ip u32 | port u16
  static constexpr std::uint8_t kAddrRemove = 10;    // ip u32 | port u16
  static constexpr std::uint8_t kAddrGood = 11;      // ip u32 | port u16 | at i64
  static constexpr std::uint8_t kAnchors = 12;       // count | (ip u32 | port u16)*

  /// `fs` and the components must outlive this object.
  DurableNodeState(bsstore::StoreFs& fs, std::string dir, BanMan& bans,
                   MisbehaviorTracker& tracker, AddrMan& addrs);
  ~DurableNodeState();
  DurableNodeState(const DurableNodeState&) = delete;
  DurableNodeState& operator=(const DurableNodeState&) = delete;

  /// Forwarded to the store; attach before Open to capture replay counts.
  void AttachMetrics(bsobs::MetricsRegistry& registry);
  void SetCompactThreshold(std::size_t txns) { store_.SetCompactThreshold(txns); }

  /// Replay durable state into the components (bans already expired at `now`
  /// are dropped and counted), then wire the live hooks. False when the
  /// store cannot come up; the components then run volatile, as before.
  bool Open(bsim::SimTime now);
  bool IsOpen() const { return store_.IsOpen(); }

  /// Persist the detect engine's serialized profile (one transaction); an
  /// empty payload clears it. The latest payload rides every snapshot.
  bool SetDetectBaseline(bsutil::ByteSpan payload);
  /// The replayed/last-set baseline payload (empty when none).
  const bsutil::ByteVec& DetectBaseline() const { return baseline_; }

  /// Persist the node's anchor peers — the last-known-good outbound
  /// endpoints re-dialed first after a restart. Overwrites the previous set.
  bool SetAnchors(const std::vector<Endpoint>& anchors);
  /// The replayed/last-set anchor list (empty when none).
  const std::vector<Endpoint>& Anchors() const { return anchors_; }

  /// Force a snapshot + new generation now (e.g. on clean shutdown).
  bool Flush() { return store_.IsOpen() && store_.CompactNow(); }

  bsstore::StateStore& Store() { return store_; }
  const bsstore::StateStore& Store() const { return store_; }

 private:
  void ReplayRecord(std::uint8_t type, bsutil::ByteSpan payload,
                    bsim::SimTime now);
  void EmitSnapshot(const bsstore::StateStore::SnapshotSink& sink) const;
  void WireHooks();

  bsstore::StateStore store_;
  BanMan& bans_;
  MisbehaviorTracker& tracker_;
  AddrMan& addrs_;
  bsutil::ByteVec baseline_;
  std::vector<Endpoint> anchors_;
};

}  // namespace bsnet
