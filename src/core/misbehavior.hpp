// Misbehavior tracking — our reimplementation of PeerManager::Misbehaving
// plus the countermeasure policies the paper proposes in §VIII:
//
//   kBanScore          — stock behaviour: accumulate, ban at threshold.
//   kThresholdInfinity — "ban score threshold to ∞": keep tracking, never
//                        ban (the lines-1059-1062-commented-out variant).
//   kDisabled          — "disabling the checking": Misbehaving is a no-op
//                        (the whole-function-commented-out variant).
//   kGoodScore         — the good-score mechanism: peers that have delivered
//                        valid blocks accrue credit; a peer whose good score
//                        meets the exemption threshold is never banned.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "core/rules.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace bsnet {

enum class BanPolicy { kBanScore, kThresholdInfinity, kDisabled, kGoodScore };

const char* ToString(BanPolicy p);

/// Per-peer score state.
struct PeerScore {
  int misbehavior = 0;
  int good_score = 0;
  std::uint64_t last_touch = 0;  // LRU sequence, for the entry cap
};

/// What Misbehaving() decided.
struct MisbehaviorOutcome {
  bool rule_applied = false;  // a rule existed in this version and scope matched
  int score_delta = 0;
  int total_score = 0;
  bool should_ban = false;  // threshold crossed and policy allows banning
};

/// Tracks scores per peer id. The node owns one tracker; peer ids are the
/// node's internal peer identifiers (score state dies with the connection,
/// as in Core — the *ban* outlives it via BanMan).
class MisbehaviorTracker {
 public:
  MisbehaviorTracker(CoreVersion version, BanPolicy policy, int threshold,
                     int good_score_exemption = 1)
      : version_(version),
        policy_(policy),
        threshold_(threshold),
        good_score_exemption_(good_score_exemption) {}

  CoreVersion Version() const { return version_; }
  BanPolicy Policy() const { return policy_; }
  int Threshold() const { return threshold_; }

  /// Publish score-plane metrics into `registry` (bs_ban_score_* series).
  void AttachMetrics(bsobs::MetricsRegistry& registry);

  /// Attribute `what` to peer `peer_id` (whose direction is `inbound`).
  /// Applies version/scope gating, the active policy, and threshold logic.
  MisbehaviorOutcome Misbehaving(std::uint64_t peer_id, bool inbound, Misbehavior what);

  /// Good-score credit (valid BLOCK delivered), per §VIII.
  void AddGoodScore(std::uint64_t peer_id, int delta = 1);

  int Score(std::uint64_t peer_id) const;
  int GoodScore(std::uint64_t peer_id) const;

  /// Drop a disconnected peer's state.
  void Forget(std::uint64_t peer_id);

  /// Durable-store hook: fired whenever a peer's score pair changes
  /// (Misbehaving / AddGoodScore). Restore paths never fire it.
  std::function<void(std::uint64_t peer_id, int misbehavior, int good_score)>
      on_change;
  /// Durable-store hook: fired when a peer's state is dropped (Forget or an
  /// LRU prune). Restore paths never fire it.
  std::function<void(std::uint64_t peer_id)> on_forget;

  /// Replay path (WAL kScoreUpsert): apply persisted scores without firing
  /// hooks or counting fresh score events.
  void RestoreScore(std::uint64_t peer_id, int misbehavior, int good_score);
  /// Replay path (WAL kScoreForget): silent erase.
  void RestoreForget(std::uint64_t peer_id) {
    scores_.erase(peer_id);
    UpdateEntriesGauge();
  }

  // ---- Persistence ----
  /// Serialize all tracked peers (id, misbehavior, good_score). LRU stamps
  /// are transient and not persisted; a restored tracker starts a fresh
  /// recency order.
  bsutil::ByteVec Serialize() const;
  /// Replace current contents with a serialized score table. Returns false
  /// on malformed input (contents are then unchanged).
  bool Deserialize(bsutil::ByteSpan data);

  /// Cap on tracked peers (0 = unbounded). The node always calls Forget on
  /// disconnect, so in steady state the map tracks live peers only — but a
  /// Sybil reconnect storm races peer registration against teardown, and any
  /// future caller that skips Forget would leak. The cap is the backstop:
  /// when an insert would exceed it, the least-recently-touched entry is
  /// pruned (counted in bs_ban_scores_pruned_total).
  void SetMaxEntries(std::size_t cap) { max_entries_ = cap; }
  std::size_t MaxEntries() const { return max_entries_; }
  /// Peers currently tracked.
  std::size_t Size() const { return scores_.size(); }

 private:
  /// Find-or-insert `peer_id`, stamping its LRU sequence and pruning at the
  /// entry cap.
  PeerScore& Touch(std::uint64_t peer_id);
  void PruneLru();
  void UpdateEntriesGauge();

  CoreVersion version_;
  BanPolicy policy_;
  int threshold_;
  int good_score_exemption_;
  std::size_t max_entries_ = 0;
  std::uint64_t touch_seq_ = 0;
  std::unordered_map<std::uint64_t, PeerScore> scores_;

  // Observability handles (null until AttachMetrics).
  bsobs::Counter* m_score_events_total_ = nullptr;
  bsobs::Counter* m_score_points_total_ = nullptr;
  bsobs::Counter* m_threshold_crossings_total_ = nullptr;
  bsobs::Counter* m_good_score_points_total_ = nullptr;
  bsobs::Counter* m_scores_pruned_total_ = nullptr;
  bsobs::Gauge* m_entries_gauge_ = nullptr;
};

}  // namespace bsnet
