// Routing-partition detection — the PartitionMonitor behind
// NodeConfig::enable_partition_resilience.
//
// A BGP-level routing adversary (Hijacking Bitcoin, arXiv:1605.07524) does
// not sever links; it detours them, so a partitioned node still completes
// handshakes and still exchanges traffic — everything merely crawls, and the
// node quietly falls behind the global tip while each individual signal
// (a slow peer here, a late block there) looks like ordinary jitter. The
// monitor fuses three weak signals into one partition-suspicion score:
//
//   1. Block-arrival staleness — time since the tip last advanced, measured
//      against an EWMA of observed inter-block intervals (so a chain that
//      naturally mines every 3 s and one that mines every 10 min are judged
//      on their own cadence).
//   2. Netgroup-diversity drawdown — distinct /16 groups across the live
//      outbound set against the high-watermark the node has ever held; a
//      routing cut shears off whole netgroups at once, organic churn does not.
//   3. Tip-probe disagreement — cross-peer divergence of the best tip height
//      reported in gossip tip-probe replies (proto kTipProbe, a compact
//      height/hash vector per arXiv:2007.02287). A reachable peer reporting a
//      tip several blocks ahead is direct evidence the node is on the losing
//      side of a partition.
//
// The monitor is a pure state machine: the Node feeds it observations and
// polls Update() on its maintenance tick; it owns no connections, draws no
// randomness, and is unit-testable in isolation. Sustained high suspicion
// walks a graduated recovery ladder (feeler burst → anchor re-dial →
// emergency outbound slot → divergent-peer rotation) with hysteresis, so a
// single late block cannot trigger connection churn.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/time.hpp"

namespace bsnet {

/// Tuning for the PartitionMonitor (NodeConfig carries the user-facing
/// switches and copies them in here).
struct PartitionParams {
  /// Prior for the inter-block EWMA before any arrival is observed.
  bsim::SimTime expected_block_interval = 3 * bsim::kSecond;
  /// EWMA smoothing factor for observed inter-block intervals.
  double ewma_alpha = 0.3;
  /// The staleness signal saturates at stale_multiple × EWMA without a tip
  /// advance (below one EWMA interval it contributes nothing).
  double stale_multiple = 4.0;
  /// Height gap to a probe-reported tip that counts as divergence.
  int divergence_blocks = 2;
  /// Probe observations older than this are dropped from the divergence set.
  bsim::SimTime probe_freshness = 30 * bsim::kSecond;
  /// Suspicion hysteresis band: the high threshold arms the recovery ladder,
  /// the low threshold disarms it.
  double suspicion_high = 0.5;
  double suspicion_low = 0.2;
  /// Time at sustained high suspicion before each successive ladder stage.
  bsim::SimTime ladder_step = 10 * bsim::kSecond;
  /// Signal fusion weights (need not sum to 1; suspicion is clamped to [0,1]).
  double weight_stale = 0.45;
  double weight_diversity = 0.15;
  double weight_divergence = 0.55;
};

class PartitionMonitor {
 public:
  /// Recovery-ladder stages, in escalation order. Each stage implies the ones
  /// before it stayed insufficient for another ladder_step.
  enum class Stage : int {
    kNone = 0,
    kFeelerBurst = 1,    // probe unrepresented netgroups
    kAnchorRedial = 2,   // re-dial last-known-good anchors
    kEmergencySlot = 3,  // open one extra diversity-constrained outbound
    kRotate = 4,         // drop the most tip-divergent outbound peer
  };

  explicit PartitionMonitor(PartitionParams params) : params_(params) {}

  const PartitionParams& Params() const { return params_; }

  /// The chain tip advanced to `height` at `now`: feeds the inter-block EWMA
  /// and resets the staleness clock.
  void OnTipAdvance(bsim::SimTime now, int height);

  /// A tip-probe exchange reported `remote_height` as `peer_id`'s best tip.
  void OnProbeObservation(bsim::SimTime now, std::uint64_t peer_id,
                          std::int32_t remote_height);

  /// The peer disconnected; its divergence observation must not linger.
  void ForgetPeer(std::uint64_t peer_id);

  /// Current distinct /16 count across live outbound slots. The watermark
  /// (the most diversity ever held) only ratchets up.
  void NoteNetgroupDiversity(std::size_t distinct_groups);

  /// Recompute the fused suspicion at `now` with our tip at `our_height`,
  /// advance/retreat the hysteresis state and the ladder clock. Returns the
  /// new suspicion. `recovered` (optional out) is set true on the tick the
  /// monitor de-escalates from high back to calm.
  double Update(bsim::SimTime now, int our_height, bool* recovered = nullptr);

  double Suspicion() const { return suspicion_; }
  bool SuspicionHigh() const { return high_; }
  /// Time the current high-suspicion window opened (0 when calm).
  bsim::SimTime HighSince() const { return high_ ? high_since_ : 0; }
  Stage CurrentStage() const { return stage_; }

  /// Individual signal components of the last Update (for metrics/tests).
  double StaleSignal() const { return stale_signal_; }
  double DiversitySignal() const { return diversity_signal_; }
  double DivergenceSignal() const { return divergence_signal_; }
  bsim::SimTime InterBlockEwma() const { return ewma_interval_; }

  /// Best tip height reported by any fresh probe observation, or nullopt.
  std::optional<std::int32_t> BestRemoteHeight() const;
  /// The peer with the lowest fresh reported tip — the rotation candidate
  /// most likely stuck on our side of the cut (nullopt when no fresh
  /// observation trails `our_height`).
  std::optional<std::uint64_t> MostDivergentPeer(int our_height) const;

  /// Drop all transient state (crash/stop path).
  void Reset();

 private:
  void PruneStale(bsim::SimTime now);

  struct Observation {
    bsim::SimTime time = 0;
    std::int32_t height = 0;
  };

  PartitionParams params_;
  bsim::SimTime ewma_interval_ = 0;  // 0 until armed by OnTipAdvance/Update
  bsim::SimTime last_tip_advance_ = 0;
  int tip_height_ = 0;
  std::size_t diversity_watermark_ = 0;
  std::size_t diversity_current_ = 0;
  std::unordered_map<std::uint64_t, Observation> observations_;

  double suspicion_ = 0.0;
  double stale_signal_ = 0.0;
  double diversity_signal_ = 0.0;
  double divergence_signal_ = 0.0;
  bool high_ = false;
  bsim::SimTime high_since_ = 0;
  bsim::SimTime last_update_ = 0;
  Stage stage_ = Stage::kNone;
};

const char* ToString(PartitionMonitor::Stage stage);

}  // namespace bsnet
