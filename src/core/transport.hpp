#pragma once

// Transport seam between Node and the substrate that moves its bytes.
//
// Node speaks only to these two interfaces; the discrete-event simulator
// (SimTransport over bsim::Network/TcpConnection) and the real-socket
// backend (RealTransport over epoll + SocketApi) both implement them.
// The header is intentionally dependency-light (bsproto + bsutil only) so
// bsim::TcpConnection can inherit TransportConn directly without creating
// a bsim -> bsnet link cycle: the sim connection *is* a transport
// connection, which keeps the extraction bit-identical for the paper
// benches — no wrapper objects, no extra scheduler events.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "proto/netaddr.hpp"
#include "util/bytes.hpp"

namespace bsnet {

/// One bidirectional byte-stream connection to a peer. Callbacks are
/// plain public members (matching the original TcpConnection surface):
/// the owner wires them after Connect()/accept and detaches them (assigns
/// nullptr) before tearing a peer down so no callback fires mid-teardown.
class TransportConn {
 public:
  virtual ~TransportConn() = default;

  /// Fired once on an outbound connection: ok=true when the handshake
  /// completed, ok=false on refusal/timeout/reset before establishment.
  std::function<void(bool ok)> on_connected;
  /// Fired when the peer (or the substrate) closes an established
  /// connection. Not fired for locally initiated Close()/Reset() calls
  /// made after the owner detached it.
  std::function<void()> on_closed;

  virtual bsproto::Endpoint Local() const = 0;
  virtual bsproto::Endpoint Remote() const = 0;
  virtual bool IsInbound() const = 0;
  virtual bool IsEstablished() const = 0;

  /// Replaces the received-data sink. Passing a valid sink may
  /// synchronously drain bytes that arrived before the sink was wired;
  /// passing nullptr detaches without draining.
  virtual void SetDataSink(std::function<void(bsutil::ByteSpan)> sink) = 0;

  /// Queues bytes toward the peer. Never blocks; bounded backends shed
  /// under pressure rather than stall.
  virtual void Send(bsutil::ByteSpan data) = 0;

  /// Graceful close (FIN-like). Safe to call in any state.
  virtual void Close() = 0;

  /// Abortive close (RST-like): drops queued data and tears down now.
  virtual void Reset() = 0;

  /// Caps the receive-side buffering, where the backend supports it.
  virtual void SetReceiveBufferCap(std::size_t cap) { (void)cap; }
};

/// Factory/endpoint surface for one node's connections.
class Transport {
 public:
  using AcceptCallback = std::function<void(TransportConn& conn)>;

  virtual ~Transport() = default;

  /// The node's own address, as peers will see it.
  virtual std::uint32_t Ip() const = 0;

  /// Starts accepting inbound connections on `port`; `on_accept` fires
  /// once per connection at establishment.
  virtual void Listen(std::uint16_t port, AcceptCallback on_accept) = 0;
  virtual void StopListening(std::uint16_t port) = 0;

  /// Begins an outbound connect. Returns the (not yet established)
  /// connection, or nullptr when the dial cannot even start. The caller
  /// wires `on_connected` on the returned connection; establishment is
  /// always reported asynchronously, never from inside Connect().
  virtual TransportConn* Connect(const bsproto::Endpoint& remote) = 0;

  /// True when dialing `ep` would connect the node to itself.
  virtual bool IsSelf(const bsproto::Endpoint& ep) const = 0;

  /// Crash-style teardown: drop every connection and listener silently
  /// (no callbacks), as a power failure would.
  virtual void Abandon() = 0;
};

}  // namespace bsnet
