#pragma once

// EventLoop: drives a bsim::Scheduler as a real-time timer wheel alongside an
// epoll descriptor set. The same Node code that runs under the discrete-event
// simulator (timers via Scheduler::After) runs unmodified on real sockets:
// the loop maps wall time onto SimTime (both are nanoseconds), executes due
// scheduler events, and sleeps in epoll_wait exactly until the earlier of the
// next timer or the next fd event. Single-threaded by construction — handler
// callbacks run on the loop thread, like every sim callback runs on the
// scheduler thread.

#include <sys/epoll.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/scheduler.hpp"

namespace bsnet {

class EventLoop {
 public:
  /// `events` is the epoll event mask that fired (EPOLLIN | EPOLLOUT | ...).
  using FdHandler = std::function<void(std::uint32_t events)>;

  explicit EventLoop(bsim::Scheduler& sched);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (level-triggered). False on epoll failure.
  bool AddFd(int fd, std::uint32_t events, FdHandler handler);
  /// Changes the interest mask of a registered fd.
  bool ModFd(int fd, std::uint32_t events);
  /// Unregisters; safe to call from inside the fd's own handler.
  void DelFd(int fd);

  /// Wall-clock now mapped into the scheduler's SimTime domain.
  bsim::SimTime WallNow() const;

  /// One iteration: advance the scheduler to wall-now, wait for fd events up
  /// to `max_wait_ms` (clamped down to the next timer deadline), dispatch
  /// them. Returns the number of fd events dispatched.
  int PumpOnce(int max_wait_ms = 100);

  /// Pump until `keep_running()` turns false.
  void Run(const std::function<bool()>& keep_running);

  bsim::Scheduler& Sched() { return sched_; }

 private:
  bsim::Scheduler& sched_;
  int epoll_fd_ = -1;
  std::chrono::steady_clock::time_point start_;
  // shared_ptr so a handler that DelFd()s itself (or a sibling) mid-dispatch
  // cannot free the closure the loop is still executing.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
};

}  // namespace bsnet
