#include "core/event_loop.hpp"

#include <unistd.h>

#include <array>

namespace bsnet {

EventLoop::EventLoop(bsim::Scheduler& sched)
    : sched_(sched),
      epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)),
      start_(std::chrono::steady_clock::now()) {
  // The scheduler may already hold time from a prior phase; anchor wall zero
  // so WallNow() continues from its current clock rather than rewinding.
  start_ -= std::chrono::nanoseconds(sched_.Now());
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bsim::SimTime EventLoop::WallNow() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

bool EventLoop::AddFd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return true;
}

bool EventLoop::ModFd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::DelFd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

int EventLoop::PumpOnce(int max_wait_ms) {
  // Run timers that are already due, then size the sleep so the next timer
  // fires on schedule even if no fd event arrives.
  sched_.RunUntil(WallNow());
  int wait_ms = max_wait_ms;
  const bsim::SimTime next = sched_.NextEventTime();
  if (next >= 0) {
    const bsim::SimTime delta = next - WallNow();
    const int until_timer =
        delta <= 0 ? 0 : static_cast<int>(delta / bsim::kMillisecond) + 1;
    if (until_timer < wait_ms) wait_ms = until_timer;
  }

  std::array<epoll_event, 64> events{};
  const int n =
      ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                   wait_ms < 0 ? 0 : wait_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by an earlier handler
    const std::shared_ptr<FdHandler> handler = it->second;
    (*handler)(events[static_cast<std::size_t>(i)].events);
  }
  sched_.RunUntil(WallNow());
  return n < 0 ? 0 : n;
}

void EventLoop::Run(const std::function<bool()>& keep_running) {
  while (keep_running()) PumpOnce(100);
}

}  // namespace bsnet
