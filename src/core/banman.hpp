// Ban manager: the banning filter of Fig. 2. Bans are keyed by the peer
// connection identifier [IP:Port] (the paper's definition) and expire after
// the configured banning period (24 h by default).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/netaddr.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"

namespace bsnet {

using bsproto::Endpoint;

class BanMan {
 public:
  /// Publish ban-plane metrics into `registry` (bs_ban_* series). The node
  /// attaches its own registry at construction; standalone BanMan instances
  /// work unattached.
  void AttachMetrics(bsobs::MetricsRegistry& registry);

  /// Ban `who` until `until` (absolute sim time). Re-banning extends.
  void Ban(const Endpoint& who, bsim::SimTime until);
  /// Lift a ban early.
  void Unban(const Endpoint& who) {
    if (bans_.erase(who) > 0) {
      if (m_unbans_total_ != nullptr) m_unbans_total_->Inc();
      if (on_ban_change) on_ban_change(who, 0);
    }
    UpdateGauges();
  }

  /// Durable-store hook: fired on every Ban (with the effective expiry) and
  /// Unban (with until == 0). Restore/Deserialize paths never fire it, so
  /// replay cannot re-journal itself.
  std::function<void(const Endpoint& who, bsim::SimTime until)> on_ban_change;

  /// Replay path (WAL kBanUpsert): apply a persisted ban without firing
  /// on_ban_change or counting a fresh ban; entries already expired at `now`
  /// are dropped and counted in bs_banlist_expired_on_load_total.
  void RestoreBan(const Endpoint& who, bsim::SimTime until, bsim::SimTime now);
  /// Replay path (WAL kBanRemove): silent erase.
  void RestoreUnban(const Endpoint& who) {
    bans_.erase(who);
    UpdateGauges();
  }

  bool IsBanned(const Endpoint& who, bsim::SimTime now) const;

  /// Expiry time for `who`, or 0 when not banned.
  bsim::SimTime BanExpiry(const Endpoint& who) const;

  /// Remove expired entries (the node sweeps periodically).
  void SweepExpired(bsim::SimTime now);

  std::size_t Size() const { return bans_.size(); }
  /// Count of banned identifiers with the given IP (any port).
  std::size_t BannedPortsOf(std::uint32_t ip, bsim::SimTime now) const;
  std::vector<Endpoint> Snapshot() const;

  // ---- Discouragement (Bitcoin Core 0.21+ semantics) ----
  // After the paper's disclosure, Core replaced automatic banning with
  // "discouragement": misbehaving peers are marked by IP (not [IP:Port]),
  // the mark does not expire until restart, and discouraged inbound
  // connections are refused. Exposed as an optional node mode so the
  // version-semantics ablation can compare the two regimes.
  void Discourage(std::uint32_t ip) {
    if (discouraged_ips_.insert(ip).second && m_discouragements_total_ != nullptr) {
      m_discouragements_total_->Inc();
    }
    UpdateGauges();
  }
  bool IsDiscouraged(std::uint32_t ip) const { return discouraged_ips_.contains(ip); }
  std::size_t DiscouragedCount() const { return discouraged_ips_.size(); }
  void ClearDiscouraged() {
    discouraged_ips_.clear();
    UpdateGauges();
  }

  // ---- Persistence (the banlist.dat analogue) ----
  /// Serialize all entries (including expired ones; Load sweeps them).
  bsutil::ByteVec Serialize() const;
  /// Replace the current contents with a serialized ban list. Entries
  /// already expired at `now` are dropped. Returns false on malformed input
  /// (contents are then unchanged).
  bool Deserialize(bsutil::ByteSpan data, bsim::SimTime now);
  /// Convenience file round-trip; returns false on I/O or format errors.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path, bsim::SimTime now);

 private:
  void UpdateGauges();

  std::unordered_map<Endpoint, bsim::SimTime, bsproto::EndpointHasher> bans_;
  std::unordered_set<std::uint32_t> discouraged_ips_;  // not persisted, as in Core

  // Observability handles (null until AttachMetrics).
  bsobs::Counter* m_bans_total_ = nullptr;
  bsobs::Counter* m_unbans_total_ = nullptr;
  bsobs::Counter* m_expired_on_load_total_ = nullptr;
  bsobs::Counter* m_discouragements_total_ = nullptr;
  bsobs::Gauge* m_active_bans_ = nullptr;
  bsobs::Gauge* m_discouraged_ips_gauge_ = nullptr;
};

}  // namespace bsnet
