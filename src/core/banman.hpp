// Ban manager: the banning filter of Fig. 2. Bans are keyed by the peer
// connection identifier [IP:Port] (the paper's definition) and expire after
// the configured banning period (24 h by default).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "proto/netaddr.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"

namespace bsnet {

using bsproto::Endpoint;

class BanMan {
 public:
  /// Ban `who` until `until` (absolute sim time). Re-banning extends.
  void Ban(const Endpoint& who, bsim::SimTime until);
  /// Lift a ban early.
  void Unban(const Endpoint& who) { bans_.erase(who); }

  bool IsBanned(const Endpoint& who, bsim::SimTime now) const;

  /// Expiry time for `who`, or 0 when not banned.
  bsim::SimTime BanExpiry(const Endpoint& who) const;

  /// Remove expired entries (the node sweeps periodically).
  void SweepExpired(bsim::SimTime now);

  std::size_t Size() const { return bans_.size(); }
  /// Count of banned identifiers with the given IP (any port).
  std::size_t BannedPortsOf(std::uint32_t ip, bsim::SimTime now) const;
  std::vector<Endpoint> Snapshot() const;

  // ---- Discouragement (Bitcoin Core 0.21+ semantics) ----
  // After the paper's disclosure, Core replaced automatic banning with
  // "discouragement": misbehaving peers are marked by IP (not [IP:Port]),
  // the mark does not expire until restart, and discouraged inbound
  // connections are refused. Exposed as an optional node mode so the
  // version-semantics ablation can compare the two regimes.
  void Discourage(std::uint32_t ip) { discouraged_ips_.insert(ip); }
  bool IsDiscouraged(std::uint32_t ip) const { return discouraged_ips_.contains(ip); }
  std::size_t DiscouragedCount() const { return discouraged_ips_.size(); }
  void ClearDiscouraged() { discouraged_ips_.clear(); }

  // ---- Persistence (the banlist.dat analogue) ----
  /// Serialize all entries (including expired ones; Load sweeps them).
  bsutil::ByteVec Serialize() const;
  /// Replace the current contents with a serialized ban list. Entries
  /// already expired at `now` are dropped. Returns false on malformed input
  /// (contents are then unchanged).
  bool Deserialize(bsutil::ByteSpan data, bsim::SimTime now);
  /// Convenience file round-trip; returns false on I/O or format errors.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path, bsim::SimTime now);

 private:
  std::unordered_map<Endpoint, bsim::SimTime, bsproto::EndpointHasher> bans_;
  std::unordered_set<std::uint32_t> discouraged_ips_;  // not persisted, as in Core
};

}  // namespace bsnet
