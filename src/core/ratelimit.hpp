// Resource governance for the receive path: deterministic token buckets over
// simulated time plus a global CPU-budget governor with priority-aware
// shedding.
//
// The paper shows ban score cannot stop BM-DoS — bad-checksum frames are
// dropped before misbehavior tracking runs, so the victim pays the full
// checksum cost for every bogus frame while the attacker is never punished
// (PAPER.md §Ineffectiveness). Rate limiting attacks the cost asymmetry
// instead of the identifier: a peer that overdraws its budget has its frames
// shed at the header peek, before the payload is ever hashed. No identity or
// score is involved, so Sybil churn does not help the attacker.
//
// All arithmetic runs on bsim::SimTime, never the wall clock, so runs are
// bit-reproducible under a fixed seed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace bsnet {

/// Processing priority of a peer's receive stream. The governor sheds kLow
/// work first; per-peer bucket costs scale up for kLow peers. Assignment is
/// behavioral (detect-engine flag, droppable-frame count, good score), not
/// identifier-based — reconnecting under a fresh [IP:Port] resets nothing
/// the attacker can exploit, because a fresh peer starts at kNormal with an
/// empty history either way.
enum class PeerPriority { kLow = 0, kNormal = 1, kHigh = 2 };

const char* ToString(PeerPriority p);

/// Token bucket with lazy refill on simulated time. Capacity bounds the
/// burst; fill_per_sec is the sustained rate. Cost units are caller-defined
/// (bytes for the byte bucket, model cycles for the cost bucket).
class TokenBucket {
 public:
  TokenBucket() = default;
  /// `initial` caps the opening balance (default: a full burst). Per-peer
  /// buckets pass one second of fill instead, so a Sybil that reconnects
  /// after eviction does not restart with burst-sized credit — headroom must
  /// be earned by idling, which is the one thing a flood cannot do.
  TokenBucket(double capacity, double fill_per_sec, bsim::SimTime now,
              double initial = -1.0)
      : capacity_(capacity),
        fill_per_sec_(fill_per_sec),
        tokens_(initial < 0.0 ? capacity : std::min(initial, capacity)),
        last_refill_(now) {}

  /// Tokens on hand after refilling to `now`.
  double Available(bsim::SimTime now);

  /// Withdraw `cost` tokens if the balance would stay at or above `floor`
  /// (0 = may drain completely). Returns false — and withdraws nothing —
  /// otherwise.
  bool TryConsume(double cost, bsim::SimTime now, double floor = 0.0);

  double Capacity() const { return capacity_; }

 private:
  void Refill(bsim::SimTime now);

  double capacity_ = 0.0;
  double fill_per_sec_ = 0.0;
  double tokens_ = 0.0;
  bsim::SimTime last_refill_ = 0;
};

/// Global CPU budget shared by every peer's receive processing, with floors
/// tiered by priority: high-priority work may drain the bucket to zero,
/// normal-priority work stops at one reserve, low-priority work at two. The
/// gap between floors is the slice each tier can never take from the tier
/// above it, so under overload a flood of demoted (or still-anonymous) peers
/// pins the balance at its own floor while proven-useful peers keep flowing
/// out of the headroom below — work is shed strictly lowest-priority first.
class CpuBudgetGovernor {
 public:
  CpuBudgetGovernor(double cycles_per_sec, double burst_cycles,
                    double low_priority_reserve, bsim::SimTime now)
      : bucket_(burst_cycles, cycles_per_sec, now),
        reserve_cycles_(low_priority_reserve * burst_cycles) {}

  bool TryConsume(double cycles, PeerPriority priority, bsim::SimTime now) {
    double floor = 0.0;
    if (priority == PeerPriority::kNormal) floor = reserve_cycles_;
    if (priority == PeerPriority::kLow) floor = 2.0 * reserve_cycles_;
    return bucket_.TryConsume(cycles, now, floor);
  }

  double Available(bsim::SimTime now) { return bucket_.Available(now); }
  double ReserveCycles() const { return reserve_cycles_; }

 private:
  TokenBucket bucket_;
  double reserve_cycles_ = 0.0;
};

}  // namespace bsnet
