// The Bitcoin P2P node: version handshake, full message-processing pipeline,
// the ban-score mechanism wired in exactly as Fig. 2 describes, outbound
// connection maintenance, and observation hooks for the anomaly-detection
// Monitor.
//
// Processing pipeline per arriving frame (the ordering is load-bearing for
// the paper's attack vectors):
//
//   TCP checksum (sim layer) → Bitcoin message checksum → command lookup →
//   payload deserialization → handshake-state rules → type handler →
//   misbehavior tracking → threshold/ban
//
// A frame failing the message checksum is dropped before the misbehavior
// tracker ever sees it — the "forgoing ban score" BM-DoS vector. Unknown
// commands are ignored without punishment — the "messages never getting
// banned" vector (together with typed messages like PING that simply have no
// rule).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/chainstate.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "core/addrman.hpp"
#include "core/banman.hpp"
#include "core/costmodel.hpp"
#include "core/eviction.hpp"
#include "core/misbehavior.hpp"
#include "core/partition.hpp"
#include "core/ratelimit.hpp"
#include "core/rules.hpp"
#include "core/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "proto/bloom.hpp"
#include "proto/codec.hpp"
#include "proto/compact.hpp"
#include "proto/messages.hpp"
#include "sim/cpu.hpp"
#include "sim/tcp.hpp"
#include "util/rng.hpp"

namespace bsstore {
class StoreFs;
}

namespace bsnet {

class DurableNodeState;

struct NodeConfig {
  CoreVersion core_version = CoreVersion::kV0_20;
  BanPolicy ban_policy = BanPolicy::kBanScore;
  int ban_threshold = 100;
  bsim::SimTime ban_duration = 24 * bsim::kHour;
  int good_score_exemption = 1;  // kGoodScore policy: credit exempting a peer
  /// Core 0.21+ semantics: on threshold, discourage the peer's IP (no
  /// expiry, whole IP) instead of banning the [IP:Port] identifier for 24 h.
  /// Off by default — the paper's experiments ran the 0.20.0 banning regime.
  bool use_discouragement = false;

  std::uint16_t listen_port = 8333;
  int max_inbound = 117;    // Core's 117-of-128 inbound slots
  int target_outbound = 8;  // outbound connections the node maintains
  bsim::SimTime reconnect_delay = 500 * bsim::kMillisecond;
  bsim::SimTime maintenance_interval = 1 * bsim::kSecond;
  /// Keepalive: PING handshake-complete peers this often (0 = disabled,
  /// the default — scenario benches drive their own traffic).
  bsim::SimTime ping_interval = 0;
  /// Disconnect peers silent for this long (0 = disabled).
  bsim::SimTime inactivity_timeout = 0;

  // ---- Robustness hardening (beyond-paper; every default preserves the
  // paper-faithful 0.20.0 behaviour the Fig. 8 serial-Sybil timing depends
  // on, so the benches keep measuring the stock node) ----
  /// Per-peer reassembly-buffer cap; overflow sheds the oldest bytes (the
  /// decoder resynchronizes on the next header boundary) so a flooding peer
  /// can never OOM the node. 0 = unbounded. The default is generous: it
  /// exceeds the largest legal wire frame several times over and only binds
  /// under a pathological backlog.
  std::size_t max_rx_buffer_bytes = 8 * 1024 * 1024;
  /// Disconnect peers whose version handshake is still incomplete after this
  /// long (0 = disabled). Distinct from inactivity_timeout, which only
  /// watches handshake-complete peers.
  bsim::SimTime handshake_timeout = 0;
  /// Dead-peer detection: disconnect when an outstanding PING has gone
  /// unanswered for this long (0 = disabled; needs ping_interval to be on).
  bsim::SimTime ping_timeout = 0;
  /// Outbound-reconnect exponential backoff: after each consecutive failure
  /// to an endpoint the redial delay doubles from `reconnect_delay` up to
  /// `reconnect_backoff_cap`, with ±`reconnect_backoff_jitter` randomization.
  /// Off by default — the stock node redials on the next maintenance tick,
  /// which is what makes serial-Sybil/Defamation churn cheap for attackers.
  bool reconnect_backoff = false;
  bsim::SimTime reconnect_backoff_cap = 60 * bsim::kSecond;
  double reconnect_backoff_jitter = 0.25;
  /// Hard cap on tracked backoff endpoints (same LRU treatment as
  /// MisbehaviorTracker::SetMaxEntries): when a churning dialer pushes the
  /// map past this, the entry with the earliest redial time is evicted, so
  /// per-address backoff state cannot grow without bound. 0 = unbounded.
  std::size_t dial_backoff_max_entries = 65536;

  // ---- Overload resilience (beyond-paper; defaults keep every paper bench
  // on the stock 0.20.0 path — see README "Overload resilience") ----
  /// Inbound eviction: when every inbound slot is taken, run the Core-style
  /// eviction logic (core/eviction.hpp) and disconnect the loser to admit
  /// the newcomer. Off = the stock flat refusal, which lets a Sybil flood
  /// that fills the slots first lock honest newcomers out.
  bool enable_eviction = false;
  /// Per-peer token buckets over rx bytes/sec and costmodel-weighted cycles
  /// per second. A frame that would overdraw either bucket is shed at the
  /// header peek (kRateLimitDropCycles) instead of being checksummed.
  bool enable_rate_limit = false;
  double rx_bytes_per_sec = 2.0 * 1024 * 1024;
  double rx_bytes_burst = 8.0 * 1024 * 1024;
  double rx_cycles_per_sec = 5.0e7;
  double rx_cycles_burst = 2.0e8;
  /// Global CPU-budget governor over all peers' receive processing, in model
  /// cycles/sec (0 = no governor). Low-priority peers cannot draw the bucket
  /// below `governor_low_priority_reserve` of its burst capacity, so when
  /// the budget is exhausted the lowest-priority work is shed first.
  double governor_cycles_per_sec = 0.0;
  double governor_burst_cycles = 0.0;  // 0 = one second of budget
  double governor_low_priority_reserve = 0.2;
  /// Priority-aware rx processing: peers flagged by the detect engine
  /// (FlagPeer) or that keep sending droppable frames drain at low priority
  /// — their bucket/governor costs scale by 1/low_priority_cost_scale and
  /// the governor sheds them first. Peers with good-score credit (valid
  /// blocks delivered, §VIII) drain at high priority.
  bool enable_priority = false;
  int demote_bad_frames_threshold = 50;
  double low_priority_cost_scale = 0.25;
  /// MisbehaviorTracker entry cap (0 = unbounded); see SetMaxEntries.
  std::size_t tracker_max_entries = 65536;

  // ---- Crash-consistent state store (beyond-paper; off by default so the
  // legacy volatile paths — and the fig6/fig8 benches over them — stay
  // bit-identical) ----
  /// Persist BanMan / MisbehaviorTracker / AddrMan / the detect baseline in
  /// a WAL + atomic-snapshot store (src/store) and replay it at startup.
  bool enable_durable_store = false;
  /// Store directory. Empty = "bsnode-store-<ip>" under the working
  /// directory (tests always set it explicitly).
  std::string store_dir;
  /// Filesystem backend; null = the real POSIX filesystem. Tests inject a
  /// bsim::SimFs here to exercise crash points. Not owned.
  bsstore::StoreFs* store_fs = nullptr;
  /// Journal transactions between snapshots (StateStore::SetCompactThreshold).
  std::size_t store_compact_threshold = 256;

  // ---- Eclipse resilience (beyond-paper; every switch defaults off so the
  // stock node — and the fig6/fig8 benches over it — stays bit-identical.
  // See README "Eclipse resilience") ----
  /// Core-style tried/new bucketed AddrMan (AddrMan::EnableBucketing):
  /// netgroup-quota placement caps how much of the candidate table one /16
  /// can ever own, Good()/Attempt() track which addresses actually work.
  bool enable_addrman_bucketing = false;
  /// Remember the last `anchor_count` outbound peers that delivered a valid
  /// block and re-dial them first after a restart (persisted through the
  /// durable store, so this wants enable_durable_store for crash survival).
  bool enable_anchors = false;
  int anchor_count = 2;
  /// Periodic short-lived probe connections to `new`-table addresses: a
  /// completed handshake promotes the address to tried, then the connection
  /// closes. Feelers verify the table faster than organic dial churn, which
  /// is what lets a poisoned table wash out.
  bool enable_feelers = false;
  bsim::SimTime feeler_interval = 15 * bsim::kSecond;
  bsim::SimTime feeler_timeout = 5 * bsim::kSecond;
  /// At most one outbound slot per /16 netgroup, so even a fully poisoned
  /// address table cannot converge every outbound onto attacker infrastructure.
  bool enable_outbound_diversity = false;
  /// No tip advance for `stale_tip_timeout` → open one extra
  /// diversity-constrained outbound; when the tip moves again, drop the
  /// worst existing outbound (oldest peer that never delivered a block) if
  /// the extra slot is what helped.
  bool enable_stale_tip_recovery = false;
  bsim::SimTime stale_tip_timeout = 60 * bsim::kSecond;

  // ---- Partition resilience (beyond-paper; off by default so the stock
  // node — and the fig6/fig8 benches over it — stays bit-identical. See
  // README "Partition resilience") ----
  /// Master switch: run the PartitionMonitor (core/partition.hpp), exchange
  /// gossip tip-probes, and walk the graduated recovery ladder when the
  /// fused partition-suspicion score stays high.
  bool enable_partition_resilience = false;
  /// Send a tip-probe round (kTipProbe to `partition_probe_fanout` randomly
  /// sampled handshake-complete peers) this often.
  bsim::SimTime partition_probe_interval = 5 * bsim::kSecond;
  int partition_probe_fanout = 2;
  /// PartitionMonitor tuning (copied into PartitionParams at construction).
  bsim::SimTime partition_expected_block_interval = 3 * bsim::kSecond;
  int partition_divergence_blocks = 2;
  double partition_suspicion_high = 0.5;
  double partition_suspicion_low = 0.2;
  bsim::SimTime partition_ladder_step = 5 * bsim::kSecond;
  /// Feeler probes launched toward unrepresented netgroups when the ladder
  /// reaches its first stage.
  int partition_feeler_burst = 2;
  /// Partition-aware misbehavior damping: while suspicion is high, stale-
  /// block / disordered-header penalties against peers holding good-score
  /// credit are deferred instead of scored — an honest peer on the far side
  /// of a routing cut relays exactly that traffic, and banning it would turn
  /// a transient partition into a permanent eclipse. Only consulted when
  /// enable_partition_resilience is on.
  bool partition_damping = true;

  bschain::ChainParams chain;
  std::uint64_t services = bsproto::kNodeNetwork | bsproto::kNodeWitness;
  std::int32_t protocol_version = bsproto::kProtocolVersion;
  bool relay = true;  // announce accepted blocks/txs to peers

  /// Ablation flag: when false, the misbehavior check runs before the
  /// checksum verification, closing the bogus-payload loophole (used by
  /// bench_ablation_countermeasures to show why the vector exists).
  bool checksum_before_misbehavior = true;

  std::uint64_t rng_seed = 42;

  /// Observability. By default each node owns a private MetricsRegistry so
  /// per-node stats stay independent; experiments that want one scrapeable
  /// registry inject a shared one here (the node does not take ownership).
  bsobs::MetricsRegistry* metrics = nullptr;
  /// Event-trace ring capacity (0 disables tracing).
  std::size_t trace_capacity = 1024;
  /// Causal span tracer (obs/span.hpp), usually one shared by every node in
  /// the simulation so cross-node chains land in one log. Null (the default)
  /// disables tracing entirely: the hot paths pay one pointer test and
  /// allocate nothing. Not owned.
  bsobs::SpanTracer* span_tracer = nullptr;
  /// Hot-path profiler (obs/profiler.hpp) timing codec decode, tracker
  /// updates, and AddrMan select. Null (the default) disables profiling at
  /// the same one-pointer-test cost. Not owned.
  bsobs::HotpathProfiler* profiler = nullptr;
};

/// Connection-level peer state.
struct Peer {
  std::uint64_t id = 0;
  Endpoint remote;
  bool inbound = false;
  /// Short-lived probe session (does not fill an outbound slot): the
  /// handshake is the whole point, the connection closes right after.
  bool feeler = false;
  TransportConn* conn = nullptr;

  // Handshake state machine.
  bool got_version = false;
  bool got_verack = false;
  bool sent_version = false;
  std::int32_t peer_protocol_version = 0;

  // HEADERS disorder bookkeeping (Core's nUnconnectingHeaders).
  int unconnecting_headers = 0;

  // BIP-37 SPV filtering: when loaded, tx relay and filtered-block serving
  // go through the filter.
  bool filter_loaded = false;
  std::optional<bsproto::BloomFilter> filter;

  // Stats.
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_bad_checksum = 0;
  std::uint64_t frames_unknown_command = 0;
  std::uint64_t frames_malformed = 0;

  // Liveness bookkeeping (keepalive / inactivity handling).
  bsim::SimTime last_recv_time = 0;
  bsim::SimTime last_ping_sent = 0;
  std::uint64_t outstanding_ping_nonce = 0;  // 0 == none outstanding
  bsim::SimTime last_pong_rtt = -1;          // -1 == never measured

  // Overload-resilience bookkeeping (core/eviction.hpp, core/ratelimit.hpp).
  bsim::SimTime connected_at = 0;
  bsim::SimTime min_ping_rtt = -1;    // -1 == never measured
  bsim::SimTime last_block_time = 0;  // last valid block delivered
  bsim::SimTime last_tx_time = 0;     // last valid (novel) tx delivered
  /// Last time the partition-damping path asked this peer for headers
  /// (divergence sync); rate-limits the getheaders per peer. 0 == never.
  bsim::SimTime last_divergence_sync = 0;
  bool detect_flagged = false;        // demoted via Node::FlagPeer
  TokenBucket rx_bytes_bucket;        // live when enable_rate_limit
  TokenBucket rx_cost_bucket;

  bsutil::ByteVec rx_buffer;  // wire-stream reassembly

  // Application-stream positions for causal span matching (obs/span.hpp):
  // total bytes this node has written to the connection, and the stream
  // offset of rx_buffer[0]. Maintained unconditionally (two integer adds);
  // only consulted when a SpanTracer is attached.
  std::uint64_t tx_stream_offset = 0;
  std::uint64_t rx_stream_base = 0;

  bool HandshakeComplete() const { return got_version && got_verack; }
};

class Node {
 public:
  /// Simulator-backed node (the historical constructor): builds and owns a
  /// SimTransport attached to `net` at `ip`.
  Node(bsim::Scheduler& sched, bsim::Network& net, std::uint32_t ip, NodeConfig config,
       bsim::CpuModel* cpu = nullptr);
  /// Node over a caller-owned transport (real sockets, a test double, or a
  /// shared SimTransport). `transport` must outlive the node.
  Node(bsim::Scheduler& sched, Transport& transport, NodeConfig config,
       bsim::CpuModel* cpu = nullptr);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Begin listening and start the outbound-maintenance loop.
  void Start();

  /// Simulated crash: stop listening and maintenance, destroy every peer and
  /// connection silently (no FIN/RST — sudden silence on the wire), and
  /// detach from the network so a replacement Node can attach on the same
  /// IP. The object must stay alive until pending scheduler events drain;
  /// the chaos harness keeps crashed nodes allocated until the run ends.
  void Stop();

  /// Graceful shutdown (the daemon's SIGTERM path): stop listening and
  /// maintenance, close every peer politely, persist anchors, and flush the
  /// durable store so the WAL replays cleanly on the next start.
  void Shutdown();

  const NodeConfig& Config() const { return config_; }
  std::uint32_t Ip() const { return ip_; }
  bsim::Scheduler& Sched() const { return sched_; }
  bsnet::Transport& NetTransport() { return *transport_; }

  // ---- Chain / pool / tracking state ----
  bschain::ChainState& Chain() { return chain_; }
  bschain::Mempool& Pool() { return mempool_; }
  BanMan& Bans() { return banman_; }
  MisbehaviorTracker& Tracker() { return tracker_; }
  AddrMan& Addrs() { return addrman_; }
  /// The durable-store bridge, or null when enable_durable_store is off (or
  /// the store failed to open and the node fell back to volatile state).
  DurableNodeState* Durable() { return durable_.get(); }

  // ---- Observability ----
  /// The metrics registry backing this node's counters (owned unless
  /// NodeConfig.metrics injected a shared one).
  bsobs::MetricsRegistry& Metrics() { return *metrics_; }
  const bsobs::MetricsRegistry& Metrics() const { return *metrics_; }
  /// Bounded ring of typed node events (frames, misbehavior, bans, ...).
  bsobs::EventTrace& Trace() { return trace_; }
  const bsobs::EventTrace& Trace() const { return trace_; }

  // ---- Connections ----
  /// Seed the address table (the config-file peers of the paper's testbed).
  void AddKnownAddress(const Endpoint& addr) { addrman_.Add(addr); }
  /// Open an outbound connection now (returns false if banned/at capacity).
  /// `feeler` marks a short-lived probe session.
  bool ConnectTo(const Endpoint& remote, bool feeler = false);

  std::size_t InboundCount() const;
  /// Full outbound slots (feeler probes excluded).
  std::size_t OutboundCount() const;
  std::vector<const Peer*> Peers() const;
  Peer* FindPeerByRemote(const Endpoint& remote);
  const Peer* FindPeerById(std::uint64_t id) const;
  /// Disconnect (RST) a peer; does not ban.
  void DisconnectPeer(std::uint64_t id);
  /// Detection response: drop every connection and rebuild outbound slots.
  void DropAndRebuildConnections();

  // ---- Overload resilience ----
  /// Detect-engine hook: pin a peer to low rx priority (true) or clear the
  /// flag. No-op for unknown ids; the flag dies with the connection.
  void FlagPeer(std::uint64_t id, bool low_priority);
  /// The priority a peer's frames currently drain at (kNormal whenever
  /// enable_priority is off).
  PeerPriority PriorityOf(const Peer& peer) const;

  // ---- Sending ----
  void SendTo(Peer& peer, const bsproto::Message& msg);
  /// Send to the first handshake-complete peer whose remote IP is `ip`
  /// (workload generators address counterpart nodes this way). Returns false
  /// when no such session exists.
  bool SendToRemoteIp(std::uint32_t ip, const bsproto::Message& msg);
  /// Mine one block on the current tip and relay it (regtest-grade PoW).
  std::optional<bschain::Block> MineAndRelay();

  // ---- Observation hooks (detection engine, experiments) ----
  std::function<void(const Peer&, bsproto::MsgType, std::size_t)> on_message;
  /// Every complete wire frame, including ones dropped before processing
  /// (bad checksum, unknown command, malformed). The byte-level detection
  /// feature needs this: a bogus-BLOCK flood never registers as a *message*
  /// but its frames and bytes are visible here.
  std::function<void(std::size_t frame_bytes, bsproto::DecodeStatus)> on_frame;
  std::function<void(const Peer&, Misbehavior, const MisbehaviorOutcome&)> on_misbehavior;
  std::function<void(const Peer&)> on_peer_banned;
  /// Fired just before an inbound peer is evicted to admit a newcomer.
  std::function<void(const Peer&)> on_peer_evicted;
  /// Fired when the rate limiter or CPU governor sheds a frame; `governor`
  /// distinguishes a global-budget shed from a per-peer bucket refusal.
  std::function<void(const Peer&, std::size_t frame_bytes, bool governor)> on_frame_shed;
  std::function<void(const Endpoint&)> on_outbound_reconnect;
  std::function<void(const bschain::Block&)> on_block_accepted;

  // ---- Aggregate stats ----
  // Thin wrappers over the registry-backed metrics: the historical getter API
  // survives while the registry becomes the single source of truth.
  std::uint64_t TotalMessagesReceived() const { return m_messages_total_->Value(); }
  const std::map<bsproto::MsgType, std::uint64_t>& MessageCounts() const {
    return message_counts_;
  }
  std::uint64_t OutboundReconnects() const { return m_reconnects_->Value(); }
  std::uint64_t FramesDroppedBadChecksum() const {
    return m_frames_bad_checksum_->Value();
  }
  std::uint64_t FramesIgnoredUnknownCommand() const {
    return m_frames_unknown_->Value();
  }
  std::uint64_t PeersBanned() const { return m_peers_banned_->Value(); }
  std::uint64_t IcmpPacketsReceived() const { return m_icmp_packets_->Value(); }
  std::uint64_t RxBytesShed() const { return m_rx_shed_bytes_->Value(); }
  std::uint64_t HandshakeTimeouts() const { return m_handshake_timeouts_->Value(); }
  std::uint64_t DeadPeerDisconnects() const {
    return m_dead_peer_disconnects_->Value();
  }
  std::uint64_t OutboundDialFailures() const { return m_dial_failures_->Value(); }
  std::uint64_t PeersEvicted() const { return m_evictions_->Value(); }
  std::uint64_t InboundFullRejects() const {
    return m_inbound_full_rejects_->Value();
  }
  std::uint64_t RateLimitedFrames() const {
    return m_ratelimit_frames_->Value();
  }
  std::uint64_t GovernorShedFrames() const {
    return m_governor_shed_frames_->Value();
  }
  std::uint64_t FeelerAttempts() const { return m_feeler_attempts_->Value(); }
  std::uint64_t FeelerPromotions() const { return m_feeler_promotions_->Value(); }
  std::uint64_t AnchorRedials() const { return m_anchor_redials_->Value(); }
  std::uint64_t StaleTipEvents() const { return m_stale_tip_events_->Value(); }
  std::uint64_t TipProbesSent() const { return m_partition_probes_sent_->Value(); }
  std::uint64_t TipProbeReplies() const {
    return m_partition_probe_replies_->Value();
  }
  std::uint64_t PartitionSuspectWindows() const {
    return m_partition_suspect_windows_->Value();
  }
  std::uint64_t PartitionRecoveries() const {
    return m_partition_recoveries_->Value();
  }
  std::uint64_t PartitionRecoveryActions() const {
    return m_partition_recovery_actions_->Value();
  }
  std::uint64_t DeferredPenalties() const {
    return m_partition_deferred_penalties_->Value();
  }
  /// The partition monitor's fused suspicion score as of the last
  /// maintenance tick (0 when partition resilience is off).
  double PartitionSuspicion() const { return partition_.Suspicion(); }
  const PartitionMonitor& Partition() const { return partition_; }
  /// Current anchor set, most recently useful first (empty unless
  /// enable_anchors).
  const std::vector<Endpoint>& Anchors() const { return anchors_; }

  /// ICMP flood accounting; wired to SimTransport's out-of-band sinks (real
  /// sockets never deliver ICMP to userspace, so RealTransport has none).
  void OnIcmp(const bsim::IcmpPacket& pkt);
  void OnIcmpBatch(const bsim::IcmpPacket& pkt, std::uint64_t count);

  // ---- Reconnect-backoff introspection (regression tests) ----
  std::size_t DialBackoffEntries() const { return dial_backoff_.size(); }
  std::uint64_t DialBackoffPruned() const { return dial_backoff_pruned_; }

 private:
  /// Both public constructors delegate here; exactly one of `owned` /
  /// `external` is set.
  Node(bsim::Scheduler& sched, std::unique_ptr<Transport> owned,
       Transport* external, NodeConfig config, bsim::CpuModel* cpu);

  void AcceptInbound(TransportConn& conn);
  Peer& RegisterPeer(TransportConn& conn, bool inbound, bool feeler = false);
  void RemovePeer(std::uint64_t id, bool was_outbound);
  void MaintainOutbound();

  // ---- Eclipse-resilience maintenance (all gated on their config switches) ----
  /// Track tip progress; flag a stale tip (extra outbound wanted) and, when
  /// the tip advances with the extra slot active, trim the worst peer.
  void MaintainStaleTip(bsim::SimTime now);
  /// Launch one feeler probe per feeler_interval against a `new`-table entry.
  void MaintainFeeler(bsim::SimTime now);

  // ---- Partition-resilience maintenance (gated on
  // enable_partition_resilience) ----
  /// Per-tick driver: feed the PartitionMonitor (diversity census, tip
  /// advances), send scheduled tip-probe rounds, and execute newly reached
  /// recovery-ladder stages.
  void MaintainPartition(bsim::SimTime now);
  /// Send one tip-probe round to `partition_probe_fanout` sampled peers.
  void SendTipProbes(bsim::SimTime now);
  /// Our current tip as a probe payload (`nonce` echoed by the responder).
  bsproto::TipProbeMsg MakeTipProbe(std::uint64_t nonce) const;
  /// Execute the ladder stage the monitor just escalated to.
  void RunPartitionStage(PartitionMonitor::Stage stage, bsim::SimTime now);
  /// Open a short-lived probe toward an address in an unrepresented
  /// netgroup (the feeler-burst stage). False when no candidate exists.
  bool LaunchTargetedFeeler(bsim::SimTime now);
  void HandleTipProbe(Peer& peer, const bsproto::TipProbeMsg& msg);
  /// Outbound handshake just completed: clear backoff, mark the address
  /// Good(). For a feeler the probe is finished — count the promotion and
  /// close the session. Returns true when `peer` was destroyed.
  bool OnOutboundHandshakeComplete(Peer& peer);
  /// True when an outbound slot (live or dialing, feelers excluded) already
  /// belongs to `group` — the netgroup-uniqueness constraint.
  bool OutboundGroupTaken(std::uint32_t group) const;
  /// Peer `remote` proved useful (delivered a valid block): move it to the
  /// front of the anchor list and persist the list.
  void UpdateAnchors(const Endpoint& remote);
  /// Drop the oldest handshake-complete outbound peer that never delivered a
  /// block (only while outbound is above target — the stale-tip trim).
  void EvictWorstOutboundPeer();

  /// Evict one inbound peer per the core/eviction.hpp protection rules to
  /// free a slot. False when every candidate is protected.
  bool EvictInboundPeer();
  /// True when `group` already holds strictly more inbound slots than any
  /// other netgroup — such a group is refused further eviction-backed
  /// admissions (anti-churn guard).
  bool NewcomerGroupHoldsPlurality(std::uint32_t group) const;
  /// Rate-limit/governor gate for one complete frame. True = process it;
  /// false = it was shed (metrics, trace, and the drop cost are recorded
  /// here). Always true when neither limiter is configured.
  bool AdmitFrame(Peer& peer, const bsproto::DecodeResult& frame,
                  std::size_t frame_bytes);

  // ---- Outbound-reconnect backoff bookkeeping ----
  /// Record a failed/lost outbound session toward `remote` and schedule its
  /// earliest redial time.
  void NoteOutboundFailure(const Endpoint& remote);
  /// Delay before the next dial after `failures` consecutive failures.
  bsim::SimTime RetryDelay(int failures);
  /// False while an endpoint is inside its backoff window (only consulted
  /// when reconnect_backoff is enabled; the stock node ignores it).
  bool DialAllowed(const Endpoint& remote, bsim::SimTime now) const;

  void OnData(std::uint64_t peer_id, bsutil::ByteSpan data);
  /// `stream_offset` is the app-stream position of the frame's first byte
  /// (rx_stream_base + in-buffer offset), used to claim the sender's span
  /// registration when tracing is on.
  void ProcessFrame(Peer& peer, const bsproto::DecodeResult& frame,
                    std::uint64_t stream_offset);
  void ProcessMessage(Peer& peer, const bsproto::Message& msg);

  /// Span helpers (all no-ops when tracer_ is null).
  /// Record `rec` with ids/time filled in; children of rx_ctx_ when valid.
  void RecordSpan(bsobs::SpanKind kind, const Peer& peer, std::int16_t msg_type,
                  std::uint8_t flags, std::int64_t a, std::int64_t b);

  /// Apply a misbehavior; bans and disconnects on threshold per policy.
  /// Returns true when the peer was banned (and destroyed).
  bool ApplyMisbehavior(Peer& peer, Misbehavior what);

  // Per-type handlers.
  void HandleVersion(Peer& peer, const bsproto::VersionMsg& msg);
  void HandleVerack(Peer& peer);
  void HandleAddr(Peer& peer, const bsproto::AddrMsg& msg);
  void HandleInv(Peer& peer, const bsproto::InvMsg& msg);
  void HandleGetData(Peer& peer, const bsproto::GetDataMsg& msg);
  void HandleGetHeaders(Peer& peer, const bsproto::GetHeadersMsg& msg);
  void HandleHeaders(Peer& peer, const bsproto::HeadersMsg& msg);
  void HandleTx(Peer& peer, const bsproto::TxMsg& msg);
  void HandleBlock(Peer& peer, const bsproto::BlockMsg& msg);
  void HandleCmpctBlock(Peer& peer, const bsproto::CmpctBlockMsg& msg);
  void HandleGetBlockTxn(Peer& peer, const bsproto::GetBlockTxnMsg& msg);
  void HandleBlockTxn(Peer& peer, const bsproto::BlockTxnMsg& msg);
  void HandleFilterLoad(Peer& peer, const bsproto::FilterLoadMsg& msg);
  void HandleFilterAdd(Peer& peer, const bsproto::FilterAddMsg& msg);
  void HandleGetAddr(Peer& peer);
  void HandleMempool(Peer& peer);
  void HandleGetBlocks(Peer& peer, const bsproto::GetBlocksMsg& msg);

  void AcceptBlockFrom(Peer& peer, const bschain::Block& block);
  void RelayBlockInv(const bscrypto::Hash256& hash, std::uint64_t except_peer);
  void RelayTxInv(const bscrypto::Hash256& txid, std::uint64_t except_peer);
  bsproto::VersionMsg MakeVersionMsg(const Peer& peer);

  bsim::Scheduler& sched_;
  std::unique_ptr<Transport> owned_transport_;  // null when injected
  Transport* transport_ = nullptr;              // never null after ctor
  std::uint32_t ip_ = 0;
  NodeConfig config_;
  bsim::CpuModel* cpu_;  // optional; shared with the experiment harness
  bsutil::Rng rng_;

  bschain::ChainState chain_;
  bschain::Mempool mempool_;
  BanMan banman_;
  MisbehaviorTracker tracker_;
  AddrMan addrman_;
  std::unique_ptr<DurableNodeState> durable_;  // null unless enable_durable_store

  std::uint64_t next_peer_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Peer>> peers_;
  std::unordered_map<std::uint64_t, bsproto::CmpctBlockMsg> pending_compact_;
  /// Endpoints with an outbound connection open or being opened (prevents
  /// duplicate dials while a handshake is in flight).
  std::unordered_set<Endpoint, bsproto::EndpointHasher> outbound_targets_;
  /// Consecutive-failure count and earliest-redial time per endpoint
  /// (cleared when a handshake completes).
  struct DialBackoff {
    int failures = 0;
    bsim::SimTime next_attempt = 0;
  };
  std::unordered_map<Endpoint, DialBackoff, bsproto::EndpointHasher> dial_backoff_;
  std::uint64_t dial_backoff_pruned_ = 0;
  std::optional<CpuBudgetGovernor> governor_;
  int pending_outbound_ = 0;
  int pending_feeler_ = 0;  // subset of pending_outbound_ that are probes
  std::uint64_t mining_extra_nonce_ = 0;
  bool initial_outbound_fill_done_ = false;
  bool maintenance_running_ = false;

  // ---- Eclipse-resilience state ----
  /// Anchors restored from the durable store, drained front-first by the
  /// next maintenance ticks (re-dialed before any Select draw).
  std::vector<Endpoint> anchor_targets_;
  /// Live anchor list, most recently useful first (mirrors the durable set).
  std::vector<Endpoint> anchors_;
  /// Feeler sessions among outbound_targets_ (excluded from slot accounting).
  std::unordered_set<Endpoint, bsproto::EndpointHasher> feeler_targets_;
  bsim::SimTime last_feeler_time_ = 0;
  int tip_height_seen_ = 0;
  bsim::SimTime last_tip_advance_ = 0;
  bool stale_tip_extra_active_ = false;

  // ---- Partition-resilience state ----
  PartitionMonitor partition_;
  bsim::SimTime last_partition_probe_ = 0;
  /// Nonces of tip-probes we sent whose reply is still outstanding (a
  /// received kTipProbe carrying one of these is a reply, not a request).
  std::unordered_set<std::uint64_t> partition_probe_nonces_;
  /// Highest ladder stage already executed in the current high-suspicion
  /// window (stages run once; kRotate re-arms every ladder_step).
  PartitionMonitor::Stage partition_stage_done_ = PartitionMonitor::Stage::kNone;
  bsim::SimTime last_partition_rotate_ = 0;
  bool partition_extra_active_ = false;

  std::map<bsproto::MsgType, std::uint64_t> message_counts_;

  // ---- Observability state ----
  std::unique_ptr<bsobs::MetricsRegistry> owned_metrics_;  // null when injected
  bsobs::MetricsRegistry* metrics_ = nullptr;              // never null after ctor
  bsobs::EventTrace trace_;
  bsobs::SpanTracer* tracer_ = nullptr;      // null = tracing off
  bsobs::HotpathProfiler* profiler_ = nullptr;  // null = profiling off
  /// The receive span currently being processed (valid only inside
  /// ProcessFrame); sends and misbehavior triggered by a frame's handler
  /// become its children, which is what stitches the causal chain together.
  bsobs::TraceContext rx_ctx_{};

  // Pre-resolved handles: the hot path is a single relaxed atomic op.
  bsobs::Counter* m_messages_total_ = nullptr;
  bsobs::Counter* m_rx_bytes_total_ = nullptr;
  bsobs::Counter* m_frames_bad_checksum_ = nullptr;
  bsobs::Counter* m_frames_unknown_ = nullptr;
  bsobs::Counter* m_frames_malformed_ = nullptr;
  bsobs::Counter* m_codec_oversize_ = nullptr;
  bsobs::Counter* m_peers_banned_ = nullptr;
  bsobs::Counter* m_reconnects_ = nullptr;
  bsobs::Counter* m_icmp_packets_ = nullptr;
  bsobs::Counter* m_rx_shed_bytes_ = nullptr;
  bsobs::Counter* m_handshake_timeouts_ = nullptr;
  bsobs::Counter* m_dead_peer_disconnects_ = nullptr;
  bsobs::Counter* m_dial_failures_ = nullptr;
  bsobs::Counter* m_evictions_ = nullptr;
  bsobs::Counter* m_inbound_full_rejects_ = nullptr;
  bsobs::Counter* m_ratelimit_frames_ = nullptr;
  bsobs::Counter* m_ratelimit_bytes_ = nullptr;
  bsobs::Counter* m_governor_shed_frames_ = nullptr;
  bsobs::Counter* m_feeler_attempts_ = nullptr;
  bsobs::Counter* m_feeler_promotions_ = nullptr;
  bsobs::Counter* m_anchor_redials_ = nullptr;
  bsobs::Counter* m_stale_tip_events_ = nullptr;
  bsobs::Counter* m_partition_probes_sent_ = nullptr;
  bsobs::Counter* m_partition_probe_replies_ = nullptr;
  bsobs::Counter* m_partition_suspect_windows_ = nullptr;
  bsobs::Counter* m_partition_recoveries_ = nullptr;
  bsobs::Counter* m_partition_recovery_actions_ = nullptr;
  bsobs::Counter* m_partition_deferred_penalties_ = nullptr;
  bsobs::Gauge* m_partition_suspicion_ = nullptr;
  std::array<bsobs::Counter*, bsproto::kNumMsgTypes> m_msg_type_{};
  bsobs::Histogram* m_frame_process_seconds_ = nullptr;
  bsobs::Histogram* m_frame_bytes_ = nullptr;
  bsobs::Gauge* m_peers_gauge_ = nullptr;
};

}  // namespace bsnet
