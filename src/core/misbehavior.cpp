#include "core/misbehavior.hpp"

namespace bsnet {

const char* ToString(BanPolicy p) {
  switch (p) {
    case BanPolicy::kBanScore: return "ban-score";
    case BanPolicy::kThresholdInfinity: return "threshold-infinity";
    case BanPolicy::kDisabled: return "disabled";
    case BanPolicy::kGoodScore: return "good-score";
  }
  return "?";
}

MisbehaviorOutcome MisbehaviorTracker::Misbehaving(std::uint64_t peer_id, bool inbound,
                                                   Misbehavior what) {
  MisbehaviorOutcome outcome;

  // "Disabling the checking": the entire function body is gone.
  if (policy_ == BanPolicy::kDisabled) return outcome;

  const auto rule = GetRule(version_, what);
  if (!rule) return outcome;  // rule absent in this Core version

  // Scope gating (Table I "Object of Ban").
  if (rule->scope == PeerScope::kInbound && !inbound) return outcome;
  if (rule->scope == PeerScope::kOutbound && inbound) return outcome;

  PeerScore& score = scores_[peer_id];
  score.misbehavior += rule->score;

  outcome.rule_applied = true;
  outcome.score_delta = rule->score;
  outcome.total_score = score.misbehavior;

  if (score.misbehavior < threshold_) return outcome;

  switch (policy_) {
    case BanPolicy::kBanScore:
      outcome.should_ban = true;
      break;
    case BanPolicy::kThresholdInfinity:
      // Threshold check commented out: score grows forever, no ban.
      break;
    case BanPolicy::kGoodScore:
      // Credit-bearing peers are exempt; everyone else is banned as usual.
      outcome.should_ban = score.good_score < good_score_exemption_;
      break;
    case BanPolicy::kDisabled:
      break;  // unreachable; handled above
  }
  return outcome;
}

void MisbehaviorTracker::AddGoodScore(std::uint64_t peer_id, int delta) {
  scores_[peer_id].good_score += delta;
}

int MisbehaviorTracker::Score(std::uint64_t peer_id) const {
  const auto it = scores_.find(peer_id);
  return it == scores_.end() ? 0 : it->second.misbehavior;
}

int MisbehaviorTracker::GoodScore(std::uint64_t peer_id) const {
  const auto it = scores_.find(peer_id);
  return it == scores_.end() ? 0 : it->second.good_score;
}

}  // namespace bsnet
