#include "core/misbehavior.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/serialize.hpp"

namespace bsnet {

namespace {
// Format tag so stale/foreign files are rejected cleanly.
constexpr std::uint32_t kScoreTableMagic = 0x53435231;  // "SCR1"
}  // namespace

void MisbehaviorTracker::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_score_events_total_ = registry.GetCounter("bs_ban_score_events_total",
                                              "Misbehavior rules applied");
  m_score_points_total_ = registry.GetCounter("bs_ban_score_points_total",
                                              "Ban-score points accumulated");
  m_threshold_crossings_total_ = registry.GetCounter(
      "bs_ban_threshold_crossings_total", "Scores that crossed the ban threshold");
  m_good_score_points_total_ = registry.GetCounter(
      "bs_ban_good_score_points_total", "Good-score credit granted");
  m_scores_pruned_total_ = registry.GetCounter(
      "bs_ban_scores_pruned_total", "Score entries pruned at the LRU cap");
  m_entries_gauge_ =
      registry.GetGauge("bs_ban_score_entries", "Peers currently tracked");
  UpdateEntriesGauge();
}

PeerScore& MisbehaviorTracker::Touch(std::uint64_t peer_id) {
  const auto it = scores_.find(peer_id);
  if (it != scores_.end()) {
    it->second.last_touch = ++touch_seq_;
    return it->second;
  }
  if (max_entries_ > 0 && scores_.size() >= max_entries_) PruneLru();
  PeerScore& score = scores_[peer_id];
  score.last_touch = ++touch_seq_;
  UpdateEntriesGauge();
  return score;
}

void MisbehaviorTracker::PruneLru() {
  auto oldest = scores_.begin();
  for (auto it = scores_.begin(); it != scores_.end(); ++it) {
    if (it->second.last_touch < oldest->second.last_touch) oldest = it;
  }
  const std::uint64_t pruned_id = oldest->first;
  scores_.erase(oldest);
  if (m_scores_pruned_total_ != nullptr) m_scores_pruned_total_->Inc();
  if (on_forget) on_forget(pruned_id);
}

void MisbehaviorTracker::Forget(std::uint64_t peer_id) {
  if (scores_.erase(peer_id) > 0 && on_forget) on_forget(peer_id);
  UpdateEntriesGauge();
}

void MisbehaviorTracker::RestoreScore(std::uint64_t peer_id, int misbehavior,
                                      int good_score) {
  PeerScore& score = scores_[peer_id];
  score.misbehavior = misbehavior;
  score.good_score = good_score;
  score.last_touch = ++touch_seq_;
  UpdateEntriesGauge();
}

void MisbehaviorTracker::UpdateEntriesGauge() {
  if (m_entries_gauge_ != nullptr) {
    m_entries_gauge_->Set(static_cast<double>(scores_.size()));
  }
}

const char* ToString(BanPolicy p) {
  switch (p) {
    case BanPolicy::kBanScore: return "ban-score";
    case BanPolicy::kThresholdInfinity: return "threshold-infinity";
    case BanPolicy::kDisabled: return "disabled";
    case BanPolicy::kGoodScore: return "good-score";
  }
  return "?";
}

MisbehaviorOutcome MisbehaviorTracker::Misbehaving(std::uint64_t peer_id, bool inbound,
                                                   Misbehavior what) {
  MisbehaviorOutcome outcome;

  // "Disabling the checking": the entire function body is gone.
  if (policy_ == BanPolicy::kDisabled) return outcome;

  const auto rule = GetRule(version_, what);
  if (!rule) return outcome;  // rule absent in this Core version

  // Scope gating (Table I "Object of Ban").
  if (rule->scope == PeerScope::kInbound && !inbound) return outcome;
  if (rule->scope == PeerScope::kOutbound && inbound) return outcome;

  PeerScore& score = Touch(peer_id);
  score.misbehavior += rule->score;
  if (on_change) on_change(peer_id, score.misbehavior, score.good_score);

  outcome.rule_applied = true;
  outcome.score_delta = rule->score;
  outcome.total_score = score.misbehavior;

  if (m_score_events_total_ != nullptr) {
    m_score_events_total_->Inc();
    if (rule->score > 0) {
      m_score_points_total_->Inc(static_cast<std::uint64_t>(rule->score));
    }
  }

  if (score.misbehavior < threshold_) return outcome;

  switch (policy_) {
    case BanPolicy::kBanScore:
      outcome.should_ban = true;
      break;
    case BanPolicy::kThresholdInfinity:
      // Threshold check commented out: score grows forever, no ban.
      break;
    case BanPolicy::kGoodScore:
      // Credit-bearing peers are exempt; everyone else is banned as usual.
      outcome.should_ban = score.good_score < good_score_exemption_;
      break;
    case BanPolicy::kDisabled:
      break;  // unreachable; handled above
  }
  if (outcome.should_ban && m_threshold_crossings_total_ != nullptr) {
    m_threshold_crossings_total_->Inc();
  }
  return outcome;
}

void MisbehaviorTracker::AddGoodScore(std::uint64_t peer_id, int delta) {
  PeerScore& score = Touch(peer_id);
  score.good_score += delta;
  if (m_good_score_points_total_ != nullptr && delta > 0) {
    m_good_score_points_total_->Inc(static_cast<std::uint64_t>(delta));
  }
  if (on_change) on_change(peer_id, score.misbehavior, score.good_score);
}

int MisbehaviorTracker::Score(std::uint64_t peer_id) const {
  const auto it = scores_.find(peer_id);
  return it == scores_.end() ? 0 : it->second.misbehavior;
}

int MisbehaviorTracker::GoodScore(std::uint64_t peer_id) const {
  const auto it = scores_.find(peer_id);
  return it == scores_.end() ? 0 : it->second.good_score;
}

bsutil::ByteVec MisbehaviorTracker::Serialize() const {
  bsutil::Writer w;
  w.WriteU32(kScoreTableMagic);
  w.WriteCompactSize(scores_.size());
  // Canonical order: sorted by peer id. The serialized form must be a pure
  // function of the tracked state, not of unordered_map iteration history,
  // so snapshots of equal state compare byte-identical.
  std::vector<const std::pair<const std::uint64_t, PeerScore>*> entries;
  entries.reserve(scores_.size());
  for (const auto& entry : scores_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : entries) {
    w.WriteU64(entry->first);
    w.WriteI64(entry->second.misbehavior);
    w.WriteI64(entry->second.good_score);
  }
  return w.TakeData();
}

bool MisbehaviorTracker::Deserialize(bsutil::ByteSpan data) {
  try {
    bsutil::Reader r(data);
    if (r.ReadU32() != kScoreTableMagic) return false;
    const std::uint64_t count = r.ReadCompactSize();
    if (count > 10'000'000) return false;  // allocation guard
    std::unordered_map<std::uint64_t, PeerScore> loaded;
    loaded.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t id = r.ReadU64();
      PeerScore score;
      score.misbehavior = static_cast<int>(r.ReadI64());
      score.good_score = static_cast<int>(r.ReadI64());
      score.last_touch = i;  // recency order restarts; ties broken by file order
      loaded.emplace(id, score);
    }
    if (!r.AtEnd()) return false;
    scores_ = std::move(loaded);
    touch_seq_ = count;
    UpdateEntriesGauge();
    return true;
  } catch (const bsutil::DeserializeError&) {
    return false;
  }
}

}  // namespace bsnet
