#include "core/durable.hpp"

#include <utility>

#include "util/log.hpp"
#include "util/serialize.hpp"

namespace bsnet {

DurableNodeState::DurableNodeState(bsstore::StoreFs& fs, std::string dir,
                                   BanMan& bans, MisbehaviorTracker& tracker,
                                   AddrMan& addrs)
    : store_(fs, std::move(dir)), bans_(bans), tracker_(tracker), addrs_(addrs) {
  store_.SetSnapshotSource(
      [this](const bsstore::StateStore::SnapshotSink& sink) { EmitSnapshot(sink); });
}

DurableNodeState::~DurableNodeState() {
  // Detach the hooks: the components usually outlive this bridge only in
  // tests, but a dangling capture of `this` must never be reachable.
  bans_.on_ban_change = nullptr;
  tracker_.on_change = nullptr;
  tracker_.on_forget = nullptr;
  addrs_.on_add = nullptr;
  addrs_.on_remove = nullptr;
  addrs_.on_good = nullptr;
}

void DurableNodeState::AttachMetrics(bsobs::MetricsRegistry& registry) {
  store_.AttachMetrics(registry);
}

bool DurableNodeState::Open(bsim::SimTime now) {
  const bool ok = store_.Open([this, now](std::uint8_t type, bsutil::ByteSpan payload) {
    ReplayRecord(type, payload, now);
  });
  if (!ok) {
    bsutil::Log(bsutil::LogLevel::kError, "durable",
                "state store failed to open, running volatile: ", store_.Dir());
    return false;
  }
  WireHooks();
  return true;
}

void DurableNodeState::ReplayRecord(std::uint8_t type, bsutil::ByteSpan payload,
                                    bsim::SimTime now) {
  try {
    switch (type) {
      case kBanSnapshot:
        bans_.Deserialize(payload, now);
        return;
      case kScoreSnapshot:
        tracker_.Deserialize(payload);
        return;
      case kAddrSnapshot:
        addrs_.Deserialize(payload);
        return;
      case kDetectBaseline:
        baseline_.assign(payload.begin(), payload.end());
        return;
      case kBanUpsert: {
        bsutil::Reader r(payload);
        Endpoint ep;
        ep.ip = r.ReadU32();
        ep.port = r.ReadU16();
        const bsim::SimTime until = r.ReadI64();
        bans_.RestoreBan(ep, until, now);
        return;
      }
      case kBanRemove: {
        bsutil::Reader r(payload);
        Endpoint ep;
        ep.ip = r.ReadU32();
        ep.port = r.ReadU16();
        bans_.RestoreUnban(ep);
        return;
      }
      case kScoreUpsert: {
        bsutil::Reader r(payload);
        const std::uint64_t id = r.ReadU64();
        const int mis = static_cast<int>(r.ReadI64());
        const int good = static_cast<int>(r.ReadI64());
        tracker_.RestoreScore(id, mis, good);
        return;
      }
      case kScoreForget: {
        bsutil::Reader r(payload);
        tracker_.RestoreForget(r.ReadU64());
        return;
      }
      case kAddrAdd: {
        bsutil::Reader r(payload);
        Endpoint ep;
        ep.ip = r.ReadU32();
        ep.port = r.ReadU16();
        addrs_.RestoreAdd(ep);
        return;
      }
      case kAddrRemove: {
        bsutil::Reader r(payload);
        Endpoint ep;
        ep.ip = r.ReadU32();
        ep.port = r.ReadU16();
        addrs_.RestoreRemove(ep);
        return;
      }
      case kAddrGood: {
        bsutil::Reader r(payload);
        Endpoint ep;
        ep.ip = r.ReadU32();
        ep.port = r.ReadU16();
        const bsim::SimTime at = r.ReadI64();
        addrs_.RestoreGood(ep, at);
        return;
      }
      case kAnchors: {
        bsutil::Reader r(payload);
        const std::uint64_t count = r.ReadCompactSize();
        if (count > 64) return;  // allocation guard: anchors are a handful
        std::vector<Endpoint> anchors;
        anchors.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          Endpoint ep;
          ep.ip = r.ReadU32();
          ep.port = r.ReadU16();
          anchors.push_back(ep);
        }
        anchors_ = std::move(anchors);
        return;
      }
      default:
        // Forward compatibility: a newer writer may journal record types we
        // do not know; skipping them is safe (CRC already vouched for them).
        return;
    }
  } catch (const bsutil::DeserializeError&) {
    // A CRC-clean frame whose payload does not parse means a writer bug, not
    // media corruption. Skip the record rather than poisoning recovery.
    bsutil::Log(bsutil::LogLevel::kError, "durable",
                "skipping unparseable record type ", static_cast<int>(type));
  }
}

void DurableNodeState::EmitSnapshot(
    const bsstore::StateStore::SnapshotSink& sink) const {
  sink(kBanSnapshot, bans_.Serialize());
  sink(kScoreSnapshot, tracker_.Serialize());
  sink(kAddrSnapshot, addrs_.Serialize());
  if (!baseline_.empty()) sink(kDetectBaseline, baseline_);
  if (!anchors_.empty()) {
    bsutil::Writer w;
    w.WriteCompactSize(anchors_.size());
    for (const Endpoint& ep : anchors_) {
      w.WriteU32(ep.ip);
      w.WriteU16(ep.port);
    }
    sink(kAnchors, w.Data());
  }
}

void DurableNodeState::WireHooks() {
  bans_.on_ban_change = [this](const Endpoint& who, bsim::SimTime until) {
    bsutil::Writer w;
    w.WriteU32(who.ip);
    w.WriteU16(who.port);
    if (until == 0) {
      store_.AppendCommit(kBanRemove, w.Data());
    } else {
      w.WriteI64(until);
      store_.AppendCommit(kBanUpsert, w.Data());
    }
  };
  tracker_.on_change = [this](std::uint64_t id, int mis, int good) {
    bsutil::Writer w;
    w.WriteU64(id);
    w.WriteI64(mis);
    w.WriteI64(good);
    store_.AppendCommit(kScoreUpsert, w.Data());
  };
  tracker_.on_forget = [this](std::uint64_t id) {
    bsutil::Writer w;
    w.WriteU64(id);
    store_.AppendCommit(kScoreForget, w.Data());
  };
  addrs_.on_add = [this](const Endpoint& addr) {
    bsutil::Writer w;
    w.WriteU32(addr.ip);
    w.WriteU16(addr.port);
    store_.AppendCommit(kAddrAdd, w.Data());
  };
  addrs_.on_remove = [this](const Endpoint& addr) {
    bsutil::Writer w;
    w.WriteU32(addr.ip);
    w.WriteU16(addr.port);
    store_.AppendCommit(kAddrRemove, w.Data());
  };
  addrs_.on_good = [this](const Endpoint& addr, bsim::SimTime at) {
    bsutil::Writer w;
    w.WriteU32(addr.ip);
    w.WriteU16(addr.port);
    w.WriteI64(at);
    store_.AppendCommit(kAddrGood, w.Data());
  };
}

bool DurableNodeState::SetAnchors(const std::vector<Endpoint>& anchors) {
  anchors_ = anchors;
  if (!store_.IsOpen()) return false;
  bsutil::Writer w;
  w.WriteCompactSize(anchors_.size());
  for (const Endpoint& ep : anchors_) {
    w.WriteU32(ep.ip);
    w.WriteU16(ep.port);
  }
  return store_.AppendCommit(kAnchors, w.Data());
}

bool DurableNodeState::SetDetectBaseline(bsutil::ByteSpan payload) {
  baseline_.assign(payload.begin(), payload.end());
  if (!store_.IsOpen()) return false;
  return store_.AppendCommit(kDetectBaseline, baseline_);
}

}  // namespace bsnet
