#include "core/costmodel.hpp"

namespace bsnet {

namespace {

// Table II of the paper, "Measurement of Bitcoin message types per query".
// Types without a row (getblocks, getaddr, mempool, filterload, filteradd,
// filterclear, merkleblock, reject) were not measured by the paper; we assign
// them small craft/process costs comparable to the cheap control messages.
struct CostRow {
  double craft;
  double process;
};

CostRow RowFor(bsproto::MsgType type) {
  using T = bsproto::MsgType;
  switch (type) {
    case T::kVersion: return {60.71, 129.5};
    case T::kVerack: return {48.57, 241.375};
    case T::kAddr: return {5743.68, 42.981};
    case T::kInv: return {47112.62, 77.83};
    case T::kGetData: return {41270.62, 238.905};
    case T::kGetHeaders: return {50.8, 38.875};
    case T::kTx: return {54.55, 609.016};
    case T::kHeaders: return {7220.95, 16.394};
    case T::kBlock: return {23.45, 617282.101};
    case T::kPing: return {21.33, 95.582};
    case T::kPong: return {20.68, 9.797};
    case T::kNotFound: return {16.75, 10.232};
    case T::kSendHeaders: return {12.89, 7.125};
    case T::kFeeFilter: return {15.37, 8.714};
    case T::kSendCmpct: return {15.85, 4.889};
    case T::kCmpctBlock: return {14.48, 46225.182};
    case T::kGetBlockTxn: return {422.32, 874.0};
    case T::kBlockTxn: return {16.66, 97445.452};
    // Not measured in Table II; modelled as cheap control messages.
    case T::kGetBlocks: return {50.0, 40.0};
    case T::kGetAddr: return {15.0, 30.0};
    case T::kMempool: return {15.0, 60.0};
    case T::kFilterLoad: return {120.0, 150.0};
    case T::kFilterAdd: return {40.0, 60.0};
    case T::kFilterClear: return {15.0, 20.0};
    case T::kMerkleBlock: return {800.0, 400.0};
    case T::kReject: return {30.0, 15.0};
    case T::kTipProbe: return {25.0, 30.0};
  }
  return {20.0, 20.0};
}

}  // namespace

double AttackerCraftCycles(bsproto::MsgType type) { return RowFor(type).craft; }

double VictimProcessCycles(bsproto::MsgType type) { return RowFor(type).process; }

double ImpactCostRatio(bsproto::MsgType type) {
  const CostRow row = RowFor(type);
  return row.process / row.craft;
}

double PythonAttackerCpuPercent(double msgs_per_sec) {
  // Saturating fit through (100, 1.3) and (1000, 4.7): the interpreter is
  // GIL-bound, so CPU tops out regardless of thread count.
  return 6.6 * msgs_per_sec / (msgs_per_sec + 410.0);
}

double HpingAttackerCpuPercent(double pkts_per_sec) {
  // Saturating fit through Table III's ICMP column (half-saturation ≈6000/s).
  return 100.0 * pkts_per_sec / (pkts_per_sec + 6000.0);
}

}  // namespace bsnet
