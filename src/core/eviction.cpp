#include "core/eviction.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace bsnet {
namespace {

using Candidates = std::vector<EvictionCandidate>;

std::unordered_map<std::uint32_t, std::size_t> CountNetGroups(const Candidates& c) {
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const EvictionCandidate& peer : c) ++counts[NetGroup(peer.ip)];
  return counts;
}

/// Sort so the k most protect-worthy candidates (per `cmp`, which orders
/// least-worthy first) sit at the end, then drop them from the pool.
template <typename Cmp>
void ProtectLastK(Candidates& pool, std::size_t k, Cmp cmp) {
  std::sort(pool.begin(), pool.end(), cmp);
  pool.erase(pool.end() - static_cast<std::ptrdiff_t>(std::min(k, pool.size())),
             pool.end());
}

bsim::SimTime PingOrWorst(const EvictionCandidate& c) {
  return c.min_ping_rtt < 0 ? std::numeric_limits<bsim::SimTime>::max()
                            : c.min_ping_rtt;
}

}  // namespace

std::optional<std::uint64_t> SelectInboundPeerToEvict(Candidates candidates) {
  if (candidates.empty()) return std::nullopt;

  // Tier 1: netgroup diversity. The rarest groups are the ones a one-subnet
  // Sybil swarm cannot supply; protect their longest-lived member first.
  // (Every comparator here breaks final ties on id so the choice is a pure
  // function of the candidate set.)
  {
    const auto counts = CountNetGroups(candidates);
    ProtectLastK(candidates, kProtectNetGroupPeers,
                 [&counts](const EvictionCandidate& a, const EvictionCandidate& b) {
                   const std::size_t ca = counts.at(NetGroup(a.ip));
                   const std::size_t cb = counts.at(NetGroup(b.ip));
                   if (ca != cb) return ca > cb;  // rarer group → more worthy
                   if (a.connected_at != b.connected_at)
                     return a.connected_at > b.connected_at;  // older → more worthy
                   return a.id > b.id;
                 });
  }

  // Tier 2: lowest measured ping — proximity is earned, not claimed.
  ProtectLastK(candidates, kProtectLowPingPeers,
               [](const EvictionCandidate& a, const EvictionCandidate& b) {
                 const bsim::SimTime pa = PingOrWorst(a);
                 const bsim::SimTime pb = PingOrWorst(b);
                 if (pa != pb) return pa > pb;  // lower ping → more worthy
                 return a.id > b.id;
               });

  // Tiers 3+4: recently useful peers (novel txs, then novel blocks). Only
  // peers that actually provided one qualify — protecting a zero timestamp
  // would hand the slots to flood peers that never relayed anything, and a
  // depleted pool then lets netgroup-population ties fall on honest peers.
  ProtectLastK(candidates,
               std::min<std::size_t>(
                   kProtectTxPeers,
                   static_cast<std::size_t>(std::count_if(
                       candidates.begin(), candidates.end(),
                       [](const EvictionCandidate& c) { return c.last_tx_time > 0; }))),
               [](const EvictionCandidate& a, const EvictionCandidate& b) {
                 if (a.last_tx_time != b.last_tx_time)
                   return a.last_tx_time < b.last_tx_time;
                 return a.id > b.id;
               });
  ProtectLastK(candidates,
               std::min<std::size_t>(
                   kProtectBlockPeers,
                   static_cast<std::size_t>(std::count_if(
                       candidates.begin(), candidates.end(),
                       [](const EvictionCandidate& c) { return c.last_block_time > 0; }))),
               [](const EvictionCandidate& a, const EvictionCandidate& b) {
                 if (a.last_block_time != b.last_block_time)
                   return a.last_block_time < b.last_block_time;
                 return a.id > b.id;
               });

  // Tier 5: half of whatever remains, by longest uptime.
  ProtectLastK(candidates, candidates.size() / 2,
               [](const EvictionCandidate& a, const EvictionCandidate& b) {
                 if (a.connected_at != b.connected_at)
                   return a.connected_at > b.connected_at;  // older → more worthy
                 return a.id > b.id;
               });

  if (candidates.empty()) return std::nullopt;

  // Evict from the most populous netgroup among the unprotected remainder —
  // under a Sybil flood that is, by construction, the attacker's group.
  // Tie between groups: the one with the youngest member (churning hardest).
  const auto counts = CountNetGroups(candidates);
  std::uint32_t target_group = 0;
  std::size_t target_count = 0;
  bsim::SimTime target_youngest = -1;
  for (const EvictionCandidate& c : candidates) {
    const std::uint32_t group = NetGroup(c.ip);
    const std::size_t count = counts.at(group);
    if (count > target_count ||
        (count == target_count && c.connected_at > target_youngest) ||
        (count == target_count && c.connected_at == target_youngest &&
         group > target_group)) {
      target_group = group;
      target_count = count;
      target_youngest = c.connected_at;
    }
  }

  // Within the group: youngest first, then lowest good-score, then the
  // latest-registered id.
  const EvictionCandidate* victim = nullptr;
  for (const EvictionCandidate& c : candidates) {
    if (NetGroup(c.ip) != target_group) continue;
    if (victim == nullptr || c.connected_at > victim->connected_at ||
        (c.connected_at == victim->connected_at &&
         (c.good_score < victim->good_score ||
          (c.good_score == victim->good_score && c.id > victim->id)))) {
      victim = &c;
    }
  }
  return victim->id;
}

}  // namespace bsnet
