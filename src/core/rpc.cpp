#include "core/rpc.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/banman.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace bsnet {

namespace {

constexpr std::uint32_t kLoopbackIp = 0x7f000001;
constexpr std::size_t kMaxLineBytes = 1 << 20;  // drop clients that exceed it

std::string FormatIp(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

std::string ErrorLine(const std::string& message) {
  return "{\"error\":\"" + bsutil::JsonEscape(message) + "\"}";
}

double NumberOr(const bsutil::JsonValue& obj, const std::string& key,
                double fallback) {
  const bsutil::JsonValue* v = obj.Find(key);
  return v != nullptr && v->IsNumber() ? v->number : fallback;
}

}  // namespace

std::string FormatEndpoint(const bsproto::Endpoint& ep) {
  return FormatIp(ep.ip) + ":" + std::to_string(ep.port);
}

std::optional<std::uint32_t> ParseIp(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return (a << 24) | (b << 16) | (c << 8) | d;
}

RpcServer::RpcServer(EventLoop& loop, bsim::SocketApi& api, Node& node,
                     std::uint16_t port)
    : loop_(loop), api_(api), node_(node) {
  listen_fd_ = api_.OpenStream();
  if (listen_fd_ < 0) {
    listen_error_ = listen_fd_;
    listen_fd_ = -1;
    return;
  }
  int rc = api_.Bind(listen_fd_, {kLoopbackIp, port});
  if (rc == 0) rc = api_.Listen(listen_fd_, 16);
  if (rc != 0) {
    listen_error_ = rc;
    api_.CloseFd(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  bsim::SockAddr bound{};
  api_.LocalEndpoint(listen_fd_, bound);
  port_ = bound.port;
  loop_.AddFd(listen_fd_, EPOLLIN, [this](std::uint32_t) { HandleAccept(); });
}

RpcServer::~RpcServer() {
  for (auto& [fd, client] : clients_) {
    loop_.DelFd(fd);
    api_.CloseFd(fd);
  }
  clients_.clear();
  if (listen_fd_ >= 0) {
    loop_.DelFd(listen_fd_);
    api_.CloseFd(listen_fd_);
  }
}

void RpcServer::HandleAccept() {
  for (int i = 0; i < 16; ++i) {
    bsim::SockAddr peer{};
    const int fd = api_.Accept(listen_fd_, peer);
    if (fd == -EAGAIN || fd == -EWOULDBLOCK) return;
    if (fd == -ECONNABORTED || fd == -EINTR) continue;
    if (fd < 0) return;
    clients_[fd] = Client{fd, {}, {}};
    loop_.AddFd(fd, EPOLLIN,
                [this, fd](std::uint32_t events) { HandleClient(fd, events); });
  }
}

void RpcServer::HandleClient(int fd, std::uint32_t events) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& client = it->second;

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseClient(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushClient(client);
    if (clients_.find(fd) == clients_.end()) return;
  }
  if ((events & EPOLLIN) == 0) return;

  char buf[4096];
  for (;;) {
    const long n = api_.Recv(fd, buf, sizeof buf);
    if (n == -EAGAIN || n == -EWOULDBLOCK) break;
    if (n == -EINTR) continue;
    if (n <= 0) {
      CloseClient(fd);
      return;
    }
    client.in.append(buf, static_cast<std::size_t>(n));
    if (client.in.size() > kMaxLineBytes) {
      CloseClient(fd);
      return;
    }
  }

  std::size_t nl;
  while ((nl = client.in.find('\n')) != std::string::npos) {
    std::string line = client.in.substr(0, nl);
    client.in.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    client.out += Dispatch(line);
    client.out += '\n';
  }
  FlushClient(client);
}

void RpcServer::FlushClient(Client& client) {
  while (!client.out.empty()) {
    const long n = api_.Send(client.fd, client.out.data(), client.out.size());
    if (n == -EAGAIN || n == -EWOULDBLOCK) {
      loop_.ModFd(client.fd, EPOLLIN | EPOLLOUT);
      return;
    }
    if (n == -EINTR) continue;
    if (n <= 0) {
      CloseClient(client.fd);
      return;
    }
    client.out.erase(0, static_cast<std::size_t>(n));
  }
  loop_.ModFd(client.fd, EPOLLIN);
}

void RpcServer::CloseClient(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  loop_.DelFd(fd);
  api_.CloseFd(fd);
  clients_.erase(it);
}

std::string RpcServer::Dispatch(const std::string& line) {
  ++requests_served_;
  const auto parsed = bsutil::ParseJson(line);
  if (!parsed || !parsed->IsObject()) return ErrorLine("malformed request");
  const bsutil::JsonValue* method = parsed->Find("method");
  if (method == nullptr || !method->IsString()) {
    return ErrorLine("missing method");
  }

  if (method->str == "getinfo") {
    std::size_t established = 0;
    for (const Peer* peer : node_.Peers()) {
      if (peer->got_version && peer->got_verack) ++established;
    }
    return "{\"result\":{\"height\":" + std::to_string(node_.Chain().TipHeight()) +
           ",\"peers\":" + std::to_string(node_.Peers().size()) +
           ",\"established\":" + std::to_string(established) +
           ",\"bans\":" + std::to_string(node_.Bans().Size()) + "}}";
  }

  if (method->str == "getpeerinfo") {
    std::string items;
    for (const Peer* peer : node_.Peers()) {
      if (!items.empty()) items += ",";
      items += "{\"id\":" + std::to_string(peer->id) +
               ",\"addr\":\"" + FormatEndpoint(peer->remote) +
               "\",\"inbound\":" + (peer->inbound ? "true" : "false") +
               ",\"established\":" +
               (peer->got_version && peer->got_verack ? "true" : "false") +
               ",\"banscore\":" + std::to_string(node_.Tracker().Score(peer->id)) +
               ",\"messages\":" + std::to_string(peer->messages_received) +
               ",\"bytes\":" + std::to_string(peer->bytes_received) +
               ",\"last_pong_rtt_ns\":" + std::to_string(peer->last_pong_rtt) +
               "}";
    }
    return "{\"result\":[" + items + "]}";
  }

  if (method->str == "banlist") {
    std::string items;
    for (const bsproto::Endpoint& ep : node_.Bans().Snapshot()) {
      if (!items.empty()) items += ",";
      items += "{\"addr\":\"" + FormatEndpoint(ep) +
               "\",\"until_ns\":" + std::to_string(node_.Bans().BanExpiry(ep)) +
               "}";
    }
    return "{\"result\":[" + items + "]}";
  }

  if (method->str == "metrics") {
    // RenderJson is single-line by construction; embed it raw.
    return "{\"result\":" + node_.Metrics().RenderJson() + "}";
  }

  if (method->str == "setban") {
    const bsutil::JsonValue* ip_text = parsed->Find("ip");
    if (ip_text == nullptr || !ip_text->IsString()) {
      return ErrorLine("setban: missing ip");
    }
    const auto ip = ParseIp(ip_text->str);
    if (!ip) return ErrorLine("setban: bad ip");
    const auto port =
        static_cast<std::uint16_t>(NumberOr(*parsed, "port", 0));
    const bsproto::Endpoint who{*ip, port};
    const bsutil::JsonValue* remove = parsed->Find("remove");
    if (remove != nullptr && remove->kind == bsutil::JsonValue::Kind::kBool &&
        remove->boolean) {
      node_.Bans().Unban(who);
      return "{\"result\":\"unbanned\"}";
    }
    const double seconds = NumberOr(*parsed, "seconds", 86400.0);
    const bsim::SimTime now = node_.Sched().Now();
    node_.Bans().Ban(who, now + static_cast<bsim::SimTime>(seconds) * bsim::kSecond);
    if (const Peer* peer = node_.FindPeerByRemote(who)) {
      node_.DisconnectPeer(peer->id);
    }
    return "{\"result\":\"banned\"}";
  }

  if (method->str == "stop") {
    stop_requested_ = true;
    if (on_stop) on_stop();
    return "{\"result\":\"stopping\"}";
  }

  return ErrorLine("unknown method: " + method->str);
}

// ---------------------------------------------------------------------------
// RpcCall — blocking client on raw sockets (never the daemon's loop thread).

std::optional<std::string> RpcCall(std::uint16_t port, const std::string& request,
                                   int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  std::string wire = request;
  wire += '\n';
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    reply.append(buf, static_cast<std::size_t>(n));
    const std::size_t nl = reply.find('\n');
    if (nl != std::string::npos) {
      ::close(fd);
      reply.resize(nl);
      return reply;
    }
    if (reply.size() > kMaxLineBytes) {
      ::close(fd);
      return std::nullopt;
    }
  }
}

}  // namespace bsnet
