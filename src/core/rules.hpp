// The ban-score rule sets of Bitcoin Core 0.20.0, 0.21.0 and 0.22.0 —
// a faithful encoding of the paper's Table I, including the per-version
// deprecations (FILTERADD version gate gone after 0.20; VERACK disorder rule
// gone after 0.20; VERSION rules gone in 0.22).
//
// A small number of misbehaviors Bitcoin Core punishes but the paper's
// Table I does not enumerate (e.g. a full block failing PoW after passing
// the checksum) are included with `in_paper_table = false` so the node
// behaves like the real implementation while the Table I reproduction bench
// can print exactly the paper's rows.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace bsnet {

enum class CoreVersion { kV0_20 = 0, kV0_21 = 1, kV0_22 = 2 };

const char* ToString(CoreVersion v);

/// Which peers a rule applies to (Table I "Object of Ban").
enum class PeerScope { kAny, kInbound, kOutbound };

const char* ToString(PeerScope s);

/// Table I "Misbehavior Type".
enum class MisbehaviorClass { kInvalid, kOversize, kDisorder, kRepeat };

const char* ToString(MisbehaviorClass c);

/// Every misbehavior the node can attribute to a peer.
enum class Misbehavior {
  // BLOCK
  kBlockMutated,           // block data was mutated
  kBlockCachedInvalid,     // block was cached as invalid
  kBlockPrevInvalid,       // previous block is invalid
  kBlockPrevMissing,       // previous block is missing
  kBlockOtherInvalid,      // PoW/coinbase/size/tx failure (not a Table I row)
  // TX
  kTxSegwitInvalid,        // invalid by consensus rules of SegWit
  kTxOtherConsensusInvalid,  // other consensus failure (not a Table I row)
  // GETBLOCKTXN
  kGetBlockTxnOutOfBounds,  // out-of-bounds transaction indices
  // HEADERS
  kHeadersNonConnecting,   // 10 non-connecting headers
  kHeadersNonContinuous,   // non-continuous headers sequence
  kHeadersOversize,        // more than 2000 headers
  kHeaderInvalidPow,       // header fails PoW (not a Table I row)
  // ADDR / INV / GETDATA
  kAddrOversize,           // more than 1000 addresses
  kInvOversize,            // more than 50000 inventory entries
  kGetDataOversize,        // more than 50000 inventory entries
  // CMPCTBLOCK
  kCmpctBlockInvalid,      // invalid compact block data
  // FILTERLOAD / FILTERADD
  kFilterLoadOversize,     // bloom filter size > 36000 bytes
  kFilterAddOversize,      // data item > 520 bytes
  kFilterAddVersionGate,   // protocol version number >= 70011
  // Handshake
  kVersionDuplicate,       // duplicate VERSION
  kMessageBeforeVersion,   // message before VERSION
  kMessageBeforeVerack,    // message (other than VERSION) before VERACK
  // Ablation-only rule (never active in stock configurations): punish frames
  // whose message checksum fails, closing the bogus-payload loophole.
  kBadChecksumFrame,
};

const char* ToString(Misbehavior m);

/// One rule in one Core version's rule set.
struct RuleInfo {
  Misbehavior what;
  int score;                 // ban-score increment
  PeerScope scope;
  MisbehaviorClass cls;
  const char* message_type;  // wire command the rule is attached to
  const char* description;   // Table I "Message Misbehavior" text
  bool in_paper_table;       // row appears in the paper's Table I
};

/// Look up the rule for `what` under `version`. Returns nullopt when the
/// rule does not exist in that version (deprecated / not yet present) —
/// the mechanism then takes no action, exactly like Core.
std::optional<RuleInfo> GetRule(CoreVersion version, Misbehavior what);

/// All rules present in `version`, in Table I order.
std::vector<RuleInfo> RulesFor(CoreVersion version);

/// All misbehavior kinds (for parameterized tests).
const std::vector<Misbehavior>& AllMisbehaviors();

}  // namespace bsnet
