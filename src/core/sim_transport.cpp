#include "core/sim_transport.hpp"

#include <utility>

namespace bsnet {

SimTransport::SimTransport(bsim::Scheduler& sched, bsim::Network& net,
                           std::uint32_t ip)
    : host_(*this, sched, net, ip) {}

void SimTransport::Listen(std::uint16_t port, AcceptCallback on_accept) {
  host_.Listen(port, [cb = std::move(on_accept)](bsim::TcpConnection& conn) {
    cb(conn);
  });
}

TransportConn* SimTransport::Connect(const bsproto::Endpoint& remote) {
  // on_connected is wired by the caller on the returned connection; the sim
  // handshake needs at least one scheduler hop, so the callback cannot fire
  // before the caller had the chance.
  return host_.Connect(remote, nullptr);
}

void SimTransport::Abandon() {
  // Crash semantics, matching the pre-seam Node::Stop(): connections vanish
  // without FIN/RST or callbacks, and the host leaves the network early so
  // in-flight segments are dropped (Detach again in ~Host is a no-op).
  host_.AbandonConnections();
  host_.Net().Detach(&host_);
}

}  // namespace bsnet
