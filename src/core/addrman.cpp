#include "core/addrman.hpp"

#include "util/serialize.hpp"

namespace bsnet {

namespace {
// Format tag so stale/foreign files are rejected cleanly.
constexpr std::uint32_t kAddrTableMagic = 0x41445231;  // "ADR1"
}  // namespace

void AddrMan::Add(const Endpoint& addr) {
  if (order_.size() >= kMaxSize) return;
  if (set_.insert(addr).second) {
    order_.push_back(addr);
    if (on_add) on_add(addr);
  }
}

void AddrMan::AddMany(const std::vector<Endpoint>& addrs) {
  for (const Endpoint& a : addrs) Add(a);
}

std::vector<Endpoint> AddrMan::Sample(std::size_t count) {
  std::vector<Endpoint> out;
  if (order_.empty()) return out;
  count = std::min(count, order_.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(order_[rng_.Below(order_.size())]);
  return out;
}

bsutil::ByteVec AddrMan::Serialize() const {
  bsutil::Writer w;
  w.WriteU32(kAddrTableMagic);
  w.WriteCompactSize(order_.size());
  for (const Endpoint& ep : order_) {
    w.WriteU32(ep.ip);
    w.WriteU16(ep.port);
  }
  return w.TakeData();
}

bool AddrMan::Deserialize(bsutil::ByteSpan data) {
  try {
    bsutil::Reader r(data);
    if (r.ReadU32() != kAddrTableMagic) return false;
    const std::uint64_t count = r.ReadCompactSize();
    if (count > kMaxSize) return false;  // allocation guard
    std::vector<Endpoint> order;
    std::unordered_set<Endpoint, bsproto::EndpointHasher> set;
    order.reserve(count);
    set.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Endpoint ep;
      ep.ip = r.ReadU32();
      ep.port = r.ReadU16();
      if (set.insert(ep).second) order.push_back(ep);
    }
    if (!r.AtEnd()) return false;
    set_ = std::move(set);
    order_ = std::move(order);
    return true;
  } catch (const bsutil::DeserializeError&) {
    return false;
  }
}

}  // namespace bsnet
