#include "core/addrman.hpp"

namespace bsnet {

void AddrMan::Add(const Endpoint& addr) {
  if (order_.size() >= kMaxSize) return;
  if (set_.insert(addr).second) order_.push_back(addr);
}

void AddrMan::AddMany(const std::vector<Endpoint>& addrs) {
  for (const Endpoint& a : addrs) Add(a);
}

std::vector<Endpoint> AddrMan::Sample(std::size_t count) {
  std::vector<Endpoint> out;
  if (order_.empty()) return out;
  count = std::min(count, order_.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(order_[rng_.Below(order_.size())]);
  return out;
}

}  // namespace bsnet
