#include "core/addrman.hpp"

#include <algorithm>

#include "util/serialize.hpp"

namespace bsnet {

namespace {
// Format tags so stale/foreign files are rejected cleanly. ADR1 is the flat
// table (ip/port pairs only); ADR2 adds the tried flag and dial bookkeeping.
constexpr std::uint32_t kAddrTableMagic = 0x41445231;    // "ADR1"
constexpr std::uint32_t kAddrTableMagicV2 = 0x41445232;  // "ADR2"

// Domain tags keep the four placement hashes (new/tried bucket, new/tried
// slot) on independent streams of the same seed.
constexpr std::uint64_t kDomainNewBucket = 0x6e657762;    // "newb"
constexpr std::uint64_t kDomainTriedBucket = 0x74726462;  // "trdb"
constexpr std::uint64_t kDomainNewSlot = 0x6e657773;      // "news"
constexpr std::uint64_t kDomainTriedSlot = 0x74726473;    // "trds"

std::uint64_t SplitMix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t Mix(std::uint64_t seed, std::uint64_t domain, std::uint64_t a,
                  std::uint64_t b) {
  return SplitMix(SplitMix(SplitMix(seed ^ domain) ^ a) ^ b);
}

std::uint64_t EndpointKey(const Endpoint& ep) {
  return (static_cast<std::uint64_t>(ep.ip) << 16) | ep.port;
}
}  // namespace

void AddrMan::EnableBucketing() {
  if (bucketed_) return;
  bucketed_ = true;
  new_slots_.assign(kNewBuckets * kBucketSize, std::nullopt);
  tried_slots_.assign(kTriedBuckets * kBucketSize, std::nullopt);
  // Re-place any flat entries as `new` addresses. Entries that lose their
  // slot collision are dropped outright (no hooks: the caller flips this
  // switch before wiring persistence).
  const std::vector<Endpoint> existing = std::move(order_);
  order_.clear();
  set_.clear();
  for (const Endpoint& ep : existing) AddBucketed(ep, /*now=*/0, /*fire_hooks=*/false);
  UpdateGauges();
}

void AddrMan::Add(const Endpoint& addr, bsim::SimTime now) {
  if (set_.contains(addr)) return;
  if (bucketed_) {
    AddBucketed(addr, now, /*fire_hooks=*/true);
    UpdateGauges();
    return;
  }
  if (order_.size() >= kMaxSize) {
    // A full table must not silently starve new addresses — an attacker who
    // fills it first would otherwise own the candidate pool forever. Evict a
    // random incumbent instead (fallback stream: the main rng_ sequence is
    // part of the fig8 determinism contract).
    const std::size_t victim = fallback_rng_.Below(order_.size());
    const Endpoint evicted = order_[victim];
    set_.erase(evicted);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(victim));
    if (c_evicted_ != nullptr) c_evicted_->Inc();
    if (on_remove) on_remove(evicted);
  }
  set_.insert(addr);
  order_.push_back(addr);
  UpdateGauges();
  if (on_add) on_add(addr);
}

void AddrMan::AddMany(const std::vector<Endpoint>& addrs, bsim::SimTime now) {
  for (const Endpoint& a : addrs) Add(a, now);
}

bool AddrMan::AddBucketed(const Endpoint& ep, bsim::SimTime now, bool fire_hooks) {
  AddrInfo info;
  info.last_attempt = 0;
  if (!PlaceNew(ep, info, now, fire_hooks)) {
    if (fire_hooks && c_collision_drops_ != nullptr) c_collision_drops_->Inc();
    return false;
  }
  meta_.emplace(ep, info);
  set_.insert(ep);
  order_.push_back(ep);
  if (fire_hooks && on_add) on_add(ep);
  return true;
}

bool AddrMan::PlaceNew(const Endpoint& ep, AddrInfo& info, bsim::SimTime now,
                       bool fire_hooks) {
  const std::size_t bucket = NewBucketFor(ep);
  const std::size_t slot = NewSlotFor(bucket, ep);
  auto& cell = new_slots_[bucket * kBucketSize + slot];
  if (cell.has_value() && *cell != ep) {
    const auto inc_it = meta_.find(*cell);
    if (inc_it == meta_.end() || !IsTerrible(inc_it->second, now)) {
      return false;  // incumbent stays; the newcomer is dropped
    }
    RemoveEntry(*cell, fire_hooks);  // terrible incumbent is expired
    if (fire_hooks && c_terrible_expired_ != nullptr) c_terrible_expired_->Inc();
  }
  cell = ep;
  info.tried = false;
  info.bucket = static_cast<int>(bucket);
  info.slot = static_cast<int>(slot);
  ++new_count_;
  return true;
}

void AddrMan::Attempt(const Endpoint& addr, bsim::SimTime now) {
  if (!bucketed_) return;
  const auto it = meta_.find(addr);
  if (it == meta_.end()) return;
  AddrInfo& info = it->second;
  ++info.attempts;
  info.last_attempt = now;
  // Only `new` entries are expired on failure; a tried address earned its
  // slot with a real handshake and keeps it until a collision demotes it.
  if (!info.tried && IsTerrible(info, now)) {
    RemoveEntry(addr, /*fire_hooks=*/true);
    if (c_terrible_expired_ != nullptr) c_terrible_expired_->Inc();
    UpdateGauges();
  }
}

bool AddrMan::Good(const Endpoint& addr, bsim::SimTime now) {
  if (!bucketed_) return false;
  const auto it = meta_.find(addr);
  if (it == meta_.end()) return false;
  AddrInfo& info = it->second;
  info.attempts = 0;
  info.last_success = now;
  if (info.tried) return false;
  const bool promoted = PromoteTried(addr, now, /*fire_hooks=*/true);
  if (promoted) {
    UpdateGauges();
    if (on_good) on_good(addr, now);
  }
  return promoted;
}

bool AddrMan::PromoteTried(const Endpoint& ep, bsim::SimTime now, bool fire_hooks) {
  const auto it = meta_.find(ep);
  if (it == meta_.end() || it->second.tried) return false;
  AddrInfo& info = it->second;
  const std::size_t bucket = TriedBucketFor(ep);
  const std::size_t slot = TriedSlotFor(bucket, ep);
  auto& cell = tried_slots_[bucket * kBucketSize + slot];
  if (cell.has_value() && *cell != ep) {
    // Collision: the incumbent is demoted back to its new-table position
    // (Core's test-before-evict, collapsed to immediate demotion — the
    // newcomer just proved itself with a live handshake).
    const Endpoint incumbent = *cell;
    cell.reset();
    --tried_count_;
    const auto inc_it = meta_.find(incumbent);
    if (inc_it != meta_.end()) {
      AddrInfo& inc = inc_it->second;
      inc.tried = false;
      inc.bucket = -1;  // off-table until re-placed (RemoveEntry must not
      inc.slot = -1;    // touch the vacated tried slot's bookkeeping)
      if (!PlaceNew(incumbent, inc, now, fire_hooks)) {
        // No room back in new: the incumbent falls out of the table.
        RemoveEntry(incumbent, fire_hooks);
      }
    }
  }
  // Vacate the promoted entry's new slot.
  new_slots_[static_cast<std::size_t>(info.bucket) * kBucketSize +
             static_cast<std::size_t>(info.slot)]
      .reset();
  --new_count_;
  tried_slots_[bucket * kBucketSize + slot] = ep;
  info.tried = true;
  info.bucket = static_cast<int>(bucket);
  info.slot = static_cast<int>(slot);
  ++tried_count_;
  return true;
}

void AddrMan::RemoveEntry(const Endpoint& ep, bool fire_hooks) {
  const auto it = meta_.find(ep);
  if (it == meta_.end()) return;
  const AddrInfo& info = it->second;
  if (info.bucket >= 0 && info.slot >= 0) {
    auto& table = info.tried ? tried_slots_ : new_slots_;
    auto& cell = table[static_cast<std::size_t>(info.bucket) * kBucketSize +
                       static_cast<std::size_t>(info.slot)];
    if (cell.has_value() && *cell == ep) cell.reset();
    if (info.tried) {
      --tried_count_;
    } else {
      --new_count_;
    }
  }
  meta_.erase(it);
  set_.erase(ep);
  EraseFromOrder(ep);
  if (fire_hooks && on_remove) on_remove(ep);
}

void AddrMan::EraseFromOrder(const Endpoint& ep) {
  const auto pos = std::find(order_.begin(), order_.end(), ep);
  if (pos != order_.end()) order_.erase(pos);
}

bool AddrMan::IsTerrible(const AddrInfo& info, bsim::SimTime now) const {
  if (info.attempts < kMaxRetries) return false;
  if (info.last_success == 0) return true;  // never worked, keeps failing
  return now - info.last_success > kRetryHorizon;
}

std::size_t AddrMan::NewBucketFor(const Endpoint& ep) const {
  const std::uint64_t group = NetGroup(ep.ip);
  // The address hashes into one of the group's kGroupNewBuckets allotted
  // positions; which kNewBuckets slots those are is itself a seeded hash of
  // the group. One /16 can therefore never reach more than 8 of 256 buckets.
  const std::uint64_t pick =
      Mix(seed_, kDomainNewBucket, group, EndpointKey(ep)) % kGroupNewBuckets;
  return Mix(seed_, kDomainNewBucket, group, pick) % kNewBuckets;
}

std::size_t AddrMan::TriedBucketFor(const Endpoint& ep) const {
  const std::uint64_t group = NetGroup(ep.ip);
  const std::uint64_t pick =
      Mix(seed_, kDomainTriedBucket, group, EndpointKey(ep)) % kGroupTriedBuckets;
  return Mix(seed_, kDomainTriedBucket, group, pick) % kTriedBuckets;
}

std::size_t AddrMan::NewSlotFor(std::size_t bucket, const Endpoint& ep) const {
  return Mix(seed_, kDomainNewSlot, bucket, EndpointKey(ep)) % kBucketSize;
}

std::size_t AddrMan::TriedSlotFor(std::size_t bucket, const Endpoint& ep) const {
  return Mix(seed_, kDomainTriedSlot, bucket, EndpointKey(ep)) % kBucketSize;
}

const Endpoint* AddrMan::DrawBucketCandidate() {
  // 50/50 tried/new when both are populated, so a poisoned new table cannot
  // crowd proven peers out of candidate draws.
  const bool want_tried = tried_count_ > 0 && (new_count_ == 0 || rng_.Below(2) == 0);
  const auto& table = want_tried ? tried_slots_ : new_slots_;
  if ((want_tried ? tried_count_ : new_count_) == 0) return nullptr;
  const auto& cell = table[rng_.Below(table.size())];
  return cell.has_value() ? &*cell : nullptr;
}

const Endpoint* AddrMan::DrawNewCandidate() {
  if (new_count_ == 0) return nullptr;
  const auto& cell = new_slots_[rng_.Below(new_slots_.size())];
  return cell.has_value() ? &*cell : nullptr;
}

std::vector<Endpoint> AddrMan::Sample(std::size_t count) {
  std::vector<Endpoint> out;
  if (order_.empty()) return out;
  count = std::min(count, order_.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(order_[rng_.Below(order_.size())]);
  return out;
}

void AddrMan::RestoreAdd(const Endpoint& addr) {
  if (set_.contains(addr)) return;
  if (bucketed_) {
    AddBucketed(addr, /*now=*/0, /*fire_hooks=*/false);
    UpdateGauges();
    return;
  }
  if (order_.size() >= kMaxSize) return;
  set_.insert(addr);
  order_.push_back(addr);
  UpdateGauges();
}

void AddrMan::RestoreRemove(const Endpoint& addr) {
  if (bucketed_) {
    RemoveEntry(addr, /*fire_hooks=*/false);
    UpdateGauges();
    return;
  }
  if (set_.erase(addr) == 0) return;
  EraseFromOrder(addr);
  UpdateGauges();
}

void AddrMan::RestoreGood(const Endpoint& addr, bsim::SimTime now) {
  if (!bucketed_) return;
  const auto it = meta_.find(addr);
  if (it == meta_.end()) return;
  it->second.attempts = 0;
  it->second.last_success = now;
  if (!it->second.tried) PromoteTried(addr, now, /*fire_hooks=*/false);
  UpdateGauges();
}

void AddrMan::AttachMetrics(bsobs::MetricsRegistry& registry) {
  g_tried_ = registry.GetGauge("bs_addrman_tried_size",
                               "Addresses in the tried table (0 when flat)");
  g_new_ = registry.GetGauge("bs_addrman_new_size",
                             "Addresses in the new table (all entries when flat)");
  c_evicted_ = registry.GetCounter("bs_addrman_evicted_total",
                                   "Entries evicted from a full flat table");
  c_terrible_expired_ = registry.GetCounter(
      "bs_addrman_terrible_expired_total",
      "Terrible (never-working) addresses expired from the new table");
  c_collision_drops_ = registry.GetCounter(
      "bs_addrman_collision_drops_total",
      "Addresses dropped on a new-table slot collision");
  UpdateGauges();
}

void AddrMan::UpdateGauges() {
  if (g_new_ != nullptr) g_new_->Set(static_cast<double>(NewCount()));
  if (g_tried_ != nullptr) g_tried_->Set(static_cast<double>(tried_count_));
}

std::optional<AddrMan::EntryDebug> AddrMan::DebugEntry(const Endpoint& addr) const {
  const auto it = meta_.find(addr);
  if (it == meta_.end()) {
    if (!bucketed_ && set_.contains(addr)) return EntryDebug{};
    return std::nullopt;
  }
  const AddrInfo& info = it->second;
  return EntryDebug{info.tried,        info.bucket,       info.slot,
                    info.attempts,     info.last_attempt, info.last_success};
}

bsutil::ByteVec AddrMan::Serialize() const {
  bsutil::Writer w;
  if (!bucketed_) {
    // Legacy flat format, byte-for-byte (part of the PR 4 store contract).
    w.WriteU32(kAddrTableMagic);
    w.WriteCompactSize(order_.size());
    for (const Endpoint& ep : order_) {
      w.WriteU32(ep.ip);
      w.WriteU16(ep.port);
    }
    return w.TakeData();
  }
  w.WriteU32(kAddrTableMagicV2);
  w.WriteCompactSize(order_.size());
  for (const Endpoint& ep : order_) {
    const AddrInfo& info = meta_.at(ep);
    w.WriteU32(ep.ip);
    w.WriteU16(ep.port);
    w.WriteU8(info.tried ? 1 : 0);
    w.WriteU32(static_cast<std::uint32_t>(info.attempts));
    w.WriteI64(info.last_attempt);
    w.WriteI64(info.last_success);
  }
  return w.TakeData();
}

bool AddrMan::Deserialize(bsutil::ByteSpan data) {
  try {
    bsutil::Reader r(data);
    const std::uint32_t magic = r.ReadU32();
    if (magic != kAddrTableMagic && magic != kAddrTableMagicV2) return false;
    const bool v2 = magic == kAddrTableMagicV2;
    const std::uint64_t count = r.ReadCompactSize();
    if (count > kMaxSize) return false;  // allocation guard
    struct Loaded {
      Endpoint ep;
      AddrInfo info;
    };
    std::vector<Loaded> loaded;
    std::unordered_set<Endpoint, bsproto::EndpointHasher> seen;
    loaded.reserve(count);
    seen.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Loaded l;
      l.ep.ip = r.ReadU32();
      l.ep.port = r.ReadU16();
      if (v2) {
        l.info.tried = r.ReadU8() != 0;
        l.info.attempts = static_cast<int>(r.ReadU32());
        l.info.last_attempt = static_cast<bsim::SimTime>(r.ReadU64());
        l.info.last_success = static_cast<bsim::SimTime>(r.ReadU64());
      }
      if (seen.insert(l.ep).second) loaded.push_back(l);
    }
    if (!r.AtEnd()) return false;

    if (!bucketed_) {
      // Flat mode keeps only the addresses (insertion order preserved);
      // bucket metadata from a V2 file is irrelevant without the overlay.
      std::vector<Endpoint> order;
      order.reserve(loaded.size());
      for (const Loaded& l : loaded) order.push_back(l.ep);
      set_ = std::move(seen);
      order_ = std::move(order);
      UpdateGauges();
      return true;
    }

    // Bucketed rebuild: placement is a pure function of (seed, address), so
    // re-adding in insertion order reproduces the exact pre-serialize layout
    // — entries that co-existed before cannot newly collide.
    set_.clear();
    order_.clear();
    meta_.clear();
    new_slots_.assign(kNewBuckets * kBucketSize, std::nullopt);
    tried_slots_.assign(kTriedBuckets * kBucketSize, std::nullopt);
    new_count_ = 0;
    tried_count_ = 0;
    for (const Loaded& l : loaded) {
      if (!AddBucketed(l.ep, /*now=*/0, /*fire_hooks=*/false)) continue;
      AddrInfo& info = meta_.at(l.ep);
      info.attempts = l.info.attempts;
      info.last_attempt = l.info.last_attempt;
      info.last_success = l.info.last_success;
      if (l.info.tried) PromoteTried(l.ep, l.info.last_success, /*fire_hooks=*/false);
    }
    UpdateGauges();
    return true;
  } catch (const bsutil::DeserializeError&) {
    return false;
  }
}

}  // namespace bsnet
