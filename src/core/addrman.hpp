// Peer address table (simplified addrman). The node draws outbound
// connection candidates from here; Defamation shrinks the usable pool, which
// is the "peer-table diversity" impact §VI-D measures.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "proto/netaddr.hpp"
#include "util/rng.hpp"

namespace bsnet {

using bsproto::Endpoint;

class AddrMan {
 public:
  explicit AddrMan(std::uint64_t seed = 1) : rng_(seed) {}

  /// Add a candidate address; duplicates are ignored. Capped at `kMaxSize`.
  void Add(const Endpoint& addr);
  void AddMany(const std::vector<Endpoint>& addrs);

  bool Contains(const Endpoint& addr) const { return set_.contains(addr); }
  std::size_t Size() const { return order_.size(); }

  /// Uniformly random candidate not in `exclude` and not rejected by
  /// `is_usable` (the node passes a ban-and-connected filter). Returns
  /// nullopt when the table has no usable entry — the diversity-exhaustion
  /// outcome of a full-IP Defamation.
  template <typename Pred>
  std::optional<Endpoint> Select(Pred is_usable) {
    if (order_.empty()) return std::nullopt;
    // Bounded random probing, then a linear fallback scan for determinism.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const Endpoint& cand = order_[rng_.Below(order_.size())];
      if (is_usable(cand)) return cand;
    }
    for (const Endpoint& cand : order_) {
      if (is_usable(cand)) return cand;
    }
    return std::nullopt;
  }

  /// Random sample of up to `count` addresses (GETADDR responses).
  std::vector<Endpoint> Sample(std::size_t count);

  static constexpr std::size_t kMaxSize = 16'384;

 private:
  bsutil::Rng rng_;
  std::unordered_set<Endpoint, bsproto::EndpointHasher> set_;
  std::vector<Endpoint> order_;
};

}  // namespace bsnet
