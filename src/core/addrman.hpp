// Peer address table (simplified addrman). The node draws outbound
// connection candidates from here; Defamation shrinks the usable pool, which
// is the "peer-table diversity" impact §VI-D measures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "proto/netaddr.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bsnet {

using bsproto::Endpoint;

class AddrMan {
 public:
  explicit AddrMan(std::uint64_t seed = 1) : rng_(seed) {}

  /// Add a candidate address; duplicates are ignored. Capped at `kMaxSize`.
  void Add(const Endpoint& addr);
  void AddMany(const std::vector<Endpoint>& addrs);

  bool Contains(const Endpoint& addr) const { return set_.contains(addr); }
  std::size_t Size() const { return order_.size(); }

  /// Uniformly random candidate not in `exclude` and not rejected by
  /// `is_usable` (the node passes a ban-and-connected filter). Returns
  /// nullopt when the table has no usable entry — the diversity-exhaustion
  /// outcome of a full-IP Defamation.
  template <typename Pred>
  std::optional<Endpoint> Select(Pred is_usable) {
    if (order_.empty()) return std::nullopt;
    // Bounded random probing, then a linear fallback scan for determinism.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const Endpoint& cand = order_[rng_.Below(order_.size())];
      if (is_usable(cand)) return cand;
    }
    for (const Endpoint& cand : order_) {
      if (is_usable(cand)) return cand;
    }
    return std::nullopt;
  }

  /// Random sample of up to `count` addresses (GETADDR responses).
  std::vector<Endpoint> Sample(std::size_t count);

  /// Durable-store hook: fired when Add actually inserts a new address.
  /// Restore/Deserialize paths never fire it.
  std::function<void(const Endpoint& addr)> on_add;

  /// Replay path (WAL kAddrAdd): insert without firing on_add.
  void RestoreAdd(const Endpoint& addr) {
    if (order_.size() >= kMaxSize) return;
    if (set_.insert(addr).second) order_.push_back(addr);
  }

  // ---- Persistence (the peers.dat analogue) ----
  /// Serialize all addresses in insertion order (Select/Sample determinism
  /// depends on `order_`, so the order itself is part of the state).
  bsutil::ByteVec Serialize() const;
  /// Replace current contents with a serialized address table. Returns false
  /// on malformed input (contents are then unchanged).
  bool Deserialize(bsutil::ByteSpan data);

  static constexpr std::size_t kMaxSize = 16'384;

 private:
  bsutil::Rng rng_;
  std::unordered_set<Endpoint, bsproto::EndpointHasher> set_;
  std::vector<Endpoint> order_;
};

}  // namespace bsnet
