// Peer address table. The node draws outbound connection candidates from
// here; Defamation shrinks the usable pool, which is the "peer-table
// diversity" impact §VI-D measures.
//
// Two modes share one API:
//
//   * flat (default) — the paper-faithful uniform-random table. Selection
//     and sampling consume the same RNG sequence as the original seed code,
//     so the fig6/fig8 benches stay bit-identical.
//   * bucketed (EnableBucketing, wired to NodeConfig::enable_addrman_bucketing)
//     — a Core-style tried/new table. Placement is a seeded hash of the
//     address and its /16 netgroup (eviction.hpp's NetGroup), and each group
//     can only ever reach kGroupNewBuckets new buckets and kGroupTriedBuckets
//     tried buckets, so an attacker gossiping thousands of one-subnet
//     addresses is confined to a few percent of the table instead of
//     drowning it — the structural defense against Eclipse-style address
//     poisoning. Good() promotes an address into tried on a completed
//     handshake; Attempt() failures accumulate until a never-successful
//     address turns "terrible" and is expired.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/eviction.hpp"  // NetGroup: the /16 grouping shared with eviction
#include "obs/metrics.hpp"
#include "proto/netaddr.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bsnet {

using bsproto::Endpoint;

class AddrMan {
 public:
  explicit AddrMan(std::uint64_t seed = 1)
      : seed_(seed), rng_(seed), fallback_rng_(seed ^ 0x5eedfa11bac5ULL) {}

  /// Switch to the Core-style tried/new bucketed table. Call before any
  /// address is added (the node wires this at construction); existing flat
  /// entries are re-placed as `new` entries.
  void EnableBucketing();
  bool BucketingEnabled() const { return bucketed_; }

  /// Add a candidate address; duplicates are ignored. A full flat table
  /// evicts a random incumbent (seeded RNG) so new addresses are never
  /// silently starved; a bucketed table resolves the hash-slot collision
  /// instead (the newcomer loses unless the incumbent is terrible).
  void Add(const Endpoint& addr, bsim::SimTime now = 0);
  void AddMany(const std::vector<Endpoint>& addrs, bsim::SimTime now = 0);

  bool Contains(const Endpoint& addr) const { return set_.contains(addr); }
  std::size_t Size() const { return order_.size(); }

  // ---- Bucketed lifecycle (no-ops in flat mode) ----
  /// Record a dial attempt toward `addr`. A never-successful address that
  /// keeps failing turns terrible and is expired from the new table.
  void Attempt(const Endpoint& addr, bsim::SimTime now);
  /// Completed handshake: promote `addr` from new to tried (netgroup-keyed
  /// bucket; a collision demotes the incumbent back to new). Returns true
  /// when the address was actually promoted by this call.
  bool Good(const Endpoint& addr, bsim::SimTime now);
  bool IsTried(const Endpoint& addr) const {
    const auto it = meta_.find(addr);
    return it != meta_.end() && it->second.tried;
  }
  std::size_t TriedCount() const { return tried_count_; }
  std::size_t NewCount() const { return bucketed_ ? new_count_ : order_.size(); }

  /// Uniformly random candidate not rejected by `is_usable` (the node passes
  /// a ban-and-connected filter). Returns nullopt when the table has no
  /// usable entry — the diversity-exhaustion outcome of a full-IP
  /// Defamation. Bucketed mode draws a random bucket first, so a netgroup's
  /// share of candidates is capped by its bucket quota no matter how many
  /// addresses it stuffed into the table.
  template <typename Pred>
  std::optional<Endpoint> Select(Pred is_usable) {
    if (order_.empty()) return std::nullopt;
    if (!bucketed_) {
      // Bounded random probing (unchanged RNG sequence vs the flat seed
      // code), then the deterministic fallback scan below.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const Endpoint& cand = order_[rng_.Below(order_.size())];
        if (is_usable(cand)) return cand;
      }
    } else {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const Endpoint* cand = DrawBucketCandidate();
        if (cand != nullptr && is_usable(*cand)) return *cand;
      }
    }
    // Fallback scan from a seeded random offset: starting at order_[0] would
    // bias reconnect-after-ban toward the oldest (attacker-seeded) entries.
    // The offset draws from a separate RNG stream so the probe sequence
    // above stays bit-identical to the original code.
    const std::size_t start = fallback_rng_.Below(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const Endpoint& cand = order_[(start + i) % order_.size()];
      if (is_usable(cand)) return cand;
    }
    return std::nullopt;
  }

  /// Candidate drawn from the `new` table only — what a feeler connection
  /// probes (flat mode degrades to Select: there is no table split).
  template <typename Pred>
  std::optional<Endpoint> SelectNew(Pred is_usable) {
    if (!bucketed_) return Select(is_usable);
    if (new_count_ == 0) return std::nullopt;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const Endpoint* cand = DrawNewCandidate();
      if (cand != nullptr && is_usable(*cand)) return *cand;
    }
    const std::size_t start = fallback_rng_.Below(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const Endpoint& cand = order_[(start + i) % order_.size()];
      if (!IsTried(cand) && is_usable(cand)) return cand;
    }
    return std::nullopt;
  }

  /// Random sample of up to `count` addresses (GETADDR responses).
  std::vector<Endpoint> Sample(std::size_t count);

  // ---- Durable-store hooks ----
  /// Fired when Add actually inserts a new address. Restore/Deserialize
  /// paths never fire hooks.
  std::function<void(const Endpoint& addr)> on_add;
  /// Fired when an address leaves the table (full-table eviction, terrible
  /// expiry, bucket-collision fallout).
  std::function<void(const Endpoint& addr)> on_remove;
  /// Fired when Good() promotes an address into the tried table; `at` is the
  /// promotion time (journaled so replay can rebuild last_success).
  std::function<void(const Endpoint& addr, bsim::SimTime at)> on_good;

  // ---- Replay paths (WAL records; never fire hooks) ----
  void RestoreAdd(const Endpoint& addr);
  void RestoreRemove(const Endpoint& addr);
  void RestoreGood(const Endpoint& addr, bsim::SimTime now);

  /// Publish table-size gauges and eviction counters (bs_addrman_* series).
  void AttachMetrics(bsobs::MetricsRegistry& registry);

  // ---- Persistence (the peers.dat analogue) ----
  /// Serialize all addresses in insertion order (Select/Sample determinism
  /// depends on `order_`, so the order itself is part of the state). Flat
  /// tables emit the legacy ADR1 format byte-for-byte; bucketed tables emit
  /// ADR2, which carries the tried flag and attempt bookkeeping.
  bsutil::ByteVec Serialize() const;
  /// Replace current contents with a serialized address table (either
  /// format). Returns false on malformed input (contents then unchanged).
  bool Deserialize(bsutil::ByteSpan data);

  // ---- Introspection (tests, debug dumps) ----
  struct EntryDebug {
    bool tried = false;
    int bucket = -1;
    int slot = -1;
    int attempts = 0;
    bsim::SimTime last_attempt = 0;
    bsim::SimTime last_success = 0;
  };
  std::optional<EntryDebug> DebugEntry(const Endpoint& addr) const;

  static constexpr std::size_t kMaxSize = 16'384;
  // Bucket geometry: capacities 16384 new / 4096 tried, matching kMaxSize.
  static constexpr std::size_t kNewBuckets = 256;
  static constexpr std::size_t kTriedBuckets = 64;
  static constexpr std::size_t kBucketSize = 64;
  /// Per-/16 bucket quotas: the poisoning confinement guarantee.
  static constexpr std::size_t kGroupNewBuckets = 8;
  static constexpr std::size_t kGroupTriedBuckets = 4;
  /// An address that failed this many dials without ever succeeding (or
  /// whose last success is past the horizon) is terrible and expired.
  static constexpr int kMaxRetries = 3;
  static constexpr bsim::SimTime kRetryHorizon = 10 * bsim::kMinute;

 private:
  struct AddrInfo {
    bool tried = false;
    int bucket = -1;
    int slot = -1;
    int attempts = 0;
    bsim::SimTime last_attempt = 0;
    bsim::SimTime last_success = 0;
  };

  bool IsTerrible(const AddrInfo& info, bsim::SimTime now) const;
  std::size_t NewBucketFor(const Endpoint& ep) const;
  std::size_t TriedBucketFor(const Endpoint& ep) const;
  std::size_t NewSlotFor(std::size_t bucket, const Endpoint& ep) const;
  std::size_t TriedSlotFor(std::size_t bucket, const Endpoint& ep) const;
  const Endpoint* DrawBucketCandidate();
  const Endpoint* DrawNewCandidate();

  /// Insert `ep` into its new-table slot. On collision the incumbent is
  /// expired if terrible, otherwise the newcomer loses. Returns true when
  /// `ep` holds a slot afterwards.
  bool PlaceNew(const Endpoint& ep, AddrInfo& info, bsim::SimTime now,
                bool fire_hooks);
  /// Promote an already-known entry into tried (collision demotes the
  /// incumbent back to new). Returns true on promotion.
  bool PromoteTried(const Endpoint& ep, bsim::SimTime now, bool fire_hooks);
  bool AddBucketed(const Endpoint& ep, bsim::SimTime now, bool fire_hooks);
  /// Remove an entry from every structure. `fire_hooks` controls on_remove.
  void RemoveEntry(const Endpoint& ep, bool fire_hooks);
  void EraseFromOrder(const Endpoint& ep);
  void UpdateGauges();

  std::uint64_t seed_;
  bsutil::Rng rng_;
  /// Separate stream for fallback offsets and full-table evictions, so the
  /// historical rng_ draw sequence (and with it fig8) is undisturbed.
  bsutil::Rng fallback_rng_;
  bool bucketed_ = false;

  std::unordered_set<Endpoint, bsproto::EndpointHasher> set_;
  std::vector<Endpoint> order_;

  // Bucketed-mode overlay (empty in flat mode).
  std::unordered_map<Endpoint, AddrInfo, bsproto::EndpointHasher> meta_;
  std::vector<std::optional<Endpoint>> new_slots_;
  std::vector<std::optional<Endpoint>> tried_slots_;
  std::size_t new_count_ = 0;
  std::size_t tried_count_ = 0;

  // Observability handles (null until AttachMetrics).
  bsobs::Gauge* g_tried_ = nullptr;
  bsobs::Gauge* g_new_ = nullptr;
  bsobs::Counter* c_evicted_ = nullptr;
  bsobs::Counter* c_terrible_expired_ = nullptr;
  bsobs::Counter* c_collision_drops_ = nullptr;
};

}  // namespace bsnet
