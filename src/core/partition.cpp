#include "core/partition.hpp"

namespace bsnet {

const char* ToString(PartitionMonitor::Stage stage) {
  switch (stage) {
    case PartitionMonitor::Stage::kNone: return "none";
    case PartitionMonitor::Stage::kFeelerBurst: return "feeler-burst";
    case PartitionMonitor::Stage::kAnchorRedial: return "anchor-redial";
    case PartitionMonitor::Stage::kEmergencySlot: return "emergency-slot";
    case PartitionMonitor::Stage::kRotate: return "rotate";
  }
  return "?";
}

void PartitionMonitor::OnTipAdvance(bsim::SimTime now, int height) {
  if (last_tip_advance_ > 0) {
    const bsim::SimTime interval = now - last_tip_advance_;
    if (ewma_interval_ <= 0) {
      ewma_interval_ = interval;
    } else {
      ewma_interval_ = static_cast<bsim::SimTime>(
          params_.ewma_alpha * static_cast<double>(interval) +
          (1.0 - params_.ewma_alpha) * static_cast<double>(ewma_interval_));
    }
  }
  last_tip_advance_ = now > 0 ? now : 1;
  tip_height_ = height;
}

void PartitionMonitor::OnProbeObservation(bsim::SimTime now, std::uint64_t peer_id,
                                          std::int32_t remote_height) {
  observations_[peer_id] = Observation{now, remote_height};
}

void PartitionMonitor::ForgetPeer(std::uint64_t peer_id) {
  observations_.erase(peer_id);
}

void PartitionMonitor::NoteNetgroupDiversity(std::size_t distinct_groups) {
  diversity_current_ = distinct_groups;
  diversity_watermark_ = std::max(diversity_watermark_, distinct_groups);
}

void PartitionMonitor::PruneStale(bsim::SimTime now) {
  for (auto it = observations_.begin(); it != observations_.end();) {
    if (now - it->second.time > params_.probe_freshness) {
      it = observations_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<std::int32_t> PartitionMonitor::BestRemoteHeight() const {
  std::optional<std::int32_t> best;
  for (const auto& [id, obs] : observations_) {
    if (!best || obs.height > *best) best = obs.height;
  }
  return best;
}

std::optional<std::uint64_t> PartitionMonitor::MostDivergentPeer(
    int our_height) const {
  std::optional<std::uint64_t> worst;
  std::int32_t worst_height = 0;
  for (const auto& [id, obs] : observations_) {
    if (obs.height >= our_height) continue;  // ahead of or level with us
    if (!worst || obs.height < worst_height) {
      worst = id;
      worst_height = obs.height;
    }
  }
  return worst;
}

double PartitionMonitor::Update(bsim::SimTime now, int our_height,
                                bool* recovered) {
  if (recovered != nullptr) *recovered = false;
  last_update_ = now;
  PruneStale(now);

  // External tip advances (blocks we mined, restarts restoring a higher tip)
  // must reset the staleness clock even if the caller never routed them
  // through OnTipAdvance.
  if (our_height > tip_height_ && last_tip_advance_ > 0) {
    OnTipAdvance(now, our_height);
  }
  if (last_tip_advance_ == 0) {
    // First tick: arm the clock without treating startup as a stall.
    last_tip_advance_ = now > 0 ? now : 1;
    tip_height_ = our_height;
  }

  const bsim::SimTime ewma =
      ewma_interval_ > 0 ? ewma_interval_ : params_.expected_block_interval;

  // Signal 1: staleness. Zero up to one EWMA interval (a block being a bit
  // late is normal), saturating at stale_multiple intervals without progress.
  const double since = static_cast<double>(now - last_tip_advance_);
  const double one = static_cast<double>(ewma);
  const double span = one * std::max(params_.stale_multiple - 1.0, 0.1);
  stale_signal_ = std::clamp((since - one) / span, 0.0, 1.0);

  // Signal 2: netgroup-diversity drawdown against the watermark.
  diversity_signal_ =
      diversity_watermark_ > 0
          ? std::clamp(1.0 - static_cast<double>(diversity_current_) /
                                 static_cast<double>(diversity_watermark_),
                       0.0, 1.0)
          : 0.0;

  // Signal 3: tip-probe disagreement. A fresh reply `divergence_blocks` or
  // more ahead of our tip is hard evidence we are behind; the signal ramps
  // with the gap.
  divergence_signal_ = 0.0;
  if (const auto best = BestRemoteHeight()) {
    const int gap = *best - our_height;
    if (gap >= params_.divergence_blocks && params_.divergence_blocks > 0) {
      divergence_signal_ = std::clamp(
          static_cast<double>(gap) /
              static_cast<double>(2 * params_.divergence_blocks),
          0.0, 1.0);
    }
  }

  suspicion_ = std::clamp(params_.weight_stale * stale_signal_ +
                              params_.weight_diversity * diversity_signal_ +
                              params_.weight_divergence * divergence_signal_,
                          0.0, 1.0);

  // Hysteresis + ladder clock. Between the thresholds the current state
  // holds, so suspicion oscillating around one threshold cannot flap the
  // recovery machinery.
  if (!high_ && suspicion_ >= params_.suspicion_high) {
    high_ = true;
    high_since_ = now;
  } else if (high_ && suspicion_ <= params_.suspicion_low) {
    high_ = false;
    high_since_ = 0;
    stage_ = Stage::kNone;
    if (recovered != nullptr) *recovered = true;
  }
  if (high_) {
    const bsim::SimTime held = now - high_since_;
    const bsim::SimTime step = std::max<bsim::SimTime>(params_.ladder_step, 1);
    const int raw = 1 + static_cast<int>(held / step);
    stage_ = static_cast<Stage>(
        std::min(raw, static_cast<int>(Stage::kRotate)));
  }
  return suspicion_;
}

void PartitionMonitor::Reset() {
  ewma_interval_ = 0;
  last_tip_advance_ = 0;
  tip_height_ = 0;
  diversity_current_ = 0;
  // Reset is the crash/stop path: a replacement node re-learns its own
  // diversity baseline rather than inheriting a watermark it never held.
  diversity_watermark_ = 0;
  observations_.clear();
  suspicion_ = stale_signal_ = diversity_signal_ = divergence_signal_ = 0.0;
  high_ = false;
  high_since_ = 0;
  last_update_ = 0;
  stage_ = Stage::kNone;
}

}  // namespace bsnet
