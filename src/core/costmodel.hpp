// Calibrated processing-cost model.
//
// Two kinds of numbers live here:
//
//  1. The paper's Table II per-message clock-cycle measurements (attacker
//     craft cost and victim application-layer processing cost, Bitcoin Core
//     0.20.0 on a 4 GHz i7). The simulator charges these against the shared
//     CPU so the scenario benches reproduce the paper's mining-rate figures.
//     The *real* costs of our own implementation are measured separately by
//     bench_table2_impact_cost; this table is the testbed-faithful model.
//
//  2. Attacker-side resource curves fitted to Table III (python BM-DoS tool
//     and hping ICMP flooder CPU%/memory vs flood rate).
//
// Both are substitutions documented in DESIGN.md: we cannot rerun the
// authors' testbed, so we encode its measured behaviour as the cost ground
// truth and reproduce the derived experiments on top.
#pragma once

#include <cstdint>

#include "proto/constants.hpp"

namespace bsnet {

/// Double-SHA256 checksum cost per payload byte (cycles). Charged for every
/// arriving frame — including bogus ones — because the checksum is computed
/// before anything else; this is what makes large bogus BLOCKs expensive for
/// the victim even though they never reach validation.
constexpr double kChecksumCyclesPerByte = 15.0;

/// Cycles charged for a frame refused by the rate limiter or CPU-budget
/// governor: header peek plus bucket bookkeeping only. The gap between this
/// and the checksum+processing cost of an admitted frame is the entire value
/// of shedding — a 60 kB bogus BLOCK costs ~9e5 cycles to checksum but only
/// this much to refuse.
constexpr double kRateLimitDropCycles = 2.0e4;

/// Table II: mean clock cycles for the attacker to craft one message of this
/// type (python-bitcoinlib attacker).
double AttackerCraftCycles(bsproto::MsgType type);

/// Table II: mean clock cycles for the victim's application layer to process
/// one valid message of this type (excludes the checksum and stack overhead,
/// which the CpuModel adds separately).
double VictimProcessCycles(bsproto::MsgType type);

/// Impact-cost ratio as defined in §VI-A.
double ImpactCostRatio(bsproto::MsgType type);

// ---------------------------------------------------------------------------
// Attacker-side resource curves (Table III fits).

/// CPU% of the python BM-DoS attacker at `msgs_per_sec` (GIL-bound,
/// saturates ≈6.6%): fitted through Table III's (1e2, 1.3%) and (1e3, 4.7%).
double PythonAttackerCpuPercent(double msgs_per_sec);

/// Resident memory of the python attacker (constant, Table III).
constexpr double kPythonAttackerMemMb = 14.34;

/// CPU% of the hping ICMP flooder at `pkts_per_sec` (saturating timer loop):
/// fitted through Table III's ICMP column.
double HpingAttackerCpuPercent(double pkts_per_sec);

/// Resident memory of hping (constant, Table III).
constexpr double kHpingAttackerMemMb = 2.048;

/// The paper's observed BM-DoS pipeline ceiling: one attacker process cannot
/// push more than this many Bitcoin messages per second before the socket
/// pipeline breaks (§VI-C). Sybil threads within one process share it.
constexpr double kBmDosPipelineCapMsgsPerSec = 1'000.0;

/// Network-layer flooders reach this rate (hping, §VI-C).
constexpr double kIcmpFloodCapPktsPerSec = 1'000'000.0;

}  // namespace bsnet
