#include "core/banman.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/log.hpp"
#include "util/serialize.hpp"

namespace bsnet {

namespace {
// Format tag so stale/foreign files are rejected cleanly.
constexpr std::uint32_t kBanListMagic = 0x42414e31;  // "BAN1"
}  // namespace

void BanMan::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_bans_total_ = registry.GetCounter("bs_ban_bans_total", "Identifiers banned");
  m_unbans_total_ = registry.GetCounter("bs_ban_unbans_total", "Bans lifted early");
  m_discouragements_total_ =
      registry.GetCounter("bs_ban_discouragements_total", "IPs discouraged (0.21+)");
  m_expired_on_load_total_ = registry.GetCounter(
      "bs_banlist_expired_on_load_total",
      "Persisted bans dropped at load time because they had already expired");
  m_active_bans_ = registry.GetGauge("bs_ban_active", "Currently banned identifiers");
  m_discouraged_ips_gauge_ =
      registry.GetGauge("bs_ban_discouraged_ips", "Currently discouraged IPs");
  UpdateGauges();
}

void BanMan::UpdateGauges() {
  if (m_active_bans_ == nullptr) return;
  m_active_bans_->Set(static_cast<double>(bans_.size()));
  m_discouraged_ips_gauge_->Set(static_cast<double>(discouraged_ips_.size()));
}

void BanMan::Ban(const Endpoint& who, bsim::SimTime until) {
  auto [it, inserted] = bans_.emplace(who, until);
  if (!inserted) it->second = std::max(it->second, until);
  if (inserted && m_bans_total_ != nullptr) m_bans_total_->Inc();
  if (on_ban_change) on_ban_change(who, it->second);
  UpdateGauges();
}

void BanMan::RestoreBan(const Endpoint& who, bsim::SimTime until, bsim::SimTime now) {
  if (until <= now) {
    if (m_expired_on_load_total_ != nullptr) m_expired_on_load_total_->Inc();
    return;
  }
  auto [it, inserted] = bans_.emplace(who, until);
  if (!inserted) it->second = std::max(it->second, until);
  UpdateGauges();
}

bool BanMan::IsBanned(const Endpoint& who, bsim::SimTime now) const {
  const auto it = bans_.find(who);
  return it != bans_.end() && it->second > now;
}

bsim::SimTime BanMan::BanExpiry(const Endpoint& who) const {
  const auto it = bans_.find(who);
  return it == bans_.end() ? 0 : it->second;
}

void BanMan::SweepExpired(bsim::SimTime now) {
  std::erase_if(bans_, [now](const auto& kv) { return kv.second <= now; });
  UpdateGauges();
}

std::size_t BanMan::BannedPortsOf(std::uint32_t ip, bsim::SimTime now) const {
  std::size_t count = 0;
  for (const auto& [ep, until] : bans_) {
    if (ep.ip == ip && until > now) ++count;
  }
  return count;
}

std::vector<Endpoint> BanMan::Snapshot() const {
  std::vector<Endpoint> out;
  out.reserve(bans_.size());
  for (const auto& [ep, until] : bans_) out.push_back(ep);
  return out;
}

bsutil::ByteVec BanMan::Serialize() const {
  bsutil::Writer w;
  w.WriteU32(kBanListMagic);
  w.WriteCompactSize(bans_.size());
  // Canonical order: sorted by (ip, port) so equal ban sets serialize
  // byte-identically regardless of insertion/rehash history.
  std::vector<std::pair<Endpoint, bsim::SimTime>> entries(bans_.begin(),
                                                          bans_.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.first.ip != b.first.ip ? a.first.ip < b.first.ip
                                    : a.first.port < b.first.port;
  });
  for (const auto& [ep, until] : entries) {
    w.WriteU32(ep.ip);
    w.WriteU16(ep.port);
    w.WriteI64(until);
  }
  return w.TakeData();
}

bool BanMan::Deserialize(bsutil::ByteSpan data, bsim::SimTime now) {
  try {
    bsutil::Reader r(data);
    if (r.ReadU32() != kBanListMagic) return false;
    const std::uint64_t count = r.ReadCompactSize();
    if (count > 10'000'000) return false;  // allocation guard
    std::unordered_map<Endpoint, bsim::SimTime, bsproto::EndpointHasher> loaded;
    loaded.reserve(count);
    std::uint64_t expired = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      Endpoint ep;
      ep.ip = r.ReadU32();
      ep.port = r.ReadU16();
      const bsim::SimTime until = r.ReadI64();
      if (until > now) {
        loaded.emplace(ep, until);
      } else {
        ++expired;
      }
    }
    if (!r.AtEnd()) return false;
    bans_ = std::move(loaded);
    if (expired > 0 && m_expired_on_load_total_ != nullptr) {
      m_expired_on_load_total_->Inc(expired);
    }
    UpdateGauges();
    return true;
  } catch (const bsutil::DeserializeError&) {
    return false;
  }
}

bool BanMan::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bsutil::ByteVec data = Serialize();
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

bool BanMan::LoadFromFile(const std::string& path, bsim::SimTime now) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    bsutil::Log(bsutil::LogLevel::kError, "banman",
                "cannot open banlist file: ", path);
    return false;
  }
  bsutil::ByteVec data;
  std::uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(f);
  if (!Deserialize(data, now)) {
    // A truncated/corrupt banlist must not poison the node: log it and come
    // up with an empty list (Core does the same — losing bans is safe,
    // trusting garbage is not). Deserialize leaves `bans_` untouched on
    // failure, so clear explicitly.
    bsutil::Log(bsutil::LogLevel::kError, "banman",
                "corrupt banlist file, starting with empty ban list: ", path);
    bans_.clear();
    UpdateGauges();
    return false;
  }
  return true;
}

}  // namespace bsnet
