#pragma once

// SimTransport: the discrete-event simulator behind the Transport seam.
//
// Wraps a bsim::Host (attach/detach against the Network, TCP handshakes,
// connection demux) and hands Node the resulting TcpConnection objects
// through the TransportConn interface they already implement. Because no
// adapter objects or extra scheduler events are introduced, a Node on
// SimTransport is bit-identical to the pre-seam Node-as-Host design —
// the fig6/fig8 paper benches and every chaos gate see the same event
// sequence and the same RNG draws.

#include <cstdint>
#include <functional>

#include "core/transport.hpp"
#include "sim/tcp.hpp"

namespace bsnet {

class SimTransport : public Transport {
 public:
  SimTransport(bsim::Scheduler& sched, bsim::Network& net, std::uint32_t ip);

  std::uint32_t Ip() const override { return host_.Ip(); }
  void Listen(std::uint16_t port, AcceptCallback on_accept) override;
  void StopListening(std::uint16_t port) override { host_.StopListening(port); }
  TransportConn* Connect(const bsproto::Endpoint& remote) override;
  /// Self-dial in the sim is an IP-only test: every node owns one address
  /// and dials from ephemeral ports (matches the pre-seam `ep.ip == Ip()`
  /// guards exactly).
  bool IsSelf(const bsproto::Endpoint& ep) const override { return ep.ip == host_.Ip(); }
  void Abandon() override;

  /// ICMP reaches the node out-of-band of any connection; Node wires these
  /// to its flood accounting. Unset sinks drop the packets (plain Host
  /// behaviour).
  std::function<void(const bsim::IcmpPacket&)> on_icmp;
  std::function<void(const bsim::IcmpPacket&, std::uint64_t)> on_icmp_batch;

  /// Escape hatch for sim-only tooling (attack harnesses, tests) that needs
  /// the raw host: sniffer filters, ConnectFrom, connection introspection.
  bsim::Host& SimHost() { return host_; }

 private:
  class HostAdapter : public bsim::Host {
   public:
    HostAdapter(SimTransport& owner, bsim::Scheduler& sched, bsim::Network& net,
                std::uint32_t ip)
        : bsim::Host(sched, net, ip), owner_(owner) {}
    void OnIcmp(const bsim::IcmpPacket& pkt) override {
      if (owner_.on_icmp) owner_.on_icmp(pkt);
    }
    void OnIcmpBatch(const bsim::IcmpPacket& pkt, std::uint64_t count) override {
      if (owner_.on_icmp_batch) owner_.on_icmp_batch(pkt, count);
    }

   private:
    SimTransport& owner_;
  };

  HostAdapter host_;
};

}  // namespace bsnet
