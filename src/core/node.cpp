#include "core/node.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/durable.hpp"
#include "core/sim_transport.hpp"
#include "crypto/partial_merkle.hpp"
#include "store/fs.hpp"
#include "util/log.hpp"

namespace bsnet {

using bsproto::Message;
using bsproto::MsgType;

Node::Node(bsim::Scheduler& sched, bsim::Network& net, std::uint32_t ip,
           NodeConfig config, bsim::CpuModel* cpu)
    : Node(sched, std::make_unique<SimTransport>(sched, net, ip), nullptr,
           std::move(config), cpu) {}

Node::Node(bsim::Scheduler& sched, Transport& transport, NodeConfig config,
           bsim::CpuModel* cpu)
    : Node(sched, nullptr, &transport, std::move(config), cpu) {}

Node::Node(bsim::Scheduler& sched, std::unique_ptr<Transport> owned,
           Transport* external, NodeConfig config, bsim::CpuModel* cpu)
    : sched_(sched),
      owned_transport_(std::move(owned)),
      transport_(external != nullptr ? external : owned_transport_.get()),
      ip_(transport_->Ip()),
      config_(std::move(config)),
      cpu_(cpu),
      rng_(config_.rng_seed ^ ip_),
      chain_(config_.chain),
      tracker_(config_.core_version, config_.ban_policy, config_.ban_threshold,
               config_.good_score_exemption),
      partition_([this] {
        PartitionParams p;
        p.expected_block_interval = config_.partition_expected_block_interval;
        p.divergence_blocks = config_.partition_divergence_blocks;
        p.suspicion_high = config_.partition_suspicion_high;
        p.suspicion_low = config_.partition_suspicion_low;
        p.ladder_step = config_.partition_ladder_step;
        return p;
      }()),
      trace_(config_.trace_capacity),
      tracer_(config_.span_tracer),
      profiler_(config_.profiler) {
  tracker_.SetMaxEntries(config_.tracker_max_entries);
  if (config_.governor_cycles_per_sec > 0) {
    const double burst = config_.governor_burst_cycles > 0
                             ? config_.governor_burst_cycles
                             : config_.governor_cycles_per_sec;
    governor_.emplace(config_.governor_cycles_per_sec, burst,
                      config_.governor_low_priority_reserve, sched.Now());
  }
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<bsobs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  bsobs::MetricsRegistry& reg = *metrics_;
  m_messages_total_ =
      reg.GetCounter("bs_node_messages_total", "Typed messages accepted");
  m_rx_bytes_total_ =
      reg.GetCounter("bs_node_rx_bytes_total", "Bytes received from peers");
  m_frames_bad_checksum_ = reg.GetCounter("bs_node_frames_bad_checksum_total",
                                          "Frames dropped: checksum mismatch");
  m_frames_unknown_ = reg.GetCounter("bs_node_frames_unknown_total",
                                     "Frames ignored: unknown command");
  m_frames_malformed_ = reg.GetCounter("bs_node_frames_malformed_total",
                                       "Frames dropped: malformed/oversize/bad magic");
  m_codec_oversize_ = reg.GetCounter(
      "bs_codec_oversize_reject_total",
      "Frames rejected: declared length above kMaxFramePayload");
  m_peers_banned_ =
      reg.GetCounter("bs_node_peers_banned_total", "Peers banned or discouraged");
  m_reconnects_ = reg.GetCounter("bs_node_outbound_reconnects_total",
                                 "Outbound slots refilled after initial fill");
  m_icmp_packets_ =
      reg.GetCounter("bs_node_icmp_packets_total", "ICMP packets received");
  m_rx_shed_bytes_ = reg.GetCounter("bs_node_rx_shed_bytes_total",
                                    "Receive-buffer bytes shed at the per-peer cap");
  m_handshake_timeouts_ = reg.GetCounter("bs_node_handshake_timeouts_total",
                                         "Peers dropped: stalled version handshake");
  m_dead_peer_disconnects_ = reg.GetCounter("bs_node_dead_peer_disconnects_total",
                                            "Peers dropped: unanswered PING");
  m_dial_failures_ = reg.GetCounter("bs_node_outbound_dial_failures_total",
                                    "Outbound sessions that failed or were lost");
  m_evictions_ = reg.GetCounter("bs_node_evictions_total",
                                "Inbound peers evicted to admit a newcomer");
  m_inbound_full_rejects_ = reg.GetCounter(
      "bs_node_inbound_full_rejects_total",
      "Inbound connections refused with every slot full and none evictable");
  m_ratelimit_frames_ = reg.GetCounter("bs_node_ratelimit_frames_dropped_total",
                                       "Frames shed by the rx rate limiter");
  m_ratelimit_bytes_ = reg.GetCounter("bs_node_ratelimit_bytes_dropped_total",
                                      "Frame bytes shed by the rx rate limiter");
  m_governor_shed_frames_ =
      reg.GetCounter("bs_node_governor_shed_frames_total",
                     "Frames shed by the global CPU-budget governor");
  m_feeler_attempts_ =
      reg.GetCounter("bs_feeler_attempts_total", "Feeler probe connections opened");
  m_feeler_promotions_ = reg.GetCounter(
      "bs_feeler_promotions_total", "Feeler probes that promoted an address to tried");
  m_anchor_redials_ = reg.GetCounter("bs_anchor_redial_total",
                                     "Anchor endpoints re-dialed after a restart");
  m_stale_tip_events_ = reg.GetCounter("bs_stale_tip_events_total",
                                       "Stale-tip windows that opened an extra outbound");
  m_partition_probes_sent_ =
      reg.GetCounter("bs_partition_probes_sent_total", "Gossip tip-probes sent");
  m_partition_probe_replies_ = reg.GetCounter(
      "bs_partition_probe_replies_total", "Replies received to our tip-probes");
  m_partition_suspect_windows_ =
      reg.GetCounter("bs_partition_suspect_windows_total",
                     "High-suspicion windows the partition monitor entered");
  m_partition_recoveries_ =
      reg.GetCounter("bs_partition_recoveries_total",
                     "High-suspicion windows that de-escalated back to calm");
  m_partition_recovery_actions_ =
      reg.GetCounter("bs_partition_recovery_actions_total",
                     "Partition recovery-ladder stage actions executed");
  m_partition_deferred_penalties_ = reg.GetCounter(
      "bs_partition_deferred_penalties_total",
      "Misbehavior penalties deferred by partition-aware damping");
  m_partition_suspicion_ = reg.GetGauge(
      "bs_partition_suspicion", "Fused partition-suspicion score (0..1)");
  for (const MsgType type : bsproto::AllMsgTypes()) {
    m_msg_type_[static_cast<std::size_t>(type)] = reg.GetCounter(
        std::string("bs_node_messages_") + bsproto::CommandName(type) + "_total",
        "Typed messages of one wire command");
  }
  m_frame_process_seconds_ =
      reg.GetHistogram("bs_node_frame_process_seconds", bsobs::LatencyBucketsSeconds(),
                       "Wall time to process one complete frame");
  m_frame_bytes_ = reg.GetHistogram("bs_node_frame_bytes", bsobs::SizeBucketsBytes(),
                                    "Complete wire-frame sizes");
  m_peers_gauge_ = reg.GetGauge("bs_node_peers", "Connected peers");
  banman_.AttachMetrics(reg);
  tracker_.AttachMetrics(reg);
  if (config_.enable_addrman_bucketing) addrman_.EnableBucketing();
  addrman_.AttachMetrics(reg);

  if (config_.enable_durable_store) {
    bsstore::StoreFs& store_fs = config_.store_fs != nullptr
                                     ? *config_.store_fs
                                     : bsstore::RealFs::Instance();
    const std::string dir = config_.store_dir.empty()
                                ? "bsnode-store-" + std::to_string(ip_)
                                : config_.store_dir;
    durable_ = std::make_unique<DurableNodeState>(store_fs, dir, banman_, tracker_,
                                                  addrman_);
    durable_->SetCompactThreshold(config_.store_compact_threshold);
    durable_->AttachMetrics(reg);
    if (!durable_->Open(sched.Now())) durable_.reset();  // run volatile
  }
  if (durable_ != nullptr && config_.enable_anchors) {
    // Last run's anchors: re-dialed before any Select draw, so the node's
    // first outbound slots go to peers that were serving it valid blocks —
    // not to whatever a poisoned address table coughs up.
    anchor_targets_ = durable_->Anchors();
    anchors_ = durable_->Anchors();
  }
  if (auto* sim = dynamic_cast<SimTransport*>(transport_)) {
    // ICMP is out-of-band of any connection and only exists in the sim;
    // wire the flood accounting exactly as the Host overrides used to.
    sim->on_icmp = [this](const bsim::IcmpPacket& pkt) { OnIcmp(pkt); };
    sim->on_icmp_batch = [this](const bsim::IcmpPacket& pkt, std::uint64_t n) {
      OnIcmpBatch(pkt, n);
    };
  }
}

Node::~Node() = default;

void Node::Start() {
  transport_->Listen(config_.listen_port,
                     [this](TransportConn& conn) { AcceptInbound(conn); });
  maintenance_running_ = true;
  MaintainOutbound();
}

void Node::Stop() {
  maintenance_running_ = false;
  transport_->StopListening(config_.listen_port);
  // Detach connection callbacks before Abandon destroys the connection
  // objects peers_ points into; a crash emits nothing on the wire and fires
  // no close events.
  for (auto& [id, peer] : peers_) {
    if (peer->conn != nullptr) {
      peer->conn->SetDataSink(nullptr);
      peer->conn->on_closed = nullptr;
      peer->conn->on_connected = nullptr;
    }
  }
  peers_.clear();
  pending_compact_.clear();
  outbound_targets_.clear();
  feeler_targets_.clear();
  dial_backoff_.clear();
  pending_outbound_ = 0;
  pending_feeler_ = 0;
  stale_tip_extra_active_ = false;
  partition_.Reset();
  partition_probe_nonces_.clear();
  partition_stage_done_ = PartitionMonitor::Stage::kNone;
  last_partition_probe_ = 0;
  last_partition_rotate_ = 0;
  partition_extra_active_ = false;
  m_peers_gauge_->Set(0.0);
  transport_->Abandon();
}

void Node::Shutdown() {
  maintenance_running_ = false;
  transport_->StopListening(config_.listen_port);
  // Close peers politely: detach callbacks first so the closes cannot
  // re-enter RemovePeer while we iterate, then FIN each connection so the
  // remote sees a clean goodbye instead of a dead-peer timeout.
  for (auto& [id, peer] : peers_) {
    if (peer->conn != nullptr) {
      peer->conn->SetDataSink(nullptr);
      peer->conn->on_closed = nullptr;
      peer->conn->on_connected = nullptr;
      peer->conn->Close();
    }
  }
  peers_.clear();
  pending_compact_.clear();
  outbound_targets_.clear();
  feeler_targets_.clear();
  pending_outbound_ = 0;
  pending_feeler_ = 0;
  m_peers_gauge_->Set(0.0);
  if (durable_ != nullptr) {
    if (config_.enable_anchors) durable_->SetAnchors(anchors_);
    durable_->Flush();
  }
}

// ---------------------------------------------------------------------------
// Connection management

void Node::AcceptInbound(TransportConn& conn) {
  // The banning filter: a banned identifier cannot reconnect (Fig. 2).
  // Discouraged IPs (0.21+ mode) are refused wholesale.
  if (banman_.IsBanned(conn.Remote(), Sched().Now()) ||
      banman_.IsDiscouraged(conn.Remote().ip)) {
    conn.Reset();
    return;
  }
  if (InboundCount() >= static_cast<std::size_t>(config_.max_inbound)) {
    // Stock 0.20.0 refuses flatly; with eviction on, the newcomer gets the
    // slot of the least-protected existing peer (or is refused when every
    // candidate is protected, as in Core). One identifier-light guard on
    // top: a netgroup already holding a strict plurality of the inbound
    // slots cannot claim more through eviction. Without it, an evicted
    // Sybil reconnects within milliseconds, wins an eviction against its
    // own groupmate, and the resulting churn loop turns the handshake
    // processing itself into the flood.
    if (!config_.enable_eviction ||
        NewcomerGroupHoldsPlurality(NetGroup(conn.Remote().ip)) ||
        !EvictInboundPeer()) {
      m_inbound_full_rejects_->Inc();
      conn.Reset();
      return;
    }
  }
  RegisterPeer(conn, /*inbound=*/true);
}

bool Node::NewcomerGroupHoldsPlurality(std::uint32_t group) const {
  std::size_t own = 0, best_other = 0;
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const auto& [id, peer] : peers_) {
    if (!peer->inbound) continue;
    ++counts[NetGroup(peer->remote.ip)];
  }
  for (const auto& [g, count] : counts) {
    if (g == group) {
      own = count;
    } else {
      best_other = std::max(best_other, count);
    }
  }
  return own > 0 && own > best_other;
}

bool Node::EvictInboundPeer() {
  std::vector<EvictionCandidate> candidates;
  candidates.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) {
    if (!peer->inbound) continue;
    candidates.push_back({id, peer->remote.ip, peer->connected_at,
                          peer->min_ping_rtt, peer->last_block_time,
                          peer->last_tx_time, tracker_.GoodScore(id)});
  }
  const auto victim = SelectInboundPeerToEvict(std::move(candidates));
  if (!victim) return false;
  const auto it = peers_.find(*victim);
  if (it == peers_.end()) return false;
  m_evictions_->Inc();
  trace_.Record(Sched().Now(), bsobs::EventType::kPeerEvicted, *victim,
                static_cast<std::int64_t>(it->second->remote.ip),
                static_cast<std::int64_t>(NetGroup(it->second->remote.ip)));
  if (on_peer_evicted) on_peer_evicted(*it->second);
  DisconnectPeer(*victim);
  return true;
}

void Node::FlagPeer(std::uint64_t id, bool low_priority) {
  const auto it = peers_.find(id);
  if (it != peers_.end()) it->second->detect_flagged = low_priority;
}

PeerPriority Node::PriorityOf(const Peer& peer) const {
  if (!config_.enable_priority) return PeerPriority::kNormal;
  const std::uint64_t droppable = peer.frames_bad_checksum +
                                  peer.frames_unknown_command +
                                  peer.frames_malformed;
  // Demotion outranks good-score promotion: one lucky valid block must not
  // buy an exemption from flood shedding.
  if (peer.detect_flagged ||
      (config_.demote_bad_frames_threshold > 0 &&
       droppable >=
           static_cast<std::uint64_t>(config_.demote_bad_frames_threshold))) {
    return PeerPriority::kLow;
  }
  if (tracker_.GoodScore(peer.id) > 0) return PeerPriority::kHigh;
  return PeerPriority::kNormal;
}

bool Node::ConnectTo(const Endpoint& remote, bool feeler) {
  if (banman_.IsBanned(remote, Sched().Now())) return false;
  if (banman_.IsDiscouraged(remote.ip)) return false;
  if (outbound_targets_.contains(remote)) return false;
  if (transport_->IsSelf(remote)) return false;

  outbound_targets_.insert(remote);
  if (feeler) feeler_targets_.insert(remote);
  ++pending_outbound_;
  if (feeler) ++pending_feeler_;
  // Core semantics: the attempt is recorded at dial time and cleared by
  // Good() when the handshake completes (no-op in flat mode).
  addrman_.Attempt(remote, Sched().Now());
  TransportConn* conn = transport_->Connect(remote);
  if (conn == nullptr) {
    --pending_outbound_;
    if (feeler) --pending_feeler_;
    outbound_targets_.erase(remote);
    feeler_targets_.erase(remote);
    return false;
  }
  // Handshake completion is event-driven; the SYN cannot be answered before
  // we return, so wiring the callback after Connect() is race-free.
  conn->on_connected = [this, conn, remote, feeler](bool ok) {
    --pending_outbound_;
    if (feeler) --pending_feeler_;
    if (!ok) {
      outbound_targets_.erase(remote);
      feeler_targets_.erase(remote);
      NoteOutboundFailure(remote);
      return;
    }
    Peer& peer = RegisterPeer(*conn, /*inbound=*/false, feeler);
    // Outbound side opens the version handshake.
    peer.sent_version = true;
    SendTo(peer, MakeVersionMsg(peer));
  };
  return true;
}

Peer& Node::RegisterPeer(TransportConn& conn, bool inbound, bool feeler) {
  auto peer = std::make_unique<Peer>();
  const std::uint64_t id = next_peer_id_++;
  peer->id = id;
  peer->remote = conn.Remote();
  peer->inbound = inbound;
  peer->feeler = feeler;
  peer->conn = &conn;
  peer->connected_at = Sched().Now();
  if (config_.enable_rate_limit) {
    // Newcomers open with one second of fill, not a full burst: eviction
    // churn must not mint fresh burst-sized credit for every Sybil rebirth.
    peer->rx_bytes_bucket =
        TokenBucket(config_.rx_bytes_burst, config_.rx_bytes_per_sec,
                    peer->connected_at, config_.rx_bytes_per_sec);
    peer->rx_cost_bucket =
        TokenBucket(config_.rx_cycles_burst, config_.rx_cycles_per_sec,
                    peer->connected_at, config_.rx_cycles_per_sec);
  }
  Peer* raw = peer.get();
  peers_.emplace(id, std::move(peer));
  m_peers_gauge_->Set(static_cast<double>(peers_.size()));
  trace_.Record(Sched().Now(), bsobs::EventType::kPeerConnected, id,
                static_cast<std::int64_t>(raw->remote.ip), inbound ? 1 : 0);

  conn.SetDataSink([this, id](bsutil::ByteSpan data) { OnData(id, data); });
  conn.on_closed = [this, id, inbound]() { RemovePeer(id, /*was_outbound=*/!inbound); };

  // Stalled-handshake watchdog: peer ids are never reused, so a timer whose
  // peer has already departed (or completed the handshake) is a no-op.
  if (config_.handshake_timeout > 0) {
    Sched().After(config_.handshake_timeout, [this, id]() {
      const auto it = peers_.find(id);
      if (it == peers_.end() || it->second->HandshakeComplete()) return;
      m_handshake_timeouts_->Inc();
      DisconnectPeer(id);
    });
  }
  return *raw;
}

void Node::RemovePeer(std::uint64_t id, bool was_outbound) {
  const auto it = peers_.find(id);
  if (it == peers_.end()) return;
  if (was_outbound) {
    outbound_targets_.erase(it->second->remote);
    if (it->second->feeler) {
      // A feeler closing is the probe's normal end, not a failed slot.
      feeler_targets_.erase(it->second->remote);
    } else {
      NoteOutboundFailure(it->second->remote);
    }
  }
  pending_compact_.erase(id);
  tracker_.Forget(id);
  partition_.ForgetPeer(id);
  const std::int64_t remote_ip = static_cast<std::int64_t>(it->second->remote.ip);
  peers_.erase(it);
  m_peers_gauge_->Set(static_cast<double>(peers_.size()));
  trace_.Record(Sched().Now(), bsobs::EventType::kPeerDisconnected, id, remote_ip,
                was_outbound ? 0 : 1);
}

void Node::DisconnectPeer(std::uint64_t id) {
  const auto it = peers_.find(id);
  if (it == peers_.end()) return;
  TransportConn* conn = it->second->conn;
  const bool was_outbound = !it->second->inbound;
  // Detach callbacks before resetting so the close event does not re-enter.
  conn->SetDataSink(nullptr);
  conn->on_closed = nullptr;
  RemovePeer(id, was_outbound);
  conn->Reset();
}

void Node::DropAndRebuildConnections() {
  std::vector<std::uint64_t> ids;
  ids.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) ids.push_back(id);
  for (std::uint64_t id : ids) DisconnectPeer(id);
  // MaintainOutbound refills on its next tick.
}

void Node::MaintainOutbound() {
  if (!maintenance_running_) return;
  const bsim::SimTime now = Sched().Now();
  banman_.SweepExpired(now);

  // Serial-Sybil outbound churn creates one backoff record per [IP:Port]
  // identifier ever dialed; entries far past their redial window are dead
  // weight (DialAllowed would pass them anyway), so sweep them once the map
  // is big enough to matter. An endpoint quiet for ten full backoff caps
  // restarting from failure #1 is the intended forgiveness.
  if (dial_backoff_.size() > 64) {
    const bsim::SimTime grace = 10 * config_.reconnect_backoff_cap;
    std::erase_if(dial_backoff_, [&](const auto& entry) {
      return now - entry.second.next_attempt > grace;
    });
  }

  // Keepalive and inactivity handling (all opt-in via config).
  if (config_.ping_interval > 0 || config_.inactivity_timeout > 0 ||
      config_.ping_timeout > 0) {
    std::vector<std::uint64_t> to_disconnect;
    for (auto& [id, peer] : peers_) {
      if (!peer->HandshakeComplete()) continue;
      if (config_.inactivity_timeout > 0 && peer->last_recv_time > 0 &&
          now - peer->last_recv_time >= config_.inactivity_timeout) {
        to_disconnect.push_back(id);
        continue;
      }
      // Dead-peer detection: an outstanding PING unanswered past the
      // timeout means the far side is gone (crashed, partitioned) even if
      // other traffic kept inactivity_timeout from firing.
      if (config_.ping_timeout > 0 && peer->outstanding_ping_nonce != 0 &&
          now - peer->last_ping_sent >= config_.ping_timeout) {
        m_dead_peer_disconnects_->Inc();
        to_disconnect.push_back(id);
        continue;
      }
      if (config_.ping_interval > 0 &&
          now - peer->last_ping_sent >= config_.ping_interval) {
        peer->outstanding_ping_nonce = rng_.Next() | 1;  // never 0
        peer->last_ping_sent = now;
        SendTo(*peer, bsproto::PingMsg{peer->outstanding_ping_nonce});
      }
    }
    for (std::uint64_t id : to_disconnect) DisconnectPeer(id);
  }

  MaintainStaleTip(now);
  MaintainFeeler(now);
  MaintainPartition(now);

  // Feeler probes ride pending_outbound_ for dial bookkeeping but must not
  // count against the outbound slot budget.
  const auto live_outbound = [this] {
    return OutboundCount() +
           static_cast<std::size_t>(pending_outbound_ - pending_feeler_);
  };
  const std::size_t target = static_cast<std::size_t>(config_.target_outbound) +
                             (stale_tip_extra_active_ ? 1 : 0) +
                             (partition_extra_active_ ? 1 : 0);

  // Anchors first: restored last-known-good endpoints claim slots before any
  // address-table draw can hand them to a poisoned entry.
  while (!anchor_targets_.empty() && live_outbound() < target) {
    const Endpoint anchor = anchor_targets_.front();
    anchor_targets_.erase(anchor_targets_.begin());
    if (banman_.IsBanned(anchor, now) || outbound_targets_.contains(anchor) ||
        transport_->IsSelf(anchor)) {
      continue;
    }
    if (ConnectTo(anchor)) {
      m_anchor_redials_->Inc();
      trace_.Record(now, bsobs::EventType::kAnchorRedial, 0,
                    static_cast<std::int64_t>(anchor.ip), anchor.port);
    }
  }

  while (live_outbound() < target) {
    bsobs::ScopedProbe select_probe(profiler_, bsobs::HotStage::kAddrmanSelect);
    const auto candidate = addrman_.Select([this, now](const Endpoint& ep) {
      return !banman_.IsBanned(ep, Sched().Now()) && !outbound_targets_.contains(ep) &&
             !transport_->IsSelf(ep) && DialAllowed(ep, now) &&
             (!config_.enable_outbound_diversity ||
              !OutboundGroupTaken(NetGroup(ep.ip)));
    });
    select_probe.Stop();
    if (!candidate) break;  // peer-table diversity exhausted
    const bool counts_as_reconnect = initial_outbound_fill_done_;
    if (!ConnectTo(*candidate)) break;
    if (counts_as_reconnect) {
      m_reconnects_->Inc();
      trace_.Record(Sched().Now(), bsobs::EventType::kOutboundReconnect, 0,
                    static_cast<std::int64_t>(candidate->ip), candidate->port);
      if (on_outbound_reconnect) on_outbound_reconnect(*candidate);
    }
  }
  if (OutboundCount() >= static_cast<std::size_t>(config_.target_outbound)) {
    initial_outbound_fill_done_ = true;
  }
  Sched().After(config_.maintenance_interval, [this]() { MaintainOutbound(); });
}

void Node::MaintainStaleTip(bsim::SimTime now) {
  if (!config_.enable_stale_tip_recovery) return;
  const int tip = chain_.TipHeight();
  if (last_tip_advance_ == 0) {
    // First tick: arm the window without treating startup as a stall.
    tip_height_seen_ = tip;
    last_tip_advance_ = now > 0 ? now : 1;
    return;
  }
  if (tip > tip_height_seen_) {
    tip_height_seen_ = tip;
    last_tip_advance_ = now;
    if (stale_tip_extra_active_) {
      // The extra diversity-constrained outbound got the chain moving again;
      // keep it and retire the worst of the old set instead.
      stale_tip_extra_active_ = false;
      EvictWorstOutboundPeer();
    }
    return;
  }
  if (!stale_tip_extra_active_ && now - last_tip_advance_ >= config_.stale_tip_timeout) {
    stale_tip_extra_active_ = true;
    m_stale_tip_events_->Inc();
    trace_.Record(now, bsobs::EventType::kStaleTip, 0, tip);
  }
}

void Node::MaintainFeeler(bsim::SimTime now) {
  if (!config_.enable_feelers) return;
  if (now - last_feeler_time_ < config_.feeler_interval) return;
  bsobs::ScopedProbe select_probe(profiler_, bsobs::HotStage::kAddrmanSelect);
  const auto candidate = addrman_.SelectNew([this](const Endpoint& ep) {
    return !banman_.IsBanned(ep, Sched().Now()) && !outbound_targets_.contains(ep) &&
           !transport_->IsSelf(ep);
  });
  select_probe.Stop();
  if (!candidate) return;
  last_feeler_time_ = now;
  const Endpoint remote = *candidate;
  if (!ConnectTo(remote, /*feeler=*/true)) return;
  m_feeler_attempts_->Inc();
  trace_.Record(now, bsobs::EventType::kFeelerProbe, 0,
                static_cast<std::int64_t>(remote.ip), remote.port);
  // Reap a probe that neither completed (OnOutboundHandshakeComplete closes
  // it) nor died on its own.
  Sched().After(config_.feeler_timeout, [this, remote]() {
    Peer* peer = FindPeerByRemote(remote);
    if (peer != nullptr && peer->feeler) DisconnectPeer(peer->id);
  });
}

void Node::MaintainPartition(bsim::SimTime now) {
  if (!config_.enable_partition_resilience) return;

  // Diversity census over the live outbound set (the monitor keeps the
  // watermark; a routing cut shears whole netgroups off at once).
  std::unordered_set<std::uint32_t> groups;
  for (const auto& [id, peer] : peers_) {
    if (peer->inbound || peer->feeler || !peer->HandshakeComplete()) continue;
    groups.insert(NetGroup(peer->remote.ip));
  }
  partition_.NoteNetgroupDiversity(groups.size());

  const int tip = chain_.TipHeight();
  const bool was_high = partition_.SuspicionHigh();
  const PartitionMonitor::Stage prev_stage = partition_.CurrentStage();
  bool recovered = false;
  const double suspicion = partition_.Update(now, tip, &recovered);
  m_partition_suspicion_->Set(suspicion);

  if (!was_high && partition_.SuspicionHigh()) {
    m_partition_suspect_windows_->Inc();
    trace_.Record(now, bsobs::EventType::kPartitionSuspected, 0,
                  static_cast<std::int64_t>(suspicion * 1000.0),
                  static_cast<std::int64_t>(partition_.CurrentStage()));
  }
  if (recovered) {
    m_partition_recoveries_->Inc();
    trace_.Record(now, bsobs::EventType::kPartitionRecovered, 0, 0,
                  static_cast<std::int64_t>(prev_stage));
    partition_stage_done_ = PartitionMonitor::Stage::kNone;
    if (partition_extra_active_) {
      // The emergency slot did its job; trim back to target, dropping the
      // worst of the old set (the peer that never delivered a block).
      partition_extra_active_ = false;
      EvictWorstOutboundPeer();
    }
  }

  if (partition_.SuspicionHigh()) {
    // Execute each newly reached ladder stage exactly once per window, in
    // escalation order; the rotation stage re-arms every ladder_step so a
    // long partition keeps cycling its most-divergent peer.
    const PartitionMonitor::Stage stage = partition_.CurrentStage();
    for (int s = static_cast<int>(partition_stage_done_) + 1;
         s <= static_cast<int>(stage); ++s) {
      RunPartitionStage(static_cast<PartitionMonitor::Stage>(s), now);
      partition_stage_done_ = static_cast<PartitionMonitor::Stage>(s);
    }
    if (stage == PartitionMonitor::Stage::kRotate &&
        now - last_partition_rotate_ >= config_.partition_ladder_step) {
      RunPartitionStage(stage, now);
    }
  }

  if (now - last_partition_probe_ >= config_.partition_probe_interval) {
    SendTipProbes(now);
  }
}

bsproto::TipProbeMsg Node::MakeTipProbe(std::uint64_t nonce) const {
  bsproto::TipProbeMsg msg;
  msg.nonce = nonce;
  msg.tips.push_back(
      {static_cast<std::int32_t>(chain_.TipHeight()), chain_.TipHash()});
  return msg;
}

void Node::SendTipProbes(bsim::SimTime now) {
  std::vector<Peer*> candidates;
  for (auto& [id, peer] : peers_) {
    if (!peer->HandshakeComplete() || peer->feeler) continue;
    candidates.push_back(peer.get());
  }
  if (candidates.empty()) return;
  last_partition_probe_ = now;
  // peers_ is an unordered_map: sort by id before the RNG draw so a probe
  // round samples the same peers on every run of the same seed.
  std::sort(candidates.begin(), candidates.end(),
            [](const Peer* a, const Peer* b) { return a->id < b->id; });
  const int fanout = std::max(config_.partition_probe_fanout, 1);
  for (int i = 0; i < fanout && !candidates.empty(); ++i) {
    const std::size_t pick =
        static_cast<std::size_t>(rng_.Below(candidates.size()));
    Peer* peer = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    // Bounded outstanding-nonce set: replies to long-forgotten probes are
    // simply treated as requests and answered, which is harmless.
    if (partition_probe_nonces_.size() > 256) partition_probe_nonces_.clear();
    const std::uint64_t nonce = rng_.Next() | 1;
    partition_probe_nonces_.insert(nonce);
    m_partition_probes_sent_->Inc();
    SendTo(*peer, MakeTipProbe(nonce));
  }
}

void Node::RunPartitionStage(PartitionMonitor::Stage stage, bsim::SimTime now) {
  if (stage == PartitionMonitor::Stage::kNone) return;
  m_partition_recovery_actions_->Inc();
  trace_.Record(now, bsobs::EventType::kPartitionSuspected, 0,
                static_cast<std::int64_t>(partition_.Suspicion() * 1000.0),
                static_cast<std::int64_t>(stage));
  switch (stage) {
    case PartitionMonitor::Stage::kNone:
      return;
    case PartitionMonitor::Stage::kFeelerBurst:
      for (int i = 0; i < config_.partition_feeler_burst; ++i) {
        if (!LaunchTargetedFeeler(now)) break;
      }
      return;
    case PartitionMonitor::Stage::kAnchorRedial:
      // Queue every idle anchor for the next MaintainOutbound drain — the
      // last peers known to serve valid blocks are the best bets to still
      // sit on the healthy side of the cut.
      for (const Endpoint& anchor : anchors_) {
        if (outbound_targets_.contains(anchor)) continue;
        if (std::find(anchor_targets_.begin(), anchor_targets_.end(), anchor) !=
            anchor_targets_.end()) {
          continue;
        }
        anchor_targets_.push_back(anchor);
      }
      return;
    case PartitionMonitor::Stage::kEmergencySlot:
      partition_extra_active_ = true;  // MaintainOutbound raises the target
      return;
    case PartitionMonitor::Stage::kRotate: {
      last_partition_rotate_ = now;
      // Rotate out the outbound peer whose probed tip trails ours the most:
      // it is the one most certainly stuck on our side of the cut, and its
      // slot is worth a fresh draw.
      const auto victim = partition_.MostDivergentPeer(chain_.TipHeight());
      if (!victim) return;
      const auto it = peers_.find(*victim);
      if (it == peers_.end() || it->second->inbound || it->second->feeler) return;
      DisconnectPeer(*victim);
      return;
    }
  }
}

bool Node::LaunchTargetedFeeler(bsim::SimTime now) {
  bsobs::ScopedProbe select_probe(profiler_, bsobs::HotStage::kAddrmanSelect);
  const auto candidate = addrman_.SelectNew([this](const Endpoint& ep) {
    return !banman_.IsBanned(ep, Sched().Now()) &&
           !outbound_targets_.contains(ep) && !transport_->IsSelf(ep) &&
           !OutboundGroupTaken(NetGroup(ep.ip));
  });
  select_probe.Stop();
  if (!candidate) return false;
  const Endpoint remote = *candidate;
  if (!ConnectTo(remote, /*feeler=*/true)) return false;
  m_feeler_attempts_->Inc();
  trace_.Record(now, bsobs::EventType::kFeelerProbe, 0,
                static_cast<std::int64_t>(remote.ip), remote.port);
  Sched().After(config_.feeler_timeout, [this, remote]() {
    Peer* peer = FindPeerByRemote(remote);
    if (peer != nullptr && peer->feeler) DisconnectPeer(peer->id);
  });
  return true;
}

void Node::HandleTipProbe(Peer& peer, const bsproto::TipProbeMsg& msg) {
  const bool is_reply = partition_probe_nonces_.erase(msg.nonce) > 0;
  if (config_.enable_partition_resilience && !msg.tips.empty()) {
    std::int32_t best = msg.tips.front().height;
    for (const auto& tip : msg.tips) best = std::max(best, tip.height);
    partition_.OnProbeObservation(Sched().Now(), peer.id, best);
    trace_.Record(Sched().Now(), bsobs::EventType::kPartitionProbe, peer.id,
                  best, chain_.TipHeight());
    if (is_reply) m_partition_probe_replies_->Inc();
  }
  if (is_reply) return;
  // A request: answer with our own tip vector, echoing the nonce so the
  // prober can match the reply. Answering is stateless and costs one cheap
  // frame, so a node with the monitor switched off is still a useful probe
  // target for hardened neighbors.
  SendTo(peer, MakeTipProbe(msg.nonce));
}

bool Node::OnOutboundHandshakeComplete(Peer& peer) {
  dial_backoff_.erase(peer.remote);
  const bool promoted = addrman_.Good(peer.remote, Sched().Now());
  if (!peer.feeler) return false;
  if (promoted) m_feeler_promotions_->Inc();
  DisconnectPeer(peer.id);  // probe answered; the session has no other job
  return true;
}

bool Node::OutboundGroupTaken(std::uint32_t group) const {
  for (const auto& [id, peer] : peers_) {
    if (peer->inbound || peer->feeler) continue;
    if (NetGroup(peer->remote.ip) == group) return true;
  }
  // In-flight dials hold their group too, or two same-group dials could race
  // past the constraint in one tick.
  for (const Endpoint& ep : outbound_targets_) {
    if (!feeler_targets_.contains(ep) && NetGroup(ep.ip) == group) return true;
  }
  return false;
}

void Node::UpdateAnchors(const Endpoint& remote) {
  if (!config_.enable_anchors) return;
  if (!anchors_.empty() && anchors_.front() == remote) return;  // already newest
  const auto pos = std::find(anchors_.begin(), anchors_.end(), remote);
  if (pos != anchors_.end()) anchors_.erase(pos);
  anchors_.insert(anchors_.begin(), remote);
  if (anchors_.size() > static_cast<std::size_t>(std::max(config_.anchor_count, 0))) {
    anchors_.resize(static_cast<std::size_t>(std::max(config_.anchor_count, 0)));
  }
  if (durable_ != nullptr) durable_->SetAnchors(anchors_);
}

void Node::EvictWorstOutboundPeer() {
  if (OutboundCount() <= static_cast<std::size_t>(config_.target_outbound)) return;
  const Peer* worst = nullptr;
  for (const auto& [id, peer] : peers_) {
    if (peer->inbound || peer->feeler || !peer->HandshakeComplete()) continue;
    if (peer->last_block_time != 0) continue;  // it has delivered; keep it
    if (worst == nullptr || peer->connected_at < worst->connected_at) {
      worst = peer.get();
    }
  }
  if (worst == nullptr) {
    // Every outbound peer has delivered at least one block. Without a
    // fallback the emergency slot would never be reclaimed here and each
    // stale-tip/partition episode would ratchet the outbound count up by
    // one for good; retire the least-recently-useful peer instead.
    for (const auto& [id, peer] : peers_) {
      if (peer->inbound || peer->feeler || !peer->HandshakeComplete()) continue;
      if (worst == nullptr || peer->last_block_time < worst->last_block_time ||
          (peer->last_block_time == worst->last_block_time &&
           peer->connected_at < worst->connected_at)) {
        worst = peer.get();
      }
    }
  }
  if (worst != nullptr) DisconnectPeer(worst->id);
}

// ---------------------------------------------------------------------------
// Outbound-reconnect backoff

void Node::NoteOutboundFailure(const Endpoint& remote) {
  m_dial_failures_->Inc();
  DialBackoff& backoff = dial_backoff_[remote];
  ++backoff.failures;
  backoff.next_attempt = Sched().Now() + RetryDelay(backoff.failures);
  // Hard bound (the grace sweep in MaintainOutbound only clears long-expired
  // entries): a churning dialer cycling fresh [IP:Port] identifiers would
  // otherwise grow the map one record per identifier forever. Evict the
  // entry closest to redial eligibility — it is the one whose loss costs the
  // least backoff protection.
  if (config_.dial_backoff_max_entries > 0 &&
      dial_backoff_.size() > config_.dial_backoff_max_entries) {
    auto victim = dial_backoff_.end();
    for (auto it = dial_backoff_.begin(); it != dial_backoff_.end(); ++it) {
      if (it->first == remote) continue;  // never evict the record just made
      if (victim == dial_backoff_.end() ||
          it->second.next_attempt < victim->second.next_attempt) {
        victim = it;
      }
    }
    if (victim != dial_backoff_.end()) {
      dial_backoff_.erase(victim);
      ++dial_backoff_pruned_;
    }
  }
}

bsim::SimTime Node::RetryDelay(int failures) {
  if (!config_.reconnect_backoff) return config_.reconnect_delay;
  // reconnect_delay · 2^(failures-1), capped; the shift itself is bounded so
  // the cap comparison never sees a wrapped value.
  const int shift = std::min(failures - 1, 20);
  const bsim::SimTime delay =
      std::min(config_.reconnect_delay << shift, config_.reconnect_backoff_cap);
  // ±jitter desynchronizes redial herds after a common-mode outage.
  const double factor =
      1.0 + config_.reconnect_backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
  return static_cast<bsim::SimTime>(static_cast<double>(delay) * factor);
}

bool Node::DialAllowed(const Endpoint& remote, bsim::SimTime now) const {
  if (!config_.reconnect_backoff) return true;  // stock node: redial instantly
  const auto it = dial_backoff_.find(remote);
  return it == dial_backoff_.end() || now >= it->second.next_attempt;
}

std::size_t Node::InboundCount() const {
  std::size_t n = 0;
  for (const auto& [id, peer] : peers_) n += peer->inbound ? 1 : 0;
  return n;
}

std::size_t Node::OutboundCount() const {
  std::size_t n = 0;
  for (const auto& [id, peer] : peers_) {
    n += (!peer->inbound && !peer->feeler) ? 1 : 0;
  }
  return n;
}

std::vector<const Peer*> Node::Peers() const {
  std::vector<const Peer*> out;
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) out.push_back(peer.get());
  return out;
}

Peer* Node::FindPeerByRemote(const Endpoint& remote) {
  for (auto& [id, peer] : peers_) {
    if (peer->remote == remote) return peer.get();
  }
  return nullptr;
}

const Peer* Node::FindPeerById(std::uint64_t id) const {
  const auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Receive pipeline

void Node::OnData(std::uint64_t peer_id, bsutil::ByteSpan data) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) return;
  Peer& peer = *it->second;
  peer.rx_buffer.insert(peer.rx_buffer.end(), data.begin(), data.end());
  peer.bytes_received += data.size();
  m_rx_bytes_total_->Inc(data.size());

  // Overload shedding: a peer whose backlog outruns the decoder loses its
  // oldest bytes. DecodeMessage consumes at least a header's worth on every
  // header-complete outcome, so the stream resynchronizes (the sheared
  // frames surface as bad-magic/malformed drops) instead of wedging.
  if (config_.max_rx_buffer_bytes > 0 &&
      peer.rx_buffer.size() > config_.max_rx_buffer_bytes) {
    const std::size_t excess = peer.rx_buffer.size() - config_.max_rx_buffer_bytes;
    peer.rx_buffer.erase(peer.rx_buffer.begin(),
                         peer.rx_buffer.begin() + static_cast<std::ptrdiff_t>(excess));
    peer.rx_stream_base += excess;  // the decoder's stream position skips them
    m_rx_shed_bytes_->Inc(excess);
    trace_.Record(Sched().Now(), bsobs::EventType::kRxShed, peer_id,
                  static_cast<std::int64_t>(excess));
  }

  std::size_t offset = 0;
  while (true) {
    // The peer may be banned (destroyed) by frame processing; re-validate.
    auto it2 = peers_.find(peer_id);
    if (it2 == peers_.end()) return;
    Peer& live = *it2->second;

    const bsutil::ByteSpan rest(live.rx_buffer.data() + offset,
                                live.rx_buffer.size() - offset);
    bsobs::ScopedProbe decode_probe(profiler_, bsobs::HotStage::kCodecDecode);
    const bsproto::DecodeResult frame =
        bsproto::DecodeMessage(config_.chain.magic, rest);
    decode_probe.Stop();
    if (frame.consumed == 0) break;  // incomplete frame
    const std::uint64_t frame_start = live.rx_stream_base + offset;
    offset += frame.consumed;
    ProcessFrame(live, frame, frame_start);
  }

  auto it3 = peers_.find(peer_id);
  if (it3 == peers_.end()) return;
  Peer& drained = *it3->second;
  drained.rx_buffer.erase(drained.rx_buffer.begin(),
                          drained.rx_buffer.begin() + static_cast<std::ptrdiff_t>(offset));
  drained.rx_stream_base += offset;
}

void Node::ProcessFrame(Peer& peer, const bsproto::DecodeResult& frame,
                        std::uint64_t stream_offset) {
  using bsproto::DecodeStatus;

  // Checksum verification cost is paid for every complete frame, valid or
  // not: the victim hashes the payload before it can tell.
  const double checksum_cycles =
      static_cast<double>(frame.header.length) * kChecksumCyclesPerByte;

  const std::size_t frame_bytes = bsproto::kHeaderSize + frame.header.length;
  if (on_frame) on_frame(frame_bytes, frame.status);
  bsobs::ScopedTimer frame_timer(m_frame_process_seconds_);

  // Causal tracing: claim the context the sender registered for this stream
  // position and open the frame's own span. rx_ctx_ stays valid for the rest
  // of this frame — sends and misbehavior the handler triggers become its
  // children — and resets on every exit path.
  struct RxCtxReset {
    bsobs::TraceContext& ctx;
    ~RxCtxReset() { ctx = {}; }
  } rx_ctx_reset{rx_ctx_};
  bsobs::SpanClaim claim;
  if (tracer_ != nullptr && frame.status != DecodeStatus::kNeedMoreData &&
      peer.conn != nullptr) {
    const Endpoint remote = peer.conn->Remote();
    const Endpoint local = peer.conn->Local();
    claim = tracer_->ClaimFrame(
        bsobs::SpanStreamKey{bsobs::PackEndpoint(remote.ip, remote.port),
                             bsobs::PackEndpoint(local.ip, local.port)},
        stream_offset, static_cast<std::uint32_t>(frame_bytes));
    rx_ctx_ = claim.ctx.Valid() ? tracer_->Child(claim.ctx) : tracer_->Begin();
    bsobs::SpanRecord rec;
    rec.time = Sched().Now();
    rec.trace_id = rx_ctx_.trace_id;
    rec.span_id = rx_ctx_.span_id;
    rec.parent_span = claim.ctx.span_id;  // 0 when orphan
    rec.kind = frame.status == DecodeStatus::kOk ? bsobs::SpanKind::kReceive
                                                 : bsobs::SpanKind::kDrop;
    rec.flags = static_cast<std::uint8_t>(
        (claim.ctx.Valid() ? 0 : bsobs::kFlagOrphan) |
        (claim.resync ? bsobs::kFlagResync : 0));
    rec.msg_type = frame.status == DecodeStatus::kOk
                       ? static_cast<std::int16_t>(bsproto::MsgTypeOf(frame.message))
                       : -1;
    rec.node_ip = Ip();
    rec.peer_id = peer.id;
    rec.a = static_cast<std::int64_t>(frame.status);
    rec.b = static_cast<std::int64_t>(frame_bytes);
    tracer_->Log().Record(rec);
  }

  if (frame.status != DecodeStatus::kNeedMoreData) {
    m_frame_bytes_->Observe(static_cast<double>(frame_bytes));
    // Resource governance: the frame must fit the peer's token buckets and
    // the global CPU budget *before* the payload is checksummed — shedding
    // at the header peek is what keeps a flood off the CPU. The bytes stay
    // visible to on_frame above (they did arrive on the wire, and the
    // detect engine watches the wire).
    if (!AdmitFrame(peer, frame, frame_bytes)) {
      RecordSpan(bsobs::SpanKind::kShed, peer, -1, 0,
                 static_cast<std::int64_t>(frame_bytes), 0);
      return;
    }
  }

  switch (frame.status) {
    case DecodeStatus::kOk:
      break;
    case DecodeStatus::kBadChecksum:
      ++peer.frames_bad_checksum;
      m_frames_bad_checksum_->Inc();
      trace_.Record(Sched().Now(), bsobs::EventType::kFrameDropped, peer.id,
                    static_cast<std::int64_t>(frame.status),
                    static_cast<std::int64_t>(frame_bytes));
      if (cpu_) cpu_->ConsumeMessage(checksum_cycles);
      // The bogus-message loophole: dropped with no ban-score consequence —
      // unless the ablation flips the order and punishes it.
      if (!config_.checksum_before_misbehavior) {
        ApplyMisbehavior(peer, Misbehavior::kBadChecksumFrame);
      }
      return;
    case DecodeStatus::kUnknownCommand:
      ++peer.frames_unknown_command;
      m_frames_unknown_->Inc();
      trace_.Record(Sched().Now(), bsobs::EventType::kFrameDropped, peer.id,
                    static_cast<std::int64_t>(frame.status),
                    static_cast<std::int64_t>(frame_bytes));
      if (cpu_) cpu_->ConsumeMessage(checksum_cycles);
      return;  // ignored, never punished
    case DecodeStatus::kMalformed:
    case DecodeStatus::kOversize:
    case DecodeStatus::kBadMagic:
      ++peer.frames_malformed;
      m_frames_malformed_->Inc();
      if (frame.status == DecodeStatus::kOversize) m_codec_oversize_->Inc();
      trace_.Record(Sched().Now(), bsobs::EventType::kFrameDropped, peer.id,
                    static_cast<std::int64_t>(frame.status),
                    static_cast<std::int64_t>(frame_bytes));
      if (cpu_) cpu_->ConsumeMessage(checksum_cycles);
      return;  // dropped silently (no Table I rule)
    case DecodeStatus::kNeedMoreData:
      return;
  }

  const MsgType type = bsproto::MsgTypeOf(frame.message);
  if (cpu_) cpu_->ConsumeMessage(checksum_cycles + VictimProcessCycles(type));

  ++peer.messages_received;
  m_messages_total_->Inc();
  m_msg_type_[static_cast<std::size_t>(type)]->Inc();
  ++message_counts_[type];
  peer.last_recv_time = Sched().Now();
  trace_.Record(Sched().Now(), bsobs::EventType::kFrameDecoded, peer.id,
                static_cast<std::int64_t>(type),
                static_cast<std::int64_t>(frame_bytes));
  if (on_message) on_message(peer, type, frame.header.length);

  ProcessMessage(peer, frame.message);
}

bool Node::AdmitFrame(Peer& peer, const bsproto::DecodeResult& frame,
                      std::size_t frame_bytes) {
  if (!config_.enable_rate_limit && !governor_) return true;
  const bsim::SimTime now = Sched().Now();

  // What processing this frame would cost the shared CPU: checksum over the
  // payload, the type handler when it would actually run, and the fixed
  // stack overhead the CpuModel charges per admitted message.
  double cost = static_cast<double>(frame.header.length) * kChecksumCyclesPerByte;
  bool control_frame = false;
  if (frame.status == bsproto::DecodeStatus::kOk) {
    const bsproto::MsgType type = bsproto::MsgTypeOf(frame.message);
    cost += VictimProcessCycles(type);
    control_frame = type == bsproto::MsgType::kVersion ||
                    type == bsproto::MsgType::kVerack ||
                    type == bsproto::MsgType::kPing ||
                    type == bsproto::MsgType::kPong;
  }
  if (cpu_) cost += cpu_->Config().per_message_overhead_cycles;

  PeerPriority priority = PriorityOf(peer);
  // A frame that already failed decode has nothing left to offer but its
  // accounting; never let it compete with intact traffic for the reserve.
  if (config_.enable_priority && frame.status != bsproto::DecodeStatus::kOk) {
    priority = PeerPriority::kLow;
  }
  const double scale = priority == PeerPriority::kLow &&
                               config_.low_priority_cost_scale > 0
                           ? 1.0 / config_.low_priority_cost_scale
                           : 1.0;
  const double byte_cost = static_cast<double>(frame_bytes) * scale;
  const double cycle_cost = cost * scale;

  bool admitted = true;
  bool governor_shed = false;
  if (config_.enable_rate_limit &&
      (peer.rx_bytes_bucket.Available(now) < byte_cost ||
       peer.rx_cost_bucket.Available(now) < cycle_cost)) {
    admitted = false;
  }
  // The governor is only drawn on for frames the per-peer buckets accept,
  // so a bucket-refused flood cannot also drain the shared budget. Handshake
  // and keepalive control frames skip it entirely — shedding a PONG under
  // load would sever exactly the honest connections the governor protects,
  // and a control-frame flood is still throttled by the per-peer buckets.
  if (admitted && !control_frame && governor_ &&
      !governor_->TryConsume(cycle_cost, priority, now)) {
    admitted = false;
    governor_shed = true;
  }
  if (admitted) {
    if (config_.enable_rate_limit) {
      peer.rx_bytes_bucket.TryConsume(byte_cost, now);
      peer.rx_cost_bucket.TryConsume(cycle_cost, now);
    }
    return true;
  }

  m_ratelimit_frames_->Inc();
  m_ratelimit_bytes_->Inc(frame_bytes);
  if (governor_shed) m_governor_shed_frames_->Inc();
  if (cpu_) cpu_->ConsumeCycles(kRateLimitDropCycles);
  trace_.Record(now, bsobs::EventType::kRateLimited, peer.id,
                static_cast<std::int64_t>(frame_bytes), governor_shed ? 1 : 0);
  if (on_frame_shed) on_frame_shed(peer, frame_bytes, governor_shed);
  return false;
}

bool Node::ApplyMisbehavior(Peer& peer, Misbehavior what) {
  // Partition-aware damping: while partition suspicion is high, behind/ahead
  // symptoms — a block whose parent we lack, a disordered header burst — from
  // a peer holding good-score credit are exactly what an honest peer across a
  // routing cut relays. Defer the penalty instead of marching a reconverging
  // peer toward a ban; true attackers without delivered-block credit keep
  // scoring normally.
  const bool partition_symptom = what == Misbehavior::kBlockPrevMissing ||
                                 what == Misbehavior::kHeadersNonConnecting ||
                                 what == Misbehavior::kHeadersNonContinuous;
  if (config_.enable_partition_resilience && config_.partition_damping &&
      partition_.SuspicionHigh() && partition_symptom) {
    // Divergence sync: the symptom itself says the sender knows chain we do
    // not. Ask it for headers (rate-limited per peer) so its follow-up blocks
    // connect instead of re-offending — a reconverged neighbor then pulls us
    // across the cut rather than marching toward our ban threshold.
    const bsim::SimTime now = Sched().Now();
    if (peer.last_divergence_sync == 0 ||
        now - peer.last_divergence_sync >= config_.partition_probe_interval) {
      peer.last_divergence_sync = now;
      bsproto::GetHeadersMsg gh;
      gh.locator = chain_.GetLocator();
      SendTo(peer, gh);
    }
    if (tracker_.GoodScore(peer.id) > 0) {
      m_partition_deferred_penalties_->Inc();
      trace_.Record(now, bsobs::EventType::kPenaltyDeferred, peer.id,
                    static_cast<std::int64_t>(what), tracker_.GoodScore(peer.id));
      return false;
    }
  }
  bsobs::ScopedProbe tracker_probe(profiler_, bsobs::HotStage::kTrackerUpdate);
  const MisbehaviorOutcome outcome = tracker_.Misbehaving(peer.id, peer.inbound, what);
  tracker_probe.Stop();
  // The misbehavior point, and the ban it may trip, extend the causal chain
  // of the frame being processed: ban ← misbehavior ← receive ← send/inject.
  bsobs::TraceContext mis_ctx{};
  if (tracer_ != nullptr && outcome.rule_applied) {
    mis_ctx = rx_ctx_.Valid() ? tracer_->Child(rx_ctx_) : tracer_->Begin();
    bsobs::SpanRecord rec;
    rec.time = Sched().Now();
    rec.trace_id = mis_ctx.trace_id;
    rec.span_id = mis_ctx.span_id;
    rec.parent_span = rx_ctx_.span_id;
    rec.kind = bsobs::SpanKind::kMisbehavior;
    rec.node_ip = Ip();
    rec.peer_id = peer.id;
    rec.a = outcome.score_delta;
    rec.b = outcome.total_score;
    tracer_->Log().Record(rec);
  }
  if (outcome.rule_applied) {
    trace_.Record(Sched().Now(), bsobs::EventType::kMisbehavior, peer.id,
                  outcome.score_delta, outcome.total_score);
    if (on_misbehavior) on_misbehavior(peer, what, outcome);
  }
  if (!outcome.should_ban) return false;

  m_peers_banned_->Inc();
  if (config_.use_discouragement) {
    banman_.Discourage(peer.remote.ip);
    trace_.Record(Sched().Now(), bsobs::EventType::kPeerDiscouraged, peer.id,
                  static_cast<std::int64_t>(peer.remote.ip), outcome.total_score);
  } else {
    banman_.Ban(peer.remote, Sched().Now() + config_.ban_duration);
    trace_.Record(Sched().Now(), bsobs::EventType::kPeerBanned, peer.id,
                  static_cast<std::int64_t>(peer.remote.ip), outcome.total_score);
  }
  if (tracer_ != nullptr) {
    const bsobs::TraceContext parent = mis_ctx.Valid() ? mis_ctx : rx_ctx_;
    const bsobs::TraceContext ban_ctx =
        parent.Valid() ? tracer_->Child(parent) : tracer_->Begin();
    bsobs::SpanRecord rec;
    rec.time = Sched().Now();
    rec.trace_id = ban_ctx.trace_id;
    rec.span_id = ban_ctx.span_id;
    rec.parent_span = parent.span_id;
    rec.kind = bsobs::SpanKind::kBan;
    rec.flags = config_.use_discouragement ? bsobs::kFlagDiscouraged : 0;
    rec.node_ip = Ip();
    rec.peer_id = peer.id;
    rec.a = static_cast<std::int64_t>(peer.remote.ip);
    rec.b = outcome.total_score;
    tracer_->Log().Record(rec);
  }
  if (on_peer_banned) on_peer_banned(peer);
  DisconnectPeer(peer.id);  // destroys `peer`
  return true;
}

// ---------------------------------------------------------------------------
// Message dispatch

void Node::ProcessMessage(Peer& peer, const Message& msg) {
  const MsgType type = bsproto::MsgTypeOf(msg);

  // ---- Handshake-state rules (Table I VERSION/VERACK rows) ----
  if (!peer.got_version) {
    if (type != MsgType::kVersion) {
      // "Message before VERSION": +1 (inbound, ≤0.21); message ignored.
      ApplyMisbehavior(peer, Misbehavior::kMessageBeforeVersion);
      return;
    }
    HandleVersion(peer, std::get<bsproto::VersionMsg>(msg));
    return;
  }
  if (type == MsgType::kVersion) {
    // "Duplicate VERSION": +1 (inbound, ≤0.21); message ignored.
    ApplyMisbehavior(peer, Misbehavior::kVersionDuplicate);
    return;
  }
  if (!peer.got_verack) {
    if (type == MsgType::kVerack) {
      HandleVerack(peer);
      return;
    }
    // "Message (other than VERSION) before VERACK": +1 (inbound, 0.20 only).
    ApplyMisbehavior(peer, Misbehavior::kMessageBeforeVerack);
    return;
  }

  // ---- Established message handlers ----
  switch (type) {
    case MsgType::kVerack:
      return;  // redundant verack, ignored
    case MsgType::kPing:
      SendTo(peer, bsproto::PongMsg{std::get<bsproto::PingMsg>(msg).nonce});
      return;
    case MsgType::kPong: {
      const auto& pong = std::get<bsproto::PongMsg>(msg);
      if (peer.outstanding_ping_nonce != 0 &&
          pong.nonce == peer.outstanding_ping_nonce) {
        peer.last_pong_rtt = Sched().Now() - peer.last_ping_sent;
        if (peer.min_ping_rtt < 0 || peer.last_pong_rtt < peer.min_ping_rtt) {
          peer.min_ping_rtt = peer.last_pong_rtt;  // eviction protection tier 2
        }
        peer.outstanding_ping_nonce = 0;
      }
      return;
    }
    case MsgType::kAddr:
      HandleAddr(peer, std::get<bsproto::AddrMsg>(msg));
      return;
    case MsgType::kInv:
      HandleInv(peer, std::get<bsproto::InvMsg>(msg));
      return;
    case MsgType::kGetData:
      HandleGetData(peer, std::get<bsproto::GetDataMsg>(msg));
      return;
    case MsgType::kGetHeaders:
      HandleGetHeaders(peer, std::get<bsproto::GetHeadersMsg>(msg));
      return;
    case MsgType::kGetBlocks:
      HandleGetBlocks(peer, std::get<bsproto::GetBlocksMsg>(msg));
      return;
    case MsgType::kHeaders:
      HandleHeaders(peer, std::get<bsproto::HeadersMsg>(msg));
      return;
    case MsgType::kTx:
      HandleTx(peer, std::get<bsproto::TxMsg>(msg));
      return;
    case MsgType::kBlock:
      HandleBlock(peer, std::get<bsproto::BlockMsg>(msg));
      return;
    case MsgType::kCmpctBlock:
      HandleCmpctBlock(peer, std::get<bsproto::CmpctBlockMsg>(msg));
      return;
    case MsgType::kGetBlockTxn:
      HandleGetBlockTxn(peer, std::get<bsproto::GetBlockTxnMsg>(msg));
      return;
    case MsgType::kBlockTxn:
      HandleBlockTxn(peer, std::get<bsproto::BlockTxnMsg>(msg));
      return;
    case MsgType::kFilterLoad:
      HandleFilterLoad(peer, std::get<bsproto::FilterLoadMsg>(msg));
      return;
    case MsgType::kFilterAdd:
      HandleFilterAdd(peer, std::get<bsproto::FilterAddMsg>(msg));
      return;
    case MsgType::kFilterClear:
      peer.filter_loaded = false;
      peer.filter.reset();
      return;
    case MsgType::kGetAddr:
      HandleGetAddr(peer);
      return;
    case MsgType::kMempool:
      HandleMempool(peer);
      return;
    case MsgType::kTipProbe:
      HandleTipProbe(peer, std::get<bsproto::TipProbeMsg>(msg));
      return;
    // No ban-score rules and no state to update: accepted silently. These
    // (with PING/PONG above) are the "messages never getting banned" of
    // §III-B.
    case MsgType::kNotFound:
    case MsgType::kSendHeaders:
    case MsgType::kFeeFilter:
    case MsgType::kSendCmpct:
    case MsgType::kMerkleBlock:
    case MsgType::kReject:
      return;
    case MsgType::kVersion:
      return;  // handled above
  }
}

// ---------------------------------------------------------------------------
// Handshake

bsproto::VersionMsg Node::MakeVersionMsg(const Peer& peer) {
  bsproto::VersionMsg msg;
  msg.version = config_.protocol_version;
  msg.services = config_.services;
  msg.timestamp = static_cast<std::int64_t>(Sched().Now() / bsim::kSecond);
  msg.addr_recv.endpoint = peer.remote;
  msg.addr_from.endpoint = Endpoint{Ip(), config_.listen_port};
  msg.nonce = rng_.Next();
  msg.start_height = chain_.TipHeight();
  return msg;
}

void Node::HandleVersion(Peer& peer, const bsproto::VersionMsg& msg) {
  peer.got_version = true;
  peer.peer_protocol_version = msg.version;
  if (peer.inbound && !peer.sent_version) {
    peer.sent_version = true;
    SendTo(peer, MakeVersionMsg(peer));
  }
  SendTo(peer, bsproto::VerackMsg{});
  // A completed outbound handshake proves the endpoint healthy again (and,
  // for a feeler, ends the probe — the peer is destroyed).
  if (!peer.inbound && peer.HandshakeComplete() && OnOutboundHandshakeComplete(peer)) {
    return;
  }
}

void Node::HandleVerack(Peer& peer) {
  peer.got_verack = true;
  if (!peer.inbound && peer.HandshakeComplete() && OnOutboundHandshakeComplete(peer)) {
    return;  // feeler probe finished; the session is gone
  }
  // Outbound peers open header sync once the session is up.
  if (!peer.inbound) {
    bsproto::GetHeadersMsg gh;
    gh.locator = chain_.GetLocator();
    SendTo(peer, gh);
  }
}

// ---------------------------------------------------------------------------
// Gossip / inventory

void Node::HandleAddr(Peer& peer, const bsproto::AddrMsg& msg) {
  if (msg.addresses.size() > bsproto::kMaxAddrToSend) {
    ApplyMisbehavior(peer, Misbehavior::kAddrOversize);
    return;
  }
  for (const auto& rec : msg.addresses) addrman_.Add(rec.addr.endpoint, Sched().Now());
}

void Node::HandleInv(Peer& peer, const bsproto::InvMsg& msg) {
  if (msg.inventory.size() > bsproto::kMaxInvEntries) {
    ApplyMisbehavior(peer, Misbehavior::kInvOversize);
    return;
  }
  bsproto::GetDataMsg request;
  for (const auto& item : msg.inventory) {
    switch (item.type) {
      case bsproto::InvType::kBlock:
      case bsproto::InvType::kWitnessBlock:
        if (!chain_.HaveBlock(item.hash) && !chain_.IsKnownInvalid(item.hash)) {
          request.inventory.push_back(item);
        }
        break;
      case bsproto::InvType::kTx:
      case bsproto::InvType::kWitnessTx:
        if (!mempool_.Contains(item.hash)) request.inventory.push_back(item);
        break;
      default:
        break;
    }
  }
  if (!request.inventory.empty()) SendTo(peer, request);
}

void Node::HandleGetData(Peer& peer, const bsproto::GetDataMsg& msg) {
  if (msg.inventory.size() > bsproto::kMaxInvEntries) {
    ApplyMisbehavior(peer, Misbehavior::kGetDataOversize);
    return;
  }
  bsproto::NotFoundMsg misses;
  for (const auto& item : msg.inventory) {
    switch (item.type) {
      case bsproto::InvType::kBlock:
      case bsproto::InvType::kWitnessBlock: {
        if (const auto block = chain_.GetBlock(item.hash)) {
          SendTo(peer, bsproto::BlockMsg{*block});
        } else {
          misses.inventory.push_back(item);
        }
        break;
      }
      case bsproto::InvType::kCmpctBlock: {
        if (const auto block = chain_.GetBlock(item.hash)) {
          SendTo(peer, bsproto::BuildCompactBlock(*block, rng_.Next()));
        } else {
          misses.inventory.push_back(item);
        }
        break;
      }
      case bsproto::InvType::kFilteredBlock: {
        // BIP-37: a filtered block is a MERKLEBLOCK proof over the peer's
        // loaded bloom filter, followed by the matched transactions.
        const auto block = chain_.GetBlock(item.hash);
        if (!block || !peer.filter) {
          misses.inventory.push_back(item);
          break;
        }
        std::vector<bscrypto::Hash256> txids;
        std::vector<bool> matches;
        std::vector<const bschain::Transaction*> matched_txs;
        txids.reserve(block->txs.size());
        for (const auto& tx : block->txs) {
          txids.push_back(tx.Txid());
          const bool match = peer.filter->MatchesTx(tx);
          matches.push_back(match);
          if (match) matched_txs.push_back(&tx);
        }
        const bscrypto::PartialMerkleTree proof(txids, matches);
        bsproto::MerkleBlockMsg mb;
        mb.header = block->header;
        mb.total_txs = static_cast<std::uint32_t>(block->txs.size());
        mb.hashes = proof.Hashes();
        mb.flags = proof.FlagBytes();
        SendTo(peer, mb);
        for (const bschain::Transaction* tx : matched_txs) {
          SendTo(peer, bsproto::TxMsg{*tx});
        }
        break;
      }
      case bsproto::InvType::kTx:
      case bsproto::InvType::kWitnessTx: {
        if (const auto tx = mempool_.Get(item.hash)) {
          SendTo(peer, bsproto::TxMsg{*tx});
        } else {
          misses.inventory.push_back(item);
        }
        break;
      }
      default:
        misses.inventory.push_back(item);
        break;
    }
  }
  if (!misses.inventory.empty()) SendTo(peer, misses);
}

void Node::HandleGetHeaders(Peer& peer, const bsproto::GetHeadersMsg& msg) {
  bsproto::HeadersMsg reply;
  reply.headers = chain_.HeadersAfterLocator(msg.locator, bsproto::kMaxHeadersResults);
  SendTo(peer, reply);
}

void Node::HandleGetBlocks(Peer& peer, const bsproto::GetBlocksMsg& msg) {
  const auto headers = chain_.HeadersAfterLocator(msg.locator, 500);
  bsproto::InvMsg inv;
  for (const auto& h : headers) {
    inv.inventory.push_back({bsproto::InvType::kBlock, h.Hash()});
  }
  if (!inv.inventory.empty()) SendTo(peer, inv);
}

void Node::HandleHeaders(Peer& peer, const bsproto::HeadersMsg& msg) {
  if (msg.headers.size() > bsproto::kMaxHeadersResults) {
    ApplyMisbehavior(peer, Misbehavior::kHeadersOversize);
    return;
  }
  if (msg.headers.empty()) return;

  // Non-continuous sequence: each header must chain onto the previous one.
  for (std::size_t i = 1; i < msg.headers.size(); ++i) {
    if (msg.headers[i].prev != msg.headers[i - 1].Hash()) {
      ApplyMisbehavior(peer, Misbehavior::kHeadersNonContinuous);
      return;
    }
  }

  // Non-connecting: the first header must attach to our header tree. Core
  // tolerates kMaxUnconnectingHeaders of these, then misbehaves the peer.
  const bschain::BlockResult first = chain_.AcceptHeader(msg.headers[0]);
  if (first == bschain::BlockResult::kPrevMissing) {
    ++peer.unconnecting_headers;
    if (peer.unconnecting_headers % bsproto::kMaxUnconnectingHeaders == 0) {
      ApplyMisbehavior(peer, Misbehavior::kHeadersNonConnecting);
    }
    return;
  }
  if (first == bschain::BlockResult::kInvalidPow) {
    ApplyMisbehavior(peer, Misbehavior::kHeaderInvalidPow);
    return;
  }
  peer.unconnecting_headers = 0;

  for (std::size_t i = 1; i < msg.headers.size(); ++i) {
    const bschain::BlockResult r = chain_.AcceptHeader(msg.headers[i]);
    if (r == bschain::BlockResult::kInvalidPow) {
      ApplyMisbehavior(peer, Misbehavior::kHeaderInvalidPow);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Transactions and blocks

void Node::HandleTx(Peer& peer, const bsproto::TxMsg& msg) {
  const bschain::TxResult result = mempool_.AcceptTransaction(msg.tx);
  switch (result) {
    case bschain::TxResult::kOk:
      peer.last_tx_time = Sched().Now();  // eviction protection tier 3
      if (config_.relay) RelayTxInv(msg.tx.Txid(), peer.id);
      return;
    case bschain::TxResult::kSegwitInvalid:
      ApplyMisbehavior(peer, Misbehavior::kTxSegwitInvalid);
      return;
    default:
      ApplyMisbehavior(peer, Misbehavior::kTxOtherConsensusInvalid);
      return;
  }
}

void Node::AcceptBlockFrom(Peer& peer, const bschain::Block& block) {
  const bschain::BlockResult result = chain_.AcceptBlock(block);
  switch (result) {
    case bschain::BlockResult::kOk:
      // Good-score credit: the peer delivered a valid block (§VIII).
      tracker_.AddGoodScore(peer.id);
      peer.last_block_time = Sched().Now();  // eviction protection tier 4
      if (!peer.inbound && !peer.feeler) UpdateAnchors(peer.remote);
      if (on_block_accepted) on_block_accepted(block);
      if (config_.relay) RelayBlockInv(block.Hash(), peer.id);
      return;
    case bschain::BlockResult::kDuplicate:
      return;
    case bschain::BlockResult::kMutated:
      ApplyMisbehavior(peer, Misbehavior::kBlockMutated);
      return;
    case bschain::BlockResult::kCachedInvalid:
      ApplyMisbehavior(peer, Misbehavior::kBlockCachedInvalid);
      return;
    case bschain::BlockResult::kPrevInvalid:
      ApplyMisbehavior(peer, Misbehavior::kBlockPrevInvalid);
      return;
    case bschain::BlockResult::kPrevMissing:
      ApplyMisbehavior(peer, Misbehavior::kBlockPrevMissing);
      return;
    case bschain::BlockResult::kInvalidPow:
    case bschain::BlockResult::kOversize:
    case bschain::BlockResult::kBadCoinbase:
    case bschain::BlockResult::kConsensusInvalid:
      ApplyMisbehavior(peer, Misbehavior::kBlockOtherInvalid);
      return;
  }
}

void Node::HandleBlock(Peer& peer, const bsproto::BlockMsg& msg) {
  AcceptBlockFrom(peer, msg.block);
}

void Node::HandleCmpctBlock(Peer& peer, const bsproto::CmpctBlockMsg& msg) {
  if (!bschain::CheckProofOfWork(msg.header.Hash(), msg.header.bits, config_.chain) ||
      bsproto::CheckCompactBlock(msg) != bsproto::CompactBlockError::kOk) {
    ApplyMisbehavior(peer, Misbehavior::kCmpctBlockInvalid);
    return;
  }
  std::vector<std::uint64_t> missing;
  const auto block =
      bsproto::ReconstructBlock(msg, mempool_.CollectForBlock(mempool_.Size()), &missing);
  if (block) {
    AcceptBlockFrom(peer, *block);
    return;
  }
  pending_compact_[peer.id] = msg;
  bsproto::GetBlockTxnMsg request;
  request.block_hash = msg.header.Hash();
  request.indexes = std::move(missing);
  SendTo(peer, request);
}

void Node::HandleGetBlockTxn(Peer& peer, const bsproto::GetBlockTxnMsg& msg) {
  const auto block = chain_.GetBlock(msg.block_hash);
  if (!block) return;  // unknown block: ignored, as in Core
  bsproto::BlockTxnMsg reply;
  reply.block_hash = msg.block_hash;
  for (std::uint64_t idx : msg.indexes) {
    if (idx >= block->txs.size()) {
      ApplyMisbehavior(peer, Misbehavior::kGetBlockTxnOutOfBounds);
      return;
    }
    reply.txs.push_back(block->txs[static_cast<std::size_t>(idx)]);
  }
  SendTo(peer, reply);
}

void Node::HandleBlockTxn(Peer& peer, const bsproto::BlockTxnMsg& msg) {
  const auto it = pending_compact_.find(peer.id);
  if (it == pending_compact_.end()) return;
  const bsproto::CmpctBlockMsg pending = it->second;
  if (pending.header.Hash() != msg.block_hash) return;
  pending_compact_.erase(it);

  // Retry reconstruction with mempool plus the delivered transactions.
  std::vector<bschain::Transaction> candidates = mempool_.CollectForBlock(mempool_.Size());
  candidates.insert(candidates.end(), msg.txs.begin(), msg.txs.end());
  const auto block = bsproto::ReconstructBlock(pending, candidates, nullptr);
  if (!block) {
    // Peer answered our request with transactions that do not fill the
    // block: invalid compact block data.
    ApplyMisbehavior(peer, Misbehavior::kCmpctBlockInvalid);
    return;
  }
  AcceptBlockFrom(peer, *block);
}

// ---------------------------------------------------------------------------
// BIP-37 filters and address queries

void Node::HandleFilterLoad(Peer& peer, const bsproto::FilterLoadMsg& msg) {
  if (msg.filter.size() > bsproto::kMaxBloomFilterSize) {
    ApplyMisbehavior(peer, Misbehavior::kFilterLoadOversize);
    return;
  }
  peer.filter = bsproto::BloomFilter::FromMessage(msg);
  peer.filter_loaded = peer.filter.has_value();
}

void Node::HandleFilterAdd(Peer& peer, const bsproto::FilterAddMsg& msg) {
  if (msg.data.size() > bsproto::kMaxScriptElementSize) {
    ApplyMisbehavior(peer, Misbehavior::kFilterAddOversize);
    return;
  }
  if (peer.peer_protocol_version >= bsproto::kNoBloomVersion) {
    // Table I (0.20.0 only): FILTERADD from a protocol >= 70011 peer.
    ApplyMisbehavior(peer, Misbehavior::kFilterAddVersionGate);
    return;
  }
  if (peer.filter) peer.filter->Insert(msg.data);
}

void Node::HandleGetAddr(Peer& peer) {
  bsproto::AddrMsg reply;
  for (const Endpoint& ep : addrman_.Sample(bsproto::kMaxAddrToSend)) {
    bsproto::TimedNetAddr rec;
    rec.time = static_cast<std::uint32_t>(Sched().Now() / bsim::kSecond);
    rec.addr.services = bsproto::kNodeNetwork;
    rec.addr.endpoint = ep;
    reply.addresses.push_back(rec);
  }
  SendTo(peer, reply);
}

void Node::HandleMempool(Peer& peer) {
  bsproto::InvMsg inv;
  for (const auto& tx : mempool_.CollectForBlock(bsproto::kMaxInvEntries)) {
    inv.inventory.push_back({bsproto::InvType::kTx, tx.Txid()});
  }
  SendTo(peer, inv);
}

// ---------------------------------------------------------------------------
// Sending / relay / mining

void Node::SendTo(Peer& peer, const Message& msg) {
  if (peer.conn == nullptr || !peer.conn->IsEstablished()) return;
  const bsutil::ByteVec bytes = bsproto::EncodeMessage(config_.chain.magic, msg);
  if (tracer_ != nullptr) {
    // Register the frame's stream position so the receiver can claim this
    // context when its decoder reaches the same offset. A send triggered by
    // an in-flight frame (PONG, INV relay, GETDATA, ...) continues that
    // frame's trace; anything else roots a new one.
    const bsobs::TraceContext ctx =
        rx_ctx_.Valid() ? tracer_->Child(rx_ctx_) : tracer_->Begin();
    const Endpoint local = peer.conn->Local();
    const Endpoint remote = peer.conn->Remote();
    tracer_->NoteFrameSent(
        bsobs::SpanStreamKey{bsobs::PackEndpoint(local.ip, local.port),
                             bsobs::PackEndpoint(remote.ip, remote.port)},
        peer.tx_stream_offset, static_cast<std::uint32_t>(bytes.size()), ctx);
    bsobs::SpanRecord rec;
    rec.time = Sched().Now();
    rec.trace_id = ctx.trace_id;
    rec.span_id = ctx.span_id;
    rec.parent_span = rx_ctx_.span_id;  // 0 when this send roots the trace
    rec.kind = bsobs::SpanKind::kSend;
    rec.msg_type = static_cast<std::int16_t>(bsproto::MsgTypeOf(msg));
    rec.node_ip = Ip();
    rec.peer_id = peer.id;
    rec.a = static_cast<std::int64_t>(bytes.size());
    tracer_->Log().Record(rec);
  }
  peer.tx_stream_offset += bytes.size();
  peer.conn->Send(bytes);
}

void Node::RecordSpan(bsobs::SpanKind kind, const Peer& peer,
                      std::int16_t msg_type, std::uint8_t flags, std::int64_t a,
                      std::int64_t b) {
  if (tracer_ == nullptr) return;
  const bsobs::TraceContext ctx =
      rx_ctx_.Valid() ? tracer_->Child(rx_ctx_) : tracer_->Begin();
  bsobs::SpanRecord rec;
  rec.time = Sched().Now();
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_span = rx_ctx_.span_id;
  rec.kind = kind;
  rec.flags = flags;
  rec.msg_type = msg_type;
  rec.node_ip = Ip();
  rec.peer_id = peer.id;
  rec.a = a;
  rec.b = b;
  tracer_->Log().Record(rec);
}

bool Node::SendToRemoteIp(std::uint32_t ip, const Message& msg) {
  for (auto& [id, peer] : peers_) {
    if (peer->remote.ip == ip && peer->HandshakeComplete()) {
      SendTo(*peer, msg);
      return true;
    }
  }
  return false;
}

void Node::RelayBlockInv(const bscrypto::Hash256& hash, std::uint64_t except_peer) {
  bsproto::InvMsg inv;
  inv.inventory.push_back({bsproto::InvType::kBlock, hash});
  for (auto& [id, peer] : peers_) {
    if (id == except_peer || !peer->HandshakeComplete()) continue;
    SendTo(*peer, inv);
  }
}

void Node::RelayTxInv(const bscrypto::Hash256& txid, std::uint64_t except_peer) {
  bsproto::InvMsg inv;
  inv.inventory.push_back({bsproto::InvType::kTx, txid});
  for (auto& [id, peer] : peers_) {
    if (id == except_peer || !peer->HandshakeComplete()) continue;
    // BIP-37: SPV peers only hear about transactions their filter matches.
    if (peer->filter) {
      const auto tx = mempool_.Get(txid);
      if (!tx || !peer->filter->MatchesTx(*tx)) continue;
    }
    SendTo(*peer, inv);
  }
}

std::optional<bschain::Block> Node::MineAndRelay() {
  bschain::Block tmpl = bschain::BuildBlockTemplate(
      chain_.TipHash(), static_cast<std::uint32_t>(Sched().Now() / bsim::kSecond),
      mempool_.CollectForBlock(1000), config_.chain, mining_extra_nonce_++);
  auto block = bschain::MineBlock(std::move(tmpl), config_.chain);
  if (!block) return std::nullopt;
  if (chain_.AcceptBlock(*block) != bschain::BlockResult::kOk) return std::nullopt;
  if (on_block_accepted) on_block_accepted(*block);
  RelayBlockInv(block->Hash(), /*except_peer=*/0);
  return block;
}

void Node::OnIcmp(const bsim::IcmpPacket& pkt) {
  (void)pkt;
  m_icmp_packets_->Inc();
  if (cpu_) cpu_->ConsumeIcmpPacket();
}

void Node::OnIcmpBatch(const bsim::IcmpPacket& pkt, std::uint64_t count) {
  (void)pkt;
  m_icmp_packets_->Inc(count);
  if (cpu_) cpu_->ConsumeIcmpPackets(count);
}

}  // namespace bsnet
