#include "core/real_transport.hpp"

#include <cerrno>

#include <algorithm>
#include <array>
#include <utility>

namespace bsnet {

namespace {

bsim::SockAddr ToSockAddr(const bsproto::Endpoint& ep) {
  return bsim::SockAddr{ep.ip, ep.port};
}

bsproto::Endpoint ToEndpoint(const bsim::SockAddr& addr) {
  return bsproto::Endpoint{addr.ip, addr.port};
}

}  // namespace

// ---------------------------------------------------------------------------
// RealConn

RealConn::RealConn(RealTransport& transport, std::uint64_t id, int fd,
                   bool inbound, bsproto::Endpoint local, bsproto::Endpoint remote,
                   State state)
    : transport_(transport),
      id_(id),
      fd_(fd),
      inbound_(inbound),
      local_(local),
      remote_(remote),
      state_(state),
      recv_buffer_cap_(transport.config_.recv_buffer_cap) {}

void RealConn::SetDataSink(std::function<void(bsutil::ByteSpan)> sink) {
  on_data_ = std::move(sink);
  if (!on_data_ || rx_pending_.empty()) return;
  bsutil::ByteVec drained;
  drained.swap(rx_pending_);
  on_data_(drained);
}

void RealConn::Send(bsutil::ByteSpan data) {
  if (state_ == State::kClosed || data.empty()) return;
  write_queue_.push_back(Frame{bsutil::ByteVec(data.begin(), data.end())});
  queued_bytes_ += data.size();

  // Drop-oldest shedding at the cap: whole frames only, and never the front
  // frame once part of it reached the wire — truncating it mid-frame would
  // desynchronize the peer's decoder for the rest of the session.
  const std::size_t cap = transport_.config_.max_write_queue_bytes;
  while (cap > 0 && queued_bytes_ > cap && write_queue_.size() > 1) {
    const std::size_t droppable = front_offset_ > 0 ? 1 : 0;
    if (write_queue_.size() <= droppable + 1) break;
    auto victim = write_queue_.begin() + static_cast<std::ptrdiff_t>(droppable);
    queued_bytes_ -= victim->data.size();
    bytes_shed_ += victim->data.size();
    ++frames_shed_;
    ++transport_.frames_shed_;
    if (transport_.m_frames_shed_ != nullptr) transport_.m_frames_shed_->Inc();
    write_queue_.erase(victim);
  }

  if (state_ == State::kEstablished) transport_.FlushQueue(*this);
}

void RealConn::Close() {
  if (state_ == State::kClosed) return;
  // Best-effort final flush, then a clean close: the peer reads EOF.
  if (state_ == State::kEstablished) transport_.FlushQueue(*this);
  if (state_ == State::kClosed) return;  // flush hit a fatal send error
  const bool was_connecting = state_ == State::kConnecting;
  state_ = State::kClosed;
  auto on_closed_cb = std::move(on_closed);
  auto on_connected_cb = std::move(on_connected);
  transport_.Retire(*this);
  if (was_connecting && on_connected_cb) {
    on_connected_cb(false);
  } else if (!was_connecting && on_closed_cb) {
    on_closed_cb();
  }
}

void RealConn::Reset() {
  if (state_ == State::kClosed) return;
  // Abortive: queued data is dropped on the floor, like RST.
  write_queue_.clear();
  queued_bytes_ = 0;
  front_offset_ = 0;
  state_ = State::kClosed;
  on_closed = nullptr;
  on_connected = nullptr;
  transport_.Retire(*this);
}

// ---------------------------------------------------------------------------
// RealTransport

RealTransport::RealTransport(EventLoop& loop, bsim::SocketApi& api,
                             RealTransportConfig config)
    : loop_(loop), api_(api), config_(config) {
  if (config_.metrics != nullptr) {
    bsobs::MetricsRegistry& reg = *config_.metrics;
    m_accepts_ =
        reg.GetCounter("bs_rt_accepts_total", "Inbound connections accepted");
    m_connect_failures_ = reg.GetCounter(
        "bs_rt_connect_failures_total",
        "Outbound connects that failed (refused, reset, or timed out)");
    m_teardowns_ = reg.GetCounter("bs_rt_teardowns_total",
                                  "Established connections torn down");
    m_bytes_in_ = reg.GetCounter("bs_rt_bytes_in_total", "Bytes read from peers");
    m_bytes_out_ =
        reg.GetCounter("bs_rt_bytes_out_total", "Bytes written to peers");
    m_frames_shed_ = reg.GetCounter(
        "bs_rt_frames_shed_total",
        "Whole frames shed from bounded write queues under pressure");
  }
}

RealTransport::~RealTransport() { Abandon(); }

void RealTransport::Listen(std::uint16_t port, AcceptCallback on_accept) {
  const int fd = api_.OpenStream();
  if (fd < 0) {
    last_listen_error_ = fd;
    return;
  }
  int rc = api_.Bind(fd, bsim::SockAddr{config_.bind_ip, port});
  if (rc == 0) rc = api_.Listen(fd, 128);
  if (rc != 0) {
    api_.CloseFd(fd);
    last_listen_error_ = rc;
    return;
  }
  bsim::SockAddr bound{};
  api_.LocalEndpoint(fd, bound);
  Listener listener;
  listener.fd = fd;
  listener.bound_port = bound.port;
  listener.on_accept = std::move(on_accept);
  listeners_[port] = std::move(listener);
  last_listen_error_ = 0;
  loop_.AddFd(fd, EPOLLIN, [this, port](std::uint32_t) { HandleAccept(port); });
}

void RealTransport::StopListening(std::uint16_t port) {
  const auto it = listeners_.find(port);
  if (it == listeners_.end()) return;
  loop_.DelFd(it->second.fd);
  api_.CloseFd(it->second.fd);
  listeners_.erase(it);
}

std::uint16_t RealTransport::BoundPort(std::uint16_t requested) const {
  const auto it = listeners_.find(requested);
  return it == listeners_.end() ? 0 : it->second.bound_port;
}

void RealTransport::HandleAccept(std::uint16_t port) {
  const auto lit = listeners_.find(port);
  if (lit == listeners_.end()) return;
  const int listen_fd = lit->second.fd;
  // Accept until EAGAIN, skipping transient per-connection failures: a peer
  // that RSTs between the kernel's handshake and our accept4 must not stall
  // the whole listener.
  for (int i = 0; i < 64; ++i) {
    bsim::SockAddr peer{};
    const int fd = api_.Accept(listen_fd, peer);
    if (fd == -EAGAIN || fd == -EWOULDBLOCK) return;
    if (fd == -ECONNABORTED || fd == -EINTR) continue;
    if (fd < 0) return;  // persistent listener error; next wakeup retries
    bsim::SockAddr local{};
    api_.LocalEndpoint(fd, local);
    const std::uint64_t id = next_conn_id_++;
    std::unique_ptr<RealConn> conn(
        new RealConn(*this, id, fd, /*inbound=*/true, ToEndpoint(local),
                     ToEndpoint(peer), RealConn::State::kEstablished));
    RealConn* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    loop_.AddFd(fd, EPOLLIN,
                [this, id](std::uint32_t events) { HandleConnEvents(id, events); });
    ++accepts_;
    if (m_accepts_ != nullptr) m_accepts_->Inc();
    // Re-validate the listener each iteration: the accept callback may stop
    // listening (or the conn may already be gone if the callback reset it).
    lit->second.on_accept(*raw);
    if (listeners_.find(port) == listeners_.end()) return;
  }
}

TransportConn* RealTransport::Connect(const bsproto::Endpoint& remote) {
  const int fd = api_.OpenStream();
  if (fd < 0) {
    ++connect_failures_;
    if (m_connect_failures_ != nullptr) m_connect_failures_->Inc();
    return nullptr;
  }
  const std::uint64_t id = next_conn_id_++;
  const int rc = api_.Connect(fd, ToSockAddr(remote));
  if (rc != 0 && rc != -EINPROGRESS && rc != -EINTR) {
    // Immediate refusal. The caller wires on_connected after we return, so
    // report the failure from a zero-delay timer, never synchronously.
    api_.CloseFd(fd);
    std::unique_ptr<RealConn> conn(
        new RealConn(*this, id, -1, /*inbound=*/false, bsproto::Endpoint{},
                     remote, RealConn::State::kConnecting));
    RealConn* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    loop_.Sched().After(0, [this, id]() {
      const auto it = conns_.find(id);
      if (it == conns_.end()) return;
      FailConnect(*it->second);
    });
    return raw;
  }

  const bool instant = rc == 0;
  std::unique_ptr<RealConn> conn(
      new RealConn(*this, id, fd, /*inbound=*/false, bsproto::Endpoint{},
                   remote, RealConn::State::kConnecting));
  RealConn* raw = conn.get();
  conns_.emplace(id, std::move(conn));
  loop_.AddFd(fd, instant ? EPOLLOUT | EPOLLIN : EPOLLOUT,
              [this, id](std::uint32_t events) { HandleConnEvents(id, events); });
  if (instant) {
    // Loopback can connect synchronously; finish on the next loop turn so
    // the caller's on_connected wiring always wins the race.
    loop_.Sched().After(0, [this, id]() {
      const auto it = conns_.find(id);
      if (it != conns_.end() && it->second->state_ == RealConn::State::kConnecting) {
        FinishConnect(*it->second);
      }
    });
  }
  // Supervision: a connect that neither completes nor errors by the deadline
  // (SYN blackholed, listener wedged) is failed and torn down here.
  loop_.Sched().After(config_.connect_timeout, [this, id]() {
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    if (it->second->state_ != RealConn::State::kConnecting) return;
    ++connect_timeouts_;
    FailConnect(*it->second);
  });
  return raw;
}

void RealTransport::HandleConnEvents(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  RealConn& conn = *it->second;
  if (conn.state_ == RealConn::State::kConnecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) FinishConnect(conn);
    return;
  }
  if (conn.state_ != RealConn::State::kEstablished) return;
  if ((events & EPOLLIN) != 0) {
    ReadReady(conn);
    if (conns_.find(id) == conns_.end()) return;  // torn down during reads
    if (conn.state_ != RealConn::State::kEstablished) return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushQueue(conn);
    if (conns_.find(id) == conns_.end()) return;
    if (conn.state_ != RealConn::State::kEstablished) return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && (events & EPOLLIN) == 0) {
    Teardown(conn);
  }
}

void RealTransport::FinishConnect(RealConn& conn) {
  const int err = api_.SockError(conn.fd_);
  if (err != 0) {
    ++connect_failures_;
    if (m_connect_failures_ != nullptr) m_connect_failures_->Inc();
    FailConnect(conn);
    return;
  }
  bsim::SockAddr local{};
  api_.LocalEndpoint(conn.fd_, local);
  conn.local_ = ToEndpoint(local);
  conn.state_ = RealConn::State::kEstablished;
  loop_.ModFd(conn.fd_, conn.write_queue_.empty() ? EPOLLIN : EPOLLIN | EPOLLOUT);
  auto cb = std::move(conn.on_connected);
  if (cb) cb(true);
  // Anything queued while connecting (uncommon; Node sends only after
  // establishment) goes out now.
  const auto it = conns_.find(conn.id_);
  if (it != conns_.end() && conn.state_ == RealConn::State::kEstablished &&
      !conn.write_queue_.empty()) {
    FlushQueue(conn);
  }
}

void RealTransport::ReadReady(RealConn& conn) {
  std::array<std::uint8_t, 64 * 1024> buf;
  std::size_t total = 0;
  while (total < config_.read_budget_per_wakeup) {
    const long n = api_.Recv(conn.fd_, buf.data(), buf.size());
    if (n == -EAGAIN || n == -EWOULDBLOCK) return;
    if (n == -EINTR) continue;
    if (n == 0 || n < 0) {
      // Orderly EOF or a hard error (ECONNRESET et al.): either way the
      // session is over; the ban machinery never blames the *honest* local
      // peer for wire failures — that is the chaos sweep's core invariant.
      Teardown(conn);
      return;
    }
    total += static_cast<std::size_t>(n);
    bytes_in_ += static_cast<std::uint64_t>(n);
    if (m_bytes_in_ != nullptr) m_bytes_in_->Inc(static_cast<std::uint64_t>(n));
    const bsutil::ByteSpan span(buf.data(), static_cast<std::size_t>(n));
    if (conn.on_data_) {
      conn.on_data_(span);
      // The sink may have closed/reset us (misbehavior disconnect).
      if (conn.state_ != RealConn::State::kEstablished) return;
    } else {
      conn.rx_pending_.insert(conn.rx_pending_.end(), span.begin(), span.end());
      if (conn.recv_buffer_cap_ > 0 &&
          conn.rx_pending_.size() > conn.recv_buffer_cap_) {
        const std::size_t excess = conn.rx_pending_.size() - conn.recv_buffer_cap_;
        conn.rx_pending_.erase(conn.rx_pending_.begin(),
                               conn.rx_pending_.begin() +
                                   static_cast<std::ptrdiff_t>(excess));
      }
    }
  }
  // Budget exhausted; level-triggered epoll re-arms us on the next wakeup.
}

void RealTransport::FlushQueue(RealConn& conn) {
  while (!conn.write_queue_.empty()) {
    const RealConn::Frame& front = conn.write_queue_.front();
    const std::size_t remaining = front.data.size() - conn.front_offset_;
    const long n =
        api_.Send(conn.fd_, front.data.data() + conn.front_offset_, remaining);
    if (n == -EAGAIN || n == -EWOULDBLOCK) {
      ++send_eagain_;
      break;
    }
    if (n == -EINTR) continue;
    if (n < 0) {
      // EPIPE/ECONNRESET: the peer is gone — but never tear down from here.
      // FlushQueue runs synchronously under RealConn::Send, i.e. from deep
      // inside Node call stacks that are often mid-iteration over the peer
      // table; on_closed re-enters Node and erases the peer under that
      // iterator. Defer one loop turn, like graveyard deletion.
      DeferTeardown(conn);
      return;
    }
    bytes_out_ += static_cast<std::uint64_t>(n);
    if (m_bytes_out_ != nullptr) m_bytes_out_->Inc(static_cast<std::uint64_t>(n));
    conn.queued_bytes_ -= static_cast<std::size_t>(n);
    conn.front_offset_ += static_cast<std::size_t>(n);
    if (conn.front_offset_ < front.data.size()) {
      // Short write: the kernel took part of the frame; keep the rest at the
      // queue front and try again on EPOLLOUT.
      ++conn.partial_writes_;
      break;
    }
    conn.write_queue_.pop_front();
    conn.front_offset_ = 0;
  }
  UpdateWriteInterest(conn);
}

void RealTransport::DeferTeardown(RealConn& conn) {
  if (conn.teardown_deferred_ || conn.state_ != RealConn::State::kEstablished) {
    return;
  }
  conn.teardown_deferred_ = true;
  // Deregister now so a dead (possibly poisoned) fd cannot keep waking the
  // loop — the conn stays in conns_ until the deferred event runs, so a
  // Send() in the window just queues onto a socket that will never drain.
  loop_.DelFd(conn.fd_);
  const std::uint64_t id = conn.id_;
  loop_.Sched().After(0, [this, id] {
    const auto it = conns_.find(id);
    // Close()/Reset() may have retired it first; ids are never reused.
    if (it == conns_.end()) return;
    Teardown(*it->second);
  });
}

void RealTransport::UpdateWriteInterest(RealConn& conn) {
  if (conn.teardown_deferred_) return;
  if (conn.state_ != RealConn::State::kEstablished) return;
  loop_.ModFd(conn.fd_,
              conn.write_queue_.empty() ? EPOLLIN : EPOLLIN | EPOLLOUT);
}

void RealTransport::FailConnect(RealConn& conn) {
  conn.state_ = RealConn::State::kClosed;
  auto cb = std::move(conn.on_connected);
  conn.on_closed = nullptr;
  Retire(conn);
  if (cb) cb(false);
}

void RealTransport::Teardown(RealConn& conn) {
  ++teardowns_;
  if (m_teardowns_ != nullptr) m_teardowns_->Inc();
  conn.state_ = RealConn::State::kClosed;
  auto cb = std::move(conn.on_closed);
  conn.on_connected = nullptr;
  Retire(conn);
  if (cb) cb();
}

void RealTransport::Retire(RealConn& conn) {
  conn.state_ = RealConn::State::kClosed;
  if (conn.fd_ >= 0) {
    loop_.DelFd(conn.fd_);
    api_.CloseFd(conn.fd_);
    conn.fd_ = -1;
  }
  const auto it = conns_.find(conn.id_);
  if (it == conns_.end()) return;
  // Deletion is deferred one loop turn: Retire is reached from inside the
  // connection's own callbacks (read sink, flush, accept), and the sim-side
  // Host defers ReleaseConnection the same way.
  graveyard_.push_back(std::move(it->second));
  conns_.erase(it);
  if (!graveyard_drain_scheduled_) {
    graveyard_drain_scheduled_ = true;
    loop_.Sched().After(0, [this]() { DrainGraveyard(); });
  }
}

void RealTransport::DrainGraveyard() {
  graveyard_drain_scheduled_ = false;
  graveyard_.clear();
}

void RealTransport::Abandon() {
  for (auto& [id, conn] : conns_) {
    conn->on_connected = nullptr;
    conn->on_closed = nullptr;
    conn->on_data_ = nullptr;
    conn->state_ = RealConn::State::kClosed;
    if (conn->fd_ >= 0) {
      loop_.DelFd(conn->fd_);
      api_.CloseFd(conn->fd_);
      conn->fd_ = -1;
    }
    graveyard_.push_back(std::move(conn));
  }
  conns_.clear();
  for (auto& [port, listener] : listeners_) {
    loop_.DelFd(listener.fd);
    api_.CloseFd(listener.fd);
  }
  listeners_.clear();
  if (!graveyard_drain_scheduled_ && !graveyard_.empty()) {
    graveyard_drain_scheduled_ = true;
    loop_.Sched().After(0, [this]() { DrainGraveyard(); });
  }
}

}  // namespace bsnet
