#include "core/rules.hpp"

#include <array>

namespace bsnet {

const char* ToString(CoreVersion v) {
  switch (v) {
    case CoreVersion::kV0_20: return "0.20.0";
    case CoreVersion::kV0_21: return "0.21.0";
    case CoreVersion::kV0_22: return "0.22.0";
  }
  return "?";
}

const char* ToString(PeerScope s) {
  switch (s) {
    case PeerScope::kAny: return "Any peer";
    case PeerScope::kInbound: return "Inbound peer";
    case PeerScope::kOutbound: return "Outbound peer";
  }
  return "?";
}

const char* ToString(MisbehaviorClass c) {
  switch (c) {
    case MisbehaviorClass::kInvalid: return "Invalid";
    case MisbehaviorClass::kOversize: return "Oversize";
    case MisbehaviorClass::kDisorder: return "Disorder";
    case MisbehaviorClass::kRepeat: return "Repeat";
  }
  return "?";
}

const char* ToString(Misbehavior m) {
  switch (m) {
    case Misbehavior::kBlockMutated: return "block-mutated";
    case Misbehavior::kBlockCachedInvalid: return "block-cached-invalid";
    case Misbehavior::kBlockPrevInvalid: return "block-prev-invalid";
    case Misbehavior::kBlockPrevMissing: return "block-prev-missing";
    case Misbehavior::kBlockOtherInvalid: return "block-other-invalid";
    case Misbehavior::kTxSegwitInvalid: return "tx-segwit-invalid";
    case Misbehavior::kTxOtherConsensusInvalid: return "tx-other-consensus-invalid";
    case Misbehavior::kGetBlockTxnOutOfBounds: return "getblocktxn-out-of-bounds";
    case Misbehavior::kHeadersNonConnecting: return "headers-non-connecting";
    case Misbehavior::kHeadersNonContinuous: return "headers-non-continuous";
    case Misbehavior::kHeadersOversize: return "headers-oversize";
    case Misbehavior::kHeaderInvalidPow: return "header-invalid-pow";
    case Misbehavior::kAddrOversize: return "addr-oversize";
    case Misbehavior::kInvOversize: return "inv-oversize";
    case Misbehavior::kGetDataOversize: return "getdata-oversize";
    case Misbehavior::kCmpctBlockInvalid: return "cmpctblock-invalid";
    case Misbehavior::kFilterLoadOversize: return "filterload-oversize";
    case Misbehavior::kFilterAddOversize: return "filteradd-oversize";
    case Misbehavior::kFilterAddVersionGate: return "filteradd-version-gate";
    case Misbehavior::kVersionDuplicate: return "version-duplicate";
    case Misbehavior::kMessageBeforeVersion: return "message-before-version";
    case Misbehavior::kMessageBeforeVerack: return "message-before-verack";
    case Misbehavior::kBadChecksumFrame: return "bad-checksum-frame";
  }
  return "?";
}

namespace {

// One master row: scores per Core version (-1 = rule absent in that version),
// matching the paper's Table I three score columns.
struct MasterRule {
  Misbehavior what;
  int score_v20;
  int score_v21;
  int score_v22;
  PeerScope scope;
  MisbehaviorClass cls;
  const char* message_type;
  const char* description;
  bool in_paper_table;
};

// Order follows the paper's Table I, with the non-table (Core-faithful)
// extras appended.
constexpr std::array<MasterRule, 23> kMasterRules = {{
    {Misbehavior::kBlockMutated, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "BLOCK", "Block data was mutated", true},
    {Misbehavior::kBlockCachedInvalid, 100, 100, 100, PeerScope::kOutbound,
     MisbehaviorClass::kInvalid, "BLOCK", "Block was cached as invalid", true},
    {Misbehavior::kBlockPrevInvalid, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "BLOCK", "Previous block is invalid", true},
    {Misbehavior::kBlockPrevMissing, 10, 10, 10, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "BLOCK", "Previous block is missing", true},
    {Misbehavior::kTxSegwitInvalid, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "TX", "Invalid by consensus rules of SegWit", true},
    {Misbehavior::kGetBlockTxnOutOfBounds, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kOversize, "GETBLOCKTXN", "Out-of-bounds transaction indices",
     true},
    {Misbehavior::kHeadersNonConnecting, 20, 20, 20, PeerScope::kAny,
     MisbehaviorClass::kDisorder, "HEADERS", "10 non-connecting headers", true},
    {Misbehavior::kHeadersNonContinuous, 20, 20, 20, PeerScope::kAny,
     MisbehaviorClass::kDisorder, "HEADERS", "Non-continuous headers sequence", true},
    {Misbehavior::kHeadersOversize, 20, 20, 20, PeerScope::kAny,
     MisbehaviorClass::kOversize, "HEADERS", "More than 2000 headers", true},
    {Misbehavior::kAddrOversize, 20, 20, 20, PeerScope::kAny,
     MisbehaviorClass::kOversize, "ADDR", "More than 1000 addresses", true},
    {Misbehavior::kInvOversize, 20, 20, 20, PeerScope::kAny,
     MisbehaviorClass::kOversize, "INV", "More than 50000 inventory entries", true},
    {Misbehavior::kGetDataOversize, 20, 20, 20, PeerScope::kAny,
     MisbehaviorClass::kOversize, "GETDATA", "More than 50000 inventory entries", true},
    {Misbehavior::kCmpctBlockInvalid, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "CMPCTBLOCK", "Invalid compact block data", true},
    {Misbehavior::kFilterLoadOversize, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kOversize, "FILTERLOAD", "Bloom filter size > 36000 bytes",
     true},
    {Misbehavior::kFilterAddOversize, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kOversize, "FILTERADD", "Data item > 520 bytes", true},
    {Misbehavior::kFilterAddVersionGate, 100, -1, -1, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "FILTERADD", "Protocol version number >= 70011",
     true},
    {Misbehavior::kVersionDuplicate, 1, 1, -1, PeerScope::kInbound,
     MisbehaviorClass::kRepeat, "VERSION", "Duplicate VERSION", true},
    {Misbehavior::kMessageBeforeVersion, 1, 1, -1, PeerScope::kInbound,
     MisbehaviorClass::kDisorder, "VERSION", "Message before VERSION", true},
    {Misbehavior::kMessageBeforeVerack, 1, -1, -1, PeerScope::kInbound,
     MisbehaviorClass::kDisorder, "VERACK",
     "Message (other than VERSION) before VERACK", true},
    // Core-faithful extras the paper's summary table does not enumerate.
    {Misbehavior::kBlockOtherInvalid, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "BLOCK", "Block fails PoW/consensus checks", false},
    {Misbehavior::kTxOtherConsensusInvalid, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "TX", "Other consensus-invalid transaction", false},
    {Misbehavior::kHeaderInvalidPow, 100, 100, 100, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "HEADERS", "Header fails proof-of-work", false},
    {Misbehavior::kBadChecksumFrame, 10, 10, 10, PeerScope::kAny,
     MisbehaviorClass::kInvalid, "(any)",
     "Frame checksum mismatch (ablation-only rule)", false},
}};

int ScoreFor(const MasterRule& rule, CoreVersion v) {
  switch (v) {
    case CoreVersion::kV0_20: return rule.score_v20;
    case CoreVersion::kV0_21: return rule.score_v21;
    case CoreVersion::kV0_22: return rule.score_v22;
  }
  return -1;
}

}  // namespace

std::optional<RuleInfo> GetRule(CoreVersion version, Misbehavior what) {
  for (const MasterRule& rule : kMasterRules) {
    if (rule.what != what) continue;
    const int score = ScoreFor(rule, version);
    if (score < 0) return std::nullopt;
    return RuleInfo{rule.what, score,           rule.scope, rule.cls,
                    rule.message_type, rule.description, rule.in_paper_table};
  }
  return std::nullopt;
}

std::vector<RuleInfo> RulesFor(CoreVersion version) {
  std::vector<RuleInfo> out;
  for (const MasterRule& rule : kMasterRules) {
    const int score = ScoreFor(rule, version);
    if (score < 0) continue;
    out.push_back(RuleInfo{rule.what, score, rule.scope, rule.cls, rule.message_type,
                           rule.description, rule.in_paper_table});
  }
  return out;
}

const std::vector<Misbehavior>& AllMisbehaviors() {
  static const std::vector<Misbehavior> kAll = [] {
    std::vector<Misbehavior> v;
    for (const MasterRule& rule : kMasterRules) v.push_back(rule.what);
    return v;
  }();
  return kAll;
}

}  // namespace bsnet
