// Inbound-peer eviction, after Bitcoin Core's SelectNodeToEvict.
//
// The stock 0.20.0 node this repo models refuses new inbound connections
// flatly once max_inbound is reached — which means a Sybil flood that fills
// the slots first locks honest newcomers out forever (the bans the paper
// studies never fire for BM-DoS traffic, so the slots never free up).
// Core's answer is eviction: when full, protect the peers that are hardest
// for an attacker to counterfeit, then disconnect the least valuable of the
// rest to admit the newcomer.
//
// Protection tiers (applied in order, each removing its picks from the
// eviction pool):
//
//   1. netgroup diversity — peers from the rarest /16 groups; a one-subnet
//      Sybil swarm cannot occupy these slots,
//   2. lowest minimum ping — latency is earned on the wire, not claimed,
//   3. recent tx providers and 4. recent block providers — usefulness,
//   5. half of the remainder by longest uptime.
//
// The evicted peer is the youngest member of the most populous netgroup,
// tie-broken by lowest good-score from the MisbehaviorTracker (the paper's
// §VIII good-score signal reused as an eviction shield) — so the flood
// churns its own connections while diverse, useful, long-lived peers stay.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace bsnet {

/// /16 prefix grouping, the stand-in for Core's ASN/netgroup bucketing: one
/// attacker machine (or rented subnet) lands every Sybil in one group.
constexpr std::uint32_t NetGroup(std::uint32_t ip) { return ip >> 16; }

// How many peers each protection tier shields from eviction.
constexpr std::size_t kProtectNetGroupPeers = 4;
constexpr std::size_t kProtectLowPingPeers = 8;
constexpr std::size_t kProtectTxPeers = 4;
constexpr std::size_t kProtectBlockPeers = 4;

/// Snapshot of one inbound peer, as the eviction logic sees it.
struct EvictionCandidate {
  std::uint64_t id = 0;
  std::uint32_t ip = 0;
  bsim::SimTime connected_at = 0;
  bsim::SimTime min_ping_rtt = -1;    // -1 == never measured
  bsim::SimTime last_block_time = 0;  // 0 == never delivered a valid block
  bsim::SimTime last_tx_time = 0;     // 0 == never delivered a valid tx
  int good_score = 0;                 // MisbehaviorTracker::GoodScore
};

/// Pick the inbound peer to disconnect so a newcomer can be admitted, or
/// nullopt when every candidate is protected (the newcomer is refused, as in
/// Core). Pure and deterministic: same candidates, same answer.
std::optional<std::uint64_t> SelectInboundPeerToEvict(
    std::vector<EvictionCandidate> candidates);

}  // namespace bsnet
