// Fault-injection plane for the simulated network.
//
// A FaultPlan is attached to a Network (Network::SetFaultPlan) and judges
// every transmitted TCP segment: it can drop it (packet loss or a cut
// link/host), deliver it twice, delay it by a bounded random jitter (which
// reorders it past later segments), or dirty its transport checksum bit
// (payload corruption — the receiving TCP then discards it, the same path a
// real corrupted frame takes). Beyond per-segment faults the plan schedules
// link flaps / partitions with a timed heal and peer crash/restart events,
// all driven off the discrete-event scheduler, so an entire chaos run is
// reproducible from the single seed the plan was constructed with.
//
// Fault rules resolve most-specific-first: a per-link spec (unordered IP
// pair) beats a per-host spec (either endpoint), which beats the default
// spec. Segments between hosts with no matching rule consume no randomness,
// so attaching an empty plan leaves a run bit-identical.
//
// Attaching a plan also switches the TCP layer into reliable-delivery mode
// (cumulative ACKs + go-back-N retransmission, see tcp.hpp): without
// retransmission a single lost data segment would desynchronize the
// in-order-only receiver forever, and no end-to-end scenario could survive
// loss. ICMP floods are rate-model traffic and are not faulted.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace bsim {

/// Per-segment fault probabilities for one link/host/default rule.
struct FaultSpec {
  double loss = 0.0;       // P(segment silently dropped)
  double duplicate = 0.0;  // P(segment delivered twice)
  double reorder = 0.0;    // P(segment delayed by extra jitter)
  double corrupt = 0.0;    // P(checksum bit dirtied in flight)
  /// Upper bound on the reorder jitter; the delay is uniform in
  /// [1ns, reorder_jitter_max].
  SimTime reorder_jitter_max = 2 * kMillisecond;

  bool Quiet() const {
    return loss <= 0.0 && duplicate <= 0.0 && reorder <= 0.0 && corrupt <= 0.0;
  }
};

class FaultPlan {
 public:
  FaultPlan(Scheduler& sched, std::uint64_t seed);

  std::uint64_t Seed() const { return seed_; }

  // ---- Fault rules ----
  void SetDefaultFaults(const FaultSpec& spec) { default_spec_ = spec; }
  /// Faults for any segment with `ip` as either endpoint.
  void SetHostFaults(std::uint32_t ip, const FaultSpec& spec) {
    host_specs_[ip] = spec;
  }
  /// Faults for segments between `a` and `b` (either direction). Beats
  /// per-host rules.
  void SetLinkFaults(std::uint32_t a, std::uint32_t b, const FaultSpec& spec) {
    link_specs_[LinkKey(a, b)] = spec;
  }

  // ---- Partitions and flaps ----
  void CutLink(std::uint32_t a, std::uint32_t b) { cut_links_.insert(LinkKey(a, b)); }
  void HealLink(std::uint32_t a, std::uint32_t b) { cut_links_.erase(LinkKey(a, b)); }
  /// Partition `ip` from everyone (its access link goes dark).
  void CutHost(std::uint32_t ip) { cut_hosts_.insert(ip); }
  void HealHost(std::uint32_t ip) { cut_hosts_.erase(ip); }
  /// True when segments between `a` and `b` are currently blackholed.
  bool IsCut(std::uint32_t a, std::uint32_t b) const {
    return cut_hosts_.contains(a) || cut_hosts_.contains(b) ||
           cut_links_.contains(LinkKey(a, b));
  }

  /// Cut the a↔b link at `at`, heal it `down_for` later.
  void ScheduleLinkFlap(std::uint32_t a, std::uint32_t b, SimTime at, SimTime down_for);
  /// Partition `ip` at `at`, heal it `down_for` later.
  void ScheduleHostFlap(std::uint32_t ip, SimTime at, SimTime down_for);

  // ---- Routing detours (the Hijacking-Bitcoin-style adversary) ----
  // A BGP-level attacker does not blackhole traffic; it *detours* it, adding
  // propagation delay at /16 granularity, and can do so asymmetrically (the
  // hijacked direction crawls while the reverse path is untouched). These
  // rules inject a fixed deterministic extra delay per matching segment —
  // no randomness is consumed, so configuring none leaves runs bit-identical
  // and configuring some perturbs no other fault draw.

  /// The /16 netgroup of an address, matching core eviction/addrman grouping.
  static constexpr std::uint32_t GroupOf(std::uint32_t ip) { return ip >> 16; }

  /// Fixed extra delay for segments src→dst (directional: set the reverse
  /// key separately for a symmetric detour). A zero delay clears the rule.
  void SetLinkDelay(std::uint32_t src, std::uint32_t dst, SimTime delay);
  /// Fixed extra delay for segments from netgroup `src_group` to netgroup
  /// `dst_group` (directional). A zero delay clears the rule. Per-link delay
  /// rules beat group rules; they do not stack.
  void SetGroupDelay(std::uint32_t src_group, std::uint32_t dst_group, SimTime delay);
  void HealLinkDelay(std::uint32_t src, std::uint32_t dst) {
    link_delays_.erase(DirKey(src, dst));
  }
  void HealGroupDelay(std::uint32_t src_group, std::uint32_t dst_group) {
    group_delays_.erase(DirKey(src_group, dst_group));
  }

  /// Delay-partition the topology along /16 lines: every segment from a
  /// group in `side_a` to a group in `side_b` is delayed by `ab`, and the
  /// reverse direction by `ba` (asymmetric when ab != ba; ba == 0 leaves the
  /// return path clean — the pure one-way hijack).
  void DelayPartitionGroups(const std::vector<std::uint32_t>& side_a,
                            const std::vector<std::uint32_t>& side_b,
                            SimTime ab, SimTime ba);
  /// Remove the cross-pair delay rules for the given sides (both directions).
  void HealDelayPartition(const std::vector<std::uint32_t>& side_a,
                          const std::vector<std::uint32_t>& side_b);
  /// Apply DelayPartitionGroups at `at`; counted as a routing partition.
  void ScheduleDelayPartition(std::vector<std::uint32_t> side_a,
                              std::vector<std::uint32_t> side_b, SimTime ab,
                              SimTime ba, SimTime at);
  /// Partial heal at `at`: drop the delay rules between `side_a` and the
  /// given subset of the far side only — the staged, group-by-group repair
  /// a real routing incident resolves with.
  void SchedulePartialHeal(std::vector<std::uint32_t> side_a,
                           std::vector<std::uint32_t> side_b_subset, SimTime at);

  // ---- Crash / restart orchestration ----
  /// The plan only schedules and counts crash events; the harness owns the
  /// actual teardown (Node::Stop(), persist the banlist) and rebuild (a new
  /// Node on the same IP loading the persisted banlist) through these hooks.
  std::function<void(std::uint32_t ip)> on_host_crash;
  std::function<void(std::uint32_t ip)> on_host_restart;
  /// Fire on_host_crash(ip) at `at` and on_host_restart(ip) `restart_after`
  /// later (restart_after == 0: no restart).
  void ScheduleCrash(std::uint32_t ip, SimTime at, SimTime restart_after);

  // ---- Per-segment judgment (called by Network::SendSegment) ----
  struct Fate {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    SimTime extra_delay = 0;
  };
  Fate Judge(const TcpSegment& seg);

  /// Publish fault-plane counters into `registry` (bs_sim_fault_* series).
  void AttachMetrics(bsobs::MetricsRegistry& registry);

  // ---- Stats (mirrored into the registry when attached) ----
  std::uint64_t SegmentsDroppedLoss() const { return dropped_loss_; }
  std::uint64_t SegmentsDroppedPartition() const { return dropped_partition_; }
  std::uint64_t SegmentsDuplicated() const { return duplicated_; }
  std::uint64_t SegmentsDelayed() const { return delayed_; }
  std::uint64_t SegmentsCorrupted() const { return corrupted_; }
  std::uint64_t SegmentsDelayedRouting() const { return delayed_routing_; }
  std::uint64_t RoutingPartitions() const { return routing_partitions_; }
  std::uint64_t LinkFlaps() const { return link_flaps_; }
  std::uint64_t HostCrashes() const { return host_crashes_; }

 private:
  static std::uint64_t LinkKey(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t lo = a < b ? a : b;
    const std::uint32_t hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  /// Directional key: src in the high word, dst in the low word — unlike
  /// LinkKey this is NOT order-normalized, which is what lets a detour be
  /// asymmetric.
  static std::uint64_t DirKey(std::uint32_t src, std::uint32_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  const FaultSpec& ResolveSpec(std::uint32_t src_ip, std::uint32_t dst_ip) const;

  Scheduler& sched_;
  std::uint64_t seed_;
  bsutil::Rng rng_;

  FaultSpec default_spec_;
  std::unordered_map<std::uint32_t, FaultSpec> host_specs_;
  std::unordered_map<std::uint64_t, FaultSpec> link_specs_;
  std::unordered_set<std::uint32_t> cut_hosts_;
  std::unordered_set<std::uint64_t> cut_links_;
  /// Directional deterministic detour delays (DirKey of IPs / of /16 groups).
  std::unordered_map<std::uint64_t, SimTime> link_delays_;
  std::unordered_map<std::uint64_t, SimTime> group_delays_;

  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_partition_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t delayed_routing_ = 0;
  std::uint64_t routing_partitions_ = 0;
  std::uint64_t link_flaps_ = 0;
  std::uint64_t host_crashes_ = 0;

  // Observability handles (null until AttachMetrics).
  bsobs::Counter* m_dropped_loss_ = nullptr;
  bsobs::Counter* m_dropped_partition_ = nullptr;
  bsobs::Counter* m_duplicated_ = nullptr;
  bsobs::Counter* m_delayed_ = nullptr;
  bsobs::Counter* m_corrupted_ = nullptr;
  bsobs::Counter* m_delayed_routing_ = nullptr;
  bsobs::Counter* m_routing_partitions_ = nullptr;
  bsobs::Counter* m_link_flaps_ = nullptr;
  bsobs::Counter* m_host_crashes_ = nullptr;
};

}  // namespace bsim
