#include "sim/simfs.hpp"

#include <algorithm>

namespace bsim {

SimFs::OpFault SimFs::NextOp() {
  const std::int64_t op = static_cast<std::int64_t>(op_count_++);
  if (op == faults_.crash_at_op) return OpFault::kCrash;
  if (op == faults_.enospc_at_op) return OpFault::kEnospc;
  if (op == faults_.short_write_at_op) return OpFault::kShortWrite;
  if (op == faults_.flip_bit_at_op) return OpFault::kFlipBit;
  return OpFault::kNone;
}

void SimFs::CrashNow() {
  crashed_ = true;
  for (auto& [path, file] : files_) {
    if (file.data.size() > file.synced_len) {
      // A seed-deterministic prefix of the dirty tail survives; sometimes a
      // bit inside the surviving part lands flipped (the dying kernel wrote
      // the sector half-way).
      const std::size_t tail = file.data.size() - file.synced_len;
      const std::size_t keep = static_cast<std::size_t>(rng_.Below(tail + 1));
      file.data.resize(file.synced_len + keep);
      if (keep > 0 && rng_.Chance(0.25)) {
        const std::size_t at =
            file.synced_len + static_cast<std::size_t>(rng_.Below(keep));
        file.data[at] ^= static_cast<std::uint8_t>(1u << rng_.Below(8));
      }
    }
  }
  for (auto& [fd, handle] : handles_) handle.valid = false;
}

void SimFs::Reboot() {
  crashed_ = false;
  handles_.clear();
}

std::size_t SimFs::FileSize(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.data.size();
}

std::size_t SimFs::SyncedSize(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.synced_len;
}

bool SimFs::FlipBit(const std::string& path, std::size_t byte_index, int bit) {
  const auto it = files_.find(path);
  if (it == files_.end() || byte_index >= it->second.data.size()) return false;
  it->second.data[byte_index] ^= static_cast<std::uint8_t>(1u << (bit & 7));
  return true;
}

bool SimFs::TruncateFile(const std::string& path, std::size_t len) {
  const auto it = files_.find(path);
  if (it == files_.end() || len > it->second.data.size()) return false;
  it->second.data.resize(len);
  it->second.synced_len = std::min(it->second.synced_len, len);
  return true;
}

bool SimFs::Exists(const std::string& path) {
  return files_.contains(path) || dirs_.contains(path);
}

bool SimFs::ReadFile(const std::string& path, bsutil::ByteVec& out) {
  if (crashed_) return false;
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  out = it->second.data;
  return true;
}

std::vector<std::string> SimFs::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  if (crashed_) return names;
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  for (const auto& [path, file] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string name = path.substr(prefix.size());
    if (name.find('/') == std::string::npos) names.push_back(name);
  }
  return names;  // std::map iteration order is already sorted
}

bool SimFs::MkDir(const std::string& dir) {
  if (crashed_) return false;
  switch (NextOp()) {
    case OpFault::kCrash:
      CrashNow();
      return false;
    case OpFault::kEnospc:
      return false;
    default:
      break;
  }
  dirs_.insert(dir);
  return true;
}

int SimFs::OpenWrite(const std::string& path, bool truncate) {
  if (crashed_) return -1;
  switch (NextOp()) {
    case OpFault::kCrash:
      CrashNow();
      return -1;
    case OpFault::kEnospc:
      return -1;
    default:
      break;
  }
  SimFile& file = files_[path];
  if (truncate) {
    // O_TRUNC: metadata-journaled, durable when the call returns.
    file.data.clear();
    file.synced_len = 0;
  }
  const int fd = next_fd_++;
  handles_[fd] = {path, true};
  return fd;
}

bool SimFs::Write(int fd, bsutil::ByteSpan data) {
  if (crashed_) return false;
  const auto it = handles_.find(fd);
  if (it == handles_.end() || !it->second.valid) return false;
  SimFile& file = files_[it->second.path];
  switch (NextOp()) {
    case OpFault::kCrash: {
      const std::size_t torn = static_cast<std::size_t>(rng_.Below(data.size() + 1));
      file.data.insert(file.data.end(), data.begin(), data.begin() + torn);
      CrashNow();
      return false;
    }
    case OpFault::kEnospc:
      return false;
    case OpFault::kShortWrite: {
      const std::size_t part =
          data.empty() ? 0 : static_cast<std::size_t>(rng_.Below(data.size()));
      file.data.insert(file.data.end(), data.begin(), data.begin() + part);
      return false;
    }
    case OpFault::kFlipBit: {
      const std::size_t start = file.data.size();
      file.data.insert(file.data.end(), data.begin(), data.end());
      if (!data.empty()) {
        const std::size_t at =
            start + static_cast<std::size_t>(rng_.Below(data.size()));
        file.data[at] ^= static_cast<std::uint8_t>(1u << rng_.Below(8));
      }
      return true;
    }
    case OpFault::kNone:
      file.data.insert(file.data.end(), data.begin(), data.end());
      return true;
  }
  return false;
}

bool SimFs::Fsync(int fd) {
  if (crashed_) return false;
  const auto it = handles_.find(fd);
  if (it == handles_.end() || !it->second.valid) return false;
  switch (NextOp()) {
    case OpFault::kCrash:
      // The barrier never completed: nothing new became durable.
      CrashNow();
      return false;
    case OpFault::kEnospc:
      return false;
    default:
      break;
  }
  SimFile& file = files_[it->second.path];
  file.synced_len = file.data.size();
  return true;
}

void SimFs::Close(int fd) { handles_.erase(fd); }

bool SimFs::Rename(const std::string& from, const std::string& to) {
  if (crashed_) return false;
  const auto it = files_.find(from);
  if (it == files_.end()) return false;
  switch (NextOp()) {
    case OpFault::kCrash:
      CrashNow();
      return false;
    case OpFault::kEnospc:
      return false;
    default:
      break;
  }
  files_[to] = std::move(it->second);
  files_.erase(from);
  return true;
}

bool SimFs::Remove(const std::string& path) {
  if (crashed_) return false;
  if (!files_.contains(path)) return false;
  switch (NextOp()) {
    case OpFault::kCrash:
      CrashNow();
      return false;
    case OpFault::kEnospc:
      return false;
    default:
      break;
  }
  files_.erase(path);
  return true;
}

}  // namespace bsim
