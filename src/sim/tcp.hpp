// Hosts and TCP-like connections.
//
// The connection model keeps real per-direction sequence/acknowledgement
// state, a three-way handshake, checksum validation, and in-order-only
// delivery. It is deliberately minimal everywhere else (no retransmission —
// the simulated wire is lossless and ordered; no flow control) because the
// attacks only require: 4-tuple demultiplexing, live seq/ack state that a
// sniffer can learn, and the ability of a forged in-window segment to be
// accepted as if it came from the real peer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "sim/network.hpp"

namespace bsim {

class Host;

/// Maximum payload bytes per segment.
constexpr std::size_t kMss = 1460;

/// Outbound handshakes that see no SYN-ACK abort after this long.
constexpr SimTime kSynTimeout = 5 * kSecond;

class TcpConnection {
 public:
  enum class State { kSynSent, kSynReceived, kEstablished, kClosed };

  TcpConnection(Host& host, Endpoint local, Endpoint remote, bool inbound);

  Endpoint Local() const { return local_; }
  Endpoint Remote() const { return remote_; }
  bool IsInbound() const { return inbound_; }
  State GetState() const { return state_; }
  bool IsEstablished() const { return state_ == State::kEstablished; }

  /// Application data sink; set before data can arrive.
  std::function<void(bsutil::ByteSpan)> on_data;
  /// Invoked once when the connection reaches kEstablished.
  std::function<void(bool ok)> on_connected;
  /// Invoked when the connection closes (FIN or RST from either side).
  std::function<void()> on_closed;

  /// Send application bytes; split into MSS-sized PSH|ACK segments.
  void Send(bsutil::ByteSpan data);
  /// Graceful close (FIN).
  void Close();
  /// Abortive close (RST).
  void Reset();

  /// TCP input processing for a segment already demultiplexed to this
  /// connection.
  void HandleSegment(const TcpSegment& seg);

  // Sequence state (exposed for tests and for the attacker's sniffer-side
  // bookkeeping — a real attacker reconstructs these from observed segments).
  std::uint32_t SndNext() const { return snd_next_; }
  std::uint32_t RcvNext() const { return rcv_next_; }

  std::uint64_t BytesSent() const { return bytes_sent_; }
  std::uint64_t BytesReceived() const { return bytes_received_; }
  std::uint64_t SegmentsDroppedChecksum() const { return dropped_checksum_; }
  std::uint64_t SegmentsDroppedOutOfOrder() const { return dropped_out_of_order_; }

 private:
  friend class Host;

  void StartHandshake();  // client side: send SYN
  void EmitSegment(std::uint8_t flags, bsutil::ByteSpan payload);
  void BecomeClosed();

  Host& host_;
  Endpoint local_;
  Endpoint remote_;
  bool inbound_;
  State state_;
  std::uint32_t snd_next_ = 0;
  std::uint32_t rcv_next_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t dropped_checksum_ = 0;
  std::uint64_t dropped_out_of_order_ = 0;
};

/// A machine on the network with a TCP stack.
class Host {
 public:
  Host(Scheduler& sched, Network& net, std::uint32_t ip);
  virtual ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  std::uint32_t Ip() const { return ip_; }
  Scheduler& Sched() { return sched_; }
  Network& Net() { return net_; }

  using AcceptCallback = std::function<void(TcpConnection&)>;

  /// Accept inbound connections on `port`. The callback fires when the
  /// handshake completes.
  void Listen(std::uint16_t port, AcceptCallback on_accept);
  void StopListening(std::uint16_t port) { listeners_.erase(port); }

  /// Open a connection from an ephemeral local port. `on_connected` fires
  /// with ok=true at establishment, ok=false if reset during handshake.
  TcpConnection* Connect(Endpoint remote, std::function<void(bool ok)> on_connected);
  /// Open a connection from a caller-chosen local port (Sybil identifiers
  /// pick their own ports).
  TcpConnection* ConnectFrom(std::uint16_t local_port, Endpoint remote,
                             std::function<void(bool ok)> on_connected);

  /// Entry point from the Network on segment arrival.
  void DeliverSegment(const TcpSegment& seg);
  virtual void OnIcmp(const IcmpPacket& pkt) { (void)pkt; }
  /// Aggregated delivery of `count` identical ICMP packets; the default
  /// fans out to OnIcmp.
  virtual void OnIcmpBatch(const IcmpPacket& pkt, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) OnIcmp(pkt);
  }

  /// When set, every arriving segment is offered to this filter first; a
  /// true return consumes it (attacker hosts implement their own spoofed
  /// handshakes this way).
  std::function<bool(const TcpSegment&)> raw_segment_filter;

  /// Perimeter-firewall behaviour: silently drop segments that match no
  /// socket instead of answering RST (the default per the paper's §III-A
  /// deployment assumption; pre-connection Defamation relies on the spoofed
  /// victim not RST-ing the handshake).
  bool drop_unsolicited = true;

  TcpConnection* FindConnection(const Endpoint& local, const Endpoint& remote);
  /// Remove a closed connection's state.
  void ReleaseConnection(TcpConnection* conn);

  std::size_t ConnectionCount() const { return connections_.size(); }
  /// Allocate the next ephemeral port (49152..65535, wrapping).
  std::uint16_t AllocEphemeralPort();

  // Internal: used by TcpConnection to transmit.
  void Transmit(TcpSegment seg);

 private:
  using ConnKey = std::pair<Endpoint, Endpoint>;  // (local, remote)
  struct ConnKeyHasher {
    std::size_t operator()(const ConnKey& k) const {
      bsproto::EndpointHasher h;
      return h(k.first) * 1000003 ^ h(k.second);
    }
  };

  Scheduler& sched_;
  Network& net_;
  std::uint32_t ip_;
  std::uint16_t next_ephemeral_ = 49152;
  std::unordered_map<ConnKey, std::unique_ptr<TcpConnection>, ConnKeyHasher> connections_;
  std::unordered_map<std::uint16_t, AcceptCallback> listeners_;
};

}  // namespace bsim
