// Hosts and TCP-like connections.
//
// The connection model keeps real per-direction sequence/acknowledgement
// state, a three-way handshake, checksum validation, and in-order-only
// delivery. By default it is deliberately minimal everywhere else (no
// retransmission — the simulated wire is lossless and ordered; no flow
// control) because the attacks only require: 4-tuple demultiplexing, live
// seq/ack state that a sniffer can learn, and the ability of a forged
// in-window segment to be accepted as if it came from the real peer.
//
// When a FaultPlan is attached to the Network the wire stops being lossless,
// so connections switch into *reliable mode*: receivers send cumulative ACKs
// (and duplicate ACKs on out-of-order arrivals), senders keep unacked
// payload segments in a bounded retransmission queue and recover gaps with
// go-back-N (fast retransmit on 3 duplicate ACKs, timer otherwise). A peer
// that stays unreachable past the retry budget aborts the connection. With
// no plan attached none of this machinery runs and byte-for-byte legacy
// behaviour is preserved — the paper-faithful benches stay bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "core/transport.hpp"
#include "sim/network.hpp"

namespace bsim {

class Host;

/// Maximum payload bytes per segment.
constexpr std::size_t kMss = 1460;

/// Outbound handshakes that see no SYN-ACK abort after this long.
constexpr SimTime kSynTimeout = 5 * kSecond;

/// Reliable mode: retransmission timer (well above the LAN RTT).
constexpr SimTime kRetransmitTimeout = 20 * kMillisecond;
/// Reliable mode: consecutive timer expiries before the connection aborts.
constexpr int kMaxRetransmitAttempts = 8;
/// Reliable mode: unacked-bytes bound; exceeding it aborts the connection
/// (the peer is not draining — memory must not grow without bound).
constexpr std::size_t kMaxRetransmitQueueBytes = 4 * 1024 * 1024;
/// Default cap on payload bytes buffered while no data sink is attached.
constexpr std::size_t kDefaultRecvBufferCap = 4 * 1024 * 1024;

/// The simulated connection *is* a transport connection (see
/// core/transport.hpp): Node holds it through the interface while the sim
/// internals keep using the concrete type, with no adapter in between.
class TcpConnection : public bsnet::TransportConn {
 public:
  enum class State { kSynSent, kSynReceived, kEstablished, kClosed };

  TcpConnection(Host& host, Endpoint local, Endpoint remote, bool inbound);

  Endpoint Local() const override { return local_; }
  Endpoint Remote() const override { return remote_; }
  bool IsInbound() const override { return inbound_; }
  State GetState() const { return state_; }
  bool IsEstablished() const override { return state_ == State::kEstablished; }

  /// Application data sink; set before data can arrive. Payload arriving
  /// while this is unset is buffered (bounded, see SetReceiveBufferCap)
  /// instead of silently lost; prefer SetDataSink, which drains the backlog.
  /// (on_connected / on_closed are inherited from TransportConn.)
  std::function<void(bsutil::ByteSpan)> on_data;
  /// Set the data sink and synchronously deliver any buffered payload.
  void SetDataSink(std::function<void(bsutil::ByteSpan)> sink) override;

  /// Send application bytes; split into MSS-sized PSH|ACK segments.
  void Send(bsutil::ByteSpan data) override;
  /// Graceful close (FIN).
  void Close() override;
  /// Abortive close (RST).
  void Reset() override;

  /// TCP input processing for a segment already demultiplexed to this
  /// connection.
  void HandleSegment(const TcpSegment& seg);

  // Sequence state (exposed for tests and for the attacker's sniffer-side
  // bookkeeping — a real attacker reconstructs these from observed segments).
  std::uint32_t SndNext() const { return snd_next_; }
  std::uint32_t RcvNext() const { return rcv_next_; }

  std::uint64_t BytesSent() const { return bytes_sent_; }
  std::uint64_t BytesReceived() const { return bytes_received_; }
  std::uint64_t SegmentsDroppedChecksum() const { return dropped_checksum_; }
  std::uint64_t SegmentsDroppedOutOfOrder() const { return dropped_out_of_order_; }
  std::uint64_t SegmentsDroppedDuplicate() const { return dropped_duplicate_; }
  std::uint64_t Retransmits() const { return retransmits_; }

  /// Bound the no-sink receive buffer (0 = unbounded). Overflow sheds the
  /// oldest bytes; sheds are counted here and in the network's metrics.
  void SetReceiveBufferCap(std::size_t bytes) override { recv_buffer_cap_ = bytes; }
  std::size_t ReceiveBufferCap() const { return recv_buffer_cap_; }
  std::uint64_t RxPendingShedBytes() const { return rx_pending_shed_; }
  std::size_t RxPendingBytes() const { return rx_pending_.size(); }

 private:
  friend class Host;

  void StartHandshake();  // client side: send SYN
  void EmitSegment(std::uint8_t flags, bsutil::ByteSpan payload);
  void BecomeClosed();

  /// True when the network has a fault plan attached (lossy wire): ACKs and
  /// retransmission are active.
  bool Reliable() const;
  /// Hand payload to on_data, or buffer it (bounded) until a sink appears.
  void DeliverData(bsutil::ByteSpan payload);
  void SendBareAck();
  void HandleAck(std::uint32_t ack);
  void QueueForRetransmit(const TcpSegment& seg);
  void ArmRetransmitTimer();
  void RetransmitTimerFired();
  void RetransmitAll();

  Host& host_;
  Endpoint local_;
  Endpoint remote_;
  bool inbound_;
  State state_;
  std::uint32_t snd_next_ = 0;
  std::uint32_t rcv_next_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t dropped_checksum_ = 0;
  std::uint64_t dropped_out_of_order_ = 0;
  std::uint64_t dropped_duplicate_ = 0;

  // No-sink receive buffering (bounded; drop-oldest).
  bsutil::ByteVec rx_pending_;
  std::size_t recv_buffer_cap_ = kDefaultRecvBufferCap;
  std::uint64_t rx_pending_shed_ = 0;

  // Reliable-mode sender state: payload segments not yet cumulatively acked,
  // oldest first.
  std::deque<TcpSegment> retransmit_queue_;
  std::size_t retransmit_queue_bytes_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint32_t last_ack_seen_ = 0;
  int dup_acks_ = 0;
  int retry_attempts_ = 0;
  bool rto_armed_ = false;
};

/// A machine on the network with a TCP stack.
class Host {
 public:
  Host(Scheduler& sched, Network& net, std::uint32_t ip);
  virtual ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  std::uint32_t Ip() const { return ip_; }
  Scheduler& Sched() { return sched_; }
  Network& Net() { return net_; }

  using AcceptCallback = std::function<void(TcpConnection&)>;

  /// Accept inbound connections on `port`. The callback fires when the
  /// handshake completes.
  void Listen(std::uint16_t port, AcceptCallback on_accept);
  void StopListening(std::uint16_t port) { listeners_.erase(port); }

  /// Open a connection from an ephemeral local port. `on_connected` fires
  /// with ok=true at establishment, ok=false if reset during handshake.
  TcpConnection* Connect(Endpoint remote, std::function<void(bool ok)> on_connected);
  /// Open a connection from a caller-chosen local port (Sybil identifiers
  /// pick their own ports).
  TcpConnection* ConnectFrom(std::uint16_t local_port, Endpoint remote,
                             std::function<void(bool ok)> on_connected);

  /// Entry point from the Network on segment arrival.
  void DeliverSegment(const TcpSegment& seg);
  virtual void OnIcmp(const IcmpPacket& pkt) { (void)pkt; }
  /// Aggregated delivery of `count` identical ICMP packets; the default
  /// fans out to OnIcmp.
  virtual void OnIcmpBatch(const IcmpPacket& pkt, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) OnIcmp(pkt);
  }

  /// When set, every arriving segment is offered to this filter first; a
  /// true return consumes it (attacker hosts implement their own spoofed
  /// handshakes this way).
  std::function<bool(const TcpSegment&)> raw_segment_filter;

  /// Perimeter-firewall behaviour: silently drop segments that match no
  /// socket instead of answering RST (the default per the paper's §III-A
  /// deployment assumption; pre-connection Defamation relies on the spoofed
  /// victim not RST-ing the handshake).
  bool drop_unsolicited = true;

  TcpConnection* FindConnection(const Endpoint& local, const Endpoint& remote);
  /// Remove a closed connection's state.
  void ReleaseConnection(TcpConnection* conn);
  /// Destroy every connection and listener silently — no FIN/RST emitted,
  /// no callbacks fired. Models a host crash (sudden silence on the wire).
  /// Must not be called from inside one of this host's connection callbacks.
  void AbandonConnections();

  std::size_t ConnectionCount() const { return connections_.size(); }
  /// Allocate the next ephemeral port (49152..65535, wrapping).
  std::uint16_t AllocEphemeralPort();

  // Internal: used by TcpConnection to transmit.
  void Transmit(TcpSegment seg);

 private:
  using ConnKey = std::pair<Endpoint, Endpoint>;  // (local, remote)
  struct ConnKeyHasher {
    std::size_t operator()(const ConnKey& k) const {
      bsproto::EndpointHasher h;
      return h(k.first) * 1000003 ^ h(k.second);
    }
  };

  Scheduler& sched_;
  Network& net_;
  std::uint32_t ip_;
  std::uint16_t next_ephemeral_ = 49152;
  std::unordered_map<ConnKey, std::unique_ptr<TcpConnection>, ConnKeyHasher> connections_;
  std::unordered_map<std::uint16_t, AcceptCallback> listeners_;
};

}  // namespace bsim
