// Simulated-time units. All simulator timestamps are nanoseconds since the
// start of the run, held in a signed 64-bit integer (good for ~292 years).
#pragma once

#include <cstdint>

namespace bsim {

using SimTime = std::int64_t;  // nanoseconds

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }
constexpr SimTime FromSeconds(double s) { return static_cast<SimTime>(s * kSecond); }

}  // namespace bsim
