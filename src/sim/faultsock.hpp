#pragma once

// SocketApi: the syscall seam under RealTransport, mirroring simfs's design
// for sockets. RealSocketApi forwards straight to the kernel; FaultSocketApi
// wraps another api and injects seeded failures (EAGAIN, ECONNRESET, EPIPE,
// short reads/writes, accept failures, blackholed fds) so the epoll backend's
// every error path is deterministically testable without root, tc, or a
// flaky network. All calls return >= 0 on success and -errno on failure —
// never raw -1 — so callers switch on the value without consulting errno
// (which fault injection could not set faithfully through layered wrappers).

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "util/rng.hpp"

namespace bsim {

/// One node endpoint at the syscall layer (host byte order).
struct SockAddr {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
};

class SocketApi {
 public:
  virtual ~SocketApi() = default;

  /// socket(AF_INET, SOCK_STREAM | NONBLOCK | CLOEXEC): fd or -errno.
  virtual int OpenStream() = 0;
  virtual int Bind(int fd, const SockAddr& addr) = 0;
  virtual int Listen(int fd, int backlog) = 0;
  /// accept4(NONBLOCK): new fd or -errno. Fills `peer` on success.
  virtual int Accept(int fd, SockAddr& peer) = 0;
  /// Non-blocking connect: 0 connected, -EINPROGRESS started, else -errno.
  virtual int Connect(int fd, const SockAddr& addr) = 0;
  /// send(MSG_NOSIGNAL): bytes written (possibly short) or -errno.
  virtual long Send(int fd, const void* buf, std::size_t len) = 0;
  /// recv: bytes read, 0 on orderly EOF, or -errno.
  virtual long Recv(int fd, void* buf, std::size_t len) = 0;
  /// getsockopt(SO_ERROR) as -errno (0 = connect completed cleanly).
  virtual int SockError(int fd) = 0;
  /// getsockname: fills `addr` (the kernel-assigned port after Bind(0)).
  virtual int LocalEndpoint(int fd, SockAddr& addr) = 0;
  virtual int CloseFd(int fd) = 0;
};

/// Pass-through to the kernel.
class RealSocketApi : public SocketApi {
 public:
  static RealSocketApi& Instance();

  int OpenStream() override;
  int Bind(int fd, const SockAddr& addr) override;
  int Listen(int fd, int backlog) override;
  int Accept(int fd, SockAddr& peer) override;
  int Connect(int fd, const SockAddr& addr) override;
  long Send(int fd, const void* buf, std::size_t len) override;
  long Recv(int fd, void* buf, std::size_t len) override;
  int SockError(int fd) override;
  int LocalEndpoint(int fd, SockAddr& addr) override;
  int CloseFd(int fd) override;
};

/// Per-operation fault probabilities (0..1), drawn from a seeded stream so a
/// failing chaos seed replays exactly. Connection-fatal injections
/// (ECONNRESET/EPIPE) also *poison* the fd: every later op on it fails the
/// same way, modeling a peer that is truly gone. A blackholed fd instead
/// swallows writes and never yields reads — the half-open case only the
/// ping watchdog can detect.
struct FaultSocketFaults {
  double eagain_rate = 0.0;       // Send/Recv: spurious EAGAIN
  double short_io_rate = 0.0;     // Send/Recv: truncate to ~half the bytes
  double reset_rate = 0.0;        // Send/Recv: ECONNRESET + poison
  double epipe_rate = 0.0;        // Send: EPIPE + poison
  double accept_fail_rate = 0.0;  // Accept: ECONNABORTED
  double connect_fail_rate = 0.0; // Connect: ECONNREFUSED
  double blackhole_rate = 0.0;    // Send: silently swallow + blackhole fd
  std::uint64_t seed = 1;
};

class FaultSocketApi : public SocketApi {
 public:
  explicit FaultSocketApi(SocketApi& base) : base_(base) {}

  void SetFaults(const FaultSocketFaults& faults) {
    faults_ = faults;
    rng_.Seed(faults.seed);
  }
  const FaultSocketFaults& Faults() const { return faults_; }

  enum class Poison { kNone, kReset, kPipe, kBlackhole };
  /// Deterministic test hook: force a specific failure mode onto an fd.
  void PoisonFd(int fd, Poison mode);

  // Injection counters (what actually fired, for test assertions).
  std::uint64_t InjectedEagain() const { return injected_eagain_; }
  std::uint64_t InjectedShortIo() const { return injected_short_; }
  std::uint64_t InjectedResets() const { return injected_resets_; }
  std::uint64_t InjectedEpipe() const { return injected_epipe_; }
  std::uint64_t InjectedAcceptFails() const { return injected_accept_; }
  std::uint64_t InjectedConnectFails() const { return injected_connect_; }
  std::uint64_t InjectedBlackholes() const { return injected_blackhole_; }
  std::uint64_t OpCount() const { return ops_; }

  int OpenStream() override;
  int Bind(int fd, const SockAddr& addr) override;
  int Listen(int fd, int backlog) override;
  int Accept(int fd, SockAddr& peer) override;
  int Connect(int fd, const SockAddr& addr) override;
  long Send(int fd, const void* buf, std::size_t len) override;
  long Recv(int fd, void* buf, std::size_t len) override;
  int SockError(int fd) override;
  int LocalEndpoint(int fd, SockAddr& addr) override;
  int CloseFd(int fd) override;

 private:
  bool Roll(double rate);

  SocketApi& base_;
  FaultSocketFaults faults_;
  bsutil::Rng rng_{1};
  std::uint64_t ops_ = 0;
  std::uint64_t injected_eagain_ = 0;
  std::uint64_t injected_short_ = 0;
  std::uint64_t injected_resets_ = 0;
  std::uint64_t injected_epipe_ = 0;
  std::uint64_t injected_accept_ = 0;
  std::uint64_t injected_connect_ = 0;
  std::uint64_t injected_blackhole_ = 0;
  // Poison state per fd; fds are recycled by the kernel, so CloseFd clears.
  std::unordered_map<int, Poison> poisoned_;
};

}  // namespace bsim
