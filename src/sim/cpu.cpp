#include "sim/cpu.hpp"

#include <algorithm>
#include <cmath>

namespace bsim {

void CpuModel::BeginWindow(SimTime now) {
  window_start_ = now;
  window_net_cycles_ = 0.0;
  window_icmp_packets_ = 0.0;
}

MiningSample CpuModel::EndWindow(SimTime now) {
  MiningSample sample;
  const double dt = ToSeconds(now - window_start_);
  if (dt <= 0.0) return sample;

  const double capacity = config_.capacity_cps * dt;
  const double net_cap = config_.net_capacity_fraction * capacity;

  // Application-layer demand: recorded message cycles plus idle
  // per-connection overhead, saturated at the net thread's scheduler share.
  const double conn_overhead =
      static_cast<double>(active_connections_) * config_.per_connection_overhead_cps * dt;
  sample.net_busy_cycles = std::min(window_net_cycles_ + conn_overhead, net_cap);

  // Kernel-layer ICMP demand with NAPI coalescing: logarithmic in rate.
  const double icmp_rate = window_icmp_packets_ / dt;
  sample.icmp_busy_cycles =
      config_.icmp_napi_scale_cycles * std::log(1.0 + icmp_rate / config_.icmp_napi_rate0) * dt;
  sample.icmp_busy_cycles = std::min(sample.icmp_busy_cycles, net_cap);

  const double busy =
      std::min(sample.net_busy_cycles + sample.icmp_busy_cycles, net_cap);
  sample.busy_fraction = busy / capacity;
  sample.mining_rate_hps = (capacity - busy) / config_.cycles_per_hash / dt;
  if (config_.measurement_jitter > 0.0) {
    sample.mining_rate_hps *=
        std::max(0.0, jitter_rng_.Normal(1.0, config_.measurement_jitter));
  }
  return sample;
}

}  // namespace bsim
