// Shared-CPU contention model.
//
// The paper's victim runs Bitcoin Core and a miner on one machine (Intel i7,
// 4 GHz): every cycle the networking stack burns is a cycle the miner does
// not hash. We model one CPU with a cycle budget per accounting window:
//
//   mining_rate = (capacity - busy_net - busy_icmp) / cycles_per_hash
//
// with three empirically-shaped components, each calibrated against the
// paper's own measurements (see DESIGN.md "Substitutions"):
//
//  * application-layer messages consume per-message cycles (type- and
//    size-dependent) plus a fixed per-message network-stack overhead; the
//    OS scheduler never lets the networking thread fully starve the miner,
//    so busy_net saturates at `net_capacity_fraction` of the CPU;
//  * each live attacker connection adds a fixed per-connection overhead
//    (epoll wakeups, keepalive) — this is why 20 Sybil sockets hurt more
//    than 10 even when total delivery is bandwidth-bound (Fig. 6);
//  * ICMP packets are handled in the kernel with NAPI-style interrupt
//    coalescing, so their per-packet cost falls with rate; busy_icmp grows
//    logarithmically (calibrated to Table III's ICMP column).
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace bsim {

struct CpuModelConfig {
  // Effective capacity calibrated so a baseline node with ~10 Mainnet peer
  // connections mines at the paper's 9.5e5 h/s: 9.5e5 * 4210 cycles/hash
  // plus the idle overhead of those 10 connections.
  double capacity_cps = 4.51e9;
  double cycles_per_hash = 4210;        // double-SHA256 of an 80-byte header
  double net_capacity_fraction = 0.73;  // scheduler bound on the net thread
  double per_message_overhead_cycles = 1.6e6;   // socket+wakeup+lock per msg
  double per_connection_overhead_cps = 5.1e7;   // idle cost of one live conn
  double icmp_napi_scale_cycles = 0.313e9;      // busy = scale*ln(1+rate/r0)
  double icmp_napi_rate0 = 300.0;               // packets/sec knee
  /// Multiplicative measurement noise on the mining rate (stddev as a
  /// fraction; 0 = deterministic). Scenario benches enable a small value so
  /// the reported confidence intervals reflect testbed-like jitter.
  double measurement_jitter = 0.0;
  std::uint64_t jitter_seed = 1234;
};

/// Result of one accounting window.
struct MiningSample {
  double mining_rate_hps = 0.0;   // hashes per second
  double busy_fraction = 0.0;     // of total capacity
  double net_busy_cycles = 0.0;
  double icmp_busy_cycles = 0.0;
};

/// Windowed cycle accounting. Callers record per-message costs and ICMP
/// packet arrivals as the simulation runs, then close the window to obtain
/// the mining rate over that interval.
class CpuModel {
 public:
  explicit CpuModel(const CpuModelConfig& config = {})
      : config_(config), jitter_rng_(config.jitter_seed) {}

  const CpuModelConfig& Config() const { return config_; }

  /// Record application-layer processing of one message: `processing_cycles`
  /// is the message-type-specific cost; the fixed stack overhead is added
  /// here.
  void ConsumeMessage(double processing_cycles) {
    window_net_cycles_ += processing_cycles + config_.per_message_overhead_cycles;
  }

  /// Record raw cycles with no per-message overhead (e.g. internal work).
  void ConsumeCycles(double cycles) { window_net_cycles_ += cycles; }

  /// Record an ICMP (kernel-layer) packet arrival.
  void ConsumeIcmpPacket() { window_icmp_packets_ += 1; }
  /// Record `n` ICMP packet arrivals (batched high-rate floods).
  void ConsumeIcmpPackets(std::uint64_t n) {
    window_icmp_packets_ += static_cast<double>(n);
  }

  /// Number of live connections whose idle overhead should be charged.
  void SetActiveConnections(int n) { active_connections_ = n; }
  int ActiveConnections() const { return active_connections_; }

  /// Open a new accounting window at `now`.
  void BeginWindow(SimTime now);
  /// Close the window at `now` and compute the mining rate over it.
  MiningSample EndWindow(SimTime now);

 private:
  CpuModelConfig config_;
  bsutil::Rng jitter_rng_;
  SimTime window_start_ = 0;
  double window_net_cycles_ = 0.0;
  double window_icmp_packets_ = 0.0;
  int active_connections_ = 0;
};

}  // namespace bsim
