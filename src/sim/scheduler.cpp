#include "sim/scheduler.hpp"

namespace bsim {

void Scheduler::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_events_total_ =
      registry.GetCounter("bs_sim_events_executed_total", "Scheduler events run");
  m_events_dispatched_ = registry.GetCounter(
      "bs_sim_events_dispatched_total",
      "Scheduler callbacks dispatched (events/sec numerator: divide the delta "
      "by bs_sim_wall_seconds)");
  m_sim_time_seconds_ =
      registry.GetGauge("bs_sim_time_seconds", "Current simulation clock");
  m_wall_seconds_ =
      registry.GetGauge("bs_sim_wall_seconds", "Wall clock since metrics attach");
  m_pending_events_ =
      registry.GetGauge("bs_sim_pending_events", "Events waiting in the queue");
  m_queue_depth_ =
      registry.GetGauge("bs_sim_queue_depth", "Event queue depth at last sample");
  m_queue_depth_peak_ = registry.GetGauge(
      "bs_sim_queue_depth_peak", "High-water mark of the event queue depth");
  wall_start_ = std::chrono::steady_clock::now();
  SyncMetrics();
}

void Scheduler::SyncMetrics() {
  if (m_events_total_ == nullptr) return;
  m_sim_time_seconds_->Set(ToSeconds(now_));
  m_pending_events_->Set(static_cast<double>(queue_.size()));
  m_queue_depth_->Set(static_cast<double>(queue_.size()));
  m_queue_depth_peak_->Set(static_cast<double>(peak_pending_));
  m_wall_seconds_->Set(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
          .count());
}

void Scheduler::At(SimTime t, Callback fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event must be copied/moved out
  // before pop. Move via const_cast is safe here because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  if (m_events_total_ != nullptr) {
    m_events_total_->Inc();
    m_events_dispatched_->Inc();
    m_sim_time_seconds_->Set(ToSeconds(now_));
    m_pending_events_->Set(static_cast<double>(queue_.size()));
    m_queue_depth_->Set(static_cast<double>(queue_.size()));
    m_queue_depth_peak_->Set(static_cast<double>(peak_pending_));
    // The wall clock read is the expensive part; sample it every 1024 events.
    if ((executed_ & 1023) == 0) {
      m_wall_seconds_->Set(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
              .count());
    }
  }
  if (profiler_ != nullptr) {
    bsobs::ScopedProbe probe(profiler_, bsobs::HotStage::kDispatch);
    ev.fn();
  } else {
    ev.fn();
  }
  return true;
}

void Scheduler::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) Step();
  if (now_ < t) now_ = t;
}

void Scheduler::RunAll() {
  while (Step()) {
  }
}

}  // namespace bsim
