#include "sim/scheduler.hpp"

namespace bsim {

void Scheduler::At(SimTime t, Callback fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event must be copied/moved out
  // before pop. Move via const_cast is safe here because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Scheduler::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) Step();
  if (now_ < t) now_ = t;
}

void Scheduler::RunAll() {
  while (Step()) {
  }
}

}  // namespace bsim
