#include "sim/faultsock.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bsim {

namespace {

sockaddr_in ToSockaddr(const SockAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  sa.sin_addr.s_addr = htonl(addr.ip);
  return sa;
}

SockAddr FromSockaddr(const sockaddr_in& sa) {
  SockAddr addr;
  addr.ip = ntohl(sa.sin_addr.s_addr);
  addr.port = ntohs(sa.sin_port);
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------------
// RealSocketApi

RealSocketApi& RealSocketApi::Instance() {
  static RealSocketApi instance;
  return instance;
}

int RealSocketApi::OpenStream() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -errno;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  return fd;
}

int RealSocketApi::Bind(int fd, const SockAddr& addr) {
  const sockaddr_in sa = ToSockaddr(addr);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    return -errno;
  }
  return 0;
}

int RealSocketApi::Listen(int fd, int backlog) {
  if (::listen(fd, backlog) != 0) return -errno;
  return 0;
}

int RealSocketApi::Accept(int fd, SockAddr& peer) {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  const int nfd = ::accept4(fd, reinterpret_cast<sockaddr*>(&sa), &len,
                            SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (nfd < 0) return -errno;
  peer = FromSockaddr(sa);
  return nfd;
}

int RealSocketApi::Connect(int fd, const SockAddr& addr) {
  const sockaddr_in sa = ToSockaddr(addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0) {
    return 0;
  }
  return -errno;
}

long RealSocketApi::Send(int fd, const void* buf, std::size_t len) {
  const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
  if (n < 0) return -errno;
  return n;
}

long RealSocketApi::Recv(int fd, void* buf, std::size_t len) {
  const ssize_t n = ::recv(fd, buf, len, 0);
  if (n < 0) return -errno;
  return n;
}

int RealSocketApi::SockError(int fd) {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return -errno;
  return -err;
}

int RealSocketApi::LocalEndpoint(int fd, SockAddr& addr) {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return -errno;
  }
  addr = FromSockaddr(sa);
  return 0;
}

int RealSocketApi::CloseFd(int fd) {
  if (::close(fd) != 0) return -errno;
  return 0;
}

// ---------------------------------------------------------------------------
// FaultSocketApi

bool FaultSocketApi::Roll(double rate) {
  if (rate <= 0.0) return false;
  return rng_.NextDouble() < rate;
}

void FaultSocketApi::PoisonFd(int fd, Poison mode) { poisoned_[fd] = mode; }

int FaultSocketApi::OpenStream() {
  ++ops_;
  return base_.OpenStream();
}

int FaultSocketApi::Bind(int fd, const SockAddr& addr) {
  ++ops_;
  return base_.Bind(fd, addr);
}

int FaultSocketApi::Listen(int fd, int backlog) {
  ++ops_;
  return base_.Listen(fd, backlog);
}

int FaultSocketApi::Accept(int fd, SockAddr& peer) {
  ++ops_;
  if (Roll(faults_.accept_fail_rate)) {
    ++injected_accept_;
    // The kernel accepted and the peer RST before we got to it — the classic
    // transient accept failure a robust loop must skip, not abort on.
    SockAddr scratch;
    const int real = base_.Accept(fd, scratch);
    if (real >= 0) base_.CloseFd(real);
    return -ECONNABORTED;
  }
  return base_.Accept(fd, peer);
}

int FaultSocketApi::Connect(int fd, const SockAddr& addr) {
  ++ops_;
  if (Roll(faults_.connect_fail_rate)) {
    ++injected_connect_;
    return -ECONNREFUSED;
  }
  return base_.Connect(fd, addr);
}

long FaultSocketApi::Send(int fd, const void* buf, std::size_t len) {
  ++ops_;
  const auto it = poisoned_.find(fd);
  if (it != poisoned_.end()) {
    switch (it->second) {
      case Poison::kReset:
        return -ECONNRESET;
      case Poison::kPipe:
        return -EPIPE;
      case Poison::kBlackhole:
        return static_cast<long>(len);  // swallowed; peer never sees it
      case Poison::kNone:
        break;
    }
  }
  if (Roll(faults_.reset_rate)) {
    ++injected_resets_;
    poisoned_[fd] = Poison::kReset;
    return -ECONNRESET;
  }
  if (Roll(faults_.epipe_rate)) {
    ++injected_epipe_;
    poisoned_[fd] = Poison::kPipe;
    return -EPIPE;
  }
  if (Roll(faults_.blackhole_rate)) {
    ++injected_blackhole_;
    poisoned_[fd] = Poison::kBlackhole;
    return static_cast<long>(len);
  }
  if (Roll(faults_.eagain_rate)) {
    ++injected_eagain_;
    return -EAGAIN;
  }
  if (len > 1 && Roll(faults_.short_io_rate)) {
    ++injected_short_;
    return base_.Send(fd, buf, len / 2);
  }
  return base_.Send(fd, buf, len);
}

long FaultSocketApi::Recv(int fd, void* buf, std::size_t len) {
  ++ops_;
  const auto it = poisoned_.find(fd);
  if (it != poisoned_.end()) {
    switch (it->second) {
      case Poison::kReset:
        return -ECONNRESET;
      case Poison::kPipe:
        // EPIPE is a send-side error; the read side of a broken pipe EOFs.
        return 0;
      case Poison::kBlackhole:
        return -EAGAIN;  // silence forever
      case Poison::kNone:
        break;
    }
  }
  if (Roll(faults_.reset_rate)) {
    ++injected_resets_;
    poisoned_[fd] = Poison::kReset;
    return -ECONNRESET;
  }
  if (Roll(faults_.eagain_rate)) {
    ++injected_eagain_;
    return -EAGAIN;
  }
  if (len > 1 && Roll(faults_.short_io_rate)) {
    ++injected_short_;
    return base_.Recv(fd, buf, len / 2);
  }
  return base_.Recv(fd, buf, len);
}

int FaultSocketApi::SockError(int fd) {
  ++ops_;
  const auto it = poisoned_.find(fd);
  if (it != poisoned_.end() && it->second == Poison::kReset) return -ECONNRESET;
  return base_.SockError(fd);
}

int FaultSocketApi::LocalEndpoint(int fd, SockAddr& addr) {
  ++ops_;
  return base_.LocalEndpoint(fd, addr);
}

int FaultSocketApi::CloseFd(int fd) {
  ++ops_;
  poisoned_.erase(fd);
  return base_.CloseFd(fd);
}

}  // namespace bsim
