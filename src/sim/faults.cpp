#include "sim/faults.hpp"

namespace bsim {

namespace {
inline void Bump(std::uint64_t& plain, bsobs::Counter* mirror) {
  ++plain;
  if (mirror != nullptr) mirror->Inc();
}
}  // namespace

FaultPlan::FaultPlan(Scheduler& sched, std::uint64_t seed)
    : sched_(sched), seed_(seed), rng_(seed) {}

void FaultPlan::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_dropped_loss_ = registry.GetCounter("bs_sim_fault_dropped_loss_total",
                                        "Segments dropped by injected loss");
  m_dropped_partition_ =
      registry.GetCounter("bs_sim_fault_dropped_partition_total",
                          "Segments blackholed by a cut link/host");
  m_duplicated_ = registry.GetCounter("bs_sim_fault_duplicated_total",
                                      "Segments delivered twice");
  m_delayed_ = registry.GetCounter("bs_sim_fault_delayed_total",
                                   "Segments delayed by reorder jitter");
  m_corrupted_ = registry.GetCounter("bs_sim_fault_corrupted_total",
                                     "Segments with the checksum bit dirtied");
  m_delayed_routing_ =
      registry.GetCounter("bs_sim_fault_delayed_routing_total",
                          "Segments delayed by an injected routing detour");
  m_routing_partitions_ =
      registry.GetCounter("bs_sim_fault_routing_partitions_total",
                          "Scheduled netgroup delay-partitions");
  m_link_flaps_ =
      registry.GetCounter("bs_sim_fault_link_flaps_total", "Scheduled link/host cuts");
  m_host_crashes_ =
      registry.GetCounter("bs_sim_fault_crashes_total", "Scheduled host crashes");
}

void FaultPlan::ScheduleLinkFlap(std::uint32_t a, std::uint32_t b, SimTime at,
                                 SimTime down_for) {
  sched_.At(at, [this, a, b, down_for]() {
    Bump(link_flaps_, m_link_flaps_);
    CutLink(a, b);
    sched_.After(down_for, [this, a, b]() { HealLink(a, b); });
  });
}

void FaultPlan::ScheduleHostFlap(std::uint32_t ip, SimTime at, SimTime down_for) {
  sched_.At(at, [this, ip, down_for]() {
    Bump(link_flaps_, m_link_flaps_);
    CutHost(ip);
    sched_.After(down_for, [this, ip]() { HealHost(ip); });
  });
}

void FaultPlan::SetLinkDelay(std::uint32_t src, std::uint32_t dst, SimTime delay) {
  if (delay <= 0) {
    link_delays_.erase(DirKey(src, dst));
  } else {
    link_delays_[DirKey(src, dst)] = delay;
  }
}

void FaultPlan::SetGroupDelay(std::uint32_t src_group, std::uint32_t dst_group,
                              SimTime delay) {
  if (delay <= 0) {
    group_delays_.erase(DirKey(src_group, dst_group));
  } else {
    group_delays_[DirKey(src_group, dst_group)] = delay;
  }
}

void FaultPlan::DelayPartitionGroups(const std::vector<std::uint32_t>& side_a,
                                     const std::vector<std::uint32_t>& side_b,
                                     SimTime ab, SimTime ba) {
  for (const std::uint32_t ga : side_a) {
    for (const std::uint32_t gb : side_b) {
      SetGroupDelay(ga, gb, ab);
      SetGroupDelay(gb, ga, ba);
    }
  }
}

void FaultPlan::HealDelayPartition(const std::vector<std::uint32_t>& side_a,
                                   const std::vector<std::uint32_t>& side_b) {
  for (const std::uint32_t ga : side_a) {
    for (const std::uint32_t gb : side_b) {
      HealGroupDelay(ga, gb);
      HealGroupDelay(gb, ga);
    }
  }
}

void FaultPlan::ScheduleDelayPartition(std::vector<std::uint32_t> side_a,
                                       std::vector<std::uint32_t> side_b,
                                       SimTime ab, SimTime ba, SimTime at) {
  sched_.At(at, [this, side_a = std::move(side_a), side_b = std::move(side_b),
                 ab, ba]() {
    Bump(routing_partitions_, m_routing_partitions_);
    DelayPartitionGroups(side_a, side_b, ab, ba);
  });
}

void FaultPlan::SchedulePartialHeal(std::vector<std::uint32_t> side_a,
                                    std::vector<std::uint32_t> side_b_subset,
                                    SimTime at) {
  sched_.At(at, [this, side_a = std::move(side_a),
                 side_b_subset = std::move(side_b_subset)]() {
    HealDelayPartition(side_a, side_b_subset);
  });
}

void FaultPlan::ScheduleCrash(std::uint32_t ip, SimTime at, SimTime restart_after) {
  sched_.At(at, [this, ip, restart_after]() {
    Bump(host_crashes_, m_host_crashes_);
    if (on_host_crash) on_host_crash(ip);
    if (restart_after > 0) {
      sched_.After(restart_after, [this, ip]() {
        if (on_host_restart) on_host_restart(ip);
      });
    }
  });
}

const FaultSpec& FaultPlan::ResolveSpec(std::uint32_t src_ip,
                                        std::uint32_t dst_ip) const {
  if (!link_specs_.empty()) {
    const auto it = link_specs_.find(LinkKey(src_ip, dst_ip));
    if (it != link_specs_.end()) return it->second;
  }
  if (!host_specs_.empty()) {
    auto it = host_specs_.find(src_ip);
    if (it != host_specs_.end()) return it->second;
    it = host_specs_.find(dst_ip);
    if (it != host_specs_.end()) return it->second;
  }
  return default_spec_;
}

FaultPlan::Fate FaultPlan::Judge(const TcpSegment& seg) {
  Fate fate;
  if (IsCut(seg.src.ip, seg.dst.ip)) {
    Bump(dropped_partition_, m_dropped_partition_);
    fate.drop = true;
    return fate;
  }
  // Routing detours first: deterministic, no RNG draw, so these rules can
  // never perturb the loss/corrupt/duplicate/reorder sequence below. A
  // per-link rule beats the group rule; they do not stack.
  if (!link_delays_.empty() || !group_delays_.empty()) {
    const auto link_it = link_delays_.find(DirKey(seg.src.ip, seg.dst.ip));
    if (link_it != link_delays_.end()) {
      fate.extra_delay = link_it->second;
    } else {
      const auto group_it = group_delays_.find(
          DirKey(GroupOf(seg.src.ip), GroupOf(seg.dst.ip)));
      if (group_it != group_delays_.end()) fate.extra_delay = group_it->second;
    }
    if (fate.extra_delay > 0) Bump(delayed_routing_, m_delayed_routing_);
  }
  const FaultSpec& spec = ResolveSpec(seg.src.ip, seg.dst.ip);
  if (spec.Quiet()) return fate;  // no randomness consumed

  if (spec.loss > 0.0 && rng_.Chance(spec.loss)) {
    Bump(dropped_loss_, m_dropped_loss_);
    fate.drop = true;
    return fate;
  }
  if (spec.corrupt > 0.0 && rng_.Chance(spec.corrupt)) {
    Bump(corrupted_, m_corrupted_);
    fate.corrupt = true;
  }
  if (spec.duplicate > 0.0 && rng_.Chance(spec.duplicate)) {
    Bump(duplicated_, m_duplicated_);
    fate.duplicate = true;
  }
  if (spec.reorder > 0.0 && spec.reorder_jitter_max > 0 &&
      rng_.Chance(spec.reorder)) {
    Bump(delayed_, m_delayed_);
    // Jitter stacks on top of any routing detour already applied above.
    fate.extra_delay +=
        1 + static_cast<SimTime>(
                rng_.Below(static_cast<std::uint64_t>(spec.reorder_jitter_max)));
  }
  return fate;
}

}  // namespace bsim
