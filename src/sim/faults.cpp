#include "sim/faults.hpp"

namespace bsim {

namespace {
inline void Bump(std::uint64_t& plain, bsobs::Counter* mirror) {
  ++plain;
  if (mirror != nullptr) mirror->Inc();
}
}  // namespace

FaultPlan::FaultPlan(Scheduler& sched, std::uint64_t seed)
    : sched_(sched), seed_(seed), rng_(seed) {}

void FaultPlan::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_dropped_loss_ = registry.GetCounter("bs_sim_fault_dropped_loss_total",
                                        "Segments dropped by injected loss");
  m_dropped_partition_ =
      registry.GetCounter("bs_sim_fault_dropped_partition_total",
                          "Segments blackholed by a cut link/host");
  m_duplicated_ = registry.GetCounter("bs_sim_fault_duplicated_total",
                                      "Segments delivered twice");
  m_delayed_ = registry.GetCounter("bs_sim_fault_delayed_total",
                                   "Segments delayed by reorder jitter");
  m_corrupted_ = registry.GetCounter("bs_sim_fault_corrupted_total",
                                     "Segments with the checksum bit dirtied");
  m_link_flaps_ =
      registry.GetCounter("bs_sim_fault_link_flaps_total", "Scheduled link/host cuts");
  m_host_crashes_ =
      registry.GetCounter("bs_sim_fault_crashes_total", "Scheduled host crashes");
}

void FaultPlan::ScheduleLinkFlap(std::uint32_t a, std::uint32_t b, SimTime at,
                                 SimTime down_for) {
  sched_.At(at, [this, a, b, down_for]() {
    Bump(link_flaps_, m_link_flaps_);
    CutLink(a, b);
    sched_.After(down_for, [this, a, b]() { HealLink(a, b); });
  });
}

void FaultPlan::ScheduleHostFlap(std::uint32_t ip, SimTime at, SimTime down_for) {
  sched_.At(at, [this, ip, down_for]() {
    Bump(link_flaps_, m_link_flaps_);
    CutHost(ip);
    sched_.After(down_for, [this, ip]() { HealHost(ip); });
  });
}

void FaultPlan::ScheduleCrash(std::uint32_t ip, SimTime at, SimTime restart_after) {
  sched_.At(at, [this, ip, restart_after]() {
    Bump(host_crashes_, m_host_crashes_);
    if (on_host_crash) on_host_crash(ip);
    if (restart_after > 0) {
      sched_.After(restart_after, [this, ip]() {
        if (on_host_restart) on_host_restart(ip);
      });
    }
  });
}

const FaultSpec& FaultPlan::ResolveSpec(std::uint32_t src_ip,
                                        std::uint32_t dst_ip) const {
  if (!link_specs_.empty()) {
    const auto it = link_specs_.find(LinkKey(src_ip, dst_ip));
    if (it != link_specs_.end()) return it->second;
  }
  if (!host_specs_.empty()) {
    auto it = host_specs_.find(src_ip);
    if (it != host_specs_.end()) return it->second;
    it = host_specs_.find(dst_ip);
    if (it != host_specs_.end()) return it->second;
  }
  return default_spec_;
}

FaultPlan::Fate FaultPlan::Judge(const TcpSegment& seg) {
  Fate fate;
  if (IsCut(seg.src.ip, seg.dst.ip)) {
    Bump(dropped_partition_, m_dropped_partition_);
    fate.drop = true;
    return fate;
  }
  const FaultSpec& spec = ResolveSpec(seg.src.ip, seg.dst.ip);
  if (spec.Quiet()) return fate;  // no randomness consumed

  if (spec.loss > 0.0 && rng_.Chance(spec.loss)) {
    Bump(dropped_loss_, m_dropped_loss_);
    fate.drop = true;
    return fate;
  }
  if (spec.corrupt > 0.0 && rng_.Chance(spec.corrupt)) {
    Bump(corrupted_, m_corrupted_);
    fate.corrupt = true;
  }
  if (spec.duplicate > 0.0 && rng_.Chance(spec.duplicate)) {
    Bump(duplicated_, m_duplicated_);
    fate.duplicate = true;
  }
  if (spec.reorder > 0.0 && spec.reorder_jitter_max > 0 &&
      rng_.Chance(spec.reorder)) {
    Bump(delayed_, m_delayed_);
    fate.extra_delay =
        1 + static_cast<SimTime>(
                rng_.Below(static_cast<std::uint64_t>(spec.reorder_jitter_max)));
  }
  return fate;
}

}  // namespace bsim
