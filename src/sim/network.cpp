#include "sim/network.hpp"

#include "sim/faults.hpp"
#include "sim/tcp.hpp"

namespace bsim {

Network::Network(Scheduler& sched, NetworkConfig config)
    : sched_(sched), config_(config) {}

void Network::AttachMetrics(bsobs::MetricsRegistry& registry) {
  m_segments_sent_ =
      registry.GetCounter("bs_sim_segments_sent_total", "TCP segments transmitted");
  m_dropped_spoofed_ = registry.GetCounter("bs_sim_segments_dropped_spoofed_total",
                                           "Spoofed-egress segments blocked");
  m_dropped_checksum_ = registry.GetCounter(
      "bs_sim_segments_dropped_checksum_total", "Segments dropped: bad TCP checksum");
  m_dropped_out_of_order_ =
      registry.GetCounter("bs_sim_segments_dropped_out_of_order_total",
                          "Segments dropped: out of receive order");
  m_retransmits_ = registry.GetCounter("bs_sim_segments_retransmitted_total",
                                       "Segments retransmitted (reliable mode)");
  m_rx_pending_shed_bytes_ =
      registry.GetCounter("bs_sim_rx_pending_shed_bytes_total",
                          "Receive-buffer bytes shed at the connection cap");
}

void Network::NoteChecksumDrop() {
  ++dropped_checksum_;
  if (m_dropped_checksum_ != nullptr) m_dropped_checksum_->Inc();
}

void Network::NoteOutOfOrderDrop() {
  ++dropped_out_of_order_;
  if (m_dropped_out_of_order_ != nullptr) m_dropped_out_of_order_->Inc();
}

void Network::NoteRetransmit() {
  ++retransmits_;
  if (m_retransmits_ != nullptr) m_retransmits_->Inc();
}

void Network::NoteRxPendingShed(std::size_t bytes) {
  rx_pending_shed_bytes_ += bytes;
  if (m_rx_pending_shed_bytes_ != nullptr) m_rx_pending_shed_bytes_->Inc(bytes);
}

void Network::Attach(Host* host) { hosts_[host->Ip()] = host; }

void Network::Detach(Host* host) {
  const auto it = hosts_.find(host->Ip());
  if (it != hosts_.end() && it->second == host) hosts_.erase(it);
}

SimTime Network::ReserveEgress(std::uint32_t sender_ip, std::size_t frame_bytes) {
  SimTime& free_at = egress_free_at_[sender_ip];
  const SimTime start = std::max(free_at, sched_.Now());
  const SimTime tx_time =
      FromSeconds(static_cast<double>(frame_bytes) / config_.bandwidth_bytes_per_sec);
  free_at = start + tx_time;
  return free_at;
}

void Network::ScheduleDelivery(TcpSegment seg, std::size_t frame_bytes,
                               SimTime arrival) {
  sched_.At(arrival, [this, seg = std::move(seg), frame_bytes]() {
    bytes_to_[seg.dst.ip] += frame_bytes;
    const auto it = hosts_.find(seg.dst.ip);
    if (it != hosts_.end()) it->second->DeliverSegment(seg);
  });
}

void Network::SendSegment(Host& from, TcpSegment seg) {
  if (config_.block_spoofed_egress && seg.src.ip != from.Ip()) {
    ++dropped_spoofed_;
    if (m_dropped_spoofed_ != nullptr) m_dropped_spoofed_->Inc();
    return;
  }
  ++segments_sent_;
  if (m_segments_sent_ != nullptr) m_segments_sent_->Inc();
  const std::size_t frame = seg.payload.size() + kTcpFrameOverhead;
  const SimTime leaves_nic = ReserveEgress(from.Ip(), frame);
  SimTime arrival = leaves_nic + config_.latency;

  // Sniffers tap the sender's side of the wire: they see the segment as
  // transmitted, before any in-flight fault touches it.
  for (const auto& sniffer : sniffers_) sniffer(seg, sched_.Now());

  if (faults_ != nullptr) {
    const FaultPlan::Fate fate = faults_->Judge(seg);
    if (fate.drop) return;  // the bits left the NIC and died on the wire
    if (fate.corrupt) seg.checksum_ok = false;
    arrival += fate.extra_delay;
    if (fate.duplicate) ScheduleDelivery(seg, frame, arrival);
  }
  ScheduleDelivery(std::move(seg), frame, arrival);
}

void Network::SendIcmp(Host& from, IcmpPacket pkt) {
  if (config_.block_spoofed_egress && pkt.src_ip != from.Ip()) {
    ++dropped_spoofed_;
    if (m_dropped_spoofed_ != nullptr) m_dropped_spoofed_->Inc();
    return;
  }
  const std::size_t frame = pkt.size + kIcmpFrameOverhead;
  const SimTime leaves_nic = ReserveEgress(from.Ip(), frame);
  const SimTime arrival = leaves_nic + config_.latency;
  sched_.At(arrival, [this, pkt, frame]() {
    bytes_to_[pkt.dst_ip] += frame;
    const auto it = hosts_.find(pkt.dst_ip);
    if (it != hosts_.end()) it->second->OnIcmp(pkt);
  });
}

void Network::SendIcmpBatch(Host& from, IcmpPacket pkt, std::uint64_t count) {
  if (count == 0) return;
  if (config_.block_spoofed_egress && pkt.src_ip != from.Ip()) {
    dropped_spoofed_ += count;
    if (m_dropped_spoofed_ != nullptr) m_dropped_spoofed_->Inc(count);
    return;
  }
  const std::size_t frame = pkt.size + kIcmpFrameOverhead;
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(frame) * count;
  // Reserve the egress for the whole burst at once.
  SimTime& free_at = egress_free_at_[from.Ip()];
  const SimTime start = std::max(free_at, sched_.Now());
  free_at = start + FromSeconds(static_cast<double>(total_bytes) /
                                config_.bandwidth_bytes_per_sec);
  const SimTime arrival = free_at + config_.latency;
  sched_.At(arrival, [this, pkt, count, total_bytes]() {
    bytes_to_[pkt.dst_ip] += total_bytes;
    const auto it = hosts_.find(pkt.dst_ip);
    if (it != hosts_.end()) it->second->OnIcmpBatch(pkt, count);
  });
}

std::uint64_t Network::BytesDeliveredTo(std::uint32_t ip) const {
  const auto it = bytes_to_.find(ip);
  return it == bytes_to_.end() ? 0 : it->second;
}

}  // namespace bsim
