#include "sim/network.hpp"

#include "sim/tcp.hpp"

namespace bsim {

Network::Network(Scheduler& sched, NetworkConfig config)
    : sched_(sched), config_(config) {}

void Network::Attach(Host* host) { hosts_[host->Ip()] = host; }

void Network::Detach(Host* host) {
  const auto it = hosts_.find(host->Ip());
  if (it != hosts_.end() && it->second == host) hosts_.erase(it);
}

SimTime Network::ReserveEgress(std::uint32_t sender_ip, std::size_t frame_bytes) {
  SimTime& free_at = egress_free_at_[sender_ip];
  const SimTime start = std::max(free_at, sched_.Now());
  const SimTime tx_time =
      FromSeconds(static_cast<double>(frame_bytes) / config_.bandwidth_bytes_per_sec);
  free_at = start + tx_time;
  return free_at;
}

void Network::SendSegment(Host& from, TcpSegment seg) {
  if (config_.block_spoofed_egress && seg.src.ip != from.Ip()) {
    ++dropped_spoofed_;
    return;
  }
  ++segments_sent_;
  const std::size_t frame = seg.payload.size() + kTcpFrameOverhead;
  const SimTime leaves_nic = ReserveEgress(from.Ip(), frame);
  const SimTime arrival = leaves_nic + config_.latency;

  for (const auto& sniffer : sniffers_) sniffer(seg, sched_.Now());

  sched_.At(arrival, [this, seg = std::move(seg), frame]() {
    bytes_to_[seg.dst.ip] += frame;
    const auto it = hosts_.find(seg.dst.ip);
    if (it != hosts_.end()) it->second->DeliverSegment(seg);
  });
}

void Network::SendIcmp(Host& from, IcmpPacket pkt) {
  if (config_.block_spoofed_egress && pkt.src_ip != from.Ip()) {
    ++dropped_spoofed_;
    return;
  }
  const std::size_t frame = pkt.size + kIcmpFrameOverhead;
  const SimTime leaves_nic = ReserveEgress(from.Ip(), frame);
  const SimTime arrival = leaves_nic + config_.latency;
  sched_.At(arrival, [this, pkt, frame]() {
    bytes_to_[pkt.dst_ip] += frame;
    const auto it = hosts_.find(pkt.dst_ip);
    if (it != hosts_.end()) it->second->OnIcmp(pkt);
  });
}

void Network::SendIcmpBatch(Host& from, IcmpPacket pkt, std::uint64_t count) {
  if (count == 0) return;
  if (config_.block_spoofed_egress && pkt.src_ip != from.Ip()) {
    dropped_spoofed_ += count;
    return;
  }
  const std::size_t frame = pkt.size + kIcmpFrameOverhead;
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(frame) * count;
  // Reserve the egress for the whole burst at once.
  SimTime& free_at = egress_free_at_[from.Ip()];
  const SimTime start = std::max(free_at, sched_.Now());
  free_at = start + FromSeconds(static_cast<double>(total_bytes) /
                                config_.bandwidth_bytes_per_sec);
  const SimTime arrival = free_at + config_.latency;
  sched_.At(arrival, [this, pkt, count, total_bytes]() {
    bytes_to_[pkt.dst_ip] += total_bytes;
    const auto it = hosts_.find(pkt.dst_ip);
    if (it != hosts_.end()) it->second->OnIcmpBatch(pkt, count);
  });
}

std::uint64_t Network::BytesDeliveredTo(std::uint32_t ip) const {
  const auto it = bytes_to_.find(ip);
  return it == bytes_to_.end() ? 0 : it->second;
}

}  // namespace bsim
