#include "sim/tcp.hpp"

#include "util/log.hpp"

namespace bsim {

// ---------------------------------------------------------------------------
// TcpConnection

TcpConnection::TcpConnection(Host& host, Endpoint local, Endpoint remote, bool inbound)
    : host_(host),
      local_(local),
      remote_(remote),
      inbound_(inbound),
      state_(inbound ? State::kSynReceived : State::kSynSent) {
  // Deterministic ISN derived from the 4-tuple; real randomness is not
  // security-relevant here because the sniffing attacker reads sequence
  // numbers off the wire anyway.
  snd_next_ = (local_.ip ^ (local_.port * 2654435761u) ^ (remote_.ip >> 3)) | 1u;
}

void TcpConnection::StartHandshake() {
  TcpSegment syn;
  syn.src = local_;
  syn.dst = remote_;
  syn.seq = snd_next_;
  syn.flags = kFlagSyn;
  ++snd_next_;  // SYN consumes one sequence number
  host_.Transmit(std::move(syn));
}

void TcpConnection::EmitSegment(std::uint8_t flags, bsutil::ByteSpan payload) {
  TcpSegment seg;
  seg.src = local_;
  seg.dst = remote_;
  seg.seq = snd_next_;
  seg.ack = rcv_next_;
  seg.flags = flags;
  seg.payload.assign(payload.begin(), payload.end());
  snd_next_ += static_cast<std::uint32_t>(payload.size());
  if (flags & kFlagFin) ++snd_next_;
  bytes_sent_ += payload.size();
  host_.Transmit(std::move(seg));
}

void TcpConnection::Send(bsutil::ByteSpan data) {
  if (state_ != State::kEstablished) return;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk = std::min(kMss, data.size() - offset);
    EmitSegment(kFlagPsh | kFlagAck, data.subspan(offset, chunk));
    offset += chunk;
  }
}

void TcpConnection::Close() {
  if (state_ == State::kClosed) return;
  EmitSegment(kFlagFin | kFlagAck, {});
  BecomeClosed();
}

void TcpConnection::Reset() {
  if (state_ == State::kClosed) return;
  TcpSegment rst;
  rst.src = local_;
  rst.dst = remote_;
  rst.seq = snd_next_;
  rst.flags = kFlagRst;
  host_.Transmit(std::move(rst));
  BecomeClosed();
}

void TcpConnection::BecomeClosed() {
  if (state_ == State::kClosed) return;
  const State prior = state_;
  state_ = State::kClosed;
  if (prior != State::kEstablished && on_connected) on_connected(false);
  if (on_closed) on_closed();
  host_.ReleaseConnection(this);  // self-destructs; no member access after this
}

void TcpConnection::HandleSegment(const TcpSegment& seg) {
  if (state_ == State::kClosed) return;

  // Transport checksum gate: invalid segments vanish before any state or
  // payload processing.
  if (!seg.checksum_ok) {
    ++dropped_checksum_;
    return;
  }

  if (seg.Has(kFlagRst)) {
    BecomeClosed();
    return;
  }

  switch (state_) {
    case State::kSynSent:
      if (seg.Has(kFlagSyn) && seg.Has(kFlagAck) && seg.ack == snd_next_) {
        rcv_next_ = seg.seq + 1;
        state_ = State::kEstablished;
        EmitSegment(kFlagAck, {});  // completes the three-way handshake
        if (on_connected) on_connected(true);
      }
      return;

    case State::kSynReceived:
      if (seg.Has(kFlagAck) && seg.ack == snd_next_ && !seg.Has(kFlagSyn)) {
        state_ = State::kEstablished;
        if (on_connected) on_connected(true);
        // Piggybacked data on the handshake-completing ACK falls through to
        // normal delivery below.
        if (!seg.payload.empty() && seg.seq == rcv_next_) {
          rcv_next_ += static_cast<std::uint32_t>(seg.payload.size());
          bytes_received_ += seg.payload.size();
          if (on_data) on_data(seg.payload);
        }
      }
      return;

    case State::kEstablished: {
      if (seg.Has(kFlagFin)) {
        BecomeClosed();
        return;
      }
      if (seg.payload.empty()) return;  // bare ACK
      if (seg.seq != rcv_next_) {
        // In-order-only receiver: anything off the expected sequence is
        // dropped. A spoofed injection that matches rcv_next_ is accepted
        // here exactly as if the real peer had sent it — and desynchronizes
        // the real peer's subsequent segments, which then land in this
        // branch.
        ++dropped_out_of_order_;
        return;
      }
      rcv_next_ += static_cast<std::uint32_t>(seg.payload.size());
      bytes_received_ += seg.payload.size();
      if (on_data) on_data(seg.payload);
      return;
    }

    case State::kClosed:
      return;
  }
}

// ---------------------------------------------------------------------------
// Host

Host::Host(Scheduler& sched, Network& net, std::uint32_t ip)
    : sched_(sched), net_(net), ip_(ip) {
  net_.Attach(this);
}

Host::~Host() { net_.Detach(this); }

void Host::Listen(std::uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
}

std::uint16_t Host::AllocEphemeralPort() {
  // 49152..65535, the dynamic range the paper's full-IP Defamation estimate
  // is computed over.
  const std::uint16_t port = next_ephemeral_;
  next_ephemeral_ = (next_ephemeral_ == 65535) ? 49152 : next_ephemeral_ + 1;
  return port;
}

TcpConnection* Host::Connect(Endpoint remote, std::function<void(bool)> on_connected) {
  return ConnectFrom(AllocEphemeralPort(), remote, std::move(on_connected));
}

TcpConnection* Host::ConnectFrom(std::uint16_t local_port, Endpoint remote,
                                 std::function<void(bool)> on_connected) {
  const Endpoint local{ip_, local_port};
  const ConnKey key{local, remote};
  if (connections_.contains(key)) return nullptr;  // identifier in use
  auto conn = std::make_unique<TcpConnection>(*this, local, remote, /*inbound=*/false);
  TcpConnection* raw = conn.get();
  raw->on_connected = std::move(on_connected);
  connections_.emplace(key, std::move(conn));
  raw->StartHandshake();
  // SYN timeout: a dial toward a dead or silently-dropping address must not
  // hang forever (outbound maintenance depends on the failure callback).
  sched_.After(kSynTimeout, [this, key]() {
    TcpConnection* pending = FindConnection(key.first, key.second);
    if (pending != nullptr && !pending->IsEstablished()) pending->Reset();
  });
  return raw;
}

TcpConnection* Host::FindConnection(const Endpoint& local, const Endpoint& remote) {
  const auto it = connections_.find(ConnKey{local, remote});
  return it == connections_.end() ? nullptr : it->second.get();
}

void Host::ReleaseConnection(TcpConnection* conn) {
  // Deferred so the connection can finish its current callback stack.
  const ConnKey key{conn->Local(), conn->Remote()};
  sched_.After(0, [this, key]() { connections_.erase(key); });
}

void Host::Transmit(TcpSegment seg) { net_.SendSegment(*this, std::move(seg)); }

void Host::DeliverSegment(const TcpSegment& seg) {
  if (raw_segment_filter && raw_segment_filter(seg)) return;

  // Demultiplex: our local endpoint is the segment's destination.
  if (TcpConnection* conn = FindConnection(seg.dst, seg.src)) {
    conn->HandleSegment(seg);
    return;
  }

  // New inbound connection?
  if (seg.Has(kFlagSyn) && !seg.Has(kFlagAck)) {
    const auto it = listeners_.find(seg.dst.port);
    if (it != listeners_.end()) {
      auto conn = std::make_unique<TcpConnection>(*this, seg.dst, seg.src, /*inbound=*/true);
      TcpConnection* raw = conn.get();
      raw->rcv_next_ = seg.seq + 1;
      raw->on_connected = [raw, cb = it->second](bool ok) {
        if (ok) cb(*raw);
      };
      connections_.emplace(ConnKey{seg.dst, seg.src}, std::move(conn));
      // SYN|ACK reply.
      TcpSegment synack;
      synack.src = seg.dst;
      synack.dst = seg.src;
      synack.seq = raw->snd_next_;
      synack.ack = raw->rcv_next_;
      synack.flags = kFlagSyn | kFlagAck;
      ++raw->snd_next_;
      Transmit(std::move(synack));
      return;
    }
  }

  // No matching socket: perimeter firewalls drop silently; otherwise answer
  // RST (the stack behaviour that would break pre-connection Defamation).
  if (!drop_unsolicited && !seg.Has(kFlagRst)) {
    TcpSegment rst;
    rst.src = seg.dst;
    rst.dst = seg.src;
    rst.seq = seg.ack;
    rst.flags = kFlagRst;
    Transmit(std::move(rst));
  }
}

}  // namespace bsim
