#include "sim/tcp.hpp"

#include "util/log.hpp"

namespace bsim {

// ---------------------------------------------------------------------------
// TcpConnection

TcpConnection::TcpConnection(Host& host, Endpoint local, Endpoint remote, bool inbound)
    : host_(host),
      local_(local),
      remote_(remote),
      inbound_(inbound),
      state_(inbound ? State::kSynReceived : State::kSynSent) {
  // Deterministic ISN derived from the 4-tuple; real randomness is not
  // security-relevant here because the sniffing attacker reads sequence
  // numbers off the wire anyway.
  snd_next_ = (local_.ip ^ (local_.port * 2654435761u) ^ (remote_.ip >> 3)) | 1u;
}

void TcpConnection::StartHandshake() {
  TcpSegment syn;
  syn.src = local_;
  syn.dst = remote_;
  syn.seq = snd_next_;
  syn.flags = kFlagSyn;
  ++snd_next_;  // SYN consumes one sequence number
  host_.Transmit(std::move(syn));
}

bool TcpConnection::Reliable() const { return host_.Net().FaultsEnabled(); }

void TcpConnection::EmitSegment(std::uint8_t flags, bsutil::ByteSpan payload) {
  TcpSegment seg;
  seg.src = local_;
  seg.dst = remote_;
  seg.seq = snd_next_;
  seg.ack = rcv_next_;
  seg.flags = flags;
  seg.payload.assign(payload.begin(), payload.end());
  snd_next_ += static_cast<std::uint32_t>(payload.size());
  if (flags & kFlagFin) ++snd_next_;
  bytes_sent_ += payload.size();
  if (Reliable() && !seg.payload.empty()) {
    QueueForRetransmit(seg);
    if (state_ == State::kClosed) return;  // queue overflow aborted us
  }
  host_.Transmit(std::move(seg));
}

void TcpConnection::Send(bsutil::ByteSpan data) {
  if (state_ != State::kEstablished) return;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk = std::min(kMss, data.size() - offset);
    EmitSegment(kFlagPsh | kFlagAck, data.subspan(offset, chunk));
    if (state_ != State::kEstablished) return;  // aborted mid-stream
    offset += chunk;
  }
}

void TcpConnection::SetDataSink(std::function<void(bsutil::ByteSpan)> sink) {
  on_data = std::move(sink);
  if (!on_data || rx_pending_.empty()) return;
  bsutil::ByteVec drained;
  drained.swap(rx_pending_);
  on_data(drained);
}

void TcpConnection::DeliverData(bsutil::ByteSpan payload) {
  if (on_data) {
    on_data(payload);
    return;
  }
  // No sink attached yet: buffer up to the cap, shedding oldest on overflow
  // so a flooding peer cannot grow this connection's memory without bound.
  rx_pending_.insert(rx_pending_.end(), payload.begin(), payload.end());
  if (recv_buffer_cap_ > 0 && rx_pending_.size() > recv_buffer_cap_) {
    const std::size_t excess = rx_pending_.size() - recv_buffer_cap_;
    rx_pending_.erase(rx_pending_.begin(),
                      rx_pending_.begin() + static_cast<std::ptrdiff_t>(excess));
    rx_pending_shed_ += excess;
    host_.Net().NoteRxPendingShed(excess);
  }
}

// ---------------------------------------------------------------------------
// Reliable mode (active only while the network has a FaultPlan attached)

void TcpConnection::SendBareAck() { EmitSegment(kFlagAck, {}); }

void TcpConnection::HandleAck(std::uint32_t ack) {
  bool advanced = false;
  while (!retransmit_queue_.empty()) {
    const TcpSegment& front = retransmit_queue_.front();
    const std::uint32_t end =
        front.seq + static_cast<std::uint32_t>(front.payload.size());
    if (static_cast<std::int32_t>(ack - end) < 0) break;  // not fully acked
    retransmit_queue_bytes_ -= front.payload.size();
    retransmit_queue_.pop_front();
    advanced = true;
  }
  if (advanced) {
    retry_attempts_ = 0;
    dup_acks_ = 0;
    last_ack_seen_ = ack;
    return;
  }
  if (ack == last_ack_seen_ && !retransmit_queue_.empty()) {
    // Duplicate ACK: the receiver is dropping past a gap. Three in a row
    // trigger fast retransmit of everything outstanding (go-back-N).
    if (++dup_acks_ >= 3) {
      dup_acks_ = 0;
      RetransmitAll();
    }
    return;
  }
  last_ack_seen_ = ack;
  dup_acks_ = 0;
}

void TcpConnection::QueueForRetransmit(const TcpSegment& seg) {
  retransmit_queue_.push_back(seg);
  retransmit_queue_bytes_ += seg.payload.size();
  if (retransmit_queue_bytes_ > kMaxRetransmitQueueBytes) {
    Reset();  // the peer is not draining; abort instead of growing unbounded
    return;
  }
  ArmRetransmitTimer();
}

void TcpConnection::ArmRetransmitTimer() {
  if (rto_armed_) return;
  rto_armed_ = true;
  // Key-based lookup: the connection may have been destroyed by the time the
  // timer fires (same pattern as the SYN timeout in Host::ConnectFrom).
  Host* host = &host_;
  const Endpoint local = local_;
  const Endpoint remote = remote_;
  host_.Sched().After(kRetransmitTimeout, [host, local, remote]() {
    if (TcpConnection* conn = host->FindConnection(local, remote)) {
      conn->RetransmitTimerFired();
    }
  });
}

void TcpConnection::RetransmitTimerFired() {
  rto_armed_ = false;
  if (state_ != State::kEstablished || retransmit_queue_.empty()) return;
  ++retry_attempts_;
  if (retry_attempts_ > kMaxRetransmitAttempts) {
    Reset();  // peer unreachable past the retry budget
    return;
  }
  RetransmitAll();
  ArmRetransmitTimer();
}

void TcpConnection::RetransmitAll() {
  for (const TcpSegment& seg : retransmit_queue_) {
    TcpSegment copy = seg;
    copy.ack = rcv_next_;      // refresh the cumulative ACK
    copy.checksum_ok = true;   // a retransmission is a fresh frame
    ++retransmits_;
    host_.Net().NoteRetransmit();
    host_.Transmit(std::move(copy));
  }
}

void TcpConnection::Close() {
  if (state_ == State::kClosed) return;
  EmitSegment(kFlagFin | kFlagAck, {});
  BecomeClosed();
}

void TcpConnection::Reset() {
  if (state_ == State::kClosed) return;
  TcpSegment rst;
  rst.src = local_;
  rst.dst = remote_;
  rst.seq = snd_next_;
  rst.flags = kFlagRst;
  host_.Transmit(std::move(rst));
  BecomeClosed();
}

void TcpConnection::BecomeClosed() {
  if (state_ == State::kClosed) return;
  const State prior = state_;
  state_ = State::kClosed;
  if (prior != State::kEstablished && on_connected) on_connected(false);
  if (on_closed) on_closed();
  host_.ReleaseConnection(this);  // self-destructs; no member access after this
}

void TcpConnection::HandleSegment(const TcpSegment& seg) {
  if (state_ == State::kClosed) return;

  // Transport checksum gate: invalid segments vanish before any state or
  // payload processing. In reliable mode the retransmission timer recovers
  // the data, exactly as with loss.
  if (!seg.checksum_ok) {
    ++dropped_checksum_;
    host_.Net().NoteChecksumDrop();
    return;
  }

  if (seg.Has(kFlagRst)) {
    BecomeClosed();
    return;
  }

  switch (state_) {
    case State::kSynSent:
      if (seg.Has(kFlagSyn) && seg.Has(kFlagAck) && seg.ack == snd_next_) {
        rcv_next_ = seg.seq + 1;
        state_ = State::kEstablished;
        EmitSegment(kFlagAck, {});  // completes the three-way handshake
        if (on_connected) on_connected(true);
      }
      return;

    case State::kSynReceived:
      if (seg.Has(kFlagAck) && seg.ack == snd_next_ && !seg.Has(kFlagSyn)) {
        state_ = State::kEstablished;
        if (on_connected) on_connected(true);
        if (state_ != State::kEstablished) return;  // closed by the callback
        // Piggybacked data on the handshake-completing ACK falls through to
        // normal delivery below.
        if (!seg.payload.empty() && seg.seq == rcv_next_) {
          rcv_next_ += static_cast<std::uint32_t>(seg.payload.size());
          bytes_received_ += seg.payload.size();
          if (Reliable()) SendBareAck();
          DeliverData(seg.payload);
        } else if (Reliable() && !seg.payload.empty()) {
          ++dropped_out_of_order_;
          host_.Net().NoteOutOfOrderDrop();
          SendBareAck();  // duplicate ACK: tell the sender where we are
        }
      }
      return;

    case State::kEstablished: {
      if (seg.Has(kFlagFin)) {
        BecomeClosed();
        return;
      }
      if (Reliable() && seg.Has(kFlagAck)) {
        HandleAck(seg.ack);
        if (state_ != State::kEstablished) return;  // aborted by the ACK path
      }
      if (seg.payload.empty()) return;  // bare ACK
      const auto diff = static_cast<std::int32_t>(seg.seq - rcv_next_);
      if (Reliable() && diff < 0) {
        // Retransmitted copy of data we already delivered: re-ACK so the
        // sender's queue drains, but do not deliver twice.
        ++dropped_duplicate_;
        SendBareAck();
        return;
      }
      if (diff != 0) {
        // In-order-only receiver: anything off the expected sequence is
        // dropped. A spoofed injection that matches rcv_next_ is accepted
        // here exactly as if the real peer had sent it — and desynchronizes
        // the real peer's subsequent segments, which then land in this
        // branch. In reliable mode the duplicate ACK below makes the sender
        // go back and fill the gap.
        ++dropped_out_of_order_;
        host_.Net().NoteOutOfOrderDrop();
        if (Reliable()) SendBareAck();
        return;
      }
      rcv_next_ += static_cast<std::uint32_t>(seg.payload.size());
      bytes_received_ += seg.payload.size();
      if (Reliable()) SendBareAck();
      DeliverData(seg.payload);
      return;
    }

    case State::kClosed:
      return;
  }
}

// ---------------------------------------------------------------------------
// Host

Host::Host(Scheduler& sched, Network& net, std::uint32_t ip)
    : sched_(sched), net_(net), ip_(ip) {
  net_.Attach(this);
}

Host::~Host() { net_.Detach(this); }

void Host::Listen(std::uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
}

std::uint16_t Host::AllocEphemeralPort() {
  // 49152..65535, the dynamic range the paper's full-IP Defamation estimate
  // is computed over.
  const std::uint16_t port = next_ephemeral_;
  next_ephemeral_ = (next_ephemeral_ == 65535) ? 49152 : next_ephemeral_ + 1;
  return port;
}

TcpConnection* Host::Connect(Endpoint remote, std::function<void(bool)> on_connected) {
  return ConnectFrom(AllocEphemeralPort(), remote, std::move(on_connected));
}

TcpConnection* Host::ConnectFrom(std::uint16_t local_port, Endpoint remote,
                                 std::function<void(bool)> on_connected) {
  const Endpoint local{ip_, local_port};
  const ConnKey key{local, remote};
  if (connections_.contains(key)) return nullptr;  // identifier in use
  auto conn = std::make_unique<TcpConnection>(*this, local, remote, /*inbound=*/false);
  TcpConnection* raw = conn.get();
  raw->on_connected = std::move(on_connected);
  connections_.emplace(key, std::move(conn));
  raw->StartHandshake();
  // SYN timeout: a dial toward a dead or silently-dropping address must not
  // hang forever (outbound maintenance depends on the failure callback).
  sched_.After(kSynTimeout, [this, key]() {
    TcpConnection* pending = FindConnection(key.first, key.second);
    if (pending != nullptr && !pending->IsEstablished()) pending->Reset();
  });
  return raw;
}

TcpConnection* Host::FindConnection(const Endpoint& local, const Endpoint& remote) {
  const auto it = connections_.find(ConnKey{local, remote});
  return it == connections_.end() ? nullptr : it->second.get();
}

void Host::ReleaseConnection(TcpConnection* conn) {
  // Deferred so the connection can finish its current callback stack.
  const ConnKey key{conn->Local(), conn->Remote()};
  sched_.After(0, [this, key]() { connections_.erase(key); });
}

void Host::AbandonConnections() {
  // A crashed host goes silent: no FIN/RST, no close callbacks — peers only
  // find out through their own timeouts. Pending timer events resolve their
  // connections by key and become no-ops.
  connections_.clear();
  listeners_.clear();
}

void Host::Transmit(TcpSegment seg) { net_.SendSegment(*this, std::move(seg)); }

void Host::DeliverSegment(const TcpSegment& seg) {
  if (raw_segment_filter && raw_segment_filter(seg)) return;

  // Demultiplex: our local endpoint is the segment's destination.
  if (TcpConnection* conn = FindConnection(seg.dst, seg.src)) {
    conn->HandleSegment(seg);
    return;
  }

  // New inbound connection?
  if (seg.Has(kFlagSyn) && !seg.Has(kFlagAck)) {
    const auto it = listeners_.find(seg.dst.port);
    if (it != listeners_.end()) {
      auto conn = std::make_unique<TcpConnection>(*this, seg.dst, seg.src, /*inbound=*/true);
      TcpConnection* raw = conn.get();
      raw->rcv_next_ = seg.seq + 1;
      raw->on_connected = [raw, cb = it->second](bool ok) {
        if (ok) cb(*raw);
      };
      connections_.emplace(ConnKey{seg.dst, seg.src}, std::move(conn));
      // SYN|ACK reply.
      TcpSegment synack;
      synack.src = seg.dst;
      synack.dst = seg.src;
      synack.seq = raw->snd_next_;
      synack.ack = raw->rcv_next_;
      synack.flags = kFlagSyn | kFlagAck;
      ++raw->snd_next_;
      Transmit(std::move(synack));
      return;
    }
  }

  // No matching socket: perimeter firewalls drop silently; otherwise answer
  // RST (the stack behaviour that would break pre-connection Defamation).
  if (!drop_unsolicited && !seg.Has(kFlagRst)) {
    TcpSegment rst;
    rst.src = seg.dst;
    rst.dst = seg.src;
    rst.seq = seg.ack;
    rst.flags = kFlagRst;
    Transmit(std::move(rst));
  }
}

}  // namespace bsim
