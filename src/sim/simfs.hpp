// SimFs — a deterministic in-memory filesystem implementing the store's
// syscall surface (bsstore::StoreFs) with injectable faults, so every crash
// point of a journal/snapshot cycle is testable without real disks.
//
// The model mirrors what a kernel gives a real process:
//   * Written data is immediately visible to readers (the page cache) but
//     only durable up to each file's last Fsync watermark.
//   * Rename/Remove/MkDir are atomic metadata operations, applied durably
//     when they return (directory-entry journaling; the store's rename-based
//     snapshot protocol depends on exactly this).
//   * A *crash* stops the machine at a chosen mutating-syscall index: the
//     in-flight write is torn to a seed-deterministic prefix, every file's
//     unsynced tail is cut to a seed-deterministic prefix (possibly with a
//     bit flipped — dirty pages half-written by the dying kernel), and all
//     subsequent operations fail until Reboot().
//
// Fault knobs are keyed on the monotonically increasing mutating-op counter,
// so a test runs a scenario once fault-free to learn its op count, then
// replays it once per op index ("kill the store at every syscall") — the
// crash-point recovery sweep of tests/store_test.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "store/fs.hpp"
#include "util/rng.hpp"

namespace bsim {

/// Faults keyed on the mutating-op counter (-1 = never fire).
struct SimFsFaults {
  /// Machine dies executing this op (torn in-flight write, unsynced tails
  /// cut); every later op fails until Reboot().
  std::int64_t crash_at_op = -1;
  /// This op fails cleanly with nothing applied (ENOSPC / EIO); the fs
  /// keeps running.
  std::int64_t enospc_at_op = -1;
  /// This write applies only a seed-chosen prefix and reports failure.
  std::int64_t short_write_at_op = -1;
  /// This write applies fully and reports success, but one seed-chosen bit
  /// lands flipped (silent media corruption).
  std::int64_t flip_bit_at_op = -1;
  /// Drives torn lengths / bit positions; vary it to sweep different tears
  /// at the same crash point.
  std::uint64_t seed = 1;
};

class SimFs : public bsstore::StoreFs {
 public:
  explicit SimFs(std::uint64_t seed = 1) : rng_(seed) {}

  void SetFaults(const SimFsFaults& faults) {
    faults_ = faults;
    rng_.Seed(faults.seed);
  }

  /// Mutating syscalls executed so far (monotonic across reboots).
  std::uint64_t OpCount() const { return op_count_; }
  bool Crashed() const { return crashed_; }
  /// Bring the machine back up over the post-crash disk image: handles are
  /// gone, the crashed flag clears, pending faults stay armed as configured.
  void Reboot();

  // ---- Introspection for tests ----
  bool HasFile(const std::string& path) const { return files_.contains(path); }
  std::size_t FileSize(const std::string& path) const;
  std::size_t SyncedSize(const std::string& path) const;
  std::size_t FileCount() const { return files_.size(); }
  /// Corrupt one bit of a file in place (bit-rot injection for fsck tests).
  bool FlipBit(const std::string& path, std::size_t byte_index, int bit);
  /// Chop a file to `len` bytes in place (offline truncation injection).
  bool TruncateFile(const std::string& path, std::size_t len);

  // ---- bsstore::StoreFs ----
  bool Exists(const std::string& path) override;
  bool ReadFile(const std::string& path, bsutil::ByteVec& out) override;
  std::vector<std::string> ListDir(const std::string& dir) override;
  bool MkDir(const std::string& dir) override;
  int OpenWrite(const std::string& path, bool truncate) override;
  bool Write(int fd, bsutil::ByteSpan data) override;
  bool Fsync(int fd) override;
  void Close(int fd) override;
  bool Rename(const std::string& from, const std::string& to) override;
  bool Remove(const std::string& path) override;

 private:
  struct SimFile {
    bsutil::ByteVec data;       // page-cache view (what readers see now)
    std::size_t synced_len = 0; // durable watermark (survives a crash intact)
  };
  struct Handle {
    std::string path;
    bool valid = false;
  };

  /// Advance the op counter and classify the fault, if any, for this op.
  enum class OpFault { kNone, kCrash, kEnospc, kShortWrite, kFlipBit };
  OpFault NextOp();
  /// Stop the machine: cut every unsynced tail to a torn prefix (possibly
  /// flipping a bit inside it) and invalidate all handles.
  void CrashNow();

  bsutil::Rng rng_;
  SimFsFaults faults_;
  std::uint64_t op_count_ = 0;
  bool crashed_ = false;
  int next_fd_ = 1;
  std::map<std::string, SimFile> files_;
  std::set<std::string> dirs_;
  std::map<int, Handle> handles_;
};

}  // namespace bsim
