// Deterministic discrete-event scheduler. Events at equal timestamps run in
// scheduling order (a monotonic sequence number breaks ties), so runs are
// fully reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/time.hpp"

namespace bsim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  SimTime Now() const { return now_; }

  /// Publish scheduler health into `registry`: events executed, pending
  /// queue depth, the sim clock, and wall-clock seconds since attach (the
  /// sim-vs-wall gauge pair gives the simulation speedup factor).
  void AttachMetrics(bsobs::MetricsRegistry& registry);

  /// Refresh the sampled gauges (wall clock, queue depth/peak) so a metrics
  /// snapshot taken between events is exact rather than up to 1024 events
  /// stale.
  void SyncMetrics();

  /// Attach a hot-path profiler; every dispatched callback is then timed
  /// under HotStage::kDispatch. nullptr detaches (the default: Step() pays
  /// one pointer test).
  void SetProfiler(bsobs::HotpathProfiler* profiler) { profiler_ = profiler; }

  /// Schedule `fn` at absolute time `t` (clamped to now when in the past).
  void At(SimTime t, Callback fn);
  /// Schedule `fn` `dt` after the current time.
  void After(SimTime dt, Callback fn) { At(now_ + dt, std::move(fn)); }

  /// Run the earliest event. Returns false when the queue is empty.
  bool Step();
  /// Run events until the queue is drained or `t` is reached; the clock ends
  /// at exactly `t` if the queue drained earlier.
  void RunUntil(SimTime t);
  /// Drain the queue completely.
  void RunAll();

  std::size_t PendingEvents() const { return queue_.size(); }
  /// Time of the earliest pending event, or -1 when the queue is empty.
  /// Lets a real-time driver (core/event_loop) sleep exactly until the
  /// next timer instead of polling.
  SimTime NextEventTime() const { return queue_.empty() ? -1 : queue_.top().time; }
  std::uint64_t ExecutedEvents() const { return executed_; }
  std::size_t PeakPendingEvents() const { return peak_pending_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;

  // Observability handles (null until AttachMetrics; Step() stays one branch
  // when unattached).
  bsobs::Counter* m_events_total_ = nullptr;
  bsobs::Counter* m_events_dispatched_ = nullptr;
  bsobs::Gauge* m_sim_time_seconds_ = nullptr;
  bsobs::Gauge* m_wall_seconds_ = nullptr;
  bsobs::Gauge* m_pending_events_ = nullptr;
  bsobs::Gauge* m_queue_depth_ = nullptr;
  bsobs::Gauge* m_queue_depth_peak_ = nullptr;
  bsobs::HotpathProfiler* profiler_ = nullptr;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace bsim
