// Simulated LAN segment (broadcast domain) carrying TCP-like segments and
// ICMP packets between hosts.
//
// The fabric provides exactly the primitives the paper's threat models need:
//   * promiscuous sniffing — any attached tap observes every segment on the
//     wire, including seq/ack numbers (the post-connection Defamation
//     prerequisite, §IV-A);
//   * spoofed injection — a host may emit segments whose source endpoint is
//     not its own (IP spoofing); the `block_spoofed_egress` switch models the
//     ISP/AS ingress-filtering countermeasure discussed in the paper;
//   * shared egress bandwidth — all of a host's connections serialize
//     through one NIC, which is what bandwidth-limits multi-Sybil bogus-BLOCK
//     flooding in Fig. 6;
//   * per-destination byte accounting for the "Bandwidth DoSed" column of
//     Table III.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/netaddr.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"

namespace bsim {

using bsproto::Endpoint;

/// TCP flag bits.
enum TcpFlags : std::uint8_t {
  kFlagSyn = 1,
  kFlagAck = 2,
  kFlagFin = 4,
  kFlagRst = 8,
  kFlagPsh = 16,
};

struct TcpSegment {
  Endpoint src;
  Endpoint dst;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  /// Transport-layer checksum modelled as a validity bit; segments with a
  /// bad checksum are dropped by the receiving TCP before any payload
  /// processing (one of the BM-DoS "forgoing ban score" paths).
  bool checksum_ok = true;
  bsutil::ByteVec payload;

  bool Has(TcpFlags f) const { return (flags & f) != 0; }
};

struct IcmpPacket {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::size_t size = 64;  // ICMP payload bytes
};

/// Link-layer framing overheads used for bandwidth accounting.
constexpr std::size_t kTcpFrameOverhead = 54;   // Ethernet+IP+TCP headers
constexpr std::size_t kIcmpFrameOverhead = 42;  // Ethernet+IP+ICMP headers

struct NetworkConfig {
  SimTime latency = 200 * kMicrosecond;        // one-way propagation
  double bandwidth_bytes_per_sec = 125.0e6;    // 1 Gbps per-host egress
  /// Model ISP/AS ingress filtering: when true, segments whose source IP is
  /// not the sender's are silently dropped (defeats spoofing attacks).
  bool block_spoofed_egress = false;
};

class Host;
class FaultPlan;

class Network {
 public:
  Network(Scheduler& sched, NetworkConfig config = {});

  Scheduler& Sched() { return sched_; }
  const NetworkConfig& Config() const { return config_; }

  /// Attach a fault-injection plan (see sim/faults.hpp); nullptr detaches.
  /// Every transmitted segment is judged by the plan, and the TCP layer
  /// switches into reliable-delivery mode (ACK + retransmit) so end-to-end
  /// sessions survive the injected loss. With no plan attached the wire is
  /// lossless and the legacy no-ACK TCP behaviour is bit-identical.
  void SetFaultPlan(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* Faults() { return faults_; }
  bool FaultsEnabled() const { return faults_ != nullptr; }

  /// Register a host; its IP must be unique on this segment.
  void Attach(Host* host);
  void Detach(Host* host);

  /// Transmit a segment from `from`. The segment's source endpoint may be
  /// spoofed (unless the network blocks spoofed egress). Transmission
  /// occupies the sender's egress link for the frame duration, then arrives
  /// at the destination host after the propagation latency. Sniffers see the
  /// segment at transmission time.
  void SendSegment(Host& from, TcpSegment seg);

  void SendIcmp(Host& from, IcmpPacket pkt);

  /// Aggregated ICMP delivery: one event carrying `count` identical packets.
  /// Used by high-rate flooders (1e4..1e6 pkt/s) where per-packet events
  /// would dominate simulation cost; semantically equivalent for our
  /// rate-based kernel cost model.
  void SendIcmpBatch(Host& from, IcmpPacket pkt, std::uint64_t count);

  /// Promiscuous tap: sees every segment put on the wire.
  using Sniffer = std::function<void(const TcpSegment&, SimTime)>;
  void AddSniffer(Sniffer sniffer) { sniffers_.push_back(std::move(sniffer)); }

  /// Bytes (including frame overhead) delivered to `ip` since the last
  /// ResetByteCounters() call.
  std::uint64_t BytesDeliveredTo(std::uint32_t ip) const;
  void ResetByteCounters() { bytes_to_.clear(); }

  std::uint64_t SegmentsSent() const { return segments_sent_; }
  std::uint64_t SegmentsDroppedSpoofed() const { return dropped_spoofed_; }
  /// Network-wide aggregates of the per-connection TCP drop counters.
  std::uint64_t SegmentsDroppedChecksum() const { return dropped_checksum_; }
  std::uint64_t SegmentsDroppedOutOfOrder() const { return dropped_out_of_order_; }
  std::uint64_t SegmentsRetransmitted() const { return retransmits_; }
  std::uint64_t RxPendingShedBytes() const { return rx_pending_shed_bytes_; }

  /// Publish the wire counters into `registry` (bs_sim_segments_* series),
  /// so fault-plane and TCP drops appear in --json bench exports and
  /// dump-metrics alongside the node counters.
  void AttachMetrics(bsobs::MetricsRegistry& registry);

  // Internal: aggregation sinks for TcpConnection drop/retransmit accounting.
  void NoteChecksumDrop();
  void NoteOutOfOrderDrop();
  void NoteRetransmit();
  void NoteRxPendingShed(std::size_t bytes);

 private:
  /// Reserve the sender's egress link for `frame_bytes`; returns when the
  /// last bit leaves the NIC.
  SimTime ReserveEgress(std::uint32_t sender_ip, std::size_t frame_bytes);
  void ScheduleDelivery(TcpSegment seg, std::size_t frame_bytes, SimTime arrival);

  Scheduler& sched_;
  NetworkConfig config_;
  FaultPlan* faults_ = nullptr;
  std::unordered_map<std::uint32_t, Host*> hosts_;
  std::unordered_map<std::uint32_t, SimTime> egress_free_at_;
  std::unordered_map<std::uint32_t, std::uint64_t> bytes_to_;
  std::vector<Sniffer> sniffers_;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t dropped_spoofed_ = 0;
  std::uint64_t dropped_checksum_ = 0;
  std::uint64_t dropped_out_of_order_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t rx_pending_shed_bytes_ = 0;

  // Observability handles (null until AttachMetrics).
  bsobs::Counter* m_segments_sent_ = nullptr;
  bsobs::Counter* m_dropped_spoofed_ = nullptr;
  bsobs::Counter* m_dropped_checksum_ = nullptr;
  bsobs::Counter* m_dropped_out_of_order_ = nullptr;
  bsobs::Counter* m_retransmits_ = nullptr;
  bsobs::Counter* m_rx_pending_shed_bytes_ = nullptr;
};

}  // namespace bsim
