// Transport-seam flood bench: the same frame flood pushed through both
// Transport backends —
//
//   sim:   SimTransport over the discrete-event Network (the paper-bench
//          substrate),
//   real:  RealTransport over epoll + loopback kernel sockets,
//
// with a StreamDecoder on the receiving side reassembling the byte stream
// back into frames. BENCH_transport.json carries the deterministic counters
// (frames/bytes delivered — every frame MUST arrive; the bench aborts on
// loss, so the tight bench-diff gate pins them) and the loose timing fields
// (wall seconds, frames/sec, ns/frame) that vary by machine.
//
// Flags: --json <path>   machine-readable report
//        --frames N      frames per flood (default 5000)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/event_loop.hpp"
#include "core/real_transport.hpp"
#include "core/sim_transport.hpp"
#include "proto/codec.hpp"
#include "proto/messages.hpp"
#include "sim/network.hpp"

namespace {

using bsnet::Transport;
using bsnet::TransportConn;

constexpr std::uint64_t kSeed = 42;
constexpr std::uint32_t kLoopback = 0x7f000001;
constexpr std::uint16_t kSimPort = 8333;
constexpr std::uint32_t kMagic = 0xd9b4bef9;  // mainnet wire magic

struct FloodResult {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  double wall_sec = 0.0;
};

bsutil::ByteVec PingFrame() {
  bsproto::PingMsg ping;
  ping.nonce = kSeed;
  return bsproto::EncodeMessage(kMagic, bsproto::Message{ping});
}

/// Pushes `frames` copies of one ping frame through an established conn and
/// drives `pump` until the receiving StreamDecoder has reassembled them all.
FloodResult Flood(TransportConn& sender, bsproto::StreamDecoder& decoder,
                  int frames, const std::function<void()>& pump) {
  const bsutil::ByteVec frame = PingFrame();
  FloodResult result;
  result.wall_sec = bsbench::TimeSeconds([&] {
    for (int i = 0; i < frames; ++i) sender.Send(frame);
    while (decoder.FramesDecoded() < static_cast<std::uint64_t>(frames)) {
      pump();
      bsproto::DecodeResult r;
      while (decoder.Next(r)) {
      }
    }
  });
  result.frames = decoder.FramesDecoded();
  result.bytes = result.frames * frame.size();
  return result;
}

FloodResult SimFlood(int frames) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsnet::SimTransport ta(sched, net, 0x0a000001);
  bsnet::SimTransport tb(sched, net, 0x0a000002);

  bsproto::StreamDecoder decoder(kMagic);
  tb.Listen(kSimPort, [&](TransportConn& conn) {
    conn.SetDataSink([&](bsutil::ByteSpan data) { decoder.Feed(data); });
  });

  TransportConn* conn = ta.Connect({0x0a000002, kSimPort});
  if (conn == nullptr) return {};
  bool established = false;
  conn->on_connected = [&](bool ok) { established = ok; };
  while (!established) sched.Step();
  return Flood(*conn, decoder, frames, [&] { sched.Step(); });
}

FloodResult RealFlood(int frames) {
  bsim::Scheduler sched;
  bsnet::EventLoop loop(sched);
  bsim::RealSocketApi& api = bsim::RealSocketApi::Instance();

  bsnet::RealTransportConfig cfg;
  cfg.bind_port = 0;  // kernel-assigned; floods never collide across runs
  bsnet::RealTransport ta(loop, api, cfg);
  bsnet::RealTransport tb(loop, api, cfg);

  bsproto::StreamDecoder decoder(kMagic);
  tb.Listen(0, [&](TransportConn& conn) {
    conn.SetDataSink([&](bsutil::ByteSpan data) { decoder.Feed(data); });
  });
  if (tb.LastListenError() != 0) return {};

  TransportConn* conn = ta.Connect({kLoopback, tb.BoundPort(0)});
  if (conn == nullptr) return {};
  bool established = false;
  conn->on_connected = [&](bool ok) { established = ok; };
  while (!established) loop.PumpOnce(10);
  return Flood(*conn, decoder, frames, [&] { loop.PumpOnce(10); });
}

void Report(const char* label, const FloodResult& r, int frames,
            bsbench::JsonReport& report) {
  std::printf("%-5s %8llu frames  %10llu bytes  %8.4f s  %10.0f frames/s\n",
              label, static_cast<unsigned long long>(r.frames),
              static_cast<unsigned long long>(r.bytes), r.wall_sec,
              r.wall_sec > 0 ? static_cast<double>(r.frames) / r.wall_sec : 0.0);
  const std::string prefix = label;
  report.Add(prefix + "_frames_delivered", r.frames);
  report.Add(prefix + "_bytes_delivered", r.bytes);
  report.Add(prefix + "_flood_wall_sec", r.wall_sec);
  report.Add(prefix + "_frames_per_sec",
             r.wall_sec > 0 ? static_cast<double>(r.frames) / r.wall_sec : 0.0);
  report.Add(prefix + "_ns_per_frame",
             r.frames > 0 ? r.wall_sec * 1e9 / static_cast<double>(r.frames)
                          : 0.0);
  if (r.frames != static_cast<std::uint64_t>(frames)) {
    std::fprintf(stderr, "FAIL: %s flood delivered %llu of %d frames\n", label,
                 static_cast<unsigned long long>(r.frames), frames);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  int frames = 5000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0) frames = std::atoi(argv[i + 1]);
  }

  bsbench::PrintTitle("transport flood: SimTransport vs RealTransport (" +
                      std::to_string(frames) + " frames)");
  bsbench::JsonReport report("transport");
  report.SetSeed(kSeed);
  report.Add("frames_requested", frames);
  report.Add("frame_size_bytes", static_cast<std::uint64_t>(PingFrame().size()));

  Report("sim", SimFlood(frames), frames, report);
  Report("real", RealFlood(frames), frames, report);

  if (!report.WriteTo(json_path)) return 1;
  return 0;
}
