// Table I reproduction: the ban-score rules of Bitcoin Core 0.20.0 / 0.21.0 /
// 0.22.0, printed from the implemented rule sets, then verified LIVE — every
// 0.20.0 rule is triggered against a running node with a crafted misbehaving
// message and the observed score increment is compared to the table.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"
#include "core/rules.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;

std::string ScoreCell(CoreVersion v, Misbehavior what) {
  const auto rule = GetRule(v, what);
  if (!rule) return "-";
  return std::to_string(rule->score);
}

void PrintStaticTable() {
  bsbench::PrintSection(
      "Table I — ban-score rules (0.20.0 vs 0.21.0 vs 0.22.0), from the rule sets");
  std::printf("%-12s | %-42s | %5s | %5s | %5s | %-13s | %-9s\n", "Message", "Misbehavior",
              "'20", "'21", "'22", "Object of Ban", "Type");
  bsbench::PrintRule();
  for (const RuleInfo& rule : RulesFor(CoreVersion::kV0_20)) {
    if (!rule.in_paper_table) continue;
    std::printf("%-12s | %-42s | %5s | %5s | %5s | %-13s | %-9s\n", rule.message_type,
                rule.description, ScoreCell(CoreVersion::kV0_20, rule.what).c_str(),
                ScoreCell(CoreVersion::kV0_21, rule.what).c_str(),
                ScoreCell(CoreVersion::kV0_22, rule.what).c_str(), ToString(rule.scope),
                ToString(rule.cls));
  }
  // Rules deprecated after 0.20 do not appear in RulesFor(kV0_20)... they do;
  // but rules absent from 0.20 entirely would be missed — there are none.
}

/// Live verification harness: one fresh session per rule, observe the score.
struct LiveVerifier {
  LiveVerifier()
      : net(sched), node(sched, net, 0x0a000001, NodeConfig{}),
        attacker(sched, net, 0x0a000002, NodeConfig{}.chain.magic),
        crafter(NodeConfig{}.chain) {
    node.Start();
  }

  AttackSession* Ready(bool auto_handshake = true) {
    AttackSession* s = attacker.OpenSession({0x0a000001, 8333}, auto_handshake);
    sched.RunUntil(sched.Now() + bsim::kSecond);
    return s;
  }

  void Settle() { sched.RunUntil(sched.Now() + bsim::kSecond); }

  int ObserveScore(AttackSession* s) {
    if (Peer* peer = node.FindPeerByRemote(s->local)) return node.Tracker().Score(peer->id);
    // Peer destroyed == banned at threshold; report the threshold.
    return node.Bans().IsBanned(s->local, sched.Now()) ? node.Config().ban_threshold : 0;
  }

  bsim::Scheduler sched;
  bsim::Network net;
  Node node;
  AttackerNode attacker;
  Crafter crafter;
};

void PrintLiveVerification(bsbench::JsonReport& report) {
  bsbench::PrintSection(
      "Live verification on Core 0.20.0 rule set (crafted message -> observed score)");
  std::printf("%-44s | %8s | %8s | %s\n", "Rule", "expected", "observed", "verdict");
  bsbench::PrintRule();

  LiveVerifier v;
  int passed = 0, total = 0;
  auto check = [&](const char* name, int expected, int observed) {
    ++total;
    const bool ok = expected == observed;
    passed += ok ? 1 : 0;
    std::printf("%-44s | %8d | %8d | %s\n", name, expected, observed,
                ok ? "MATCH" : "MISMATCH");
  };

  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.MutatedBlock(v.node.Chain().TipHash()));
    v.Settle();
    check("BLOCK: block data was mutated", 100, v.ObserveScore(s));
  }
  {
    // Cached-invalid is outbound-scoped: an inbound re-offer must score 0.
    const auto bad = v.crafter.MutatedBlock(v.node.Chain().TipHash());
    auto* first = v.Ready();
    v.attacker.Send(*first, bad);
    v.Settle();
    auto* s = v.Ready();
    v.attacker.Send(*s, bad);
    v.Settle();
    check("BLOCK: cached as invalid (inbound => exempt)", 0, v.ObserveScore(s));
  }
  {
    const auto bad = v.crafter.MutatedBlock(v.node.Chain().TipHash());
    auto* feeder = v.Ready();
    v.attacker.Send(*feeder, bad);
    v.Settle();
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.ChildOf(bad.block.Hash()));
    v.Settle();
    check("BLOCK: previous block is invalid", 100, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.PrevMissingBlock());
    v.Settle();
    check("BLOCK: previous block is missing", 10, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.SegwitInvalidTx());
    v.Settle();
    check("TX: invalid by SegWit consensus rules", 100, v.ObserveScore(s));
  }
  {
    const auto valid = v.crafter.ValidBlock(v.node.Chain().TipHash());
    auto* feeder = v.Ready();
    v.attacker.Send(*feeder, valid);
    v.Settle();
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.OutOfBoundsGetBlockTxn(valid.block.Hash(),
                                                          valid.block.txs.size()));
    v.Settle();
    check("GETBLOCKTXN: out-of-bounds tx indices", 100, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    for (int i = 0; i < 10; ++i) v.attacker.Send(*s, v.crafter.NonConnectingHeaders());
    v.Settle();
    check("HEADERS: 10 non-connecting headers", 20, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.NonContinuousHeaders());
    v.Settle();
    check("HEADERS: non-continuous sequence", 20, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.OversizeHeaders());
    v.Settle();
    check("HEADERS: more than 2000 headers", 20, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.OversizeAddr());
    v.Settle();
    check("ADDR: more than 1000 addresses", 20, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.OversizeInv());
    v.Settle();
    check("INV: more than 50000 inventory entries", 20, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.OversizeGetData());
    v.Settle();
    check("GETDATA: more than 50000 inventory entries", 20, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.InvalidCompactBlock(v.node.Chain().TipHash()));
    v.Settle();
    check("CMPCTBLOCK: invalid compact block data", 100, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.OversizeFilterLoad());
    v.Settle();
    check("FILTERLOAD: bloom filter > 36000 bytes", 100, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, v.crafter.OversizeFilterAdd());
    v.Settle();
    check("FILTERADD: data item > 520 bytes", 100, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    bsproto::FilterAddMsg msg;
    msg.data = {0x01};
    v.attacker.Send(*s, msg);
    v.Settle();
    check("FILTERADD: protocol version >= 70011", 100, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready();
    v.attacker.Send(*s, bsproto::VersionMsg{});
    v.Settle();
    check("VERSION: duplicate VERSION", 1, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready(/*auto_handshake=*/false);
    v.attacker.Send(*s, bsproto::PingMsg{1});
    v.Settle();
    check("VERSION: message before VERSION", 1, v.ObserveScore(s));
  }
  {
    auto* s = v.Ready(/*auto_handshake=*/false);
    v.attacker.Send(*s, bsproto::VersionMsg{});
    v.Settle();
    v.attacker.Send(*s, bsproto::PingMsg{1});
    v.Settle();
    check("VERACK: message before VERACK", 1, v.ObserveScore(s));
  }

  bsbench::PrintRule();
  std::printf("live verification: %d/%d rules match Table I\n", passed, total);
  report.Add("live_rules_passed", passed);
  report.Add("live_rules_total", total);
}

void PrintCoverage(bsbench::JsonReport& report) {
  bsbench::PrintSection("Message-type coverage (the basis of BM-DoS vector 1)");
  std::vector<std::string> with_rules;
  for (const RuleInfo& rule : RulesFor(CoreVersion::kV0_20)) {
    if (!rule.in_paper_table) continue;
    if (std::find(with_rules.begin(), with_rules.end(), rule.message_type) ==
        with_rules.end()) {
      with_rules.push_back(rule.message_type);
    }
  }
  std::printf("message types with ban-score rules in 0.20.0: %zu of %zu\n",
              with_rules.size(), bsproto::kNumPaperMsgTypes);
  std::printf("(paper: \"only 12 out of 26 message types possess ban-score rules\")\n");
  report.Add("types_with_rules", static_cast<std::uint64_t>(with_rules.size()));
  report.Add("types_total", static_cast<std::uint64_t>(bsproto::kNumPaperMsgTypes));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle(
      "bench_table1_rules — Table I: the ban-score rules of Bitcoin Core");
  bsbench::JsonReport report("bench_table1_rules");
  report.SetSeed(42);  // NodeConfig default; every node derives from it
  PrintStaticTable();
  PrintLiveVerification(report);
  PrintCoverage(report);
  report.WriteTo(json_path);
  return 0;
}
