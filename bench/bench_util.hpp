// Shared helpers for the benchmark harnesses: fixed-width table printing and
// simple wall-clock timing.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace bsbench {

inline void PrintRule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

inline void PrintSection(const std::string& title) {
  std::printf("\n");
  PrintRule('-');
  std::printf("%s\n", title.c_str());
  PrintRule('-');
}

/// Wall time of `fn` in seconds.
inline double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Median-of-repeats nanoseconds per call of `fn`, amortized over
/// `inner_iterations` calls per repeat.
inline double TimeNsPerCall(const std::function<void()>& fn, int inner_iterations = 100,
                            int repeats = 5) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const double sec = TimeSeconds([&]() {
      for (int i = 0; i < inner_iterations; ++i) fn();
    });
    samples.push_back(sec * 1e9 / inner_iterations);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace bsbench
