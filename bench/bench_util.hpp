// Shared helpers for the benchmark harnesses: fixed-width table printing,
// simple wall-clock timing, and the `--json <path>` machine-readable report
// every bench binary supports (bsobs metrics snapshot + bench-specific
// results).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace bsbench {

inline void PrintRule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

inline void PrintSection(const std::string& title) {
  std::printf("\n");
  PrintRule('-');
  std::printf("%s\n", title.c_str());
  PrintRule('-');
}

/// Wall time of `fn` in seconds.
inline double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Per-call timing distribution over the repeat samples.
struct CallTiming {
  double min_ns = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
};

/// Nanoseconds per call of `fn`, amortized over `inner_iterations` calls per
/// repeat; min/p50/p90 taken across the repeats (min and the spread together
/// expose scheduler noise that a lone median hides).
inline CallTiming TimeNsPerCallStats(const std::function<void()>& fn,
                                     int inner_iterations = 100, int repeats = 5) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const double sec = TimeSeconds([&]() {
      for (int i = 0; i < inner_iterations; ++i) fn();
    });
    samples.push_back(sec * 1e9 / inner_iterations);
  }
  std::sort(samples.begin(), samples.end());
  CallTiming t;
  t.min_ns = bsutil::Summarize(samples).min;
  t.p50_ns = samples[samples.size() / 2];
  t.p90_ns = samples[(samples.size() * 9) / 10];
  return t;
}

/// Median-of-repeats nanoseconds per call (historical scalar API).
inline double TimeNsPerCall(const std::function<void()>& fn, int inner_iterations = 100,
                            int repeats = 5) {
  return TimeNsPerCallStats(fn, inner_iterations, repeats).p50_ns;
}

// ---------------------------------------------------------------------------
// --json reporting

/// Strip a `--json <path>` flag from argv (so google-benchmark's own flag
/// parsing never sees it) and return the path, or "" when absent.
inline std::string TakeJsonFlag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json" && r + 1 < argc) {
      path = argv[++r];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  argv[argc] = nullptr;
  return path;
}

/// BENCH_*.json schema identity. Every report self-describes with
/// `"schema":"bsbench-report"` and a version, and carries the RNG seed the
/// run used; `banscore-lab bench-diff` refuses to compare reports whose
/// schema/version/bench/seed identities disagree, instead of silently
/// diffing apples against oranges. Bump the version whenever the meaning of
/// an existing field changes (adding fields is backward compatible).
inline constexpr const char* kReportSchema = "bsbench-report";
inline constexpr int kReportSchemaVersion = 1;

/// Accumulates bench results as JSON fields and writes one object per file:
///   {"bench":"<name>","schema":"bsbench-report","schema_version":1,
///    "seed":<n>,"results":{...},"metrics":{...}}
/// `metrics` is the bsobs registry snapshot (counters/gauges/histograms).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  /// Record the RNG seed that parameterized the run (emitted as a top-level
  /// field so bench-diff can refuse cross-seed comparisons of deterministic
  /// counters).
  void SetSeed(std::uint64_t seed) {
    seed_ = seed;
    has_seed_ = true;
  }

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + bsutil::JsonEscape(value) + "\"");
  }
  /// `raw` must already be valid JSON (object/array/number).
  void AddRaw(const std::string& key, const std::string& raw) {
    fields_.emplace_back(key, raw);
  }
  void Add(const std::string& key, const CallTiming& t) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "{\"min_ns\":%.10g,\"p50_ns\":%.10g,\"p90_ns\":%.10g}",
                  t.min_ns, t.p50_ns, t.p90_ns);
    fields_.emplace_back(key, buf);
  }

  void AttachRegistry(const bsobs::MetricsRegistry& registry) { registry_ = &registry; }

  /// Render the full report object.
  std::string Render() const {
    std::string out = "{\"bench\":\"" + bsutil::JsonEscape(bench_name_) + "\"";
    out += ",\"schema\":\"" + std::string(kReportSchema) + "\"";
    out += ",\"schema_version\":" + std::to_string(kReportSchemaVersion);
    if (has_seed_) out += ",\"seed\":" + std::to_string(seed_);
    out += ",\"results\":{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + bsutil::JsonEscape(fields_[i].first) + "\":" + fields_[i].second;
    }
    out += "}";
    if (registry_ != nullptr) out += ",\"metrics\":" + registry_->RenderJson();
    out += "}\n";
    return out;
  }

  /// Write the report to `path` ("" = no-op success; "-" = stdout). Returns
  /// false (with a logged reason) on I/O failure.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    const std::string body = Render();
    if (path == "-") {
      std::fwrite(body.data(), 1, body.size(), stdout);
      return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      bsutil::Log(bsutil::LogLevel::kError, "bench",
                  "cannot open json report '", path, "'");
      return false;
    }
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    std::printf("\njson report written to %s\n", path.c_str());
    return ok;
  }

 private:
  std::string bench_name_;
  std::uint64_t seed_ = 0;
  bool has_seed_ = false;
  std::vector<std::pair<std::string, std::string>> fields_;
  const bsobs::MetricsRegistry* registry_ = nullptr;
};

}  // namespace bsbench
