// Table II reproduction: impact-cost ratio per message type.
//
// The paper measures, on Bitcoin Core 0.20.0, the attacker's CPU cost to
// craft each message type and the victim's CPU cost to process it, then
// reports the ratio. We measure the same two quantities on OUR
// implementation (craft = build + serialize + frame; process = decode +
// checksum + type-specific validation/handling work) and print them next to
// the paper's numbers. Absolute values differ (different code, different
// machine); the claim under reproduction is the SHAPE: BLOCK/CMPCTBLOCK/
// BLOCKTXN processing dominates by orders of magnitude, so BLOCK is the
// best flooding payload. google-benchmark micro-benchmarks for the key
// payloads run afterwards for rigor.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <optional>
#include <string>

#include "attack/bmdos.hpp"
#include "attack/crafter.hpp"
#include "bench_util.hpp"
#include "chain/chainstate.hpp"
#include "chain/mempool.hpp"
#include "core/costmodel.hpp"
#include "core/node.hpp"
#include "obs/metrics.hpp"
#include "proto/codec.hpp"
#include "proto/compact.hpp"
#include "util/rng.hpp"

namespace {

using namespace bsproto;  // NOLINT
using bsattack::Crafter;
using bsutil::ByteVec;

const bschain::ChainParams kParams{};
const std::uint32_t kMagic = kParams.magic;

/// Per-type sample payloads comparable to the paper's "default" messages.
struct Sample {
  std::function<Message()> craft;                 // attacker-side construction
  std::function<void(const Message&)> process;    // victim-side app processing
};

bscrypto::Hash256 RandHash(bsutil::Rng& rng) {
  bscrypto::Hash256 h;
  for (int i = 0; i < 32; ++i) h.Data()[i] = static_cast<std::uint8_t>(rng.Next());
  return h;
}

/// A realistic 250-tx block for the BLOCK/CMPCTBLOCK/BLOCKTXN rows.
bschain::Block MakeBigBlock() {
  Crafter crafter(kParams, 11);
  bsutil::Rng rng(13);
  std::vector<bschain::Transaction> txs;
  for (int i = 0; i < 250; ++i) txs.push_back(crafter.ValidTx().tx);
  bschain::Block tmpl = bschain::BuildBlockTemplate(kParams.GenesisBlock().Hash(),
                                                    1'600'000'900, txs, kParams, 500);
  return *bschain::MineBlock(std::move(tmpl), kParams);
}

std::map<MsgType, Sample> BuildSamples() {
  // Shared state captured by the lambdas; long-lived for the whole run.
  static bsutil::Rng rng(101);
  static Crafter crafter(kParams, 103);
  static const bschain::Block big_block = MakeBigBlock();
  static const CmpctBlockMsg compact = BuildCompactBlock(big_block, 777);
  static bschain::ChainState chain(kParams);
  static bschain::Mempool mempool;
  static std::uint64_t nonce = 1;

  std::map<MsgType, Sample> samples;

  samples[MsgType::kVersion] = {
      []() { return Message{VersionMsg{}}; },
      [](const Message&) { /* handshake bookkeeping only */ }};
  samples[MsgType::kVerack] = {[]() { return Message{VerackMsg{}}; },
                               [](const Message&) {}};
  samples[MsgType::kAddr] = {
      []() {
        AddrMsg m;
        m.addresses.resize(1000);  // a full ADDR, as nodes send after GETADDR
        for (std::size_t i = 0; i < m.addresses.size(); ++i) {
          m.addresses[i].addr.endpoint = {static_cast<std::uint32_t>(i), 8333};
        }
        return Message{m};
      },
      [](const Message&) {}};
  samples[MsgType::kInv] = {
      []() {
        InvMsg m;
        m.inventory.resize(1000);
        for (auto& item : m.inventory) {
          item.type = InvType::kTx;
          item.hash = RandHash(rng);
        }
        return Message{m};
      },
      [](const Message& m) {
        // Victim checks each hash against its mempool.
        for (const auto& item : std::get<InvMsg>(m).inventory) {
          benchmark::DoNotOptimize(mempool.Contains(item.hash));
        }
      }};
  samples[MsgType::kGetData] = {
      []() {
        GetDataMsg m;
        m.inventory.resize(1000);
        for (auto& item : m.inventory) {
          item.type = InvType::kTx;
          item.hash = RandHash(rng);
        }
        return Message{m};
      },
      [](const Message& m) {
        for (const auto& item : std::get<GetDataMsg>(m).inventory) {
          benchmark::DoNotOptimize(mempool.Get(item.hash));
        }
      }};
  samples[MsgType::kGetHeaders] = {
      []() {
        GetHeadersMsg m;
        m.locator.push_back(RandHash(rng));
        return Message{m};
      },
      [](const Message& m) {
        benchmark::DoNotOptimize(
            chain.HeadersAfter(std::get<GetHeadersMsg>(m).locator[0], 2000));
      }};
  samples[MsgType::kTx] = {
      []() { return Message{crafter.ValidTx()}; },
      [](const Message& m) {
        benchmark::DoNotOptimize(
            bschain::CheckTransaction(std::get<TxMsg>(m).tx));
        benchmark::DoNotOptimize(std::get<TxMsg>(m).tx.Txid());
      }};
  samples[MsgType::kHeaders] = {
      []() {
        HeadersMsg m;
        bschain::BlockHeader h;
        h.prev = RandHash(rng);
        h.bits = kParams.target_bits;
        m.headers.push_back(h);
        return Message{m};
      },
      [](const Message& m) {
        benchmark::DoNotOptimize(std::get<HeadersMsg>(m).headers[0].Hash());
      }};
  samples[MsgType::kBlock] = {
      // The attacker replays a prebuilt block buffer: craft cost is a copy.
      []() { return Message{BlockMsg{big_block}}; },
      [](const Message& m) {
        // Full context-free validation: PoW, merkle, 251 tx checks.
        benchmark::DoNotOptimize(bschain::CheckBlock(std::get<BlockMsg>(m).block,
                                                     kParams));
      }};
  samples[MsgType::kPing] = {
      []() { return Message{PingMsg{nonce++}}; },
      [](const Message& m) {
        // Victim crafts and serializes the PONG reply.
        benchmark::DoNotOptimize(
            SerializePayload(Message{PongMsg{std::get<PingMsg>(m).nonce}}));
      }};
  samples[MsgType::kPong] = {[]() { return Message{PongMsg{nonce++}}; },
                             [](const Message&) {}};
  samples[MsgType::kNotFound] = {
      []() {
        NotFoundMsg m;
        m.inventory.push_back({InvType::kTx, RandHash(rng)});
        return Message{m};
      },
      [](const Message&) {}};
  samples[MsgType::kSendHeaders] = {[]() { return Message{SendHeadersMsg{}}; },
                                    [](const Message&) {}};
  samples[MsgType::kFeeFilter] = {[]() { return Message{FeeFilterMsg{1000}}; },
                                  [](const Message&) {}};
  samples[MsgType::kSendCmpct] = {[]() { return Message{SendCmpctMsg{false, 1}}; },
                                  [](const Message&) {}};
  samples[MsgType::kCmpctBlock] = {
      []() { return Message{compact}; },
      [](const Message& m) {
        const auto& msg = std::get<CmpctBlockMsg>(m);
        benchmark::DoNotOptimize(CheckCompactBlock(msg));
        std::vector<std::uint64_t> missing;
        benchmark::DoNotOptimize(
            ReconstructBlock(msg, mempool.CollectForBlock(mempool.Size()), &missing));
      }};
  samples[MsgType::kGetBlockTxn] = {
      []() {
        GetBlockTxnMsg m;
        m.block_hash = big_block.Hash();
        for (std::uint64_t i = 1; i < 60; ++i) m.indexes.push_back(i);
        return Message{m};
      },
      [](const Message& m) {
        const auto& msg = std::get<GetBlockTxnMsg>(m);
        BlockTxnMsg reply;
        for (std::uint64_t idx : msg.indexes) {
          reply.txs.push_back(big_block.txs[static_cast<std::size_t>(idx)]);
        }
        benchmark::DoNotOptimize(SerializePayload(Message{reply}));
      }};
  samples[MsgType::kBlockTxn] = {
      []() {
        BlockTxnMsg m;
        m.block_hash = big_block.Hash();
        for (std::size_t i = 1; i < big_block.txs.size(); ++i) {
          m.txs.push_back(big_block.txs[i]);
        }
        return Message{m};
      },
      [](const Message& m) {
        // Victim re-validates every delivered transaction and reconstructs.
        for (const auto& tx : std::get<BlockTxnMsg>(m).txs) {
          benchmark::DoNotOptimize(bschain::CheckTransaction(tx));
          benchmark::DoNotOptimize(tx.Txid());
        }
      }};
  return samples;
}

struct Row {
  std::string name;
  double craft_ns;
  bsbench::CallTiming process;
  std::optional<double> paper_craft;
  std::optional<double> paper_impact;
};

void RunTable(bsbench::JsonReport& report) {
  auto samples = BuildSamples();
  std::vector<Row> rows;

  for (auto& [type, sample] : samples) {
    // Craft: the attacker-side per-query cost. The paper's attacker (like
    // our BmDosAttack) pre-crafts the data-heavy payloads once and replays
    // the frame on every query — which is why Table II's BLOCK craft cost is
    // 23 clocks while its processing cost is 617k. Small control messages
    // are built fresh per query.
    const bool replayed = type == MsgType::kBlock || type == MsgType::kBlockTxn ||
                          type == MsgType::kCmpctBlock;
    double craft_ns;
    if (replayed) {
      // Replay cost: re-stamp the 24-byte frame header of the cached buffer
      // and hand it to the send path (no payload work).
      ByteVec cached = EncodeMessage(kMagic, sample.craft());
      ByteVec header(cached.begin(), cached.begin() + bsproto::kHeaderSize);
      craft_ns = bsbench::TimeNsPerCall([&]() {
        std::copy(header.begin(), header.end(), cached.begin());
        benchmark::DoNotOptimize(cached.data());
      }, 1000);
    } else {
      craft_ns = bsbench::TimeNsPerCall([&]() {
        const Message msg = sample.craft();
        benchmark::DoNotOptimize(EncodeMessage(kMagic, msg));
      }, 200);
    }

    // Pre-encode once; the victim cost is decode + checksum + processing.
    const Message msg = sample.craft();
    const ByteVec frame = EncodeMessage(kMagic, msg);
    const bsbench::CallTiming process = bsbench::TimeNsPerCallStats([&]() {
      const DecodeResult result = DecodeMessage(kMagic, frame);
      sample.process(result.message);
    }, replayed ? 20 : 200);

    Row row;
    row.name = CommandName(type);
    row.craft_ns = craft_ns;
    row.process = process;
    row.paper_craft = bsnet::AttackerCraftCycles(type);
    row.paper_impact = bsnet::VictimProcessCycles(type);
    rows.push_back(row);
  }

  bsbench::PrintSection("Table II — measured on THIS implementation vs paper (clocks)");
  std::printf("%-12s | %12s | %12s | %12s | %12s | %10s || %12s | %10s\n", "Message",
              "craft (ns)", "proc min", "proc p50", "proc p90", "ratio",
              "paper impact", "paper r.");
  bsbench::PrintRule(' ', 0);
  bsbench::PrintRule();
  // Print in the paper's row order where possible.
  const std::vector<MsgType> paper_order = {
      MsgType::kVersion, MsgType::kVerack, MsgType::kAddr, MsgType::kInv,
      MsgType::kGetData, MsgType::kGetHeaders, MsgType::kTx, MsgType::kHeaders,
      MsgType::kBlock, MsgType::kPing, MsgType::kPong, MsgType::kNotFound,
      MsgType::kSendHeaders, MsgType::kFeeFilter, MsgType::kSendCmpct,
      MsgType::kCmpctBlock, MsgType::kGetBlockTxn, MsgType::kBlockTxn};
  for (MsgType type : paper_order) {
    const auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) {
      return r.name == CommandName(type);
    });
    if (it == rows.end()) continue;
    std::printf("%-12s | %12.1f | %12.1f | %12.1f | %12.1f | %10.3f || %12.3f | %10.4f\n",
                it->name.c_str(), it->craft_ns, it->process.min_ns, it->process.p50_ns,
                it->process.p90_ns, it->process.p50_ns / it->craft_ns,
                *it->paper_impact, *it->paper_impact / *it->paper_craft);
    report.Add("process_" + it->name, it->process);
  }

  // Shape check: which message gives the attacker the best ratio?
  auto best = std::max_element(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.process.p50_ns / a.craft_ns < b.process.p50_ns / b.craft_ns;
  });
  std::printf("\nhighest measured impact-cost ratio: %s (%.1f)\n", best->name.c_str(),
              best->process.p50_ns / best->craft_ns);
  std::printf("paper's highest: BLOCK (26323.33), then BLOCKTXN (5849.07)\n");
  report.Add("best_ratio_message", best->name);
  report.Add("best_ratio", best->process.p50_ns / best->craft_ns);

  // Footnote: the bogus BLOCK (wrong checksum) still costs the victim the
  // checksum hash over the payload while costing the attacker a buffer copy.
  bsbench::PrintSection("Footnote — bogus BLOCK (invalid PoW + wrong checksum)");
  Crafter crafter(kParams, 107);
  ByteVec bogus = crafter.BogusBlockFrame(kMagic, 60'000);
  const ByteVec bogus_header(bogus.begin(), bogus.begin() + bsproto::kHeaderSize);
  const double bogus_craft_ns = bsbench::TimeNsPerCall([&]() {
    // Replayed, like the BLOCK row: re-stamp the header, hand the buffer off.
    std::copy(bogus_header.begin(), bogus_header.end(), bogus.begin());
    benchmark::DoNotOptimize(bogus.data());
  }, 1000);
  const double bogus_process_ns = bsbench::TimeNsPerCall([&]() {
    benchmark::DoNotOptimize(DecodeMessage(kMagic, bogus));  // checksum, then drop
  }, 50);
  std::printf("bogus BLOCK: craft %.1f ns, victim %.1f ns, ratio %.1f "
              "(paper footnote: 2132.79)\n",
              bogus_craft_ns, bogus_process_ns, bogus_process_ns / bogus_craft_ns);
  report.Add("bogus_block_ratio", bogus_process_ns / bogus_craft_ns);
}

// ---------------------------------------------------------------------------
// Node-pipeline section: the same payloads driven through a live victim Node
// so the bsobs metrics (frame drop counters, per-frame latency histogram)
// reflect end-to-end pipeline cost, not just decode cost.

void RunNodePipeline(bsobs::MetricsRegistry& registry, bsbench::JsonReport& report) {
  bsbench::PrintSection("Node pipeline — BM-DoS payloads vs a live victim (bsobs view)");

  bsim::Scheduler sched;
  sched.AttachMetrics(registry);
  bsim::Network net(sched);
  bsnet::NodeConfig config;
  config.metrics = &registry;  // shared, scrapeable registry for the report
  bsnet::Node victim(sched, net, 0x0a000001, config);
  victim.Start();
  bsattack::AttackerNode attacker(sched, net, 0x0a000002, config.chain.magic);
  Crafter node_crafter(config.chain);

  const auto flood = [&](bsattack::BmDosConfig::Payload payload, double seconds) {
    bsattack::BmDosConfig bc;
    bc.payload = payload;
    bsattack::BmDosAttack attack(attacker, bsproto::Endpoint{0x0a000001, 8333},
                                 node_crafter, bc);
    attack.Start();
    const bsim::SimTime start = sched.Now();
    sched.RunUntil(start + bsim::FromSeconds(seconds));
    attack.Stop();
  };
  flood(bsattack::BmDosConfig::Payload::kBogusBlock, 5.0);
  flood(bsattack::BmDosConfig::Payload::kPing, 5.0);
  flood(bsattack::BmDosConfig::Payload::kUnknownCommand, 5.0);

  std::printf("frames dropped (bad checksum):   %llu\n",
              static_cast<unsigned long long>(victim.FramesDroppedBadChecksum()));
  std::printf("frames ignored (unknown cmd):    %llu\n",
              static_cast<unsigned long long>(victim.FramesIgnoredUnknownCommand()));
  std::printf("typed messages processed:        %llu\n",
              static_cast<unsigned long long>(victim.TotalMessagesReceived()));
  const bsobs::Histogram* lat = registry.FindHistogram("bs_node_frame_process_seconds");
  if (lat != nullptr && lat->Count() > 0) {
    std::printf("frame-processing latency:        %llu samples, mean %.1f ns\n",
                static_cast<unsigned long long>(lat->Count()),
                lat->Sum() / static_cast<double>(lat->Count()) * 1e9);
  }
  std::printf("trace tail:\n%s", victim.Trace().Render(4).c_str());

  report.Add("pipeline_frames_bad_checksum", victim.FramesDroppedBadChecksum());
  report.Add("pipeline_frames_unknown", victim.FramesIgnoredUnknownCommand());
  report.Add("pipeline_messages", victim.TotalMessagesReceived());
}

// ---------------------------------------------------------------------------
// google-benchmark registrations for the headline payloads

void BM_CraftPing(benchmark::State& state) {
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeMessage(kMagic, Message{PingMsg{nonce++}}));
  }
}
BENCHMARK(BM_CraftPing);

void BM_ProcessPing(benchmark::State& state) {
  const ByteVec frame = EncodeMessage(kMagic, Message{PingMsg{1}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeMessage(kMagic, frame));
  }
}
BENCHMARK(BM_ProcessPing);

void BM_ProcessBlock(benchmark::State& state) {
  static const bschain::Block block = MakeBigBlock();
  const ByteVec frame = EncodeMessage(kMagic, Message{BlockMsg{block}});
  for (auto _ : state) {
    const DecodeResult result = DecodeMessage(kMagic, frame);
    benchmark::DoNotOptimize(
        bschain::CheckBlock(std::get<BlockMsg>(result.message).block, kParams));
  }
}
BENCHMARK(BM_ProcessBlock);

void BM_ProcessBogusBlockFrame(benchmark::State& state) {
  Crafter crafter(kParams, 109);
  const ByteVec frame = crafter.BogusBlockFrame(kMagic, 60'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeMessage(kMagic, frame));
  }
}
BENCHMARK(BM_ProcessBogusBlockFrame);

// Observability overhead: the cost an instrumented hot path pays per event.
// The acceptance bar for the pre-resolved-handle design is a few ns per
// counter increment (one relaxed fetch_add, no map lookup).
void BM_ObsCounterInc(benchmark::State& state) {
  bsobs::MetricsRegistry registry;
  bsobs::Counter* counter = registry.GetCounter("bs_bench_counter_total");
  for (auto _ : state) {
    counter->Inc();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  bsobs::MetricsRegistry registry;
  bsobs::Histogram* hist =
      registry.GetHistogram("bs_bench_seconds", bsobs::LatencyBucketsSeconds());
  double v = 1e-7;
  for (auto _ : state) {
    hist->Observe(v);
    v = v < 0.5 ? v * 1.01 : 1e-7;
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_ObsHistogramObserve);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle("bench_table2_impact_cost — Table II: impact-cost ratio");
  bsbench::JsonReport report("bench_table2_impact_cost");
  report.SetSeed(42);  // NodeConfig default; every node derives from it
  bsobs::MetricsRegistry registry;
  RunTable(report);
  RunNodePipeline(registry, report);
  bsbench::PrintSection("google-benchmark micro-benchmarks (headline payloads + bsobs)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report.AttachRegistry(registry);
  report.WriteTo(json_path);
  return 0;
}
