// Eclipse resilience: the peer-set self-healing headline plot.
//
// The paper's framing (§II): the ban-score framework "was informed for
// responding to other potential attacks, e.g., Eclipse" — and the attack
// module shows the composition that defeats it anyway (Sybil inbound
// occupation + ADDR poisoning + post-connection Defamation of every honest
// outbound). This bench measures what the eclipse-resilience layer buys:
//
//   * stock   — the 0.20.0-faithful node. The sustained attack owns every
//               inbound slot, bans every honest outbound via Defamation, and
//               the flat address table refills outbound from attacker
//               infrastructure: the control fraction pins near 1.0 and stays
//               there, even when honest peers later try to dial in.
//   * hardened — bucketed tried/new AddrMan + outbound /16 diversity +
//               feelers + anchors + stale-tip recovery, composed with the
//               earlier hardening layers (inbound eviction, idle-session
//               reaping). The same attack peaks, then honest dial-ins evict
//               Sybils, silent Sybil sessions age out while honest peers
//               keep relaying, diversity caps attacker outbound at one slot,
//               and the control fraction falls back under 0.5.
//   * hardened+restart — same defenses plus the durable store: the victim
//               crashes mid-attack and the reborn node re-dials its anchors
//               (persisted block-providing peers) before consulting the
//               poisoned table at all.
//
// Reported per phase: control-fraction-over-time (1 s samples), peak and
// final fraction, time-to-heal from attack start, and the defense counters
// (feeler probes/promotions, anchor redials, stale-tip events).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "attack/eclipse.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"
#include "sim/simfs.hpp"

namespace {

using bsattack::AttackerNode;
using bsattack::EclipseAttack;
using bsattack::EclipseConfig;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kVictimIp = 0x0a000001;
constexpr int kHonestPeers = 12;   // distinct /16 netgroups, ring mesh
constexpr int kInfraNodes = 8;     // attacker full nodes, one /16
constexpr int kMaxInbound = 16;
constexpr int kTargetOutbound = 6;
constexpr int kRunSeconds = 90;
constexpr bsim::SimTime kAttackStart = 5 * bsim::kSecond;
constexpr bsim::SimTime kAttackStop = 60 * bsim::kSecond;
constexpr bsim::SimTime kDialInStart = 50 * bsim::kSecond;
constexpr bsim::SimTime kCrashAt = 9 * bsim::kSecond;
constexpr bsim::SimTime kRestartAt = 11 * bsim::kSecond;
constexpr double kHealThreshold = 0.5;

// ith honest peer: its own /16 netgroup (10.(16+i).0.1).
constexpr std::uint32_t HonestIp(int i) {
  return 0x0a000001 + (static_cast<std::uint32_t>(16 + i) << 16);
}
// The attacker and its infrastructure share the 192.168/16 netgroup.
constexpr std::uint32_t kAttackerIp = 0xc0a80001;
constexpr std::uint32_t InfraIp(int i) {
  return 0xc0a80002 + static_cast<std::uint32_t>(i);
}

enum class Phase { kStock, kHardened, kHardenedRestart };

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kStock: return "stock";
    case Phase::kHardened: return "hardened";
    case Phase::kHardenedRestart: return "hardened+restart";
  }
  return "?";
}

struct PhaseResult {
  std::vector<double> series;  // control fraction, one sample per second
  double peak = 0.0;
  double final_fraction = 0.0;       // mean of the last 5 samples
  double heal_seconds = -1.0;        // from attack start; -1 = never healed
  int attacker_outbound_final = 0;   // diversity check
  std::size_t honest_inbound_final = 0;
  std::uint64_t feeler_attempts = 0;
  std::uint64_t feeler_promotions = 0;
  std::uint64_t anchor_redials = 0;
  std::uint64_t stale_tip_events = 0;
  std::size_t tried = 0;
  std::size_t new_entries = 0;
  std::size_t bans = 0;
  int victim_height = 0;
  int miner_height = 0;
};

NodeConfig VictimConfig(Phase phase) {
  NodeConfig config;
  config.max_inbound = kMaxInbound;
  config.target_outbound = kTargetOutbound;
  // Short enough that Defamation bans cycle inside the run: the sustained
  // attacker must keep re-defaming, which is exactly the pressure the
  // self-healing loop has to out-pace.
  config.ban_duration = 60 * bsim::kSecond;
  if (phase == Phase::kStock) return config;
  // The earlier hardening layers the eclipse defenses compose with: inbound
  // eviction admits honest newcomers, and idle-session reaping ages out
  // Sybil occupation sessions (they send nothing after the handshake, while
  // honest peers relay txs and blocks continuously).
  config.enable_eviction = true;
  config.inactivity_timeout = 30 * bsim::kSecond;
  config.enable_addrman_bucketing = true;
  config.enable_anchors = true;
  config.enable_feelers = true;
  config.feeler_interval = 5 * bsim::kSecond;
  config.feeler_timeout = 3 * bsim::kSecond;
  config.enable_outbound_diversity = true;
  config.enable_stale_tip_recovery = true;
  config.stale_tip_timeout = 10 * bsim::kSecond;
  return config;
}

/// Control fraction measured from the outside (the experimenter's view, not
/// EclipseAttack's): fraction of the victim's handshake-complete sessions
/// that terminate at attacker IPs. A crashed victim counts as fully
/// controlled — it has no honest view of the network at all.
double ControlFraction(const Node* victim, const std::set<std::uint32_t>& attacker_ips) {
  if (victim == nullptr) return 1.0;
  std::size_t total = 0;
  std::size_t controlled = 0;
  for (const bsnet::Peer* peer : victim->Peers()) {
    if (!peer->HandshakeComplete()) continue;
    ++total;
    controlled += attacker_ips.contains(peer->remote.ip) ? 1 : 0;
  }
  return total == 0 ? 0.0 : static_cast<double>(controlled) / static_cast<double>(total);
}

PhaseResult RunPhase(Phase phase) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::SimFs fs(7);

  NodeConfig config = VictimConfig(phase);
  if (phase == Phase::kHardenedRestart) {
    config.enable_durable_store = true;
    config.store_dir = "eclipse-bench-store";
    config.store_fs = &fs;
  }

  // Honest world: 12 nodes in distinct /16s, ring mesh (each dials its two
  // ring successors), one designated miner on a 3 s cadence. The third
  // outbound slot stays empty until the victim's address arrives at
  // kDialInStart — the honest network "learning about" the victim, which is
  // what gives the eviction logic honest newcomers to admit.
  std::vector<std::unique_ptr<Node>> honest;
  for (int i = 0; i < kHonestPeers; ++i) {
    NodeConfig hc;
    hc.chain = config.chain;
    hc.target_outbound = 3;
    hc.rng_seed = 1000 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(sched, net, HonestIp(i), hc);
    node->AddKnownAddress({HonestIp((i + 1) % kHonestPeers), hc.listen_port});
    node->AddKnownAddress({HonestIp((i + 2) % kHonestPeers), hc.listen_port});
    honest.push_back(std::move(node));
  }
  bsattack::Crafter crafter(config.chain);
  for (int i = 0; i < kHonestPeers; ++i) {
    const int idx = i;
    sched.After(idx * 50 * bsim::kMillisecond,
                [&honest, idx]() { honest[static_cast<std::size_t>(idx)]->Start(); });
    sched.After(kDialInStart + idx * 1500 * bsim::kMillisecond, [&honest, idx]() {
      honest[static_cast<std::size_t>(idx)]->AddKnownAddress({kVictimIp, 8333});
    });
    // Once connected, each honest peer relays real txs into the victim:
    // protocol-legal usefulness that the eviction protections and the
    // idle-session reaper both key on.
    auto send_tx = std::make_shared<std::function<void()>>();
    *send_tx = [&honest, &sched, &crafter, idx, send_tx]() {
      honest[static_cast<std::size_t>(idx)]->SendToRemoteIp(kVictimIp,
                                                           crafter.ValidTx());
      sched.After(2 * bsim::kSecond, [send_tx]() { (*send_tx)(); });
    };
    sched.After(kDialInStart + idx * 1500 * bsim::kMillisecond + 200 * bsim::kMillisecond,
                [send_tx]() { (*send_tx)(); });
  }
  auto mine = std::make_shared<std::function<void()>>();
  *mine = [&honest, &sched, mine]() {
    honest[0]->MineAndRelay();
    sched.After(3 * bsim::kSecond, [mine]() { (*mine)(); });
  };
  sched.After(2 * bsim::kSecond, [mine]() { (*mine)(); });

  // Attacker infrastructure: full protocol speakers on attacker IPs, so the
  // victim's poisoned refills look perfectly healthy.
  std::vector<std::unique_ptr<Node>> infra;
  std::vector<Node*> infra_ptrs;
  std::set<std::uint32_t> attacker_ips = {kAttackerIp};
  for (int i = 0; i < kInfraNodes; ++i) {
    NodeConfig ic;
    ic.chain = config.chain;
    ic.target_outbound = 0;
    ic.rng_seed = 2000 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(sched, net, InfraIp(i), ic);
    node->Start();
    infra_ptrs.push_back(node.get());
    attacker_ips.insert(node->Ip());
    infra.push_back(std::move(node));
  }

  // The victim. Seeded with every honest address (the config-file peers of
  // the paper's testbed); the restart phase respawns it from the durable
  // store mid-attack.
  std::vector<std::unique_ptr<Node>> graveyard;
  auto spawn_victim = [&]() {
    auto node = std::make_unique<Node>(sched, net, kVictimIp, config);
    for (int i = 0; i < kHonestPeers; ++i) {
      node->AddKnownAddress({HonestIp(i), 8333});
    }
    node->Start();
    return node;
  };
  std::unique_ptr<Node> victim = spawn_victim();

  // The sustained eclipse: Sybil inbound occupation with re-occupation,
  // repeated ADDR poisoning, and one Defamation eviction per tick.
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  EclipseConfig ec;
  ec.inbound_sessions = kMaxInbound;
  ec.addr_gossip_rounds = 4;
  ec.addrs_per_message = 400;
  ec.defame_interval = 2500 * bsim::kMillisecond;
  ec.repoison_interval = 2 * bsim::kSecond;
  ec.reoccupy_inbound = true;
  auto attack = std::make_unique<EclipseAttack>(attacker, *victim, infra_ptrs, ec);
  sched.After(kAttackStart, [&attack]() { attack->Start(); });

  std::unique_ptr<EclipseAttack> attack2;  // rebound after the restart
  sched.After(kAttackStop, [&attack, &attack2]() {
    attack->Stop();
    if (attack2 != nullptr) attack2->Stop();
  });
  if (phase == Phase::kHardenedRestart) {
    sched.After(kCrashAt, [&]() {
      attack->Stop();
      victim->Stop();
      graveyard.push_back(std::move(victim));
    });
    sched.After(kRestartAt, [&]() { victim = spawn_victim(); });
    // The attacker re-acquires its vantage on the reborn victim shortly
    // after it comes back up.
    sched.After(kRestartAt + 500 * bsim::kMillisecond, [&]() {
      attack2 = std::make_unique<EclipseAttack>(attacker, *victim, infra_ptrs, ec);
      attack2->Start();
    });
  }

  // 1 s control-fraction samples, measured over the current victim.
  PhaseResult result;
  result.series.reserve(kRunSeconds);
  for (int s = 1; s <= kRunSeconds; ++s) {
    sched.RunUntil(s * bsim::kSecond);
    result.series.push_back(ControlFraction(victim.get(), attacker_ips));
  }
  if (attack != nullptr) attack->Stop();
  if (attack2 != nullptr) attack2->Stop();

  result.peak = *std::max_element(result.series.begin(), result.series.end());
  double tail = 0.0;
  for (std::size_t i = result.series.size() - 5; i < result.series.size(); ++i) {
    tail += result.series[i];
  }
  result.final_fraction = tail / 5.0;

  // Time-to-heal: seconds from attack start until the last sample at or
  // above the threshold — after that instant the fraction never recovers.
  const double attack_start_s = bsim::ToSeconds(kAttackStart);
  int last_bad = -1;
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    const double t = static_cast<double>(i + 1);
    if (t >= attack_start_s && result.series[i] >= kHealThreshold) {
      last_bad = static_cast<int>(i);
    }
  }
  if (last_bad == -1) {
    result.heal_seconds = 0.0;  // never eclipsed past the threshold
  } else if (last_bad + 1 == static_cast<int>(result.series.size())) {
    result.heal_seconds = -1.0;  // still eclipsed at the end
  } else {
    result.heal_seconds = static_cast<double>(last_bad + 2) - attack_start_s;
  }

  for (const bsnet::Peer* peer : victim->Peers()) {
    if (!peer->HandshakeComplete()) continue;
    if (!peer->inbound && attacker_ips.contains(peer->remote.ip)) {
      ++result.attacker_outbound_final;
    }
    if (peer->inbound && !attacker_ips.contains(peer->remote.ip)) {
      ++result.honest_inbound_final;
    }
  }
  result.feeler_attempts = victim->FeelerAttempts();
  result.feeler_promotions = victim->FeelerPromotions();
  result.anchor_redials = victim->AnchorRedials();
  result.stale_tip_events = victim->StaleTipEvents();
  result.tried = victim->Addrs().TriedCount();
  result.new_entries = victim->Addrs().NewCount();
  result.bans = victim->Bans().Size();
  result.victim_height = victim->Chain().TipHeight();
  result.miner_height = honest[0]->Chain().TipHeight();
  return result;
}

std::string SeriesJson(const std::vector<double>& series) {
  std::string out = "[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%.4g", i > 0 ? "," : "", series[i]);
    out += buf;
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle(
      "bench_eclipse_resilience — sustained eclipse vs peer-set self-healing");
  std::printf(
      "victim: %d inbound / %d outbound slots, 60 s bans; %d honest peers in\n"
      "distinct /16s (dial in from t=%ds); attacker: %d Sybil inbound sessions\n"
      "(re-occupied), ADDR poisoning every 2 s, one Defamation eviction per\n"
      "2.5 s, %d infrastructure nodes in one /16; %d s run, attack t=%d..%ds\n",
      kMaxInbound, kTargetOutbound, kHonestPeers,
      static_cast<int>(kDialInStart / bsim::kSecond), kMaxInbound, kInfraNodes,
      kRunSeconds, static_cast<int>(kAttackStart / bsim::kSecond),
      static_cast<int>(kAttackStop / bsim::kSecond));

  bsbench::JsonReport report("bench_eclipse_resilience");
  report.SetSeed(42);  // NodeConfig default; every node derives from it

  bsbench::PrintSection("control fraction by phase");
  std::printf("%-17s | %5s | %6s | %8s | %7s | %7s | %7s | %6s | %9s\n", "phase",
              "peak", "final", "heal-s", "feelers", "promos", "anchors", "stale",
              "tried/new");
  bsbench::PrintRule();

  std::vector<std::pair<Phase, PhaseResult>> results;
  for (const Phase phase :
       {Phase::kStock, Phase::kHardened, Phase::kHardenedRestart}) {
    const PhaseResult r = RunPhase(phase);
    std::printf("%-17s | %5.2f | %6.2f | %8s | %7llu | %7llu | %7llu | %6llu | %4zu/%-4zu\n",
                PhaseName(phase), r.peak, r.final_fraction,
                r.heal_seconds < 0 ? "never"
                                   : std::to_string(static_cast<int>(r.heal_seconds)).c_str(),
                static_cast<unsigned long long>(r.feeler_attempts),
                static_cast<unsigned long long>(r.feeler_promotions),
                static_cast<unsigned long long>(r.anchor_redials),
                static_cast<unsigned long long>(r.stale_tip_events), r.tried,
                r.new_entries);
    const std::string key = PhaseName(phase);
    report.Add("peak_" + key, r.peak);
    report.Add("final_" + key, r.final_fraction);
    report.Add("heal_seconds_" + key, r.heal_seconds);
    report.Add("feeler_attempts_" + key, r.feeler_attempts);
    report.Add("feeler_promotions_" + key, r.feeler_promotions);
    report.Add("anchor_redials_" + key, r.anchor_redials);
    report.Add("stale_tip_events_" + key, r.stale_tip_events);
    report.Add("attacker_outbound_final_" + key, r.attacker_outbound_final);
    report.Add("honest_inbound_final_" + key,
               static_cast<std::uint64_t>(r.honest_inbound_final));
    report.Add("victim_height_" + key, r.victim_height);
    report.Add("miner_height_" + key, r.miner_height);
    report.AddRaw("series_" + key, SeriesJson(r.series));
    results.emplace_back(phase, r);
  }

  const auto find = [&](Phase phase) -> const PhaseResult& {
    for (const auto& [p, r] : results) {
      if (p == phase) return r;
    }
    return results.front().second;
  };
  const PhaseResult& stock = find(Phase::kStock);
  const PhaseResult& hard = find(Phase::kHardened);
  const PhaseResult& restart = find(Phase::kHardenedRestart);

  bsbench::PrintSection("shape checks (the acceptance criteria)");
  std::printf("attack fully bites the stock node (peak >= 0.9):      %s (%.2f)\n",
              stock.peak >= 0.9 ? "yes" : "NO", stock.peak);
  std::printf("stock stays eclipsed (final >= 0.75):                 %s (%.2f)\n",
              stock.final_fraction >= 0.75 ? "yes" : "NO", stock.final_fraction);
  std::printf("hardened heals under sustained attack (final < 0.5):  %s (%.2f)\n",
              hard.final_fraction < kHealThreshold ? "yes" : "NO",
              hard.final_fraction);
  std::printf("hardened time-to-heal is finite:                      %s (%s s)\n",
              hard.heal_seconds >= 0 ? "yes" : "NO",
              hard.heal_seconds < 0
                  ? "never"
                  : std::to_string(static_cast<int>(hard.heal_seconds)).c_str());
  std::printf("outbound diversity holds (<= 1 attacker outbound):    %s (%d)\n",
              hard.attacker_outbound_final <= 1 ? "yes" : "NO",
              hard.attacker_outbound_final);
  std::printf("feelers verified addresses (promotions > 0):          %s (%llu)\n",
              hard.feeler_promotions > 0 ? "yes" : "NO",
              static_cast<unsigned long long>(hard.feeler_promotions));
  // The stale-tip backstop only arms when block flow actually stops; in the
  // steady hardened run a few honest links always survive, so the gap that
  // trips it is the crash/restart one.
  std::printf("stale-tip backstop fired in a hardened phase:         %s (%llu)\n",
              hard.stale_tip_events + restart.stale_tip_events >= 1 ? "yes" : "NO",
              static_cast<unsigned long long>(hard.stale_tip_events +
                                              restart.stale_tip_events));
  std::printf("reborn victim re-dialed anchors from durable store:   %s (%llu)\n",
              restart.anchor_redials >= 1 ? "yes" : "NO",
              static_cast<unsigned long long>(restart.anchor_redials));
  std::printf("reborn victim heals too (final < 0.5):                %s (%.2f)\n",
              restart.final_fraction < kHealThreshold ? "yes" : "NO",
              restart.final_fraction);
  report.WriteTo(json_path);
  return 0;
}
