// Table III + Fig. 7 reproduction: application-layer BM-DoS (Bitcoin PING)
// vs network-layer traffic flooding (ICMP ping), sweeping the flood rate.
//
// Columns, as in the paper: attacker CPU% and memory, victim bandwidth
// consumed by the flood (kbit/s), and victim mining rate. The BM-DoS rate is
// capped at 1e3 msg/s (the attacker pipeline ceiling the paper observed);
// ICMP reaches 1e6 pkt/s.
//
//   paper: PING 1e2 -> 824564 h/s, 1e3 -> 518954 h/s
//          ICMP 1e2 -> 919620, 1e3 -> 841188, 1e4 -> 639357,
//               1e5 -> 505639, 1e6 -> 359116  (h/s)
#include <cstdio>

#include "attack/bmdos.hpp"
#include "attack/icmpflood.hpp"
#include "bench_util.hpp"
#include "core/costmodel.hpp"
#include "core/node.hpp"

namespace {

using bsattack::AttackerNode;
using bsattack::BmDosAttack;
using bsattack::BmDosConfig;
using bsattack::Crafter;
using bsattack::IcmpFloodConfig;
using bsattack::IcmpFlooder;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000002;
constexpr int kNormalConnections = 10;
constexpr double kMeasureSeconds = 20.0;

// Shared registry: every flood run's victim feeds the same bsobs series so
// the --json report shows the cumulative pipeline picture.
bsobs::MetricsRegistry g_metrics;

struct Result {
  double attacker_cpu_percent;
  double attacker_mem_mb;
  double bandwidth_kbits;
  double mining_rate_hps;
};

Result RunFlood(bool bitcoin_ping, double rate) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::CpuModel cpu;
  sched.AttachMetrics(g_metrics);
  NodeConfig config;
  config.metrics = &g_metrics;
  Node victim(sched, net, kTargetIp, config, &cpu);
  victim.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);

  std::unique_ptr<BmDosAttack> bm;
  std::unique_ptr<IcmpFlooder> icmp;
  if (bitcoin_ping) {
    BmDosConfig bc;
    bc.payload = BmDosConfig::Payload::kPing;
    bc.rate_msgs_per_sec = rate;
    bm = std::make_unique<BmDosAttack>(attacker, bsproto::Endpoint{kTargetIp, 8333},
                                       crafter, bc);
    bm->Start();
    cpu.SetActiveConnections(kNormalConnections + 1);
  } else {
    IcmpFloodConfig ic;
    ic.rate_pkts_per_sec = rate;
    icmp = std::make_unique<IcmpFlooder>(attacker, kTargetIp, ic);
    icmp->Start();
    cpu.SetActiveConnections(kNormalConnections);
  }

  sched.RunUntil(2 * bsim::kSecond);
  net.ResetByteCounters();
  cpu.BeginWindow(sched.Now());
  const bsim::SimTime start = sched.Now();
  sched.RunUntil(start + bsim::FromSeconds(kMeasureSeconds));
  const auto sample = cpu.EndWindow(sched.Now());

  Result result;
  result.mining_rate_hps = sample.mining_rate_hps;
  result.bandwidth_kbits =
      static_cast<double>(net.BytesDeliveredTo(kTargetIp)) * 8.0 / 1000.0 /
      kMeasureSeconds;
  if (bitcoin_ping) {
    result.attacker_cpu_percent = bsnet::PythonAttackerCpuPercent(
        std::min(rate, bsnet::kBmDosPipelineCapMsgsPerSec));
    result.attacker_mem_mb = bsnet::kPythonAttackerMemMb;
  } else {
    result.attacker_cpu_percent = bsnet::HpingAttackerCpuPercent(rate);
    result.attacker_mem_mb = bsnet::kHpingAttackerMemMb;
  }
  return result;
}

void PrintRow(const char* layer, double rate, const Result& r, double paper_hps) {
  std::printf("%-14s | %8.0e | %8.1f | %9.3f | %12.2f | %12.0f | %10.0f\n", layer, rate,
              r.attacker_cpu_percent, r.attacker_mem_mb, r.bandwidth_kbits,
              r.mining_rate_hps, paper_hps);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle(
      "bench_table3_flood_compare — Table III / Fig. 7: BM-DoS vs network-layer flood");
  std::printf("%-14s | %8s | %8s | %9s | %12s | %12s | %10s\n", "layer", "rate/s",
              "CPU (%)", "MEM (MB)", "BW (kbit/s)", "mining (h/s)", "paper h/s");
  bsbench::PrintRule(' ', 0);
  bsbench::PrintRule();

  PrintRow("Bitcoin PING", 1e2, RunFlood(true, 1e2), 824564.81);
  PrintRow("Bitcoin PING", 1e3, RunFlood(true, 1e3), 518954.34);
  std::printf("%-14s   (rates beyond 1e3/s break the attacker pipeline, §VI-C)\n", "");
  PrintRow("ICMP ping", 1e2, RunFlood(false, 1e2), 919619.71);
  PrintRow("ICMP ping", 1e3, RunFlood(false, 1e3), 841188.46);
  PrintRow("ICMP ping", 1e4, RunFlood(false, 1e4), 639356.67);
  PrintRow("ICMP ping", 1e5, RunFlood(false, 1e5), 505638.85);
  PrintRow("ICMP ping", 1e6, RunFlood(false, 1e6), 359115.99);

  bsbench::PrintSection("Fig. 7 series — mining-rate impact at the same rate");
  const Result ping_1e3 = RunFlood(true, 1e3);
  const Result icmp_1e3 = RunFlood(false, 1e3);
  std::printf("at 1e3/s: BM-DoS mining %.0f h/s vs ICMP mining %.0f h/s\n",
              ping_1e3.mining_rate_hps, icmp_1e3.mining_rate_hps);
  std::printf("BM-DoS hurts mining more at equal rate:  %s  (paper: yes — the PING\n"
              "reaches the application layer; ICMP stays in the kernel)\n",
              ping_1e3.mining_rate_hps < icmp_1e3.mining_rate_hps ? "yes" : "NO");
  std::printf("ICMP consumes more bandwidth at 1e6/s than BM-DoS at its cap:  %s\n",
              RunFlood(false, 1e6).bandwidth_kbits > ping_1e3.bandwidth_kbits ? "yes"
                                                                              : "NO");

  bsbench::JsonReport report("bench_table3_flood_compare");
  report.SetSeed(42);  // NodeConfig default; every node derives from it
  report.Add("ping_1e3_mining_hps", ping_1e3.mining_rate_hps);
  report.Add("icmp_1e3_mining_hps", icmp_1e3.mining_rate_hps);
  report.Add("ping_1e3_bandwidth_kbits", ping_1e3.bandwidth_kbits);
  report.AttachRegistry(g_metrics);
  report.WriteTo(json_path);
  return 0;
}
