// Graceful degradation under BM-DoS: the overload-resilience headline plot.
//
// The paper shows the stock 0.20.0 node cannot defend itself with ban score
// — bogus-BLOCK frames are dropped before misbehavior tracking runs, so the
// flood is never punished and mining collapses (Fig. 6). This bench measures
// what the identifier-light resource-governance layer buys instead: a victim
// with a small inbound budget serves 8 honest peers (diverse /16 netgroups,
// real tx/block traffic) while 8 attacker processes in ONE /16 netgroup run
// a reconnecting Sybil flood of 60 kB bogus-BLOCK frames at the pipeline cap
// (1000 msg/s per process, §VI-C), ablating {none, eviction, ratelimit,
// priority, all}:
//
//   * eviction keeps honest peers connected (and admits the late joiner)
//     but does nothing for the CPU;
//   * ratelimit/priority shed the flood at the header peek, so the checksum
//     cost that powers BM-DoS is never paid;
//   * all composes them: honest mining rate stays within 2x of the no-attack
//     baseline at an intensity where the stock node degrades >= 10x.
//
// The CPU model runs with net_capacity_fraction raised to 0.98: the paper's
// testbed value (0.73) already caps how much of the CPU the net thread may
// burn, which would mask the defense-vs-collapse contrast this bench exists
// to show (see DESIGN.md "Substitutions").
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"
#include "util/stats.hpp"

namespace {

using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kVictimIp = 0x0a000001;
constexpr int kMaxInbound = 24;
constexpr int kHonestPeers = 8;      // one more joins mid-attack
constexpr int kAttackerProcs = 8;    // one /16 netgroup
constexpr int kConnsPerProc = 2;     // 16 Sybil connections fill the slots
constexpr int kWindows = 30;         // 1-second mining samples
constexpr std::size_t kBogusBytes = 60'000;
constexpr bsim::SimTime kAttackStart = 1 * bsim::kSecond;
constexpr bsim::SimTime kLateJoin = 8 * bsim::kSecond;
constexpr bsim::SimTime kMeasureStart = 10 * bsim::kSecond;

// ith honest peer: its own /16 netgroup (10.(16+i).0.1).
constexpr std::uint32_t HonestIp(int i) {
  return 0x0a000001 + (static_cast<std::uint32_t>(16 + i) << 16);
}
// Attacker processes share the 192.168/16 netgroup.
constexpr std::uint32_t AttackerIp(int i) {
  return 0xc0a80001 + static_cast<std::uint32_t>(i);
}

struct Defense {
  std::string name;
  bool eviction = false;
  bool ratelimit = false;
  bool priority = false;
};

const std::vector<Defense> kDefenses = {
    {"none", false, false, false},
    {"eviction", true, false, false},
    {"ratelimit", false, true, false},
    {"priority", false, false, true},
    {"all", true, true, true},
};

/// One attacker process: holds kConnsPerProc Sybil sessions to the victim,
/// sends one cached bogus-BLOCK frame per tick round-robin, and — unlike the
/// fire-and-forget BmDosAttack — reopens sessions the victim evicts, which
/// is exactly the churn pressure the eviction logic must shrug off.
class ReconnectingFlooder {
 public:
  ReconnectingFlooder(bsim::Scheduler& sched, bsim::Network& net, std::uint32_t ip,
                      const bsproto::Endpoint& target, Crafter& crafter,
                      double msgs_per_sec)
      : sched_(sched),
        node_(sched, net, ip, crafter.Params().magic),
        target_(target),
        frame_(crafter.BogusBlockFrame(crafter.Params().magic, kBogusBytes)),
        interval_(static_cast<bsim::SimTime>(bsim::kSecond / msgs_per_sec)) {}

  void Start() {
    running_ = true;
    for (int i = 0; i < kConnsPerProc; ++i) {
      sessions_.push_back(node_.OpenSession(target_));
    }
    Tick();
  }
  void Stop() { running_ = false; }

 private:
  void Tick() {
    if (!running_) return;
    // One reconnect attempt per tick at most: an evicted Sybil dials back at
    // the same pipeline-capped pace it floods at.
    for (auto& session : sessions_) {
      if (session == nullptr || session->closed) {
        session = node_.OpenSession(target_);
        break;
      }
    }
    for (int probe = 0; probe < kConnsPerProc; ++probe) {
      AttackSession* s = sessions_[next_ % sessions_.size()];
      ++next_;
      if (s != nullptr && s->tcp_established && !s->closed) {
        node_.SendRawFrame(*s, frame_);
        break;
      }
    }
    sched_.After(interval_, [this]() { Tick(); });
  }

  bsim::Scheduler& sched_;
  AttackerNode node_;
  bsproto::Endpoint target_;
  bsutil::ByteVec frame_;
  bsim::SimTime interval_;
  bool running_ = false;
  std::vector<AttackSession*> sessions_;
  std::size_t next_ = 0;
};

struct RunResult {
  bsutil::Summary mining;
  double tx_delivered_ratio = 0.0;
  double tx_latency_ms = 0.0;        // mean, delivered probes only
  std::size_t honest_connected = 0;  // of kHonestPeers + 1
  bool late_joiner_admitted = false;
  std::uint64_t evictions = 0;
  std::uint64_t ratelimited_frames = 0;
  std::uint64_t governor_shed = 0;
  std::uint64_t bad_checksum_frames = 0;
};

/// Honest tx-relay probes: send a valid tx to the victim, poll its mempool
/// at 5 ms granularity, and record the send-to-acceptance latency.
struct TxProbeStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double latency_sum_ms = 0.0;
};

void PollTx(bsim::Scheduler& sched, Node& victim, TxProbeStats& stats,
            bscrypto::Hash256 txid, bsim::SimTime sent_at, bsim::SimTime deadline) {
  if (victim.Pool().Contains(txid)) {
    ++stats.delivered;
    stats.latency_sum_ms += bsim::ToSeconds(sched.Now() - sent_at) * 1e3;
    return;
  }
  if (sched.Now() >= deadline) return;  // shed or lost: counted undelivered
  sched.After(5 * bsim::kMillisecond,
              [&sched, &victim, &stats, txid, sent_at, deadline]() {
                PollTx(sched, victim, stats, txid, sent_at, deadline);
              });
}

RunResult RunScenario(const Defense& defense, int attacker_procs) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::CpuModelConfig cpu_config;
  cpu_config.net_capacity_fraction = 0.98;
  cpu_config.measurement_jitter = 0.015;
  cpu_config.jitter_seed = 42 + static_cast<std::uint64_t>(attacker_procs);
  bsim::CpuModel cpu(cpu_config);

  NodeConfig config;
  config.max_inbound = kMaxInbound;
  config.target_outbound = 0;
  config.ping_interval = 1 * bsim::kSecond;  // feeds the low-ping tier
  config.enable_eviction = defense.eviction;
  config.enable_rate_limit = defense.ratelimit;
  if (defense.ratelimit) config.rx_cycles_per_sec = 8.0e7;
  config.enable_priority = defense.priority;
  // The governor rides with the priority defense: without priority tiers it
  // is a blind global cap that sheds honest and Sybil work alike.
  if (defense.priority) config.governor_cycles_per_sec = 1.0e9;
  Node victim(sched, net, kVictimIp, config, &cpu);
  victim.Start();
  const bool debug = std::getenv("BD_DEBUG") != nullptr;
  if (debug) {
    victim.on_peer_evicted = [&sched](const bsnet::Peer& p) {
      std::printf("[%7.3f] evicted ip=%08x\n", bsim::ToSeconds(sched.Now()),
                  p.remote.ip);
    };
    victim.on_frame_shed = [&sched](const bsnet::Peer& p, std::size_t bytes,
                                    bool governor) {
      if ((p.remote.ip >> 16) == 0xc0a8) return;  // attacker shed: expected
      std::printf("[%7.3f] shed honest ip=%08x bytes=%zu governor=%d\n",
                  bsim::ToSeconds(sched.Now()), p.remote.ip, bytes,
                  governor ? 1 : 0);
    };
  }

  // Honest peers: real nodes in distinct netgroups, each holding one
  // outbound session into the victim (inbound on the victim's side, so they
  // compete with the Sybils for the same slots).
  std::vector<std::unique_ptr<Node>> honest;
  for (int i = 0; i < kHonestPeers + 1; ++i) {
    NodeConfig hc;
    hc.target_outbound = 1;
    hc.rng_seed = 1000 + static_cast<std::uint64_t>(i);
    auto node = std::make_unique<Node>(sched, net, HonestIp(i), hc, nullptr);
    node->AddKnownAddress({kVictimIp, config.listen_port});
    honest.push_back(std::move(node));
  }
  for (int i = 0; i < kHonestPeers; ++i) {
    const int idx = i;
    sched.After(idx * 50 * bsim::kMillisecond, [&honest, idx]() {
      honest[static_cast<std::size_t>(idx)]->Start();
    });
  }
  // The late joiner arrives once the flood owns every free slot: with
  // eviction it displaces a Sybil, without it is refused until the run ends.
  sched.After(kLateJoin,
              [&honest]() { honest[kHonestPeers]->Start(); });

  // Honest workload: staggered mining (good score + the recent-block tier)
  // and tx probes at 2/s per peer (the recent-tx tier + the latency series).
  Crafter crafter(config.chain);
  TxProbeStats probes;
  for (int i = 0; i < kHonestPeers; ++i) {
    Node* peer = honest[static_cast<std::size_t>(i)].get();
    const bsim::SimTime mine_start =
        2 * bsim::kSecond + i * 400 * bsim::kMillisecond;
    auto mine = std::make_shared<std::function<void()>>();
    *mine = [peer, &sched, mine]() {
      peer->MineAndRelay();
      sched.After(3500 * bsim::kMillisecond, [mine]() { (*mine)(); });
    };
    sched.After(mine_start, [mine]() { (*mine)(); });

    const bsim::SimTime tx_start = 2 * bsim::kSecond + i * 60 * bsim::kMillisecond;
    auto send_tx = std::make_shared<std::function<void()>>();
    *send_tx = [peer, &sched, &victim, &probes, &crafter, send_tx]() {
      const bsproto::TxMsg tx = crafter.ValidTx();
      const bscrypto::Hash256 txid = tx.tx.Txid();
      if (peer->SendToRemoteIp(kVictimIp, tx)) {
        ++probes.sent;
        PollTx(sched, victim, probes, txid, sched.Now(),
               sched.Now() + 1 * bsim::kSecond);
      }
      sched.After(500 * bsim::kMillisecond, [send_tx]() { (*send_tx)(); });
    };
    sched.After(tx_start, [send_tx]() { (*send_tx)(); });
  }

  std::vector<std::unique_ptr<ReconnectingFlooder>> flooders;
  for (int i = 0; i < attacker_procs; ++i) {
    flooders.push_back(std::make_unique<ReconnectingFlooder>(
        sched, net, AttackerIp(i), bsproto::Endpoint{kVictimIp, config.listen_port},
        crafter, bsnet::kBmDosPipelineCapMsgsPerSec));
  }
  sched.After(kAttackStart, [&flooders]() {
    for (auto& f : flooders) f->Start();
  });

  sched.RunUntil(kMeasureStart);
  std::vector<double> samples;
  samples.reserve(kWindows);
  for (int i = 0; i < kWindows; ++i) {
    cpu.SetActiveConnections(static_cast<int>(victim.Peers().size()));
    cpu.BeginWindow(sched.Now());
    sched.RunUntil(sched.Now() + bsim::kSecond);
    samples.push_back(cpu.EndWindow(sched.Now()).mining_rate_hps);
  }
  for (auto& f : flooders) f->Stop();

  RunResult result;
  result.mining = bsutil::Summarize(samples);
  result.tx_delivered_ratio =
      probes.sent == 0 ? 0.0
                       : static_cast<double>(probes.delivered) /
                             static_cast<double>(probes.sent);
  result.tx_latency_ms =
      probes.delivered == 0 ? 0.0
                            : probes.latency_sum_ms /
                                  static_cast<double>(probes.delivered);
  std::size_t connected = 0;
  for (const bsnet::Peer* p : victim.Peers()) {
    for (int i = 0; i < kHonestPeers + 1; ++i) {
      if (p->remote.ip == HonestIp(i) && p->HandshakeComplete()) {
        ++connected;
        if (i == kHonestPeers) result.late_joiner_admitted = true;
      }
    }
  }
  result.honest_connected = connected;
  if (debug) {
    std::printf("debug: rejects=%llu evictions=%llu peers=%zu\n",
                static_cast<unsigned long long>(victim.InboundFullRejects()),
                static_cast<unsigned long long>(victim.PeersEvicted()),
                victim.Peers().size());
    for (const bsnet::Peer* p : victim.Peers()) {
      std::printf("debug: peer ip=%08x hs=%d ping=%lld tx=%lld blk=%lld\n",
                  p->remote.ip, p->HandshakeComplete() ? 1 : 0,
                  static_cast<long long>(p->min_ping_rtt),
                  static_cast<long long>(p->last_tx_time),
                  static_cast<long long>(p->last_block_time));
    }
  }
  result.evictions = victim.PeersEvicted();
  result.ratelimited_frames = victim.RateLimitedFrames();
  result.governor_shed = victim.GovernorShedFrames();
  result.bad_checksum_frames = victim.FramesDroppedBadChecksum();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle(
      "bench_degradation — honest service vs BM-DoS flood intensity, by defense");
  std::printf(
      "victim: %d inbound slots, %d honest peers (+1 late joiner), ping/tx/block\n"
      "workload; attackers: N processes x %d Sybil conns in one /16, 60 kB\n"
      "bogus-BLOCK frames at %.0f msg/s each, reconnecting after eviction;\n"
      "%d samples of 1 simulated second\n",
      kMaxInbound, kHonestPeers, kConnsPerProc,
      bsnet::kBmDosPipelineCapMsgsPerSec, kWindows);

  bsbench::JsonReport report("bench_degradation");
  report.SetSeed(42);  // NodeConfig default; every node derives from it

  // Escalation series for the bracketing configs.
  const std::vector<int> intensities = {0, 2, 4, 8};
  bsbench::PrintSection("mining rate vs flood intensity (hashes/second)");
  std::printf("%-10s", "defense");
  for (int n : intensities) std::printf(" | %8d proc", n);
  std::printf(" | %9s | %7s | %8s\n", "tx-deliv", "tx-ms", "honest");
  bsbench::PrintRule();

  double baseline_hps = 0.0;
  std::vector<std::pair<std::string, RunResult>> at_max;
  for (const Defense& defense : kDefenses) {
    const bool full_series = defense.name == "none" || defense.name == "all";
    std::printf("%-10s", defense.name.c_str());
    RunResult last;
    for (int n : intensities) {
      if (!full_series && n != intensities.back() && n != 0) {
        std::printf(" | %13s", "-");
        continue;
      }
      last = RunScenario(defense, n);
      std::printf(" | %13.3g", last.mining.mean);
      if (defense.name == "none" && n == 0) baseline_hps = last.mining.mean;
      report.Add("hps_" + defense.name + "_" + std::to_string(n), last.mining.mean);
      report.Add("txdeliv_" + defense.name + "_" + std::to_string(n),
                 last.tx_delivered_ratio);
      report.Add("txms_" + defense.name + "_" + std::to_string(n), last.tx_latency_ms);
    }
    std::printf(" | %9.3f | %7.2f | %5zu/%d\n", last.tx_delivered_ratio,
                last.tx_latency_ms, last.honest_connected, kHonestPeers + 1);
    at_max.emplace_back(defense.name, last);
  }

  bsbench::PrintSection("at max intensity (8 attacker processes)");
  std::printf("%-10s | %12s | %9s | %10s | %10s | %10s | %6s\n", "defense",
              "mining h/s", "vs base", "evictions", "shed-frms", "bad-cksum",
              "late-in");
  bsbench::PrintRule();
  double none_hps = 0.0, all_hps = 0.0;
  for (const auto& [name, r] : at_max) {
    if (name == "none") none_hps = r.mining.mean;
    if (name == "all") all_hps = r.mining.mean;
    std::printf("%-10s | %12.3g | %8.2fx | %10llu | %10llu | %10llu | %6s\n",
                name.c_str(), r.mining.mean,
                baseline_hps > 0 ? r.mining.mean / baseline_hps : 0.0,
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.ratelimited_frames),
                static_cast<unsigned long long>(r.bad_checksum_frames),
                r.late_joiner_admitted ? "yes" : "NO");
    report.Add("evictions_" + name, r.evictions);
    report.Add("ratelimited_" + name, r.ratelimited_frames);
    report.Add("governor_shed_" + name, r.governor_shed);
    report.Add("honest_connected_" + name, static_cast<std::uint64_t>(r.honest_connected));
    report.Add("late_joiner_" + name, r.late_joiner_admitted ? 1 : 0);
  }

  bsbench::PrintSection("shape checks (the acceptance criteria)");
  const double collapse = baseline_hps / std::max(none_hps, 1.0);
  const double defended = baseline_hps / std::max(all_hps, 1.0);
  std::printf("defenses-off collapses >= 10x at max intensity:   %s (%.1fx)\n",
              collapse >= 10.0 ? "yes" : "NO", collapse);
  std::printf("all defenses stay within 2x of baseline:          %s (%.2fx)\n",
              defended <= 2.0 ? "yes" : "NO", defended);
  const auto find = [&](const std::string& name) -> const RunResult& {
    for (const auto& [n, r] : at_max) {
      if (n == name) return r;
    }
    return at_max.front().second;
  };
  std::printf("eviction keeps all honest peers connected:        %s\n",
              find("eviction").honest_connected == kHonestPeers + 1 ? "yes" : "NO");
  std::printf("eviction admits the late joiner, stock does not:  %s\n",
              (find("eviction").late_joiner_admitted &&
               !find("none").late_joiner_admitted)
                  ? "yes"
                  : "NO");
  std::printf("shedding layers keep honest tx relay intact:      %s\n",
              find("all").tx_delivered_ratio >= 0.95 ? "yes" : "NO");
  report.Add("baseline_hps", baseline_hps);
  report.Add("collapse_factor_none", collapse);
  report.Add("degradation_factor_all", defended);
  report.WriteTo(json_path);
  return 0;
}
