// Ablation bench for the design choices DESIGN.md calls out:
//
//  1. Ban policy (§VIII): stock ban score vs threshold→∞ vs disabled vs
//     good-score, each evaluated against (a) the Defamation attack on an
//     innocent block-providing peer and (b) a misbehaving attacker.
//  2. Rule-set version: the Fig. 8 VERSION-flood Sybil loop against Core
//     0.20.0 / 0.21.0 / 0.22.0 — the vector dies in 0.22.0, matching the
//     disclosure timeline.
//  3. Ban threshold sweep: identifiers banned per unit time as the
//     threshold varies (lower thresholds ban the attacker faster but make
//     Defamation cheaper too).
//  4. Checksum ordering: the bogus-BLOCK loophole open vs closed.
#include <cstdio>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "attack/defamation.hpp"
#include "attack/sybil.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"

namespace {

using namespace bsnet;  // NOLINT
using bsattack::AttackerNode;
using bsattack::AttackSession;
using bsattack::Crafter;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000002;
constexpr std::uint32_t kInnocentIp = 0x0a000003;

struct PolicyOutcome {
  bool innocent_banned;
  bool attacker_banned;
  bool block_still_relayed;
};

PolicyOutcome RunPolicyScenario(BanPolicy policy) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig target_config;
  target_config.ban_policy = policy;
  target_config.target_outbound = 2;
  Node target(sched, net, kTargetIp, target_config);

  NodeConfig peer_config;
  peer_config.target_outbound = 0;
  Node innocent(sched, net, kInnocentIp, peer_config);
  Node bystander(sched, net, kInnocentIp + 1, peer_config);
  innocent.Start();
  bystander.Start();
  target.AddKnownAddress({kInnocentIp, 8333});
  target.AddKnownAddress({kInnocentIp + 1, 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);

  // Innocent peer earns good score by mining a block the target fetches.
  innocent.MineAndRelay();
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);

  // Post-connection Defamation against the innocent outbound peer.
  AttackerNode attacker(sched, net, kAttackerIp, target_config.chain.magic);
  Crafter crafter(target_config.chain);
  const Peer* outbound = nullptr;
  for (const Peer* p : target.Peers()) {
    if (!p->inbound && p->remote.ip == kInnocentIp) outbound = p;
  }
  PolicyOutcome outcome{false, false, false};
  if (outbound != nullptr) {
    bsattack::PostConnectionDefamation defamation(attacker, outbound->conn->Local(),
                                                  outbound->remote);
    defamation.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                           crafter.SegwitInvalidTx())});
    innocent.SendToRemoteIp(kTargetIp, bsproto::PingMsg{1});
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
    outcome.innocent_banned =
        target.Bans().IsBanned(Endpoint{kInnocentIp, 8333}, sched.Now());
  }

  // Separately: a plain misbehaving attacker session.
  AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  attacker.Send(*session, crafter.SegwitInvalidTx());
  sched.RunUntil(sched.Now() + bsim::kSecond);
  outcome.attacker_banned = session->closed;

  // Liveness (§VIII: "disabling the ban score does not affect any of the
  // other Bitcoin operations"): a block mined by an uninvolved peer still
  // reaches the target under every policy. (The defamed peer's own TCP
  // session is desynchronized by the injection regardless of policy.)
  const auto block = bystander.MineAndRelay();
  sched.RunUntil(sched.Now() + 10 * bsim::kSecond);
  outcome.block_still_relayed = block && target.Chain().HaveBlock(block->Hash());
  return outcome;
}

void PolicyAblation(bsbench::JsonReport& report) {
  bsbench::PrintSection("1. ban-policy ablation (§VIII countermeasures)");
  std::printf("%-20s | %16s | %15s | %s\n", "policy", "innocent banned?",
              "attacker banned?", "blocks still relay?");
  bsbench::PrintRule();
  for (BanPolicy policy : {BanPolicy::kBanScore, BanPolicy::kThresholdInfinity,
                           BanPolicy::kDisabled, BanPolicy::kGoodScore}) {
    const PolicyOutcome outcome = RunPolicyScenario(policy);
    std::printf("%-20s | %16s | %15s | %s\n", ToString(policy),
                outcome.innocent_banned ? "YES (defamed)" : "no",
                outcome.attacker_banned ? "yes" : "no",
                outcome.block_still_relayed ? "yes" : "NO");
    report.Add(std::string("policy_") + ToString(policy) + "_innocent_banned",
               outcome.innocent_banned ? 1 : 0);
    report.Add(std::string("policy_") + ToString(policy) + "_attacker_banned",
               outcome.attacker_banned ? 1 : 0);
  }
  std::printf("\n(stock ban score defames the innocent peer; forgoing the ban score or\n"
              " using good-score protects it; normal relay is unaffected throughout)\n");
}

void VersionAblation(bsbench::JsonReport& report) {
  bsbench::PrintSection("2. rule-set version ablation (Fig. 8 vector across versions)");
  std::printf("%-10s | %18s | %s\n", "version", "identifiers banned",
              "VERSION-flood Sybil loop viable?");
  bsbench::PrintRule();
  for (CoreVersion version :
       {CoreVersion::kV0_20, CoreVersion::kV0_21, CoreVersion::kV0_22}) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig config;
    config.core_version = version;
    Node target(sched, net, kTargetIp, config);
    target.Start();
    AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
    bsattack::SerialSybilConfig sc;
    sc.max_identifiers = 10;
    bsattack::SerialSybilAttack attack(attacker, {kTargetIp, 8333}, sc);
    attack.Start();
    sched.RunUntil(20 * bsim::kSecond);
    std::printf("%-10s | %18d | %s\n", ToString(version), attack.IdentifiersBanned(),
                attack.IdentifiersBanned() > 0 ? "yes" : "no (VERSION rules removed)");
    report.Add(std::string("sybil_bans_") + ToString(version),
               attack.IdentifiersBanned());
  }
}

void ThresholdSweep(bsbench::JsonReport& report) {
  bsbench::PrintSection("3. ban-threshold sweep (duplicate-VERSION attack)");
  std::printf("%-10s | %18s | %16s\n", "threshold", "mean time-to-ban(s)",
              "msgs/identifier");
  bsbench::PrintRule();
  for (int threshold : {20, 50, 100, 200, 500}) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig config;
    config.ban_threshold = threshold;
    Node target(sched, net, kTargetIp, config);
    target.Start();
    AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
    bsattack::SerialSybilConfig sc;
    sc.max_identifiers = 5;
    bsattack::SerialSybilAttack attack(attacker, {kTargetIp, 8333}, sc);
    attack.Start();
    sched.RunUntil(30 * bsim::kSecond);
    double mean_msgs = 0;
    for (const auto& rec : attack.Records()) {
      mean_msgs += static_cast<double>(rec.messages_sent);
    }
    mean_msgs /= std::max<std::size_t>(1, attack.Records().size());
    std::printf("%-10d | %18.4f | %16.1f\n", threshold, attack.MeanTimeToBan(),
                mean_msgs);
    report.Add("time_to_ban_threshold_" + std::to_string(threshold),
               attack.MeanTimeToBan());
  }
  std::printf("\n(the threshold trades attacker-eviction speed against Defamation cost:\n"
              " lower thresholds also let a Defamation attacker ban innocents faster)\n");
}

void ChecksumOrderingAblation(bsbench::JsonReport& report) {
  bsbench::PrintSection("4. checksum-before-misbehavior ordering (the §III-B loophole)");
  std::printf("%-28s | %18s | %s\n", "pipeline order", "bogus frames sent",
              "attacker banned?");
  bsbench::PrintRule();
  for (bool stock : {true, false}) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig config;
    config.checksum_before_misbehavior = stock;
    Node target(sched, net, kTargetIp, config);
    target.Start();
    AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
    Crafter crafter(config.chain);
    AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
    sched.RunUntil(bsim::kSecond);
    const auto frame = crafter.BogusBlockFrame(config.chain.magic, 10'000);
    int sent = 0;
    for (; sent < 50 && !session->closed; ++sent) {
      attacker.SendRawFrame(*session, frame);
      sched.RunUntil(sched.Now() + 10 * bsim::kMillisecond);
    }
    std::printf("%-28s | %18d | %s\n",
                stock ? "checksum first (Core)" : "misbehavior first (ablation)", sent,
                session->closed ? "yes" : "no  <- the loophole");
    report.Add(stock ? "checksum_first_attacker_banned"
                     : "misbehavior_first_attacker_banned",
               session->closed ? 1 : 0);
  }
}

void BanRegimeAblation(bsbench::JsonReport& report) {
  bsbench::PrintSection(
      "5. banning regime: 0.20.0 per-[IP:Port] 24h bans vs 0.21+ per-IP "
      "discouragement");
  std::printf("%-30s | %-22s | %s\n", "property", "ban (paper's regime)",
              "discouragement");
  bsbench::PrintRule();

  auto run = [](bool discourage) {
    struct Outcome {
      bool fresh_port_reconnects;
      bool expires;
    };
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig config;
    config.use_discouragement = discourage;
    config.ban_duration = bsim::kMinute;  // shortened so expiry is observable
    Node node(sched, net, kTargetIp, config);
    node.Start();
    AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
    Crafter crafter(config.chain);
    AttackSession* session = attacker.OpenSession({kTargetIp, 8333});
    sched.RunUntil(bsim::kSecond);
    attacker.Send(*session, crafter.SegwitInvalidTx());
    sched.RunUntil(sched.Now() + bsim::kSecond);

    Outcome outcome{};
    AttackSession* sybil = attacker.OpenSession({kTargetIp, 8333});  // fresh port
    sched.RunUntil(sched.Now() + bsim::kSecond);
    outcome.fresh_port_reconnects = sybil->SessionReady();

    sched.RunUntil(sched.Now() + 5 * bsim::kMinute);  // past the ban duration
    AttackSession* later =
        attacker.OpenSession({kTargetIp, 8333}, true, session->local.port);
    sched.RunUntil(sched.Now() + bsim::kSecond);
    outcome.expires = later->SessionReady();
    return outcome;
  };

  const auto ban = run(false);
  const auto disc = run(true);
  report.Add("ban_regime_fresh_port_reconnects", ban.fresh_port_reconnects ? 1 : 0);
  report.Add("discouragement_fresh_port_reconnects",
             disc.fresh_port_reconnects ? 1 : 0);
  std::printf("%-30s | %-22s | %s\n", "fresh Sybil port reconnects?",
              ban.fresh_port_reconnects ? "yes (the Fig. 8 loop)" : "no",
              disc.fresh_port_reconnects ? "yes" : "no (whole IP marked)");
  std::printf("%-30s | %-22s | %s\n", "mark expires?",
              ban.expires ? "yes (ban duration)" : "no",
              disc.expires ? "yes" : "no (until restart)");
  std::printf("\n(discouragement closes the Sybil-port loophole but turns a single\n"
              " Defamation injection into a whole-IP, no-expiry blacklisting —\n"
              " the trade-off behind Core's post-disclosure redesign)\n");
}

void ReconnectBackoffAblation(bsbench::JsonReport& report) {
  bsbench::PrintSection(
      "6. outbound-reconnect backoff (beyond-paper hardening, off by default)");
  std::printf("%-26s | %20s | %s\n", "redial policy", "dial failures (120 s)",
              "failures/min");
  bsbench::PrintRule();

  // The dialer's only known address refuses every inbound connection
  // (max_inbound = 0 answers each accepted session with an RST), so the
  // outbound-maintenance loop fails over and over. The stock node redials on
  // every maintenance tick — the very churn that keeps the Fig. 8
  // serial-Sybil and Defamation reconnect loops cheap; with backoff on, the
  // redial interval doubles to the cap and the loop slows by an order of
  // magnitude.
  auto run = [](bool backoff) {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig refuser_config;
    refuser_config.target_outbound = 0;
    refuser_config.max_inbound = 0;
    Node refuser(sched, net, kInnocentIp, refuser_config);
    refuser.Start();

    NodeConfig config;
    config.target_outbound = 1;
    config.reconnect_backoff = backoff;
    config.reconnect_backoff_cap = 30 * bsim::kSecond;
    Node dialer(sched, net, kTargetIp, config);
    dialer.AddKnownAddress({kInnocentIp, 8333});
    dialer.Start();
    sched.RunUntil(2 * bsim::kMinute);
    return dialer.OutboundDialFailures();
  };

  const std::uint64_t stock = run(false);
  const std::uint64_t hardened = run(true);
  std::printf("%-26s | %20llu | %10.1f\n", "stock (every tick)",
              static_cast<unsigned long long>(stock), stock / 2.0);
  std::printf("%-26s | %20llu | %10.1f\n", "exponential backoff",
              static_cast<unsigned long long>(hardened), hardened / 2.0);
  report.Add("dial_failures_stock", static_cast<double>(stock));
  report.Add("dial_failures_backoff", static_cast<double>(hardened));
  std::printf("\n(benchmark default keeps the stock behaviour: the Fig. 8 timings\n"
              " depend on the 0.20.0 redial cadence; the switch exists so the\n"
              " chaos/robustness experiments can bound reconnect churn)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle("bench_ablation_countermeasures — design-choice ablations");
  bsbench::JsonReport report("bench_ablation_countermeasures");
  report.SetSeed(42);  // NodeConfig default; every node derives from it
  PolicyAblation(report);
  VersionAblation(report);
  ThresholdSweep(report);
  ChecksumOrderingAblation(report);
  BanRegimeAblation(report);
  ReconnectBackoffAblation(report);
  report.WriteTo(json_path);
  return 0;
}
