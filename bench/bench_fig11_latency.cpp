// Fig. 11 reproduction: training and testing latency of our statistical
// detection engine vs the seven ML baselines from the literature (LR, GB,
// RF, SVM, DNN, OC-SVM, AE).
//
// All approaches consume the same dataset: per-minute feature vectors
// (message rate, reconnection rate, per-type distribution shares) covering
// the paper's 35-hour training horizon (2100 minutes), with labeled attack
// minutes appended for the supervised models. The paper's claim: the
// statistical engine is at least FOUR orders of magnitude faster than the
// ML approaches in both training and testing. google-benchmark runs for the
// statistical engine follow the table.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "detect/engine.hpp"
#include "mlbase/autoencoder.hpp"
#include "mlbase/boosting.hpp"
#include "mlbase/dnn.hpp"
#include "mlbase/forest.hpp"
#include "mlbase/logistic.hpp"
#include "mlbase/ocsvm.hpp"
#include "mlbase/kernel_svm.hpp"
#include "mlbase/svm.hpp"

namespace {

using bsdetect::FeatureWindow;
using bsdetect::StatEngine;
using bsml::Detector;
using bsml::LabeledData;

constexpr std::size_t kTrainingMinutes = 2100;  // the paper's ~35 hours
constexpr std::size_t kAttackMinutes = 400;
constexpr std::size_t kFeatureDims = 28;  // rate, reconnects, 26 type shares
constexpr std::size_t kTestSamples = 500;

/// The same data rendered two ways: FeatureWindows for the statistical
/// engine, a labeled matrix for the ML baselines.
struct Corpus {
  std::vector<FeatureWindow> windows;
  LabeledData labeled;
  bsml::Mat test_X;
  std::vector<int> test_y;
};

Corpus MakeCorpus() {
  Corpus corpus;
  const LabeledData train = bsml::MakeSyntheticTrafficData(
      kTrainingMinutes, kAttackMinutes, kFeatureDims, /*seed=*/271);
  corpus.labeled = train;
  const LabeledData test =
      bsml::MakeSyntheticTrafficData(kTestSamples, kTestSamples, kFeatureDims, 272);
  corpus.test_X = test.X;
  corpus.test_y = test.y;

  // Render the normal rows as feature windows for the statistical engine.
  for (std::size_t i = 0; i < train.X.size(); ++i) {
    if (train.y[i] != 0) continue;
    FeatureWindow w;
    w.window_minutes = 1;
    w.n = train.X[i][0];
    w.c = train.X[i][1];
    for (std::size_t d = 2; d < kFeatureDims; ++d) {
      w.counts["type" + std::to_string(d)] = std::max(0.0, train.X[i][d]);
    }
    corpus.windows.push_back(std::move(w));
  }
  return corpus;
}

FeatureWindow RowToWindow(const bsml::Vec& row) {
  FeatureWindow w;
  w.window_minutes = 1;
  w.n = row[0];
  w.c = row[1];
  for (std::size_t d = 2; d < row.size(); ++d) {
    w.counts["type" + std::to_string(d)] = std::max(0.0, row[d]);
  }
  return w;
}

struct LatencyRow {
  const char* name;
  double train_sec;
  double test_sec;  // over kTestSamples*2 samples
  double accuracy;
};

LatencyRow MeasureMl(const char* name, Detector& model, const Corpus& corpus) {
  LatencyRow row;
  row.name = name;
  row.train_sec =
      bsbench::TimeSeconds([&]() { model.Fit(corpus.labeled.X, corpus.labeled.y); });
  int correct = 0;
  row.test_sec = bsbench::TimeSeconds([&]() {
    for (std::size_t i = 0; i < corpus.test_X.size(); ++i) {
      correct += model.Predict(corpus.test_X[i]) == corpus.test_y[i] ? 1 : 0;
    }
  });
  row.accuracy = static_cast<double>(correct) / static_cast<double>(corpus.test_X.size());
  return row;
}

const Corpus& SharedCorpus() {
  static const Corpus corpus = MakeCorpus();
  return corpus;
}

void BM_StatEngineTrain(benchmark::State& state) {
  const Corpus& corpus = SharedCorpus();
  for (auto _ : state) {
    StatEngine engine;
    engine.Train(corpus.windows);
    benchmark::DoNotOptimize(engine.GetProfile());
  }
}
BENCHMARK(BM_StatEngineTrain);

void BM_StatEngineDetect(benchmark::State& state) {
  const Corpus& corpus = SharedCorpus();
  StatEngine engine;
  engine.Train(corpus.windows);
  const FeatureWindow probe = RowToWindow(corpus.test_X[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Detect(probe));
  }
}
BENCHMARK(BM_StatEngineDetect);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle("bench_fig11_latency — Fig. 11: detection training/testing "
                      "latency, ours vs ML baselines");
  const Corpus& corpus = SharedCorpus();
  std::printf("dataset: %zu normal minutes (paper: 35 h), %zu attack minutes, "
              "%zu features, %zu test samples\n",
              corpus.windows.size(), kAttackMinutes, kFeatureDims,
              corpus.test_X.size());

  std::vector<LatencyRow> rows;

  // Ours: statistical threshold training + window tests. The engine's own
  // bsobs instrumentation (detection-latency histogram) lands in the report.
  bsobs::MetricsRegistry metrics;
  {
    LatencyRow row;
    row.name = "Ours (stat)";
    StatEngine engine;
    engine.AttachMetrics(metrics);
    row.train_sec = bsbench::TimeSeconds([&]() { engine.Train(corpus.windows); });
    int correct = 0;
    // Pre-render windows so the measurement covers detection, not parsing.
    std::vector<FeatureWindow> probes;
    probes.reserve(corpus.test_X.size());
    for (const auto& x : corpus.test_X) probes.push_back(RowToWindow(x));
    row.test_sec = bsbench::TimeSeconds([&]() {
      for (std::size_t i = 0; i < probes.size(); ++i) {
        correct += engine.Detect(probes[i]).anomalous == (corpus.test_y[i] == 1) ? 1 : 0;
      }
    });
    row.accuracy = static_cast<double>(correct) / static_cast<double>(probes.size());
    rows.push_back(row);
  }

  {
    // Baselines are configured at the sizes the cited works use (hundreds of
    // boosting rounds / trees / epochs), not at quick-test defaults.
    bsml::LogisticRegression::Config c;
    c.epochs = 1000;
    bsml::LogisticRegression m(c);
    rows.push_back(MeasureMl("LR", m, corpus));
  }
  {
    bsml::GradientBoosting::Config c;
    c.rounds = 300;
    c.max_depth = 4;
    bsml::GradientBoosting m(c);
    rows.push_back(MeasureMl("GB", m, corpus));
  }
  {
    bsml::RandomForest::Config c;
    c.num_trees = 150;
    c.max_depth = 10;
    bsml::RandomForest m(c);
    rows.push_back(MeasureMl("RF", m, corpus));
  }
  {
    // The literature baselines are sklearn SVC / OneClassSVM — kernel
    // methods; the linear variants exist in bsml but are not what Fig. 11
    // compares against.
    bsml::KernelSvm::Config c;
    c.iterations = 40'000;
    bsml::KernelSvm m(c);
    rows.push_back(MeasureMl("SVM", m, corpus));
  }
  {
    bsml::Dnn::Config c;
    c.epochs = 300;
    bsml::Dnn m(c);
    rows.push_back(MeasureMl("DNN", m, corpus));
  }
  {
    bsml::KernelOneClass m;
    rows.push_back(MeasureMl("OC-SVM", m, corpus));
  }
  {
    bsml::AutoEncoder::Config c;
    c.epochs = 300;
    bsml::AutoEncoder m(c);
    rows.push_back(MeasureMl("AE", m, corpus));
  }

  bsbench::PrintSection("training / testing latency (Fig. 11 series)");
  std::printf("%-12s | %14s | %14s | %9s | %16s\n", "approach", "train (s)",
              "test (s)", "accuracy", "train vs ours");
  bsbench::PrintRule();
  const double ours_train = rows[0].train_sec;
  for (const auto& row : rows) {
    std::printf("%-12s | %14.6g | %14.6g | %9.3f | %15.0fx\n", row.name, row.train_sec,
                row.test_sec, row.accuracy, row.train_sec / ours_train);
  }

  bsbench::PrintSection("shape check");
  double min_ml_train = 1e300, max_ml_train = 0.0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    min_ml_train = std::min(min_ml_train, rows[i].train_sec);
    max_ml_train = std::max(max_ml_train, rows[i].train_sec);
  }
  std::printf("training speedup of ours vs ML baselines: %.0fx .. %.0fx\n",
              min_ml_train / ours_train, max_ml_train / ours_train);
  std::printf("statistical engine is fastest across the board: %s\n",
              min_ml_train > ours_train ? "yes (the paper's ordering)" : "NO");
  std::printf(
      "note: the paper reports >=4 orders of magnitude against sklearn/Python\n"
      "baselines; ours are native C++ reimplementations, so the gap here is the\n"
      "algorithmic one (1.5-3.5 orders) without the interpreter overhead.\n"
      "See EXPERIMENTS.md for the discussion.\n");

  bsbench::PrintSection("google-benchmark runs for the statistical engine");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  bsbench::JsonReport report("bench_fig11_latency");
  report.SetSeed(271);  // the synthetic-workload seed above
  for (const auto& row : rows) {
    report.Add(std::string("train_sec_") + row.name, row.train_sec);
    report.Add(std::string("test_sec_") + row.name, row.test_sec);
    report.Add(std::string("accuracy_") + row.name, row.accuracy);
  }
  report.Add("ml_train_speedup_min", min_ml_train / ours_train);
  report.Add("ml_train_speedup_max", max_ml_train / ours_train);
  report.AttachRegistry(metrics);
  report.WriteTo(json_path);
  return 0;
}
