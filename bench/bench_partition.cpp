// Routing-partition resilience: the detection + graduated-recovery headline.
//
// The adversary is the Hijacking-Bitcoin routing attacker (arXiv:1605.07524):
// it does not cut links, it *detours* them. Here the victim's side of the
// topology keeps every TCP session alive while all return traffic from the
// mining side crawls through a 45 s detour — blocks still arrive, merely 45 s
// late, so the victim's view is permanently ~15 blocks stale and no
// single-signal heuristic (a dead peer, a closed socket) ever fires.
//
//   * stock    — the 0.20.0-faithful node. Its outbound slots are full of
//                same-side peers, it has no reason to dial beyond them, and
//                it tracks the detoured feed forever: the tip gap never
//                closes within the run.
//   * hardened — enable_partition_resilience. A listen-only witness node
//                with healthy routes keeps answering tip-probes with the
//                true height; the fused suspicion score arms, the recovery
//                ladder walks feeler burst → anchor re-dial → emergency
//                outbound slot, and when the victim's /16 is healed the
//                emergency dial reaches the mining side, header-syncs, and
//                snaps the tip to the global best. Partition-aware damping
//                (plus its divergence header-sync) keeps the reconverged
//                victim's fresh-block relay from marching it to a ban at the
//                still-stale buddies — they reconverge through it instead.
//   * hardened+restart — same, but the victim crashes mid-partition (durable
//                store on) and the reborn process must re-detect and still
//                reconverge on schedule.
//
// Reported per phase: tip-gap-to-miner series (1 s samples), final gap,
// reconverge time from the heal, partition counters, honest-ban census.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/node.hpp"
#include "sim/faults.hpp"
#include "sim/simfs.hpp"

namespace {

using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kVictimIp = 0x0a100001;   // 10.16.0.1
constexpr std::uint32_t kWitnessIp = 0x0a280001;  // 10.40.0.1 — neither side
constexpr std::uint32_t kMinerIp = 0x0a200001;    // 10.32.0.1
constexpr int kBuddies = 4;                       // 10.17-10.20.0.1
constexpr int kRelays = 3;                        // 10.33-10.35.0.1
constexpr int kTargetOutbound = 4;
constexpr int kRunSeconds = 90;
constexpr bsim::SimTime kMineEvery = 3 * bsim::kSecond;
constexpr bsim::SimTime kLearnWideNet = 5 * bsim::kSecond;
constexpr bsim::SimTime kPartitionAt = 10 * bsim::kSecond;
constexpr bsim::SimTime kHealAt = 45 * bsim::kSecond;
constexpr bsim::SimTime kCrashAt = 30 * bsim::kSecond;
constexpr bsim::SimTime kRestartAfter = 4 * bsim::kSecond;
constexpr bsim::SimTime kDetourDelay = 45 * bsim::kSecond;

constexpr std::uint32_t BuddyIp(int i) {
  return 0x0a000001 + (static_cast<std::uint32_t>(17 + i) << 16);
}
constexpr std::uint32_t RelayIp(int i) {
  return 0x0a000001 + (static_cast<std::uint32_t>(33 + i) << 16);
}

enum class Phase { kStock, kHardened, kHardenedRestart };

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kStock: return "stock";
    case Phase::kHardened: return "hardened";
    case Phase::kHardenedRestart: return "hardened+restart";
  }
  return "?";
}

struct PhaseResult {
  std::vector<int> gap_series;  // miner tip − victim tip, one sample per second
  int final_gap = 0;            // last sample
  double reconverge_seconds = -1.0;  // from the heal; -1 = never
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_replies = 0;
  std::uint64_t suspect_windows = 0;
  std::uint64_t recovery_actions = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t deferred_penalties = 0;  // victim + buddies
  std::uint64_t stale_tip_events = 0;
  std::size_t honest_bans = 0;  // every node in this world is honest
  int max_honest_score = 0;     // worst tracker score anywhere in the world
  std::size_t victim_outbound_final = 0;
  int victim_height = 0;
  int miner_height = 0;
  std::uint64_t routing_partitions = 0;
  std::uint64_t delayed_segments = 0;
  std::uint64_t host_crashes = 0;
};

NodeConfig VictimConfig(Phase phase) {
  NodeConfig config;
  config.target_outbound = kTargetOutbound;
  if (phase == Phase::kStock) return config;
  config.enable_partition_resilience = true;  // partition_damping defaults on
  config.enable_anchors = true;
  config.enable_stale_tip_recovery = true;
  config.stale_tip_timeout = 15 * bsim::kSecond;
  return config;
}

PhaseResult RunPhase(Phase phase) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::FaultPlan plan(sched, /*seed=*/4242);
  net.SetFaultPlan(&plan);
  bsim::SimFs fs(7);

  NodeConfig config = VictimConfig(phase);
  if (phase == Phase::kHardenedRestart) {
    config.enable_durable_store = true;
    config.store_dir = "partition-bench-store";
    config.store_fs = &fs;
  }

  // Mining side: one miner + a small relay mesh, each in its own /16.
  std::vector<std::unique_ptr<Node>> world;
  const auto add_node = [&](std::uint32_t ip, NodeConfig nc,
                            std::vector<std::uint32_t> known,
                            bsim::SimTime start_at) -> Node* {
    auto node = std::make_unique<Node>(sched, net, ip, nc);
    for (const std::uint32_t k : known) node->AddKnownAddress({k, 8333});
    Node* raw = node.get();
    sched.After(start_at, [raw]() { raw->Start(); });
    world.push_back(std::move(node));
    return raw;
  };

  NodeConfig miner_cfg;
  miner_cfg.chain = config.chain;
  miner_cfg.target_outbound = kRelays;
  miner_cfg.rng_seed = 2000;
  Node* miner = add_node(kMinerIp, miner_cfg,
                         {RelayIp(0), RelayIp(1), RelayIp(2)}, 0);
  for (int i = 0; i < kRelays; ++i) {
    NodeConfig rc;
    rc.chain = config.chain;
    rc.target_outbound = 2;
    rc.rng_seed = 2100 + static_cast<std::uint64_t>(i);
    add_node(RelayIp(i), rc, {kMinerIp, RelayIp((i + 1) % kRelays)},
             50 * bsim::kMillisecond * (i + 1));
  }

  // Victim-side buddies: each bridges one detoured relay link into the
  // victim's side of the cut. Hardened phases switch their monitor on too —
  // the damping A/B at the buddies is part of what the phase compares.
  std::vector<Node*> buddies;
  for (int i = 0; i < kBuddies; ++i) {
    NodeConfig bc;
    bc.chain = config.chain;
    bc.target_outbound = 2;
    bc.rng_seed = 1000 + static_cast<std::uint64_t>(i);
    bc.enable_partition_resilience = phase != Phase::kStock;
    buddies.push_back(add_node(BuddyIp(i), bc, {RelayIp(i % kRelays), kVictimIp},
                               300 * bsim::kMillisecond + i * 50 * bsim::kMillisecond));
  }

  // The witness: a listen-only node in a /16 the detour does not touch, with
  // healthy routes to both sides. relay=false means it never announces a
  // block to anyone — the only thing it leaks is tip-probe answers, which is
  // exactly the gossip channel the partition monitor feeds on.
  NodeConfig wc;
  wc.chain = config.chain;
  wc.target_outbound = 2;
  wc.rng_seed = 3000;
  wc.relay = false;
  wc.enable_partition_resilience = true;
  add_node(kWitnessIp, wc, {kVictimIp, kMinerIp}, 600 * bsim::kMillisecond);

  // The victim: boots knowing only its own side. The wider network's
  // addresses arrive shortly after boot — the stock node's slots are already
  // full by then, so only the partition machinery ever uses them.
  std::vector<std::unique_ptr<Node>> graveyard;
  std::unique_ptr<Node> victim;
  const auto spawn_victim = [&](bool knows_wide_net) {
    auto node = std::make_unique<Node>(sched, net, kVictimIp, config);
    for (int i = 0; i < kBuddies; ++i) node->AddKnownAddress({BuddyIp(i), 8333});
    if (knows_wide_net) {
      node->AddKnownAddress({kMinerIp, 8333});
      for (int i = 0; i < kRelays; ++i) node->AddKnownAddress({RelayIp(i), 8333});
    }
    node->Start();
    return node;
  };
  sched.After(bsim::kSecond, [&]() { victim = spawn_victim(false); });
  sched.After(kLearnWideNet, [&]() {
    if (victim == nullptr) return;
    victim->AddKnownAddress({kMinerIp, 8333});
    for (int i = 0; i < kRelays; ++i) victim->AddKnownAddress({RelayIp(i), 8333});
  });

  auto mine = std::make_shared<std::function<void()>>();
  *mine = [&sched, miner, mine]() {
    miner->MineAndRelay();
    sched.After(kMineEvery, [mine]() { (*mine)(); });
  };
  sched.After(2 * bsim::kSecond, [mine]() { (*mine)(); });

  // The routing cut: every segment from the mining side back to the victim's
  // side takes the 45 s detour; the forward path is untouched (the pure
  // one-way hijack). At kHealAt only the victim's own /16 is repaired — the
  // staged, prefix-by-prefix resolution of a real incident.
  std::vector<std::uint32_t> side_a = {bsim::FaultPlan::GroupOf(kVictimIp)};
  for (int i = 0; i < kBuddies; ++i) {
    side_a.push_back(bsim::FaultPlan::GroupOf(BuddyIp(i)));
  }
  std::vector<std::uint32_t> side_b = {bsim::FaultPlan::GroupOf(kMinerIp)};
  for (int i = 0; i < kRelays; ++i) {
    side_b.push_back(bsim::FaultPlan::GroupOf(RelayIp(i)));
  }
  plan.ScheduleDelayPartition(side_a, side_b, /*ab=*/0, /*ba=*/kDetourDelay,
                              kPartitionAt);
  plan.SchedulePartialHeal({bsim::FaultPlan::GroupOf(kVictimIp)}, side_b, kHealAt);

  if (phase == Phase::kHardenedRestart) {
    plan.on_host_crash = [&](std::uint32_t ip) {
      if (ip != kVictimIp || victim == nullptr) return;
      victim->Stop();
      graveyard.push_back(std::move(victim));
    };
    plan.on_host_restart = [&](std::uint32_t ip) {
      if (ip == kVictimIp) victim = spawn_victim(true);
    };
    plan.ScheduleCrash(kVictimIp, kCrashAt, kRestartAfter);
  }

  PhaseResult result;
  result.gap_series.reserve(kRunSeconds);
  for (int s = 1; s <= kRunSeconds; ++s) {
    sched.RunUntil(s * bsim::kSecond);
    const int miner_h = miner->Chain().TipHeight();
    const int victim_h = victim == nullptr ? 0 : victim->Chain().TipHeight();
    result.gap_series.push_back(miner_h - victim_h);
  }

  result.final_gap = result.gap_series.back();
  // Reconvergence: seconds from the heal until the gap drops to <= 1 block
  // and stays there for the rest of the run.
  const int heal_s = static_cast<int>(kHealAt / bsim::kSecond);
  int last_bad = -1;
  for (int i = heal_s; i < static_cast<int>(result.gap_series.size()); ++i) {
    if (result.gap_series[static_cast<std::size_t>(i)] > 1) last_bad = i;
  }
  if (last_bad == -1) {
    result.reconverge_seconds = 0.0;
  } else if (last_bad + 1 == static_cast<int>(result.gap_series.size())) {
    result.reconverge_seconds = -1.0;  // still diverged at the end
  } else {
    result.reconverge_seconds = static_cast<double>(last_bad + 2 - heal_s);
  }

  if (victim != nullptr) {
    result.probes_sent = victim->TipProbesSent();
    result.probe_replies = victim->TipProbeReplies();
    result.suspect_windows = victim->PartitionSuspectWindows();
    result.recovery_actions = victim->PartitionRecoveryActions();
    result.recoveries = victim->PartitionRecoveries();
    result.deferred_penalties = victim->DeferredPenalties();
    result.stale_tip_events = victim->StaleTipEvents();
    result.victim_outbound_final = victim->OutboundCount();
    result.victim_height = victim->Chain().TipHeight();
  }
  result.miner_height = miner->Chain().TipHeight();

  // Honest-ban census over the whole world: there is no attacker here, so
  // every ban and every tracker point is friendly fire.
  const auto census = [&](Node& node) {
    result.honest_bans += node.Bans().Size();
    for (const bsnet::Peer* peer : node.Peers()) {
      result.max_honest_score =
          std::max(result.max_honest_score, node.Tracker().Score(peer->id));
    }
  };
  for (const auto& node : world) census(*node);
  if (victim != nullptr) census(*victim);
  for (Node* buddy : buddies) {
    result.deferred_penalties += buddy->DeferredPenalties();
  }

  result.routing_partitions = plan.RoutingPartitions();
  result.delayed_segments = plan.SegmentsDelayedRouting();
  result.host_crashes = plan.HostCrashes();
  return result;
}

std::string SeriesJson(const std::vector<int>& series) {
  std::string out = "[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%s%d", i > 0 ? "," : "", series[i]);
    out += buf;
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle(
      "bench_partition — asymmetric routing detour vs partition resilience");
  std::printf(
      "victim /16 + %d buddy /16s detoured from the mining side (B->A +%d s,\n"
      "A->B clean) at t=%ds; victim's own /16 healed at t=%ds; miner on a %d s\n"
      "cadence; listen-only witness with healthy routes answers tip-probes;\n"
      "restart phase crashes the victim at t=%ds (+%ds rebirth); %d s run\n",
      kBuddies, static_cast<int>(kDetourDelay / bsim::kSecond),
      static_cast<int>(kPartitionAt / bsim::kSecond),
      static_cast<int>(kHealAt / bsim::kSecond),
      static_cast<int>(kMineEvery / bsim::kSecond),
      static_cast<int>(kCrashAt / bsim::kSecond),
      static_cast<int>(kRestartAfter / bsim::kSecond), kRunSeconds);

  bsbench::JsonReport report("bench_partition");
  report.SetSeed(42);  // NodeConfig default; every node derives from it

  bsbench::PrintSection("tip gap to the miner, by phase");
  std::printf("%-17s | %6s | %7s | %7s | %7s | %7s | %6s | %5s | %5s\n", "phase",
              "final", "reconv", "windows", "actions", "probes", "defer", "bans",
              "score");
  bsbench::PrintRule();

  std::vector<std::pair<Phase, PhaseResult>> results;
  for (const Phase phase :
       {Phase::kStock, Phase::kHardened, Phase::kHardenedRestart}) {
    const PhaseResult r = RunPhase(phase);
    std::printf(
        "%-17s | %6d | %7s | %7llu | %7llu | %7llu | %6llu | %5zu | %5d\n",
        PhaseName(phase), r.final_gap,
        r.reconverge_seconds < 0
            ? "never"
            : std::to_string(static_cast<int>(r.reconverge_seconds)).c_str(),
        static_cast<unsigned long long>(r.suspect_windows),
        static_cast<unsigned long long>(r.recovery_actions),
        static_cast<unsigned long long>(r.probes_sent),
        static_cast<unsigned long long>(r.deferred_penalties), r.honest_bans,
        r.max_honest_score);
    const std::string key = PhaseName(phase);
    report.Add("final_gap_" + key, r.final_gap);
    report.Add("reconverge_seconds_" + key, r.reconverge_seconds);
    report.Add("suspect_windows_" + key, r.suspect_windows);
    report.Add("recovery_actions_" + key, r.recovery_actions);
    report.Add("recoveries_" + key, r.recoveries);
    report.Add("probes_sent_" + key, r.probes_sent);
    report.Add("probe_replies_" + key, r.probe_replies);
    report.Add("deferred_penalties_" + key, r.deferred_penalties);
    report.Add("stale_tip_events_" + key, r.stale_tip_events);
    report.Add("honest_bans_" + key, static_cast<std::uint64_t>(r.honest_bans));
    report.Add("max_honest_score_" + key, r.max_honest_score);
    report.Add("victim_outbound_final_" + key,
               static_cast<std::uint64_t>(r.victim_outbound_final));
    report.Add("victim_height_" + key, r.victim_height);
    report.Add("miner_height_" + key, r.miner_height);
    report.Add("routing_partitions_" + key, r.routing_partitions);
    report.Add("delayed_segments_" + key, r.delayed_segments);
    report.AddRaw("series_gap_" + key, SeriesJson(r.gap_series));
    results.emplace_back(phase, r);
  }

  const auto find = [&](Phase phase) -> const PhaseResult& {
    for (const auto& [p, r] : results) {
      if (p == phase) return r;
    }
    return results.front().second;
  };
  const PhaseResult& stock = find(Phase::kStock);
  const PhaseResult& hard = find(Phase::kHardened);
  const PhaseResult& restart = find(Phase::kHardenedRestart);

  bsbench::PrintSection("shape checks (the acceptance criteria)");
  std::printf("stock never reconverges within the run (final gap >= 5): %s (%d)\n",
              stock.final_gap >= 5 ? "yes" : "NO", stock.final_gap);
  std::printf("stock blind to the cut (0 suspect windows):              %s (%llu)\n",
              stock.suspect_windows == 0 ? "yes" : "NO",
              static_cast<unsigned long long>(stock.suspect_windows));
  std::printf("hardened reconverges to within 1 block (final <= 1):     %s (%d)\n",
              hard.final_gap <= 1 ? "yes" : "NO", hard.final_gap);
  std::printf("hardened reconverge time bounded (0 < t <= 30 s):        %s (%s)\n",
              hard.reconverge_seconds > 0 && hard.reconverge_seconds <= 30
                  ? "yes"
                  : "NO",
              hard.reconverge_seconds < 0
                  ? "never"
                  : std::to_string(static_cast<int>(hard.reconverge_seconds)).c_str());
  std::printf("suspicion armed before the heal (windows >= 1):          %s (%llu)\n",
              hard.suspect_windows >= 1 ? "yes" : "NO",
              static_cast<unsigned long long>(hard.suspect_windows));
  std::printf("recovery ladder ran (actions >= 3):                      %s (%llu)\n",
              hard.recovery_actions >= 3 ? "yes" : "NO",
              static_cast<unsigned long long>(hard.recovery_actions));
  std::printf("tip probes flowed both ways (sent and answered):         %s (%llu/%llu)\n",
              hard.probes_sent > 0 && hard.probe_replies > 0 ? "yes" : "NO",
              static_cast<unsigned long long>(hard.probes_sent),
              static_cast<unsigned long long>(hard.probe_replies));
  std::printf("no honest node banned any other (all phases):            %s (%zu/%zu/%zu)\n",
              stock.honest_bans + hard.honest_bans + restart.honest_bans == 0
                  ? "yes"
                  : "NO",
              stock.honest_bans, hard.honest_bans, restart.honest_bans);
  std::printf("honest scores stay under the ban threshold (< 100):      %s (%d)\n",
              hard.max_honest_score < 100 && restart.max_honest_score < 100
                  ? "yes"
                  : "NO",
              std::max(hard.max_honest_score, restart.max_honest_score));
  std::printf("emergency slot released after recovery (outbound == %d):  %s (%zu)\n",
              kTargetOutbound,
              hard.victim_outbound_final == static_cast<std::size_t>(kTargetOutbound)
                  ? "yes"
                  : "NO",
              hard.victim_outbound_final);
  std::printf("reborn victim re-detects and reconverges (final <= 1):   %s (%d)\n",
              restart.final_gap <= 1 ? "yes" : "NO", restart.final_gap);
  std::printf("crash actually happened in the restart phase:            %s (%llu)\n",
              restart.host_crashes >= 1 ? "yes" : "NO",
              static_cast<unsigned long long>(restart.host_crashes));
  report.WriteTo(json_path);
  return 0;
}
