// Fig. 6 reproduction: BM-DoS impact on the victim's mining rate.
//
// Scenario: a victim node with ~10 Mainnet peer connections mines while an
// attacker floods it as fast as possible (no inter-message delay) with
// either bogus BLOCK messages (invalid PoW + wrong checksum, §III-B) or
// PING messages, over 1, 10 and 20 Sybil connections. The paper reports the
// mean mining rate over 100 samples with 95% confidence intervals:
//
//   paper:  none 9.5e5 | BLOCK 1:3.5e5 10:2.8e5 20:2.6e5
//                       | PING  1:5.5e5 10:4.6e5 20:3.5e5   (h/s)
//
// Mining runs on the calibrated shared-CPU model (see sim/cpu.hpp and
// DESIGN.md); each sample is one simulated second.
#include <cstdio>
#include <string>

#include "attack/bmdos.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"
#include "util/stats.hpp"

namespace {

using bsattack::AttackerNode;
using bsattack::BmDosAttack;
using bsattack::BmDosConfig;
using bsattack::Crafter;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000002;
constexpr int kSamples = 100;  // the paper's 100 mining samples
constexpr int kNormalConnections = 10;  // Mainnet peers of the victim

// One registry shared by every scenario's victim node and scheduler: the
// --json report carries the cumulative bsobs view of the whole run.
bsobs::MetricsRegistry g_metrics;

struct SeriesPoint {
  std::string label;
  double paper_hps;
  bsutil::Summary measured;
};

bsutil::Summary RunScenario(std::optional<BmDosConfig::Payload> payload,
                            int sybil_connections) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::CpuModelConfig cpu_config;
  // Testbed-like measurement jitter so the 95% CI bars are meaningful.
  cpu_config.measurement_jitter = 0.015;
  cpu_config.jitter_seed = 42 + static_cast<std::uint64_t>(sybil_connections);
  bsim::CpuModel cpu(cpu_config);
  sched.AttachMetrics(g_metrics);
  NodeConfig config;
  config.metrics = &g_metrics;
  Node victim(sched, net, kTargetIp, config, &cpu);
  victim.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
  Crafter crafter(config.chain);

  std::unique_ptr<BmDosAttack> attack;
  if (payload) {
    BmDosConfig bm;
    bm.payload = *payload;
    bm.sybil_connections = sybil_connections;
    attack = std::make_unique<BmDosAttack>(attacker, bsproto::Endpoint{kTargetIp, 8333},
                                           crafter, bm);
    attack->Start();
  }
  cpu.SetActiveConnections(kNormalConnections + (payload ? sybil_connections : 0));

  sched.RunUntil(2 * bsim::kSecond);  // handshakes + flood warm-up

  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    cpu.BeginWindow(sched.Now());
    sched.RunUntil(sched.Now() + bsim::kSecond);
    samples.push_back(cpu.EndWindow(sched.Now()).mining_rate_hps);
  }
  if (attack) attack->Stop();
  return bsutil::Summarize(samples);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle("bench_fig6_mining_rate — Fig. 6: BM-DoS impacts mining rate");
  std::printf("victim: %d Mainnet connections, flood with no inter-message delay,\n"
              "%d samples of 1 simulated second each (mean with 95%% CI)\n",
              kNormalConnections, kSamples);

  std::vector<SeriesPoint> points;
  points.push_back({"no attack", 9.5e5, RunScenario(std::nullopt, 0)});
  points.push_back({"bogus BLOCK, 1 conn", 3.5e5,
                    RunScenario(BmDosConfig::Payload::kBogusBlock, 1)});
  points.push_back({"bogus BLOCK, 10 conns", 2.8e5,
                    RunScenario(BmDosConfig::Payload::kBogusBlock, 10)});
  points.push_back({"bogus BLOCK, 20 conns", 2.6e5,
                    RunScenario(BmDosConfig::Payload::kBogusBlock, 20)});
  points.push_back({"PING, 1 conn", 5.5e5, RunScenario(BmDosConfig::Payload::kPing, 1)});
  points.push_back({"PING, 10 conns", 4.6e5,
                    RunScenario(BmDosConfig::Payload::kPing, 10)});
  points.push_back({"PING, 20 conns", 3.5e5,
                    RunScenario(BmDosConfig::Payload::kPing, 20)});

  bsbench::PrintSection("mining rate (hashes/second)");
  std::printf("%-24s | %12s | %12s | %10s | %8s\n", "scenario", "measured",
              "95% CI +/-", "paper", "meas/pap");
  bsbench::PrintRule();
  for (const auto& p : points) {
    std::printf("%-24s | %12.3g | %12.3g | %10.3g | %8.2f\n", p.label.c_str(),
                p.measured.mean, p.measured.ci95_half_width, p.paper_hps,
                p.measured.mean / p.paper_hps);
  }

  bsbench::PrintSection("shape checks");
  const auto hps = [&](int i) { return points[static_cast<std::size_t>(i)].measured.mean; };
  std::printf("BLOCK flood beats PING flood at every width:  %s\n",
              (hps(1) < hps(4) && hps(2) < hps(5) && hps(3) < hps(6)) ? "yes" : "NO");
  // Tolerate the 1.5% measurement jitter when neighbouring points coincide
  // (our model clamps the 10- and 20-connection BLOCK cases to the same
  // saturated value).
  const auto no_greater = [&](int a, int b) { return hps(a) <= hps(b) * 1.01; };
  std::printf("more Sybil connections => lower mining rate:  %s\n",
              (no_greater(2, 1) && no_greater(3, 2) && hps(5) < hps(4) && hps(6) < hps(5))
                  ? "yes"
                  : "NO");
  std::printf("baseline is the fastest:                      %s\n",
              (hps(0) > hps(4)) ? "yes" : "NO");

  bsbench::JsonReport report("bench_fig6_mining_rate");
  report.SetSeed(42);  // NodeConfig default; every node derives from it
  for (const auto& p : points) {
    report.Add("hps_" + p.label, p.measured.mean);
    report.Add("hps_ci95_" + p.label, p.measured.ci95_half_width);
  }
  report.AttachRegistry(g_metrics);
  report.WriteTo(json_path);
  return 0;
}
