// Hot-path perf-trajectory bench: one deterministic mixed workload (honest
// ping/block traffic + a BM-DoS-style flood + a serial-Sybil misbehavior
// loop against a single victim), measured twice —
//
//   baseline run:      tracing and profiling OFF (the paper-bench default),
//   instrumented run:  SpanTracer + HotpathProfiler + scheduler dispatch
//                      probe ON,
//
// so BENCH_hotpath.json carries events/sec, ns/message, the per-stage
// ns/message profile (codec decode, tracker update, detect tick, AddrMan
// select, event dispatch), the instrumentation overhead ratio, and the full
// metrics snapshot. The deterministic counters (events dispatched, messages
// received, spans recorded) are the tight regression gate `banscore-lab
// bench-diff` enforces in scripts/check.sh; the timing fields are gated
// loosely (machines differ, counts must not).
//
// Flags: --json <path>  machine-readable report
//        --sim-seconds N  simulated duration per run (default 15)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "attack/crafter.hpp"
#include "attack/sybil.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"

namespace {

using bsattack::AttackerNode;
using bsattack::Crafter;
using bsattack::SerialSybilAttack;
using bsattack::SerialSybilConfig;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kVictimIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a0000fe;
constexpr std::uint64_t kSeed = 42;  // NodeConfig default; the whole run derives
constexpr int kHonestPeers = 4;

struct RunStats {
  double wall_sec = 0.0;
  double sim_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t frames = 0;
  std::uint64_t bans = 0;
  std::uint64_t spans = 0;
  std::uint64_t span_orphans = 0;
};

/// One full deterministic workload. `tracer`/`profiler` null = baseline mode.
/// `registry` null = private per-node registries (baseline); set = shared
/// scrape registry for the report.
RunStats RunWorkload(double sim_seconds, bsobs::SpanTracer* tracer,
                     bsobs::HotpathProfiler* profiler,
                     bsobs::MetricsRegistry* registry) {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  if (registry != nullptr) {
    sched.AttachMetrics(*registry);
    net.AttachMetrics(*registry);
  }
  sched.SetProfiler(profiler);

  NodeConfig vc;
  vc.rng_seed = kSeed;
  vc.span_tracer = tracer;
  vc.profiler = profiler;
  vc.ping_interval = 2 * bsim::kSecond;
  if (registry != nullptr) vc.metrics = registry;
  Node victim(sched, net, kVictimIp, vc);
  victim.Start();

  std::uint64_t frames = 0;
  victim.on_frame = [&frames](std::size_t, bsproto::DecodeStatus) { ++frames; };

  // Honest mesh: peers dial the victim, keepalive-ping it, and the first one
  // mines a block every sim-second (INV -> GETDATA -> BLOCK relay traffic
  // whose spans cross nodes).
  std::vector<std::unique_ptr<Node>> honest;
  for (int i = 0; i < kHonestPeers; ++i) {
    NodeConfig hc;
    hc.rng_seed = kSeed + 1 + static_cast<std::uint64_t>(i);
    hc.span_tracer = tracer;
    hc.profiler = profiler;
    hc.target_outbound = 1;
    hc.ping_interval = 500 * bsim::kMillisecond;
    auto node = std::make_unique<Node>(sched, net, 0x0a000010 + i, hc);
    node->AddKnownAddress({kVictimIp, 8333});
    node->Start();
    honest.push_back(std::move(node));
  }
  std::function<void()> mine_tick = [&]() {
    honest[0]->MineAndRelay();
    sched.After(bsim::kSecond, mine_tick);
  };
  sched.After(bsim::kSecond, mine_tick);

  // BM-DoS-style flood: 500 pings/s (typed, no rule) + 100 bogus
  // wrong-checksum BLOCK frames/s (dropped pre-tracker) from one session.
  AttackerNode attacker(sched, net, kAttackerIp, vc.chain.magic);
  attacker.SetSpanTracer(tracer);
  Crafter crafter(vc.chain);
  const bsutil::ByteVec bogus = crafter.BogusBlockFrame(vc.chain.magic, 400);
  bsattack::AttackSession* flood =
      attacker.OpenSession({kVictimIp, 8333}, /*auto_handshake=*/true);
  // Self-rescheduling flood at 500 frames/s once the handshake completes
  // (function-object and counter live at RunWorkload scope so the scheduled
  // copies' reference captures stay valid through RunUntil).
  std::uint64_t flood_n = 0;
  std::function<void()> flood_tick = [&]() {
    if (flood->closed) return;
    attacker.Send(*flood, bsproto::PingMsg{flood_n});
    if (flood_n % 5 == 0) attacker.SendRawFrame(*flood, bogus);
    ++flood_n;
    sched.After(2 * bsim::kMillisecond, flood_tick);
  };
  flood->on_ready = [&flood_tick](bsattack::AttackSession&) { flood_tick(); };

  // Serial-Sybil misbehavior loop: duplicate VERSIONs (+1 each) until each
  // identifier is banned — exercises the tracker and ban paths continuously.
  SerialSybilConfig sc;
  sc.extra_message_delay = bsim::kMillisecond;
  sc.max_identifiers = 1000000;  // run for the whole window
  SerialSybilAttack sybil(attacker, {kVictimIp, 8333}, sc);
  sybil.Start();

  RunStats stats;
  stats.wall_sec = bsbench::TimeSeconds(
      [&]() { sched.RunUntil(bsim::FromSeconds(sim_seconds)); });
  sybil.Stop();
  if (registry != nullptr) sched.SyncMetrics();

  stats.sim_sec = bsim::ToSeconds(sched.Now());
  stats.events = sched.ExecutedEvents();
  stats.messages = victim.TotalMessagesReceived();
  stats.frames = frames;
  stats.bans = victim.PeersBanned();
  if (tracer != nullptr) {
    stats.spans = tracer->Log().Recorded();
    for (const auto& rec : tracer->Log().Snapshot()) {
      if ((rec.flags & bsobs::kFlagOrphan) != 0) ++stats.span_orphans;
    }
  }
  return stats;
}

/// Detect-tick microbench: the engine is trained on synthetic windows and
/// then Detect() runs under the kDetectTick probe — deterministic input, so
/// the op count gates tightly while the ns/op gates loosely.
void RunDetectTicks(bsobs::HotpathProfiler* profiler, int iterations) {
  bsdetect::StatEngine engine;
  engine.SetProfiler(profiler);
  std::vector<bsdetect::FeatureWindow> train;
  for (int i = 0; i < 4; ++i) {
    bsdetect::FeatureWindow w;
    w.window_minutes = 1.0;
    w.n = 600.0 + 10.0 * i;
    w.c = 0.1;
    w.b = 90000.0 + 500.0 * i;
    w.counts = {{"ping", 300.0 + i}, {"pong", 300.0}, {"inv", 25.0}, {"tx", 10.0}};
    train.push_back(std::move(w));
  }
  engine.Train(train);
  bsdetect::FeatureWindow probe = train[0];
  probe.n = 9000.0;  // a BM-DoS-grade rate violation
  for (int i = 0; i < iterations; ++i) {
    probe.counts["ping"] = 300.0 + (i % 7);
    (void)engine.Detect(probe);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double sim_seconds = 15.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--sim-seconds" && i + 1 < argc) {
      sim_seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bsbench::PrintTitle("hot-path perf trajectory (seed " + std::to_string(kSeed) +
                      ", " + std::to_string(sim_seconds) + " sim-seconds)");

  // Baseline: instrumentation off, as every paper bench runs.
  const RunStats base = RunWorkload(sim_seconds, nullptr, nullptr, nullptr);

  // Instrumented: spans + profiler + scheduler metrics on.
  bsobs::MetricsRegistry registry;
  bsobs::SpanTracer tracer(1 << 16);
  bsobs::HotpathProfiler profiler;
  const RunStats inst = RunWorkload(sim_seconds, &tracer, &profiler, &registry);
  RunDetectTicks(&profiler, 10000);

  const auto per_msg_ns = [](const RunStats& s) {
    return s.messages == 0 ? 0.0 : s.wall_sec * 1e9 / static_cast<double>(s.messages);
  };
  const auto events_per_sec = [](const RunStats& s) {
    return s.wall_sec == 0.0 ? 0.0 : static_cast<double>(s.events) / s.wall_sec;
  };
  const double overhead =
      per_msg_ns(base) == 0.0 ? 0.0 : per_msg_ns(inst) / per_msg_ns(base);

  bsbench::PrintSection("workload (baseline = tracing/profiling off)");
  std::printf("%-26s %14s %14s\n", "", "baseline", "instrumented");
  std::printf("%-26s %14llu %14llu\n", "events executed",
              static_cast<unsigned long long>(base.events),
              static_cast<unsigned long long>(inst.events));
  std::printf("%-26s %14llu %14llu\n", "victim messages",
              static_cast<unsigned long long>(base.messages),
              static_cast<unsigned long long>(inst.messages));
  std::printf("%-26s %14llu %14llu\n", "victim frames",
              static_cast<unsigned long long>(base.frames),
              static_cast<unsigned long long>(inst.frames));
  std::printf("%-26s %14llu %14llu\n", "peers banned",
              static_cast<unsigned long long>(base.bans),
              static_cast<unsigned long long>(inst.bans));
  std::printf("%-26s %14.0f %14.0f\n", "events/sec", events_per_sec(base),
              events_per_sec(inst));
  std::printf("%-26s %14.1f %14.1f\n", "ns/message", per_msg_ns(base),
              per_msg_ns(inst));
  std::printf("%-26s %14s %14.3f\n", "instrumentation overhead", "1.000x",
              overhead);
  std::printf("%-26s %14s %14llu\n", "spans recorded", "-",
              static_cast<unsigned long long>(inst.spans));
  std::printf("%-26s %14s %14llu\n", "span orphans", "-",
              static_cast<unsigned long long>(inst.span_orphans));

  bsbench::PrintSection("per-stage hot-path profile (instrumented run)");
  std::fputs(profiler.RenderTable().c_str(), stdout);

  if (base.events != inst.events || base.messages != inst.messages) {
    // The instrumentation must never change simulation behaviour; a count
    // divergence here is a correctness bug, not a perf regression.
    std::fprintf(stderr,
                 "FATAL: instrumented run diverged from baseline "
                 "(events %llu vs %llu, messages %llu vs %llu)\n",
                 static_cast<unsigned long long>(base.events),
                 static_cast<unsigned long long>(inst.events),
                 static_cast<unsigned long long>(base.messages),
                 static_cast<unsigned long long>(inst.messages));
    return 1;
  }

  bsbench::JsonReport report("bench_hotpath");
  report.SetSeed(kSeed);
  report.Add("sim_seconds", inst.sim_sec);
  // Deterministic (tight gate): identical for a given seed + code version.
  report.Add("events_executed", inst.events);
  report.Add("messages_received", inst.messages);
  report.Add("frames_seen", inst.frames);
  report.Add("peers_banned", inst.bans);
  report.Add("spans_recorded", inst.spans);
  report.Add("span_orphans", inst.span_orphans);
  // Timing (loose gate): machine-dependent.
  report.Add("wall_seconds", inst.wall_sec);
  report.Add("events_per_sec", events_per_sec(inst));
  report.Add("ns_per_message", per_msg_ns(inst));
  report.Add("baseline_ns_per_message", per_msg_ns(base));
  report.Add("instrumentation_overhead_ratio", overhead);
  report.AddRaw("stages", profiler.RenderJson());
  report.AttachRegistry(registry);
  if (!report.WriteTo(json_path)) return 1;
  return 0;
}
