// Fig. 10 reproduction: anomaly detection by message-count distribution.
//
// Pipeline, as in §VII: a target node connected to a (simulated) Mainnet
// collects normal traffic to train the statistical profile — thresholds
// τ_c (outbound reconnection rate), τ_n (message rate) and τ_Λ (minimum
// correlation). Then three cases are measured:
//   * normal       — the trained profile matches (no alarm);
//   * under BM-DoS — PING flood; the count distribution collapses onto PING
//                    (paper: PING = 94.16% of messages, ρ = 0.05);
//   * under Defamation — the attacker keeps banning the target's outbound
//                    peers; VERSION/VERACK counts jump and the reconnection
//                    rate c exceeds τ_c (paper: ρ = 0.88, c = 5.3).
//
// The paper trains on ~35 hours of Mainnet traffic; we train on 2 simulated
// hours of the calibrated synthetic Mainnet (the profile converges long
// before that — the thresholds are printed for comparison with the paper's
// τ_c=[0,2.1], τ_n=[252,390], τ_Λ=0.993).
#include <cstdio>
#include <memory>
#include <set>

#include "attack/bmdos.hpp"
#include "attack/defamation.hpp"
#include "attack/traffic.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "detect/monitor.hpp"

namespace {

using namespace bsdetect;  // NOLINT
using bsattack::AttackerNode;
using bsattack::MainnetTrafficGenerator;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr int kWindowMinutes = 10;  // the paper's 10-minute window

// Shared registry: the target node, scheduler and detection engine all feed
// it, so the --json report covers the full detection pipeline.
bsobs::MetricsRegistry g_metrics;

struct Lab {
  Lab() {
    net = std::make_unique<bsim::Network>(sched);
    sched.AttachMetrics(g_metrics);
    NodeConfig config;
    config.target_outbound = 8;
    config.metrics = &g_metrics;
    target = std::make_unique<Node>(sched, *net, kTargetIp, config);
    for (int i = 0; i < 40; ++i) {
      NodeConfig pc;
      pc.target_outbound = 0;
      auto peer = std::make_unique<Node>(sched, *net, 0x0a000100 + i, pc);
      peer->Start();
      target->AddKnownAddress({peer->Ip(), 8333});
      peers.push_back(peer.get());
      peer_storage.push_back(std::move(peer));
    }
    target->Start();
    sched.RunUntil(10 * bsim::kSecond);
    monitor = std::make_unique<Monitor>(*target);
    traffic = std::make_unique<MainnetTrafficGenerator>(sched, peers, *target,
                                                        bsattack::TrafficConfig{});
    traffic->Start();
  }

  void RunMinutes(int minutes) {
    sched.RunUntil(sched.Now() + minutes * bsim::kMinute);
  }

  bsim::Scheduler sched;
  std::unique_ptr<bsim::Network> net;
  std::unique_ptr<Node> target;
  std::vector<std::unique_ptr<Node>> peer_storage;
  std::vector<Node*> peers;
  std::unique_ptr<Monitor> monitor;
  std::unique_ptr<MainnetTrafficGenerator> traffic;
};

void PrintDistributions(const FeatureWindow& normal, const FeatureWindow& bmdos,
                        const FeatureWindow& defamation) {
  std::set<std::string> commands;
  double tn = 0, tb = 0, td = 0;
  for (const auto& [cmd, v] : normal.counts) { commands.insert(cmd); tn += v; }
  for (const auto& [cmd, v] : bmdos.counts) { commands.insert(cmd); tb += v; }
  for (const auto& [cmd, v] : defamation.counts) { commands.insert(cmd); td += v; }
  auto share = [](const FeatureWindow& w, const std::string& cmd, double total) {
    const auto it = w.counts.find(cmd);
    return (it == w.counts.end() || total <= 0) ? 0.0 : it->second / total;
  };
  std::printf("%-12s | %10s | %12s | %12s\n", "message", "normal", "under-BM-DoS",
              "under-Defam");
  bsbench::PrintRule('-', 56);
  for (const auto& cmd : commands) {
    std::printf("%-12s | %10.5f | %12.5f | %12.5f\n", cmd.c_str(),
                share(normal, cmd, tn), share(bmdos, cmd, tb),
                share(defamation, cmd, td));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle("bench_fig10_detection — Fig. 10: anomaly detection by "
                      "message-count distribution");
  Lab lab;

  // ---- Training ----
  std::printf("training on 120 simulated minutes of synthetic Mainnet traffic...\n");
  lab.RunMinutes(120);
  StatEngine engine;
  engine.AttachMetrics(g_metrics);
  if (!engine.Train(lab.monitor->AllWindows(kWindowMinutes))) {
    std::printf("training failed: not enough windows\n");
    return 1;
  }
  const Profile& profile = engine.GetProfile();
  bsbench::PrintSection("trained thresholds (paper values in parentheses)");
  std::printf("tau_c = [%.2f, %.2f] reconnections/min   (paper: [0, 2.1])\n",
              profile.tau_c_low, profile.tau_c_high);
  std::printf("tau_n = [%.0f, %.0f] messages/min        (paper: [252, 390])\n",
              profile.tau_n_low, profile.tau_n_high);
  std::printf("tau_lambda = %.4f correlation            (paper: 0.993)\n",
              profile.tau_lambda);

  // ---- Window-size sensitivity (DESIGN.md ablation), trained on the same
  // clean recording before any attack traffic exists ----
  bsbench::PrintSection("detection-window sensitivity (thresholds retrained per size)");
  std::printf("%-10s | %10s | %10s | %10s | %s\n", "window", "tau_n low", "tau_n high",
              "tau_c high", "tau_lambda");
  bsbench::PrintRule('-', 64);
  for (int w : {2, 5, 10, 20}) {
    StatEngine sweep_engine;
    if (!sweep_engine.Train(lab.monitor->AllWindows(w))) continue;
    const Profile& sp = sweep_engine.GetProfile();
    std::printf("%4d min   | %10.0f | %10.0f | %10.2f | %.4f\n", w, sp.tau_n_low,
                sp.tau_n_high, sp.tau_c_high, sp.tau_lambda);
  }
  std::printf("(shorter windows are noisier -> wider envelopes and faster alerts;\n"
              " the paper's 10-minute window balances the two)\n");

  // ---- Case 1: normal ----
  lab.RunMinutes(kWindowMinutes + 1);
  const FeatureWindow normal_window = lab.monitor->Window(lab.sched.Now(), kWindowMinutes);
  const DetectionResult normal_result = engine.Detect(normal_window);

  // ---- Case 2: under BM-DoS (PING flood at ~15000 msgs/min) ----
  AttackerNode attacker(lab.sched, *lab.net, 0x0a000002,
                        lab.target->Config().chain.magic);
  bsattack::Crafter crafter(lab.target->Config().chain);
  bsattack::BmDosConfig bm;
  bm.payload = bsattack::BmDosConfig::Payload::kPing;
  bm.rate_msgs_per_sec = 250;  // 15000/min, the paper's observed flood rate
  bsattack::BmDosAttack flood(attacker, {kTargetIp, 8333}, crafter, bm);
  flood.Start();
  lab.RunMinutes(kWindowMinutes + 1);
  const FeatureWindow bmdos_window = lab.monitor->Window(lab.sched.Now(), kWindowMinutes);
  const DetectionResult bmdos_result = engine.Detect(bmdos_window);
  flood.Stop();
  lab.RunMinutes(kWindowMinutes);  // drain

  // ---- Case 3: under Defamation (keep banning outbound peers) ----
  std::vector<std::unique_ptr<bsattack::PostConnectionDefamation>> defamations;
  const bsim::SimTime defamation_start = lab.sched.Now();
  while (lab.sched.Now() < defamation_start + kWindowMinutes * bsim::kMinute) {
    for (const bsnet::Peer* p : lab.target->Peers()) {
      if (!p->inbound && p->HandshakeComplete() &&
          !lab.target->Bans().IsBanned(p->remote, lab.sched.Now())) {
        auto defamation = std::make_unique<bsattack::PostConnectionDefamation>(
            attacker, p->conn->Local(), p->remote);
        defamation->Arm({bsproto::EncodeMessage(lab.target->Config().chain.magic,
                                                crafter.SegwitInvalidTx())});
        defamations.push_back(std::move(defamation));
        break;
      }
    }
    lab.sched.RunUntil(lab.sched.Now() + 10 * bsim::kSecond);
  }
  const FeatureWindow defam_window = lab.monitor->Window(lab.sched.Now(), kWindowMinutes);
  const DetectionResult defam_result = engine.Detect(defam_window);

  // ---- Report ----
  bsbench::PrintSection("normalized message-count distribution (Fig. 10)");
  PrintDistributions(normal_window, bmdos_window, defam_window);

  bsbench::PrintSection("detection summary (b = wire bytes/min, an extension feature)");
  std::printf("%-16s | %10s | %8s | %10s | %8s | %9s | %s\n", "case", "n (msg/min)",
              "c (/min)", "b (B/min)", "rho", "anomalous", "attribution");
  bsbench::PrintRule();
  auto row = [](const char* name, const DetectionResult& r) {
    std::printf("%-16s | %10.1f | %8.2f | %10.3g | %8.4f | %9s | %s%s\n", name, r.n,
                r.c, r.b, r.rho, r.anomalous ? "YES" : "no",
                r.bmdos_suspected ? "bm-dos " : "",
                r.defamation_suspected ? "defamation" : "");
  };
  row("normal", normal_result);
  row("under BM-DoS", bmdos_result);
  row("under Defamation", defam_result);

  bsbench::PrintSection("paper comparison");
  const double ping_share =
      bmdos_window.counts.count("ping")
          ? bmdos_window.counts.at("ping") /
                std::max(1.0, bmdos_result.n * kWindowMinutes)
          : 0.0;
  std::printf("PING share under BM-DoS: %.2f%% (paper: 94.16%%)\n", ping_share * 100.0);
  std::printf("rho under BM-DoS:        %.4f  (paper: 0.05)\n", bmdos_result.rho);
  std::printf("rho under Defamation:    %.4f  (paper: 0.88)\n", defam_result.rho);
  std::printf("c under Defamation:      %.2f  (paper: 5.3/min)\n", defam_result.c);
  std::printf("detection accuracy on the three cases: %s\n",
              (!normal_result.anomalous && bmdos_result.anomalous &&
               defam_result.anomalous)
                  ? "3/3 (paper: 100%)"
                  : "MISMATCH");

  bsbench::JsonReport report("bench_fig10_detection");
  report.SetSeed(42);  // NodeConfig default; every node derives from it
  report.Add("tau_lambda", profile.tau_lambda);
  report.Add("tau_c_high", profile.tau_c_high);
  report.Add("ping_share_under_bmdos", ping_share);
  report.Add("rho_under_bmdos", bmdos_result.rho);
  report.Add("rho_under_defamation", defam_result.rho);
  report.Add("c_under_defamation", defam_result.c);
  report.Add("cases_detected",
             (normal_result.anomalous ? 0 : 1) + (bmdos_result.anomalous ? 1 : 0) +
                 (defam_result.anomalous ? 1 : 0));
  report.AttachRegistry(g_metrics);
  report.WriteTo(json_path);
  return 0;
}
