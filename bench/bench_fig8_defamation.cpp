// Fig. 8 reproduction: Defamation via duplicate VERSION messages.
//
// The attacker loop-attacks with serial Sybil identifiers: each identifier
// floods duplicate VERSIONs (+1 ban score each) until the target bans it at
// 100, then the next identifier connects (0.2 s socket-setup latency).
//
//   paper: no delay  -> one identifier banned in ~0.1 s (mean)
//          1 ms delay -> ~0.2 s (mean)
//          full-IP defamation: 16384 ports * (0.1+0.2)s / 60 ≈ 81.92 min
//
// The harness prints the per-identifier ban times (the figure's traces), the
// means for both delays, and the full-IP projection, plus the ban-score
// trajectory of a single identifier (score vs message count).
#include <cstdio>

#include <memory>
#include <vector>

#include "attack/defamation.hpp"
#include "attack/sybil.hpp"
#include "bench_util.hpp"
#include "core/node.hpp"

namespace {

using bsattack::AttackerNode;
using bsattack::SerialSybilAttack;
using bsattack::SerialSybilConfig;
using bsnet::Node;
using bsnet::NodeConfig;

constexpr std::uint32_t kTargetIp = 0x0a000001;
constexpr std::uint32_t kAttackerIp = 0x0a000002;

// Shared registry across all defamation runs for the --json report (the
// bs_ban_* series shows the score/ban plane under attack).
bsobs::MetricsRegistry g_metrics;

struct RunResult {
  double mean_time_to_ban_sec;
  int identifiers_banned;
  std::vector<double> per_identifier_sec;
};

RunResult RunSybilLoop(bsim::SimTime extra_delay, int identifiers) {
  bsim::Scheduler sched;
  sched.AttachMetrics(g_metrics);
  bsim::Network net(sched);
  net.AttachMetrics(g_metrics);  // wire counters (bs_sim_segments_*) in the report
  NodeConfig config;
  config.metrics = &g_metrics;
  Node target(sched, net, kTargetIp, config);
  target.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);

  SerialSybilConfig sc;
  sc.extra_message_delay = extra_delay;
  sc.max_identifiers = identifiers;
  SerialSybilAttack attack(attacker, {kTargetIp, 8333}, sc);
  attack.Start();
  sched.RunUntil(sched.Now() + bsim::FromSeconds(identifiers * 2.0 + 10.0));

  RunResult result;
  result.mean_time_to_ban_sec = attack.MeanTimeToBan();
  result.identifiers_banned = attack.IdentifiersBanned();
  for (const auto& rec : attack.Records()) {
    if (rec.banned_at != 0) result.per_identifier_sec.push_back(rec.TimeToBanSeconds());
  }
  return result;
}

void PrintScoreTrajectory() {
  bsbench::PrintSection("ban-score trajectory of one identifier (duplicate VERSIONs)");
  bsim::Scheduler sched;
  bsim::Network net(sched);
  NodeConfig config;
  Node target(sched, net, kTargetIp, config);
  target.Start();
  AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);

  std::vector<std::pair<double, int>> trajectory;  // (time sec, score)
  target.on_misbehavior = [&](const bsnet::Peer&, bsnet::Misbehavior,
                              const bsnet::MisbehaviorOutcome& outcome) {
    trajectory.emplace_back(bsim::ToSeconds(sched.Now()), outcome.total_score);
  };

  auto* session = attacker.OpenSession({kTargetIp, 8333}, /*auto_handshake=*/false);
  sched.RunUntil(bsim::kSecond);
  const double t0 = bsim::ToSeconds(sched.Now());
  attacker.Send(*session, bsproto::VersionMsg{});  // the legitimate first one
  for (int i = 0; i < 120 && !session->closed; ++i) {
    attacker.Send(*session, bsproto::VersionMsg{});
    sched.RunUntil(sched.Now() + bsim::kMillisecond);
  }
  std::printf("%-12s | %s\n", "time (s)", "ban score");
  bsbench::PrintRule('-', 30);
  for (std::size_t i = 0; i < trajectory.size(); i += 10) {
    std::printf("%-12.4f | %d\n", trajectory[i].first - t0, trajectory[i].second);
  }
  if (!trajectory.empty()) {
    std::printf("%-12.4f | %d  <- banned (threshold %d)\n",
                trajectory.back().first - t0, trajectory.back().second,
                target.Config().ban_threshold);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bsbench::TakeJsonFlag(argc, argv);
  bsbench::PrintTitle("bench_fig8_defamation — Fig. 8: Defamation via VERSION message");

  const RunResult no_delay = RunSybilLoop(0, 20);
  const RunResult one_ms = RunSybilLoop(bsim::kMillisecond, 20);

  bsbench::PrintSection("serial Sybil loop, 20 identifiers each");
  std::printf("%-12s | %10s | %14s | %10s\n", "delay", "banned", "mean t2ban (s)",
              "paper (s)");
  bsbench::PrintRule();
  std::printf("%-12s | %10d | %14.4f | %10.2f\n", "none", no_delay.identifiers_banned,
              no_delay.mean_time_to_ban_sec, 0.1);
  std::printf("%-12s | %10d | %14.4f | %10.2f\n", "1 ms", one_ms.identifiers_banned,
              one_ms.mean_time_to_ban_sec, 0.2);

  bsbench::PrintSection("per-identifier time-to-ban, no delay (the Fig. 8 trace)");
  for (std::size_t i = 0; i < no_delay.per_identifier_sec.size(); ++i) {
    std::printf("identifier %2zu: %.4f s\n", i + 1, no_delay.per_identifier_sec[i]);
  }

  PrintScoreTrajectory();

  // ---- §VI-D: peer-table diversity decay under pre-connection defamation ----
  bsbench::PrintSection(
      "peer-table diversity decay under pre-connection defamation (§VI-D)");
  {
    bsim::Scheduler sched;
    bsim::Network net(sched);
    NodeConfig config;
    Node target(sched, net, kTargetIp, config);
    target.Start();
    // A 50-identifier address pool (one innocent host, many ports — per-
    // [IP:Port] banning makes each a distinct peer-table entry).
    constexpr std::uint32_t kPoolIp = 0x0a000030;
    bsim::Host pool_host(sched, net, kPoolIp);
    for (std::uint16_t port = 9000; port < 9050; ++port) {
      target.AddKnownAddress({kPoolIp, port});
    }
    AttackerNode attacker(sched, net, kAttackerIp, config.chain.magic);
    const auto frames =
        bsattack::PreConnectionDefamation::InstantBanFrames(config.chain.magic);

    std::printf("%-18s | %s\n", "identifiers defamed", "usable pool entries");
    bsbench::PrintRule('-', 44);
    std::vector<std::unique_ptr<bsattack::PreConnectionDefamation>> attacks;
    for (int defamed = 0; defamed <= 50; defamed += 10) {
      std::size_t usable = 0;
      for (std::uint16_t port = 9000; port < 9050; ++port) {
        if (!target.Bans().IsBanned({kPoolIp, port}, sched.Now())) ++usable;
      }
      std::printf("%-18d | %zu\n", defamed, usable);
      for (int i = 0; i < 10 && defamed < 50; ++i) {
        const std::uint16_t port = static_cast<std::uint16_t>(9000 + defamed + i);
        attacks.push_back(std::make_unique<bsattack::PreConnectionDefamation>(
            attacker, bsproto::Endpoint{kTargetIp, 8333},
            bsproto::Endpoint{kPoolIp, port}, frames));
        attacks.back()->Run();
        sched.RunUntil(sched.Now() + bsim::FromSeconds(0.3));  // §VI-D pacing
      }
    }
    std::printf("(every defamed identifier is unusable for 24 h; at the paper's "
                "0.3 s per\n identifier a whole IP's 16384 ports fall in "
                "~82 minutes)\n");
  }

  bsbench::PrintSection("full-IP (pre-connection) defamation projection, §VI-D");
  const double per_id = no_delay.mean_time_to_ban_sec + 0.2;  // + socket setup
  std::printf("per-identifier cost: %.3f s (ban) + 0.200 s (socket setup)\n",
              no_delay.mean_time_to_ban_sec);
  std::printf("16384 ephemeral ports x %.3f s / 60 = %.2f min (paper: 81.92 min)\n",
              per_id, 16384.0 * per_id / 60.0);
  std::printf("-> the whole IP is unable to connect to the target for 24 h\n");

  bsbench::JsonReport report("bench_fig8_defamation");
  report.SetSeed(42);  // NodeConfig default; every node derives from it
  report.Add("no_delay_identifiers_banned", no_delay.identifiers_banned);
  report.Add("no_delay_mean_time_to_ban_sec", no_delay.mean_time_to_ban_sec);
  report.Add("one_ms_identifiers_banned", one_ms.identifiers_banned);
  report.Add("one_ms_mean_time_to_ban_sec", one_ms.mean_time_to_ban_sec);
  report.Add("full_ip_projection_min", 16384.0 * per_id / 60.0);
  report.AttachRegistry(g_metrics);
  report.WriteTo(json_path);
  return 0;
}
