#!/usr/bin/env bash
# One-shot reproduction: configure, build, run the full test suite, then
# regenerate every paper table/figure. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

echo
echo "done: see test_output.txt and bench_output.txt"
