#!/usr/bin/env bash
# Pre-merge gate: the tier-1 verify (configure + build + full ctest run)
# followed by an ASan/UBSan build of the test suite. Run from anywhere;
# builds land in build/ (tier-1) and build-asan/ (sanitizers).
#
#   scripts/check.sh            # both stages
#   scripts/check.sh --no-asan  # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
[ "${1:-}" = "--no-asan" ] && run_asan=0

echo "==> tier-1: configure + build + ctest"
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [ "$run_asan" = 1 ]; then
  echo "==> sanitizers: ASan/UBSan build + ctest"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan -j
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi

echo "==> all checks passed"
