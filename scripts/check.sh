#!/usr/bin/env bash
# Pre-merge gate: the tier-1 verify (configure + build + full ctest run,
# quick label first so sub-second suites fail fast), the real-socket
# testbed drill (3 daemons, kill -9, WAL replay), the transport bench
# gated against its committed baseline,
# an ASan/UBSan build of the test suite, a TSan build of the chaos/sim
# tests, a fixed-seed chaos smoke sweep, a degradation smoke (honest
# mining must hold >= 50% of baseline under a Sybil flood with the full
# defense stack on), an eclipse A/B smoke (the stock victim must stay
# eclipsed, the hardened one must heal), a partition A/B smoke (the stock
# victim must stay behind an asymmetric routing cut, the hardened one must
# reconverge) gated against its committed bench baseline, and two
# store-recovery gates: the fsck demo
# round-trip against a real directory and the crash-at-every-syscall
# recovery sweep re-run under ASan. Run from anywhere; builds land in
# build/ (tier-1), build-asan/, and build-tsan/.
#
#   scripts/check.sh            # all stages
#   scripts/check.sh --no-asan  # tier-1 + chaos smoke only (skips ASan+TSan)
#   scripts/check.sh --no-tsan  # skip only the TSan stage
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
run_tsan=1
for arg in "$@"; do
  [ "$arg" = "--no-asan" ] && { run_asan=0; run_tsan=0; }
  [ "$arg" = "--no-tsan" ] && run_tsan=0
done

echo "==> tier-1: configure + build + ctest (fast tier first)"
cmake -B build -S .
cmake --build build -j
# Sub-second unit/property suites fail fast before the wall-clock tiers run.
ctest --test-dir build --output-on-failure -j "$(nproc)" -L quick
ctest --test-dir build --output-on-failure -j "$(nproc)" -LE quick

echo "==> testbed smoke: 3 real daemons, kill -9 drill, WAL replay, fsck"
(cd build/tools && ./banscore-lab testbed --nodes 3 --format json)

echo "==> chaos smoke: 20 fixed seeds of randomized fault injection"
./build/tools/banscore-lab chaos --seeds 20 --seed-base 1 --seconds 60

echo "==> degradation smoke: honest mining >= 50% of baseline under flood"
./build/tools/banscore-lab overload --defenses all --min-ratio 0.5 --format json

echo "==> eclipse smoke: stock victim stays eclipsed, hardened victim heals"
if ./build/tools/banscore-lab eclipse --defenses none --format json; then
  echo "FAIL: stock victim shed the eclipse without any defenses" >&2
  exit 1
fi
./build/tools/banscore-lab eclipse --defenses all --format json

echo "==> partition smoke: stock victim stays behind the cut, hardened reconverges"
if ./build/tools/banscore-lab partition --defenses none --format json; then
  echo "FAIL: stock victim reconverged across the routing cut without defenses" >&2
  exit 1
fi
./build/tools/banscore-lab partition --defenses all --format json

echo "==> partition bench vs committed baseline"
./build/bench/bench_partition --json build/BENCH_partition.json > /dev/null
./build/tools/banscore-lab bench-diff \
  --old bench/baselines/BENCH_partition.json --new build/BENCH_partition.json \
  --tolerance 0.0 --timing-tolerance 20.0

echo "==> fuzz smoke: 8 seeds x 1500 iters per harness + differential oracle"
# Deterministic structure-aware campaigns over the four wire-facing
# harnesses (codec, tracker, store, addrman), replaying the committed
# regression corpus first; the differential driver must match Table I
# exactly. Minimized repros for any failure land in build/fuzz-artifacts/.
./build/tools/banscore-lab fuzz --seeds 8 --iters 1500 \
  --corpus fuzz/corpus --artifacts build/fuzz-artifacts \
  --format json > build/fuzz-smoke.json

echo "==> perf trajectory: bench_hotpath vs committed baseline"
./build/bench/bench_hotpath --json build/BENCH_hotpath.json > /dev/null
# Deterministic counters must match the committed baseline exactly (same
# seed, same code => same events); timing fields only gate catastrophic
# (>20x) swings since CI machines differ.
./build/tools/banscore-lab bench-diff \
  --old bench/baselines/BENCH_hotpath.json --new build/BENCH_hotpath.json \
  --tolerance 0.0 --timing-tolerance 20.0

echo "==> transport bench vs committed baseline (sim vs real-socket flood)"
./build/bench/bench_transport --json build/BENCH_transport.json > /dev/null
./build/tools/banscore-lab bench-diff \
  --old bench/baselines/BENCH_transport.json --new build/BENCH_transport.json \
  --tolerance 0.0 --timing-tolerance 20.0

echo "==> store recovery smoke: fsck demo round-trip (torn tail -> repair -> verify)"
rm -rf build/fsck-smoke
if ./build/tools/banscore-lab fsck --dir build/fsck-smoke --demo torn --format json; then
  echo "FAIL: torn store verified healthy without repair" >&2
  exit 1
fi
./build/tools/banscore-lab fsck --dir build/fsck-smoke --repair yes --format json
./build/tools/banscore-lab fsck --dir build/fsck-smoke --format json

if [ "$run_asan" = 1 ]; then
  echo "==> sanitizers: ASan/UBSan build + ctest"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan -j
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

  echo "==> store recovery sweep under ASan: crash at every syscall index"
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    ./build-asan/tests/store_tests --gtest_filter='StateStoreCrashSweep.*'

  echo "==> addrman property tests under ASan"
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    ./build-asan/tests/addrman_tests
fi

if [ "$run_tsan" = 1 ]; then
  # The simulator is single-threaded, but the bsobs metrics/trace/span/
  # profiler planes are shared with scrape threads in obs_test and
  # span_test; TSan covers those and the chaos harness (which stresses the
  # trace ring hardest).
  echo "==> sanitizers: TSan build + chaos/sim/obs ctest slice"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build build-tsan -j
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R 'Chaos|Fault|EventTrace|Metrics|Span|Profiler|Transport'
fi

echo "==> all checks passed"
