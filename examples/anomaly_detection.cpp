// Anomaly-detection walkthrough (§VII of the paper): train the statistical
// engine on normal (synthetic-Mainnet) traffic, then detect a live PING
// flood and auto-respond by dropping and rebuilding the peer connections.
//
//   run: ./build/examples/anomaly_detection
#include <cstdio>
#include <memory>

#include "attack/bmdos.hpp"
#include "attack/traffic.hpp"
#include "core/node.hpp"
#include "detect/engine.hpp"
#include "detect/monitor.hpp"

using namespace bsnet;  // NOLINT

int main() {
  bsim::Scheduler sched;
  bsim::Network net(sched);

  NodeConfig config;
  config.target_outbound = 8;
  Node target(sched, net, bsproto::Endpoint::ParseIp("10.0.0.1"), config);

  std::vector<std::unique_ptr<Node>> peer_storage;
  std::vector<Node*> peers;
  for (int i = 0; i < 20; ++i) {
    NodeConfig pc;
    pc.target_outbound = 0;
    auto peer = std::make_unique<Node>(sched, net, 0x0a000100 + i, pc);
    peer->Start();
    target.AddKnownAddress({peer->Ip(), 8333});
    peers.push_back(peer.get());
    peer_storage.push_back(std::move(peer));
  }
  target.Start();
  sched.RunUntil(10 * bsim::kSecond);

  // Monitor (Fig. 9): taps the node's message plane, identifier-oblivious.
  bsdetect::Monitor monitor(target);
  bsattack::MainnetTrafficGenerator traffic(sched, peers, target,
                                            bsattack::TrafficConfig{});
  traffic.Start();

  std::printf("training on 60 simulated minutes of normal traffic...\n");
  sched.RunUntil(sched.Now() + 60 * bsim::kMinute);
  bsdetect::StatEngine engine;
  engine.Train(monitor.AllWindows(10));
  const auto& profile = engine.GetProfile();
  std::printf("profile: tau_n=[%.0f, %.0f] msg/min, tau_c=[0, %.2f] reconnects/min, "
              "tau_lambda=%.4f\n\n",
              profile.tau_n_low, profile.tau_n_high, profile.tau_c_high,
              profile.tau_lambda);

  // Wire the response: on alert, drop and rebuild the peer connections.
  engine.on_alert = [&](const bsdetect::DetectionResult& result) {
    std::printf(">> ALERT: n=%.0f c=%.1f rho=%.3f (%s%s) — dropping and rebuilding "
                "connections\n",
                result.n, result.c, result.rho,
                result.bmdos_suspected ? "BM-DoS " : "",
                result.defamation_suspected ? "Defamation" : "");
    target.DropAndRebuildConnections();
  };

  auto check = [&](const char* label) {
    const auto result = engine.DetectAndAlert(monitor.Window(sched.Now(), 10));
    std::printf("%-18s n=%7.0f msg/min  c=%.2f/min  rho=%+.4f  -> %s\n", label,
                result.n, result.c, result.rho,
                result.anomalous ? "ANOMALOUS" : "normal");
  };

  std::printf("== quiet period ==\n");
  sched.RunUntil(sched.Now() + 11 * bsim::kMinute);
  check("normal window:");

  std::printf("\n== PING flood begins (BM-DoS, ~15000 msg/min) ==\n");
  bsattack::AttackerNode attacker(sched, net, bsproto::Endpoint::ParseIp("10.0.0.66"),
                                  config.chain.magic);
  bsattack::Crafter crafter(config.chain);
  bsattack::BmDosConfig bm;
  bm.payload = bsattack::BmDosConfig::Payload::kPing;
  bm.rate_msgs_per_sec = 250;
  bsattack::BmDosAttack flood(attacker, {target.Ip(), 8333}, crafter, bm);
  flood.Start();
  sched.RunUntil(sched.Now() + 11 * bsim::kMinute);
  check("under flood:");
  flood.Stop();

  std::printf("\n== after the response and flood end ==\n");
  sched.RunUntil(sched.Now() + 12 * bsim::kMinute);
  check("recovered:");
  return 0;
}
