// Eclipse walkthrough (§II motivation): the ban-score framework was
// "informed for responding to other potential attacks, e.g., Eclipse" — this
// scenario shows the composition that eclipses a victim anyway, with the ban
// score never firing on the attacker: inbound slot occupation + rule-free
// ADDR poisoning + Defamation-driven eviction of honest outbound peers.
//
//   run: ./build/examples/eclipse_attack
#include <cstdio>
#include <memory>
#include <vector>

#include "attack/eclipse.hpp"
#include "attack/traffic.hpp"
#include "core/node.hpp"

using namespace bsnet;  // NOLINT

int main() {
  bsim::Scheduler sched;
  bsim::Network net(sched);

  NodeConfig victim_config;
  victim_config.target_outbound = 4;
  victim_config.max_inbound = 8;
  Node victim(sched, net, bsproto::Endpoint::ParseIp("10.0.0.1"), victim_config);

  // Honest Mainnet stand-ins and attacker-controlled infrastructure.
  std::vector<std::unique_ptr<Node>> storage;
  std::vector<Node*> honest;
  std::vector<Node*> infrastructure;
  NodeConfig pc;
  pc.target_outbound = 0;
  for (int i = 0; i < 6; ++i) {
    auto peer = std::make_unique<Node>(sched, net, 0x0a000100 + i, pc);
    peer->Start();
    victim.AddKnownAddress({peer->Ip(), 8333});
    honest.push_back(peer.get());
    storage.push_back(std::move(peer));
  }
  for (int i = 0; i < 12; ++i) {
    auto node = std::make_unique<Node>(sched, net, 0x0ae00000 + i, pc);
    node->Start();
    infrastructure.push_back(node.get());
    storage.push_back(std::move(node));
  }
  victim.Start();
  sched.RunUntil(10 * bsim::kSecond);

  bsattack::AttackerNode attacker(sched, net, 0x0ae000ff, victim_config.chain.magic);
  bsattack::MainnetTrafficGenerator traffic(sched, honest, victim,
                                            bsattack::TrafficConfig{});
  traffic.Start();

  bsattack::EclipseConfig config;
  config.inbound_sessions = 8;
  bsattack::EclipseAttack eclipse(attacker, victim, infrastructure, config);

  auto report = [&](const char* label) {
    std::size_t honest_conns = 0, attacker_conns = 0;
    for (const Peer* p : victim.Peers()) {
      if (!p->HandshakeComplete()) continue;
      (p->remote.ip >= 0x0ae00000 ? attacker_conns : honest_conns) += 1;
    }
    std::printf("%-22s honest=%zu attacker=%zu control=%.0f%% "
                "(defamed %d, gossiped %llu addrs)\n",
                label, honest_conns, attacker_conns, 100 * eclipse.ControlFraction(),
                eclipse.OutboundPeersDefamed(),
                static_cast<unsigned long long>(eclipse.AddrEntriesGossiped()));
  };

  report("before the attack:");
  std::printf("\nphase 1+2: occupy all %d inbound slots, poison the address table\n",
              config.inbound_sessions);
  std::printf("phase 3:   defame one honest outbound peer every %gs\n\n",
              bsim::ToSeconds(config.defame_interval));
  eclipse.Start();

  for (int minute = 1; minute <= 5; ++minute) {
    sched.RunUntil(sched.Now() + bsim::kMinute);
    char label[32];
    std::snprintf(label, sizeof(label), "after %d min:", minute);
    report(label);
  }

  std::printf("\nfully eclipsed: %s — and the attacker's ban score never moved\n",
              eclipse.FullyEclipsed() ? "YES" : "not yet");
  std::printf("(the honest peers, meanwhile, were banned BY the victim itself via\n"
              " the Defamation injections: the ban-score mechanism did the\n"
              " attacker's work)\n");
  return 0;
}
