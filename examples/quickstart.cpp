// Quickstart: spin up a small simulated Bitcoin network, watch the version
// handshake and block relay happen, poke the ban-score mechanism, and read
// the node's state back.
//
//   build:  cmake -B build -G Ninja && cmake --build build
//   run:    ./build/examples/quickstart
#include <cstdio>

#include "attack/attacker.hpp"
#include "attack/crafter.hpp"
#include "core/node.hpp"

using namespace bsnet;  // NOLINT

int main() {
  // --- 1. A simulated network with three full nodes -------------------------
  bsim::Scheduler sched;
  bsim::Network net(sched);

  NodeConfig config;              // defaults: Core 0.20.0 rules, threshold 100
  config.target_outbound = 1;    // alice dials bob; bob dials carol
  Node alice(sched, net, bsproto::Endpoint::ParseIp("10.0.0.1"), config);
  Node bob(sched, net, bsproto::Endpoint::ParseIp("10.0.0.2"), config);
  NodeConfig leaf = config;
  leaf.target_outbound = 0;
  Node carol(sched, net, bsproto::Endpoint::ParseIp("10.0.0.3"), leaf);

  alice.AddKnownAddress({bob.Ip(), 8333});
  bob.AddKnownAddress({carol.Ip(), 8333});
  carol.Start();
  bob.Start();
  alice.Start();

  sched.RunUntil(10 * bsim::kSecond);
  std::printf("topology up: alice outbound=%zu, bob inbound=%zu outbound=%zu\n",
              alice.OutboundCount(), bob.InboundCount(), bob.OutboundCount());

  // --- 2. Mine a block on alice; watch it relay across two hops -------------
  const auto block = alice.MineAndRelay();
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  std::printf("alice mined %s...\n", block->Hash().ToHex().substr(0, 16).c_str());
  std::printf("  bob   has it: %s (tip height %d)\n",
              bob.Chain().HaveBlock(block->Hash()) ? "yes" : "no",
              bob.Chain().TipHeight());
  std::printf("  carol has it: %s (tip height %d)\n",
              carol.Chain().HaveBlock(block->Hash()) ? "yes" : "no",
              carol.Chain().TipHeight());

  // --- 3. Misbehave a little and watch the ban score tick -------------------
  bsattack::AttackerNode client(sched, net, bsproto::Endpoint::ParseIp("10.0.0.99"),
                                config.chain.magic);
  bsattack::Crafter crafter(config.chain);

  alice.on_misbehavior = [&](const Peer& peer, Misbehavior what,
                             const MisbehaviorOutcome& outcome) {
    std::printf("  alice: peer %s misbehaved (%s) +%d -> score %d\n",
                peer.remote.ToString().c_str(), ToString(what), outcome.score_delta,
                outcome.total_score);
  };
  alice.on_peer_banned = [&](const Peer& peer) {
    std::printf("  alice: BANNED %s for 24h\n", peer.remote.ToString().c_str());
  };

  auto* session = client.OpenSession({alice.Ip(), 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  std::printf("client session ready: %s\n", session->SessionReady() ? "yes" : "no");

  std::printf("sending an oversize ADDR (1001 addresses, +20 expected):\n");
  client.Send(*session, crafter.OversizeAddr());
  sched.RunUntil(sched.Now() + bsim::kSecond);

  std::printf("sending a block with a missing parent (+10 expected):\n");
  client.Send(*session, crafter.PrevMissingBlock());
  sched.RunUntil(sched.Now() + bsim::kSecond);

  std::printf("sending a SegWit-consensus-invalid TX (+100 -> instant ban):\n");
  client.Send(*session, crafter.SegwitInvalidTx());
  sched.RunUntil(sched.Now() + bsim::kSecond);

  std::printf("session closed by alice: %s; banned identifiers at alice: %zu\n",
              session->closed ? "yes" : "no", alice.Bans().Size());

  // --- 4. The banning filter in action --------------------------------------
  auto* retry = client.OpenSession({alice.Ip(), 8333}, true, session->local.port);
  sched.RunUntil(sched.Now() + bsim::kSecond);
  std::printf("reconnect from the banned identifier refused: %s\n",
              retry->closed ? "yes" : "no");
  auto* sybil = client.OpenSession({alice.Ip(), 8333});  // fresh port
  sched.RunUntil(sched.Now() + bsim::kSecond);
  std::printf("reconnect from a fresh Sybil identifier accepted: %s "
              "(the paper's §III-B vector 3)\n",
              sybil->SessionReady() ? "yes" : "no");
  return 0;
}
