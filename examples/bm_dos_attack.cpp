// BM-DoS walkthrough (§III of the paper): flood a mining node with bogus
// BLOCK frames that fail the message checksum — maximum victim CPU cost,
// zero ban-score consequence — and watch the mining rate collapse while the
// attacker's connection stays "clean".
//
//   run: ./build/examples/bm_dos_attack
#include <cstdio>

#include "attack/bmdos.hpp"
#include "core/node.hpp"

using namespace bsnet;  // NOLINT

int main() {
  bsim::Scheduler sched;
  bsim::Network net(sched);
  bsim::CpuModel cpu;  // the victim's shared CPU (miner + networking)

  NodeConfig config;
  Node victim(sched, net, bsproto::Endpoint::ParseIp("10.0.0.1"), config, &cpu);
  victim.Start();
  cpu.SetActiveConnections(10);  // background Mainnet peers

  bsattack::AttackerNode attacker(sched, net, bsproto::Endpoint::ParseIp("10.0.0.66"),
                                  config.chain.magic);
  bsattack::Crafter crafter(config.chain);

  auto sample_mining = [&](const char* label) {
    cpu.BeginWindow(sched.Now());
    sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
    const auto sample = cpu.EndWindow(sched.Now());
    std::printf("%-28s mining %8.3g h/s  (CPU busy %4.1f%%)\n", label,
                sample.mining_rate_hps, 100 * sample.busy_fraction);
    return sample.mining_rate_hps;
  };

  std::printf("== baseline ==\n");
  const double baseline = sample_mining("no attack:");

  std::printf("\n== bogus BLOCK flood, 1 Sybil connection ==\n");
  bsattack::BmDosConfig bm;
  bm.payload = bsattack::BmDosConfig::Payload::kBogusBlock;
  bm.sybil_connections = 1;
  bsattack::BmDosAttack flood(attacker, {victim.Ip(), 8333}, crafter, bm);
  flood.Start();
  cpu.SetActiveConnections(11);
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);  // warm up
  const double under_attack = sample_mining("bogus BLOCK flood:");

  std::printf("\nattack effect: mining dropped %.0f%% "
              "(paper: 9.5e5 -> 3.5e5 h/s, a 63%% drop)\n",
              100.0 * (1.0 - under_attack / baseline));
  std::printf("frames the victim burned CPU on and dropped: %llu\n",
              static_cast<unsigned long long>(victim.FramesDroppedBadChecksum()));
  int attacker_score = 0;
  for (const Peer* peer : victim.Peers()) {
    if (peer->remote.ip == attacker.Ip()) {
      attacker_score = std::max(attacker_score, victim.Tracker().Score(peer->id));
    }
  }
  std::printf("attacker's ban score at the victim: %d "
              "(the tracker never saw a single misbehavior)\n",
              attacker_score);
  std::printf("peers banned by the victim: %llu  <- the ban score was useless\n",
              static_cast<unsigned long long>(victim.PeersBanned()));

  std::printf("\n== widen to 10 Sybil connections ==\n");
  flood.Stop();
  bm.sybil_connections = 10;
  bsattack::BmDosAttack flood10(attacker, {victim.Ip(), 8333}, crafter, bm);
  flood10.Start();
  cpu.SetActiveConnections(20);
  sched.RunUntil(sched.Now() + 2 * bsim::kSecond);
  sample_mining("bogus BLOCK flood x10:");
  std::printf("(paper: 2.8e5 h/s at 10 connections — the attacker process's\n"
              " ~1e3 msg/s pipeline is shared, so extra Sybils add connection\n"
              " overhead rather than message volume)\n");
  return 0;
}
