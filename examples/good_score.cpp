// Good-score countermeasure walkthrough (§VIII of the paper): under the
// stock ban-score policy a Defamation injection gets an innocent,
// block-providing peer banned; under the good-score policy the peer's
// earned credit makes it immune, while a credit-less attacker still gets
// banned as usual.
//
//   run: ./build/examples/good_score
#include <cstdio>

#include "attack/crafter.hpp"
#include "attack/defamation.hpp"
#include "core/node.hpp"

using namespace bsnet;  // NOLINT

namespace {

void RunScenario(BanPolicy policy) {
  std::printf("== policy: %s ==\n", ToString(policy));
  bsim::Scheduler sched;
  bsim::Network net(sched);

  NodeConfig target_config;
  target_config.ban_policy = policy;
  target_config.target_outbound = 1;
  Node target(sched, net, bsproto::Endpoint::ParseIp("10.0.0.1"), target_config);

  NodeConfig peer_config;
  peer_config.target_outbound = 0;
  Node innocent(sched, net, bsproto::Endpoint::ParseIp("10.0.0.2"), peer_config);
  innocent.Start();
  target.AddKnownAddress({innocent.Ip(), 8333});
  target.Start();
  sched.RunUntil(5 * bsim::kSecond);

  // The innocent peer mines a block; the target fetches it, earning the peer
  // one point of good score ("+1 per valid BLOCK transmitted").
  innocent.MineAndRelay();
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  const Peer* outbound = nullptr;
  for (const Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  if (outbound == nullptr) {
    std::printf("  setup failed\n");
    return;
  }
  std::printf("  innocent peer's good score after providing a block: %d\n",
              target.Tracker().GoodScore(outbound->id));

  // Defamation injection: a spoofed SegWit-invalid TX (+100) as Algorithm 1.
  bsattack::AttackerNode attacker(sched, net, bsproto::Endpoint::ParseIp("10.0.0.66"),
                                  target_config.chain.magic);
  bsattack::Crafter crafter(target_config.chain);
  bsattack::PostConnectionDefamation defamation(attacker, outbound->conn->Local(),
                                                outbound->remote);
  defamation.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                         crafter.SegwitInvalidTx())});
  innocent.SendToRemoteIp(target.Ip(), bsproto::PingMsg{1});
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);

  std::printf("  after the Defamation injection: innocent identifier banned? %s\n",
              target.Bans().IsBanned({innocent.Ip(), 8333}, sched.Now()) ? "YES"
                                                                          : "no");

  // Meanwhile, a real attacker with no credit gets the usual treatment.
  auto* session = attacker.OpenSession({target.Ip(), 8333});
  sched.RunUntil(sched.Now() + bsim::kSecond);
  attacker.Send(*session, crafter.SegwitInvalidTx());
  sched.RunUntil(sched.Now() + bsim::kSecond);
  std::printf("  credit-less attacker session banned? %s\n\n",
              session->closed ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("the same Defamation attack under two policies:\n\n");
  RunScenario(BanPolicy::kBanScore);   // stock: the innocent peer is defamed
  RunScenario(BanPolicy::kGoodScore);  // §VIII: credit makes it immune
  std::printf("(the good-score mechanism keeps the deterrent against real\n"
              " attackers while removing the Defamation lever)\n");
  return 0;
}
