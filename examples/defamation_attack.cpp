// Defamation walkthrough (§IV of the paper): get an innocent peer banned by
// the target node, both before it ever connects (pre-connection, via a fully
// spoofed TCP session) and while it holds a live session (post-connection,
// via Algorithm 1's sniff-and-inject).
//
//   run: ./build/examples/defamation_attack
#include <cstdio>

#include "attack/crafter.hpp"
#include "attack/defamation.hpp"
#include "core/node.hpp"

using namespace bsnet;  // NOLINT

int main() {
  bsim::Scheduler sched;
  bsim::Network net(sched);  // a shared LAN segment: sniffing is possible

  NodeConfig target_config;
  target_config.target_outbound = 1;
  Node target(sched, net, bsproto::Endpoint::ParseIp("10.0.0.1"), target_config);

  NodeConfig peer_config;
  peer_config.target_outbound = 0;
  Node innocent(sched, net, bsproto::Endpoint::ParseIp("10.0.0.2"), peer_config);
  Node spare(sched, net, bsproto::Endpoint::ParseIp("10.0.0.3"), peer_config);
  innocent.Start();
  spare.Start();
  target.AddKnownAddress({innocent.Ip(), 8333});
  target.AddKnownAddress({spare.Ip(), 8333});

  bsattack::AttackerNode attacker(sched, net, bsproto::Endpoint::ParseIp("10.0.0.66"),
                                  target_config.chain.magic);
  bsattack::Crafter crafter(target_config.chain);

  target.on_peer_banned = [&](const Peer& peer) {
    std::printf("  target: BANNED %s\n", peer.remote.ToString().c_str());
  };
  target.on_outbound_reconnect = [&](const Endpoint& ep) {
    std::printf("  target: reconnecting outbound slot -> %s "
                "(the detection feature c ticks here)\n",
                ep.ToString().c_str());
  };

  target.Start();
  sched.RunUntil(5 * bsim::kSecond);

  // --- Pre-connection Defamation --------------------------------------------
  std::printf("== pre-connection Defamation ==\n");
  std::printf("the attacker spoofs identifier 10.0.0.2:55555 before the innocent\n"
              "host ever uses it: spoofed SYN, sniffed SYN-ACK, spoofed ACK, then\n"
              "VERSION/VERACK and one SegWit-invalid TX (+100)\n");
  const Endpoint innocent_id{innocent.Ip(), 55555};
  bsattack::PreConnectionDefamation pre(
      attacker, {target.Ip(), 8333}, innocent_id,
      bsattack::PreConnectionDefamation::InstantBanFrames(target_config.chain.magic));
  pre.Run();
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  std::printf("identifier %s banned at target: %s — and the innocent host never\n"
              "sent a byte\n\n",
              innocent_id.ToString().c_str(),
              target.Bans().IsBanned(innocent_id, sched.Now()) ? "YES" : "no");

  // --- Post-connection Defamation (Algorithm 1) ------------------------------
  std::printf("== post-connection Defamation (Algorithm 1) ==\n");
  sched.RunUntil(sched.Now() + 5 * bsim::kSecond);
  const Peer* outbound = nullptr;
  for (const Peer* p : target.Peers()) {
    if (!p->inbound) outbound = p;
  }
  if (outbound == nullptr) {
    std::printf("no outbound session formed; aborting\n");
    return 1;
  }
  std::printf("target holds an outbound session to %s\n",
              outbound->remote.ToString().c_str());
  std::printf("the attacker eavesdrops the live TCP state (seq/ack) and injects a\n"
              "misbehaving TX with the innocent peer's source endpoint...\n");

  bsattack::PostConnectionDefamation post(attacker, outbound->conn->Local(),
                                          outbound->remote);
  post.Arm({bsproto::EncodeMessage(target_config.chain.magic,
                                   crafter.SegwitInvalidTx())});
  // Any traffic on the connection reveals the sequence numbers.
  const std::uint32_t victim_ip = outbound->remote.ip;
  if (victim_ip == innocent.Ip()) {
    innocent.SendToRemoteIp(target.Ip(), bsproto::PingMsg{1});
  } else {
    spare.SendToRemoteIp(target.Ip(), bsproto::PingMsg{1});
  }
  sched.RunUntil(sched.Now() + 10 * bsim::kSecond);

  std::printf("sequence learned: %s, injected: %s\n",
              post.SequenceKnown() ? "yes" : "no", post.Injected() ? "yes" : "no");
  std::printf("innocent outbound identifier banned: %s\n",
              target.Bans().IsBanned(Endpoint{victim_ip, 8333}, sched.Now()) ? "YES"
                                                                             : "no");
  std::printf("target's outbound slots after the reconnect: %zu "
              "(peer-table diversity shrank by one identifier)\n",
              target.OutboundCount());
  return 0;
}
