// Seeded builders of structurally valid base inputs, one per harness.
//
// Structure-aware fuzzing works by corrupting inputs that are *almost*
// right: a frame with a correct checksum and one flipped length byte probes
// much deeper than random noise, which the first magic/CRC gate rejects.
// These generators produce the "right" part — valid frames, journals,
// serialized tables, op streams — and mutators.hpp supplies the corruption.
#pragma once

#include "fuzz/fuzz.hpp"
#include "util/rng.hpp"

namespace bsfuzz {

/// A stream of 1-4 fully valid encoded protocol frames (random types drawn
/// from the whole 26-type catalogue, random but bounded field contents).
bsutil::ByteVec CodecBase(bsutil::Rng& rng);

/// A tracker op stream (see harness.cpp for the opcode grammar). Every byte
/// string is a valid op stream, so this just emits random bytes with a bias
/// toward op boundaries.
bsutil::ByteVec TrackerBase(bsutil::Rng& rng);

/// A valid journal frame region: a few transactions of CRC-framed records,
/// each closed by a commit marker, with an optional uncommitted tail.
bsutil::ByteVec StoreBase(bsutil::Rng& rng);

/// A valid serialized AddrMan table with a random number of endpoints.
bsutil::ByteVec AddrManBase(bsutil::Rng& rng);

/// Dispatch by harness name ("codec", "tracker", "store", "addrman").
bsutil::ByteVec BaseInputFor(const std::string& harness, bsutil::Rng& rng);

}  // namespace bsfuzz
