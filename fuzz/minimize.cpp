#include "fuzz/minimize.hpp"

#include <algorithm>

namespace bsfuzz {

namespace {

/// One sweep of chunk removal at the given chunk size; returns true when
/// anything was removed.
bool RemoveChunks(bsutil::ByteVec& input, std::size_t chunk,
                  const StillFailsFn& still_fails) {
  bool progress = false;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::size_t len = std::min(chunk, input.size() - pos);
    bsutil::ByteVec candidate;
    candidate.reserve(input.size() - len);
    candidate.insert(candidate.end(), input.begin(),
                     input.begin() + static_cast<std::ptrdiff_t>(pos));
    candidate.insert(candidate.end(),
                     input.begin() + static_cast<std::ptrdiff_t>(pos + len),
                     input.end());
    if (still_fails(candidate)) {
      input = std::move(candidate);
      progress = true;  // retry same offset: the next chunk slid into place
    } else {
      pos += len;
    }
  }
  return progress;
}

/// Zero out bytes that do not matter, making the repro visually scannable.
void ZeroBytes(bsutil::ByteVec& input, const StillFailsFn& still_fails) {
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i] == 0) continue;
    const std::uint8_t saved = input[i];
    input[i] = 0;
    if (!still_fails(input)) input[i] = saved;
  }
}

}  // namespace

bsutil::ByteVec Minimize(bsutil::ByteVec input, const StillFailsFn& still_fails) {
  if (!still_fails(input)) return input;  // not reproducible: keep as-is
  bool progress = true;
  while (progress && !input.empty()) {
    progress = false;
    for (std::size_t chunk = std::max<std::size_t>(input.size() / 2, 1);;
         chunk /= 2) {
      if (RemoveChunks(input, chunk, still_fails)) progress = true;
      if (chunk <= 1) break;
    }
  }
  ZeroBytes(input, still_fails);
  return input;
}

}  // namespace bsfuzz
