#include "fuzz/generators.hpp"

#include <stdexcept>

#include "core/addrman.hpp"
#include "proto/codec.hpp"
#include "proto/messages.hpp"
#include "store/format.hpp"

namespace bsfuzz {

namespace {

using bsproto::Message;
using bsproto::MsgType;

bscrypto::Hash256 RandomHash(bsutil::Rng& rng) {
  std::array<std::uint8_t, bscrypto::Hash256::kSize> bytes;
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Next());
  return bscrypto::Hash256(bytes);
}

bsutil::ByteVec RandomBytes(bsutil::Rng& rng, std::size_t max_len) {
  bsutil::ByteVec out(rng.Below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Next());
  return out;
}

std::vector<bsproto::InvVect> RandomInventory(bsutil::Rng& rng) {
  std::vector<bsproto::InvVect> inv(rng.Below(5));
  for (auto& item : inv) {
    item.type = rng.Chance(0.5) ? bsproto::InvType::kTx : bsproto::InvType::kBlock;
    item.hash = RandomHash(rng);
  }
  return inv;
}

bschain::Transaction RandomTx(bsutil::Rng& rng) {
  bschain::Transaction tx;
  tx.inputs.resize(1 + rng.Below(3));
  for (auto& in : tx.inputs) {
    in.prevout.txid = RandomHash(rng);
    in.prevout.index = static_cast<std::uint32_t>(rng.Below(16));
    in.script_sig = RandomBytes(rng, 32);
  }
  tx.outputs.resize(1 + rng.Below(3));
  for (auto& out : tx.outputs) {
    out.value = static_cast<std::int64_t>(rng.Below(50'000'000));
    out.script_pubkey = RandomBytes(rng, 32);
  }
  return tx;
}

bschain::BlockHeader RandomHeader(bsutil::Rng& rng) {
  bschain::BlockHeader h;
  h.prev = RandomHash(rng);
  h.merkle_root = RandomHash(rng);
  h.time = static_cast<std::uint32_t>(rng.Next());
  h.bits = 0x207fffff;
  h.nonce = static_cast<std::uint32_t>(rng.Next());
  return h;
}

bsproto::NetAddr RandomNetAddr(bsutil::Rng& rng) {
  bsproto::NetAddr a;
  a.services = bsproto::kNodeNetwork;
  a.endpoint.ip = static_cast<std::uint32_t>(rng.Next());
  a.endpoint.port = static_cast<std::uint16_t>(rng.Next());
  return a;
}

/// One valid message of the given type with random, bounded contents.
Message ExemplarMessage(MsgType type, bsutil::Rng& rng) {
  switch (type) {
    case MsgType::kVersion: {
      bsproto::VersionMsg m;
      m.timestamp = static_cast<std::int64_t>(rng.Below(1u << 30));
      m.addr_recv = RandomNetAddr(rng);
      m.addr_from = RandomNetAddr(rng);
      m.nonce = rng.Next();
      m.start_height = static_cast<std::int32_t>(rng.Below(1000));
      m.relay = rng.Chance(0.5);
      return m;
    }
    case MsgType::kVerack: return bsproto::VerackMsg{};
    case MsgType::kAddr: {
      bsproto::AddrMsg m;
      m.addresses.resize(rng.Below(6));
      for (auto& ta : m.addresses) {
        ta.time = static_cast<std::uint32_t>(rng.Next());
        ta.addr = RandomNetAddr(rng);
      }
      return m;
    }
    case MsgType::kInv: return bsproto::InvMsg{RandomInventory(rng)};
    case MsgType::kGetData: return bsproto::GetDataMsg{RandomInventory(rng)};
    case MsgType::kNotFound: return bsproto::NotFoundMsg{RandomInventory(rng)};
    case MsgType::kGetBlocks: {
      bsproto::GetBlocksMsg m;
      m.locator.resize(1 + rng.Below(4));
      for (auto& h : m.locator) h = RandomHash(rng);
      m.stop = RandomHash(rng);
      return m;
    }
    case MsgType::kGetHeaders: {
      bsproto::GetHeadersMsg m;
      m.locator.resize(1 + rng.Below(4));
      for (auto& h : m.locator) h = RandomHash(rng);
      m.stop = RandomHash(rng);
      return m;
    }
    case MsgType::kHeaders: {
      bsproto::HeadersMsg m;
      m.headers.resize(rng.Below(4));
      for (auto& h : m.headers) h = RandomHeader(rng);
      return m;
    }
    case MsgType::kTx: return bsproto::TxMsg{RandomTx(rng)};
    case MsgType::kBlock: {
      bschain::Block block;
      block.header = RandomHeader(rng);
      block.txs.resize(1 + rng.Below(3));
      for (auto& tx : block.txs) tx = RandomTx(rng);
      return bsproto::BlockMsg{std::move(block)};
    }
    case MsgType::kPing: return bsproto::PingMsg{rng.Next()};
    case MsgType::kPong: return bsproto::PongMsg{rng.Next()};
    case MsgType::kGetAddr: return bsproto::GetAddrMsg{};
    case MsgType::kMempool: return bsproto::MempoolMsg{};
    case MsgType::kSendHeaders: return bsproto::SendHeadersMsg{};
    case MsgType::kFeeFilter:
      return bsproto::FeeFilterMsg{static_cast<std::int64_t>(rng.Below(100'000))};
    case MsgType::kSendCmpct: return bsproto::SendCmpctMsg{rng.Chance(0.5), 1};
    case MsgType::kCmpctBlock: {
      bsproto::CmpctBlockMsg m;
      m.header = RandomHeader(rng);
      m.nonce = rng.Next();
      m.short_ids.resize(rng.Below(5));
      for (auto& id : m.short_ids) id = rng.Next() & 0xFFFFFFFFFFFFULL;
      if (rng.Chance(0.5)) {
        m.prefilled.resize(1);
        m.prefilled[0].index = 0;
        m.prefilled[0].tx = RandomTx(rng);
      }
      return m;
    }
    case MsgType::kGetBlockTxn: {
      bsproto::GetBlockTxnMsg m;
      m.block_hash = RandomHash(rng);
      m.indexes.resize(1 + rng.Below(4));
      std::uint64_t idx = 0;
      for (auto& i : m.indexes) i = (idx += 1 + rng.Below(4));
      return m;
    }
    case MsgType::kBlockTxn: {
      bsproto::BlockTxnMsg m;
      m.block_hash = RandomHash(rng);
      m.txs.resize(1 + rng.Below(2));
      for (auto& tx : m.txs) tx = RandomTx(rng);
      return m;
    }
    case MsgType::kFilterLoad: {
      bsproto::FilterLoadMsg m;
      m.filter = RandomBytes(rng, 64);
      m.n_hash_funcs = static_cast<std::uint32_t>(rng.Below(20));
      m.n_tweak = static_cast<std::uint32_t>(rng.Next());
      m.n_flags = static_cast<std::uint8_t>(rng.Below(3));
      return m;
    }
    case MsgType::kFilterAdd: return bsproto::FilterAddMsg{RandomBytes(rng, 64)};
    case MsgType::kFilterClear: return bsproto::FilterClearMsg{};
    case MsgType::kMerkleBlock: {
      bsproto::MerkleBlockMsg m;
      m.header = RandomHeader(rng);
      m.total_txs = 1 + static_cast<std::uint32_t>(rng.Below(8));
      m.hashes.resize(1 + rng.Below(4));
      for (auto& h : m.hashes) h = RandomHash(rng);
      m.flags = RandomBytes(rng, 4);
      return m;
    }
    case MsgType::kReject: {
      bsproto::RejectMsg m;
      m.message = "tx";
      m.code = 0x10;
      m.reason = "fuzz";
      if (rng.Chance(0.5)) {
        const auto h = RandomHash(rng);
        m.data.assign(h.Bytes().begin(), h.Bytes().end());
      }
      return m;
    }
    case MsgType::kTipProbe: {
      bsproto::TipProbeMsg m;
      m.nonce = rng.Next();
      m.tips.resize(1 + rng.Below(4));
      std::int32_t height = static_cast<std::int32_t>(rng.Below(1'000'000));
      for (auto& tip : m.tips) {
        // Divergent vectors on purpose: heights may jump backwards as well
        // as forwards, which is what the partition monitor must digest.
        height += static_cast<std::int32_t>(rng.Below(16)) - 4;
        tip.height = height;
        tip.hash = RandomHash(rng);
      }
      return m;
    }
  }
  return bsproto::PingMsg{};
}

}  // namespace

bsutil::ByteVec CodecBase(bsutil::Rng& rng) {
  const auto& types = bsproto::AllMsgTypes();
  bsutil::ByteVec out;
  const std::size_t frames = 1 + rng.Below(4);
  for (std::size_t i = 0; i < frames; ++i) {
    const MsgType type = types[rng.Below(types.size())];
    const bsutil::ByteVec frame =
        bsproto::EncodeMessage(kFuzzMagic, ExemplarMessage(type, rng));
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

bsutil::ByteVec TrackerBase(bsutil::Rng& rng) {
  bsutil::ByteVec out(8 + rng.Below(120));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Next());
  return out;
}

bsutil::ByteVec StoreBase(bsutil::Rng& rng) {
  bsutil::ByteVec region;
  const std::size_t txns = 1 + rng.Below(4);
  for (std::size_t t = 0; t < txns; ++t) {
    const std::size_t records = 1 + rng.Below(3);
    for (std::size_t i = 0; i < records; ++i) {
      const bsutil::ByteVec payload = RandomBytes(rng, 48);
      bsstore::AppendFrame(region, static_cast<std::uint8_t>(1 + rng.Below(4)),
                           payload);
    }
    bsstore::AppendFrame(region, bsstore::kCommitRecord, {});
  }
  if (rng.Chance(0.3)) {
    // Uncommitted tail: a legal state after a crash mid-append.
    bsstore::AppendFrame(region, 1, RandomBytes(rng, 24));
  }
  return region;
}

bsutil::ByteVec AddrManBase(bsutil::Rng& rng) {
  bsnet::AddrMan am(/*seed=*/1);
  if (rng.Chance(0.5)) am.EnableBucketing();
  const std::size_t count = rng.Below(24);
  for (std::size_t i = 0; i < count; ++i) {
    bsnet::Endpoint ep;
    ep.ip = static_cast<std::uint32_t>(rng.Next());
    ep.port = static_cast<std::uint16_t>(8000 + rng.Below(1000));
    am.Add(ep);
  }
  return am.Serialize();
}

bsutil::ByteVec BaseInputFor(const std::string& harness, bsutil::Rng& rng) {
  if (harness == "codec") return CodecBase(rng);
  if (harness == "tracker") return TrackerBase(rng);
  if (harness == "store") return StoreBase(rng);
  if (harness == "addrman") return AddrManBase(rng);
  throw std::invalid_argument("unknown fuzz harness: " + harness);
}

}  // namespace bsfuzz
