#include "fuzz/differential.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "core/misbehavior.hpp"
#include "core/rules.hpp"
#include "util/rng.hpp"

namespace bsfuzz {

namespace {

constexpr std::array<bsnet::CoreVersion, 3> kVersions = {
    bsnet::CoreVersion::kV0_20, bsnet::CoreVersion::kV0_21,
    bsnet::CoreVersion::kV0_22};

const char* PairName(std::size_t a, std::size_t b) {
  // Index pairs over kVersions, lexicographic.
  if (a == 0 && b == 1) return "0.20/0.21";
  if (a == 0 && b == 2) return "0.20/0.22";
  return "0.21/0.22";
}

struct TrackerTrio {
  TrackerTrio()
      : t{{bsnet::MisbehaviorTracker(kVersions[0], bsnet::BanPolicy::kBanScore, 100),
           bsnet::MisbehaviorTracker(kVersions[1], bsnet::BanPolicy::kBanScore, 100),
           bsnet::MisbehaviorTracker(kVersions[2], bsnet::BanPolicy::kBanScore, 100)}} {}
  std::array<bsnet::MisbehaviorTracker, 3> t;

  /// Drive one event through all three trackers; record any divergent cell.
  void Drive(std::uint64_t peer, bool inbound, bsnet::Misbehavior what,
             std::set<std::string>& observed) {
    std::array<bsnet::MisbehaviorOutcome, 3> out;
    for (std::size_t i = 0; i < 3; ++i) {
      out[i] = t[i].Misbehaving(peer, inbound, what);
    }
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t b = a + 1; b < 3; ++b) {
        // A cell diverges when the versions disagree about whether the rule
        // exists or what it scores. Accumulated totals are deliberately NOT
        // compared directly — a single deprecated rule makes totals differ
        // forever after, which would smear one Table I cell across every
        // subsequent event.
        if (out[a].rule_applied != out[b].rule_applied ||
            out[a].score_delta != out[b].score_delta) {
          observed.insert(std::string(bsnet::ToString(what)) + "@" +
                          PairName(a, b));
        }
      }
    }
  }
};

}  // namespace

const std::vector<std::string>& PredictedDivergenceCells() {
  // Table I of the paper, transcribed by hand. Four rules change across
  // 0.20 → 0.22:
  //   filteradd-version-gate   100 / — / —   (dropped after 0.20)
  //   version-duplicate          1 / 1 / —   (dropped in 0.22)
  //   message-before-version     1 / 1 / —   (dropped in 0.22)
  //   message-before-verack      1 / — / —   (dropped after 0.20)
  // Every other row carries identical scores in all three columns.
  static const std::vector<std::string> kCells = [] {
    std::vector<std::string> cells = {
        "filteradd-version-gate@0.20/0.21",
        "filteradd-version-gate@0.20/0.22",
        "version-duplicate@0.20/0.22",
        "version-duplicate@0.21/0.22",
        "message-before-version@0.20/0.22",
        "message-before-version@0.21/0.22",
        "message-before-verack@0.20/0.21",
        "message-before-verack@0.20/0.22",
    };
    std::sort(cells.begin(), cells.end());
    return cells;
  }();
  return kCells;
}

DiffResult RunDifferential(std::uint64_t seed, std::size_t iters) {
  DiffResult result;
  std::set<std::string> observed;
  const auto& all = bsnet::AllMisbehaviors();

  // Pass 1: exhaustive single-event sweep on fresh trackers, so every
  // predicted cell is guaranteed to be exercised at least once.
  for (const bsnet::Misbehavior what : all) {
    for (const bool inbound : {true, false}) {
      TrackerTrio trio;
      trio.Drive(/*peer=*/1, inbound, what, observed);
      ++result.events;
    }
  }

  // Pass 2: randomized stateful streams — accumulation, repeats, forgets.
  bsutil::Rng rng(seed);
  for (std::size_t i = 0; i < iters; ++i) {
    TrackerTrio trio;
    const std::size_t events = 4 + rng.Below(28);
    for (std::size_t e = 0; e < events; ++e) {
      const std::uint64_t peer = rng.Below(4);
      if (rng.Chance(0.05)) {
        for (auto& tracker : trio.t) tracker.Forget(peer);
        continue;
      }
      trio.Drive(peer, rng.Chance(0.7), all[rng.Below(all.size())], observed);
      ++result.events;
    }
  }

  result.observed.assign(observed.begin(), observed.end());
  result.predicted = PredictedDivergenceCells();
  std::set_difference(result.observed.begin(), result.observed.end(),
                      result.predicted.begin(), result.predicted.end(),
                      std::back_inserter(result.unpredicted));
  std::set_difference(result.predicted.begin(), result.predicted.end(),
                      result.observed.begin(), result.observed.end(),
                      std::back_inserter(result.missing));
  result.ok = result.unpredicted.empty() && result.missing.empty();
  return result;
}

}  // namespace bsfuzz
