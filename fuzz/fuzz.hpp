// Shared vocabulary of the in-repo fuzz fabric.
//
// The fabric is deliberately self-contained: a seeded deterministic engine
// (engine.hpp) layers structure-aware mutators (mutators.hpp) on top of
// valid inputs built by generators.hpp, and feeds the result to one of four
// harness bodies (harness.hpp). The same harness bodies back the optional
// libFuzzer entry points (-DBS_LIBFUZZER=ON), so a corpus found by either
// driver reproduces under the other.
//
// A harness is an *oracle*, not a crash detector: it returns a structured
// failure naming the violated robustness property (round-trip idempotence,
// reject-leaves-state-untouched, recover-or-fail-closed) so the minimizer
// can preserve exactly that failure while shrinking.
#pragma once

#include <string>

#include "util/bytes.hpp"

namespace bsfuzz {

/// Network magic used by every fuzz harness (the regtest-style value the
/// test suite uses).
constexpr std::uint32_t kFuzzMagic = 0xfabfb5da;

/// Outcome of running one input through a harness.
struct HarnessResult {
  bool ok = true;
  std::string oracle;  // violated property, e.g. "roundtrip-idempotence"
  std::string detail;  // human-readable specifics

  static HarnessResult Fail(std::string oracle, std::string detail) {
    return HarnessResult{false, std::move(oracle), std::move(detail)};
  }
};

}  // namespace bsfuzz
