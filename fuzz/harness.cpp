#include "fuzz/harness.hpp"

#include <array>
#include <exception>
#include <stdexcept>
#include <utility>

#include "core/addrman.hpp"
#include "core/banman.hpp"
#include "core/misbehavior.hpp"
#include "proto/codec.hpp"
#include "sim/simfs.hpp"
#include "store/fsck.hpp"
#include "store/store.hpp"

namespace bsfuzz {

namespace {

std::string DescribeBytes(bsutil::ByteSpan a, bsutil::ByteSpan b) {
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  return "sizes " + std::to_string(a.size()) + "/" + std::to_string(b.size()) +
         ", first difference at byte " + std::to_string(i);
}

// ---- codec -----------------------------------------------------------------

HarnessResult CodecBody(bsutil::ByteSpan input) {
  bsutil::ByteSpan stream = input;
  std::size_t guard = 0;
  // Reference outcome sequence for the streaming differential below.
  std::vector<std::pair<bsproto::DecodeStatus, std::size_t>> reference;
  while (!stream.empty()) {
    if (++guard > input.size() + 16) {
      return HarnessResult::Fail("decoder-progress",
                                 "decode loop exceeded input-size bound");
    }
    const bsproto::DecodeResult r = bsproto::DecodeMessage(kFuzzMagic, stream);
    if (r.consumed > stream.size()) {
      return HarnessResult::Fail(
          "consumed-overrun", "consumed " + std::to_string(r.consumed) +
                                  " of " + std::to_string(stream.size()));
    }
    if (r.status == bsproto::DecodeStatus::kNeedMoreData) {
      if (r.consumed != 0) {
        return HarnessResult::Fail("need-more-data-consumed",
                                   "partial frame consumed bytes");
      }
      break;  // waiting for bytes that will never come — done
    }
    if (r.consumed < bsproto::kHeaderSize) {
      return HarnessResult::Fail(
          "decoder-progress",
          "header-complete status consumed < header size (" +
              std::to_string(r.consumed) + ")");
    }
    reference.emplace_back(r.status, r.consumed);
    if (r.status == bsproto::DecodeStatus::kOk) {
      // Round-trip idempotence. A first re-encode may legally differ from
      // the wire bytes (optional fields like VERSION's relay flag get
      // materialized), but it must itself decode to an equal message and
      // re-encode byte-identically — and when the lengths DO match, the
      // re-encode must equal the original frame exactly.
      const bsutil::ByteVec e1 = bsproto::EncodeMessage(kFuzzMagic, r.message);
      const bsproto::DecodeResult second = bsproto::DecodeMessage(kFuzzMagic, e1);
      if (second.status != bsproto::DecodeStatus::kOk ||
          second.consumed != e1.size()) {
        return HarnessResult::Fail(
            "reencode-undecodable",
            std::string("re-encoded frame decoded as ") +
                bsproto::ToString(second.status));
      }
      if (!(second.message == r.message)) {
        return HarnessResult::Fail("roundtrip-inequality",
                                   "decode(encode(m)) != m");
      }
      const bsutil::ByteVec e2 = bsproto::EncodeMessage(kFuzzMagic, second.message);
      if (e2 != e1) {
        return HarnessResult::Fail("roundtrip-idempotence",
                                   DescribeBytes(e1, e2));
      }
      if (e1.size() == r.consumed &&
          !std::equal(e1.begin(), e1.end(), stream.begin())) {
        return HarnessResult::Fail(
            "reencode-differs",
            "accepted frame re-encodes to different bytes of equal length");
      }
    }
    stream = stream.subspan(r.consumed);
  }

  // Streaming differential: feed the same bytes through the incremental
  // decoder in input-derived chunk sizes. Any chunking must reproduce the
  // contiguous loop's outcome sequence exactly — same statuses, same consumed
  // counts, nothing extra and nothing missing.
  bsproto::StreamDecoder decoder(kFuzzMagic);
  std::size_t fed = 0;
  std::size_t seen = 0;
  for (;;) {
    bsproto::DecodeResult r;
    while (decoder.Next(r)) {
      if (seen >= reference.size()) {
        return HarnessResult::Fail(
            "stream-differential",
            "incremental decoder produced an extra frame (" +
                std::string(bsproto::ToString(r.status)) + ")");
      }
      if (r.status != reference[seen].first ||
          r.consumed != reference[seen].second) {
        return HarnessResult::Fail(
            "stream-differential",
            "frame " + std::to_string(seen) + ": incremental " +
                bsproto::ToString(r.status) + "/" + std::to_string(r.consumed) +
                " vs contiguous " + bsproto::ToString(reference[seen].first) +
                "/" + std::to_string(reference[seen].second));
      }
      ++seen;
    }
    if (fed >= input.size()) break;
    // Chunk size derived from the input itself so the splits are as
    // adversarial as the corpus: 1..64 bytes, biased tiny.
    const std::size_t chunk = std::min<std::size_t>(
        input.size() - fed, 1 + (input[fed] & (input[fed] % 3 == 0 ? 0x3f : 0x03)));
    decoder.Feed(input.subspan(fed, chunk));
    fed += chunk;
  }
  if (seen != reference.size()) {
    return HarnessResult::Fail(
        "stream-differential",
        "incremental decoder stopped at frame " + std::to_string(seen) +
            " of " + std::to_string(reference.size()));
  }
  return {};
}

// ---- tracker ---------------------------------------------------------------

/// Byte-oriented cursor; every byte string is a valid op stream.
class OpReader {
 public:
  explicit OpReader(bsutil::ByteSpan data) : data_(data) {}
  bool Done() const { return pos_ >= data_.size(); }
  std::uint8_t Byte() { return Done() ? 0 : data_[pos_++]; }
  bsutil::ByteSpan Chunk(std::size_t max) {
    const std::size_t n = std::min(max, data_.size() - std::min(pos_, data_.size()));
    const bsutil::ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  bsutil::ByteSpan data_;
  std::size_t pos_ = 0;
};

HarnessResult TrackerBody(bsutil::ByteSpan input) {
  constexpr int kThreshold = 100;
  constexpr std::uint64_t kPeers = 8;
  OpReader ops(input);
  const bsnet::CoreVersion version =
      std::array{bsnet::CoreVersion::kV0_20, bsnet::CoreVersion::kV0_21,
                 bsnet::CoreVersion::kV0_22}[ops.Byte() % 3];
  bsnet::MisbehaviorTracker tracker(version, bsnet::BanPolicy::kBanScore,
                                    kThreshold);
  bsnet::BanMan banman;
  // Independent shadow model: plain per-peer accumulators driven from the
  // published rule table. Divergence means the tracker's bookkeeping broke.
  std::array<int, kPeers> shadow_score{};
  std::array<bool, kPeers> shadow_known{};
  const auto& all = bsnet::AllMisbehaviors();

  while (!ops.Done()) {
    const std::uint8_t op = ops.Byte() % 7;
    const std::uint64_t peer = ops.Byte() % kPeers;
    switch (op) {
      case 0: {  // Misbehaving, cross-checked against the shadow model
        const bool inbound = (ops.Byte() & 1) != 0;
        const bsnet::Misbehavior what = all[ops.Byte() % all.size()];
        const auto outcome = tracker.Misbehaving(peer, inbound, what);
        const auto rule = bsnet::GetRule(version, what);
        const bool applies =
            rule.has_value() &&
            (rule->scope == bsnet::PeerScope::kAny ||
             (rule->scope == bsnet::PeerScope::kInbound && inbound) ||
             (rule->scope == bsnet::PeerScope::kOutbound && !inbound));
        const int want_delta = applies ? rule->score : 0;
        if (outcome.rule_applied != applies || outcome.score_delta != want_delta) {
          return HarnessResult::Fail(
              "tracker-shadow-divergence",
              std::string("rule ") + bsnet::ToString(what) + ": delta " +
                  std::to_string(outcome.score_delta) + " want " +
                  std::to_string(want_delta));
        }
        if (applies) {
          shadow_score[peer] += want_delta;
          if (shadow_known[peer] && outcome.total_score != shadow_score[peer]) {
            return HarnessResult::Fail(
                "tracker-shadow-divergence",
                "peer total " + std::to_string(outcome.total_score) + " want " +
                    std::to_string(shadow_score[peer]));
          }
          shadow_score[peer] = outcome.total_score;
          shadow_known[peer] = true;
        }
        if (outcome.should_ban != (applies && outcome.total_score >= kThreshold)) {
          return HarnessResult::Fail("tracker-ban-threshold",
                                     "should_ban inconsistent with threshold");
        }
        break;
      }
      case 1:  // good-score credit (does not change misbehavior totals)
        tracker.AddGoodScore(peer, static_cast<int>(ops.Byte() % 16));
        break;
      case 2:  // forget resets the shadow too
        tracker.Forget(peer);
        shadow_score[peer] = 0;
        shadow_known[peer] = false;
        break;
      case 3: {  // serialize must round-trip byte-stably
        const bsutil::ByteVec s1 = tracker.Serialize();
        if (!tracker.Deserialize(s1)) {
          return HarnessResult::Fail("tracker-self-reload",
                                     "own serialization rejected");
        }
        const bsutil::ByteVec s2 = tracker.Serialize();
        if (s2 != s1) {
          return HarnessResult::Fail("tracker-serialize-idempotence",
                                     DescribeBytes(s1, s2));
        }
        break;
      }
      case 4: {  // rejected garbage must leave state byte-identical
        const bsutil::ByteVec before = tracker.Serialize();
        const bsutil::ByteSpan garbage = ops.Chunk(64);
        if (tracker.Deserialize(garbage)) {
          // Accepted: the blob was a valid score table; rebuild the shadow
          // from the tracker's own view of our peer window.
          for (std::uint64_t p = 0; p < kPeers; ++p) {
            shadow_score[p] = tracker.Score(p);
            shadow_known[p] = true;
          }
        } else if (tracker.Serialize() != before) {
          return HarnessResult::Fail(
              "tracker-reject-mutates",
              "rejected Deserialize changed serialized state");
        }
        break;
      }
      case 5: {  // banman ops + serialize round-trip
        bsnet::Endpoint who;
        who.ip = 0x0a000000u + static_cast<std::uint32_t>(peer);
        who.port = 8333;
        banman.Ban(who, /*until=*/1000 + ops.Byte());
        const bsutil::ByteVec s1 = banman.Serialize();
        bsnet::BanMan reloaded;
        if (!reloaded.Deserialize(s1, /*now=*/0)) {
          return HarnessResult::Fail("banman-self-reload",
                                     "own serialization rejected");
        }
        if (reloaded.Serialize() != s1) {
          return HarnessResult::Fail("banman-serialize-idempotence",
                                     "reload changed serialized state");
        }
        break;
      }
      case 6: {  // banman rejected garbage must leave state byte-identical
        const bsutil::ByteVec before = banman.Serialize();
        const bsutil::ByteSpan garbage = ops.Chunk(64);
        if (!banman.Deserialize(garbage, /*now=*/0) &&
            banman.Serialize() != before) {
          return HarnessResult::Fail(
              "banman-reject-mutates",
              "rejected Deserialize changed serialized state");
        }
        break;
      }
    }
  }
  return {};
}

// ---- store -----------------------------------------------------------------

HarnessResult StoreBody(bsutil::ByteSpan input) {
  bsim::SimFs fs;
  const std::string dir = "fuzz-store";
  fs.MkDir(dir);

  // A known-good generation-1 snapshot, so recovery always has solid ground.
  bsutil::ByteVec snap;
  bsstore::AppendHeader(snap, {bsstore::FileKind::kSnapshot, 1});
  const bsutil::ByteVec seed_payload = {1, 2, 3};
  bsstore::AppendFrame(snap, 7, seed_payload);
  bsstore::AppendFrame(snap, bsstore::kCommitRecord, {});

  // The journal's frame region IS the fuzz input.
  bsutil::ByteVec wal;
  bsstore::AppendHeader(wal, {bsstore::FileKind::kJournal, 1});
  wal.insert(wal.end(), input.begin(), input.end());

  for (const auto& [name, contents] :
       {std::pair{std::string("snap-1.dat"), snap},
        std::pair{std::string("wal-1.log"), wal}}) {
    const int fd = fs.OpenWrite(bsstore::JoinPath(dir, name), true);
    if (fd < 0 || !fs.Write(fd, contents) || !fs.Fsync(fd)) {
      return HarnessResult::Fail("simfs-setup", "could not stage store files");
    }
    fs.Close(fd);
  }

  const bsstore::FsckReport before = bsstore::RunFsck(fs, dir, /*repair=*/false);
  if (!before.store_found) {
    return HarnessResult::Fail("fsck-blind", "fsck did not see staged store");
  }

  using Replayed = std::vector<std::pair<std::uint8_t, bsutil::ByteVec>>;
  const auto open_once = [&fs, &dir](Replayed& out, bsstore::StoreStats& stats,
                                     bool& ok) {
    bsstore::StateStore store(fs, dir);
    ok = store.Open([&out](std::uint8_t type, bsutil::ByteSpan payload) {
      out.emplace_back(type, bsutil::ByteVec(payload.begin(), payload.end()));
    });
    stats = store.OpenStats();
  };

  Replayed first, second;
  bsstore::StoreStats stats1{}, stats2{};
  bool ok1 = false, ok2 = false;
  open_once(first, stats1, ok1);
  // Recover-or-fail-closed: with an intact snapshot present, open must
  // succeed no matter what the journal region held.
  if (!ok1) {
    return HarnessResult::Fail("store-open-failed",
                               "open failed despite intact snapshot");
  }
  if (first.empty() || first[0].second != seed_payload) {
    return HarnessResult::Fail("store-snapshot-lost",
                               "snapshot record missing from replay");
  }
  // fsck and open must agree about whether the journal needed truncation.
  if (before.healthy && stats1.journal_was_dirty) {
    return HarnessResult::Fail("fsck-open-disagree",
                               "fsck healthy but open truncated the journal");
  }
  if (!before.healthy && before.truncated_frames > 0 && !stats1.journal_was_dirty) {
    return HarnessResult::Fail("fsck-open-disagree",
                               "fsck saw damage but open replayed clean");
  }

  // After the first open repaired the tail, the store must verify healthy
  // and a second open must replay the identical record sequence cleanly.
  const bsstore::FsckReport after = bsstore::RunFsck(fs, dir, /*repair=*/false);
  if (!after.healthy) {
    return HarnessResult::Fail("store-not-failclosed",
                               "store still unhealthy after recovery open");
  }
  open_once(second, stats2, ok2);
  if (!ok2 || second != first) {
    return HarnessResult::Fail("store-recovery-idempotence",
                               "second open replayed a different sequence");
  }
  if (stats2.journal_was_dirty) {
    return HarnessResult::Fail("store-recovery-idempotence",
                               "second open still found a dirty journal");
  }
  return {};
}

// ---- addrman ---------------------------------------------------------------

HarnessResult AddrManBody(bsutil::ByteSpan input) {
  for (const bool bucketed : {false, true}) {
    bsnet::AddrMan am(/*seed=*/1);
    if (bucketed) am.EnableBucketing();
    // Pre-seed a couple of entries so "reject must not mutate" is tested
    // against non-trivial state.
    for (std::uint32_t i = 0; i < 3; ++i) {
      am.Add(bsnet::Endpoint{0x7f000001u + i, static_cast<std::uint16_t>(8333 + i)});
    }
    const bsutil::ByteVec before = am.Serialize();
    const std::string mode = bucketed ? "bucketed" : "flat";
    if (!am.Deserialize(input)) {
      if (am.Serialize() != before) {
        return HarnessResult::Fail(
            "addrman-reject-mutates",
            mode + ": rejected Deserialize changed serialized state");
      }
      continue;
    }
    if (am.Size() > 16384) {
      return HarnessResult::Fail("addrman-size-bound",
                                 mode + ": table exceeded kMaxSize");
    }
    const bsutil::ByteVec s1 = am.Serialize();
    bsnet::AddrMan reload(/*seed=*/1);
    if (bucketed) reload.EnableBucketing();
    if (!reload.Deserialize(s1)) {
      return HarnessResult::Fail("addrman-self-reload",
                                 mode + ": accepted table fails to reload");
    }
    if (reload.Serialize() != s1) {
      return HarnessResult::Fail("addrman-serialize-idempotence",
                                 mode + ": reload changed serialized bytes");
    }
  }
  return {};
}

HarnessResult Guarded(HarnessResult (*body)(bsutil::ByteSpan),
                      bsutil::ByteSpan input) {
  try {
    return body(input);
  } catch (const std::exception& e) {
    return HarnessResult::Fail("unexpected-exception", e.what());
  }
}

}  // namespace

HarnessResult RunCodecInput(bsutil::ByteSpan input) {
  return Guarded(CodecBody, input);
}
HarnessResult RunTrackerInput(bsutil::ByteSpan input) {
  return Guarded(TrackerBody, input);
}
HarnessResult RunStoreInput(bsutil::ByteSpan input) {
  return Guarded(StoreBody, input);
}
HarnessResult RunAddrManInput(bsutil::ByteSpan input) {
  return Guarded(AddrManBody, input);
}

HarnessResult RunHarness(const std::string& harness, bsutil::ByteSpan input) {
  if (harness == "codec") return RunCodecInput(input);
  if (harness == "tracker") return RunTrackerInput(input);
  if (harness == "store") return RunStoreInput(input);
  if (harness == "addrman") return RunAddrManInput(input);
  throw std::invalid_argument("unknown fuzz harness: " + harness);
}

const std::vector<std::string>& AllHarnesses() {
  static const std::vector<std::string> kAll = {"codec", "tracker", "store",
                                                "addrman"};
  return kAll;
}

}  // namespace bsfuzz
