// The in-repo fuzz engine: deterministic, seeded, dependency-free.
//
// One campaign = one (harness, seed) pair. Per iteration the engine derives
// an iteration-local RNG, builds a valid base input (generators.hpp),
// stacks 0-4 mutations on it (mutators.hpp), and feeds the result to the
// harness. A failure is minimized (minimize.hpp) while pinning the violated
// oracle, then written as a self-describing repro artifact whose header
// comment carries the seed, iteration, oracle, and full mutation trace.
//
// Before the mutation loop the campaign replays every committed corpus file
// for its harness, so past regressions gate every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"

namespace bsfuzz {

struct CampaignConfig {
  std::string harness;        // "codec" | "tracker" | "store" | "addrman"
  std::uint64_t seed = 1;
  std::size_t iters = 1000;
  std::string corpus_dir;     // per-harness subdir appended; "" = skip replay
  std::string artifacts_dir;  // where minimized repros land; "" = don't write
};

struct FuzzFailure {
  std::string harness;
  std::uint64_t seed = 0;
  std::size_t iter = 0;            // SIZE_MAX for corpus replays
  std::string source;              // "generated" or the corpus file name
  std::string oracle;
  std::string detail;
  std::vector<std::string> trace;  // mutation steps that built the input
  bsutil::ByteVec input;           // minimized
  std::string artifact_path;       // written repro, "" when not written
};

struct CampaignResult {
  std::size_t iterations = 0;
  std::size_t corpus_inputs = 0;
  std::vector<FuzzFailure> failures;
};

CampaignResult RunCampaign(const CampaignConfig& config);

/// Parse a repro/corpus file: '#' comment lines, then hex payload lines.
/// Returns false when the file cannot be read.
bool ReadReproFile(const std::string& path, bsutil::ByteVec& out);

/// Write `input` as a repro file with a provenance header.
/// Returns the written path ("" on error).
std::string WriteReproFile(const std::string& dir, const FuzzFailure& failure);

/// Regenerate a small seed corpus for `harness` into `dir` (used by
/// `banscore-lab fuzz --reseed`): a handful of unmutated generator outputs
/// plus lightly mutated variants, all named deterministically.
std::size_t ReseedCorpus(const std::string& harness, const std::string& dir,
                         std::uint64_t seed, std::size_t count);

}  // namespace bsfuzz
