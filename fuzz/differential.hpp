// Differential rule-set oracle.
//
// Runs the same misbehavior event stream through three MisbehaviorTrackers
// (Core 0.20 / 0.21 / 0.22) and records every (misbehavior, version-pair)
// cell where their outcomes diverge. The paper's Table I predicts the exact
// divergence set — the four rule deprecations across 0.20→0.22 — and that
// prediction is HARDCODED here rather than derived from rules.cpp, so a
// regression in any one reimplementation cannot silently re-derive itself
// into the expected set.
//
// Two passes:
//   1. exhaustive — every misbehavior kind × {inbound, outbound} once, so
//      every predicted cell is provably triggered (missing-cell detection);
//   2. randomized — `iters` seeded event streams with per-peer accumulation
//      and forgets, so divergence is also checked under stateful sequences
//      (threshold crossings, repeats), not just single events.
//
// ok == true  iff  observed divergence set == predicted divergence set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bsfuzz {

struct DiffResult {
  bool ok = false;
  std::size_t events = 0;                  // total events driven
  std::vector<std::string> observed;       // sorted "what@pair" cells
  std::vector<std::string> predicted;      // sorted, from Table I
  std::vector<std::string> unpredicted;    // observed but not in Table I (bugs)
  std::vector<std::string> missing;        // predicted but never observed
};

/// The Table I prediction: cells "what@vA/vB" where the named misbehavior
/// must produce different outcomes under Core vA vs vB.
const std::vector<std::string>& PredictedDivergenceCells();

DiffResult RunDifferential(std::uint64_t seed, std::size_t iters);

}  // namespace bsfuzz
