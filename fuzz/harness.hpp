// The four harness bodies. Each consumes one opaque byte string and checks
// robustness oracles, not just absence of crashes:
//
//   codec    — stream-decode; every accepted message must round-trip
//              idempotently (encode→decode→encode is byte-stable) and the
//              decoder must always make bounded forward progress.
//   tracker  — interprets the input as an op stream against a
//              MisbehaviorTracker + BanMan pair, cross-checked against an
//              independent shadow model; rejected Deserialize calls must
//              leave serialized state byte-identical.
//   store    — treats the input as a journal frame region in a SimFs store;
//              open must recover or fail closed, agree with fsck, and be
//              idempotent across a second open.
//   addrman  — AddrMan::Deserialize in flat and bucketed mode; rejects
//              must not mutate state, accepts must re-serialize stably.
//
// The same bodies back the in-repo engine (engine.hpp) and the optional
// libFuzzer entry points, so findings reproduce across drivers.
#pragma once

#include <vector>

#include "fuzz/fuzz.hpp"

namespace bsfuzz {

HarnessResult RunCodecInput(bsutil::ByteSpan input);
HarnessResult RunTrackerInput(bsutil::ByteSpan input);
HarnessResult RunStoreInput(bsutil::ByteSpan input);
HarnessResult RunAddrManInput(bsutil::ByteSpan input);

/// Dispatch by name; throws std::invalid_argument for unknown names.
HarnessResult RunHarness(const std::string& harness, bsutil::ByteSpan input);

/// The four harness names, in canonical order.
const std::vector<std::string>& AllHarnesses();

}  // namespace bsfuzz
