// libFuzzer entry point sharing the in-repo harness bodies. Built only
// under -DBS_LIBFUZZER=ON with clang (fuzz/CMakeLists.txt gates this); the
// harness is selected at compile time via -DBS_FUZZ_HARNESS=<name>.
//
//   cmake -B build-fuzz -S . -DBS_LIBFUZZER=ON \
//         -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target fuzz_codec_libfuzzer
//   ./build-fuzz/fuzz/fuzz_codec_libfuzzer fuzz/corpus/codec
//
// Oracle violations abort() so libFuzzer treats them exactly like crashes
// and minimizes them natively; the resulting input also replays through
// `banscore-lab fuzz --harness <name> --replay <file>`.
#include <cstdio>
#include <cstdlib>

#include "fuzz/harness.hpp"

#ifndef BS_FUZZ_HARNESS
#error "define BS_FUZZ_HARNESS (codec|tracker|store|addrman)"
#endif

#define BS_STRINGIFY2(x) #x
#define BS_STRINGIFY(x) BS_STRINGIFY2(x)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const char* kHarness = BS_STRINGIFY(BS_FUZZ_HARNESS);
  const bsfuzz::HarnessResult result =
      bsfuzz::RunHarness(kHarness, bsutil::ByteSpan(data, size));
  if (!result.ok) {
    std::fprintf(stderr, "oracle violated: %s (%s)\n", result.oracle.c_str(),
                 result.detail.c_str());
    std::abort();
  }
  return 0;
}
