// Greedy input minimizer. Given a failing input and a predicate that says
// "this still fails the same way", repeatedly tries removing chunks
// (halving sizes), trimming the tail, and zeroing bytes, keeping every
// change that preserves the failure. Deterministic and bounded: each pass
// is linear in the input, and passes stop when a whole sweep makes no
// progress.
#pragma once

#include <functional>

#include "util/bytes.hpp"

namespace bsfuzz {

using StillFailsFn = std::function<bool(bsutil::ByteSpan)>;

bsutil::ByteVec Minimize(bsutil::ByteVec input, const StillFailsFn& still_fails);

}  // namespace bsfuzz
