#include "fuzz/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fuzz/generators.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutators.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace bsfuzz {

namespace {

namespace fs = std::filesystem;

/// The harnesses feed deliberately corrupted inputs to recovery paths that
/// log (correctly) at error level; thousands of iterations would bury real
/// output. Silence the logger for the duration of a campaign.
class ScopedLogSilence {
 public:
  ScopedLogSilence() : saved_(bsutil::GetLogLevel()) {
    bsutil::SetLogLevel(bsutil::LogLevel::kOff);
  }
  ~ScopedLogSilence() { bsutil::SetLogLevel(saved_); }
  ScopedLogSilence(const ScopedLogSilence&) = delete;
  ScopedLogSilence& operator=(const ScopedLogSilence&) = delete;

 private:
  bsutil::LogLevel saved_;
};

/// splitmix-style mix so (seed, iter) pairs land on independent streams.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t iter) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (iter + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string JoinTrace(const std::vector<std::string>& trace) {
  std::string out;
  for (const std::string& step : trace) {
    if (!out.empty()) out += "; ";
    out += step;
  }
  return out.empty() ? "(none)" : out;
}

void RecordFailure(CampaignResult& result, const CampaignConfig& config,
                   std::size_t iter, const std::string& source,
                   const HarnessResult& hr, bsutil::ByteVec input,
                   std::vector<std::string> trace) {
  FuzzFailure failure;
  failure.harness = config.harness;
  failure.seed = config.seed;
  failure.iter = iter;
  failure.source = source;
  failure.oracle = hr.oracle;
  failure.detail = hr.detail;
  failure.trace = std::move(trace);

  // Shrink while pinning the oracle: a smaller input that fails a
  // *different* way is a different bug and must not hijack this repro.
  const std::string oracle = hr.oracle;
  failure.input = Minimize(
      std::move(input), [&config, &oracle](bsutil::ByteSpan candidate) {
        const HarnessResult r = RunHarness(config.harness, candidate);
        return !r.ok && r.oracle == oracle;
      });
  if (!config.artifacts_dir.empty()) {
    failure.artifact_path = WriteReproFile(config.artifacts_dir, failure);
  }
  result.failures.push_back(std::move(failure));
}

}  // namespace

bool ReadReproFile(const std::string& path, bsutil::ByteVec& out) {
  std::ifstream in(path);
  if (!in) return false;
  out.clear();
  std::string line;
  int hi = -1;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') continue;
    for (const char c : line) {
      int v;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
      else continue;
      if (hi < 0) {
        hi = v;
      } else {
        out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
        hi = -1;
      }
    }
  }
  return true;
}

std::string WriteReproFile(const std::string& dir, const FuzzFailure& failure) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string name = failure.harness + "-seed" +
                           std::to_string(failure.seed) + "-iter" +
                           std::to_string(failure.iter) + ".repro";
  const std::string path = (fs::path(dir) / name).string();
  std::ofstream out(path);
  if (!out) return "";
  out << "# banscore-lab fuzz repro (minimized)\n";
  out << "# harness: " << failure.harness << "\n";
  out << "# seed: " << failure.seed << "  iter: " << failure.iter
      << "  source: " << failure.source << "\n";
  out << "# oracle: " << failure.oracle << "\n";
  out << "# detail: " << failure.detail << "\n";
  out << "# mutation trace: " << JoinTrace(failure.trace) << "\n";
  out << "# replay: banscore-lab fuzz --harness " << failure.harness
      << " --replay " << name << "\n";
  char buf[4];
  for (std::size_t i = 0; i < failure.input.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%02x", failure.input[i]);
    out << buf;
    out << ((i % 32 == 31) ? "\n" : "");
  }
  out << "\n";
  return path;
}

CampaignResult RunCampaign(const CampaignConfig& config) {
  CampaignResult result;
  const ScopedLogSilence silence;

  // Stage 0: regression corpus replay.
  if (!config.corpus_dir.empty()) {
    const fs::path dir = fs::path(config.corpus_dir) / config.harness;
    std::error_code ec;
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file()) files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    for (const std::string& file : files) {
      bsutil::ByteVec input;
      if (!ReadReproFile(file, input)) continue;
      ++result.corpus_inputs;
      const HarnessResult hr = RunHarness(config.harness, input);
      if (!hr.ok) {
        RecordFailure(result, config, /*iter=*/SIZE_MAX,
                      fs::path(file).filename().string(), hr, std::move(input),
                      {});
      }
    }
  }

  // Stage 1: seeded generate-mutate-check loop.
  for (std::size_t iter = 0; iter < config.iters; ++iter) {
    bsutil::Rng rng(MixSeed(config.seed, iter));
    bsutil::ByteVec input = BaseInputFor(config.harness, rng);
    std::vector<std::string> trace;
    // ~1 in 10 inputs stays pristine so the all-valid path is continuously
    // exercised too; the rest get a 1-4 deep mutation stack.
    if (!rng.Chance(0.1)) {
      Mutate(input, rng, 1 + rng.Below(4), trace);
    }
    ++result.iterations;
    const HarnessResult hr = RunHarness(config.harness, input);
    if (!hr.ok) {
      RecordFailure(result, config, iter, "generated", hr, std::move(input),
                    std::move(trace));
    }
  }
  return result;
}

std::size_t ReseedCorpus(const std::string& harness, const std::string& dir,
                         std::uint64_t seed, std::size_t count) {
  std::error_code ec;
  const fs::path out_dir = fs::path(dir) / harness;
  fs::create_directories(out_dir, ec);
  std::size_t written = 0;
  const auto write_entry = [&](const char* name, const bsutil::ByteVec& input,
                               const std::vector<std::string>& trace,
                               std::size_t index) {
    std::ofstream out(out_dir / name);
    if (!out) return;
    out << "# banscore-lab fuzz corpus (committed regression input)\n";
    out << "# harness: " << harness << "  reseed-seed: " << seed
        << "  index: " << index << "\n";
    out << "# mutation trace: " << JoinTrace(trace) << "\n";
    char buf[4];
    for (std::size_t b = 0; b < input.size(); ++b) {
      std::snprintf(buf, sizeof buf, "%02x", input[b]);
      out << buf;
      out << ((b % 32 == 31) ? "\n" : "");
    }
    out << "\n";
    ++written;
  };
  for (std::size_t i = 0; i < count; ++i) {
    bsutil::Rng rng(MixSeed(seed, i));
    bsutil::ByteVec input = BaseInputFor(harness, rng);
    std::vector<std::string> trace;
    // Half the corpus is pristine generator output, half lightly mutated —
    // the mutated ones pin decoder-rejection paths into the regression set.
    if (i % 2 == 1) Mutate(input, rng, 1 + rng.Below(2), trace);
    char name[64];
    std::snprintf(name, sizeof name, "seed-%03zu.repro", i);
    write_entry(name, input, trace, i);
  }
  // The codec corpus always carries one divergent tip-probe entry — the
  // uniform mutator draw can miss it for any given seed range, and the
  // partition monitor's divergence path must stay pinned in the regression
  // set.
  if (harness == "codec") {
    bsutil::Rng rng(MixSeed(seed, count));
    bsutil::ByteVec input;
    std::vector<std::string> trace = {MutateTipVector(input, rng),
                                      MutateTipVector(input, rng)};
    write_entry("tipprobe.repro", input, trace, count);
  }
  return written;
}

}  // namespace bsfuzz
